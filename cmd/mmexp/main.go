// Command mmexp regenerates the paper's experimental figures and tables.
//
// Usage:
//
//	mmexp -fig all                 # every figure, paper-scale matrices
//	mmexp -fig 5 -scale 0.5        # Figure 5 at half-scale dimensions
//	mmexp -fig 7 -seed 3 -csv      # Figure 7, alternative random platforms
//	mmexp -fig bounds              # Section 3 bound table
//	mmexp -fig table2              # Section 5 counterexample
//	mmexp -fig ub                  # steady-state upper bound vs Het
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,all,bounds,table2,ub")
	scale := flag.Float64("scale", 1.0, "matrix dimension scale (1 = paper scale)")
	seed := flag.Int64("seed", 1, "base seed for random platforms")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	cfg := exp.Config{Scale: *scale, Seed: *seed}
	if err := run(*fig, cfg, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "mmexp:", err)
		os.Exit(1)
	}
}

func run(fig string, cfg exp.Config, csv bool) error {
	emit := func(f *exp.Figure) {
		if csv {
			fmt.Print(f.CSV())
		} else {
			fmt.Println(f.Render())
		}
	}
	builders := map[string]func(exp.Config) (*exp.Figure, error){
		"4": exp.Fig4, "5": exp.Fig5, "6": exp.Fig6, "7": exp.Fig7, "8": exp.Fig8,
	}
	switch strings.ToLower(fig) {
	case "4", "5", "6", "7", "8":
		f, err := builders[fig](cfg)
		if err != nil {
			return err
		}
		emit(f)
	case "9", "all":
		var figs []*exp.Figure
		for _, id := range []string{"4", "5", "6", "7", "8"} {
			f, err := builders[id](cfg)
			if err != nil {
				return err
			}
			if fig == "all" {
				emit(f)
			}
			figs = append(figs, f)
		}
		emit(exp.Summary(figs...))
		if fig == "all" {
			ub, err := exp.UpperBoundTable(cfg)
			if err != nil {
				return err
			}
			fmt.Println(ub)
			bt, err := exp.BoundsTable(100, []int{21, 57, 111, 333, 1021, 4005})
			if err != nil {
				return err
			}
			fmt.Println(bt)
			fmt.Println(exp.Table2Demo([]float64{0.5, 1, 2, 4, 8, 16, 64}))
		}
	case "bounds":
		bt, err := exp.BoundsTable(100, []int{21, 57, 111, 333, 1021, 4005})
		if err != nil {
			return err
		}
		fmt.Println(bt)
	case "table2":
		fmt.Println(exp.Table2Demo([]float64{0.5, 1, 2, 4, 8, 16, 64}))
	case "ub":
		ub, err := exp.UpperBoundTable(cfg)
		if err != nil {
			return err
		}
		fmt.Println(ub)
	case "sweep":
		ratios := []float64{1, 1.5, 2, 3, 4, 6, 8}
		for _, kind := range []exp.HeterogeneityKind{exp.SweepComm, exp.SweepComp, exp.SweepMemory} {
			f, err := exp.HeterogeneitySweep(kind, ratios, cfg)
			if err != nil {
				return err
			}
			emit(f)
		}
	case "robust":
		pl := platform.FullyHetero(2)
		inst := sched.Instance{R: cfg.Dim(100), S: cfg.Dim(1000), T: cfg.Dim(100)}
		out, err := exp.Robustness(pl, inst, []float64{0, 0.1, 0.2, 0.4, 0.8}, 5, cfg.Seed)
		if err != nil {
			return err
		}
		fmt.Println(out)
	default:
		return fmt.Errorf("unknown figure %q (want 4..9, all, bounds, table2, ub, sweep, robust)", fig)
	}
	return nil
}
