package main

import (
	"testing"

	"repro/internal/exp"
)

func TestRunDispatch(t *testing.T) {
	cfg := exp.Config{Scale: 0.08, Seed: 1}
	for _, fig := range []string{"4", "bounds", "table2", "ub", "robust"} {
		if err := run(fig, cfg, false); err != nil {
			t.Errorf("run(%q): %v", fig, err)
		}
	}
	if err := run("17", cfg, false); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("4", exp.Config{Scale: 0.08}, true); err != nil {
		t.Error(err)
	}
}
