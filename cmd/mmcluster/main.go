// Command mmcluster deploys the matrix product on the repository's FIRST
// distributed runtime: the gob-over-TCP protocol of internal/cluster, where
// workers dial a listening master. It is kept as a comparison baseline; the
// canonical wire protocol going forward is internal/net — length-prefixed
// binary frames, master dials workers, heartbeats, failover, pooled
// lease-able sessions — served by cmd/mmworker and driven by cmd/mmrun
// -distributed (one-shot) or the cmd/mmserve daemon (multi-job). New
// features land on internal/net; this runtime only has to keep working.
//
// Start workers first, then the master:
//
//	mmcluster -role worker -addr host:9777 -name node1
//	mmcluster -role master -addr :9777 -workers 3 -alg Het -r 8 -s 24 -t 6 -q 16
//
// The master schedules the product with the chosen algorithm (treating the
// connected workers as a homogeneous platform unless -specs is given),
// executes the plan over the network, and verifies the result.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	role := flag.String("role", "", "master or worker")
	addr := flag.String("addr", "127.0.0.1:9777", "master address")
	name := flag.String("name", "worker", "worker name (worker role)")
	workers := flag.Int("workers", 2, "number of workers to wait for (master role)")
	specs := flag.String("specs", "", "optional per-worker c:w:m specs, comma separated (master role)")
	alg := flag.String("alg", "Het", "scheduling algorithm (master role)")
	r := flag.Int("r", 8, "rows of C in blocks")
	s := flag.Int("s", 24, "columns of C in blocks")
	t := flag.Int("t", 6, "inner dimension in blocks")
	q := flag.Int("q", 16, "block edge")
	wait := flag.Duration("wait", 30*time.Second, "how long the master waits for workers")
	flag.Parse()

	var err error
	switch *role {
	case "worker":
		err = cluster.Serve(*addr, *name)
	case "master":
		err = master(*addr, *workers, *specs, *alg, sched.Instance{R: *r, S: *s, T: *t}, *q, *wait)
	default:
		err = fmt.Errorf("need -role master or -role worker")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmcluster:", err)
		os.Exit(1)
	}
}

func master(addr string, nWorkers int, specs, alg string, inst sched.Instance, q int, wait time.Duration) error {
	schedulers := map[string]sched.Scheduler{
		"hom": sched.Hom{}, "homi": sched.HomI{}, "het": sched.Het{},
		"orroml": sched.ORROML{}, "ommoml": sched.OMMOML{}, "oddoml": sched.ODDOML{}, "bmm": sched.BMM{},
	}
	s, ok := schedulers[strings.ToLower(alg)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	pl, err := buildPlatform(nWorkers, specs)
	if err != nil {
		return err
	}
	m, err := cluster.NewMaster(addr)
	if err != nil {
		return err
	}
	fmt.Printf("master listening on %s, waiting for %d workers…\n", m.Addr(), nWorkers)
	if err := m.WaitForWorkers(nWorkers, wait); err != nil {
		return err
	}
	fmt.Printf("workers connected: %v\n", m.Workers())

	res, err := s.Schedule(pl, inst)
	if err != nil {
		return err
	}
	fmt.Printf("scheduled %s: %d transfers, %d workers enrolled\n", res.Algorithm, len(res.Trace.Transfers), len(res.Enrolled))

	rng := rand.New(rand.NewSource(1))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		return err
	}
	start := time.Now()
	if err := m.Run(res.Plan(), inst.T, a, b, c); err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := m.Shutdown(); err != nil {
		return err
	}
	diff := c.MaxAbsDiff(want)
	fmt.Printf("distributed run finished in %v; max |C - reference| = %.3g\n", elapsed, diff)
	if diff > 1e-9 {
		return fmt.Errorf("verification FAILED")
	}
	fmt.Println("verification OK: C = C₀ + A·B")
	return nil
}

func buildPlatform(n int, specs string) (*platform.Platform, error) {
	if specs == "" {
		return platform.Homogeneous(n, 1, 1, 60), nil
	}
	ws, err := platform.ParseWorkers(specs)
	if err != nil {
		return nil, err
	}
	if len(ws) != n {
		return nil, fmt.Errorf("%d specs for %d workers", len(ws), n)
	}
	return platform.New(ws...)
}
