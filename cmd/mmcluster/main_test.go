package main

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
)

func TestBuildPlatform(t *testing.T) {
	pl, err := buildPlatform(3, "")
	if err != nil || pl.P() != 3 {
		t.Fatalf("default platform: %v %v", pl, err)
	}
	pl, err = buildPlatform(2, "1:1:60,2:2:40")
	if err != nil || pl.Workers[1].M != 40 {
		t.Fatalf("spec platform: %v %v", pl, err)
	}
	if _, err := buildPlatform(3, "1:1:60"); err == nil {
		t.Error("spec count mismatch accepted")
	}
	if _, err := buildPlatform(1, "1:1"); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestMasterEndToEnd(t *testing.T) {
	// Bring up two in-process workers, then drive the master() entry point.
	const n = 2
	var wg sync.WaitGroup
	addr := "127.0.0.1:39917"
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Retry until the master is listening.
			for j := 0; j < 100; j++ {
				if err := cluster.Serve(addr, "w"); err == nil {
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			t.Error("worker never connected")
		}(i)
	}
	err := master(addr, n, "", "oddoml", sched.Instance{R: 4, S: 8, T: 3}, 4, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
