package main

import (
	"math/rand"
	stdnet "net"
	"testing"
	"time"

	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
)

// TestServeOneSession drives a full master session against the daemon's
// serve loop: schedule, execute over loopback TCP, verify, shut down. The
// serve call must return once its single session ends.
func TestServeOneSession(t *testing.T) {
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	served := make(chan error, 1)
	go func() { served <- serve(ln, "test-worker", 50*time.Millisecond, 0, 1, 2, 16, nil) }()

	pl := platform.Homogeneous(1, 1, 1, 40)
	inst := sched.Instance{R: 3, S: 4, T: 2}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	q := 3
	rng := rand.New(rand.NewSource(5))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		t.Fatal(err)
	}

	m, err := mmnet.Dial([]string{ln.Addr().String()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if names := m.WorkerNames(); len(names) != 1 || names[0] != "test-worker" {
		t.Errorf("registered names = %v", names)
	}
	if err := m.Run(inst.T, res.Plan(), a, b, c); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("C wrong by %g", d)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("serve did not return after its single session")
	}
}
