// Command mmworker is the worker daemon of the distributed runtime: it
// listens for a master (cmd/mmrun -distributed, the cmd/mmserve daemon's
// fleet, or any internal/net Master), registers, receives C chunks and A/B
// installments, applies the block updates with the shared engine kernel,
// returns finished chunks, and beats a heartbeat so the master can tell a
// slow worker from a dead one.
//
// A session survives end-of-job: a fleet holds the connection open across
// many products (answering its keepalive pings between jobs), and a release
// frame returns the daemon to the accept loop without killing it — the
// worker process is never restarted between jobs or between masters.
//
// Start two workers and drive them one-shot:
//
//	mmworker -listen 127.0.0.1:9801 -name node1 &
//	mmworker -listen 127.0.0.1:9802 -name node2 &
//	mmrun -alg Het -distributed 127.0.0.1:9801,127.0.0.1:9802
//
// or hand them to a long-lived scheduling service:
//
//	mmserve -listen 127.0.0.1:9700 -workers 127.0.0.1:9801,127.0.0.1:9802
//
// A worker can also register itself with a running mmserve daemon *after*
// the daemon started — elastic fleet membership:
//
//	mmworker -listen 127.0.0.1:9803 -join 127.0.0.1:9700 -spec 1:1:60
//
// The daemon dials back, adds the worker to its fleet, and queued jobs (or,
// on an adaptive daemon, jobs already running) start using it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	stdnet "net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/kernel"
	mmnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/platform"
	mmserve "repro/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9801", "address to serve masters on")
	name := flag.String("name", "", "worker name announced at registration (default: listen address)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "heartbeat interval")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "drop a session whose socket stays silent this long (negative: never)")
	sessions := flag.Int("sessions", 0, "exit after this many master sessions (0: serve forever)")
	procs := flag.Int("procs", runtime.NumCPU(), "goroutines per installment's block updates (≤1: sequential); results are bitwise-identical regardless")
	cacheMB := flag.Int("cache-mb", 256, "panel cache budget in MiB, shared across master sessions so installed panels survive job churn (0: disable caching)")
	join := flag.String("join", "", "register with the mmserve daemon at this address after the listener is up (elastic fleet membership)")
	advertise := flag.String("advertise", "", "address the daemon should dial back (default: the listen address)")
	spec := flag.String("spec", "1:1:60", "declared c:w:m platform spec announced on -join")
	quiet := flag.Bool("quiet", false, "suppress session logging")
	debugAddr := flag.String("debug-addr", "", "opt-in HTTP debug address serving /metrics, /healthz and /debug/pprof (empty: off)")
	version := flag.Bool("version", false, "print build version and exit")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	if *version {
		fmt.Println("mmworker", obs.Version())
		return
	}
	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmworker:", err)
		os.Exit(2)
	}
	if *quiet {
		log = obs.NopLogger()
	}
	slog.SetDefault(log)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *listen, *name, *heartbeat, *idle, *sessions, *procs, *cacheMB, *join, *advertise, *spec, *debugAddr, log); err != nil {
		fmt.Fprintln(os.Stderr, "mmworker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, listen, name string, heartbeat, idle time.Duration, sessions, procs, cacheMB int, join, advertise, spec, debugAddr string, log *slog.Logger) error {
	ln, err := stdnet.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	if name == "" {
		name = ln.Addr().String()
	}
	if debugAddr != "" {
		bound, stopDebug, err := obs.ServeDebug(debugAddr, func() obs.Health {
			return obs.Health{OK: true, Payload: map[string]any{
				"component": "mmworker", "name": name,
				"kernel": kernel.Name(), "version": obs.Version(),
			}}
		})
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer stopDebug()
		log.Info("debug server up", "addr", bound)
	}
	// SIGINT/SIGTERM: close the listener so the accept loop winds down —
	// masters mid-job see the session drop and fail the worker over.
	unhook := context.AfterFunc(ctx, func() { ln.Close() })
	defer unhook()
	if join != "" {
		// Concurrent with the serve loop: the daemon's registration dials
		// this worker back, and that dial only completes once the loop below
		// is accepting. A failed join leaves a perfectly good worker daemon
		// running — log it, don't die.
		go func() {
			if err := joinDaemon(ctx, join, advertise, ln.Addr().String(), spec, log); err != nil {
				log.Error("fleet join failed", "err", err)
			}
		}()
	}
	err = serve(ln, name, heartbeat, idle, sessions, procs, cacheMB, log)
	if ctx.Err() != nil && errors.Is(err, stdnet.ErrClosed) {
		log.Info("signal received; exiting")
		return nil
	}
	return err
}

// joinDaemon announces this worker to a running mmserve daemon (elastic
// fleet membership): the daemon dials the advertised address back and the
// worker becomes leasable immediately.
func joinDaemon(ctx context.Context, daemon, advertise, listenAddr, spec string, log *slog.Logger) error {
	addr := advertise
	if addr == "" {
		// The daemon dials this address back, so it must be routable *from
		// the daemon*: a wildcard listen address ("[::]:9801", ":9801")
		// would make the daemon dial itself. Demand an explicit -advertise
		// rather than register a permanently-down worker.
		host, _, err := stdnet.SplitHostPort(listenAddr)
		if err == nil {
			if ip := stdnet.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
				return fmt.Errorf("-join with wildcard -listen %s needs -advertise host:port (the daemon must dial this worker back)", listenAddr)
			}
		}
		addr = listenAddr
	}
	ws, err := platform.ParseWorkers(spec)
	if err != nil || len(ws) != 1 {
		return fmt.Errorf("bad -spec %q (want one c:w:m triple): %v", spec, err)
	}
	jctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	i, err := mmserve.JoinFleet(jctx, daemon, addr, ws[0])
	if err != nil {
		return fmt.Errorf("join %s: %w", daemon, err)
	}
	log.Info("joined fleet", "daemon", daemon, "worker", i, "advertised", addr)
	return nil
}

// serve runs the accept loop on an existing listener (tests hand in a
// listener bound to an ephemeral port). A nil log serves silently.
func serve(ln stdnet.Listener, name string, heartbeat, idle time.Duration, sessions, procs, cacheMB int, log *slog.Logger) error {
	if name == "" {
		name = ln.Addr().String()
	}
	if log == nil {
		log = obs.NopLogger()
	}
	opts := mmnet.WorkerOptions{Heartbeat: heartbeat, IdleTimeout: idle, Procs: procs, Logger: log}
	if cacheMB > 0 {
		// One cache for the daemon's lifetime, not one per session: panels a
		// master installed stay resident after it disconnects, so the next
		// master (or the next job on an mmserve fleet) skips those transfers.
		opts.Cache = cache.NewPanelCache(int64(cacheMB) << 20)
	}
	log.Info("worker serving", "name", name, "addr", ln.Addr().String(),
		"kernel", kernel.Name(), "version", obs.Version())
	if sessions <= 0 {
		return mmnet.Serve(ln, name, opts)
	}
	for i := 0; i < sessions; i++ {
		// A master vanishing mid-session is an event the runtime tolerates
		// (that is what failover is for), so an errored session counts and
		// the daemon keeps serving; only a dead listener stops it.
		if err := mmnet.ServeOne(ln, name, opts); err != nil {
			if errors.Is(err, stdnet.ErrClosed) {
				return err
			}
			log.Warn("session failed", "worker", name, "session", i+1, "err", err)
		}
	}
	return nil
}
