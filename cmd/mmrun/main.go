// Command mmrun runs one product through the public matmul facade: a
// Session is opened on the in-process runtime (goroutine workers exchanging
// actual matrix blocks) or, with -distributed, on remote mmworker processes
// over TCP; the submitted job schedules the product with the chosen
// algorithm, executes the plan for real, and the result is verified against
// a reference multiplication.
//
// By default the plan runs on the pipelined executor: one dispatch goroutine
// per worker, so transfers to distinct workers and every worker's compute
// overlap. -pipelined=false falls back to the strictly sequential op loop;
// the computed C is bitwise-identical either way. With -pace (in-process
// only) transfers cost simulated wall-clock time, and -oneport keeps those
// paced transfer slots serialized as the paper's one-port model demands.
//
// SIGINT cancels gracefully: the in-flight job is aborted (mid-transfer
// included), workers are drained, and mmrun exits nonzero.
//
// Usage:
//
//	mmrun -alg Het -r 8 -s 24 -t 6 -q 16 -procs 4
//	mmrun -alg BMM -r 8 -s 24 -t 6 -q 16 -pace 50us -oneport
//	mmrun -alg Het -distributed 127.0.0.1:9801,127.0.0.1:9802
//
// -procs applies to the in-process goroutine workers; remote workers pick
// their own parallelism via mmworker -procs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/coded"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/matmul"
)

// options collects one mmrun invocation's knobs.
type options struct {
	alg         string
	inst        sched.Instance
	q           int
	seed        int64
	pace        time.Duration
	distributed string
	pipelined   bool
	onePort     bool
	procs       int
	redundancy  string
	debugAddr   string
}

func main() {
	var o options
	flag.StringVar(&o.alg, "alg", "Het", "algorithm: Hom, HomI, Het, ORROML, OMMOML, ODDOML, BMM")
	flag.IntVar(&o.inst.R, "r", 8, "rows of C in blocks")
	flag.IntVar(&o.inst.S, "s", 24, "columns of C in blocks")
	flag.IntVar(&o.inst.T, "t", 6, "inner dimension in blocks")
	flag.IntVar(&o.q, "q", 16, "block edge (elements)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed for matrix data")
	flag.DurationVar(&o.pace, "pace", 0, "per (block × unit link cost) transfer pacing, e.g. 50us")
	flag.StringVar(&o.distributed, "distributed", "", "comma-separated mmworker addresses; drive remote workers over TCP instead of in-process goroutines")
	flag.BoolVar(&o.pipelined, "pipelined", true, "use the concurrent per-worker executor (false: strictly sequential op loop)")
	flag.BoolVar(&o.onePort, "oneport", false, "serialize transfer slots across workers (one-port master); meaningful with -pace or -distributed under -pipelined")
	flag.IntVar(&o.procs, "procs", 0, "goroutines per in-process worker's block updates (≤1: sequential); remote workers set their own via mmworker -procs")
	flag.StringVar(&o.redundancy, "redundancy", "", "proactive straggler mitigation: off, replicated[:r] or coded[:r] — r redundant units per wave raced through the k-of-n gate")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "opt-in HTTP debug address serving /metrics, /healthz and /debug/pprof (empty: off)")
	version := flag.Bool("version", false, "print build version and exit")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	if *version {
		fmt.Println("mmrun", obs.Version())
		return
	}
	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmrun:", err)
		os.Exit(2)
	}
	slog.SetDefault(log)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "mmrun:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	if o.debugAddr != "" {
		bound, stopDebug, err := obs.ServeDebug(o.debugAddr, func() obs.Health {
			return obs.Health{OK: true, Payload: map[string]any{
				"component": "mmrun", "version": obs.Version(), "kernel": kernel.Name(),
			}}
		})
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer stopDebug()
		slog.Info("debug server up", "addr", bound)
	}
	opts := []matmul.Option{
		matmul.WithAlgorithm(o.alg),
		matmul.WithPipelined(o.pipelined),
		matmul.WithOnePort(o.onePort),
	}
	if o.redundancy != "" {
		mode, r, err := coded.ParseSpec(o.redundancy)
		if err != nil {
			return err
		}
		if mode != coded.ModeOff {
			opts = append(opts, matmul.WithRedundancy(string(mode), r))
		}
	}
	runtime := "in-process"
	if o.distributed != "" {
		if o.pace != 0 {
			return fmt.Errorf("-pace applies to the in-process engine only; remote links are real, drop it with -distributed")
		}
		if o.procs != 0 {
			return fmt.Errorf("-procs applies to the in-process engine only; remote workers set their own parallelism via mmworker -procs")
		}
		var addrs []string
		for _, a := range strings.Split(o.distributed, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fmt.Errorf("-distributed given but no worker addresses parsed")
		}
		// mmrun is a one-shot driver: its workers exist for this run, so the
		// session shuts the daemons down on Close (as mmrun always has).
		opts = append(opts, matmul.WithRuntime(matmul.Distributed(addrs...)), matmul.WithWorkerShutdown())
		runtime = fmt.Sprintf("distributed over %d workers", len(addrs))
	} else {
		if o.pace != 0 {
			opts = append(opts, matmul.WithPacing(o.pace))
		}
		if o.procs != 0 {
			opts = append(opts, matmul.WithProcs(o.procs))
		}
	}

	sess, err := matmul.Open(ctx, opts...)
	if err != nil {
		return err
	}
	defer sess.Close()

	rng := rand.New(rand.NewSource(o.seed))
	a := matrix.NewBlockMatrix(o.inst.R, o.inst.T, o.q)
	b := matrix.NewBlockMatrix(o.inst.T, o.inst.S, o.q)
	c := matrix.NewBlockMatrix(o.inst.R, o.inst.S, o.q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		return err
	}

	executor := "sequential"
	if o.pipelined {
		executor = "pipelined"
	}
	fmt.Printf("mmrun %s: running %s via matmul.Session (%s, %s executor, kernel %s)\n",
		obs.Version(), o.alg, runtime, executor, kernel.Name())
	start := time.Now()
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		return err
	}
	if err := job.Wait(context.Background()); err != nil {
		return err // SIGINT surfaces here as a context.Canceled-wrapping error
	}
	elapsed := time.Since(start)

	diff := c.MaxAbsDiff(want)
	fmt.Printf("executed for real (%s) in %v; max |C - reference| = %.3g\n", executor, elapsed, diff)
	if diff > 1e-9 {
		return fmt.Errorf("verification FAILED (deviation %g)", diff)
	}
	fmt.Println("verification OK: C = C₀ + A·B")
	// Close is also the worker teardown on the distributed runtime; a failed
	// shutdown leaves daemons running and deserves a diagnostic (the
	// deferred second Close is an idempotent no-op).
	if err := sess.Close(); err != nil {
		slog.Warn("worker shutdown failed", "err", err)
	}
	return nil
}
