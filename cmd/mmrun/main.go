// Command mmrun schedules a product with a chosen algorithm and then
// executes the plan for real — either on the in-process channel engine
// (goroutine workers exchanging actual matrix blocks) or, with -distributed,
// against remote mmworker processes over TCP. Both paths perform genuine
// floating-point updates through the same executor, and the result is
// verified against a reference multiplication.
//
// Usage:
//
//	mmrun -alg Het -r 8 -s 24 -t 6 -q 16
//	mmrun -alg BMM -r 8 -s 24 -t 6 -q 16 -pace 50us
//	mmrun -alg Het -distributed 127.0.0.1:9801,127.0.0.1:9802
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	alg := flag.String("alg", "Het", "algorithm: Hom, HomI, Het, ORROML, OMMOML, ODDOML, BMM")
	r := flag.Int("r", 8, "rows of C in blocks")
	s := flag.Int("s", 24, "columns of C in blocks")
	t := flag.Int("t", 6, "inner dimension in blocks")
	q := flag.Int("q", 16, "block edge (elements)")
	seed := flag.Int64("seed", 1, "random seed for matrix data")
	pace := flag.Duration("pace", 0, "per (block × unit link cost) transfer pacing, e.g. 50us")
	distributed := flag.String("distributed", "", "comma-separated mmworker addresses; drive remote workers over TCP instead of in-process goroutines")
	flag.Parse()

	if err := run(*alg, sched.Instance{R: *r, S: *s, T: *t}, *q, *seed, *pace, *distributed); err != nil {
		fmt.Fprintln(os.Stderr, "mmrun:", err)
		os.Exit(1)
	}
}

func run(alg string, inst sched.Instance, q int, seed int64, pace time.Duration, distributed string) error {
	schedulers := map[string]sched.Scheduler{
		"hom": sched.Hom{}, "homi": sched.HomI{}, "het": sched.Het{},
		"orroml": sched.ORROML{}, "ommoml": sched.OMMOML{}, "oddoml": sched.ODDOML{}, "bmm": sched.BMM{},
	}
	s, ok := schedulers[strings.ToLower(alg)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	var addrs []string
	var pl *platform.Platform
	if distributed != "" {
		if pace != 0 {
			return fmt.Errorf("-pace applies to the in-process engine only; remote links are real, drop it with -distributed")
		}
		for _, a := range strings.Split(distributed, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fmt.Errorf("-distributed given but no worker addresses parsed")
		}
		// One platform slot per remote worker; remote capabilities are not
		// probed yet, so model them as homogeneous.
		pl = platform.Homogeneous(len(addrs), 1, 1, 60)
	} else {
		// A small heterogeneous platform whose memories are expressed in
		// blocks; chunk edges stay small so the plan exercises many chunks.
		pl = platform.MustNew(
			platform.Worker{C: 1, W: 1, M: 60},
			platform.Worker{C: 1.5, W: 1.2, M: 40},
			platform.Worker{C: 2, W: 1.5, M: 24},
			platform.Worker{C: 3, W: 2, M: 96},
		)
	}

	res, err := s.Schedule(pl, inst)
	if err != nil {
		return err
	}
	fmt.Printf("scheduled %s: makespan %.1f units, %d workers, %d transfers\n",
		res.Algorithm, res.Stats.Makespan, len(res.Enrolled), len(res.Trace.Transfers))

	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		return err
	}

	start := time.Now()
	if len(addrs) > 0 {
		m, err := mmnet.Dial(addrs, nil)
		if err != nil {
			return err
		}
		fmt.Printf("driving %d remote workers: %v\n", m.Workers(), m.WorkerNames())
		if err := m.Run(inst.T, res.Plan(), a, b, c); err != nil {
			m.Close()
			return err
		}
		if err := m.Shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "mmrun: shutdown:", err)
		}
	} else {
		if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T, Platform: pl, TimePerUnit: pace}, res.Plan(), a, b, c); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	diff := c.MaxAbsDiff(want)
	fmt.Printf("executed for real in %v; max |C - reference| = %.3g\n", elapsed, diff)
	if diff > 1e-9 {
		return fmt.Errorf("verification FAILED (deviation %g)", diff)
	}
	fmt.Println("verification OK: C = C₀ + A·B")
	return nil
}
