// Command mmrun schedules a product with a chosen algorithm and then
// executes the plan for real — either on the in-process channel engine
// (goroutine workers exchanging actual matrix blocks) or, with -distributed,
// against remote mmworker processes over TCP. Both paths perform genuine
// floating-point updates through the same executor, and the result is
// verified against a reference multiplication.
//
// By default the plan runs on the pipelined executor: one dispatch goroutine
// per worker, so transfers to distinct workers and every worker's compute
// overlap. -pipelined=false falls back to the strictly sequential op loop;
// the computed C is bitwise-identical either way. With -pace (in-process
// only) transfers cost simulated wall-clock time, and -oneport keeps those
// paced transfer slots serialized as the paper's one-port model demands.
//
// Usage:
//
//	mmrun -alg Het -r 8 -s 24 -t 6 -q 16 -procs 4
//	mmrun -alg BMM -r 8 -s 24 -t 6 -q 16 -pace 50us -oneport
//	mmrun -alg Het -distributed 127.0.0.1:9801,127.0.0.1:9802
//
// -procs applies to the in-process goroutine workers; remote workers pick
// their own parallelism via mmworker -procs.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
)

// options collects one mmrun invocation's knobs.
type options struct {
	alg         string
	inst        sched.Instance
	q           int
	seed        int64
	pace        time.Duration
	distributed string
	pipelined   bool
	onePort     bool
	procs       int
}

func main() {
	var o options
	flag.StringVar(&o.alg, "alg", "Het", "algorithm: Hom, HomI, Het, ORROML, OMMOML, ODDOML, BMM")
	flag.IntVar(&o.inst.R, "r", 8, "rows of C in blocks")
	flag.IntVar(&o.inst.S, "s", 24, "columns of C in blocks")
	flag.IntVar(&o.inst.T, "t", 6, "inner dimension in blocks")
	flag.IntVar(&o.q, "q", 16, "block edge (elements)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed for matrix data")
	flag.DurationVar(&o.pace, "pace", 0, "per (block × unit link cost) transfer pacing, e.g. 50us")
	flag.StringVar(&o.distributed, "distributed", "", "comma-separated mmworker addresses; drive remote workers over TCP instead of in-process goroutines")
	flag.BoolVar(&o.pipelined, "pipelined", true, "use the concurrent per-worker executor (false: strictly sequential op loop)")
	flag.BoolVar(&o.onePort, "oneport", false, "serialize transfer slots across workers (one-port master); meaningful with -pace or -distributed under -pipelined")
	flag.IntVar(&o.procs, "procs", 0, "goroutines per in-process worker's block updates (≤1: sequential); remote workers set their own via mmworker -procs")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mmrun:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	schedulers := map[string]sched.Scheduler{
		"hom": sched.Hom{}, "homi": sched.HomI{}, "het": sched.Het{},
		"orroml": sched.ORROML{}, "ommoml": sched.OMMOML{}, "oddoml": sched.ODDOML{}, "bmm": sched.BMM{},
	}
	s, ok := schedulers[strings.ToLower(o.alg)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", o.alg)
	}

	var addrs []string
	var pl *platform.Platform
	if o.distributed != "" {
		if o.pace != 0 {
			return fmt.Errorf("-pace applies to the in-process engine only; remote links are real, drop it with -distributed")
		}
		if o.procs != 0 {
			return fmt.Errorf("-procs applies to the in-process engine only; remote workers set their own parallelism via mmworker -procs")
		}
		for _, a := range strings.Split(o.distributed, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fmt.Errorf("-distributed given but no worker addresses parsed")
		}
		// One platform slot per remote worker; remote capabilities are not
		// probed yet, so model them as homogeneous.
		pl = platform.Homogeneous(len(addrs), 1, 1, 60)
	} else {
		// A small heterogeneous platform whose memories are expressed in
		// blocks; chunk edges stay small so the plan exercises many chunks.
		pl = platform.MustNew(
			platform.Worker{C: 1, W: 1, M: 60},
			platform.Worker{C: 1.5, W: 1.2, M: 40},
			platform.Worker{C: 2, W: 1.5, M: 24},
			platform.Worker{C: 3, W: 2, M: 96},
		)
	}

	res, err := s.Schedule(pl, o.inst)
	if err != nil {
		return err
	}
	fmt.Printf("scheduled %s: makespan %.1f units, %d workers, %d transfers\n",
		res.Algorithm, res.Stats.Makespan, len(res.Enrolled), len(res.Trace.Transfers))

	rng := rand.New(rand.NewSource(o.seed))
	a := matrix.NewBlockMatrix(o.inst.R, o.inst.T, o.q)
	b := matrix.NewBlockMatrix(o.inst.T, o.inst.S, o.q)
	c := matrix.NewBlockMatrix(o.inst.R, o.inst.S, o.q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		return err
	}

	executor := "sequential"
	if o.pipelined {
		executor = "pipelined"
	}
	start := time.Now()
	if len(addrs) > 0 {
		m, err := mmnet.Dial(addrs, &mmnet.MasterOptions{OnePort: o.onePort})
		if err != nil {
			return err
		}
		fmt.Printf("driving %d remote workers (%s executor): %v\n", m.Workers(), executor, m.WorkerNames())
		runErr := error(nil)
		if o.pipelined {
			runErr = m.RunPipelined(o.inst.T, res.Plan(), a, b, c)
		} else {
			runErr = m.Run(o.inst.T, res.Plan(), a, b, c)
		}
		if runErr != nil {
			m.Close()
			return runErr
		}
		if err := m.Shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "mmrun: shutdown:", err)
		}
	} else {
		cfg := engine.Config{
			Workers: pl.P(), T: o.inst.T, Platform: pl, TimePerUnit: o.pace,
			Pipelined: o.pipelined, OnePort: o.onePort, Procs: o.procs,
		}
		if err := engine.Run(cfg, res.Plan(), a, b, c); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	diff := c.MaxAbsDiff(want)
	fmt.Printf("executed for real (%s) in %v; max |C - reference| = %.3g\n", executor, elapsed, diff)
	if diff > 1e-9 {
		return fmt.Errorf("verification FAILED (deviation %g)", diff)
	}
	fmt.Println("verification OK: C = C₀ + A·B")
	return nil
}
