package main

import (
	stdnet "net"
	"strings"
	"testing"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/sched"
)

func TestRunVerifiesSmallProduct(t *testing.T) {
	if err := run("het", sched.Instance{R: 4, S: 10, T: 3}, 4, 1, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run("nope", sched.Instance{R: 2, S: 2, T: 2}, 2, 1, 0, ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestRunDistributedAgainstLoopbackWorkers is the acceptance check for
// -distributed: two loopback workers, the full mmrun path (schedule, drive
// over TCP, verify C within 1e-9 of the serial product — run fails itself if
// the deviation exceeds that).
func TestRunDistributedAgainstLoopbackWorkers(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs = append(addrs, ln.Addr().String())
		go mmnet.Serve(ln, addrs[i], mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond})
	}
	if err := run("het", sched.Instance{R: 4, S: 10, T: 3}, 4, 1, 0, strings.Join(addrs, ",")); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributedRejectsEmptyAddressList(t *testing.T) {
	if err := run("het", sched.Instance{R: 2, S: 2, T: 2}, 2, 1, 0, " , "); err == nil {
		t.Fatal("empty address list accepted")
	}
}
