package main

import (
	"context"
	stdnet "net"
	"strings"
	"testing"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/sched"
)

func TestRunVerifiesSmallProduct(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		o := options{alg: "het", inst: sched.Instance{R: 4, S: 10, T: 3}, q: 4, seed: 1, pipelined: pipelined}
		if err := run(context.Background(), o); err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
	}
}

func TestRunPipelinedWithProcsAndOnePortPace(t *testing.T) {
	o := options{
		alg: "bmm", inst: sched.Instance{R: 4, S: 10, T: 3}, q: 4, seed: 2,
		pace: 2 * time.Microsecond, pipelined: true, onePort: true, procs: 2,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run(context.Background(), options{alg: "nope", inst: sched.Instance{R: 2, S: 2, T: 2}, q: 2, seed: 1}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestRunDistributedAgainstLoopbackWorkers is the acceptance check for
// -distributed: two loopback workers, the full mmrun path (schedule, drive
// over TCP with both executors, verify C within 1e-9 of the serial product —
// run fails itself if the deviation exceeds that).
func TestRunDistributedAgainstLoopbackWorkers(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs = append(addrs, ln.Addr().String())
		go mmnet.Serve(ln, addrs[i], mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond})
	}
	for _, pipelined := range []bool{false, true} {
		o := options{
			alg: "het", inst: sched.Instance{R: 4, S: 10, T: 3}, q: 4, seed: 1,
			distributed: strings.Join(addrs, ","), pipelined: pipelined,
		}
		if err := run(context.Background(), o); err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
	}
}

func TestRunDistributedRejectsEmptyAddressList(t *testing.T) {
	if err := run(context.Background(), options{alg: "het", inst: sched.Instance{R: 2, S: 2, T: 2}, q: 2, seed: 1, distributed: " , "}); err == nil {
		t.Fatal("empty address list accepted")
	}
}

func TestRunDistributedRejectsProcs(t *testing.T) {
	o := options{alg: "het", inst: sched.Instance{R: 2, S: 2, T: 2}, q: 2, seed: 1, distributed: "127.0.0.1:1", procs: 4}
	if err := run(context.Background(), o); err == nil || !strings.Contains(err.Error(), "mmworker -procs") {
		t.Fatalf("-procs with -distributed not rejected clearly: %v", err)
	}
}

// TestRunCancelledContext is the SIGINT path: a paced run whose context is
// cancelled mid-flight must come back promptly with a cancellation error
// instead of riding out the modeled transfer time.
func TestRunCancelledContext(t *testing.T) {
	o := options{
		alg: "het", inst: sched.Instance{R: 8, S: 16, T: 6}, q: 8, seed: 3,
		pace: time.Millisecond, pipelined: true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := run(ctx, o)
	if err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v, want prompt return", elapsed)
	}
}
