package main

import (
	"testing"

	"repro/internal/sched"
)

func TestRunVerifiesSmallProduct(t *testing.T) {
	if err := run("het", sched.Instance{R: 4, S: 10, T: 3}, 4, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run("nope", sched.Instance{R: 2, S: 2, T: 2}, 2, 1, 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
