package main

import (
	"context"
	stdnet "net"
	"strings"
	"testing"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/sched"
	"repro/internal/serve"
)

// TestDaemonSubmitStatus drives the whole CLI surface on loopback: a
// 2-worker fleet, the daemon loop, one seeded client submission (with its
// local verification), and a status query.
func TestDaemonSubmitStatus(t *testing.T) {
	var workerAddrs []string
	for i := 0; i < 2; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		workerAddrs = append(workerAddrs, ln.Addr().String())
		go mmnet.Serve(ln, ln.Addr().String(), mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond})
	}

	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	o := options{
		workers:   strings.Join(workerAddrs, ","),
		specs:     "1:1:60,1.5:1.2:40",
		alg:       "Het",
		keepalive: 200 * time.Millisecond,
		quiet:     true,
	}
	go daemon(context.Background(), ln, o)

	client := options{
		addr: ln.Addr().String(),
		inst: sched.Instance{R: 4, S: 6, T: 3},
		q:    4, seed: 11, timeout: time.Minute, verify: true,
	}
	if err := runSubmit(context.Background(), client); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := runStatus(context.Background(), client); err != nil {
		t.Fatalf("status: %v", err)
	}
	st, err := serve.FetchStats(ln.Addr().String(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Errorf("done = %d, want 1", st.Done)
	}
}

// TestParseSpecs covers the c:w:m parser.
func TestParseSpecs(t *testing.T) {
	ws, err := parseSpecs("", 3)
	if err != nil || len(ws) != 3 {
		t.Fatalf("default specs: %v %v", ws, err)
	}
	ws, err = parseSpecs("1:2:30, 2:1:60", 2)
	if err != nil || ws[1].C != 2 || ws[0].M != 30 {
		t.Fatalf("parsed %v, err %v", ws, err)
	}
	if _, err := parseSpecs("1:2", 1); err == nil {
		t.Error("malformed spec accepted")
	}
	if _, err := parseSpecs("1:2:30", 2); err == nil {
		t.Error("count mismatch accepted")
	}
}
