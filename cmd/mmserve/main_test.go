package main

import (
	"context"
	stdnet "net"
	"strings"
	"testing"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
)

// TestDaemonSubmitStatus drives the whole CLI surface on loopback: a
// 2-worker fleet, the daemon loop, one seeded client submission (with its
// local verification), and a status query.
func TestDaemonSubmitStatus(t *testing.T) {
	var workerAddrs []string
	for i := 0; i < 2; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		workerAddrs = append(workerAddrs, ln.Addr().String())
		go mmnet.Serve(ln, ln.Addr().String(), mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond})
	}

	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	o := options{
		workers:   strings.Join(workerAddrs, ","),
		specs:     "1:1:60,1.5:1.2:40",
		alg:       "Het",
		keepalive: 200 * time.Millisecond,
		cache:     true, // cacheless workers: the daemon's have/need handshake must fall back cleanly
		quiet:     true,
	}
	go daemon(context.Background(), ln, o)

	client := options{
		addr: ln.Addr().String(),
		inst: sched.Instance{R: 4, S: 6, T: 3},
		q:    4, seed: 11, timeout: time.Minute, verify: true,
	}
	if err := runSubmit(context.Background(), client); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := runStatus(context.Background(), client); err != nil {
		t.Fatalf("status: %v", err)
	}
	st, err := serve.FetchStats(ln.Addr().String(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Errorf("done = %d, want 1", st.Done)
	}
}

// TestParseSpecs covers the c:w:m parser.
func TestParseSpecs(t *testing.T) {
	ws, err := parseSpecs("", 3)
	if err != nil || len(ws) != 3 {
		t.Fatalf("default specs: %v %v", ws, err)
	}
	ws, err = parseSpecs("1:2:30, 2:1:60", 2)
	if err != nil || ws[1].C != 2 || ws[0].M != 30 {
		t.Fatalf("parsed %v, err %v", ws, err)
	}
	if _, err := parseSpecs("1:2", 1); err == nil {
		t.Error("malformed spec accepted")
	}
	if _, err := parseSpecs("1:2:30", 2); err == nil {
		t.Error("count mismatch accepted")
	}
}

// TestAdaptiveDaemonJoinAndEstimates drives the elastic daemon surface: an
// adaptive daemon over one worker, a second worker joining after startup
// (the mmworker -join wire path), a submission on the grown fleet, and a
// status snapshot carrying live measured estimates.
func TestAdaptiveDaemonJoinAndEstimates(t *testing.T) {
	var workerAddrs []string
	for i := 0; i < 2; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		workerAddrs = append(workerAddrs, ln.Addr().String())
		go mmnet.Serve(ln, ln.Addr().String(), mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond})
	}

	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	o := options{
		workers:   workerAddrs[0],
		alg:       "Het",
		keepalive: 200 * time.Millisecond,
		adaptive:  true,
		quiet:     true,
	}
	go daemon(context.Background(), ln, o)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := serve.JoinFleet(ctx, ln.Addr().String(), workerAddrs[1], platform.Worker{C: 1, W: 1, M: 60}); err != nil {
		t.Fatalf("join: %v", err)
	}

	client := options{
		addr: ln.Addr().String(),
		inst: sched.Instance{R: 6, S: 9, T: 4},
		q:    4, seed: 3, timeout: time.Minute, verify: true,
	}
	if err := runSubmit(context.Background(), client); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := runStatus(context.Background(), client); err != nil {
		t.Fatalf("status: %v", err)
	}
	st, err := serve.FetchStats(ln.Addr().String(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Adaptive {
		t.Error("daemon does not report adaptive scheduling")
	}
	if len(st.Workers) != 2 {
		t.Fatalf("fleet size %d after join, want 2", len(st.Workers))
	}
	sampled := 0
	for _, w := range st.Workers {
		if w.Samples > 0 {
			sampled++
		}
	}
	if sampled == 0 {
		t.Error("no live estimates after a completed job on an adaptive daemon")
	}
}
