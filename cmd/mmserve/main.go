// Command mmserve is the multi-job scheduling service: a long-lived daemon
// that holds a persistent fleet of mmworker sessions open, queues submitted
// products, picks a throughput-best worker subset per job (the paper's
// resource selection, applied per product), and runs the leased jobs
// concurrently — one daemon, many products, no worker restarts in between.
//
// Daemon mode dials the fleet once and listens for clients:
//
//	mmworker -listen 127.0.0.1:9801 &   # ×4 …
//	mmserve -listen 127.0.0.1:9700 \
//	        -workers 127.0.0.1:9801,127.0.0.1:9802,127.0.0.1:9803,127.0.0.1:9804
//
// Client mode streams A, B and C to the daemon and receives the updated C
// (matrices are generated from -seed here; a library client submits real
// data through a matmul.Session on the Remote runtime). SIGINT mid-wait
// sends the protocol's cancel frame, so the daemon dequeues or aborts the
// job instead of running it for a vanished client; SIGINT in daemon mode
// drains the queue and shuts down gracefully.
//
//	mmserve -submit -addr 127.0.0.1:9700 -r 8 -s 24 -t 6 -q 16 -seed 7
//	mmserve -status -addr 127.0.0.1:9700
//
// Resource-selection knobs: -specs gives per-worker c:w:m platform
// descriptions (heterogeneous fleets get heterogeneous selections), -alg
// picks the scheduling algorithm, and -max-workers-per-job caps any one
// lease so concurrent submissions always split the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	stdnet "net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/coded"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/matmul"
)

type options struct {
	// daemon
	listen     string
	workers    string
	specs      string
	alg        string
	maxPerJob  int
	keepalive  time.Duration
	adaptive   bool
	drift      float64
	cache      bool
	redundancy string
	queue      string
	admission  string
	aging      time.Duration
	quiet      bool
	traceDir   string
	debugAddr  string
	logLevel   string
	logFormat  string
	// client
	submit  bool
	status  bool
	addr    string
	inst    sched.Instance
	q       int
	class   string
	seed    int64
	timeout time.Duration
	verify  bool
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:9700", "daemon: address to serve clients on")
	flag.StringVar(&o.workers, "workers", "", "daemon: comma-separated mmworker addresses (required)")
	flag.StringVar(&o.specs, "specs", "", "daemon: per-worker c:w:m specs, comma separated (default: homogeneous 1:1:60)")
	flag.StringVar(&o.alg, "alg", "Het", "daemon: per-job scheduling algorithm: Hom, HomI, Het, ORROML, OMMOML, ODDOML, BMM")
	flag.IntVar(&o.maxPerJob, "max-workers-per-job", 0, "daemon: cap any one job's lease (0: split the idle fleet across queued jobs)")
	flag.DurationVar(&o.keepalive, "keepalive", 15*time.Second, "daemon: idle fleet connection ping interval (negative: never)")
	flag.BoolVar(&o.adaptive, "adaptive", true, "daemon: elastic runtime — measured-throughput selection, mid-job re-planning, post-startup worker joins attached to running jobs")
	flag.Float64Var(&o.drift, "drift", 0, "daemon: relative estimate drift that re-plans a running lease (0: default 0.5; negative: off)")
	flag.BoolVar(&o.cache, "cache", true, "daemon: operand-affinity scheduling over the workers' panel caches — route jobs toward workers already holding the operand bits")
	flag.StringVar(&o.redundancy, "redundancy", "", "daemon: proactive straggler mitigation on every lease: off, replicated[:r] or coded[:r] (:0 lets the measured estimates suggest r)")
	flag.StringVar(&o.queue, "queue", "fifo", "daemon: queue policy: fifo, sjf (least work first, aging-bounded) or priority (SLO class order)")
	flag.StringVar(&o.admission, "admission", "", "daemon: token-bucket admission control as rate[:burst] jobs/s per SLO class (empty: unbounded queue)")
	flag.DurationVar(&o.aging, "aging", 0, "daemon: starvation bound for sjf/priority — a job queued this long is dispatched next regardless (0: 15s default)")
	flag.BoolVar(&o.quiet, "quiet", false, "daemon: suppress job and fleet logging")
	flag.StringVar(&o.traceDir, "trace-dir", "", "daemon: write one Chrome trace-event JSON file per completed job into this directory (Perfetto-loadable; empty: off)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "daemon: opt-in HTTP debug address serving /metrics, /healthz and /debug/pprof (empty: off)")
	flag.StringVar(&o.logLevel, "log-level", "info", "log verbosity: debug, info, warn, error")
	flag.StringVar(&o.logFormat, "log-format", "text", "log format: text or json")
	version := flag.Bool("version", false, "print build version and exit")
	flag.BoolVar(&o.submit, "submit", false, "client: submit one product and wait for C")
	flag.BoolVar(&o.status, "status", false, "client: print the daemon's fleet and job snapshot")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:9700", "client: daemon address")
	flag.IntVar(&o.inst.R, "r", 8, "client: rows of C in blocks")
	flag.IntVar(&o.inst.S, "s", 24, "client: columns of C in blocks")
	flag.IntVar(&o.inst.T, "t", 6, "client: inner dimension in blocks")
	flag.IntVar(&o.q, "q", 16, "client: block edge (elements)")
	flag.StringVar(&o.class, "class", "", "client: job SLO class: interactive, standard or batch (empty: standard)")
	flag.Int64Var(&o.seed, "seed", 1, "client: random seed for matrix data")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Minute, "client: bound on the whole submission exchange")
	flag.BoolVar(&o.verify, "verify", true, "client: check the returned C against a local reference product")
	flag.Parse()

	if *version {
		fmt.Println("mmserve", obs.Version())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case o.submit:
		err = runSubmit(ctx, o)
	case o.status:
		err = runStatus(ctx, o)
	default:
		err = runDaemon(ctx, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmserve:", err)
		os.Exit(1)
	}
}

// runDaemon brings up the fleet and serves clients until the process dies
// or ctx is cancelled (SIGINT), which closes the listener, fails the queued
// jobs, waits for running leases, and returns the worker sessions to their
// daemons.
func runDaemon(ctx context.Context, o options) error {
	ln, err := stdnet.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	return daemon(ctx, ln, o)
}

// daemon serves clients on an existing listener (tests hand in an ephemeral
// port) until the listener closes or ctx is cancelled.
func daemon(ctx context.Context, ln stdnet.Listener, o options) error {
	addrs := splitList(o.workers)
	if len(addrs) == 0 {
		return fmt.Errorf("daemon mode needs -workers (or use -submit / -status for client mode)")
	}
	specs, err := parseSpecs(o.specs, len(addrs))
	if err != nil {
		return err
	}
	scheduler, err := pickScheduler(o.alg)
	if err != nil {
		return err
	}
	redMode, redR, err := coded.ParseSpec(o.redundancy)
	if err != nil {
		return err
	}
	// Validate the queue policy here so a typo fails startup loudly instead
	// of silently serving FIFO.
	queuePolicy, err := serve.ParseQueuePolicy(o.queue)
	if err != nil {
		return err
	}
	admRate, admBurst, err := parseAdmission(o.admission)
	if err != nil {
		return err
	}
	log, err := obs.NewLogger(os.Stderr, o.logLevel, o.logFormat)
	if err != nil {
		return err
	}
	if o.quiet {
		log = obs.NopLogger()
	}
	slog.SetDefault(log)
	if o.traceDir != "" {
		if err := os.MkdirAll(o.traceDir, 0o755); err != nil {
			return fmt.Errorf("-trace-dir: %w", err)
		}
	}

	fleet, err := serve.NewFleet(addrs, specs, serve.FleetOptions{Keepalive: o.keepalive, Logger: log})
	if err != nil {
		return err
	}
	defer fleet.Close()
	srv := serve.NewServer(fleet, serve.Config{
		Scheduler: scheduler, MaxWorkersPerJob: o.maxPerJob,
		Adaptive: o.adaptive, DriftThreshold: o.drift,
		NoCache: !o.cache, Logger: log, TraceDir: o.traceDir,
		Redundancy: string(redMode), RedundancyFactor: redR,
		QueuePolicy: queuePolicy, AgingBound: o.aging,
		AdmissionRate: admRate, AdmissionBurst: admBurst,
	})
	defer srv.Close()

	if o.debugAddr != "" {
		bound, stopDebug, err := obs.ServeDebug(o.debugAddr, func() obs.Health {
			// Healthy while at least one fleet worker is reachable: a daemon
			// with every worker down accepts jobs it cannot run.
			st := srv.Status()
			up := 0
			for _, w := range st.Workers {
				if w.State != "down" {
					up++
				}
			}
			return obs.Health{OK: up > 0, Payload: map[string]any{
				"component": "mmserve", "version": obs.Version(), "kernel": st.Kernel,
				"workers": len(st.Workers), "workers_up": up,
				"queued": st.Queued, "running": st.Running,
			}}
		})
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer stopDebug()
		log.Info("debug server up", "addr", bound)
	}

	// SIGINT: stop accepting clients; the deferred Close calls fail the
	// queued jobs, ride out the running leases, and release the fleet.
	unhook := context.AfterFunc(ctx, func() { ln.Close() })
	defer unhook()

	log.Info("daemon up", "addr", ln.Addr().String(), "workers", len(addrs),
		"algorithm", scheduler.Name(), "queue", queuePolicy,
		"kernel", kernel.Name(), "version", obs.Version())
	err = srv.ListenAndServe(ln)
	if ctx.Err() != nil {
		log.Info("signal received; draining jobs and releasing the fleet")
		return nil
	}
	return err
}

// runSubmit generates a seeded product, submits it through a matmul Session
// on the Remote runtime, and verifies the answer. ctx cancellation (SIGINT)
// cancels the daemon-side job, not just the local wait.
func runSubmit(ctx context.Context, o options) error {
	if err := o.inst.Validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(o.seed))
	a := matrix.NewBlockMatrix(o.inst.R, o.inst.T, o.q)
	b := matrix.NewBlockMatrix(o.inst.T, o.inst.S, o.q)
	c := matrix.NewBlockMatrix(o.inst.R, o.inst.S, o.q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	var want *matrix.BlockMatrix
	if o.verify {
		want = c.Clone()
		if err := matrix.Multiply(want, a, b); err != nil {
			return err
		}
	}

	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	sess, err := matmul.Open(ctx, matmul.WithRuntime(matmul.Remote(o.addr)))
	if err != nil {
		return err
	}
	defer sess.Close()

	var subOpts []matmul.SubmitOption
	if o.class != "" {
		subOpts = append(subOpts, matmul.WithClass(o.class))
	}
	start := time.Now()
	job, err := sess.Submit(ctx, a, b, c, subOpts...)
	if err != nil {
		return err
	}
	if err := job.Wait(context.Background()); err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("job canceled (daemon notified): %w", err)
		}
		return err
	}
	fmt.Printf("job %d: C(%dx%d blocks, q=%d) returned in %v\n",
		job.Status().RemoteID, c.Rows, c.Cols, c.Q, time.Since(start))
	if o.verify {
		diff := c.MaxAbsDiff(want)
		fmt.Printf("max |C - reference| = %.3g\n", diff)
		if diff > 1e-9 {
			return fmt.Errorf("verification FAILED (deviation %g)", diff)
		}
		fmt.Println("verification OK: C = C₀ + A·B")
	}
	return nil
}

// runStatus prints the daemon's snapshot. SIGINT (via ctx) interrupts a
// wedged daemon's status exchange, like every other client path.
func runStatus(ctx context.Context, o options) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	st, err := serve.FetchStatsContext(ctx, o.addr)
	if err != nil {
		return err
	}
	mode := "static"
	if st.Adaptive {
		mode = "adaptive"
	}
	if st.Redundancy != "" {
		mode += ", " + st.Redundancy + " redundancy"
	}
	if st.QueuePolicy != "" && st.QueuePolicy != serve.PolicyFIFO {
		mode += ", " + st.QueuePolicy + " queue"
	}
	fmt.Printf("jobs: %d queued, %d running, %d done, %d failed, %d canceled (%s scheduling)\n",
		st.Queued, st.Running, st.Done, st.Failed, st.Canceled, mode)
	if len(st.QueuedByClass) > 0 {
		fmt.Printf("queued by class:%s\n", fmtClassCounts(st.QueuedByClass))
	}
	if len(st.AdmissionRejected) > 0 {
		var total int64
		for _, n := range st.AdmissionRejected {
			total += n
		}
		if total > 0 {
			counts := make(map[string]int, len(st.AdmissionRejected))
			for k, v := range st.AdmissionRejected {
				counts[k] = int(v)
			}
			fmt.Printf("admission rejected:%s\n", fmtClassCounts(counts))
		}
	}
	if st.Kernel != "" {
		fmt.Printf("daemon kernel: %s\n", st.Kernel)
	}
	// Sort by fleet ID so repeated -status invocations diff cleanly whatever
	// order the daemon serialized the rows in.
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	for _, w := range st.Workers {
		line := fmt.Sprintf("worker %d %-24s %-8s spec c=%g w=%g m=%d jobs=%d", w.ID, w.Addr+" ("+w.Name+")", w.State, w.Spec.C, w.Spec.W, w.Spec.M, w.Jobs)
		if w.Kernel != "" {
			line += " kernel=" + w.Kernel
		}
		if w.Samples > 0 {
			// Live measured estimates: what the adaptive scheduler actually
			// plans with, as opposed to the declared spec to its left.
			line += fmt.Sprintf(" est c=%.3gms/blk w=%.3gms/upd (%d samples)", w.EstC, w.EstW, w.Samples)
		}
		if w.CacheHits+w.CacheMisses > 0 || w.ResidentPanels > 0 {
			// Panel-cache effectiveness: what operand affinity bought on this
			// worker, and what the daemon believes is resident right now.
			line += fmt.Sprintf(" cache hit=%d miss=%d saved=%s resident=%d/%s",
				w.CacheHits, w.CacheMisses, fmtBytes(w.SavedBytes), w.ResidentPanels, fmtBytes(w.ResidentBytes))
		}
		fmt.Println(line)
	}
	if ct := st.Cache; ct != nil {
		fmt.Printf("panel cache: hits=%d misses=%d A saved=%s sent=%s, B saved=%s sent=%s, resident=%s\n",
			ct.PanelHits, ct.PanelMisses,
			fmtBytes(ct.ASavedBytes), fmtBytes(ct.ASentBytes),
			fmtBytes(ct.BSavedBytes), fmtBytes(ct.BSentBytes), fmtBytes(ct.ResidentBytes))
	}
	for _, j := range st.Jobs {
		line := fmt.Sprintf("job %d: %s C(%dx%d)·t=%d q=%d", j.ID, j.State, j.Instance.R, j.Instance.S, j.Instance.T, j.Q)
		if j.Class != "" && j.Class != "standard" {
			line += " class=" + j.Class
		}
		if j.Algorithm != "" {
			line += fmt.Sprintf(" alg=%s workers=%v", j.Algorithm, j.Workers)
		}
		if j.Replans > 0 {
			line += fmt.Sprintf(" replans=%d", j.Replans)
		}
		if r := j.Redundancy; r != nil {
			// The k-of-n gate's outcome for this lease: what the redundant
			// units bought (duplicate wins, decodes, absorbed stragglers) and
			// what they cost (wasted duplicate bytes).
			line += fmt.Sprintf(" red=%s units=%d", r.Mode, r.Units)
			if r.DuplicateWins > 0 {
				line += fmt.Sprintf(" dupwins=%d wasted=%s", r.DuplicateWins, fmtBytes(r.WastedBytes))
			}
			if r.Decodes > 0 {
				line += fmt.Sprintf(" decodes=%d", r.Decodes)
			}
			if r.Absorbed > 0 {
				line += fmt.Sprintf(" absorbed=%d", r.Absorbed)
			}
		}
		if j.ElapsedMS > 0 {
			line += fmt.Sprintf(" elapsed=%.1fms", j.ElapsedMS)
		}
		if j.Error != "" {
			line += " error=" + j.Error
		}
		fmt.Println(line)
	}
	return nil
}

// fmtClassCounts renders per-class counts in fixed priority order so
// repeated -status invocations diff cleanly.
func fmtClassCounts(m map[string]int) string {
	var out string
	for _, class := range []string{"interactive", "standard", "batch"} {
		if n, ok := m[class]; ok {
			out += fmt.Sprintf(" %s=%d", class, n)
		}
	}
	return out
}

// parseAdmission parses -admission "rate[:burst]" (jobs/second per SLO
// class, bucket capacity). Empty means unbounded.
func parseAdmission(s string) (rate float64, burst int, err error) {
	if s = strings.TrimSpace(s); s == "" {
		return 0, 0, nil
	}
	spec := s
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		if _, err := fmt.Sscanf(spec[i+1:], "%d", &burst); err != nil || burst <= 0 {
			return 0, 0, fmt.Errorf("-admission %q: burst must be a positive integer", s)
		}
		spec = spec[:i]
	}
	if _, err := fmt.Sscanf(spec, "%g", &rate); err != nil || rate <= 0 {
		return 0, 0, fmt.Errorf("-admission %q: rate must be a positive number of jobs/s", s)
	}
	return rate, burst, nil
}

// fmtBytes renders a byte count with a binary-unit suffix for status lines.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// parseSpecs turns "c:w:m,c:w:m,…" into per-worker platform descriptions,
// defaulting to a homogeneous fleet when empty.
func parseSpecs(s string, n int) ([]platform.Worker, error) {
	if s == "" {
		return platform.Homogeneous(n, 1, 1, 60).Workers, nil
	}
	ws, err := platform.ParseWorkers(s)
	if err != nil {
		return nil, err
	}
	if len(ws) != n {
		return nil, fmt.Errorf("%d specs for %d workers", len(ws), n)
	}
	return ws, nil
}

func pickScheduler(alg string) (sched.Scheduler, error) {
	schedulers := map[string]sched.Scheduler{
		"hom": sched.Hom{}, "homi": sched.HomI{}, "het": sched.Het{},
		"orroml": sched.ORROML{}, "ommoml": sched.OMMOML{}, "oddoml": sched.ODDOML{}, "bmm": sched.BMM{},
	}
	s, ok := schedulers[strings.ToLower(alg)]
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
	return s, nil
}
