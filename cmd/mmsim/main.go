// Command mmsim runs one scheduling algorithm on one platform in the
// discrete-event simulator and reports the paper's measurements, optionally
// with a text Gantt chart or a CSV trace dump.
//
// The platform is given as a comma-separated list of worker specs c:w:m
// (link cost per block, compute cost per update, memory in blocks), or as a
// named experimental platform.
//
// Usage:
//
//	mmsim -alg Het -platform hetero-comm -r 50 -s 400 -t 50
//	mmsim -alg BMM -workers 1:1:320,2:1.5:640 -r 20 -s 60 -t 20 -gantt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/platform"
	"repro/internal/sched"
)

var algorithms = map[string]sched.Scheduler{
	"hom": sched.Hom{}, "homi": sched.HomI{}, "het": sched.Het{},
	"orroml": sched.ORROML{}, "ommoml": sched.OMMOML{}, "oddoml": sched.ODDOML{},
	"bmm": sched.BMM{}, "maxreuse": sched.MaxReuse{},
}

var namedPlatforms = map[string]func() *platform.Platform{
	"hetero-mem":  platform.HeteroMemory,
	"hetero-comm": platform.HeteroComm,
	"hetero-comp": platform.HeteroComp,
	"lyon-aug07":  platform.LyonAugust2007,
	"lyon-nov06":  platform.LyonNovember2006,
	"fully-het-2": func() *platform.Platform { return platform.FullyHetero(2) },
	"fully-het-4": func() *platform.Platform { return platform.FullyHetero(4) },
}

func main() {
	alg := flag.String("alg", "Het", "algorithm: Hom, HomI, Het, ORROML, OMMOML, ODDOML, BMM, MaxReuse")
	name := flag.String("platform", "", "named platform (hetero-mem, hetero-comm, hetero-comp, fully-het-2/4, lyon-aug07, lyon-nov06)")
	workers := flag.String("workers", "", "explicit workers as c:w:m,c:w:m,…")
	r := flag.Int("r", 50, "rows of C in blocks")
	s := flag.Int("s", 400, "columns of C in blocks")
	t := flag.Int("t", 50, "inner dimension in blocks")
	gantt := flag.Bool("gantt", false, "print a text Gantt chart")
	csv := flag.Bool("csv", false, "dump the raw trace as CSV")
	analyze := flag.Bool("analyze", false, "print the utilization/bottleneck breakdown")
	flag.Parse()

	if err := run(*alg, *name, *workers, sched.Instance{R: *r, S: *s, T: *t}, *gantt, *csv, *analyze); err != nil {
		fmt.Fprintln(os.Stderr, "mmsim:", err)
		os.Exit(1)
	}
}

func run(alg, name, workers string, inst sched.Instance, gantt, csv, analyze bool) error {
	s, ok := algorithms[strings.ToLower(alg)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	pl, err := buildPlatform(name, workers)
	if err != nil {
		return err
	}
	res, err := s.Schedule(pl, inst)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("algorithm    %s\n", res.Algorithm)
	fmt.Printf("platform     %s\n", pl)
	fmt.Printf("instance     C %dx%d blocks, t=%d (%d block updates)\n", inst.R, inst.S, inst.T, inst.Updates())
	fmt.Printf("makespan     %.1f time units\n", st.Makespan)
	fmt.Printf("enrolled     %d of %d workers %v\n", len(res.Enrolled), pl.P(), res.Enrolled)
	fmt.Printf("comm volume  %d blocks (master busy %.1f%%)\n", st.CommBlocks, 100*st.MasterBusy/st.Makespan)
	fmt.Printf("CCR          %.5f comms/update\n", float64(st.CommBlocks)/float64(st.Updates))
	if res.Note != "" {
		fmt.Printf("note         %s\n", res.Note)
	}
	if analyze {
		fmt.Print(res.Trace.Analyze().Report())
	}
	if gantt {
		fmt.Println(res.Trace.Gantt(100))
	}
	if csv {
		return res.Trace.WriteCSV(os.Stdout)
	}
	return nil
}

func buildPlatform(name, workers string) (*platform.Platform, error) {
	switch {
	case name != "" && workers != "":
		return nil, fmt.Errorf("give either -platform or -workers, not both")
	case name != "":
		b, ok := namedPlatforms[name]
		if !ok {
			return nil, fmt.Errorf("unknown platform %q", name)
		}
		return b(), nil
	case workers != "":
		ws, err := platform.ParseWorkers(workers)
		if err != nil {
			return nil, err
		}
		return platform.New(ws...)
	default:
		return platform.HeteroMemory(), nil
	}
}
