package main

import (
	"testing"

	"repro/internal/sched"
)

func TestBuildPlatformNamed(t *testing.T) {
	pl, err := buildPlatform("hetero-comm", "")
	if err != nil {
		t.Fatal(err)
	}
	if pl.P() != 8 {
		t.Errorf("hetero-comm has %d workers", pl.P())
	}
	if _, err := buildPlatform("no-such", ""); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestBuildPlatformSpecs(t *testing.T) {
	pl, err := buildPlatform("", "1:2:100,3.5:1:50")
	if err != nil {
		t.Fatal(err)
	}
	if pl.P() != 2 || pl.Workers[1].C != 3.5 || pl.Workers[0].M != 100 {
		t.Errorf("parsed platform = %v", pl)
	}
	for _, bad := range []string{"1:2", "x:1:1", "1:y:1", "1:1:z"} {
		if _, err := buildPlatform("", bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
	if _, err := buildPlatform("hetero-comm", "1:1:10"); err == nil {
		t.Error("both -platform and -workers accepted")
	}
}

func TestBuildPlatformDefault(t *testing.T) {
	pl, err := buildPlatform("", "")
	if err != nil {
		t.Fatal(err)
	}
	if pl.P() != 8 {
		t.Errorf("default platform has %d workers", pl.P())
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for name := range algorithms {
		if err := run(name, "", "1:1:60,2:1.5:40", sched.Instance{R: 6, S: 12, T: 4}, false, false, false); err != nil {
			t.Errorf("run(%s): %v", name, err)
		}
	}
	if err := run("nope", "", "", sched.Instance{R: 1, S: 1, T: 1}, false, false, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
