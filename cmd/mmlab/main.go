// Command mmlab runs the scheduling lab: controlled, seeded experiments that
// justify internal/serve's queue policies with measurements instead of
// intuition. Each experiment replays one synthetic workload (internal/load)
// against a real loopback fleet once per variant — variants differing in
// exactly one serve.Config field — across several seeds, then judges its
// hypothesis against the aggregate numbers and writes config.json,
// results.json and report.md (with an explicit CONFIRMED/REFUTED verdict)
// under the output directory. The checked-in hypotheses/ tree is this
// command's output.
//
// Usage:
//
//	mmlab [-exp all|name] [-seeds 1,2,3] [-out hypotheses] [-list]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mmlab: ")
	var (
		expName = flag.String("exp", "all", "experiment to run, or \"all\"")
		seedCSV = flag.String("seeds", "1,2,3", "comma-separated workload seeds")
		out     = flag.String("out", "hypotheses", "output directory")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-24s %s\n", e.name, e.title)
		}
		return
	}
	seeds, err := parseSeeds(*seedCSV)
	if err != nil {
		log.Fatalf("-seeds: %v", err)
	}

	ran := 0
	for _, e := range exps {
		if *expName != "all" && *expName != e.name {
			continue
		}
		ran++
		if err := runExperiment(e, seeds, *out); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q (try -list)", *expName)
	}
	if err := writeIndex(*out); err != nil {
		log.Fatalf("index: %v", err)
	}
}

func runExperiment(e *experiment, seeds []int64, out string) error {
	log.Printf("%s: %d variants x %d seeds", e.name, len(e.variants), len(seeds))
	var runs []run
	for _, seed := range seeds {
		for _, v := range e.variants {
			r, err := runVariant(e, v, seed)
			if err != nil {
				return fmt.Errorf("variant %s seed %d: %w", v.name, seed, err)
			}
			if r.Failed > 0 {
				return fmt.Errorf("variant %s seed %d: %d jobs failed", v.name, seed, r.Failed)
			}
			log.Printf("  %-14s seed %d: %d jobs, %d rejected, p99 %.3fs",
				v.name, seed, r.Jobs, r.Rejected, r.Metrics["all/p99_s"])
			runs = append(runs, r)
		}
	}
	agg := aggregate(runs)
	v := e.judge(agg)
	log.Printf("  verdict: %s (%s)", verdictWord(v.Confirmed), v.Detail)
	return writeExperiment(filepath.Join(out, e.name), e, seeds, runs, agg, v)
}

func parseSeeds(csv string) ([]int64, error) {
	parts := strings.Split(csv, ",")
	seeds := make([]int64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		s, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", csv)
	}
	return seeds, nil
}
