package main

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/sched"
	"repro/internal/serve"
)

// variant is one arm of an experiment: a name and the server config it runs
// under. Variants differ in exactly one config field so the comparison stays
// single-variable.
type variant struct {
	name   string
	config serve.Config
}

// verdictResult is a judge's reading of the aggregated numbers.
type verdictResult struct {
	Confirmed bool
	// Derived holds the cross-variant ratios the verdict rests on.
	Derived map[string]float64
	Detail  string
}

// experiment is one controlled comparison: a seeded workload replayed
// against every variant, judged by a predicate over the aggregate metrics.
type experiment struct {
	name       string
	title      string
	hypothesis string
	workload   string // prose description for config.json and the report
	workers    int
	speed      float64
	gen        func(seed int64) load.Spec
	variants   []variant
	// reportMetrics picks which aggregate metrics the report tabulates.
	reportMetrics []string
	judge         func(agg map[string]map[string]float64) verdictResult
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// base is the config shared by every variant: small disjoint leases so the
// queue actually queues, caching off so operand affinity never confounds
// the policy under test.
func base() serve.Config {
	return serve.Config{MaxWorkersPerJob: 2, NoCache: true}
}

func experiments() []*experiment {
	small := load.SizeClass{Name: "small", Inst: sched.Instance{R: 2, S: 2, T: 2}, Q: 32}
	large := load.SizeClass{Name: "large", Inst: sched.Instance{R: 10, S: 10, T: 10}, Q: 64}
	medium := load.SizeClass{Name: "medium", Inst: sched.Instance{R: 6, S: 6, T: 6}, Q: 64, Weight: 1}

	fifoVsSJF := &experiment{
		name:  "fifo-vs-sjf",
		title: "FIFO vs SJF on a bimodal size mix",
		hypothesis: "On a many-small-few-large mix under backlog, sjf cuts small-job p99 " +
			"latency at least 2x versus fifo, and every large job still completes " +
			"(aging bounds the bypass, so reordering cannot starve).",
		workload: "36 jobs, Gamma-burst arrivals (rate 150/s, shape 0.3), bimodal sizes: " +
			"75% small (2x2x2 blocks, q=32), 25% large (10x10x10 blocks, q=64), all standard class",
		workers: 4,
		speed:   1,
		gen: func(seed int64) load.Spec {
			return load.Spec{
				Seed:     seed,
				N:        36,
				Arrivals: load.GammaBurst(150, 0.3),
				Sizes:    load.Bimodal(0.75, small, large),
			}
		},
		variants: []variant{
			{name: "fifo", config: withPolicy(base(), serve.PolicyFIFO)},
			{name: "sjf", config: withPolicy(base(), serve.PolicySJF)},
		},
		reportMetrics: []string{
			"size:small/p50_s", "size:small/p99_s",
			"size:large/p99_s", "size:large/max_s",
			"all/mean_s", "size:small/n", "size:large/n",
		},
		judge: func(agg map[string]map[string]float64) verdictResult {
			speedup := ratio(agg["fifo"]["size:small/p99_s"], agg["sjf"]["size:small/p99_s"])
			slowdown := ratio(agg["sjf"]["size:large/max_s"], agg["fifo"]["size:large/max_s"])
			completed := agg["sjf"]["size:large/n"] >= agg["fifo"]["size:large/n"]
			v := verdictResult{
				Confirmed: speedup >= 2 && completed,
				Derived: map[string]float64{
					"small_p99_speedup":  speedup,
					"large_max_slowdown": slowdown,
				},
			}
			v.Detail = fmt.Sprintf("small-job p99 is %.1fx lower under sjf; large jobs all "+
				"complete, paying at most %.1fx on their worst-case latency", speedup, slowdown)
			return v
		},
	}

	admission := &experiment{
		name:  "admission-vs-unbounded",
		title: "Token-bucket admission vs an unbounded queue under bursts",
		hypothesis: "Under a burst far above fleet capacity, per-class token-bucket admission " +
			"keeps the p99 latency of admitted jobs at least 2x lower than an unbounded " +
			"queue, at the explicit cost of rejecting part of the burst at submit time.",
		workload: "60 jobs, Gamma-burst arrivals (rate 200/s, shape 0.15), uniform size " +
			"(6x6x6 blocks, q=64), all standard class",
		workers: 4,
		speed:   1,
		gen: func(seed int64) load.Spec {
			uniform := load.SizeClass{Name: "uniform", Inst: sched.Instance{R: 6, S: 6, T: 6}, Q: 64, Weight: 1}
			return load.Spec{
				Seed:     seed,
				N:        60,
				Arrivals: load.GammaBurst(200, 0.15),
				Sizes:    []load.SizeClass{uniform},
			}
		},
		variants: []variant{
			{name: "unbounded", config: base()},
			{name: "token-bucket", config: withAdmission(base(), 20, 6)},
		},
		reportMetrics: []string{
			"all/p50_s", "all/p99_s", "all/max_s", "all/n", "rejected_frac",
		},
		judge: func(agg map[string]map[string]float64) verdictResult {
			improvement := ratio(agg["unbounded"]["all/p99_s"], agg["token-bucket"]["all/p99_s"])
			rejected := agg["token-bucket"]["rejected_frac"]
			v := verdictResult{
				Confirmed: improvement >= 2 && rejected > 0 && agg["unbounded"]["rejected_frac"] == 0,
				Derived: map[string]float64{
					"admitted_p99_improvement": improvement,
					"rejected_frac":            rejected,
				},
			}
			v.Detail = fmt.Sprintf("admitted jobs see %.1fx lower p99 latency under the token "+
				"bucket, which rejects %.0f%% of the burst at submit time", improvement, rejected*100)
			return v
		},
	}

	priority := &experiment{
		name:  "priority-vs-even",
		title: "Per-class priority vs even treatment under mixed SLOs",
		hypothesis: "With interactive and batch jobs of identical shape sharing a backlog, " +
			"the priority policy cuts interactive p99 latency at least 1.5x versus " +
			"class-blind fifo, while every batch job still completes.",
		workload: "40 jobs, Poisson arrivals (rate 200/s), uniform size (6x6x6 blocks, q=64), " +
			"classes: 30% interactive, 70% batch",
		workers: 4,
		speed:   1,
		gen: func(seed int64) load.Spec {
			return load.Spec{
				Seed:     seed,
				N:        40,
				Arrivals: load.Poisson(200),
				Sizes:    []load.SizeClass{medium},
				Classes: []load.ClassShare{
					{Class: serve.ClassInteractive, Weight: 0.3},
					{Class: serve.ClassBatch, Weight: 0.7},
				},
			}
		},
		variants: []variant{
			{name: "fifo", config: withPolicy(base(), serve.PolicyFIFO)},
			{name: "priority", config: withPolicy(base(), serve.PolicyPriority)},
		},
		reportMetrics: []string{
			"class:interactive/p50_s", "class:interactive/p99_s",
			"class:batch/p99_s", "class:batch/max_s",
			"class:interactive/n", "class:batch/n",
		},
		judge: func(agg map[string]map[string]float64) verdictResult {
			speedup := ratio(agg["fifo"]["class:interactive/p99_s"], agg["priority"]["class:interactive/p99_s"])
			slowdown := ratio(agg["priority"]["class:batch/max_s"], agg["fifo"]["class:batch/max_s"])
			completed := agg["priority"]["class:batch/n"] >= agg["fifo"]["class:batch/n"]
			v := verdictResult{
				Confirmed: speedup >= 1.5 && completed,
				Derived: map[string]float64{
					"interactive_p99_speedup": speedup,
					"batch_max_slowdown":      slowdown,
				},
			}
			v.Detail = fmt.Sprintf("interactive p99 is %.1fx lower under priority; batch jobs "+
				"all complete, paying at most %.1fx on their worst-case latency", speedup, slowdown)
			return v
		},
	}

	return []*experiment{fifoVsSJF, admission, priority}
}

func withPolicy(cfg serve.Config, policy string) serve.Config {
	cfg.QueuePolicy = policy
	return cfg
}

func withAdmission(cfg serve.Config, rate float64, burst int) serve.Config {
	cfg.AdmissionRate, cfg.AdmissionBurst = rate, burst
	return cfg
}
