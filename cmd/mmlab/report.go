package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// variantJSON is a variant's serializable view (serve.Config holds function
// fields, so it cannot be marshalled directly).
type variantJSON struct {
	Name             string  `json:"name"`
	QueuePolicy      string  `json:"queue_policy"`
	AdmissionRate    float64 `json:"admission_rate,omitempty"`
	AdmissionBurst   int     `json:"admission_burst,omitempty"`
	MaxWorkersPerJob int     `json:"max_workers_per_job"`
}

// configJSON is an experiment's reproducible input record.
type configJSON struct {
	Experiment string        `json:"experiment"`
	Title      string        `json:"title"`
	Hypothesis string        `json:"hypothesis"`
	Workload   string        `json:"workload"`
	Workers    int           `json:"workers"`
	Speed      float64       `json:"replay_speed"`
	Seeds      []int64       `json:"seeds"`
	Variants   []variantJSON `json:"variants"`
}

// resultsJSON is an experiment's machine-readable outcome record.
type resultsJSON struct {
	Experiment string                        `json:"experiment"`
	Seeds      []int64                       `json:"seeds"`
	Runs       []run                         `json:"runs"`
	Aggregate  map[string]map[string]float64 `json:"aggregate"`
	Derived    map[string]float64            `json:"derived"`
	Verdict    string                        `json:"verdict"`
	Detail     string                        `json:"detail"`
}

func verdictWord(confirmed bool) string {
	if confirmed {
		return "CONFIRMED"
	}
	return "REFUTED"
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeExperiment persists one experiment's config.json, results.json and
// report.md under dir.
func writeExperiment(dir string, e *experiment, seeds []int64, runs []run,
	agg map[string]map[string]float64, v verdictResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := configJSON{
		Experiment: e.name,
		Title:      e.title,
		Hypothesis: e.hypothesis,
		Workload:   e.workload,
		Workers:    e.workers,
		Speed:      e.speed,
		Seeds:      seeds,
	}
	for _, va := range e.variants {
		cfg.Variants = append(cfg.Variants, variantJSON{
			Name:             va.name,
			QueuePolicy:      policyName(va.config.QueuePolicy),
			AdmissionRate:    va.config.AdmissionRate,
			AdmissionBurst:   va.config.AdmissionBurst,
			MaxWorkersPerJob: va.config.MaxWorkersPerJob,
		})
	}
	if err := writeJSON(filepath.Join(dir, "config.json"), cfg); err != nil {
		return err
	}
	res := resultsJSON{
		Experiment: e.name,
		Seeds:      seeds,
		Runs:       runs,
		Aggregate:  agg,
		Derived:    v.Derived,
		Verdict:    verdictWord(v.Confirmed),
		Detail:     v.Detail,
	}
	if err := writeJSON(filepath.Join(dir, "results.json"), res); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "report.md"), []byte(renderReport(e, seeds, agg, v)), 0o644)
}

func policyName(p string) string {
	if p == "" {
		return "fifo"
	}
	return p
}

func renderReport(e *experiment, seeds []int64, agg map[string]map[string]float64, v verdictResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", e.title)
	fmt.Fprintf(&b, "**Hypothesis.** %s\n\n", e.hypothesis)
	fmt.Fprintf(&b, "**Verdict: %s.** %s.\n\n", verdictWord(v.Confirmed), upperFirst(v.Detail))

	b.WriteString("## Method\n\n")
	fmt.Fprintf(&b, "Workload: %s. Fleet: %d loopback workers, leases capped at %d workers "+
		"per job so two jobs run concurrently and the rest queue; operand caching off so "+
		"queue policy is the only variable. Each variant replays the *same* generated "+
		"arrival list for each seed (%s); numbers below are means across seeds.\n\n",
		e.workload, e.workers, e.variants[0].config.MaxWorkersPerJob, seedList(seeds))
	b.WriteString("Variants:\n\n")
	for _, va := range e.variants {
		fmt.Fprintf(&b, "- `%s`: queue policy `%s`", va.name, policyName(va.config.QueuePolicy))
		if va.config.AdmissionRate > 0 {
			fmt.Fprintf(&b, ", admission %.3g jobs/s burst %d", va.config.AdmissionRate, va.config.AdmissionBurst)
		} else {
			b.WriteString(", unbounded admission")
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\nReproduce with:\n\n```\ngo run ./cmd/mmlab -exp %s -seeds %s -out hypotheses\n```\n\n",
		e.name, seedList(seeds))

	b.WriteString("## Results\n\n")
	names := make([]string, len(e.variants))
	for i, va := range e.variants {
		names[i] = va.name
	}
	fmt.Fprintf(&b, "| metric | %s |\n", strings.Join(names, " | "))
	fmt.Fprintf(&b, "|---|%s\n", strings.Repeat("---|", len(names)))
	for _, key := range e.reportMetrics {
		cells := make([]string, len(names))
		for i, n := range names {
			cells[i] = fmtMetric(key, agg[n][key])
		}
		fmt.Fprintf(&b, "| %s | %s |\n", key, strings.Join(cells, " | "))
	}
	b.WriteString("\nDerived:\n\n")
	for _, k := range sortedKeys(v.Derived) {
		fmt.Fprintf(&b, "- `%s` = %.2f\n", k, v.Derived[k])
	}
	b.WriteString("\nFull per-seed data: [results.json](results.json); inputs: [config.json](config.json).\n")
	return b.String()
}

func fmtMetric(key string, val float64) string {
	if strings.HasSuffix(key, "/n") || key == "rejected_frac" {
		return fmt.Sprintf("%.2f", val)
	}
	return fmt.Sprintf("%.3f", val)
}

func seedList(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ",")
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// writeIndex rebuilds out/README.md from every results.json under out, so
// the index stays consistent however many experiments the invocation ran.
func writeIndex(out string) error {
	entries, err := os.ReadDir(out)
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# Scheduling-lab experiments\n\n")
	b.WriteString("Controlled single-variable experiments behind `internal/serve`'s queue\n")
	b.WriteString("policies, generated by [`cmd/mmlab`](../cmd/mmlab). Each directory holds\n")
	b.WriteString("`config.json` (the reproducible inputs: workload, seeds, variants),\n")
	b.WriteString("`results.json` (per-seed and aggregate numbers) and `report.md` (the\n")
	b.WriteString("hypothesis, method and verdict). Regenerate everything with\n")
	b.WriteString("`go run ./cmd/mmlab -exp all -out hypotheses`.\n\n")
	b.WriteString("| experiment | verdict | finding |\n|---|---|---|\n")
	rows := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(out, ent.Name(), "results.json"))
		if err != nil {
			continue
		}
		var res resultsJSON
		if err := json.Unmarshal(data, &res); err != nil {
			return fmt.Errorf("%s: %w", ent.Name(), err)
		}
		fmt.Fprintf(&b, "| [%s](%s/report.md) | %s | %s |\n", res.Experiment, ent.Name(), res.Verdict, res.Detail)
		rows++
	}
	if rows == 0 {
		return fmt.Errorf("no results.json found under %s", out)
	}
	return os.WriteFile(filepath.Join(out, "README.md"), []byte(b.String()), 0o644)
}
