package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/load"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/internal/stats"
)

// lab is one loopback fleet plus the server under test: the smallest real
// deployment — actual worker processes' serve loops, actual TCP, actual
// leases — with everything on 127.0.0.1 so an experiment is self-contained.
type lab struct {
	srv *serve.Server
	flt *serve.Fleet
	lns []net.Listener
}

func startLab(workers int, cfg serve.Config) (*lab, error) {
	lns := make([]net.Listener, 0, workers)
	addrs := make([]string, workers)
	specs := make([]platform.Worker, workers)
	closeAll := func() {
		for _, ln := range lns {
			ln.Close()
		}
	}
	for i := 0; i < workers; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
		specs[i] = platform.Worker{C: 1, W: 1, M: 40}
		go mmnet.Serve(ln, addrs[i], mmnet.WorkerOptions{Heartbeat: 100 * time.Millisecond})
	}
	flt, err := serve.NewFleet(addrs, specs, serve.FleetOptions{})
	if err != nil {
		closeAll()
		return nil, err
	}
	return &lab{srv: serve.NewServer(flt, cfg), flt: flt, lns: lns}, nil
}

func (l *lab) close() {
	l.srv.Close()
	l.flt.Close()
	for _, ln := range l.lns {
		ln.Close()
	}
}

// sample is one arrival's measured outcome.
type sample struct {
	size, class string
	rejected    bool
	failed      bool
	latencySec  float64
}

// run is one (variant, seed) measurement, as persisted into results.json.
type run struct {
	Variant  string             `json:"variant"`
	Seed     int64              `json:"seed"`
	Jobs     int                `json:"jobs"`
	Rejected int                `json:"rejected"`
	Failed   int                `json:"failed"`
	Metrics  map[string]float64 `json:"metrics"`
}

// operands are one job's pre-built matrices — built before the replay so
// allocation and fill never distort arrival times.
type operands struct{ a, b, c *matrix.BlockMatrix }

// runVariant replays one seeded workload against a fresh lab fleet running
// the variant's config, and reduces the per-job latencies to metrics.
func runVariant(e *experiment, v variant, seed int64) (run, error) {
	r := run{Variant: v.name, Seed: seed}
	jobs, err := e.gen(seed).Generate()
	if err != nil {
		return r, err
	}
	rng := rand.New(rand.NewSource(seed))
	ops := make([]operands, len(jobs))
	for i, j := range jobs {
		op := operands{
			a: matrix.NewBlockMatrix(j.Inst.R, j.Inst.T, j.Q),
			b: matrix.NewBlockMatrix(j.Inst.T, j.Inst.S, j.Q),
			c: matrix.NewBlockMatrix(j.Inst.R, j.Inst.S, j.Q),
		}
		op.a.FillRandom(rng)
		op.b.FillRandom(rng)
		op.c.FillRandom(rng)
		ops[i] = op
	}

	l, err := startLab(e.workers, v.config)
	if err != nil {
		return r, err
	}
	defer l.close()

	var mu sync.Mutex
	samples := make([]sample, 0, len(jobs))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	err = load.Replay(ctx, jobs, e.speed, func(i int, j load.Job) {
		s := sample{size: j.Size, class: j.Class.String()}
		start := time.Now()
		id, err := l.srv.SubmitClass(ops[i].a, ops[i].b, ops[i].c, nil, j.Class)
		switch {
		case errors.Is(err, serve.ErrAdmission):
			s.rejected = true
		case err != nil:
			s.failed = true
		default:
			if err := l.srv.Wait(id); err != nil {
				s.failed = true
			} else {
				s.latencySec = time.Since(start).Seconds()
			}
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	})
	if err != nil {
		return r, fmt.Errorf("replay: %w", err)
	}

	r.Jobs = len(samples)
	for _, s := range samples {
		if s.rejected {
			r.Rejected++
		}
		if s.failed {
			r.Failed++
		}
	}
	r.Metrics = reduce(samples)
	return r, nil
}

// reduce groups completed-job latencies (all jobs, per size class, per SLO
// class) and summarizes each group, plus the rejected fraction.
func reduce(samples []sample) map[string]float64 {
	groups := map[string][]float64{}
	var rejected int
	for _, s := range samples {
		if s.rejected {
			rejected++
			continue
		}
		if s.failed {
			continue
		}
		for _, g := range []string{"all", "size:" + s.size, "class:" + s.class} {
			groups[g] = append(groups[g], s.latencySec)
		}
	}
	m := map[string]float64{}
	for g, xs := range groups {
		m[g+"/mean_s"] = stats.Mean(xs)
		m[g+"/p50_s"] = stats.Quantile(xs, 0.5)
		m[g+"/p99_s"] = stats.Quantile(xs, 0.99)
		m[g+"/max_s"] = stats.Max(xs)
		m[g+"/n"] = float64(len(xs))
	}
	if len(samples) > 0 {
		m["rejected_frac"] = float64(rejected) / float64(len(samples))
	}
	return m
}

// aggregate averages each metric across a variant's per-seed runs. Metrics
// missing from a run (an empty group) are averaged over the runs that have
// them.
func aggregate(runs []run) map[string]map[string]float64 {
	byVariant := map[string]map[string][]float64{}
	for _, r := range runs {
		vm := byVariant[r.Variant]
		if vm == nil {
			vm = map[string][]float64{}
			byVariant[r.Variant] = vm
		}
		for k, v := range r.Metrics {
			vm[k] = append(vm[k], v)
		}
	}
	agg := map[string]map[string]float64{}
	for variant, vm := range byVariant {
		am := map[string]float64{}
		for k, xs := range vm {
			am[k] = stats.Mean(xs)
		}
		agg[variant] = am
	}
	return agg
}
