// Package stats provides the small statistical toolkit the experiment
// harness reports with: means, geometric means, quantiles and compact
// five-number summaries over the relative-cost/relative-work samples the
// paper aggregates in its Figure 9 discussion.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean; all samples must be positive.
// Ratios such as relative costs compose multiplicatively, so the paper-style
// "average gain" claims are most faithfully summarized geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the smallest sample, or NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest sample, or NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n−1 denominator), 0 for
// samples of size < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between order statistics, or NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a compact description of a sample.
type Summary struct {
	N                int
	Mean, Geo, Std   float64
	Min, Median, P90 float64
	Max              float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Geo:    GeoMean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Median: Quantile(xs, 0.5),
		P90:    Quantile(xs, 0.9),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f geo=%.3f sd=%.3f min=%.3f med=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.Geo, s.Std, s.Min, s.Median, s.P90, s.Max)
}
