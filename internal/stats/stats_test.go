package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty sample should give NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean(1,4) = %v, want 2", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("negative sample should give NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty sample should give NaN")
	}
}

func TestStdDev(t *testing.T) {
	if sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(sd-2.138089935) > 1e-6 {
		t.Errorf("sd = %v", sd)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("singleton sd should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -1)) {
		t.Error("invalid inputs should give NaN")
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// Properties: geo ≤ mean (AM–GM), min ≤ quantile ≤ max.
func TestAMGMProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()*10
		}
		g, m := GeoMean(xs), Mean(xs)
		if g > m+1e-9 {
			return false
		}
		q := rng.Float64()
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
