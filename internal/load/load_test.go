package load

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/serve"
)

func smallLarge() (SizeClass, SizeClass) {
	small := SizeClass{Inst: sched.Instance{R: 2, S: 2, T: 2}, Q: 8}
	large := SizeClass{Inst: sched.Instance{R: 8, S: 8, T: 8}, Q: 16}
	return small, large
}

func TestGenerateDeterministic(t *testing.T) {
	small, large := smallLarge()
	spec := Spec{
		Seed:     42,
		N:        200,
		Arrivals: GammaBurst(50, 0.25),
		Sizes:    Bimodal(0.8, small, large),
		Classes: []ClassShare{
			{Class: serve.ClassInteractive, Weight: 1},
			{Class: serve.ClassBatch, Weight: 2},
		},
	}
	a, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate (again): %v", err)
	}
	if len(a) != len(b) || len(a) != spec.N {
		t.Fatalf("lengths: %d vs %d, want %d", len(a), len(b), spec.N)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}

	other := spec
	other.Seed = 43
	c, err := other.Generate()
	if err != nil {
		t.Fatalf("Generate (seed 43): %v", err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical job lists")
	}
}

func TestGenerateMonotoneArrivals(t *testing.T) {
	small, large := smallLarge()
	spec := Spec{Seed: 7, N: 500, Arrivals: Poisson(100), Sizes: Bimodal(0.5, small, large)}
	jobs, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var prev time.Duration
	for i, j := range jobs {
		if j.At < prev {
			t.Fatalf("job %d arrives at %v before predecessor %v", i, j.At, prev)
		}
		prev = j.At
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate, n = 200.0, 20000
	small, large := smallLarge()
	spec := Spec{Seed: 1, N: n, Arrivals: Poisson(rate), Sizes: Bimodal(1, small, large)}
	jobs, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	mean := jobs[n-1].At.Seconds() / n
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("Poisson mean interarrival %.5fs, want %.5fs ±5%%", mean, want)
	}
}

// interarrivalStats regenerates a spec's gaps and returns their mean and
// coefficient of variation.
func interarrivalStats(t *testing.T, a Arrivals, n int) (mean, cv float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	gaps := make([]float64, n)
	var sum float64
	for i := range gaps {
		gaps[i] = a.interarrival(rng).Seconds()
		sum += gaps[i]
	}
	mean = sum / float64(n)
	var ss float64
	for _, g := range gaps {
		d := g - mean
		ss += d * d
	}
	cv = math.Sqrt(ss/float64(n)) / mean
	return mean, cv
}

func TestGammaBurstIsBursty(t *testing.T) {
	const rate = 100.0
	meanP, cvP := interarrivalStats(t, Poisson(rate), 20000)
	meanG, cvG := interarrivalStats(t, GammaBurst(rate, 0.2), 20000)

	// Same offered load: both processes must preserve the 1/rate mean gap.
	for _, m := range []float64{meanP, meanG} {
		if math.Abs(m-1/rate)*rate > 0.1 {
			t.Fatalf("mean interarrival %.5fs, want %.5fs ±10%%", m, 1/rate)
		}
	}
	// Poisson has CV ≈ 1; Gamma with shape k has CV = 1/√k, so shape 0.2
	// should push it well past 2.
	if cvP > 1.2 || cvP < 0.8 {
		t.Fatalf("Poisson interarrival CV %.3f, want ≈1", cvP)
	}
	if cvG < 1.8 {
		t.Fatalf("GammaBurst(shape=0.2) interarrival CV %.3f, want ≫1 (bursty)", cvG)
	}
}

func TestBimodalMixFractions(t *testing.T) {
	small, large := smallLarge()
	const frac, n = 0.75, 20000
	spec := Spec{Seed: 3, N: n, Arrivals: Poisson(50), Sizes: Bimodal(frac, small, large)}
	jobs, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var smalls int
	for _, j := range jobs {
		switch j.Size {
		case "small":
			smalls++
			if j.Inst != small.Inst || j.Q != small.Q {
				t.Fatalf("small job has shape %+v q=%d", j.Inst, j.Q)
			}
		case "large":
			if j.Inst != large.Inst || j.Q != large.Q {
				t.Fatalf("large job has shape %+v q=%d", j.Inst, j.Q)
			}
		default:
			t.Fatalf("unexpected size name %q", j.Size)
		}
	}
	got := float64(smalls) / n
	if math.Abs(got-frac) > 0.02 {
		t.Fatalf("small fraction %.3f, want %.2f ±0.02", got, frac)
	}
}

func TestClassMixFractions(t *testing.T) {
	small, large := smallLarge()
	const n = 20000
	spec := Spec{
		Seed:     5,
		N:        n,
		Arrivals: Poisson(50),
		Sizes:    Bimodal(0.5, small, large),
		Classes: []ClassShare{
			{Class: serve.ClassInteractive, Weight: 1},
			{Class: serve.ClassStandard, Weight: 1},
			{Class: serve.ClassBatch, Weight: 2},
		},
	}
	jobs, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	counts := map[serve.JobClass]int{}
	for _, j := range jobs {
		counts[j.Class]++
	}
	want := map[serve.JobClass]float64{
		serve.ClassInteractive: 0.25,
		serve.ClassStandard:    0.25,
		serve.ClassBatch:       0.5,
	}
	for class, frac := range want {
		got := float64(counts[class]) / n
		if math.Abs(got-frac) > 0.02 {
			t.Fatalf("class %s fraction %.3f, want %.2f ±0.02", class, got, frac)
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	small, large := smallLarge()
	good := Spec{Seed: 1, N: 10, Arrivals: Poisson(10), Sizes: Bimodal(0.5, small, large)}
	cases := map[string]func(*Spec){
		"zero jobs":       func(s *Spec) { s.N = 0 },
		"no arrivals":     func(s *Spec) { s.Arrivals = nil },
		"no sizes":        func(s *Spec) { s.Sizes = nil },
		"negative weight": func(s *Spec) { s.Sizes[0].Weight = -1 },
		"zero weight mix": func(s *Spec) { s.Sizes[0].Weight, s.Sizes[1].Weight = 0, 0 },
		"bad instance":    func(s *Spec) { s.Sizes[0].Inst.R = 0 },
		"bad block edge":  func(s *Spec) { s.Sizes[0].Q = 0 },
		"weightless classes": func(s *Spec) {
			s.Classes = []ClassShare{{Class: serve.ClassBatch, Weight: 0}}
		},
	}
	for name, mutate := range cases {
		spec := good
		spec.Sizes = Bimodal(0.5, small, large)
		mutate(&spec)
		if _, err := spec.Generate(); err == nil {
			t.Errorf("%s: Generate accepted an invalid spec", name)
		}
	}
	if _, err := good.Generate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestReplayRunsEveryJob(t *testing.T) {
	small, large := smallLarge()
	spec := Spec{Seed: 11, N: 50, Arrivals: Poisson(1000), Sizes: Bimodal(0.5, small, large)}
	jobs, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	seen := make([]atomic.Int64, len(jobs))
	var ran atomic.Int64
	if err := Replay(context.Background(), jobs, 100, func(i int, j Job) {
		seen[i].Add(1)
		ran.Add(1)
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if got := ran.Load(); got != int64(len(jobs)) {
		t.Fatalf("replay ran %d jobs, want %d", got, len(jobs))
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("job %d ran %d times, want exactly once", i, seen[i].Load())
		}
	}
}

func TestReplayHonorsContext(t *testing.T) {
	small, large := smallLarge()
	// One arrival every 10s on average: the second job is effectively never
	// due, so a cancelled context must end the replay.
	spec := Spec{Seed: 13, N: 10, Arrivals: Poisson(0.1), Sizes: Bimodal(0.5, small, large)}
	jobs, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = Replay(ctx, jobs, 1, func(int, Job) {})
	if err == nil {
		t.Fatal("Replay returned nil despite expired context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Replay took %v to notice cancellation", elapsed)
	}
}
