// Package load generates seeded synthetic traffic for the scheduling lab:
// reproducible streams of matrix-product jobs with controlled arrival
// processes, size mixes and SLO classes, the workload side of every
// experiment under hypotheses/ and of BenchmarkQueuePolicies.
//
// A Spec describes one workload: an arrival process (Poisson for smooth
// memoryless traffic, GammaBurst for the clumped arrivals shared clusters
// actually see), a weighted size mix (Bimodal builds the classic
// many-small-few-large shape), a weighted SLO class mix, and a seed.
// Generate expands it into a concrete job list — same spec and seed, same
// jobs, bit for bit — and Replay plays a list against any submit function in
// real (or time-scaled) arrival order.
//
// The package models traffic only: it knows job shapes (sched.Instance,
// block edge, serve.JobClass) but never touches the network or the engine,
// so generators stay cheap enough to regenerate inside benchmarks and unit
// tests.
package load
