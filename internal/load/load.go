package load

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/serve"
)

// Job is one generated arrival: submit a product of shape Inst (block edge
// Q, SLO class Class) At this long after the workload starts. Size names the
// size class it was drawn from ("small", "large", …) so result analysis can
// group latencies without re-deriving thresholds.
type Job struct {
	At    time.Duration
	Inst  sched.Instance
	Q     int
	Class serve.JobClass
	Size  string
}

// Arrivals is an inter-arrival time process. Implementations draw from the
// workload's seeded RNG only, so a Spec stays deterministic.
type Arrivals interface {
	// interarrival draws the gap to the next arrival.
	interarrival(rng *rand.Rand) time.Duration
}

// Poisson is a memoryless arrival process averaging rate jobs/second —
// exponential inter-arrivals, the smooth baseline traffic shape.
func Poisson(rate float64) Arrivals { return poisson{rate: rate} }

type poisson struct{ rate float64 }

func (p poisson) interarrival(rng *rand.Rand) time.Duration {
	return secs(rng.ExpFloat64() / p.rate)
}

// GammaBurst is a bursty arrival process averaging rate jobs/second with
// Gamma-distributed inter-arrivals of the given shape. Shape 1 is Poisson;
// shape < 1 clumps arrivals — many near-zero gaps (the burst) separated by
// long quiet stretches — with squared coefficient of variation 1/shape. The
// mean is preserved, so Poisson(r) and GammaBurst(r, k) offer a controlled
// single-variable comparison: same load, different burstiness.
func GammaBurst(rate, shape float64) Arrivals { return gammaBurst{rate: rate, shape: shape} }

type gammaBurst struct{ rate, shape float64 }

func (g gammaBurst) interarrival(rng *rand.Rand) time.Duration {
	scale := 1 / (g.rate * g.shape) // mean = shape·scale = 1/rate
	return secs(gammaSample(rng, g.shape) * scale)
}

// secs converts seconds to a non-negative duration.
func secs(s float64) time.Duration {
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// gammaSample draws Gamma(shape k, scale 1) via Marsaglia–Tsang squeeze
// (with the standard U^(1/k) boost for k < 1), using only the given RNG.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		return gammaSample(rng, k+1) * math.Pow(rng.Float64(), 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SizeClass is one weighted job shape in a size mix.
type SizeClass struct {
	Name   string
	Inst   sched.Instance
	Q      int
	Weight float64
}

// Bimodal is the canonical two-point size mix: a small shape drawn with
// probability smallFrac and a large one otherwise — the many-small-few-large
// traffic that exposes FIFO's head-of-line blocking.
func Bimodal(smallFrac float64, small, large SizeClass) []SizeClass {
	small.Weight, large.Weight = smallFrac, 1-smallFrac
	if small.Name == "" {
		small.Name = "small"
	}
	if large.Name == "" {
		large.Name = "large"
	}
	return []SizeClass{small, large}
}

// ClassShare is one weighted SLO class in a class mix.
type ClassShare struct {
	Class  serve.JobClass
	Weight float64
}

// Spec is one reproducible workload: N arrivals drawn from Arrivals, shapes
// from the weighted Sizes mix, SLO classes from the weighted Classes mix
// (empty: every job standard), all from one RNG seeded with Seed. Identical
// specs generate identical job lists.
type Spec struct {
	Seed     int64
	N        int
	Arrivals Arrivals
	Sizes    []SizeClass
	Classes  []ClassShare
}

// Generate expands the spec into its concrete arrival list, sorted by (and
// cumulative in) arrival time.
func (s Spec) Generate() ([]Job, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("load: spec generates %d jobs", s.N)
	}
	if s.Arrivals == nil {
		return nil, fmt.Errorf("load: spec needs an arrival process")
	}
	if len(s.Sizes) == 0 {
		return nil, fmt.Errorf("load: spec needs a size mix")
	}
	var sizeTotal, classTotal float64
	for _, sc := range s.Sizes {
		if sc.Weight < 0 {
			return nil, fmt.Errorf("load: negative weight on size %q", sc.Name)
		}
		if err := sc.Inst.Validate(); err != nil {
			return nil, fmt.Errorf("load: size %q: %w", sc.Name, err)
		}
		if sc.Q <= 0 {
			return nil, fmt.Errorf("load: size %q has block edge %d", sc.Name, sc.Q)
		}
		sizeTotal += sc.Weight
	}
	if sizeTotal <= 0 {
		return nil, fmt.Errorf("load: size mix has no weight")
	}
	for _, cs := range s.Classes {
		if cs.Weight < 0 {
			return nil, fmt.Errorf("load: negative weight on class %s", cs.Class)
		}
		classTotal += cs.Weight
	}
	if len(s.Classes) > 0 && classTotal <= 0 {
		return nil, fmt.Errorf("load: class mix has no weight")
	}

	rng := rand.New(rand.NewSource(s.Seed))
	jobs := make([]Job, 0, s.N)
	var at time.Duration
	for i := 0; i < s.N; i++ {
		// Fixed draw order per job — gap, size, class — keeps the list a pure
		// function of the spec fields.
		at += s.Arrivals.interarrival(rng)
		size := s.Sizes[weightedPick(rng, sizeWeights(s.Sizes), sizeTotal)]
		j := Job{At: at, Inst: size.Inst, Q: size.Q, Size: size.Name}
		if len(s.Classes) > 0 {
			j.Class = s.Classes[weightedPick(rng, classWeights(s.Classes), classTotal)].Class
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func sizeWeights(scs []SizeClass) func(i int) float64 {
	return func(i int) float64 { return scs[i].Weight }
}

func classWeights(css []ClassShare) func(i int) float64 {
	return func(i int) float64 { return css[i].Weight }
}

// weightedPick draws an index proportional to weight(i); total is the
// precomputed sum.
func weightedPick(rng *rand.Rand, weight func(i int) float64, total float64) int {
	x := rng.Float64() * total
	i := 0
	for ; ; i++ {
		w := weight(i)
		if x < w {
			return i
		}
		x -= w
	}
}

// Replay plays a generated job list against submit in arrival order: each
// job's callback starts in its own goroutine at At/speed after the replay
// begins (speed > 1 compresses time — a 60 s trace replays in 60/speed
// seconds without changing the arrival *pattern*). The callback receives the
// job's index in the list, so harnesses can pair arrivals with pre-built
// operands. Replay returns once every callback has returned, or ctx's error
// if it ends first (callbacks already started still run to completion;
// pending arrivals are dropped).
func Replay(ctx context.Context, jobs []Job, speed float64, submit func(i int, j Job)) error {
	if speed <= 0 {
		speed = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	defer wg.Wait()
	for i, j := range jobs {
		due := time.Duration(float64(j.At) / speed)
		if wait := due - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		wg.Add(1)
		i, j := i, j
		go func() {
			defer wg.Done()
			submit(i, j)
		}()
	}
	return nil
}
