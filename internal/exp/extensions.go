package exp

import (
	"fmt"
	"strings"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
)

// HeterogeneityKind selects which platform characteristic a sweep varies.
type HeterogeneityKind string

// Sweepable characteristics.
const (
	SweepComm   HeterogeneityKind = "comm"
	SweepComp   HeterogeneityKind = "comp"
	SweepMemory HeterogeneityKind = "mem"
)

// sweepPlatform builds an 8-worker platform where half the workers are
// degraded by the given ratio on one characteristic.
func sweepPlatform(kind HeterogeneityKind, ratio float64) (*platform.Platform, error) {
	ws := make([]platform.Worker, 8)
	for i := range ws {
		ws[i] = platform.Worker{C: platform.BaseC, W: platform.BaseW, M: platform.Mem512}
		if i >= 4 {
			switch kind {
			case SweepComm:
				ws[i].C *= ratio
			case SweepComp:
				ws[i].W *= ratio
			case SweepMemory:
				ws[i].M = int(float64(ws[i].M) / ratio)
			default:
				return nil, fmt.Errorf("exp: unknown sweep kind %q", kind)
			}
		}
	}
	return platform.New(ws...)
}

// HeterogeneitySweep is the extension experiment behind the paper's stated
// goal to "assess the impact of the degree of heterogeneity": it varies one
// characteristic's ratio continuously and reports every algorithm's relative
// cost, showing where resource selection starts to pay (the paper only
// samples one ratio per figure).
func HeterogeneitySweep(kind HeterogeneityKind, ratios []float64, cfg Config) (*Figure, error) {
	cfg = cfg.normalize()
	fig := &Figure{
		ID:         "sweep-" + string(kind),
		Title:      fmt.Sprintf("Degree of %s heterogeneity", kind),
		Algorithms: names(cfg.Algorithms),
	}
	inst := cfg.instance(1000)
	for _, ratio := range ratios {
		pl, err := sweepPlatform(kind, ratio)
		if err != nil {
			return nil, err
		}
		row, err := runRow(fmt.Sprintf("ratio=%g", ratio), pl, inst, cfg.Algorithms)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Robustness measures how sensitive the static Het plan is to mis-measured
// platform parameters (the deployments estimate c_i and w_i with a short
// benchmark): for each noise level ε, Het is planned on a perturbed platform
// and executed on the true one, and its makespan is compared against
// perfectly-informed Het and against the dynamic ODDOML (which needs no
// estimates). Each level aggregates several seeds.
func Robustness(pl *platform.Platform, inst sched.Instance, epsilons []float64, trials int, seed int64) (string, error) {
	ideal, err := (sched.Het{}).Schedule(pl, inst)
	if err != nil {
		return "", err
	}
	odd, err := (sched.ODDOML{}).Schedule(pl, inst)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("== robustness to parameter misestimation ==\n")
	fmt.Fprintf(&b, "informed Het makespan %.0f, ODDOML %.0f (no estimates needed)\n", ideal.Stats.Makespan, odd.Stats.Makespan)
	fmt.Fprintf(&b, "%8s %14s %14s %14s\n", "eps", "mean-overhead", "worst-overhead", "vs-ODDOML")
	for _, eps := range epsilons {
		var overheads, vsOdd []float64
		for trial := 0; trial < trials; trial++ {
			est := sched.Perturb(pl, eps, seed+int64(trial)*101)
			res, err := sched.HetWithEstimates(pl, est, inst)
			if err != nil {
				return "", err
			}
			overheads = append(overheads, res.Stats.Makespan/ideal.Stats.Makespan-1)
			vsOdd = append(vsOdd, res.Stats.Makespan/odd.Stats.Makespan)
		}
		fmt.Fprintf(&b, "%8.2f %13.1f%% %13.1f%% %14.3f\n",
			eps, 100*stats.Mean(overheads), 100*stats.Max(overheads), stats.Mean(vsOdd))
	}
	b.WriteString("overhead = makespan of Het planned on noisy estimates over perfectly-informed Het\n")
	return b.String(), nil
}
