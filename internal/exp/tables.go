package exp

import (
	"fmt"
	"strings"

	"repro/internal/bound"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/steady"
)

// BoundsTable reproduces the Section 3 theory numerically: for a sweep of
// memory sizes it lists the old lower bound √(1/8m), the paper's improved
// bound √(27/8m), the maximum re-use algorithm's asymptotic ratio 2/μ and its
// executed ratio on a single simulated worker, and Toledo's ratio for
// comparison.
func BoundsTable(t int, memories []int) (string, error) {
	var b strings.Builder
	b.WriteString("== section 3: communication-to-computation ratios (block units) ==\n")
	fmt.Fprintf(&b, "%8s %6s %12s %12s %12s %12s %12s\n",
		"m", "mu", "old-bound", "new-bound", "maxreuse∞", "executed", "toledo")
	for _, m := range memories {
		mu := platform.MuMaxReuse(m)
		pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: m})
		inst := sched.Instance{R: 2 * mu, S: 4 * mu, T: t}
		res, err := (sched.MaxReuse{}).Schedule(pl, inst)
		if err != nil {
			return "", err
		}
		executed := float64(res.Stats.CommBlocks) / float64(res.Stats.Updates)
		fmt.Fprintf(&b, "%8d %6d %12.5f %12.5f %12.5f %12.5f %12.5f\n",
			m, mu,
			bound.CCRIronyToledoTiskin(m), bound.CCROpt(m),
			bound.CCRMaxReuseAsymptotic(m), executed, bound.CCRBMM(m, t))
	}
	b.WriteString("new-bound/old-bound = √27; executed → maxreuse∞ as t grows; toledo ≈ √3 × maxreuse∞\n")
	return b.String(), nil
}

// UpperBoundTable compares Het's achieved makespan against the steady-state
// throughput bound of §5 on every experimental platform (the paper reports
// the bound is on average 2.29× better, at worst 3.42×, because it ignores C
// traffic and memory limits).
func UpperBoundTable(cfg Config) (string, error) {
	cfg = cfg.normalize()
	type entry struct {
		label string
		pl    *platform.Platform
		inst  sched.Instance
	}
	entries := []entry{
		{"hetero-memory", platform.HeteroMemory(), cfg.instance(1000)},
		{"hetero-comm", platform.HeteroComm(), cfg.instance(1000)},
		{"hetero-comp", platform.HeteroComp(), cfg.instance(1000)},
		{"fully-het-r2", platform.FullyHetero(2), cfg.instance(1000)},
		{"fully-het-r4", platform.FullyHetero(4), cfg.instance(1000)},
		{"lyon-aug07", platform.LyonAugust2007(), cfg.instance(4000)},
		{"lyon-nov06", platform.LyonNovember2006(), cfg.instance(4000)},
	}
	var b strings.Builder
	b.WriteString("== section 6: Het vs steady-state upper bound ==\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %8s\n", "platform", "het-makespan", "steady-bound", "ratio")
	var sum, worst float64
	for _, e := range entries {
		res, err := (sched.Het{}).Schedule(e.pl, e.inst)
		if err != nil {
			return "", err
		}
		lb := steady.MakespanLowerBound(e.pl, e.inst.R, e.inst.S, e.inst.T)
		ratio := res.Stats.Makespan / lb
		sum += ratio
		if ratio > worst {
			worst = ratio
		}
		fmt.Fprintf(&b, "%-14s %14.0f %14.0f %8.2f\n", e.label, res.Stats.Makespan, lb, ratio)
	}
	fmt.Fprintf(&b, "average ratio %.2f, worst %.2f (paper: 2.29 average, 3.42 worst)\n",
		sum/float64(len(entries)), worst)
	return b.String(), nil
}

// Table2Demo renders the §5 counterexample: the steady-state optimum of the
// Table 2 platform needs input buffering that grows linearly with x, so for
// any fixed memory it stops being realizable.
func Table2Demo(xs []float64) string {
	var b strings.Builder
	b.WriteString("== table 2: bandwidth-centric solution vs memory (μ=2, m=12 per worker) ==\n")
	fmt.Fprintf(&b, "%8s %12s %12s %14s %10s\n", "x", "throughput", "enrolled", "P1-buffers", "feasible")
	for _, x := range xs {
		pl := platform.Table2(x)
		a := steady.BandwidthCentric(pl)
		demand := steady.InputBufferDemand(pl, a, 0)
		fmt.Fprintf(&b, "%8.1f %12.3f %12d %14.1f %10v\n",
			x, a.Throughput, len(a.Enrolled), demand, steady.Feasible(pl, a))
	}
	return b.String()
}
