package exp

import (
	"strings"
	"testing"
)

// quickCfg shrinks the matrices 5× so the whole figure suite runs in seconds.
var quickCfg = Config{Scale: 0.2, Seed: 42}

func TestFig4Shape(t *testing.T) {
	fig, err := Fig4(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 5 {
		t.Fatalf("fig4 rows = %d, want 5 matrix sizes", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if len(row.Cells) != 7 {
			t.Fatalf("row %s has %d cells, want 7 algorithms", row.Label, len(row.Cells))
		}
		best := 0
		for _, c := range row.Cells {
			if c.RelCost < 1-1e-9 {
				t.Errorf("row %s: relative cost %v below 1", row.Label, c.RelCost)
			}
			if c.RelCost < 1+1e-9 {
				best++
			}
		}
		if best == 0 {
			t.Errorf("row %s: no algorithm achieves relative cost 1", row.Label)
		}
	}
}

func TestFig4HetNearBest(t *testing.T) {
	fig, err := Fig4(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		if rc := row.Cells["Het"].RelCost; rc > 1.25 {
			t.Errorf("row %s: Het relative cost %.3f, expected near-best (≤1.25)", row.Label, rc)
		}
	}
}

func TestFig5BMMWorseThanHet(t *testing.T) {
	fig, err := Fig5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		if row.Cells["BMM"].RelCost <= row.Cells["Het"].RelCost {
			t.Errorf("row %s: BMM (%.3f) should be worse than Het (%.3f) on heterogeneous links",
				row.Label, row.Cells["BMM"].RelCost, row.Cells["Het"].RelCost)
		}
	}
}

func TestFig7AllPlatforms(t *testing.T) {
	fig, err := Fig7(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 12 {
		t.Fatalf("fig7 rows = %d, want 12 (2 structured + 10 random)", len(fig.Rows))
	}
}

func TestFig8BothConfigurations(t *testing.T) {
	cfg := quickCfg
	cfg.Scale = 0.1 // s = 400 still, 20 workers
	fig, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("fig8 rows = %d, want 2 configurations", len(fig.Rows))
	}
	// On the Nov 2006 configuration resource-selecting algorithms should not
	// use all 20 workers.
	nov := fig.Rows[1]
	if n := nov.Cells["Het"].Enrolled; n >= 20 {
		t.Errorf("Het enrolled all %d workers on the memory-limited platform", n)
	}
}

func TestSummaryAggregates(t *testing.T) {
	f4, err := Fig4(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summary(f4, nil)
	if len(sum.Rows) != 5+2 {
		t.Fatalf("summary rows = %d, want 7 (5 + average + worst)", len(sum.Rows))
	}
	if len(sum.Notes) != 3 {
		t.Fatalf("summary notes = %d, want 3", len(sum.Notes))
	}
	avg := sum.Rows[len(sum.Rows)-2]
	if avg.Label != "average" || avg.Cells["Het"].RelCost < 1 {
		t.Errorf("unexpected average row %+v", avg)
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig, err := Fig4(Config{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	for _, want := range []string{"fig4", "relative cost", "relative work", "Het", "BMM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "figure,instance,algorithm") {
		t.Errorf("CSV header wrong: %q", csv[:40])
	}
	if n := strings.Count(csv, "\n"); n != 1+5*7 {
		t.Errorf("CSV lines = %d, want 36", n)
	}
}

func TestBoundsTable(t *testing.T) {
	out, err := BoundsTable(50, []int{21, 57, 111})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "maxreuse") || !strings.Contains(out, "toledo") {
		t.Errorf("bounds table malformed:\n%s", out)
	}
}

func TestTable2Demo(t *testing.T) {
	out := Table2Demo([]float64{1, 4, 16})
	if !strings.Contains(out, "feasible") || !strings.Contains(out, "false") {
		t.Errorf("table 2 demo should show an infeasible row:\n%s", out)
	}
}

func TestUpperBoundTable(t *testing.T) {
	cfg := Config{Scale: 0.1}
	out, err := UpperBoundTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "average ratio") {
		t.Errorf("upper bound table malformed:\n%s", out)
	}
}
