// Package exp is the experiment harness reproducing every figure of the
// paper's Section 6: it runs the seven competing schedulers over the
// experimental platforms, computes the paper's two metrics — relative cost
// (makespan over the instance's best makespan) and relative work (makespan ×
// enrolled workers, normalized the same way) — and renders the tables that
// correspond to Figures 4 through 9, plus the Section 3 bound table and the
// steady-state upper-bound comparison.
//
// The matrices follow the paper: A is 8000×8000 elements (r = t = 100 blocks
// of q = 80) and B is 8000×(64000..128000) (s = 800..1600), with s = 1000 for
// Figure 7 and s = 4000 for Figure 8. A Scale factor shrinks r, s and t
// proportionally for quick runs; platform parameters are never scaled.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/platform"
	"repro/internal/sched"
)

// Algorithm pairs a display name with a scheduler.
type Algorithm struct {
	Name string
	S    sched.Scheduler
}

// StandardAlgorithms returns the seven algorithms of §6 in the paper's order.
func StandardAlgorithms() []Algorithm {
	return []Algorithm{
		{"Hom", sched.Hom{}},
		{"HomI", sched.HomI{}},
		{"Het", sched.Het{}},
		{"ORROML", sched.ORROML{}},
		{"OMMOML", sched.OMMOML{}},
		{"ODDOML", sched.ODDOML{}},
		{"BMM", sched.BMM{}},
	}
}

// Config controls a harness run.
type Config struct {
	// Scale multiplies the paper's matrix dimensions (1 = full scale). Values
	// in (0, 1] shrink r, s, t proportionally.
	Scale float64
	// Seed is the base seed for the random Figure 7 platforms.
	Seed int64
	// Algorithms defaults to StandardAlgorithms.
	Algorithms []Algorithm
}

func (c Config) normalize() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = StandardAlgorithms()
	}
	return c
}

func (c Config) dim(paper int) int {
	d := int(math.Round(float64(paper) * c.Scale))
	if d < 1 {
		d = 1
	}
	return d
}

// Dim scales a paper-scale block dimension by the config's Scale (minimum 1);
// exported for callers building their own instances consistently with the
// harness.
func (c Config) Dim(paper int) int { return c.normalize().dim(paper) }

// instance builds the paper matrix shape for a given s (in paper units).
func (c Config) instance(paperS int) sched.Instance {
	return sched.Instance{R: c.dim(100), S: c.dim(paperS), T: c.dim(100)}
}

// Cell is one (algorithm, instance) measurement.
type Cell struct {
	Makespan float64
	Enrolled int
	RelCost  float64
	RelWork  float64
	Note     string
}

// Row is one experimental instance (one group of bars in the paper's plots).
type Row struct {
	Label string
	Cells map[string]Cell // by algorithm name
}

// Figure is a reproduced figure: rows × algorithms.
type Figure struct {
	ID         string
	Title      string
	Algorithms []string
	Rows       []Row
	Notes      []string
}

// runRow executes all algorithms on one (platform, instance) pair and fills
// in the relative metrics.
func runRow(label string, pl *platform.Platform, inst sched.Instance, algos []Algorithm) (Row, error) {
	row := Row{Label: label, Cells: map[string]Cell{}}
	bestSpan, bestWork := math.Inf(1), math.Inf(1)
	for _, a := range algos {
		res, err := a.S.Schedule(pl, inst)
		if err != nil {
			return row, fmt.Errorf("%s on %s: %w", a.Name, label, err)
		}
		cell := Cell{Makespan: res.Stats.Makespan, Enrolled: len(res.Enrolled), Note: res.Note}
		row.Cells[a.Name] = cell
		bestSpan = math.Min(bestSpan, cell.Makespan)
		bestWork = math.Min(bestWork, cell.Makespan*float64(cell.Enrolled))
	}
	for name, cell := range row.Cells {
		cell.RelCost = cell.Makespan / bestSpan
		cell.RelWork = cell.Makespan * float64(cell.Enrolled) / bestWork
		row.Cells[name] = cell
	}
	return row, nil
}

func names(algos []Algorithm) []string {
	out := make([]string, len(algos))
	for i, a := range algos {
		out[i] = a.Name
	}
	return out
}

// sweep runs the five matrix sizes of Figures 4–6 on a fixed platform.
func sweep(id, title string, pl *platform.Platform, cfg Config) (*Figure, error) {
	cfg = cfg.normalize()
	fig := &Figure{ID: id, Title: title, Algorithms: names(cfg.Algorithms)}
	for _, s := range []int{800, 1000, 1200, 1400, 1600} {
		inst := cfg.instance(s)
		row, err := runRow(fmt.Sprintf("s=%d", inst.S), pl, inst, cfg.Algorithms)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Fig4 — heterogeneous memory sizes (2×256 MB, 4×512 MB, 2×1 GB).
func Fig4(cfg Config) (*Figure, error) {
	return sweep("fig4", "Heterogeneous memory", platform.HeteroMemory(), cfg)
}

// Fig5 — heterogeneous communication links (2×10, 4×5, 2×1 Mbps).
func Fig5(cfg Config) (*Figure, error) {
	return sweep("fig5", "Heterogeneous communication links", platform.HeteroComm(), cfg)
}

// Fig6 — heterogeneous computation speeds (2×S, 4×S/2, 2×S/4).
func Fig6(cfg Config) (*Figure, error) {
	return sweep("fig6", "Heterogeneous computations", platform.HeteroComp(), cfg)
}

// Fig7 — fully heterogeneous platforms: the two structured platforms (all
// eight small/large combinations at ratio 2 and ratio 4) plus ten random
// platforms with ratios up to 4. B is 8000×80000 (s = 1000).
func Fig7(cfg Config) (*Figure, error) {
	cfg = cfg.normalize()
	fig := &Figure{ID: "fig7", Title: "Fully heterogeneous platforms", Algorithms: names(cfg.Algorithms)}
	inst := cfg.instance(1000)
	type pf struct {
		label string
		pl    *platform.Platform
	}
	pls := []pf{
		{"ratio2", platform.FullyHetero(2)},
		{"ratio4", platform.FullyHetero(4)},
	}
	for i := 0; i < 10; i++ {
		pls = append(pls, pf{fmt.Sprintf("rand%02d", i+1), platform.Random(8, 4, cfg.Seed+int64(i))})
	}
	for _, p := range pls {
		row, err := runRow(p.label, p.pl, inst, cfg.Algorithms)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Fig8 — the real Lyon platform (20 workers), before and after the memory
// upgrade. B is 8000×320000 (s = 4000).
func Fig8(cfg Config) (*Figure, error) {
	cfg = cfg.normalize()
	fig := &Figure{ID: "fig8", Title: "Real platform (Lyon)", Algorithms: names(cfg.Algorithms)}
	inst := cfg.instance(4000)
	for _, p := range []struct {
		label string
		pl    *platform.Platform
	}{
		{"aug-2007", platform.LyonAugust2007()},
		{"nov-2006", platform.LyonNovember2006()},
	} {
		row, err := runRow(p.label, p.pl, inst, cfg.Algorithms)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Summary builds Figure 9 from already-computed figures: per experiment, the
// relative cost and work of Het, ODDOML and BMM (the paper's summary plots),
// with average and worst rows appended.
func Summary(figs ...*Figure) *Figure {
	keep := []string{"Het", "ODDOML", "BMM"}
	out := &Figure{ID: "fig9", Title: "Summary: Het vs ODDOML vs BMM", Algorithms: keep}
	for _, f := range figs {
		if f == nil {
			continue
		}
		for _, row := range f.Rows {
			nr := Row{Label: f.ID + "/" + row.Label, Cells: map[string]Cell{}}
			ok := true
			for _, k := range keep {
				c, has := row.Cells[k]
				if !has {
					ok = false
					break
				}
				nr.Cells[k] = c
			}
			if ok {
				out.Rows = append(out.Rows, nr)
			}
		}
	}
	// Average and worst relative metrics across experiments.
	if len(out.Rows) > 0 {
		avg := Row{Label: "average", Cells: map[string]Cell{}}
		worst := Row{Label: "worst", Cells: map[string]Cell{}}
		for _, k := range keep {
			var sumC, sumW, maxC, maxW float64
			for _, r := range out.Rows {
				c := r.Cells[k]
				sumC += c.RelCost
				sumW += c.RelWork
				maxC = math.Max(maxC, c.RelCost)
				maxW = math.Max(maxW, c.RelWork)
			}
			n := float64(len(out.Rows))
			avg.Cells[k] = Cell{RelCost: sumC / n, RelWork: sumW / n}
			worst.Cells[k] = Cell{RelCost: maxC, RelWork: maxW}
		}
		out.Rows = append(out.Rows, avg, worst)
		het := avg.Cells["Het"]
		bmm := avg.Cells["BMM"]
		odd := avg.Cells["ODDOML"]
		out.Notes = append(out.Notes,
			fmt.Sprintf("memory-layout gain (BMM vs ODDOML avg rel cost): %.1f%%", 100*(bmm.RelCost-odd.RelCost)/bmm.RelCost),
			fmt.Sprintf("resource-selection gain (ODDOML vs Het avg rel cost): %.1f%%", 100*(odd.RelCost-het.RelCost)/odd.RelCost),
			fmt.Sprintf("total Het gain over BMM: %.1f%%", 100*(bmm.RelCost-het.RelCost)/bmm.RelCost),
		)
	}
	return out
}

// Render prints the figure as two aligned text tables (relative cost and
// relative work), the format the paper's bar plots are read from.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for _, metric := range []string{"relative cost", "relative work"} {
		fmt.Fprintf(&b, "-- %s --\n", metric)
		fmt.Fprintf(&b, "%-14s", "instance")
		for _, a := range f.Algorithms {
			fmt.Fprintf(&b, "%10s", a)
		}
		b.WriteByte('\n')
		for _, row := range f.Rows {
			fmt.Fprintf(&b, "%-14s", row.Label)
			for _, a := range f.Algorithms {
				c, ok := row.Cells[a]
				if !ok {
					fmt.Fprintf(&b, "%10s", "-")
					continue
				}
				v := c.RelCost
				if metric == "relative work" {
					v = c.RelWork
				}
				fmt.Fprintf(&b, "%10.3f", v)
			}
			b.WriteByte('\n')
		}
	}
	if len(f.Notes) > 0 {
		for _, n := range f.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// CSV renders the figure as comma-separated rows:
// figure,instance,algorithm,makespan,enrolled,rel_cost,rel_work.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,instance,algorithm,makespan,enrolled,rel_cost,rel_work\n")
	for _, row := range f.Rows {
		algos := make([]string, 0, len(row.Cells))
		for a := range row.Cells {
			algos = append(algos, a)
		}
		sort.Strings(algos)
		for _, a := range algos {
			c := row.Cells[a]
			fmt.Fprintf(&b, "%s,%s,%s,%g,%d,%g,%g\n", f.ID, row.Label, a, c.Makespan, c.Enrolled, c.RelCost, c.RelWork)
		}
	}
	return b.String()
}
