package exp

import (
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/sched"
)

func TestHeterogeneitySweepShapes(t *testing.T) {
	cfg := Config{Scale: 0.12}
	for _, kind := range []HeterogeneityKind{SweepComm, SweepComp, SweepMemory} {
		fig, err := HeterogeneitySweep(kind, []float64{1, 4}, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(fig.Rows) != 2 {
			t.Fatalf("%s: rows = %d", kind, len(fig.Rows))
		}
		for _, row := range fig.Rows {
			if len(row.Cells) != 7 {
				t.Fatalf("%s %s: cells = %d", kind, row.Label, len(row.Cells))
			}
		}
	}
	if _, err := HeterogeneitySweep("bogus", []float64{2}, cfg); err == nil {
		t.Error("unknown sweep kind accepted")
	}
}

func TestSweepRatioOneIsHomogeneous(t *testing.T) {
	pl, err := sweepPlatform(SweepComm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.IsHomogeneous() {
		t.Error("ratio 1 should give a homogeneous platform")
	}
	pl, err = sweepPlatform(SweepComp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pl.IsHomogeneous() {
		t.Error("ratio 3 should be heterogeneous")
	}
}

func TestSweepSelectionKicksInWithHeterogeneity(t *testing.T) {
	// At high link heterogeneity the no-selection algorithms must fall
	// behind Het (this is the content of Figure 5, now as a trend).
	fig, err := HeterogeneitySweep(SweepComm, []float64{1, 8}, Config{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	hi := fig.Rows[1]
	if hi.Cells["ORROML"].RelCost <= hi.Cells["Het"].RelCost {
		t.Errorf("at ratio 8, ORROML (%.3f) should trail Het (%.3f)",
			hi.Cells["ORROML"].RelCost, hi.Cells["Het"].RelCost)
	}
}

func TestRobustnessReport(t *testing.T) {
	pl := platform.FullyHetero(2)
	out, err := Robustness(pl, sched.Instance{R: 10, S: 40, T: 8}, []float64{0, 0.3}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"robustness", "eps", "ODDOML", "0.30"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
