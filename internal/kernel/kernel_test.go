package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// awkwardEdges are the block edges the cross-kernel suites sweep: everything
// below the 8×4 tile (pure tail), every misalignment class around it, the
// engine-test edges 16 and 33, and the paper's production edges 80 and 100.
var awkwardEdges = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 16, 33, 80, 100}

// refMulAdd is the independent oracle: the naive ijk triple loop. Per C
// element it performs the identical ascending-k unfused operation sequence
// every kernel promises, so agreement must be bitwise, not approximate.
func refMulAdd(c, a, b []float64, q int) {
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			s := c[i*q+j]
			for k := 0; k < q; k++ {
				s += a[i*q+k] * b[k*q+j]
			}
			c[i*q+j] = s
		}
	}
}

func refMulSub(c, a, b []float64, q int) {
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			s := c[i*q+j]
			for k := 0; k < q; k++ {
				s -= a[i*q+k] * b[k*q+j]
			}
			c[i*q+j] = s
		}
	}
}

// randomOperands builds zero-free random c, a, b slices for edge q.
func randomOperands(q int, rng *rand.Rand) (c, a, b []float64) {
	c = make([]float64, q*q)
	a = make([]float64, q*q)
	b = make([]float64, q*q)
	for i := range c {
		c[i] = 2*rng.Float64() - 1
		a[i] = 2*rng.Float64() - 1
		b[i] = 2*rng.Float64() - 1
	}
	return c, a, b
}

// bitwiseDiff returns the index of the first bitwise difference, or -1.
func bitwiseDiff(x, y []float64) int {
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
			return i
		}
	}
	return -1
}

// TestKernelsBitwiseVsRef is the contract test: every registered kernel's
// MulAdd and MulSub agree BITWISE with the naive oracle on every awkward
// edge. This is what lets a heterogeneous fleet mix kernels per worker and
// still produce one C, and what lets MATMUL_KERNEL swap kernels under the
// executor suites without perturbing a single expected byte.
func TestKernelsBitwiseVsRef(t *testing.T) {
	for _, k := range Registered() {
		for _, q := range awkwardEdges {
			t.Run(fmt.Sprintf("%s/q=%d", k.Name, q), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(q)))
				c0, a, b := randomOperands(q, rng)

				want := append([]float64(nil), c0...)
				refMulAdd(want, a, b, q)
				got := append([]float64(nil), c0...)
				k.MulAdd(got, a, b, q)
				if i := bitwiseDiff(want, got); i >= 0 {
					t.Fatalf("MulAdd: element %d differs: ref %x kernel %x",
						i, math.Float64bits(want[i]), math.Float64bits(got[i]))
				}

				want = append(want[:0:0], c0...)
				refMulSub(want, a, b, q)
				got = append(got[:0:0], c0...)
				k.MulSub(got, a, b, q)
				if i := bitwiseDiff(want, got); i >= 0 {
					t.Fatalf("MulSub: element %d differs: ref %x kernel %x",
						i, math.Float64bits(want[i]), math.Float64bits(got[i]))
				}
			})
		}
	}
}

// TestKernelsBitwisePairwiseAccumulated drives three accumulating updates
// through each kernel (the engine applies one block update per installment
// panel, so C flows through the kernel repeatedly) and cross-checks all
// registered kernels pairwise — catching any drift the single-shot oracle
// comparison could mask.
func TestKernelsBitwisePairwiseAccumulated(t *testing.T) {
	const q, rounds = 33, 3
	rng := rand.New(rand.NewSource(7))
	c0, a, b := randomOperands(q, rng)
	a2 := make([]float64, q*q)
	for i := range a2 {
		a2[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(40)-20)
	}

	results := make(map[string][]float64)
	for _, k := range Registered() {
		c := append([]float64(nil), c0...)
		for r := 0; r < rounds; r++ {
			k.MulAdd(c, a, b, q)
			k.MulSub(c, a2, b, q)
		}
		results[k.Name] = c
	}
	base := Registered()[0]
	for name, got := range results {
		if i := bitwiseDiff(results[base.Name], got); i >= 0 {
			t.Fatalf("kernel %s diverges from %s at element %d after %d rounds",
				name, base.Name, i, rounds)
		}
	}
}

// TestDispatchState pins the dispatcher's init-time invariants: a nonempty
// registry with generic and tiled always present, the active kernel drawn
// from the registry, and Lookup/Names agreeing with it.
func TestDispatchState(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no kernels registered")
	}
	for _, want := range []string{"generic", "tiled"} {
		if Lookup(want) == nil {
			t.Errorf("portable kernel %q not registered (have %v)", want, names)
		}
	}
	if Lookup(Name()) == nil {
		t.Errorf("active kernel %q not in registry %v", Name(), names)
	}
	if Lookup("no-such-kernel") != nil {
		t.Error("Lookup invented a kernel")
	}
	for _, k := range Registered() {
		if k.MulAdd == nil || k.MulSub == nil || k.Name == "" {
			t.Errorf("kernel %+v incompletely registered", k)
		}
	}
}

// TestKernelsZeroAlloc: block updates are the innermost hot path; a single
// allocation per call would swamp the executors' pooled-block design.
func TestKernelsZeroAlloc(t *testing.T) {
	for _, k := range Registered() {
		for _, q := range []int{13, 80} {
			rng := rand.New(rand.NewSource(1))
			c, a, b := randomOperands(q, rng)
			allocs := testing.AllocsPerRun(10, func() {
				k.MulAdd(c, a, b, q)
				k.MulSub(c, a, b, q)
			})
			if allocs != 0 {
				t.Errorf("kernel %s q=%d: %.1f allocs/op, want 0", k.Name, q, allocs)
			}
		}
	}
}

// benchKernel measures one kernel at the paper's q=80 with the same
// zero-free operands as the root BenchmarkBlockMulAdd.
func benchKernel(b *testing.B, k *Kernel) {
	const q = 80
	c := make([]float64, q*q)
	a := make([]float64, q*q)
	bb := make([]float64, q*q)
	for i := range a {
		a[i] = float64(i%7) + 0.5
		bb[i] = float64(i%5) + 0.25
	}
	b.SetBytes(3 * 8 * q * q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MulAdd(c, a, bb, q)
	}
}

func BenchmarkKernels(b *testing.B) {
	for _, k := range Registered() {
		b.Run(k.Name, func(b *testing.B) { benchKernel(b, k) })
	}
}
