// AVX2 block-update kernels: 8×4 register tiles, unfused vmulpd+vaddpd so C
// stays bitwise-identical to the scalar kernels (see dispatch_amd64.go).
//
// Register plan, shared by both kernels:
//
//	R8           row stride in bytes (q*8); R9/R11/R12 = 3/5/7 strides,
//	             so scaled addressing reaches all eight tile rows:
//	             0, R8*1, R8*2, R9*1, R8*4, R11*1, R9*2, R12*1
//	R13 / R14    current C / A row-group base (advance 8 rows per group)
//	DI / DX      current C tile base / B column base (advance 4 cols)
//	SI / R10     k-walking pointers into A (8 bytes/step) and B (1 row/step)
//	AX / BX / CX row / column / k loop counters, counting down
//	Y0–Y7        the 8×4 C accumulator tile (4 columns per register)
//	Y8           b[k][j0:j0+4]; Y9–Y15 broadcast/product temporaries
//
// qi (multiple of 8) and qj (multiple of 4) are both nonzero: the Go wrapper
// only calls in when there is at least one full tile, and handles the ragged
// edges itself.

#include "textflag.h"

// func mulAddAVX2(c, a, b *float64, q, qi, qj int)
TEXT ·mulAddAVX2(SB), NOSPLIT, $0-48
	MOVQ q+24(FP), R8
	SHLQ $3, R8                 // R8 = q*8: row stride in bytes
	LEAQ (R8)(R8*2), R9         // 3*stride
	LEAQ (R8)(R8*4), R11        // 5*stride
	LEAQ (R11)(R8*2), R12       // 7*stride
	MOVQ c+0(FP), R13
	MOVQ a+8(FP), R14
	MOVQ qi+32(FP), AX

rowgroup:
	MOVQ R13, DI                // C tile base: cRow + col offset
	MOVQ b+16(FP), DX           // B column base: b + col offset
	MOVQ qj+40(FP), BX

coltile:
	// Load the 8×4 C tile.
	VMOVUPD (DI), Y0
	VMOVUPD (DI)(R8*1), Y1
	VMOVUPD (DI)(R8*2), Y2
	VMOVUPD (DI)(R9*1), Y3
	VMOVUPD (DI)(R8*4), Y4
	VMOVUPD (DI)(R11*1), Y5
	VMOVUPD (DI)(R9*2), Y6
	VMOVUPD (DI)(R12*1), Y7
	MOVQ R14, SI                // &a[i0][0]
	MOVQ DX, R10                // &b[0][j0]
	MOVQ q+24(FP), CX

kloop:
	VMOVUPD      (R10), Y8      // b[k][j0:j0+4]
	VBROADCASTSD (SI), Y9       // a[i0+0][k]
	VMULPD       Y8, Y9, Y9
	VADDPD       Y9, Y0, Y0
	VBROADCASTSD (SI)(R8*1), Y10
	VMULPD       Y8, Y10, Y10
	VADDPD       Y10, Y1, Y1
	VBROADCASTSD (SI)(R8*2), Y11
	VMULPD       Y8, Y11, Y11
	VADDPD       Y11, Y2, Y2
	VBROADCASTSD (SI)(R9*1), Y12
	VMULPD       Y8, Y12, Y12
	VADDPD       Y12, Y3, Y3
	VBROADCASTSD (SI)(R8*4), Y13
	VMULPD       Y8, Y13, Y13
	VADDPD       Y13, Y4, Y4
	VBROADCASTSD (SI)(R11*1), Y14
	VMULPD       Y8, Y14, Y14
	VADDPD       Y14, Y5, Y5
	VBROADCASTSD (SI)(R9*2), Y15
	VMULPD       Y8, Y15, Y15
	VADDPD       Y15, Y6, Y6
	VBROADCASTSD (SI)(R12*1), Y9
	VMULPD       Y8, Y9, Y9
	VADDPD       Y9, Y7, Y7
	ADDQ $8, SI
	ADDQ R8, R10
	DECQ CX
	JNE  kloop

	// Store the tile back.
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, (DI)(R8*1)
	VMOVUPD Y2, (DI)(R8*2)
	VMOVUPD Y3, (DI)(R9*1)
	VMOVUPD Y4, (DI)(R8*4)
	VMOVUPD Y5, (DI)(R11*1)
	VMOVUPD Y6, (DI)(R9*2)
	VMOVUPD Y7, (DI)(R12*1)
	ADDQ $32, DI                // next 4 columns
	ADDQ $32, DX
	SUBQ $4, BX
	JNE  coltile

	LEAQ (R13)(R8*8), R13       // next 8 rows
	LEAQ (R14)(R8*8), R14
	SUBQ $8, AX
	JNE  rowgroup

	VZEROUPPER
	RET

// func mulSubAVX2(c, a, b *float64, q, qi, qj int)
//
// Identical to mulAddAVX2 with VSUBPD accumulation: tile = tile − a·b,
// matching the scalar kernels' ci[j] -= aik*bk[j] ordering exactly.
TEXT ·mulSubAVX2(SB), NOSPLIT, $0-48
	MOVQ q+24(FP), R8
	SHLQ $3, R8
	LEAQ (R8)(R8*2), R9
	LEAQ (R8)(R8*4), R11
	LEAQ (R11)(R8*2), R12
	MOVQ c+0(FP), R13
	MOVQ a+8(FP), R14
	MOVQ qi+32(FP), AX

rowgroup:
	MOVQ R13, DI
	MOVQ b+16(FP), DX
	MOVQ qj+40(FP), BX

coltile:
	VMOVUPD (DI), Y0
	VMOVUPD (DI)(R8*1), Y1
	VMOVUPD (DI)(R8*2), Y2
	VMOVUPD (DI)(R9*1), Y3
	VMOVUPD (DI)(R8*4), Y4
	VMOVUPD (DI)(R11*1), Y5
	VMOVUPD (DI)(R9*2), Y6
	VMOVUPD (DI)(R12*1), Y7
	MOVQ R14, SI
	MOVQ DX, R10
	MOVQ q+24(FP), CX

kloop:
	VMOVUPD      (R10), Y8
	VBROADCASTSD (SI), Y9
	VMULPD       Y8, Y9, Y9
	VSUBPD       Y9, Y0, Y0
	VBROADCASTSD (SI)(R8*1), Y10
	VMULPD       Y8, Y10, Y10
	VSUBPD       Y10, Y1, Y1
	VBROADCASTSD (SI)(R8*2), Y11
	VMULPD       Y8, Y11, Y11
	VSUBPD       Y11, Y2, Y2
	VBROADCASTSD (SI)(R9*1), Y12
	VMULPD       Y8, Y12, Y12
	VSUBPD       Y12, Y3, Y3
	VBROADCASTSD (SI)(R8*4), Y13
	VMULPD       Y8, Y13, Y13
	VSUBPD       Y13, Y4, Y4
	VBROADCASTSD (SI)(R11*1), Y14
	VMULPD       Y8, Y14, Y14
	VSUBPD       Y14, Y5, Y5
	VBROADCASTSD (SI)(R9*2), Y15
	VMULPD       Y8, Y15, Y15
	VSUBPD       Y15, Y6, Y6
	VBROADCASTSD (SI)(R12*1), Y9
	VMULPD       Y8, Y9, Y9
	VSUBPD       Y9, Y7, Y7
	ADDQ $8, SI
	ADDQ R8, R10
	DECQ CX
	JNE  kloop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, (DI)(R8*1)
	VMOVUPD Y2, (DI)(R8*2)
	VMOVUPD Y3, (DI)(R9*1)
	VMOVUPD Y4, (DI)(R8*4)
	VMOVUPD Y5, (DI)(R11*1)
	VMOVUPD Y6, (DI)(R9*2)
	VMOVUPD Y7, (DI)(R12*1)
	ADDQ $32, DI
	ADDQ $32, DX
	SUBQ $4, BX
	JNE  coltile

	LEAQ (R13)(R8*8), R13
	LEAQ (R14)(R8*8), R14
	SUBQ $8, AX
	JNE  rowgroup

	VZEROUPPER
	RET
