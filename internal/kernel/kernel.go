// Package kernel is the block-update micro-kernel layer: the one place the
// repository's q³ flops actually happen. Every runtime — the in-process
// engine, the TCP workers, ParallelMultiply, the LU trailing updates — funnels
// its block updates through this package's MulAdd/MulSub, which dispatch to
// the best implementation the CPU supports, selected once at init:
//
//   - generic: the portable ikj loop, 4-wide unrolled (the previous
//     matrix.MulAdd, kept as the reference implementation and the -race lane)
//   - tiled: register-blocked pure Go — 8-row C panels updated per pass over
//     a B row, the eight a[i][k] scalars held in registers, so each loaded b
//     element feeds eight multiply-add chains instead of one
//   - avx2 (amd64): a true 8×4 register tile in AVX2 assembly — four C
//     columns per YMM register, eight YMM accumulators — unfused
//     vmulpd+vaddpd
//
// The bitwise contract. Every kernel performs, per C element, the identical
// floating-point operation sequence: c ← c + a_ik·b_kj for k ascending, each
// step one IEEE-754 multiply followed by one add, never fused. Register
// blocking reorders which elements are in flight, never the per-element
// chain, and float64 spills/reloads are exact — so C is bitwise-identical
// across kernels, and the repo-wide invariant that every executor produces
// bitwise-identical C regardless of runtime, failover or membership change
// extends across heterogeneous fleets whose workers picked different kernels.
// (The avx2 kernel deliberately forgoes FMA: fusing would drop the
// intermediate rounding and break this guarantee for a ~2x throughput gain
// that the paper's model does not need.)
//
// Dispatch is overridable for tests and CI: set MATMUL_KERNEL=generic|tiled|
// avx2 before the process starts. Naming a kernel the CPU cannot run (or one
// that does not exist) panics at init — a mistyped override must never
// silently benchmark or test the wrong kernel.
package kernel

import (
	"fmt"
	"os"
	"strings"
)

// EnvKernel is the environment variable that overrides kernel selection.
const EnvKernel = "MATMUL_KERNEL"

// Kernel is one block-update implementation. MulAdd computes c ← c + a·b and
// MulSub c ← c − a·b over row-major q×q float64 slices (len ≥ q·q). Callers
// guarantee the three slices are distinct and the shapes agree; kernels
// guarantee the per-element ascending-k unfused operation sequence.
type Kernel struct {
	Name   string
	MulAdd func(c, a, b []float64, q int)
	MulSub func(c, a, b []float64, q int)
}

// kernels holds every implementation this CPU can run, best first. active is
// the init-time selection MulAdd/MulSub dispatch through.
var (
	kernels []*Kernel
	active  *Kernel
)

func init() {
	// Preference order: assembly beats tiled Go beats the generic unroll.
	// archKernels contributes the platform's assembly kernels (empty off
	// amd64 or when the CPU lacks the features).
	kernels = append(archKernels(), tiledKernel, genericKernel)
	active = kernels[0]
	if name := os.Getenv(EnvKernel); name != "" {
		k := Lookup(name)
		if k == nil {
			panic(fmt.Sprintf("kernel: %s=%q: unknown or unavailable kernel (this CPU has: %s)",
				EnvKernel, name, strings.Join(Names(), ", ")))
		}
		active = k
	}
}

// MulAdd performs c ← c + a·b through the selected kernel.
func MulAdd(c, a, b []float64, q int) { active.MulAdd(c, a, b, q) }

// MulSub performs c ← c − a·b through the selected kernel.
func MulSub(c, a, b []float64, q int) { active.MulSub(c, a, b, q) }

// Name reports the selected kernel, for startup logs and fleet stats — on a
// heterogeneous fleet, knowing which worker runs which kernel is the first
// question when per-worker compute estimates diverge.
func Name() string { return active.Name }

// Registered returns every kernel available on this CPU, best first. Tests
// iterate this to assert cross-kernel bitwise identity; callers must not
// mutate the returned kernels.
func Registered() []*Kernel { return kernels }

// Names lists the available kernel names, best first.
func Names() []string {
	out := make([]string, len(kernels))
	for i, k := range kernels {
		out[i] = k.Name
	}
	return out
}

// Lookup returns the available kernel with the given name, or nil.
func Lookup(name string) *Kernel {
	for _, k := range kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}
