package kernel

// The avx2 kernel is the 8×4 register tile the pure-Go kernels cannot afford
// (32 float64 locals spill; see tiled.go): one YMM register holds four C
// columns of a row, eight accumulator registers hold the tile, each k step
// loads one b vector and broadcasts eight a scalars. Multiplies and adds are
// deliberately UNFUSED (vmulpd then vaddpd, never vfmadd) so each C element
// sees the same intermediate rounding as the scalar kernels and the
// cross-kernel bitwise contract holds.
//
// The assembly covers the complete 8-row × 4-column tiles; the ragged right
// and bottom edges (q not a multiple of the tile) run through the same scalar
// tail as the tiled kernel. The default q=80 has no edges at all.

// mulAddAVX2 updates the full-tile region of c: rows [0,qi) × cols [0,qj),
// qi a positive multiple of 8 and qj a positive multiple of 4, with the
// complete ascending-k contribution. Implemented in muladd_amd64.s.
//
//go:noescape
func mulAddAVX2(c, a, b *float64, q, qi, qj int)

// mulSubAVX2 is mulAddAVX2 with subtraction.
//
//go:noescape
func mulSubAVX2(c, a, b *float64, q, qi, qj int)

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask. Only valid when
// CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

var avx2Kernel = &Kernel{Name: "avx2", MulAdd: avx2MulAdd, MulSub: avx2MulSub}

func avx2MulAdd(c, a, b []float64, q int) {
	qi, qj := q&^7, q&^3
	if qi > 0 && qj > 0 {
		mulAddAVX2(&c[0], &a[0], &b[0], q, qi, qj)
	}
	tailMulAdd(c, a, b, q, qi, q, 0, q)
	tailMulAdd(c, a, b, q, 0, qi, qj, q)
}

func avx2MulSub(c, a, b []float64, q int) {
	qi, qj := q&^7, q&^3
	if qi > 0 && qj > 0 {
		mulSubAVX2(&c[0], &a[0], &b[0], q, qi, qj)
	}
	tailMulSub(c, a, b, q, qi, q, 0, q)
	tailMulSub(c, a, b, q, 0, qi, qj, q)
}

// archKernels contributes the assembly kernels this CPU can run, best first.
func archKernels() []*Kernel {
	if hasAVX2() {
		return []*Kernel{avx2Kernel}
	}
	return nil
}

// hasAVX2 is the hand-rolled CPUID probe (the module is dependency-free, so
// no golang.org/x/sys/cpu): AVX2 instructions present, and — the part naive
// probes skip — the OS actually saving YMM state across context switches.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX upper-halves state) must both be
	// OS-enabled, or executing a VEX-256 instruction faults.
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // EBX bit 5: AVX2
}
