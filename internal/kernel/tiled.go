package kernel

// tiledKernel is the register-blocked pure-Go kernel: 8-row panels of C
// updated per pass over a B row. The eight a[i0+r][k] scalars are held in
// locals across the inner j loop, so every loaded b element feeds eight
// multiply-add chains (the generic kernel re-streams B once per C row —
// eight times the B traffic), and all three operands keep unit-stride,
// prefetcher-friendly access.
//
// Why this shape and not the textbook 8×4 accumulator tile: Go's register
// allocator has 16 float registers, so 32 C accumulators held in locals
// spill to the stack, and the spill stores cost exactly what keeping C in
// memory costs — measured at q=80: 8×4 locals 414 MB/s, 4×4 locals 440,
// 4×2 (which does fit) 550, this 8-row panel form 687 vs the generic
// kernel's 552. The true 8×4 register tile lives in the avx2 kernel, where
// a row of the tile is one YMM register, not four spilled locals.
//
// The per-element operation sequence is the generic one — ascending k, one
// unfused multiply then one add — so C stays bitwise-identical.
var tiledKernel = &Kernel{Name: "tiled", MulAdd: tiledMulAdd, MulSub: tiledMulSub}

func tiledMulAdd(c, a, b []float64, q int) {
	qi := q &^ 7
	for i0 := 0; i0 < qi; i0 += 8 {
		// Rows re-cut to length q so k and j provably stay in bounds and
		// the two inner loops run check-free.
		a0 := a[(i0+0)*q : (i0+1)*q][:q]
		a1 := a[(i0+1)*q : (i0+2)*q][:q]
		a2 := a[(i0+2)*q : (i0+3)*q][:q]
		a3 := a[(i0+3)*q : (i0+4)*q][:q]
		a4 := a[(i0+4)*q : (i0+5)*q][:q]
		a5 := a[(i0+5)*q : (i0+6)*q][:q]
		a6 := a[(i0+6)*q : (i0+7)*q][:q]
		a7 := a[(i0+7)*q : (i0+8)*q][:q]
		c0 := c[(i0+0)*q : (i0+1)*q][:q]
		c1 := c[(i0+1)*q : (i0+2)*q][:q]
		c2 := c[(i0+2)*q : (i0+3)*q][:q]
		c3 := c[(i0+3)*q : (i0+4)*q][:q]
		c4 := c[(i0+4)*q : (i0+5)*q][:q]
		c5 := c[(i0+5)*q : (i0+6)*q][:q]
		c6 := c[(i0+6)*q : (i0+7)*q][:q]
		c7 := c[(i0+7)*q : (i0+8)*q][:q]
		for k := 0; k < q; k++ {
			a0k, a1k, a2k, a3k := a0[k], a1[k], a2[k], a3[k]
			a4k, a5k, a6k, a7k := a4[k], a5[k], a6[k], a7[k]
			bk := b[k*q : (k+1)*q][:q]
			for j := 0; j < q; j++ {
				bj := bk[j]
				c0[j] += a0k * bj
				c1[j] += a1k * bj
				c2[j] += a2k * bj
				c3[j] += a3k * bj
				c4[j] += a4k * bj
				c5[j] += a5k * bj
				c6[j] += a6k * bj
				c7[j] += a7k * bj
			}
		}
	}
	tailMulAdd(c, a, b, q, qi, q, 0, q)
}

func tiledMulSub(c, a, b []float64, q int) {
	qi := q &^ 7
	for i0 := 0; i0 < qi; i0 += 8 {
		a0 := a[(i0+0)*q : (i0+1)*q][:q]
		a1 := a[(i0+1)*q : (i0+2)*q][:q]
		a2 := a[(i0+2)*q : (i0+3)*q][:q]
		a3 := a[(i0+3)*q : (i0+4)*q][:q]
		a4 := a[(i0+4)*q : (i0+5)*q][:q]
		a5 := a[(i0+5)*q : (i0+6)*q][:q]
		a6 := a[(i0+6)*q : (i0+7)*q][:q]
		a7 := a[(i0+7)*q : (i0+8)*q][:q]
		c0 := c[(i0+0)*q : (i0+1)*q][:q]
		c1 := c[(i0+1)*q : (i0+2)*q][:q]
		c2 := c[(i0+2)*q : (i0+3)*q][:q]
		c3 := c[(i0+3)*q : (i0+4)*q][:q]
		c4 := c[(i0+4)*q : (i0+5)*q][:q]
		c5 := c[(i0+5)*q : (i0+6)*q][:q]
		c6 := c[(i0+6)*q : (i0+7)*q][:q]
		c7 := c[(i0+7)*q : (i0+8)*q][:q]
		for k := 0; k < q; k++ {
			a0k, a1k, a2k, a3k := a0[k], a1[k], a2[k], a3[k]
			a4k, a5k, a6k, a7k := a4[k], a5[k], a6[k], a7[k]
			bk := b[k*q : (k+1)*q][:q]
			for j := 0; j < q; j++ {
				bj := bk[j]
				c0[j] -= a0k * bj
				c1[j] -= a1k * bj
				c2[j] -= a2k * bj
				c3[j] -= a3k * bj
				c4[j] -= a4k * bj
				c5[j] -= a5k * bj
				c6[j] -= a6k * bj
				c7[j] -= a7k * bj
			}
		}
	}
	tailMulSub(c, a, b, q, qi, q, 0, q)
}

// tailMulAdd applies the scalar ikj update to the C sub-rectangle
// rows [i0,i1) × cols [j0,j1) — the ragged edges a blocked or vectorized
// body does not cover. Per-element k order is ascending, like every kernel
// path.
func tailMulAdd(c, a, b []float64, q, i0, i1, j0, j1 int) {
	if i0 >= i1 || j0 >= j1 {
		return
	}
	for i := i0; i < i1; i++ {
		ci := c[i*q : (i+1)*q]
		ai := a[i*q : (i+1)*q]
		for k := 0; k < q; k++ {
			aik := ai[k]
			bk := b[k*q : (k+1)*q]
			for j := j0; j < j1; j++ {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// tailMulSub is tailMulAdd with subtraction.
func tailMulSub(c, a, b []float64, q, i0, i1, j0, j1 int) {
	if i0 >= i1 || j0 >= j1 {
		return
	}
	for i := i0; i < i1; i++ {
		ci := c[i*q : (i+1)*q]
		ai := a[i*q : (i+1)*q]
		for k := 0; k < q; k++ {
			aik := ai[k]
			bk := b[k*q : (k+1)*q]
			for j := j0; j < j1; j++ {
				ci[j] -= aik * bk[j]
			}
		}
	}
}
