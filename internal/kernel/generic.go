package kernel

// genericKernel is the portable baseline: the ikj loop nest with a 4-wide
// unrolled inner loop, unchanged from the pre-dispatch matrix.MulAdd. It is
// the kernel the -race CI lane runs (MATMUL_KERNEL=generic) and the floor
// the others are measured against.
var genericKernel = &Kernel{Name: "generic", MulAdd: genericMulAdd, MulSub: genericMulSub}

// genericMulAdd streams rows of b and c with unit stride; a[i,k] is hoisted
// into a register. The 4-wide unroll keeps four independent multiply-add
// chains in flight; per-element accumulation order is unchanged (each c
// element receives its k-contributions in ascending k), so results stay
// bitwise-identical to the rolled loop. An earlier version skipped k when
// a[i,k] == 0; on the dense random blocks of the engine's steady state the
// branch is never taken and only costs. Measured on a 2.10 GHz Xeon, q=80,
// zero-free data: 426µs/op rolled with the branch, 394µs/op rolled without
// it, ~255µs/op unrolled with the bounds checks eliminated.
func genericMulAdd(c, a, b []float64, q int) {
	for i := 0; i < q; i++ {
		ci := c[i*q : (i+1)*q]
		ai := a[i*q : (i+1)*q]
		for k := 0; k < q; k++ {
			aik := ai[k]
			// Re-slicing to len(ci) tells the compiler both rows share one
			// length, eliminating the ci bounds checks in the unrolled body.
			bk := b[k*q : (k+1)*q][:len(ci)]
			j := 0
			for ; j+4 <= len(bk); j += 4 {
				ci[j] += aik * bk[j]
				ci[j+1] += aik * bk[j+1]
				ci[j+2] += aik * bk[j+2]
				ci[j+3] += aik * bk[j+3]
			}
			for ; j < len(bk); j++ {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// genericMulSub mirrors genericMulAdd with subtraction. The dense-hostile
// aik == 0 skip branch the old matrix.MulSub carried (already measured and
// removed from MulAdd) is gone here too: LU trailing updates run on dense
// panels where the branch never fires and only costs.
func genericMulSub(c, a, b []float64, q int) {
	for i := 0; i < q; i++ {
		ci := c[i*q : (i+1)*q]
		ai := a[i*q : (i+1)*q]
		for k := 0; k < q; k++ {
			aik := ai[k]
			bk := b[k*q : (k+1)*q][:len(ci)]
			j := 0
			for ; j+4 <= len(bk); j += 4 {
				ci[j] -= aik * bk[j]
				ci[j+1] -= aik * bk[j+1]
				ci[j+2] -= aik * bk[j+2]
				ci[j+3] -= aik * bk[j+3]
			}
			for ; j < len(bk); j++ {
				ci[j] -= aik * bk[j]
			}
		}
	}
}
