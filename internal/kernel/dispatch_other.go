//go:build !amd64

package kernel

// archKernels contributes assembly kernels on architectures that have them;
// everywhere else the pure-Go kernels carry the load.
func archKernels() []*Kernel { return nil }
