package matrix

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzBlock builds a q×q block whose elements are the raw float64 bit
// patterns carried in data (cycled and padded when short). Negative zeros,
// denormals and infinities all stay: IEEE-754 multiply and add treat them
// deterministically, so they are part of the bitwise contract — including
// NaNs the arithmetic itself produces (0·∞, ∞−∞ yield the one indefinite
// QNaN). Only NaN *inputs* are bent finite (clearing an exponent bit): which
// operand's payload an add propagates follows instruction operand order,
// which the contract deliberately does not pin.
func fuzzBlock(q int, data []byte, off int) *Block {
	b := NewBlock(q)
	for i := range b.Data {
		var word [8]byte
		for j := range word {
			if len(data) > 0 {
				word[j] = data[(off+8*i+j)%len(data)]
			}
		}
		bits := binary.LittleEndian.Uint64(word[:])
		if v := math.Float64frombits(bits); v != v {
			bits &^= 1 << 62
		}
		b.Data[i] = math.Float64frombits(bits)
	}
	return b
}

// FuzzMulAdd feeds arbitrary operand bit patterns through the dispatched
// MulAdd/MulSub and cross-checks both against the naive oracle bitwise —
// the fuzzing counterpart of internal/kernel's fixed-edge suites.
func FuzzMulAdd(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(4), []byte{0x3f, 0xf0, 0, 0, 0, 0, 0, 0, 0x80, 0x01})
	f.Add(uint8(7), []byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0}) // +Inf seed
	f.Add(uint8(12), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, qSeed uint8, data []byte) {
		q := 1 + int(qSeed)%13
		a := fuzzBlock(q, data, 0)
		b := fuzzBlock(q, data, 3)
		c0 := fuzzBlock(q, data, 5)

		got, want := c0.Clone(), c0.Clone()
		MulAdd(got, a, b)
		MulAddRef(want, a, b)
		for i := range want.Data {
			if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("q=%d: MulAdd element %d: ref %x, kernel %x",
					q, i, math.Float64bits(want.Data[i]), math.Float64bits(got.Data[i]))
			}
		}

		got, want = c0.Clone(), c0.Clone()
		MulSub(got, a, b)
		mulSubRef(want, a, b)
		for i := range want.Data {
			if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("q=%d: MulSub element %d: ref %x, kernel %x",
					q, i, math.Float64bits(want.Data[i]), math.Float64bits(got.Data[i]))
			}
		}
	})
}

// mulSubRef is the naive ijk oracle for MulSub, mirroring MulAddRef.
func mulSubRef(c, a, b *Block) {
	q := c.Q
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			s := c.Data[i*q+j]
			for k := 0; k < q; k++ {
				s -= a.Data[i*q+k] * b.Data[k*q+j]
			}
			c.Data[i*q+j] = s
		}
	}
}

// TestMulSubMatchesNaive pins the dispatched MulSub to the oracle bitwise on
// the edges MulAdd's sibling test sweeps (the dense-path rewrite dropped the
// old aik==0 skip branch; results must not move at all).
func TestMulSubMatchesNaive(t *testing.T) {
	for _, q := range []int{1, 2, 3, 8, 17, 32, 80} {
		a := fuzzBlock(q, []byte{0x13, 0x57, 0x9b, 0xdf, 0x24, 0x68, 0xac}, 0)
		b := fuzzBlock(q, []byte{0x31, 0x41, 0x59, 0x26, 0x53, 0x58, 0x97, 0x93}, 1)
		c1 := fuzzBlock(q, []byte{0x27, 0x18, 0x28, 0x18, 0x28, 0x45}, 2)
		c2 := c1.Clone()
		MulSub(c1, a, b)
		mulSubRef(c2, a, b)
		for i := range c1.Data {
			if math.Float64bits(c1.Data[i]) != math.Float64bits(c2.Data[i]) {
				t.Fatalf("q=%d: MulSub deviates from oracle at element %d", q, i)
			}
		}
	}
}
