// Package matrix implements the blocked dense-matrix substrate used by the
// matrix-product schedulers: square q×q blocks (the atomic unit the paper
// manipulates, chosen to harness Level-3 BLAS routines), block matrices
// partitioned into stripes of such blocks, and the multiply-add kernel
// C ← C + A·B that stands in for dgemm.
//
// Everything is pure Go. The kernel is written so that real-execution paths
// (internal/engine, internal/cluster) perform genuine floating-point work with
// the same q³ operation count per block update that the paper's model charges
// as one w_i time unit.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// DefaultQ is the default block edge. The paper uses q = 80 or 100 "on most
// platforms"; 80 keeps a block (80×80 float64 = 51.2 KB) comfortably inside
// L2 caches.
const DefaultQ = 80

// Block is a dense square q×q tile stored row-major. Block is the atomic
// element exchanged between master and workers: the platform model charges
// c_i time units to move one block and w_i to apply one block update.
type Block struct {
	Q    int
	Data []float64 // len Q*Q, row-major
}

// NewBlock returns a zeroed q×q block.
func NewBlock(q int) *Block {
	return &Block{Q: q, Data: make([]float64, q*q)}
}

// At returns element (i, j).
func (b *Block) At(i, j int) float64 { return b.Data[i*b.Q+j] }

// Set assigns element (i, j).
func (b *Block) Set(i, j int, v float64) { b.Data[i*b.Q+j] = v }

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := NewBlock(b.Q)
	copy(nb.Data, b.Data)
	return nb
}

// Zero clears the block in place.
func (b *Block) Zero() {
	for i := range b.Data {
		b.Data[i] = 0
	}
}

// FillRandom fills the block with uniform values in [-1, 1) from rng.
func (b *Block) FillRandom(rng *rand.Rand) {
	for i := range b.Data {
		b.Data[i] = 2*rng.Float64() - 1
	}
}

// Equal reports whether two blocks agree elementwise within tol.
func (b *Block) Equal(o *Block, tol float64) bool {
	if o == nil || b.Q != o.Q {
		return false
	}
	for i := range b.Data {
		if d := b.Data[i] - o.Data[i]; d > tol || d < -tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// blocks. It panics if shapes differ.
func (b *Block) MaxAbsDiff(o *Block) float64 {
	if b.Q != o.Q {
		panic(fmt.Sprintf("matrix: MaxAbsDiff shape mismatch %d vs %d", b.Q, o.Q))
	}
	m := 0.0
	for i := range b.Data {
		m = math.Max(m, math.Abs(b.Data[i]-o.Data[i]))
	}
	return m
}

// MulAdd performs the block update c ← c + a·b. This is the q³ kernel the
// model charges as one block update (w_i time units on worker i).
//
// The loop nest is ikj so the inner loop streams rows of b and c with unit
// stride; a[i,k] is hoisted into a register. The inner loop is unrolled
// 4-wide, which keeps four independent multiply-add chains in flight;
// per-element accumulation order is unchanged (each c element still receives
// its k-contributions in ascending k), so results stay bitwise-identical to
// the rolled loop. An earlier version skipped k when a[i,k] == 0; on the
// dense random blocks of the engine's steady state the branch is never taken
// and only costs. Measured on a 2.10 GHz Xeon, q=80, zero-free data:
// 426µs/op rolled with the branch, 394µs/op rolled without it, ~255µs/op
// unrolled with the bounds checks eliminated (~40% faster end to end);
// 0 allocs/op throughout. (The previous benchmark data contained 14% exact
// zeros, which flattered the branch.)
func MulAdd(c, a, b *Block) {
	if c.Q != a.Q || c.Q != b.Q {
		panic(fmt.Sprintf("matrix: MulAdd shape mismatch c=%d a=%d b=%d", c.Q, a.Q, b.Q))
	}
	q := c.Q
	for i := 0; i < q; i++ {
		ci := c.Data[i*q : (i+1)*q]
		ai := a.Data[i*q : (i+1)*q]
		for k := 0; k < q; k++ {
			aik := ai[k]
			// Re-slicing to len(ci) tells the compiler both rows share one
			// length, eliminating the ci bounds checks in the unrolled body.
			bk := b.Data[k*q : (k+1)*q][:len(ci)]
			j := 0
			for ; j+4 <= len(bk); j += 4 {
				ci[j] += aik * bk[j]
				ci[j+1] += aik * bk[j+1]
				ci[j+2] += aik * bk[j+2]
				ci[j+3] += aik * bk[j+3]
			}
			for ; j < len(bk); j++ {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// MulSub performs the block update c ← c − a·b, the trailing-update kernel of
// blocked LU factorization. Same loop nest as MulAdd.
func MulSub(c, a, b *Block) {
	if c.Q != a.Q || c.Q != b.Q {
		panic(fmt.Sprintf("matrix: MulSub shape mismatch c=%d a=%d b=%d", c.Q, a.Q, b.Q))
	}
	q := c.Q
	for i := 0; i < q; i++ {
		ci := c.Data[i*q : (i+1)*q]
		ai := a.Data[i*q : (i+1)*q]
		for k := 0; k < q; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			bk := b.Data[k*q : (k+1)*q]
			for j := range ci {
				ci[j] -= aik * bk[j]
			}
		}
	}
}

// MulAddRef is a deliberately naive ijk triple loop used as an independent
// oracle for MulAdd in tests.
func MulAddRef(c, a, b *Block) {
	q := c.Q
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			s := c.Data[i*q+j]
			for k := 0; k < q; k++ {
				s += a.Data[i*q+k] * b.Data[k*q+j]
			}
			c.Data[i*q+j] = s
		}
	}
}

// ErrShape reports incompatible matrix shapes.
var ErrShape = errors.New("matrix: incompatible shapes")
