// Package matrix implements the blocked dense-matrix substrate used by the
// matrix-product schedulers: square q×q blocks (the atomic unit the paper
// manipulates, chosen to harness Level-3 BLAS routines), block matrices
// partitioned into stripes of such blocks, and the multiply-add kernel
// C ← C + A·B that stands in for dgemm.
//
// The block-update kernels MulAdd and MulSub delegate to internal/kernel,
// which selects the fastest implementation for the host CPU at startup
// (register-blocked pure Go everywhere, AVX2 assembly on capable amd64) while
// guaranteeing bitwise-identical results across implementations. Real
// execution paths (internal/engine, internal/cluster) therefore perform
// genuine floating-point work with the same q³ operation count per block
// update that the paper's model charges as one w_i time unit.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
)

// DefaultQ is the default block edge. The paper uses q = 80 or 100 "on most
// platforms"; 80 keeps a block (80×80 float64 = 51.2 KB) comfortably inside
// L2 caches.
const DefaultQ = 80

// Block is a dense square q×q tile stored row-major. Block is the atomic
// element exchanged between master and workers: the platform model charges
// c_i time units to move one block and w_i to apply one block update.
type Block struct {
	Q    int
	Data []float64 // len Q*Q, row-major
}

// NewBlock returns a zeroed q×q block.
func NewBlock(q int) *Block {
	return &Block{Q: q, Data: make([]float64, q*q)}
}

// At returns element (i, j).
func (b *Block) At(i, j int) float64 { return b.Data[i*b.Q+j] }

// Set assigns element (i, j).
func (b *Block) Set(i, j int, v float64) { b.Data[i*b.Q+j] = v }

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := NewBlock(b.Q)
	copy(nb.Data, b.Data)
	return nb
}

// Zero clears the block in place.
func (b *Block) Zero() {
	clear(b.Data)
}

// FillRandom fills the block with uniform values in [-1, 1) from rng.
func (b *Block) FillRandom(rng *rand.Rand) {
	for i := range b.Data {
		b.Data[i] = 2*rng.Float64() - 1
	}
}

// Equal reports whether two blocks agree elementwise within tol.
func (b *Block) Equal(o *Block, tol float64) bool {
	if o == nil || b.Q != o.Q {
		return false
	}
	// Re-slicing od to len(x) eliminates the second bounds check so the loop
	// vectorizes down to compare-and-branch per lane pair.
	x := b.Data
	od := o.Data[:len(x)]
	for i := range x {
		if d := x[i] - od[i]; d > tol || d < -tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// blocks. It panics if shapes differ.
func (b *Block) MaxAbsDiff(o *Block) float64 {
	if b.Q != o.Q {
		panic(fmt.Sprintf("matrix: MaxAbsDiff shape mismatch %d vs %d", b.Q, o.Q))
	}
	// Compare-and-assign instead of math.Max: Max is a call with ±0/NaN
	// semantics this reduction does not need, and Abs is an intrinsic.
	x := b.Data
	od := o.Data[:len(x)]
	m := 0.0
	for i := range x {
		if d := math.Abs(x[i] - od[i]); d > m {
			m = d
		}
	}
	return m
}

// MulAdd performs the block update c ← c + a·b. This is the q³ kernel the
// model charges as one block update (w_i time units on worker i).
//
// The work is delegated to the kernel implementation internal/kernel selected
// for the host CPU at startup (overridable with MATMUL_KERNEL). All kernels
// apply the identical per-element operation sequence — contributions in
// ascending k, one unfused multiply then one add — so the result is bitwise
// independent of which kernel, and therefore which worker machine, applied
// the update.
func MulAdd(c, a, b *Block) {
	if c.Q != a.Q || c.Q != b.Q {
		panic(fmt.Sprintf("matrix: MulAdd shape mismatch c=%d a=%d b=%d", c.Q, a.Q, b.Q))
	}
	kernel.MulAdd(c.Data, a.Data, b.Data, c.Q)
}

// MulSub performs the block update c ← c − a·b, the trailing-update kernel of
// blocked LU factorization. Same kernel dispatch as MulAdd. (An earlier
// version open-coded a rolled ikj loop that skipped k when a[i,k] == 0; on
// the dense random blocks of the engine's steady state the branch is never
// taken and only costs, so the kernels drop it.)
func MulSub(c, a, b *Block) {
	if c.Q != a.Q || c.Q != b.Q {
		panic(fmt.Sprintf("matrix: MulSub shape mismatch c=%d a=%d b=%d", c.Q, a.Q, b.Q))
	}
	kernel.MulSub(c.Data, a.Data, b.Data, c.Q)
}

// MulAddRef is a deliberately naive ijk triple loop used as an independent
// oracle for MulAdd in tests.
func MulAddRef(c, a, b *Block) {
	q := c.Q
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			s := c.Data[i*q+j]
			for k := 0; k < q; k++ {
				s += a.Data[i*q+k] * b.Data[k*q+j]
			}
			c.Data[i*q+j] = s
		}
	}
}

// ErrShape reports incompatible matrix shapes.
var ErrShape = errors.New("matrix: incompatible shapes")
