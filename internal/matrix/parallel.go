package matrix

import (
	"runtime"
	"sync"
)

// ParallelMultiply computes C ← C + A·B using up to workers goroutines, each
// owning a disjoint set of C blocks (so no synchronization is needed on the
// output). workers ≤ 0 selects GOMAXPROCS.
//
// This is the shared-memory baseline kernel: it gives the repository a fast
// local dgemm substitute and is used by tests to cross-check the distributed
// engines on larger inputs.
func ParallelMultiply(c, a, b *BlockMatrix, workers int) error {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows || a.Q != b.Q || a.Q != c.Q {
		return ErrShape
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := c.Rows * c.Cols
	if workers > total {
		workers = total
	}
	// Materialize all referenced blocks up front: goroutines must not race on
	// lazy allocation inside the shared A and B grids.
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			c.Block(i, j)
		}
	}
	var wg sync.WaitGroup
	next := make(chan int, total)
	for ij := 0; ij < total; ij++ {
		next <- ij
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ij := range next {
				i, j := ij/c.Cols, ij%c.Cols
				cij := c.PeekBlock(i, j)
				for k := 0; k < a.Cols; k++ {
					ab, bb := a.PeekBlock(i, k), b.PeekBlock(k, j)
					if ab == nil || bb == nil {
						continue
					}
					MulAdd(cij, ab, bb)
				}
			}
		}()
	}
	wg.Wait()
	return nil
}
