package matrix

import "sync"

// BlockPool recycles Blocks to keep steady-state execution off the
// allocator: a q×q float64 block is ~51 KB at the default q=80, and the real
// runtimes move thousands of them per run — one per installment panel, per
// chunk clone, per codec read. The pool keeps one sync.Pool per block edge,
// created on first use, so mixed-q workloads (tests, LU panels) coexist.
//
// The zero value is ready to use, and all methods are safe for concurrent
// use. A nil *BlockPool is also valid: Get falls back to a fresh allocation
// and Put discards, so pool-threading code needs no nil checks.
type BlockPool struct {
	pools sync.Map // block edge (int) → *sync.Pool of *Block
}

func (p *BlockPool) pool(q int) *sync.Pool {
	if v, ok := p.pools.Load(q); ok {
		return v.(*sync.Pool)
	}
	v, _ := p.pools.LoadOrStore(q, &sync.Pool{New: func() any { return NewBlock(q) }})
	return v.(*sync.Pool)
}

// Get returns a q×q block. Its contents are arbitrary (stale data from a
// previous user); callers that do not overwrite every element should call
// Zero first.
func (p *BlockPool) Get(q int) *Block {
	if p == nil {
		return NewBlock(q)
	}
	return p.pool(q).Get().(*Block)
}

// Put recycles b for a future Get of the same edge. The caller must hold no
// other reference to b; nil is ignored.
func (p *BlockPool) Put(b *Block) {
	if p == nil || b == nil {
		return
	}
	p.pool(b.Q).Put(b)
}

// PutAll recycles every non-nil block in the list.
func (p *BlockPool) PutAll(blocks []*Block) {
	if p == nil {
		return
	}
	for _, b := range blocks {
		p.Put(b)
	}
}
