package matrix

import "fmt"

// Chunk identifies a rectangular region of C blocks assigned to one worker:
// rows [Row0, Row0+H) × cols [Col0, Col0+W) of the block grid. In the paper a
// chunk is the μ_i×μ_i square a worker loads per outer-loop iteration; edge
// chunks may be smaller when r or s is not divisible by μ_i.
type Chunk struct {
	Row0, Col0 int
	H, W       int
}

// Blocks returns the number of C blocks in the chunk.
func (ch Chunk) Blocks() int { return ch.H * ch.W }

// String renders the chunk as "C[r0:r1,c0:c1)".
func (ch Chunk) String() string {
	return fmt.Sprintf("C[%d:%d,%d:%d)", ch.Row0, ch.Row0+ch.H, ch.Col0, ch.Col0+ch.W)
}

// Valid reports whether the chunk is non-empty and fits in an r×s grid.
func (ch Chunk) Valid(r, s int) bool {
	return ch.H > 0 && ch.W > 0 &&
		ch.Row0 >= 0 && ch.Row0+ch.H <= r &&
		ch.Col0 >= 0 && ch.Col0+ch.W <= s
}

// Overlaps reports whether two chunks share any C block.
func (ch Chunk) Overlaps(o Chunk) bool {
	return ch.Row0 < o.Row0+o.H && o.Row0 < ch.Row0+ch.H &&
		ch.Col0 < o.Col0+o.W && o.Col0 < ch.Col0+ch.W
}

// SquareChunks tiles an r×s block grid with mu×mu chunks column-group by
// column-group (the paper's allocation walks down block columns). Edge chunks
// are clipped. The resulting chunks partition the grid exactly.
func SquareChunks(r, s, mu int) []Chunk {
	if mu <= 0 {
		panic(fmt.Sprintf("matrix: SquareChunks with mu=%d", mu))
	}
	var out []Chunk
	for c0 := 0; c0 < s; c0 += mu {
		w := min(mu, s-c0)
		for r0 := 0; r0 < r; r0 += mu {
			out = append(out, Chunk{Row0: r0, Col0: c0, H: min(mu, r-r0), W: w})
		}
	}
	return out
}

// ColumnGroups splits s block columns into groups of width mu (last group may
// be narrower), returning the starting column of each group.
func ColumnGroups(s, mu int) []int {
	var starts []int
	for c0 := 0; c0 < s; c0 += mu {
		starts = append(starts, c0)
	}
	return starts
}

// CoverExactly reports whether chunks tile the r×s grid with no gap and no
// overlap. Used by scheduler invariant tests.
func CoverExactly(chunks []Chunk, r, s int) bool {
	covered := make([]bool, r*s)
	total := 0
	for _, ch := range chunks {
		if !ch.Valid(r, s) {
			return false
		}
		for i := ch.Row0; i < ch.Row0+ch.H; i++ {
			for j := ch.Col0; j < ch.Col0+ch.W; j++ {
				if covered[i*s+j] {
					return false
				}
				covered[i*s+j] = true
				total++
			}
		}
	}
	return total == r*s
}
