package matrix

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, q := range []int{1, 2, 16, 80} {
		b := NewBlock(q)
		b.FillRandom(rng)
		var buf bytes.Buffer
		if err := WriteBlock(&buf, b); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != BlockWireSize(q) {
			t.Errorf("q=%d: wire size %d, want %d", q, buf.Len(), BlockWireSize(q))
		}
		got, err := ReadBlock(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !b.Equal(got, 0) {
			t.Errorf("q=%d: round trip altered block", q)
		}
	}
}

func TestReadBlockBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	if _, err := ReadBlock(buf); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestReadBlockTruncated(t *testing.T) {
	b := NewBlock(4)
	var buf bytes.Buffer
	if err := WriteBlock(&buf, b); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewBuffer(buf.Bytes()[:buf.Len()-5])
	if _, err := ReadBlock(trunc); err == nil {
		t.Fatal("expected error on truncated payload")
	}
}

func TestBlocksListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 7} {
		blocks := make([]*Block, n)
		for i := range blocks {
			blocks[i] = NewBlock(5)
			blocks[i].FillRandom(rng)
		}
		var buf bytes.Buffer
		if err := WriteBlocks(&buf, blocks); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBlocks(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d blocks back", n, len(got))
		}
		for i := range blocks {
			if !blocks[i].Equal(got[i], 0) {
				t.Errorf("n=%d: block %d altered in round trip", n, i)
			}
		}
		if buf.Len() != 0 {
			t.Errorf("n=%d: %d bytes left unread", n, buf.Len())
		}
	}
}

func TestReadBlocksRejectsHugeCount(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadBlocks(buf); err == nil {
		t.Fatal("expected error on implausible block count")
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 1 + rng.Intn(20)
		b := NewBlock(q)
		b.FillRandom(rng)
		var buf bytes.Buffer
		if err := WriteBlock(&buf, b); err != nil {
			return false
		}
		got, err := ReadBlock(&buf)
		return err == nil && b.Equal(got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
