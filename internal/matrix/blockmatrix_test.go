package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockMatrixLazyZero(t *testing.T) {
	m := NewBlockMatrix(3, 4, 5)
	if m.PeekBlock(1, 2) != nil {
		t.Fatal("fresh matrix should hold implicit zero blocks")
	}
	if m.At(14, 19) != 0 {
		t.Fatal("implicit zero block should read as 0")
	}
	m.Set(14, 19, 2.5)
	if m.At(14, 19) != 2.5 {
		t.Fatal("Set/At through block boundary failed")
	}
	if m.PeekBlock(2, 3) == nil {
		t.Fatal("Set should materialize the block")
	}
}

func TestBlockMatrixDims(t *testing.T) {
	m := NewBlockMatrix(3, 4, 8)
	if m.ElemRows() != 24 || m.ElemCols() != 32 {
		t.Fatalf("elem dims = %dx%d, want 24x32", m.ElemRows(), m.ElemCols())
	}
}

func TestBlockMatrixCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewBlockMatrix(2, 2, 4)
	m.FillRandom(rng)
	c := m.Clone()
	if !m.Equal(c, 0) {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 123)
	if m.At(0, 0) == 123 {
		t.Fatal("clone aliases original")
	}
}

func TestBlockMatrixEqualWithImplicitZeros(t *testing.T) {
	a := NewBlockMatrix(2, 2, 3)
	b := NewBlockMatrix(2, 2, 3)
	b.Block(1, 1) // materialize an explicit zero block on one side only
	if !a.Equal(b, 0) {
		t.Fatal("implicit and explicit zero blocks should compare equal")
	}
	b.Set(5, 5, 1)
	if a.Equal(b, 0.5) {
		t.Fatal("differing matrices reported equal")
	}
}

func TestMultiplySmallKnown(t *testing.T) {
	// 2x2 blocks of q=1 reduce block multiply to scalar multiply:
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := NewBlockMatrix(2, 2, 1)
	b := NewBlockMatrix(2, 2, 1)
	vals := [][]float64{{1, 2}, {3, 4}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			a.Set(i, j, vals[i][j])
			b.Set(i, j, vals[i][j]+4)
		}
	}
	c := NewBlockMatrix(2, 2, 1)
	if err := Multiply(c, a, b); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMultiplyShapeError(t *testing.T) {
	c := NewBlockMatrix(2, 2, 2)
	a := NewBlockMatrix(2, 3, 2)
	b := NewBlockMatrix(4, 2, 2) // inner dim mismatch
	if err := Multiply(c, a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMultiplyAccumulatesIntoC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewBlockMatrix(2, 3, 4)
	b := NewBlockMatrix(3, 2, 4)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c := NewBlockMatrix(2, 2, 4)
	c.FillRandom(rng)
	orig := c.Clone()
	prod := NewBlockMatrix(2, 2, 4)
	if err := Multiply(prod, a, b); err != nil {
		t.Fatal(err)
	}
	if err := Multiply(c, a, b); err != nil {
		t.Fatal(err)
	}
	// c should equal orig + prod elementwise.
	for ei := 0; ei < c.ElemRows(); ei++ {
		for ej := 0; ej < c.ElemCols(); ej++ {
			want := orig.At(ei, ej) + prod.At(ei, ej)
			if diff := c.At(ei, ej) - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("C += AB violated at (%d,%d)", ei, ej)
			}
		}
	}
}

func TestParallelMultiplyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, w := range []int{1, 2, 4, 0} {
		a := NewBlockMatrix(4, 6, 5)
		b := NewBlockMatrix(6, 3, 5)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c1 := NewBlockMatrix(4, 3, 5)
		c2 := NewBlockMatrix(4, 3, 5)
		if err := Multiply(c1, a, b); err != nil {
			t.Fatal(err)
		}
		if err := ParallelMultiply(c2, a, b, w); err != nil {
			t.Fatal(err)
		}
		if d := c1.MaxAbsDiff(c2); d > 1e-12 {
			t.Errorf("workers=%d: parallel deviates by %g", w, d)
		}
	}
}

func TestParallelMultiplyShapeError(t *testing.T) {
	if err := ParallelMultiply(NewBlockMatrix(1, 1, 2), NewBlockMatrix(1, 2, 2), NewBlockMatrix(3, 1, 2), 2); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: block-partitioned multiply equals dense scalar multiply.
func TestMultiplyAgainstScalarOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 1 + rng.Intn(4)
		r, tt, s := 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3)
		a := NewBlockMatrix(r, tt, q)
		b := NewBlockMatrix(tt, s, q)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c := NewBlockMatrix(r, s, q)
		if err := Multiply(c, a, b); err != nil {
			return false
		}
		for ei := 0; ei < c.ElemRows(); ei++ {
			for ej := 0; ej < c.ElemCols(); ej++ {
				var want float64
				for ek := 0; ek < a.ElemCols(); ek++ {
					want += a.At(ei, ek) * b.At(ek, ej)
				}
				if d := c.At(ei, ej) - want; d > 1e-10 || d < -1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUpdateCount(t *testing.T) {
	if got := UpdateCount(100, 800, 100); got != 8_000_000 {
		t.Fatalf("UpdateCount = %d, want 8000000", got)
	}
}
