package matrix

import (
	"fmt"
	"math/rand"
)

// BlockMatrix is a dense matrix partitioned into an R×C grid of q×q blocks,
// the decomposition of Figure 1 in the paper: A is r×t blocks, B is t×s
// blocks, and C is r×s blocks for the product C ← C + A·B.
//
// Blocks are allocated lazily; a nil entry reads as a zero block. This keeps
// large simulated matrices cheap while the real-execution engines materialize
// only the blocks they touch.
type BlockMatrix struct {
	Rows, Cols int // grid dimensions, in blocks
	Q          int // block edge
	blocks     []*Block
}

// NewBlockMatrix returns an all-zero rows×cols block matrix with block edge q.
func NewBlockMatrix(rows, cols, q int) *BlockMatrix {
	if rows <= 0 || cols <= 0 || q <= 0 {
		panic(fmt.Sprintf("matrix: NewBlockMatrix(%d, %d, %d): dimensions must be positive", rows, cols, q))
	}
	return &BlockMatrix{Rows: rows, Cols: cols, Q: q, blocks: make([]*Block, rows*cols)}
}

func (m *BlockMatrix) index(i, j int) int {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: block index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return i*m.Cols + j
}

// Block returns block (i, j), materializing it if it is still an implicit
// zero block.
func (m *BlockMatrix) Block(i, j int) *Block {
	idx := m.index(i, j)
	if m.blocks[idx] == nil {
		m.blocks[idx] = NewBlock(m.Q)
	}
	return m.blocks[idx]
}

// PeekBlock returns block (i, j) without materializing; nil means zero.
func (m *BlockMatrix) PeekBlock(i, j int) *Block { return m.blocks[m.index(i, j)] }

// SetBlock stores blk as block (i, j). blk must have edge Q (nil clears).
func (m *BlockMatrix) SetBlock(i, j int, blk *Block) {
	if blk != nil && blk.Q != m.Q {
		panic(fmt.Sprintf("matrix: SetBlock edge %d into matrix with q=%d", blk.Q, m.Q))
	}
	m.blocks[m.index(i, j)] = blk
}

// At returns scalar element (ei, ej) of the underlying dense matrix.
func (m *BlockMatrix) At(ei, ej int) float64 {
	b := m.blocks[m.index(ei/m.Q, ej/m.Q)]
	if b == nil {
		return 0
	}
	return b.At(ei%m.Q, ej%m.Q)
}

// Set assigns scalar element (ei, ej).
func (m *BlockMatrix) Set(ei, ej int, v float64) {
	m.Block(ei/m.Q, ej/m.Q).Set(ei%m.Q, ej%m.Q, v)
}

// ElemRows and ElemCols give the dense (element) dimensions.
func (m *BlockMatrix) ElemRows() int { return m.Rows * m.Q }

// ElemCols gives the dense column count.
func (m *BlockMatrix) ElemCols() int { return m.Cols * m.Q }

// FillRandom fills every block with uniform values in [-1, 1).
func (m *BlockMatrix) FillRandom(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			m.Block(i, j).FillRandom(rng)
		}
	}
}

// Clone deep-copies the matrix, preserving implicit zero blocks.
func (m *BlockMatrix) Clone() *BlockMatrix {
	n := NewBlockMatrix(m.Rows, m.Cols, m.Q)
	for i, b := range m.blocks {
		if b != nil {
			n.blocks[i] = b.Clone()
		}
	}
	return n
}

// normalizePair resolves an entry pair's implicit zeros for comparison:
// nil/nil pairs are trivially equal and reported as skip; when exactly one
// side is implicit it is replaced by *zero, materialized lazily (at most one
// shared zero block per comparison, and none for matrices that agree on
// which blocks are implicit).
func normalizePair(a, b *Block, zero **Block, q int) (na, nb *Block, skip bool) {
	if a == nil && b == nil {
		return nil, nil, true
	}
	if a == nil || b == nil {
		if *zero == nil {
			*zero = NewBlock(q)
		}
		if a == nil {
			a = *zero
		} else {
			b = *zero
		}
	}
	return a, b, false
}

// Equal reports elementwise agreement within tol; implicit zeros compare as
// zero blocks (nil/nil pairs are skipped outright, without allocating).
func (m *BlockMatrix) Equal(o *BlockMatrix, tol float64) bool {
	if o == nil || m.Rows != o.Rows || m.Cols != o.Cols || m.Q != o.Q {
		return false
	}
	var zero *Block
	for i := range m.blocks {
		a, b, skip := normalizePair(m.blocks[i], o.blocks[i], &zero, m.Q)
		if skip {
			continue
		}
		if !a.Equal(b, tol) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference. As in
// Equal, nil/nil pairs contribute zero and are skipped without allocating.
func (m *BlockMatrix) MaxAbsDiff(o *BlockMatrix) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.Q != o.Q {
		panic("matrix: MaxAbsDiff shape mismatch")
	}
	var zero *Block
	worst := 0.0
	for i := range m.blocks {
		a, b, skip := normalizePair(m.blocks[i], o.blocks[i], &zero, m.Q)
		if skip {
			continue
		}
		if d := a.MaxAbsDiff(b); d > worst {
			worst = d
		}
	}
	return worst
}

// Multiply computes C ← C + A·B at block granularity, sequentially. A must be
// r×t, B t×s, C r×s with matching q. It is the single-machine oracle against
// which every distributed execution is checked.
func Multiply(c, a, b *BlockMatrix) error {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows || a.Q != b.Q || a.Q != c.Q {
		return fmt.Errorf("%w: C %dx%d, A %dx%d, B %dx%d (q %d/%d/%d)",
			ErrShape, c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols, c.Q, a.Q, b.Q)
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			cij := c.Block(i, j)
			for k := 0; k < a.Cols; k++ {
				ab, bb := a.PeekBlock(i, k), b.PeekBlock(k, j)
				if ab == nil || bb == nil {
					continue // zero block contributes nothing
				}
				MulAdd(cij, ab, bb)
			}
		}
	}
	return nil
}

// UpdateCount returns the number of block updates (q³-flop units) a full
// product over these shapes performs: r·s·t.
func UpdateCount(r, s, t int) int64 { return int64(r) * int64(s) * int64(t) }
