package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquareChunksExactTiling(t *testing.T) {
	cases := []struct{ r, s, mu int }{
		{4, 4, 2}, {5, 7, 3}, {1, 1, 1}, {10, 3, 4}, {100, 800, 23},
	}
	for _, c := range cases {
		chunks := SquareChunks(c.r, c.s, c.mu)
		if !CoverExactly(chunks, c.r, c.s) {
			t.Errorf("SquareChunks(%d,%d,%d) does not tile exactly", c.r, c.s, c.mu)
		}
		for _, ch := range chunks {
			if ch.H > c.mu || ch.W > c.mu {
				t.Errorf("chunk %v exceeds mu=%d", ch, c.mu)
			}
		}
	}
}

func TestSquareChunksProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, s, mu := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(10)
		return CoverExactly(SquareChunks(r, s, mu), r, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChunkOverlaps(t *testing.T) {
	a := Chunk{Row0: 0, Col0: 0, H: 2, W: 2}
	b := Chunk{Row0: 1, Col0: 1, H: 2, W: 2}
	c := Chunk{Row0: 2, Col0: 0, H: 1, W: 4}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("expected a/b overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c are disjoint")
	}
}

func TestChunkValid(t *testing.T) {
	if (Chunk{Row0: 0, Col0: 0, H: 0, W: 1}).Valid(4, 4) {
		t.Error("empty chunk reported valid")
	}
	if (Chunk{Row0: 3, Col0: 3, H: 2, W: 1}).Valid(4, 4) {
		t.Error("out-of-range chunk reported valid")
	}
	if !(Chunk{Row0: 3, Col0: 3, H: 1, W: 1}).Valid(4, 4) {
		t.Error("corner chunk reported invalid")
	}
}

func TestCoverExactlyDetectsGapAndOverlap(t *testing.T) {
	gap := []Chunk{{0, 0, 1, 1}} // misses (0,1) in 1x2 grid
	if CoverExactly(gap, 1, 2) {
		t.Error("gap not detected")
	}
	overlap := []Chunk{{0, 0, 1, 2}, {0, 1, 1, 1}}
	if CoverExactly(overlap, 1, 2) {
		t.Error("overlap not detected")
	}
}

func TestColumnGroups(t *testing.T) {
	got := ColumnGroups(10, 4)
	want := []int{0, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ColumnGroups(10,4) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColumnGroups(10,4) = %v, want %v", got, want)
		}
	}
}

func TestChunkString(t *testing.T) {
	s := Chunk{Row0: 1, Col0: 2, H: 3, W: 4}.String()
	if s != "C[1:4,2:6)" {
		t.Errorf("String() = %q", s)
	}
}
