package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBlockZeroed(t *testing.T) {
	b := NewBlock(7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if b.At(i, j) != 0 {
				t.Fatalf("fresh block not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestBlockSetAt(t *testing.T) {
	b := NewBlock(4)
	b.Set(2, 3, 1.5)
	b.Set(0, 0, -2)
	if got := b.At(2, 3); got != 1.5 {
		t.Errorf("At(2,3) = %v, want 1.5", got)
	}
	if got := b.At(0, 0); got != -2 {
		t.Errorf("At(0,0) = %v, want -2", got)
	}
	if got := b.At(3, 2); got != 0 {
		t.Errorf("At(3,2) = %v, want 0", got)
	}
}

func TestBlockClone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBlock(5)
	b.FillRandom(rng)
	c := b.Clone()
	if !b.Equal(c, 0) {
		t.Fatal("clone differs from original")
	}
	c.Set(0, 0, 99)
	if b.At(0, 0) == 99 {
		t.Fatal("clone aliases original storage")
	}
}

func TestBlockZero(t *testing.T) {
	b := NewBlock(3)
	b.Set(1, 1, 4)
	b.Zero()
	if !b.Equal(NewBlock(3), 0) {
		t.Fatal("Zero did not clear block")
	}
}

func TestBlockEqualTolerance(t *testing.T) {
	a, b := NewBlock(2), NewBlock(2)
	b.Set(1, 0, 1e-9)
	if !a.Equal(b, 1e-8) {
		t.Error("blocks within tolerance reported unequal")
	}
	if a.Equal(b, 1e-10) {
		t.Error("blocks outside tolerance reported equal")
	}
	if a.Equal(NewBlock(3), 1) {
		t.Error("blocks of different edge reported equal")
	}
	if a.Equal(nil, 1) {
		t.Error("nil block reported equal")
	}
}

func TestMulAddMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range []int{1, 2, 3, 8, 17, 32} {
		a, b := NewBlock(q), NewBlock(q)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c1, c2 := NewBlock(q), NewBlock(q)
		c1.FillRandom(rng)
		copy(c2.Data, c1.Data)
		MulAdd(c1, a, b)
		MulAddRef(c2, a, b)
		if d := c1.MaxAbsDiff(c2); d > 1e-12*float64(q) {
			t.Errorf("q=%d: MulAdd deviates from naive oracle by %g", q, d)
		}
	}
}

func TestMulAddIdentity(t *testing.T) {
	q := 9
	rng := rand.New(rand.NewSource(3))
	id := NewBlock(q)
	for i := 0; i < q; i++ {
		id.Set(i, i, 1)
	}
	b := NewBlock(q)
	b.FillRandom(rng)
	c := NewBlock(q)
	MulAdd(c, id, b) // c = I·b = b
	if !c.Equal(b, 1e-14) {
		t.Fatal("I·B != B")
	}
}

func TestMulAddAccumulates(t *testing.T) {
	q := 6
	rng := rand.New(rand.NewSource(4))
	a, b := NewBlock(q), NewBlock(q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c := NewBlock(q)
	MulAdd(c, a, b)
	once := c.Clone()
	MulAdd(c, a, b) // c = 2·a·b
	for i := range c.Data {
		if math.Abs(c.Data[i]-2*once.Data[i]) > 1e-12 {
			t.Fatalf("second MulAdd did not accumulate at flat index %d", i)
		}
	}
}

func TestMulAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MulAdd(NewBlock(2), NewBlock(3), NewBlock(2))
}

// Property: (A+A')·B = A·B + A'·B accumulated into the same C (bilinearity).
func TestMulAddLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := 1 + r.Intn(12)
		a1, a2, b := NewBlock(q), NewBlock(q), NewBlock(q)
		a1.FillRandom(r)
		a2.FillRandom(r)
		b.FillRandom(r)
		sum := NewBlock(q)
		for i := range sum.Data {
			sum.Data[i] = a1.Data[i] + a2.Data[i]
		}
		c1 := NewBlock(q)
		MulAdd(c1, sum, b)
		c2 := NewBlock(q)
		MulAdd(c2, a1, b)
		MulAdd(c2, a2, b)
		return c1.Equal(c2, 1e-10)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
