package matrix

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary block framing used by the TCP cluster runtime: a fixed header
// (magic, q) followed by q² little-endian float64 values. gob would work but
// costs ~3× in encode time for large numeric slices; the schedulers move many
// thousands of 51 KB blocks, so the wire format matters.

const blockMagic = 0x424c4b31 // "BLK1"

// BlockCodec serializes and deserializes framed blocks through a reusable
// scratch buffer, optionally drawing decoded blocks from a BlockPool. A
// plain WriteBlock/ReadBlock call allocates a staging buffer the size of the
// block payload (~51 KB at q=80) every time; a long-lived codec per
// connection reuses one buffer and, with a pool, reuses the blocks
// themselves, so a steady-state transfer loop performs no allocation at all.
//
// A BlockCodec is not safe for concurrent use; give each goroutine (or each
// connection direction) its own.
type BlockCodec struct {
	// Pool, when non-nil, supplies the blocks ReadBlock decodes into. The
	// consumer of those blocks decides when (whether) to Put them back.
	Pool *BlockPool
	buf  []byte
}

func (c *BlockCodec) scratch(n int) []byte {
	if cap(c.buf) < n {
		c.buf = make([]byte, n)
	}
	return c.buf[:n]
}

// WriteBlock serializes b to w in the framed binary format.
func (c *BlockCodec) WriteBlock(w io.Writer, b *Block) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], blockMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(b.Q))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("matrix: write block header: %w", err)
	}
	buf := c.scratch(8 * len(b.Data))
	for i, v := range b.Data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("matrix: write block payload: %w", err)
	}
	return nil
}

// ReadBlock deserializes one framed block from r. With a Pool set, the
// returned block is recycled rather than freshly allocated; every element is
// overwritten, so stale pool contents never leak through.
func (c *BlockCodec) ReadBlock(r io.Reader) (*Block, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("matrix: read block header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != blockMagic {
		return nil, fmt.Errorf("matrix: bad block magic %#x", m)
	}
	q := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if q <= 0 || q > 1<<14 {
		return nil, fmt.Errorf("matrix: implausible block edge %d", q)
	}
	b := c.Pool.Get(q)
	buf := c.scratch(8 * len(b.Data))
	if _, err := io.ReadFull(r, buf); err != nil {
		c.Pool.Put(b)
		return nil, fmt.Errorf("matrix: read block payload: %w", err)
	}
	for i := range b.Data {
		b.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return b, nil
}

// WriteBlocks serializes a block list as a count followed by each block.
func (c *BlockCodec) WriteBlocks(w io.Writer, blocks []*Block) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(blocks)))
	if _, err := w.Write(cnt[:]); err != nil {
		return fmt.Errorf("matrix: write block count: %w", err)
	}
	for _, b := range blocks {
		if err := c.WriteBlock(w, b); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocks deserializes a block list written by WriteBlocks.
func (c *BlockCodec) ReadBlocks(r io.Reader) ([]*Block, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("matrix: read block count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	if n > maxBlockList {
		return nil, fmt.Errorf("matrix: implausible block count %d", n)
	}
	// Grow the list as blocks actually arrive rather than trusting the
	// count prefix with an up-front allocation: a hostile header then costs
	// only what it ships.
	var blocks []*Block
	for i := 0; i < n; i++ {
		b, err := c.ReadBlock(r)
		if err != nil {
			c.Pool.PutAll(blocks)
			return nil, err
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}

// WriteBlock serializes b to w in the framed binary format with a one-shot
// codec (allocates a staging buffer; hot paths should hold a BlockCodec).
func WriteBlock(w io.Writer, b *Block) error {
	return (&BlockCodec{}).WriteBlock(w, b)
}

// ReadBlock deserializes one framed block from r with a one-shot codec.
func ReadBlock(r io.Reader) (*Block, error) {
	return (&BlockCodec{}).ReadBlock(r)
}

// BlockWireSize returns the framed size in bytes of a q×q block, used by the
// cluster runtime to budget link-rate emulation.
func BlockWireSize(q int) int { return 8 + 8*q*q }

// maxBlockList caps how many blocks one message may carry; the largest real
// payload is a full installment or chunk of a huge instance, far below this.
const maxBlockList = 1 << 22

// WriteBlocks serializes a block list with a one-shot codec. It is the
// payload primitive of the distributed runtime's wire protocol; hot paths
// should hold a BlockCodec instead.
func WriteBlocks(w io.Writer, blocks []*Block) error {
	return (&BlockCodec{}).WriteBlocks(w, blocks)
}

// ReadBlocks deserializes a block list written by WriteBlocks with a
// one-shot codec.
func ReadBlocks(r io.Reader) ([]*Block, error) {
	return (&BlockCodec{}).ReadBlocks(r)
}
