package matrix

import (
	"bytes"
	"testing"
)

func TestBlockPoolRecyclesPerEdge(t *testing.T) {
	var p BlockPool
	b3 := p.Get(3)
	b5 := p.Get(5)
	if b3.Q != 3 || len(b3.Data) != 9 || b5.Q != 5 || len(b5.Data) != 25 {
		t.Fatalf("pool returned wrong shapes: q=%d len=%d, q=%d len=%d", b3.Q, len(b3.Data), b5.Q, len(b5.Data))
	}
	b3.Set(1, 1, 42)
	p.Put(b3)
	again := p.Get(3)
	if again.Q != 3 || len(again.Data) != 9 {
		t.Fatalf("recycled block has q=%d len=%d", again.Q, len(again.Data))
	}
	// Contents are explicitly unspecified after Get; only the shape matters.
	p.Put(again)
	p.Put(b5)
	p.Put(nil) // must not panic
}

func TestNilBlockPoolFallsBack(t *testing.T) {
	var p *BlockPool
	b := p.Get(4)
	if b == nil || b.Q != 4 {
		t.Fatalf("nil pool Get = %v", b)
	}
	p.Put(b)                   // discards silently
	p.PutAll([]*Block{b, nil}) // also silently
}

// TestBlockCodecPooledRoundTrip pushes blocks through an encode/decode cycle
// with a pooled codec and checks values survive despite block reuse.
func TestBlockCodecPooledRoundTrip(t *testing.T) {
	var pool BlockPool
	enc := &BlockCodec{}
	dec := &BlockCodec{Pool: &pool}
	var buf bytes.Buffer
	for round := 0; round < 3; round++ {
		buf.Reset()
		want := NewBlock(6)
		for i := range want.Data {
			want.Data[i] = float64(round*100 + i)
		}
		if err := enc.WriteBlock(&buf, want); err != nil {
			t.Fatal(err)
		}
		got, err := dec.ReadBlock(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("round %d: decoded block differs", round)
		}
		pool.Put(got) // next round decodes into this same block
	}
}

// TestBlockCodecReadSteadyStateAllocs checks the pooled decode path stays
// off the allocator once warm — the zero-alloc block path of the runtime's
// receive loops.
func TestBlockCodecReadSteadyStateAllocs(t *testing.T) {
	var pool BlockPool
	enc := &BlockCodec{}
	dec := &BlockCodec{Pool: &pool}
	src := NewBlock(16)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	var frame bytes.Buffer
	if err := enc.WriteBlock(&frame, src); err != nil {
		t.Fatal(err)
	}
	data := frame.Bytes()
	// Warm the pool and the codec scratch buffer.
	rd := bytes.NewReader(data)
	b, err := dec.ReadBlock(rd)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(b)
	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(data)
		b, err := dec.ReadBlock(rd)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(b)
	})
	if allocs > 1 {
		t.Errorf("pooled ReadBlock allocates %.1f objects/op in steady state, want ≤1", allocs)
	}
}
