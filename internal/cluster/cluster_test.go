package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
)

// startCluster brings up a master and n in-process workers over localhost.
func startCluster(t *testing.T, n int) (*Master, *sync.WaitGroup) {
	t.Helper()
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		name := string(rune('A' + i))
		go func() {
			defer wg.Done()
			if err := Serve(m.Addr(), name); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}
	if err := m.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return m, &wg
}

func TestClusterComputesCorrectProduct(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 2, W: 1.5, M: 24},
		platform.Worker{C: 1.5, W: 2, M: 60},
	)
	inst := sched.Instance{R: 6, S: 10, T: 4}
	for _, s := range []sched.Scheduler{sched.Het{}, sched.ODDOML{}, sched.BMM{}} {
		res, err := s.Schedule(pl, inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		m, wg := startCluster(t, pl.P())
		rng := rand.New(rand.NewSource(21))
		q := 3
		a := matrix.NewBlockMatrix(inst.R, inst.T, q)
		b := matrix.NewBlockMatrix(inst.T, inst.S, q)
		c := matrix.NewBlockMatrix(inst.R, inst.S, q)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c.FillRandom(rng)
		want := c.Clone()
		if err := matrix.Multiply(want, a, b); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(res.Plan(), inst.T, a, b, c); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := m.Shutdown(); err != nil {
			t.Errorf("%s: shutdown: %v", s.Name(), err)
		}
		wg.Wait()
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("%s: cluster result deviates by %g", s.Name(), d)
		}
	}
}

func TestClusterWorkerNames(t *testing.T) {
	m, wg := startCluster(t, 2)
	names := m.Workers()
	if len(names) != 2 {
		t.Fatalf("workers = %v", names)
	}
	if err := m.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestWaitForWorkersTimeout(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.ln.Close()
	if err := m.WaitForWorkers(1, 50*time.Millisecond); err == nil {
		t.Fatal("expected timeout waiting for workers")
	}
}

func TestServeBadAddress(t *testing.T) {
	if err := Serve("127.0.0.1:1", "w"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestRunRejectsUnknownWorker(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 1, W: 1, M: 40},
	)
	inst := sched.Instance{R: 8, S: 16, T: 2}
	res, err := sched.ODDOML{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Enrolled) != 2 {
		t.Fatalf("expected both workers enrolled, got %v", res.Enrolled)
	}
	m, wg := startCluster(t, 1) // one worker short
	defer wg.Wait()
	defer m.Shutdown()
	q := 2
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	if err := m.Run(res.Plan(), inst.T, a, b, c); err == nil {
		t.Fatal("plan for 2 workers accepted with 1 connected")
	}
}
