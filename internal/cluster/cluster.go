// Package cluster is the distributed runtime: a master and workers on
// separate processes (or machines) exchanging real matrix blocks over TCP
// with encoding/gob framing. It plays the role MPI plays in the paper's
// experiments, with the one-port model arising naturally: the master is a
// single control loop performing one blocking transfer at a time, while each
// worker computes in its own process and the socket buffers provide the
// input double-buffering of the optimized memory layout.
//
// The master executes the same replayable plans (sim.PlanOp) the schedulers
// produce, so any algorithm — Het, ODDOML, BMM, … — can be deployed
// unchanged on a real network.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/trace"
)

// msgKind labels protocol messages.
type msgKind uint8

const (
	msgHello    msgKind = iota + 1 // worker → master: registration
	msgChunk                       // master → worker: C chunk
	msgInstall                     // master → worker: A/B panels
	msgFlush                       // master → worker: return the chunk
	msgResult                      // worker → master: finished chunk
	msgShutdown                    // master → worker: exit
)

// message is the single wire envelope; unused fields stay at their zero
// values (gob encodes them compactly).
type message struct {
	Kind   msgKind
	Name   string       // hello: worker name
	Chunk  matrix.Chunk // chunk / result
	K0, K1 int          // install: inner panel range
	Q      int          // block edge
	Blocks [][]float64  // payload blocks, row-major block data
}

func toPayload(blocks []*matrix.Block) [][]float64 {
	out := make([][]float64, len(blocks))
	for i, b := range blocks {
		out[i] = b.Data
	}
	return out
}

func fromPayload(q int, data [][]float64) ([]*matrix.Block, error) {
	out := make([]*matrix.Block, len(data))
	for i, d := range data {
		if len(d) != q*q {
			return nil, fmt.Errorf("cluster: block %d has %d values, want %d", i, len(d), q*q)
		}
		out[i] = &matrix.Block{Q: q, Data: d}
	}
	return out, nil
}

// Master coordinates a set of connected workers.
type Master struct {
	ln    net.Listener
	conns []net.Conn
	encs  []*gob.Encoder
	decs  []*gob.Decoder
	names []string
}

// NewMaster listens on addr ("host:port", empty port for ephemeral).
func NewMaster(addr string) (*Master, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	return &Master{ln: ln}, nil
}

// Addr returns the listening address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// WaitForWorkers accepts exactly n worker registrations.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for len(m.conns) < n {
		if err := m.ln.(*net.TCPListener).SetDeadline(deadline); err != nil {
			return err
		}
		conn, err := m.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: accept (have %d of %d workers): %w", len(m.conns), n, err)
		}
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		var hello message
		if err := dec.Decode(&hello); err != nil || hello.Kind != msgHello {
			conn.Close()
			return fmt.Errorf("cluster: bad hello from %s: %v", conn.RemoteAddr(), err)
		}
		m.conns = append(m.conns, conn)
		m.encs = append(m.encs, enc)
		m.decs = append(m.decs, dec)
		m.names = append(m.names, hello.Name)
	}
	return nil
}

// Workers returns the names of registered workers in connection order.
func (m *Master) Workers() []string { return append([]string(nil), m.names...) }

// Run executes the plan against the connected workers: C ← C + A·B.
// Worker indices in the plan map to connection order.
func (m *Master) Run(plan []sim.PlanOp, t int, a, b, c *matrix.BlockMatrix) error {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows || a.Cols != t {
		return fmt.Errorf("cluster: shape mismatch")
	}
	for _, op := range plan {
		if op.Worker < 0 || op.Worker >= len(m.conns) {
			return fmt.Errorf("cluster: plan references worker %d but only %d connected", op.Worker, len(m.conns))
		}
		ch := op.Chunk
		switch op.Kind {
		case trace.SendC:
			if !ch.Valid(c.Rows, c.Cols) {
				return fmt.Errorf("cluster: chunk %v outside C", ch)
			}
			blocks := make([]*matrix.Block, 0, ch.Blocks())
			for i := ch.Row0; i < ch.Row0+ch.H; i++ {
				for j := ch.Col0; j < ch.Col0+ch.W; j++ {
					blocks = append(blocks, c.Block(i, j))
				}
			}
			if err := m.encs[op.Worker].Encode(message{Kind: msgChunk, Chunk: ch, Q: c.Q, Blocks: toPayload(blocks)}); err != nil {
				return fmt.Errorf("cluster: send chunk to %s: %w", m.names[op.Worker], err)
			}
		case trace.SendAB:
			if op.K0 < 0 || op.K1 > t || op.K0 >= op.K1 {
				return fmt.Errorf("cluster: panel range [%d,%d) outside t=%d", op.K0, op.K1, t)
			}
			d := op.K1 - op.K0
			payload := make([]*matrix.Block, 0, d*(ch.H+ch.W))
			for i := ch.Row0; i < ch.Row0+ch.H; i++ {
				for k := op.K0; k < op.K1; k++ {
					payload = append(payload, a.Block(i, k))
				}
			}
			for k := op.K0; k < op.K1; k++ {
				for j := ch.Col0; j < ch.Col0+ch.W; j++ {
					payload = append(payload, b.Block(k, j))
				}
			}
			if err := m.encs[op.Worker].Encode(message{Kind: msgInstall, Chunk: ch, K0: op.K0, K1: op.K1, Q: a.Q, Blocks: toPayload(payload)}); err != nil {
				return fmt.Errorf("cluster: send install to %s: %w", m.names[op.Worker], err)
			}
		case trace.RecvC:
			if err := m.encs[op.Worker].Encode(message{Kind: msgFlush}); err != nil {
				return fmt.Errorf("cluster: send flush to %s: %w", m.names[op.Worker], err)
			}
			var res message
			if err := m.decs[op.Worker].Decode(&res); err != nil {
				return fmt.Errorf("cluster: receive result from %s: %w", m.names[op.Worker], err)
			}
			if res.Kind != msgResult || res.Chunk != ch {
				return fmt.Errorf("cluster: %s returned %v, expected chunk %v", m.names[op.Worker], res.Chunk, ch)
			}
			blocks, err := fromPayload(c.Q, res.Blocks)
			if err != nil {
				return err
			}
			if len(blocks) != ch.Blocks() {
				return fmt.Errorf("cluster: result for %v has %d blocks", ch, len(blocks))
			}
			idx := 0
			for i := ch.Row0; i < ch.Row0+ch.H; i++ {
				for j := ch.Col0; j < ch.Col0+ch.W; j++ {
					c.SetBlock(i, j, blocks[idx])
					idx++
				}
			}
		}
	}
	return nil
}

// Shutdown tells every worker to exit and closes all connections.
func (m *Master) Shutdown() error {
	var first error
	for i, enc := range m.encs {
		if err := enc.Encode(message{Kind: msgShutdown}); err != nil && first == nil {
			first = err
		}
		m.conns[i].Close()
	}
	if err := m.ln.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Serve runs a worker: dial the master, register under name, process
// messages until shutdown. It returns nil on a clean shutdown.
func Serve(addr, name string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(message{Kind: msgHello, Name: name}); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	var cur *message // current chunk
	var blocks []*matrix.Block
	for {
		var msg message
		if err := dec.Decode(&msg); err != nil {
			return fmt.Errorf("cluster: worker %s: decode: %w", name, err)
		}
		switch msg.Kind {
		case msgChunk:
			if cur != nil {
				return fmt.Errorf("cluster: worker %s received chunk while holding one", name)
			}
			bs, err := fromPayload(msg.Q, msg.Blocks)
			if err != nil {
				return err
			}
			cur, blocks = &msg, bs
		case msgInstall:
			if cur == nil {
				return fmt.Errorf("cluster: worker %s received inputs with no chunk", name)
			}
			ch := cur.Chunk
			d := msg.K1 - msg.K0
			payload, err := fromPayload(msg.Q, msg.Blocks)
			if err != nil {
				return err
			}
			if len(payload) != d*(ch.H+ch.W) {
				return fmt.Errorf("cluster: worker %s: install payload %d blocks, want %d", name, len(payload), d*(ch.H+ch.W))
			}
			am, bm := payload[:ch.H*d], payload[ch.H*d:]
			for i := 0; i < ch.H; i++ {
				for dk := 0; dk < d; dk++ {
					ab := am[i*d+dk]
					for j := 0; j < ch.W; j++ {
						matrix.MulAdd(blocks[i*ch.W+j], ab, bm[dk*ch.W+j])
					}
				}
			}
		case msgFlush:
			if cur == nil {
				return fmt.Errorf("cluster: worker %s: flush with no chunk", name)
			}
			if err := enc.Encode(message{Kind: msgResult, Chunk: cur.Chunk, Q: cur.Q, Blocks: toPayload(blocks)}); err != nil {
				return fmt.Errorf("cluster: worker %s: send result: %w", name, err)
			}
			cur, blocks = nil, nil
		case msgShutdown:
			return nil
		default:
			return fmt.Errorf("cluster: worker %s: unexpected message kind %d", name, msg.Kind)
		}
	}
}
