package sim

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/trace"
)

// PlanJob is one chunk's complete operation program extracted from a plan:
// the C-chunk delivery, the ordered installment panel ranges, and the final
// chunk retrieval, all addressed to Worker. Jobs are the unit of failover in
// the real runtimes — chunk results only land in C at RecvC, so when a worker
// dies mid-job the whole job can be replayed verbatim on a survivor from the
// master's untouched copy of the chunk.
type PlanJob struct {
	Worker int
	Chunk  matrix.Chunk
	Panels [][2]int // [K0, K1) of each installment, in delivery order
}

// JobsFromPlan groups a plan's ops into per-chunk jobs and validates the
// per-worker protocol: each worker's op stream must be a sequence of
// SendC (SendAB)* RecvC rounds over a consistent chunk. It returns the jobs
// in order of their SendC appearance and opJob, mapping every plan index to
// the index of the job its op belongs to.
func JobsFromPlan(plan []PlanOp) (jobs []PlanJob, opJob []int, err error) {
	opJob = make([]int, len(plan))
	open := map[int]int{} // worker → index of its in-flight job
	for i, op := range plan {
		if op.Worker < 0 {
			return nil, nil, fmt.Errorf("sim: plan op %d references worker %d", i, op.Worker)
		}
		ji, inFlight := open[op.Worker]
		switch op.Kind {
		case trace.SendC:
			if inFlight {
				return nil, nil, fmt.Errorf("sim: plan op %d sends chunk %v to P%d which already holds %v",
					i, op.Chunk, op.Worker+1, jobs[ji].Chunk)
			}
			open[op.Worker] = len(jobs)
			opJob[i] = len(jobs)
			jobs = append(jobs, PlanJob{Worker: op.Worker, Chunk: op.Chunk})
		case trace.SendAB:
			if !inFlight {
				return nil, nil, fmt.Errorf("sim: plan op %d sends inputs to P%d with no chunk in flight", i, op.Worker+1)
			}
			if jobs[ji].Chunk != op.Chunk {
				return nil, nil, fmt.Errorf("sim: plan op %d sends inputs for %v while P%d holds %v",
					i, op.Chunk, op.Worker+1, jobs[ji].Chunk)
			}
			opJob[i] = ji
			jobs[ji].Panels = append(jobs[ji].Panels, [2]int{op.K0, op.K1})
		case trace.RecvC:
			if !inFlight {
				return nil, nil, fmt.Errorf("sim: plan op %d receives from P%d with no chunk in flight", i, op.Worker+1)
			}
			if jobs[ji].Chunk != op.Chunk {
				return nil, nil, fmt.Errorf("sim: plan op %d receives %v while P%d holds %v",
					i, op.Chunk, op.Worker+1, jobs[ji].Chunk)
			}
			opJob[i] = ji
			delete(open, op.Worker)
		default:
			return nil, nil, fmt.Errorf("sim: plan op %d has unknown kind %v", i, op.Kind)
		}
	}
	for w, ji := range open {
		return nil, nil, fmt.Errorf("sim: plan leaves chunk %v in flight on P%d (missing RecvC)", jobs[ji].Chunk, w+1)
	}
	return jobs, opJob, nil
}
