package sim

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// OpRef identifies one operation in a precomputed master program: the K-th
// installment (or C transfer) of the job with sequence number JobSeq.
type OpRef struct {
	Worker int
	Kind   OpKind
	JobSeq int
	K      int
}

// FixedOrder executes a precomputed master program strictly in order, waiting
// whenever the next operation is not yet ready — the rigid structure of the
// homogeneous Algorithm 1, where the master's program is a static loop nest.
type FixedOrder struct {
	Ops    []OpRef
	cursor int
	name   string
}

// NewFixedOrder builds the policy; name labels it in panics and traces.
func NewFixedOrder(name string, ops []OpRef) *FixedOrder {
	return &FixedOrder{Ops: ops, name: name}
}

// Name implements Policy.
func (f *FixedOrder) Name() string { return f.name }

// Choose implements Policy: the unique candidate matching the program's next
// operation. Because the program is a linear extension of every worker's
// per-chunk order, that operation is always some worker's head op.
func (f *FixedOrder) Choose(now float64, cands []Candidate) int {
	if f.cursor >= len(f.Ops) {
		panic(fmt.Sprintf("sim: fixed program %s exhausted after %d ops but %d candidates remain", f.name, len(f.Ops), len(cands)))
	}
	want := f.Ops[f.cursor]
	for i, c := range cands {
		if c.Worker == want.Worker && c.Kind == want.Kind && c.JobSeq == want.JobSeq && (c.Kind != trace.SendAB || c.K == want.K) {
			f.cursor++
			return i
		}
	}
	panic(fmt.Sprintf("sim: fixed program %s op %d (%+v) is not a head operation; scheduler produced an inconsistent order", f.name, f.cursor, want))
}

// Priority is a work-conserving policy: among the operations that can start
// at the earliest achievable instant, serve the one whose job was assigned
// first (lowest Seq). This is the phase-2 execution rule of the
// heterogeneous algorithm: messages follow the selection process, but the
// master never idles while some selected operation is ready.
type Priority struct{ Label string }

// Name implements Policy.
func (p *Priority) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "priority"
}

// Choose implements Policy.
func (p *Priority) Choose(now float64, cands []Candidate) int {
	tmin := math.Inf(1)
	for _, c := range cands {
		if s := math.Max(now, c.Ready); s < tmin {
			tmin = s
		}
	}
	best, bestSeq, bestK := -1, math.MaxInt, 0
	for i, c := range cands {
		if math.Max(now, c.Ready) > tmin+1e-12 {
			continue
		}
		if c.JobSeq < bestSeq || (c.JobSeq == bestSeq && c.K < bestK) {
			best, bestSeq, bestK = i, c.JobSeq, c.K
		}
	}
	return best
}

// DemandDriven feeds the hungriest worker first: among startable operations
// it prefers input installments for the worker whose compute queue drains
// soonest, then result retrievals, then new C chunks. This is the master
// behaviour of ODDOML and BMM ("sends the next block to the first worker
// which can receive it").
type DemandDriven struct{ Label string }

// Name implements Policy.
func (d *DemandDriven) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "demand-driven"
}

// Choose implements Policy.
func (d *DemandDriven) Choose(now float64, cands []Candidate) int {
	tmin := math.Inf(1)
	for _, c := range cands {
		if s := math.Max(now, c.Ready); s < tmin {
			tmin = s
		}
	}
	best := -1
	var bestKey [3]float64
	for i, c := range cands {
		if math.Max(now, c.Ready) > tmin+1e-12 {
			continue
		}
		var class float64
		switch c.Kind {
		case trace.SendAB:
			class = 0
		case trace.RecvC:
			class = 1
		case trace.SendC:
			class = 2
		}
		key := [3]float64{class, c.Ready, float64(c.Worker)}
		if best < 0 || less3(key, bestKey) {
			best, bestKey = i, key
		}
	}
	return best
}

func less3(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
