package sim

import (
	"math"
	"testing"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/trace"
)

func onePortRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleWorkerHandTimeline(t *testing.T) {
	// c = w = 1, one 2×2 chunk, 3 installments of 4 blocks / 4 updates.
	// SendC 0→4; inst0 4→8, compute 8→12; inst1 8→12, compute 12→16;
	// inst2 waits for buffer slot (ceHist[0] = 12): 12→16, compute 16→20;
	// RecvC 20→24.
	pl := platform.Homogeneous(1, 1, 1, 100)
	job := MakeStandardJob(sq(2, 2), 3, 0)
	res := onePortRun(t, Config{
		Platform: pl,
		Source:   NewStatic([][]Job{{job}}),
		Policy:   &Priority{},
		Name:     "hand",
	})
	if math.Abs(res.Makespan-24) > 1e-9 {
		t.Errorf("makespan = %g, want 24", res.Makespan)
	}
	st := res.Trace.Stats()
	if st.CommBlocks != 4+3*4+4 {
		t.Errorf("comm blocks = %d, want 20", st.CommBlocks)
	}
	if st.Updates != 12 {
		t.Errorf("updates = %d, want 12", st.Updates)
	}
	if st.Enrolled != 1 {
		t.Errorf("enrolled = %d, want 1", st.Enrolled)
	}
}

func TestSingleBufferSerializes(t *testing.T) {
	// With MaxBuffered = 1 the worker cannot receive installment k+1 while
	// computing installment k, so the makespan must strictly exceed the
	// double-buffered run on a compute-bound worker.
	pl := platform.Homogeneous(1, 1, 2, 100)
	mk := func() Config {
		return Config{
			Platform: pl,
			Source:   NewStatic([][]Job{{MakeStandardJob(sq(2, 2), 5, 0)}}),
			Policy:   &Priority{},
			Name:     "buf",
		}
	}
	cfg1 := mk()
	cfg1.MaxBuffered = 1
	cfg2 := mk()
	cfg2.MaxBuffered = 2
	r1 := onePortRun(t, cfg1)
	r2 := onePortRun(t, cfg2)
	if r1.Makespan <= r2.Makespan {
		t.Errorf("single-buffer makespan %g should exceed double-buffer %g", r1.Makespan, r2.Makespan)
	}
	// Double-buffered, compute-bound: after the pipeline fills, computes are
	// back-to-back, so makespan ≈ SendC + inst0 + t·compute + RecvC.
	want := 4.0 + 4 + 5*8 + 4
	if math.Abs(r2.Makespan-want) > 1e-9 {
		t.Errorf("double-buffered makespan = %g, want %g", r2.Makespan, want)
	}
}

func TestOnePortNeverOverlaps(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 2, M: 50},
		platform.Worker{C: 3, W: 1, M: 50},
		platform.Worker{C: 2, W: 4, M: 30},
	)
	queues := [][]Job{
		{MakeStandardJob(sq(3, 3), 7, 0), MakeStandardJob(sq(3, 3), 7, 3)},
		{MakeStandardJob(sq(4, 4), 7, 1)},
		{MakeStandardJob(sq(2, 2), 7, 2)},
	}
	res := onePortRun(t, Config{Platform: pl, Source: NewStatic(queues), Policy: &Priority{}, Name: "overlap"})
	// Validate() (called by onePortRun) checks transfer disjointness; also
	// check all work completed.
	st := res.Trace.Stats()
	wantUpdates := int64(7 * (9 + 9 + 16 + 4))
	if st.Updates != wantUpdates {
		t.Errorf("updates = %d, want %d", st.Updates, wantUpdates)
	}
}

func TestMultiPortAblationIsFaster(t *testing.T) {
	pl := platform.Homogeneous(4, 2, 1, 60)
	mkQueues := func() [][]Job {
		qs := make([][]Job, 4)
		for w := range qs {
			qs[w] = []Job{MakeStandardJob(sq(5, 5), 10, w)}
		}
		return qs
	}
	one, err := Run(Config{Platform: pl, Source: NewStatic(mkQueues()), Policy: &Priority{}, Name: "one"})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(Config{Platform: pl, Source: NewStatic(mkQueues()), Policy: &Priority{}, MultiPort: true, Name: "multi"})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Makespan >= one.Makespan {
		t.Errorf("multi-port %g should beat one-port %g on a comm-heavy platform", multi.Makespan, one.Makespan)
	}
}

func TestMemoryInvariantEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: job exceeds worker memory")
		}
	}()
	pl := platform.Homogeneous(1, 1, 1, 20)
	// 4×4 chunk with 8-block installments needs 16 + 2·8 = 32 > 20.
	_, _ = Run(Config{
		Platform: pl,
		Source:   NewStatic([][]Job{{MakeStandardJob(sq(4, 4), 3, 0)}}),
		Policy:   &Priority{},
	})
}

func TestFixedOrderReplaysProgram(t *testing.T) {
	pl := platform.Homogeneous(2, 1, 1, 100)
	queues := [][]Job{
		{MakeStandardJob(sq(2, 2), 2, 0)},
		{MakeStandardJob(sq(2, 2), 2, 1)},
	}
	// Interleave the two workers' installments by hand.
	ops := []OpRef{
		{Worker: 0, Kind: trace.SendC, JobSeq: 0},
		{Worker: 1, Kind: trace.SendC, JobSeq: 1},
		{Worker: 0, Kind: trace.SendAB, JobSeq: 0, K: 0},
		{Worker: 1, Kind: trace.SendAB, JobSeq: 1, K: 0},
		{Worker: 0, Kind: trace.SendAB, JobSeq: 0, K: 1},
		{Worker: 1, Kind: trace.SendAB, JobSeq: 1, K: 1},
		{Worker: 0, Kind: trace.RecvC, JobSeq: 0},
		{Worker: 1, Kind: trace.RecvC, JobSeq: 1},
	}
	res := onePortRun(t, Config{Platform: pl, Source: NewStatic(queues), Policy: NewFixedOrder("test", ops), Name: "fixed"})
	// The trace must follow exactly the programmed order.
	for i, tr := range res.Trace.Transfers {
		if tr.Worker != ops[i].Worker || tr.Kind != ops[i].Kind {
			t.Fatalf("transfer %d = P%d/%s, want P%d/%s", i, tr.Worker+1, tr.Kind, ops[i].Worker+1, ops[i].Kind)
		}
	}
}

func TestFixedOrderRejectsInvalidProgram(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inconsistent fixed program")
		}
	}()
	pl := platform.Homogeneous(1, 1, 1, 100)
	ops := []OpRef{
		{Worker: 0, Kind: trace.SendAB, JobSeq: 0, K: 0}, // installment before SendC
	}
	_, _ = Run(Config{
		Platform: pl,
		Source:   NewStatic([][]Job{{MakeStandardJob(sq(2, 2), 2, 0)}}),
		Policy:   NewFixedOrder("bad", ops),
	})
}

func TestPriorityPolicyPrefersEarlierSeq(t *testing.T) {
	// Both workers idle at t=0; the job with the lower Seq must be served
	// first even if it was listed second.
	pl := platform.Homogeneous(2, 1, 1, 100)
	queues := [][]Job{
		{MakeStandardJob(sq(2, 2), 2, 5)},
		{MakeStandardJob(sq(2, 2), 2, 1)},
	}
	res := onePortRun(t, Config{Platform: pl, Source: NewStatic(queues), Policy: &Priority{}, Name: "prio"})
	if first := res.Trace.Transfers[0]; first.Worker != 1 {
		t.Errorf("first transfer went to P%d, want P2 (lower Seq)", first.Worker+1)
	}
}

func TestCarverCoversMatrixExactly(t *testing.T) {
	r, s, tt := 10, 17, 6
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 100},
		platform.Worker{C: 2, W: 2, M: 60},
	)
	width := []int{4, 3}
	mk := func(worker int, ch matrix.Chunk, t, seq int) Job { return MakeStandardJob(ch, t, seq) }
	carver := NewCarver(r, s, tt, width, width, mk)
	res := onePortRun(t, Config{Platform: pl, Source: carver, Policy: &DemandDriven{}, Name: "carve"})
	st := res.Trace.Stats()
	if st.Updates != int64(r)*int64(s)*int64(tt) {
		t.Errorf("updates = %d, want %d (full product)", st.Updates, r*s*tt)
	}
	// Every C block delivered and returned exactly once: C traffic = 2·r·s.
	var cBlocks int64
	for _, tr := range res.Trace.Transfers {
		if tr.Kind == trace.SendC || tr.Kind == trace.RecvC {
			cBlocks += int64(tr.Blocks)
		}
	}
	if cBlocks != int64(2*r*s) {
		t.Errorf("C traffic = %d blocks, want %d", cBlocks, 2*r*s)
	}
	if carver.Remaining() != 0 {
		t.Errorf("carver left %d columns unassigned", carver.Remaining())
	}
}

func TestCarverSkipsInfeasibleWorker(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 100},
		platform.Worker{C: 1, W: 1, M: 5},
	)
	width := []int{3, 0} // worker 2 has no feasible layout
	mk := func(worker int, ch matrix.Chunk, t, seq int) Job { return MakeStandardJob(ch, t, seq) }
	res := onePortRun(t, Config{
		Platform: pl,
		Source:   NewCarver(6, 6, 4, width, width, mk),
		Policy:   &DemandDriven{},
		Name:     "skip",
	})
	st := res.Trace.Stats()
	if st.Enrolled != 1 {
		t.Errorf("enrolled = %d, want 1 (infeasible worker skipped)", st.Enrolled)
	}
	if st.Updates != 6*6*4 {
		t.Errorf("updates = %d, want %d", st.Updates, 6*6*4)
	}
}

func TestMakeBMMJob(t *testing.T) {
	job := MakeBMMJob(sq(3, 2), 10, 4, 0)
	if len(job.Installments) != 3 { // depths 4, 4, 2
		t.Fatalf("BMM installments = %d, want 3", len(job.Installments))
	}
	wantBlocks := []int{20, 20, 10}
	wantUpdates := []int64{24, 24, 12}
	for i, inst := range job.Installments {
		if inst.Blocks != wantBlocks[i] || inst.Updates != wantUpdates[i] {
			t.Errorf("installment %d = %+v, want {%d %d}", i, inst, wantBlocks[i], wantUpdates[i])
		}
	}
	if job.TotalUpdates() != 60 {
		t.Errorf("total updates = %d, want 60 (=3·2·10)", job.TotalUpdates())
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

// Makespan must never beat the trivial lower bounds: total master occupation
// and the per-worker compute+serve time.
func TestMakespanLowerBounds(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1.5, W: 1, M: 60},
		platform.Worker{C: 1, W: 3, M: 60},
	)
	queues := [][]Job{
		{MakeStandardJob(sq(5, 5), 8, 0), MakeStandardJob(sq(5, 5), 8, 2)},
		{MakeStandardJob(sq(5, 5), 8, 1)},
	}
	res := onePortRun(t, Config{Platform: pl, Source: NewStatic(queues), Policy: &Priority{}, Name: "lb"})
	var masterBusy float64
	for _, tr := range res.Trace.Transfers {
		masterBusy += tr.End - tr.Start
	}
	if res.Makespan < masterBusy-1e-9 {
		t.Errorf("makespan %g below master busy time %g", res.Makespan, masterBusy)
	}
	var computeBusy [2]float64
	for _, c := range res.Trace.Computes {
		computeBusy[c.Worker] += c.End - c.Start
	}
	for w, busy := range computeBusy {
		if res.Makespan < busy-1e-9 {
			t.Errorf("makespan %g below P%d compute time %g", res.Makespan, w+1, busy)
		}
	}
}

// sq builds a chunk at the origin with the given dimensions; tests that only
// care about geometry use it.
func sq(h, w int) matrix.Chunk { return matrix.Chunk{H: h, W: w} }
