package sim

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/trace"
)

func TestPlanRecordsExecutionOrder(t *testing.T) {
	pl := platform.Homogeneous(2, 1, 1, 100)
	ch0 := matrix.Chunk{Row0: 0, Col0: 0, H: 2, W: 2}
	ch1 := matrix.Chunk{Row0: 0, Col0: 2, H: 2, W: 2}
	queues := [][]Job{
		{MakeStandardJob(ch0, 2, 0)},
		{MakeStandardJob(ch1, 2, 1)},
	}
	res, err := Run(Config{Platform: pl, Source: NewStatic(queues), Policy: &Priority{}, Name: "plan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) != len(res.Trace.Transfers) {
		t.Fatalf("plan has %d ops, trace %d transfers", len(res.Plan), len(res.Trace.Transfers))
	}
	for i, op := range res.Plan {
		tr := res.Trace.Transfers[i]
		if op.Worker != tr.Worker || op.Kind != tr.Kind {
			t.Fatalf("plan op %d (%+v) disagrees with transfer (%+v)", i, op, tr)
		}
	}
	// Each worker's plan ops must carry its own chunk coordinates.
	for _, op := range res.Plan {
		want := ch0
		if op.Worker == 1 {
			want = ch1
		}
		if op.Chunk != want {
			t.Fatalf("op %+v carries wrong chunk", op)
		}
	}
}

func TestPlanPanelRanges(t *testing.T) {
	pl := platform.Homogeneous(1, 1, 1, 200)
	job := MakeBMMJob(matrix.Chunk{H: 3, W: 3}, 10, 4, 0) // panels [0,4) [4,8) [8,10)
	res, err := Run(Config{Platform: pl, Source: NewStatic([][]Job{{job}}), Policy: &Priority{}, MaxBuffered: 1, Name: "panels"})
	if err != nil {
		t.Fatal(err)
	}
	var ranges [][2]int
	for _, op := range res.Plan {
		if op.Kind == trace.SendAB {
			ranges = append(ranges, [2]int{op.K0, op.K1})
		}
	}
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if len(ranges) != len(want) {
		t.Fatalf("got %v", ranges)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("panel ranges %v, want %v", ranges, want)
		}
	}
}

func TestZeroUpdateInstallmentProducesNoCompute(t *testing.T) {
	pl := platform.Homogeneous(1, 1, 1, 100)
	job := Job{
		Chunk: matrix.Chunk{H: 2, W: 2},
		Installments: []Installment{
			{Blocks: 2, Updates: 0, K0: 0, K1: 1}, // B row alone
			{Blocks: 2, Updates: 4, K0: 0, K1: 1},
		},
		Seq: 0,
	}
	res, err := Run(Config{Platform: pl, Source: NewStatic([][]Job{{job}}), Policy: &Priority{}, MaxBuffered: 1, Name: "zero"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Computes) != 1 {
		t.Fatalf("computes = %d, want 1 (zero-update installment records none)", len(res.Trace.Computes))
	}
	if res.Trace.Computes[0].Updates != 4 {
		t.Errorf("compute updates = %d, want 4", res.Trace.Computes[0].Updates)
	}
}

func TestDemandDrivenFeedsHungriestWorker(t *testing.T) {
	// Worker 2 computes twice as fast, so under demand-driven service it
	// should receive strictly more installments early on. Verify the policy
	// classes: no SendC may be chosen while a SendAB is ready at the same
	// instant.
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 4, M: 100},
		platform.Worker{C: 1, W: 1, M: 100},
	)
	mk := func(worker int, ch matrix.Chunk, t, seq int) Job { return MakeStandardJob(ch, t, seq) }
	res, err := Run(Config{
		Platform: pl,
		Source:   NewCarver(4, 12, 6, []int{4, 4}, []int{4, 4}, mk),
		Policy:   &DemandDriven{},
		Name:     "hungry",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	var fast, slow int
	for _, c := range res.Trace.Computes {
		if c.Worker == 1 {
			fast += int(c.Updates)
		} else {
			slow += int(c.Updates)
		}
	}
	if fast <= slow {
		t.Errorf("fast worker computed %d updates vs slow %d; demand-driven should favour it", fast, slow)
	}
}

func TestChunkGeometryFromCarverIsPhysical(t *testing.T) {
	// Chunks carved for different workers must tile C exactly, with real
	// coordinates.
	mk := func(worker int, ch matrix.Chunk, t, seq int) Job { return MakeStandardJob(ch, t, seq) }
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 100},
		platform.Worker{C: 1, W: 1, M: 60},
	)
	res, err := Run(Config{
		Platform: pl,
		Source:   NewCarver(9, 21, 4, []int{5, 3}, []int{5, 3}, mk),
		Policy:   &DemandDriven{},
		Name:     "geometry",
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent []matrix.Chunk
	for _, op := range res.Plan {
		if op.Kind == trace.SendC {
			sent = append(sent, op.Chunk)
		}
	}
	if !matrix.CoverExactly(sent, 9, 21) {
		t.Errorf("carved chunks do not tile the 9x21 grid: %v", sent)
	}
}
