package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/trace"
)

// chaosPolicy picks an arbitrary candidate each round. Any policy choice is
// legal — the engine must preserve its invariants (one-port, buffer gating,
// conservation) no matter how perverse the master's decisions are.
type chaosPolicy struct{ rng *rand.Rand }

func (c *chaosPolicy) Name() string { return "chaos" }

func (c *chaosPolicy) Choose(now float64, cands []Candidate) int {
	return c.rng.Intn(len(cands))
}

func TestEngineInvariantsUnderChaosPolicy(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		ws := make([]platform.Worker, p)
		for i := range ws {
			ws[i] = platform.Worker{
				C: 0.5 + rng.Float64()*3,
				W: 0.5 + rng.Float64()*3,
				M: 30 + rng.Intn(200),
			}
		}
		pl := platform.MustNew(ws...)
		r, s, tt := 1+rng.Intn(8), 1+rng.Intn(20), 1+rng.Intn(8)
		mus := make([]int, p)
		for i, w := range pl.Workers {
			mus[i] = platform.MuOverlap(w.M)
		}
		mk := func(worker int, ch matrix.Chunk, t, seq int) Job { return MakeStandardJob(ch, t, seq) }
		res, err := Run(Config{
			Platform:    pl,
			Source:      NewCarver(r, s, tt, mus, mus, mk),
			Policy:      &chaosPolicy{rng: rng},
			MaxBuffered: 1 + rng.Intn(2),
			Name:        "chaos",
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("seed %d: invariant violated: %v", seed, err)
		}
		st := res.Trace.Stats()
		if st.Updates != int64(r)*int64(s)*int64(tt) {
			t.Fatalf("seed %d: updates %d, want %d", seed, st.Updates, r*s*tt)
		}
		var sent []matrix.Chunk
		for _, op := range res.Plan {
			if op.Kind == trace.SendC {
				sent = append(sent, op.Chunk)
			}
		}
		if !matrix.CoverExactly(sent, r, s) {
			t.Fatalf("seed %d: chaos run did not tile C", seed)
		}
		// Makespan can never beat the master's busy time or any worker's
		// compute time.
		if st.Makespan < st.MasterBusy-1e-9 {
			t.Fatalf("seed %d: makespan below master busy time", seed)
		}
		busy := map[int]float64{}
		for _, cpt := range res.Trace.Computes {
			busy[cpt.Worker] += cpt.End - cpt.Start
		}
		for w, b := range busy {
			if st.Makespan < b-1e-9 {
				t.Fatalf("seed %d: makespan below P%d compute time", seed, w+1)
			}
		}
		// Buffer gating: per worker, installment k's transfer must not start
		// before installment k-maxBuf's compute has finished.
		_ = math.Inf(1)
	}
}
