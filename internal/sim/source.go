package sim

import (
	"fmt"

	"repro/internal/matrix"
)

// MakeStandardJob builds a job under the paper's optimized memory layout: the
// C chunk ch is processed in t installments, installment k carrying the k-th
// row of W B blocks plus the k-th column of H A blocks and enabling H·W
// updates.
func MakeStandardJob(ch matrix.Chunk, t, seq int) Job {
	if t <= 0 {
		panic(fmt.Sprintf("sim: MakeStandardJob t=%d", t))
	}
	insts := make([]Installment, t)
	for k := range insts {
		insts[k] = Installment{Blocks: ch.H + ch.W, Updates: int64(ch.H) * int64(ch.W), K0: k, K1: k + 1}
	}
	return Job{Chunk: ch, Installments: insts, Seq: seq}
}

// MakeBMMJob builds a job under Toledo's memory layout: the chunk is
// processed in ⌈t/depth⌉ panel steps; step j moves depth_j·(H+W) input blocks
// (an H×depth_j panel of A and a depth_j×W panel of B) and enables
// depth_j·H·W updates, the last panel possibly shallower.
func MakeBMMJob(ch matrix.Chunk, t, depth, seq int) Job {
	if depth <= 0 || t <= 0 {
		panic(fmt.Sprintf("sim: MakeBMMJob depth=%d t=%d", depth, t))
	}
	var insts []Installment
	for k := 0; k < t; k += depth {
		d := min(depth, t-k)
		insts = append(insts, Installment{
			Blocks:  d * (ch.H + ch.W),
			Updates: int64(d) * int64(ch.H) * int64(ch.W),
			K0:      k, K1: k + d,
		})
	}
	return Job{Chunk: ch, Installments: insts, Seq: seq}
}

// Static is a Source with precomputed per-worker job queues.
type Static struct {
	Queues [][]Job
	pos    []int
}

// NewStatic wraps per-worker queues (index = worker).
func NewStatic(queues [][]Job) *Static {
	return &Static{Queues: queues, pos: make([]int, len(queues))}
}

// Next implements Source.
func (s *Static) Next(w int) (Job, bool) {
	if w >= len(s.Queues) || s.pos[w] >= len(s.Queues[w]) {
		return Job{}, false
	}
	j := s.Queues[w][s.pos[w]]
	s.pos[w]++
	return j, true
}

// Carver hands out work on demand, respecting the paper's rule that workers
// receive only full block-column groups: when worker w needs work and has no
// band in progress, it claims the next min(width[w], remaining) columns and
// then walks down that band in chunks of at most height[w] rows.
type Carver struct {
	R, S, T int
	// Width and Height give each worker's chunk geometry (μ_i for the
	// optimized layout, β_i for BMM).
	Width, Height []int
	// Make builds the job for a carved chunk (depends on the layout).
	Make func(worker int, ch matrix.Chunk, t, seq int) Job

	nextCol  int   // first unclaimed block column
	bandCol0 []int // start column of each worker's current band
	bandW    []int // width of each worker's current band (0 = none)
	rowsDone []int // rows already carved in the current band
	seq      int
}

// NewCarver creates a dynamic source over an r×s block grid with t inner
// steps. width/height are per-worker chunk edges; mk builds jobs.
func NewCarver(r, s, t int, width, height []int, mk func(worker int, ch matrix.Chunk, t, seq int) Job) *Carver {
	return &Carver{
		R: r, S: s, T: t, Width: width, Height: height, Make: mk,
		bandCol0: make([]int, len(width)),
		bandW:    make([]int, len(width)),
		rowsDone: make([]int, len(width)),
	}
}

// Clone returns an independent copy of the carver's allocation state, so
// selection heuristics can explore hypothetical assignments exactly.
func (c *Carver) Clone() *Carver {
	n := *c
	n.bandCol0 = append([]int(nil), c.bandCol0...)
	n.bandW = append([]int(nil), c.bandW...)
	n.rowsDone = append([]int(nil), c.rowsDone...)
	return &n
}

// Peek returns the chunk Next(w) would carve, without committing anything.
// Selection heuristics use it to evaluate candidates.
func (c *Carver) Peek(w int) (matrix.Chunk, bool) {
	if c.Width[w] <= 0 || c.Height[w] <= 0 {
		return matrix.Chunk{}, false
	}
	col0, wd, rows := c.bandCol0[w], c.bandW[w], c.rowsDone[w]
	if wd == 0 {
		if c.nextCol >= c.S {
			return matrix.Chunk{}, false
		}
		col0, wd, rows = c.nextCol, min(c.Width[w], c.S-c.nextCol), 0
	}
	return matrix.Chunk{Row0: rows, Col0: col0, H: min(c.Height[w], c.R-rows), W: wd}, true
}

// Next implements Source.
func (c *Carver) Next(w int) (Job, bool) {
	ch, ok := c.Peek(w)
	if !ok {
		return Job{}, false
	}
	if c.bandW[w] == 0 {
		c.bandCol0[w] = ch.Col0
		c.bandW[w] = ch.W
		c.rowsDone[w] = 0
		c.nextCol += ch.W
	}
	job := c.Make(w, ch, c.T, c.seq)
	c.seq++
	c.rowsDone[w] += ch.H
	if c.rowsDone[w] >= c.R {
		c.bandW[w] = 0
	}
	return job, true
}

// Remaining reports how many block columns are still unclaimed.
func (c *Carver) Remaining() int { return c.S - c.nextCol }
