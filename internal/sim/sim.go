// Package sim is the discrete-event simulator of the star platform: a master
// serving workers over a one-port link (at most one transfer, in either
// direction, at any time), workers that compute sequentially and may overlap
// communication with computation of independent data, and the linear cost
// model of the paper — X blocks to/from worker i occupy the port X·c_i time
// units, X block updates occupy worker i for X·w_i.
//
// Schedulers drive the engine by assigning chunk jobs to workers (statically
// or on demand) and by choosing a master policy that picks, whenever the port
// frees up, which pending operation to serve next. Per worker and per chunk
// the operation sequence is fixed by the paper's protocol: send the C chunk,
// send the input installments in order (double-buffered or not, depending on
// the memory layout), and, once the chunk is fully updated, receive it back.
// C I/O is sequentialized with that worker's compute, as in Section 4.
package sim

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Installment is one input delivery for a chunk: Blocks of A and B data that
// enable Updates block updates, covering inner-dimension panels [K0, K1).
// For the paper's layout an installment is a B row plus an A column (H+W
// blocks, H·W updates, K1 = K0+1); for Toledo's BMM it is a depth-d panel
// pair (d·(H+W) blocks, d·H·W updates).
type Installment struct {
	Blocks  int
	Updates int64
	K0, K1  int
}

// Job is one chunk's worth of work assigned to a worker.
type Job struct {
	Chunk        matrix.Chunk // the C region this job computes
	Installments []Installment
	Seq          int // global assignment order (priority policies use it)
}

// CBlocks is the number of C blocks moved in each direction for the job.
func (j Job) CBlocks() int { return j.Chunk.Blocks() }

// TotalUpdates sums the job's block updates.
func (j Job) TotalUpdates() int64 {
	var n int64
	for _, inst := range j.Installments {
		n += inst.Updates
	}
	return n
}

// OpKind distinguishes the three master operations; it aliases the trace
// kinds so records can be written without conversion.
type OpKind = trace.Kind

// Candidate is a pending master operation the policy can choose from.
type Candidate struct {
	Worker int
	Kind   OpKind
	JobSeq int     // Seq of the job this op belongs to
	K      int     // installment index (SendAB only)
	Ready  float64 // earliest time the op may start (worker-side constraint)
	Blocks int
}

// Policy selects which candidate the master serves next. Candidates are the
// head operations of every worker with pending work; the engine guarantees
// the slice is non-empty. now is the time the master port frees up.
type Policy interface {
	Name() string
	Choose(now float64, cands []Candidate) int
}

// Source hands out chunk jobs. Static schedulers precompute per-worker
// queues; demand-driven schedulers carve jobs when a worker goes idle.
type Source interface {
	// Next returns the next job for worker w, or ok=false if w gets no more.
	Next(w int) (Job, bool)
}

// Config describes one simulation run.
type Config struct {
	Platform *platform.Platform
	Source   Source
	Policy   Policy
	// MaxBuffered is the number of installments a worker may hold
	// concurrently (arrived but not fully computed): 2 under the overlapped
	// μ²+4μ layout, 1 under single-buffered layouts (max re-use, BMM).
	// Defaults to 2.
	MaxBuffered int
	// MultiPort, when true, removes the master's serialization constraint
	// (ablation: an idealized master with one independent port per link).
	MultiPort bool
	// SkipMemCheck disables the per-job memory validation (used by ablations
	// that deliberately exceed the layout).
	SkipMemCheck bool
	// Name labels the trace.
	Name string
}

type workerState struct {
	job        *Job
	active     bool      // C chunk delivered, installments under way
	nextK      int       // next installment to send
	ceHist     []float64 // compute-end time of each installment of the active chunk
	computeEnd float64   // compute end of the last sent installment
	idleAt     float64   // when the worker last became idle (RecvC end)
	cArrive    float64   // when the active chunk's C blocks finished arriving
	done       bool      // source exhausted
	linkFree   float64   // per-link availability (multi-port ablation)
}

// PlanOp is one executed master operation with full data coordinates, in
// execution order — a replayable program for the real execution engines.
type PlanOp struct {
	Worker int
	Kind   OpKind
	Chunk  matrix.Chunk
	K0, K1 int // SendAB only: inner panels delivered
}

// Result bundles the trace with engine-level accounting.
type Result struct {
	Trace    *trace.Trace
	Makespan float64
	Plan     []PlanOp
}

// Run executes the simulation to completion. It panics on scheduler protocol
// violations (assigning a job that cannot fit the worker's memory is a bug in
// the scheduler, not an input error).
func Run(cfg Config) (*Result, error) {
	pl := cfg.Platform
	if pl == nil || cfg.Source == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("sim: incomplete config (platform/source/policy required)")
	}
	maxBuf := cfg.MaxBuffered
	if maxBuf <= 0 {
		maxBuf = 2
	}
	p := pl.P()
	ws := make([]workerState, p)
	tr := &trace.Trace{Algorithm: cfg.Name, Workers: p}

	fetch := func(w int) {
		if ws[w].done || ws[w].job != nil {
			return
		}
		job, ok := cfg.Source.Next(w)
		if !ok {
			ws[w].done = true
			return
		}
		if !cfg.SkipMemCheck {
			validateJob(pl, w, job, maxBuf)
		}
		ws[w].job = &job
	}
	for w := 0; w < p; w++ {
		fetch(w)
	}

	masterFree := 0.0
	res := &Result{}
	var cands []Candidate
	for {
		cands = cands[:0]
		for w := 0; w < p; w++ {
			st := &ws[w]
			if st.job == nil {
				continue
			}
			j := st.job
			switch {
			case !st.active:
				cands = append(cands, Candidate{Worker: w, Kind: trace.SendC, JobSeq: j.Seq, Ready: st.idleAt, Blocks: j.CBlocks()})
			case st.nextK < len(j.Installments):
				ready := st.cArrive
				if st.nextK >= maxBuf {
					// A buffer slot frees when installment nextK-maxBuf
					// finishes computing.
					ready = math.Max(ready, st.ceHist[st.nextK-maxBuf])
				}
				cands = append(cands, Candidate{Worker: w, Kind: trace.SendAB, JobSeq: j.Seq, K: st.nextK, Ready: ready, Blocks: j.Installments[st.nextK].Blocks})
			default:
				cands = append(cands, Candidate{Worker: w, Kind: trace.RecvC, JobSeq: j.Seq, Ready: st.computeEnd, Blocks: j.CBlocks()})
			}
		}
		if len(cands) == 0 {
			break
		}
		pick := cfg.Policy.Choose(masterFree, cands)
		if pick < 0 || pick >= len(cands) {
			panic(fmt.Sprintf("sim: policy %s chose invalid candidate %d of %d", cfg.Policy.Name(), pick, len(cands)))
		}
		c := cands[pick]
		st := &ws[c.Worker]
		cw := pl.Workers[c.Worker].C
		var start float64
		if cfg.MultiPort {
			start = math.Max(c.Ready, st.linkFree)
		} else {
			start = math.Max(c.Ready, masterFree)
		}
		end := start + float64(c.Blocks)*cw
		tr.Transfers = append(tr.Transfers, trace.Transfer{Worker: c.Worker, Kind: c.Kind, Blocks: c.Blocks, Start: start, End: end})
		op := PlanOp{Worker: c.Worker, Kind: c.Kind, Chunk: st.job.Chunk}
		if c.Kind == trace.SendAB {
			op.K0 = st.job.Installments[c.K].K0
			op.K1 = st.job.Installments[c.K].K1
		}
		res.Plan = append(res.Plan, op)
		if cfg.MultiPort {
			st.linkFree = end
		} else {
			masterFree = end
		}

		switch c.Kind {
		case trace.SendC:
			st.active = true
			st.cArrive = end
			st.nextK = 0
			st.ceHist = st.ceHist[:0]
			st.computeEnd = end
		case trace.SendAB:
			inst := st.job.Installments[c.K]
			cs := math.Max(end, st.computeEnd)
			ce := cs + float64(inst.Updates)*pl.Workers[c.Worker].W
			if inst.Updates > 0 {
				tr.Computes = append(tr.Computes, trace.Compute{Worker: c.Worker, Updates: inst.Updates, Start: cs, End: ce})
			}
			st.computeEnd = ce
			st.ceHist = append(st.ceHist, ce)
			st.nextK++
		case trace.RecvC:
			st.job = nil
			st.active = false
			st.idleAt = end
			fetch(c.Worker)
		}
	}

	res.Trace = tr
	for _, t := range tr.Transfers {
		if t.End > res.Makespan {
			res.Makespan = t.End
		}
	}
	return res, nil
}

func validateJob(pl *platform.Platform, w int, job Job, maxBuf int) {
	if job.Chunk.H <= 0 || job.Chunk.W <= 0 {
		panic(fmt.Sprintf("sim: worker P%d assigned empty job %+v", w+1, job))
	}
	if len(job.Installments) == 0 {
		panic(fmt.Sprintf("sim: worker P%d assigned job with no installments", w+1))
	}
	maxInst := 0
	for _, inst := range job.Installments {
		if inst.Blocks > maxInst {
			maxInst = inst.Blocks
		}
		if inst.Blocks <= 0 || inst.Updates < 0 {
			panic(fmt.Sprintf("sim: worker P%d assigned malformed installment %+v", w+1, inst))
		}
	}
	// Memory invariant: the C chunk plus maxBuf installment groups (the
	// buffered ones and the one being received occupy distinct groups of the
	// layout's 2×(2μ) input buffers) must fit in m_w.
	need := job.CBlocks() + maxBuf*maxInst
	if need > pl.Workers[w].M {
		panic(fmt.Sprintf("sim: job %dx%d with %d-block installments needs %d buffers on P%d (m=%d)",
			job.Chunk.H, job.Chunk.W, maxInst, need, w+1, pl.Workers[w].M))
	}
}
