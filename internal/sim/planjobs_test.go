package sim

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/trace"
)

// TestJobsFromPlanRebuildsJobs groups a real scheduler-produced plan and
// checks every op maps to a job whose chunk and panels match the plan.
func TestJobsFromPlanRebuildsJobs(t *testing.T) {
	pl := platform.Homogeneous(2, 1, 1, 100)
	ch0 := matrix.Chunk{Row0: 0, Col0: 0, H: 2, W: 2}
	ch1 := matrix.Chunk{Row0: 0, Col0: 2, H: 2, W: 2}
	queues := [][]Job{
		{MakeStandardJob(ch0, 3, 0)},
		{MakeStandardJob(ch1, 3, 1)},
	}
	res, err := Run(Config{Platform: pl, Source: NewStatic(queues), Policy: &Priority{}, Name: "jobs"})
	if err != nil {
		t.Fatal(err)
	}
	jobs, opJob, err := JobsFromPlan(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	if len(opJob) != len(res.Plan) {
		t.Fatalf("opJob covers %d ops of %d", len(opJob), len(res.Plan))
	}
	for i, op := range res.Plan {
		j := jobs[opJob[i]]
		if j.Worker != op.Worker || j.Chunk != op.Chunk {
			t.Errorf("op %d (%+v) mapped to job %+v", i, op, j)
		}
	}
	for _, j := range jobs {
		if len(j.Panels) != 3 {
			t.Errorf("job %v has %d panels, want 3 (t=3, standard layout)", j.Chunk, len(j.Panels))
		}
		for k, p := range j.Panels {
			if p != [2]int{k, k + 1} {
				t.Errorf("job %v panel %d is %v", j.Chunk, k, p)
			}
		}
	}
}

func TestJobsFromPlanRejectsProtocolViolations(t *testing.T) {
	ch := matrix.Chunk{H: 1, W: 1}
	other := matrix.Chunk{Row0: 1, H: 1, W: 1}
	cases := map[string][]PlanOp{
		"install before chunk": {
			{Worker: 0, Kind: trace.SendAB, Chunk: ch, K0: 0, K1: 1},
		},
		"recv before chunk": {
			{Worker: 0, Kind: trace.RecvC, Chunk: ch},
		},
		"double send": {
			{Worker: 0, Kind: trace.SendC, Chunk: ch},
			{Worker: 0, Kind: trace.SendC, Chunk: other},
		},
		"chunk mismatch": {
			{Worker: 0, Kind: trace.SendC, Chunk: ch},
			{Worker: 0, Kind: trace.SendAB, Chunk: other, K0: 0, K1: 1},
		},
		"missing recv": {
			{Worker: 0, Kind: trace.SendC, Chunk: ch},
			{Worker: 0, Kind: trace.SendAB, Chunk: ch, K0: 0, K1: 1},
		},
		"negative worker": {
			{Worker: -1, Kind: trace.SendC, Chunk: ch},
		},
	}
	for name, plan := range cases {
		if _, _, err := JobsFromPlan(plan); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
