package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept", "job", 7)
	if strings.Contains(b.String(), "dropped") {
		t.Error("info record passed a warn-level logger")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("json format did not produce JSON: %v (%q)", err, b.String())
	}
	if rec["msg"] != "kept" || rec["job"] != float64(7) {
		t.Errorf("record = %v", rec)
	}
	if _, err := NewLogger(io.Discard, "info", "xml"); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}
}

// TestLogfLogger checks the bridge into the legacy printf callbacks: records
// render as "msg key=value", attrs and groups accumulate, debug is dropped.
func TestLogfLogger(t *testing.T) {
	var lines []string
	log := LogfLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	log.Debug("invisible")
	log.With("worker", 3).WithGroup("lease").Info("job started", "id", 9)
	if len(lines) != 1 {
		t.Fatalf("lines = %q", lines)
	}
	if want := "job started worker=3 lease.id=9"; lines[0] != want {
		t.Errorf("rendered %q, want %q", lines[0], want)
	}
	if LogfLogger(nil).Enabled(nil, slog.LevelError) {
		t.Error("nil-callback logger should discard")
	}
}

// TestDebugMux scrapes the endpoints the binaries expose behind -debug-addr.
func TestDebugMux(t *testing.T) {
	NewCounter("muxtest_total", "present in the default registry").Inc()
	healthy := true
	srv := httptest.NewServer(NewMux(func() Health {
		return Health{OK: healthy, Payload: map[string]any{"component": "test"}}
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type %q", ct)
	}
	if !strings.Contains(string(body), "muxtest_total 1") {
		t.Errorf("/metrics misses the registered family:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || h["ok"] != true || h["component"] != "test" {
		t.Errorf("/healthz = %d %v", resp.StatusCode, h)
	}
	healthy = false
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unhealthy /healthz status %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

// TestCountConn pushes bytes through a counted net.Pipe and checks both
// directions are tallied.
func TestCountConn(t *testing.T) {
	client, server := net.Pipe()
	var sent, recv Counter
	cc := CountConn(client, &sent, &recv)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		n, _ := server.Read(buf)
		server.Write(buf[:n])
	}()
	if _, err := cc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := cc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	cc.Close()
	server.Close()
	if sent.Value() != 5 || recv.Value() != int64(n) || n != 5 {
		t.Errorf("sent=%d recv=%d n=%d, want 5 everywhere", sent.Value(), recv.Value(), n)
	}
}

func TestVersion(t *testing.T) {
	if Version() == "" {
		t.Error("Version() is empty")
	}
}
