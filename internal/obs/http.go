package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Health is what /healthz reports: OK drives the status code (200 vs 503),
// Payload is rendered as the JSON body alongside the ok flag.
type Health struct {
	OK      bool
	Payload map[string]any
}

// NewMux builds the opt-in debug mux the binaries expose behind
// -debug-addr: /metrics (Prometheus text exposition of the Default
// registry), /healthz (JSON liveness from the callback; nil callback means
// always healthy), and the net/http/pprof handlers under /debug/pprof/.
func NewMux(healthz func() Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{OK: true}
		if healthz != nil {
			h = healthz()
		}
		body := map[string]any{"ok": h.OK}
		for k, v := range h.Payload {
			body[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug listens on addr and serves NewMux(healthz) until the returned
// stop function is called. It returns the bound address (useful with
// ":0"-style addrs).
func ServeDebug(addr string, healthz func() Health) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(healthz)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
