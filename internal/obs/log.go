package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the logger behind the binaries' -log-level and
// -log-format flags: format is "text" or "json".
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards everything; the resolution
// helpers below use it so callers never have to nil-check.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// LogfLogger bridges the runtime's long-standing `Logf func(format,
// args...)` option fields (wired to t.Logf in tests and log.Printf in the
// binaries) into the slog world: records render as "msg key=value ..."
// through the printf callback, so existing sinks keep working unchanged.
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return NopLogger()
	}
	return slog.New(&logfHandler{logf: logf})
}

// logfHandler renders slog records through a printf-style callback.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
	group string
}

func (h *logfHandler) Enabled(_ context.Context, lv slog.Level) bool {
	return lv >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	writeAttr := func(a slog.Attr, group string) {
		if a.Equal(slog.Attr{}) {
			return
		}
		b.WriteByte(' ')
		if group != "" {
			b.WriteString(group)
			b.WriteByte('.')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value.String())
	}
	// Stored attrs were qualified by WithAttrs at add time; only the
	// record's own attrs take the handler's current group.
	for _, a := range h.attrs {
		writeAttr(a, "")
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(a, h.group)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append([]slog.Attr(nil), h.attrs...)
	// Qualify with the group open at add time, matching slog semantics:
	// WithGroup scopes attrs added after it, not before.
	for _, a := range attrs {
		if h.group != "" {
			a.Key = h.group + "." + a.Key
		}
		nh.attrs = append(nh.attrs, a)
	}
	return &nh
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if nh.group != "" {
		nh.group += "." + name
	} else {
		nh.group = name
	}
	return &nh
}
