package obs

import "net"

// countedConn wraps a net.Conn and feeds byte counts into two counters.
// Embedding keeps the full net.Conn surface (deadlines, addrs, Close)
// passing through untouched.
type countedConn struct {
	net.Conn
	sent, recv *Counter
}

// CountConn returns c with every Read/Write byte count added to recv/sent.
// Either counter may be nil to skip that direction.
func CountConn(c net.Conn, sent, recv *Counter) net.Conn {
	return &countedConn{Conn: c, sent: sent, recv: recv}
}

func (c *countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if c.recv != nil && n > 0 {
		c.recv.Add(int64(n))
	}
	return n, err
}

func (c *countedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if c.sent != nil && n > 0 {
		c.sent.Add(int64(n))
	}
	return n, err
}
