package obs

import (
	"runtime/debug"
	"strings"
)

// Version reports the build's best available version string: the main
// module version when the toolchain stamped one (a tag, or the VCS-derived
// pseudo-version which already encodes revision and dirtiness), otherwise
// the VCS revision (short) with a "-dirty" suffix for modified trees,
// otherwise "devel". All three binaries print it for -version and embed it
// in their startup banner and /healthz payload.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		if dirty && !strings.Contains(v, "dirty") {
			v += "-dirty"
		}
		return v
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
