package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format byte for byte:
// families sorted by name, vec children by label value, label escaping via
// %q, histogram buckets cumulative with 'g'-formatted le bounds.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_chunks_total", "Chunks dispatched.").Add(3)
	r.Gauge("test_jobs_queued", "Jobs waiting.").Set(2)
	v := r.CounterVec("test_bytes_total", "Bytes per worker.", "worker")
	v.With("10.0.0.2:9801").Add(4096)
	v.With(`quo"te`).Inc()
	h := r.Histogram("test_latency_seconds", "Observed latency.")
	h.Observe(500 * time.Nanosecond)  // bucket 0 (le=1e-06)
	h.Observe(1500 * time.Nanosecond) // bucket 1 (le=2e-06)
	h.Observe(3 * time.Microsecond)   // bucket 2 (le=4e-06)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_bytes_total Bytes per worker.
# TYPE test_bytes_total counter
test_bytes_total{worker="10.0.0.2:9801"} 4096
test_bytes_total{worker="quo\"te"} 1
# HELP test_chunks_total Chunks dispatched.
# TYPE test_chunks_total counter
test_chunks_total 3
# HELP test_jobs_queued Jobs waiting.
# TYPE test_jobs_queued gauge
test_jobs_queued 2
# HELP test_latency_seconds Observed latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1e-06"} 1
test_latency_seconds_bucket{le="2e-06"} 2
test_latency_seconds_bucket{le="4e-06"} 3
test_latency_seconds_bucket{le="8e-06"} 3
test_latency_seconds_bucket{le="1.6e-05"} 3
test_latency_seconds_bucket{le="3.2e-05"} 3
test_latency_seconds_bucket{le="6.4e-05"} 3
test_latency_seconds_bucket{le="0.000128"} 3
test_latency_seconds_bucket{le="0.000256"} 3
test_latency_seconds_bucket{le="0.000512"} 3
test_latency_seconds_bucket{le="0.001024"} 3
test_latency_seconds_bucket{le="0.002048"} 3
test_latency_seconds_bucket{le="0.004096"} 3
test_latency_seconds_bucket{le="0.008192"} 3
test_latency_seconds_bucket{le="0.016384"} 3
test_latency_seconds_bucket{le="0.032768"} 3
test_latency_seconds_bucket{le="0.065536"} 3
test_latency_seconds_bucket{le="0.131072"} 3
test_latency_seconds_bucket{le="0.262144"} 3
test_latency_seconds_bucket{le="0.524288"} 3
test_latency_seconds_bucket{le="1.048576"} 3
test_latency_seconds_bucket{le="2.097152"} 3
test_latency_seconds_bucket{le="4.194304"} 3
test_latency_seconds_bucket{le="8.388608"} 3
test_latency_seconds_bucket{le="16.777216"} 3
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5e-06
test_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistBucket checks the bucket boundaries: bucket i's upper bound is
// 1µs·2^i inclusive, and out-of-range observations land in +Inf.
func TestHistBucket(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {1000, 0},
		{1001, 1}, {2000, 1},
		{2001, 2}, {4000, 2},
		{1000 << 24, 24},
		{1000<<24 + 1, 25},
		{1 << 62, 25},
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	h := &Histogram{}
	h.Observe(-time.Second) // negative clamps to zero, never panics
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("negative observation: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestRegistryIdempotent checks registration semantics: same name+kind
// returns the same metric, mismatched kind panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second")
	if a != b {
		t.Error("re-registering a counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("dup_total", "boom")
}

// TestConcurrentUpdates hammers every primitive from several goroutines
// while scraping concurrently; run under -race this is the data-race proof,
// and the final totals prove no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "")
	v := r.CounterVec("conc_vec_total", "", "w")
	g := r.Gauge("conc_gauge", "")

	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				v.With("w" + strconv.Itoa(i%3)).Inc()
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	const total = goroutines * iters
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %d, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	var sum, cum int64
	_, children := v.snapshot()
	for _, ch := range children {
		sum += ch.Value()
	}
	if sum != total {
		t.Errorf("vec children sum = %d, want %d", sum, total)
	}
	for i := range h.buckets {
		cum += h.buckets[i].Load()
	}
	if cum != total {
		t.Errorf("bucket sum = %d, want %d", cum, total)
	}
}
