// Package obs is the runtime's observability layer: process-wide metrics
// (atomic counters, gauges, and log-bucketed latency histograms) with a
// hand-rolled Prometheus text exposition, structured logging helpers around
// log/slog, build-info reporting, and the opt-in debug HTTP mux serving
// /metrics, /healthz and net/http/pprof.
//
// The package is dependency-free by design (stdlib only) and every hot-path
// primitive — Counter.Add, Gauge.Set, Histogram.Observe — is a handful of
// atomic operations with zero allocations, so the engine's per-transfer
// instrumentation stays invisible next to real network and BLAS3 work.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters obtained from a Registry are what the exposition shows.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the exposition to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, running jobs).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram buckets: bucket i counts observations in
// (1µs·2^(i-1), 1µs·2^i]; the first bucket starts at zero and the last is
// the +Inf overflow. 1µs·2^24 ≈ 16.8s comfortably covers every latency the
// runtime measures (a block send is ~µs–ms, a whole job ~ms–s).
const histBuckets = 26

// Histogram is a log-bucketed duration histogram. Observe is wait-free and
// allocation-free: one bits.Len64 plus three atomic adds.
type Histogram struct {
	buckets [histBuckets]atomic.Int64 // per-bucket (non-cumulative) counts
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.buckets[histBucket(n)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(n)
}

// histBucket maps nanoseconds to the smallest bucket whose upper bound
// (1µs << i) is ≥ n; out-of-range observations land in the +Inf bucket.
func histBucket(n int64) int {
	if n <= 1000 {
		return 0
	}
	i := bits.Len64(uint64((n - 1) / 1000)) // smallest i with 1000<<i ≥ n
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// CounterVec is a counter family partitioned by one label. With returns the
// per-value child; callers on hot paths should cache the child so steady
// state is a single atomic add with no map lookup.
type CounterVec struct {
	label string

	mu sync.Mutex
	m  map[string]*Counter
}

// With returns (creating on first use) the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[value]
	if !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// snapshot returns the children sorted by label value.
func (v *CounterVec) snapshot() ([]string, []*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cs := make([]*Counter, len(keys))
	for i, k := range keys {
		cs[i] = v.m[k]
	}
	return keys, cs
}

// GaugeVec is a gauge family partitioned by one label (per-class queue
// depths and the like). With returns the per-value child; hot paths should
// cache the child so steady state is a single atomic op.
type GaugeVec struct {
	label string

	mu sync.Mutex
	m  map[string]*Gauge
}

// With returns (creating on first use) the gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.m[value]
	if !ok {
		g = &Gauge{}
		v.m[value] = g
	}
	return g
}

// snapshot returns the children sorted by label value.
func (v *GaugeVec) snapshot() ([]string, []*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	gs := make([]*Gauge, len(keys))
	for i, k := range keys {
		gs[i] = v.m[k]
	}
	return keys, gs
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
)

// family is one registered metric name with its exposition metadata.
type family struct {
	name string
	help string
	kind metricKind

	c    *Counter
	g    *Gauge
	h    *Histogram
	vec  *CounterVec
	gvec *GaugeVec
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration is idempotent: asking twice for the same
// name and kind returns the same metric (mismatched kinds panic — that is a
// programming error, not a runtime condition).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-wide registry every package-level constructor and
// the /metrics endpoint use.
var Default = NewRegistry()

func (r *Registry) register(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		f.c = &Counter{}
	case kindGauge:
		f.g = &Gauge{}
	case kindHistogram:
		f.h = &Histogram{}
	case kindCounterVec:
		f.vec = &CounterVec{m: make(map[string]*Counter)}
	case kindGaugeVec:
		f.gvec = &GaugeVec{m: make(map[string]*Gauge)}
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Histogram registers (or returns) a log-bucketed duration histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram).h
}

// CounterVec registers (or returns) a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.register(name, help, kindCounterVec)
	f.vec.label = label
	return f.vec
}

// GaugeVec registers (or returns) a one-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	f := r.register(name, help, kindGaugeVec)
	f.gvec.label = label
	return f.gvec
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string) *Histogram { return Default.Histogram(name, help) }

// NewCounterVec registers a one-label counter family on the Default registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default.CounterVec(name, help, label)
}

// NewGaugeVec registers a one-label gauge family on the Default registry.
func NewGaugeVec(name, help, label string) *GaugeVec {
	return Default.GaugeVec(name, help, label)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families sort
// by name, vec children by label value, so two scrapes of an idle process
// are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", f.name, f.name, f.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", f.name, f.name, f.g.Value())
		case kindCounterVec:
			fmt.Fprintf(&b, "# TYPE %s counter\n", f.name)
			keys, cs := f.vec.snapshot()
			for i, k := range keys {
				// Go %q produces exactly the exposition-format label value
				// escapes (backslash, quote, \n).
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", f.name, f.vec.label, k, cs[i].Value())
			}
		case kindGaugeVec:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", f.name)
			keys, gs := f.gvec.snapshot()
			for i, k := range keys {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", f.name, f.gvec.label, k, gs[i].Value())
			}
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", f.name)
			var cum int64
			for i := 0; i < histBuckets-1; i++ {
				cum += f.h.buckets[i].Load()
				ub := float64(int64(1000)<<i) / 1e9
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.name, strconv.FormatFloat(ub, 'g', -1, 64), cum)
			}
			cum += f.h.buckets[histBuckets-1].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", f.name, strconv.FormatFloat(float64(f.h.sumNs.Load())/1e9, 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count %d\n", f.name, f.h.count.Load())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
