package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMuMaxReuseSmallValues(t *testing.T) {
	// The paper's running example: m = 21 gives μ = 4 (1 + 4 + 16 = 21).
	cases := []struct{ m, want int }{
		{0, 0}, {2, 0}, {3, 1}, {6, 1}, {7, 2}, {12, 2}, {13, 3}, {21, 4}, {22, 4}, {30, 4}, {31, 5},
	}
	for _, c := range cases {
		if got := MuMaxReuse(c.m); got != c.want {
			t.Errorf("MuMaxReuse(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestMuOverlapSmallValues(t *testing.T) {
	cases := []struct{ m, want int }{
		{4, 0}, {5, 1}, {11, 1}, {12, 2}, {20, 2}, {21, 3}, {320, 16}, {640, 23}, {1280, 33},
	}
	for _, c := range cases {
		if got := MuOverlap(c.m); got != c.want {
			t.Errorf("MuOverlap(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestBetaToledo(t *testing.T) {
	cases := []struct{ m, want int }{
		{3, 1}, {12, 2}, {27, 3}, {320, 10}, {640, 14}, {1280, 20},
	}
	for _, c := range cases {
		if got := BetaToledo(c.m); got != c.want {
			t.Errorf("BetaToledo(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

// Property: μ is maximal — μ fits and μ+1 does not.
func TestMuMaximalityProperty(t *testing.T) {
	f := func(m int) bool {
		if m < 0 {
			m = -m
		}
		m = m % 100000
		mu := MuMaxReuse(m)
		if mu > 0 && 1+mu+mu*mu > m {
			return false
		}
		if 1+(mu+1)+(mu+1)*(mu+1) <= m {
			return false
		}
		muo := MuOverlap(m)
		if muo > 0 && muo*muo+4*muo > m {
			return false
		}
		return (muo+1)*(muo+1)+4*(muo+1) > m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHomSelection(t *testing.T) {
	// Paper example (§4): c = 2, w = 4.5, μ = 4, t = 100 enrolls P = 5.
	if got := HomSelection(8, 4, 4.5, 2); got != 5 {
		t.Errorf("HomSelection(8, 4, 4.5, 2) = %d, want 5", got)
	}
	// Capped by available workers.
	if got := HomSelection(3, 4, 4.5, 2); got != 3 {
		t.Errorf("HomSelection capped = %d, want 3", got)
	}
	// Communication-bound: one worker.
	if got := HomSelection(8, 1, 0.1, 10); got != 1 {
		t.Errorf("HomSelection comm-bound = %d, want 1", got)
	}
	if got := HomSelection(8, 0, 1, 1); got != 0 {
		t.Errorf("HomSelection μ=0 = %d, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty platform accepted")
	}
	if _, err := New(Worker{C: 0, W: 1, M: 100}); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := New(Worker{C: 1, W: -1, M: 100}); err == nil {
		t.Error("negative w accepted")
	}
	if _, err := New(Worker{C: 1, W: 1, M: 2}); err == nil {
		t.Error("memory below minimum accepted")
	}
	p, err := New(Worker{C: 1, W: 1, M: 100}, Worker{C: 2, W: 2, M: 50})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers[0].Name != "P1" || p.Workers[1].Name != "P2" {
		t.Errorf("auto names = %q, %q", p.Workers[0].Name, p.Workers[1].Name)
	}
}

func TestSubset(t *testing.T) {
	p := Homogeneous(4, 1, 1, 100)
	s, err := p.Subset([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.P() != 2 || s.Workers[0].Name != "P3" || s.Workers[1].Name != "P1" {
		t.Errorf("subset = %v", s)
	}
	if _, err := p.Subset([]int{0, 0}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := p.Subset([]int{9}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := p.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
}

func TestIsHomogeneous(t *testing.T) {
	if !Homogeneous(3, 1, 2, 100).IsHomogeneous() {
		t.Error("homogeneous platform not recognized")
	}
	if HeteroMemory().IsHomogeneous() {
		t.Error("hetero-memory platform reported homogeneous")
	}
}

func TestExperimentPlatformShapes(t *testing.T) {
	if p := HeteroMemory(); p.P() != 8 {
		t.Errorf("HeteroMemory has %d workers", p.P())
	}
	if p := HeteroComm(); p.P() != 8 {
		t.Errorf("HeteroComm has %d workers", p.P())
	}
	if p := HeteroComp(); p.P() != 8 {
		t.Errorf("HeteroComp has %d workers", p.P())
	}
	for _, r := range []float64{2, 4} {
		p := FullyHetero(r)
		if p.P() != 8 {
			t.Fatalf("FullyHetero(%g) has %d workers", r, p.P())
		}
		// All 8 (c,w,m) combinations must be distinct.
		seen := map[[3]float64]bool{}
		for _, w := range p.Workers {
			key := [3]float64{w.C, w.W, float64(w.M)}
			if seen[key] {
				t.Errorf("FullyHetero(%g): duplicate combination %v", r, key)
			}
			seen[key] = true
		}
	}
	for _, p := range []*Platform{LyonAugust2007(), LyonNovember2006()} {
		if p.P() != 20 {
			t.Errorf("Lyon platform has %d workers, want 20", p.P())
		}
	}
	nov := LyonNovember2006()
	small := 0
	for _, w := range nov.Workers {
		if w.M == Mem256 {
			small++
		}
	}
	if small != 10 {
		t.Errorf("Nov 2006 should have 10 small-memory nodes, got %d", small)
	}
}

func TestRandomReproducible(t *testing.T) {
	a := Random(8, 4, 42)
	b := Random(8, 4, 42)
	c := Random(8, 4, 43)
	if a.String() != b.String() {
		t.Error("same seed produced different platforms")
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical platforms")
	}
	for _, w := range a.Workers {
		if w.C < BaseC || w.C > 4*BaseC+1e-9 {
			t.Errorf("random c=%g outside [%g, %g]", w.C, BaseC, 4*BaseC)
		}
		if w.M < Mem256 || w.M > Mem1024 {
			t.Errorf("random m=%d outside [%d, %d]", w.M, Mem256, Mem1024)
		}
	}
}

func TestTable2(t *testing.T) {
	p := Table2(3)
	if p.Workers[0].C != 1 || p.Workers[0].W != 2 {
		t.Errorf("P1 = %+v", p.Workers[0])
	}
	if p.Workers[1].C != 3 || p.Workers[1].W != 6 {
		t.Errorf("P2 = %+v", p.Workers[1])
	}
	// Both workers must have μ = 2 under the overlapped layout.
	for _, w := range p.Workers {
		if MuOverlap(w.M) != 2 {
			t.Errorf("worker %s μ = %d, want 2", w.Name, MuOverlap(w.M))
		}
	}
	// The defining property of Table 2: 2c_i/(μ_i w_i) = 1/2 for both workers.
	for _, w := range p.Workers {
		if got := 2 * w.C / (float64(MuOverlap(w.M)) * w.W); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("worker %s: 2c/(μw) = %g, want 0.5", w.Name, got)
		}
	}
}

func TestLyonSpeedOrdering(t *testing.T) {
	p := LyonAugust2007()
	// 2.8 GHz nodes (set 4) must be the fastest (w = BaseW).
	if w := p.Workers[15].W; w != BaseW {
		t.Errorf("set4 w = %g, want %g", w, BaseW)
	}
	if !(p.Workers[0].W > p.Workers[10].W && p.Workers[10].W > p.Workers[15].W) {
		t.Error("Lyon speed ordering violated: want w(2.4) > w(2.6) > w(2.8)")
	}
}
