package platform

import (
	"fmt"
	"sort"
	"time"
)

// The paper's deployments begin with a benchmark step: "the different speeds
// are determined by sending and computing a square block of size q×q ten
// times on each worker, and computing the median of the times obtained"
// (§6.2). This file implements that estimator for the real runtimes: given
// repeated measurements of a block transfer and a block update, it produces
// the (c, w) parameters the schedulers consume.

// DefaultProbeTrials is the paper's sample count.
const DefaultProbeTrials = 10

// Median returns the median duration; for even sample counts the lower
// middle is used (the paper does not specify; a single sample is its own
// median). It panics on an empty sample, which is a caller bug.
func Median(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		panic("platform: Median of no samples")
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// Probe measures one worker's parameters: transfer and update are invoked
// trials times each and the medians, expressed in the given time unit,
// become c and w. memBlocks is reported by the worker directly (memory needs
// no statistical treatment). The measurement closures should perform one
// block transfer and one block update respectively.
func Probe(transfer, update func() time.Duration, memBlocks, trials int, unit time.Duration) (Worker, error) {
	if trials <= 0 {
		trials = DefaultProbeTrials
	}
	if unit <= 0 {
		return Worker{}, fmt.Errorf("platform: probe needs a positive time unit")
	}
	ts := make([]time.Duration, trials)
	us := make([]time.Duration, trials)
	for i := 0; i < trials; i++ {
		ts[i] = transfer()
		us[i] = update()
	}
	c := float64(Median(ts)) / float64(unit)
	w := float64(Median(us)) / float64(unit)
	if c <= 0 || w <= 0 {
		return Worker{}, fmt.Errorf("platform: probe measured non-positive times (c=%g, w=%g)", c, w)
	}
	return Worker{C: c, W: w, M: memBlocks}, nil
}

// ProbePlatform probes every worker through the supplied per-worker
// measurement functions and assembles the platform, exactly the step the
// paper runs "before each algorithm".
func ProbePlatform(n int, transfer, update func(worker int) time.Duration, mem func(worker int) int, trials int, unit time.Duration) (*Platform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("platform: probe needs at least one worker")
	}
	ws := make([]Worker, n)
	for i := 0; i < n; i++ {
		w, err := Probe(
			func() time.Duration { return transfer(i) },
			func() time.Duration { return update(i) },
			mem(i), trials, unit)
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i+1, err)
		}
		w.Name = fmt.Sprintf("P%d", i+1)
		ws[i] = w
	}
	return New(ws...)
}
