package platform

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Experimental platforms of Section 6. All times are expressed in normalized
// units: 1 time unit = one block update on the fastest machine (w = 1), and
// the reference link costs BaseC = 1.2 per block — the c/w ratio implied by
// the paper's real-platform numbers (Fig. 8: ~7800 s makespan on 11 of 20
// workers for 40M block updates gives w ≈ 2.1 ms and c ≈ 2.4 ms per block).
// Memories are expressed in block buffers via MemBlocks (1 MB ≈ 1.25 blocks
// of 80×80 float64 once runtime overheads are charged), which places the
// per-worker chunk edge μ_i in the paper's operating regime (μ ≈ 16–33).
const (
	BaseC = 1.2 // reference link cost (≈ 100 Mbps switched Ethernet)
	BaseW = 1.0 // reference compute cost (fastest node)
)

// MemBlocks converts a nominal node memory in MB to a buffer count.
func MemBlocks(mb int) int { return mb * 5 / 4 }

// Nominal memory sizes used across the experiments.
var (
	Mem256  = MemBlocks(256)  // 320 blocks, μ_overlap = 16
	Mem512  = MemBlocks(512)  // 640 blocks, μ_overlap = 23
	Mem1024 = MemBlocks(1024) // 1280 blocks, μ_overlap = 33
)

func uniform(n int, c, w float64, m int) []Worker {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = Worker{C: c, W: w, M: m}
	}
	return ws
}

// HeteroMemory is the Figure 4 platform: 8 workers homogeneous in
// communication and computation, with memories 2×256 MB, 4×512 MB, 2×1 GB.
func HeteroMemory() *Platform {
	ws := uniform(8, BaseC, BaseW, 0)
	mems := []int{Mem256, Mem256, Mem512, Mem512, Mem512, Mem512, Mem1024, Mem1024}
	for i := range ws {
		ws[i].M = mems[i]
	}
	return MustNew(ws...)
}

// HeteroComm is the Figure 5 platform: 8 workers with homogeneous memory and
// compute, and links of 10, 5 and 1 Mbps (2, 4 and 2 workers respectively);
// link cost scales inversely with bandwidth.
func HeteroComm() *Platform {
	ws := uniform(8, 0, BaseW, Mem512)
	cs := []float64{BaseC, BaseC, 2 * BaseC, 2 * BaseC, 2 * BaseC, 2 * BaseC, 10 * BaseC, 10 * BaseC}
	for i := range ws {
		ws[i].C = cs[i]
	}
	return MustNew(ws...)
}

// HeteroComp is the Figure 6 platform: 8 workers with homogeneous links and
// memory and speeds S, S/2, S/4 (2 fast, 4 medium, 2 slow).
func HeteroComp() *Platform {
	ws := uniform(8, BaseC, 0, Mem512)
	wspeeds := []float64{BaseW, BaseW, 2 * BaseW, 2 * BaseW, 2 * BaseW, 2 * BaseW, 4 * BaseW, 4 * BaseW}
	for i := range ws {
		ws[i].W = wspeeds[i]
	}
	return MustNew(ws...)
}

// FullyHetero is one of the two structured Figure 7 platforms: every
// characteristic takes a small or large value with the given ratio between
// them, and the 8 workers enumerate the 8 possible combinations.
func FullyHetero(ratio float64) *Platform {
	if ratio <= 0 {
		panic(fmt.Sprintf("platform: FullyHetero ratio %g must be positive", ratio))
	}
	ws := make([]Worker, 0, 8)
	for bits := 0; bits < 8; bits++ {
		c, w, m := BaseC, BaseW, float64(Mem1024)
		if bits&1 != 0 {
			c *= ratio
		}
		if bits&2 != 0 {
			w *= ratio
		}
		if bits&4 != 0 {
			m /= ratio
		}
		ws = append(ws, Worker{C: c, W: w, M: int(m)})
	}
	return MustNew(ws...)
}

// Random builds one of the ten random Figure 7 platforms: p workers whose
// link, speed and memory each vary by a ratio of up to maxRatio, drawn
// uniformly from a seeded generator so experiments are reproducible.
func Random(p int, maxRatio float64, seed int64) *Platform {
	rng := rand.New(rand.NewSource(seed))
	ws := make([]Worker, p)
	for i := range ws {
		ws[i] = Worker{
			C: BaseC * (1 + (maxRatio-1)*rng.Float64()),
			W: BaseW * (1 + (maxRatio-1)*rng.Float64()),
			M: Mem256 + rng.Intn(Mem1024-Mem256+1),
		}
	}
	return MustNew(ws...)
}

// LyonAugust2007 is the Figure 8(a) platform: five nodes from each of the
// four Lyon machine sets, all upgraded to 1 GB of memory. Compute costs scale
// inversely with clock speed, normalized so the 2.8 GHz nodes have w = BaseW.
func LyonAugust2007() *Platform {
	return lyon([4]int{Mem1024, Mem1024, Mem1024, Mem1024})
}

// LyonNovember2006 is the Figure 8(b) platform: same nodes before the memory
// upgrade — the 5013-GM and IDE250W sets have only 256 MB.
func LyonNovember2006() *Platform {
	return lyon([4]int{Mem256, Mem1024, Mem1024, Mem256})
}

func lyon(mems [4]int) *Platform {
	ghz := [4]float64{2.4, 2.4, 2.6, 2.8}
	var ws []Worker
	for g := 0; g < 4; g++ {
		for n := 0; n < 5; n++ {
			ws = append(ws, Worker{
				Name: fmt.Sprintf("set%d-n%d", g+1, n+1),
				C:    BaseC,
				W:    BaseW * 2.8 / ghz[g],
				M:    mems[g],
			})
		}
	}
	return MustNew(ws...)
}

// Table2 is the Section 5 counterexample platform showing the
// bandwidth-centric steady-state solution can require unbounded buffers:
// P1(c=1, w=2), P2(c=x, w=2x), both with μ = 2 (the smallest memory
// admitting the overlapped layout for μ=2 is 2²+4·2 = 12 buffers).
func Table2(x float64) *Platform {
	return MustNew(
		Worker{Name: "P1", C: 1, W: 2, M: 12},
		Worker{Name: "P2", C: x, W: 2 * x, M: 12},
	)
}

// Homogeneous builds a p-worker platform with identical parameters, the
// Section 4 setting.
func Homogeneous(p int, c, w float64, m int) *Platform {
	return MustNew(uniform(p, c, w, m)...)
}

// ParseWorkers parses the CLI worker-spec format shared by every command
// ("c:w:m,c:w:m,…"): link cost, compute cost, and memory capacity per
// worker. Whitespace around entries is tolerated; validation happens in the
// caller's New/NewFleet.
func ParseWorkers(specs string) ([]Worker, error) {
	var ws []Worker
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("platform: worker spec %q: want c:w:m", spec)
		}
		c, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("platform: worker spec %q: %w", spec, err)
		}
		w, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("platform: worker spec %q: %w", spec, err)
		}
		m, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("platform: worker spec %q: %w", spec, err)
		}
		ws = append(ws, Worker{C: c, W: w, M: m})
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("platform: no worker specs in %q", specs)
	}
	return ws, nil
}
