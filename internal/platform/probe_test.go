package platform

import (
	"testing"
	"time"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{[]time.Duration{5}, 5},
		{[]time.Duration{3, 1, 2}, 2},
		{[]time.Duration{4, 1, 3, 2}, 2}, // lower middle
		{[]time.Duration{9, 9, 1, 9, 9}, 9},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []time.Duration{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestMedianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Median(nil)
}

func TestProbeRejectsOutliers(t *testing.T) {
	// One wild outlier among the transfer samples must not move the median.
	i := 0
	transfer := func() time.Duration {
		i++
		if i == 3 {
			return time.Hour // a network hiccup
		}
		return 2 * time.Millisecond
	}
	update := func() time.Duration { return 5 * time.Millisecond }
	w, err := Probe(transfer, update, 320, 9, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if w.C != 2 || w.W != 5 || w.M != 320 {
		t.Errorf("probed worker = %+v, want c=2 w=5 m=320", w)
	}
}

func TestProbeValidation(t *testing.T) {
	ok := func() time.Duration { return time.Millisecond }
	if _, err := Probe(ok, ok, 100, 3, 0); err == nil {
		t.Error("zero unit accepted")
	}
	zero := func() time.Duration { return 0 }
	if _, err := Probe(zero, ok, 100, 3, time.Millisecond); err == nil {
		t.Error("zero transfer time accepted")
	}
}

func TestProbePlatform(t *testing.T) {
	// Three workers with distinct known parameters.
	cs := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	ws := []time.Duration{3 * time.Millisecond, 1 * time.Millisecond, 2 * time.Millisecond}
	pl, err := ProbePlatform(3,
		func(w int) time.Duration { return cs[w] },
		func(w int) time.Duration { return ws[w] },
		func(w int) int { return 100 + w },
		5, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i, wk := range pl.Workers {
		if wk.C != float64(cs[i])/float64(time.Millisecond) || wk.W != float64(ws[i])/float64(time.Millisecond) {
			t.Errorf("worker %d = %+v", i, wk)
		}
		if wk.M != 100+i {
			t.Errorf("worker %d memory = %d", i, wk.M)
		}
	}
	if _, err := ProbePlatform(0, nil, nil, nil, 1, time.Millisecond); err == nil {
		t.Error("zero workers accepted")
	}
}
