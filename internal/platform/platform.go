// Package platform models the star-shaped heterogeneous master-worker
// platforms of the paper: a master P0 with no processing capability and p
// workers, each described by a link cost c_i (time units to send or receive
// one q×q block), a compute cost w_i (time units per block update), and a
// memory capacity m_i (number of block buffers).
//
// The package also provides the three memory layouts studied in the paper —
// maximum re-use (1 + μ + μ² ≤ m), the overlapped variant (μ² + 4μ ≤ m) and
// Toledo's equal third split — plus builders for every experimental platform
// of Section 6.
package platform

import (
	"fmt"
	"math"
	"strings"
)

// Worker holds the three heterogeneity parameters of one worker P_i.
type Worker struct {
	Name string  // display name, e.g. "P3"
	C    float64 // time units for the master to send or receive one block
	W    float64 // time units to perform one block update C += A·B
	M    int     // memory capacity, in block buffers
}

// Validate reports whether the parameters are physically meaningful.
func (w Worker) Validate() error {
	if w.C <= 0 {
		return fmt.Errorf("platform: worker %s: c=%g must be > 0", w.Name, w.C)
	}
	if w.W <= 0 {
		return fmt.Errorf("platform: worker %s: w=%g must be > 0", w.Name, w.W)
	}
	if w.M < MinMemory {
		return fmt.Errorf("platform: worker %s: m=%d below minimum %d", w.Name, w.M, MinMemory)
	}
	return nil
}

// MinMemory is the smallest worker memory the algorithms can use: the
// overlapped layout needs μ ≥ 1, i.e. 1 + 4 = 5 buffers.
const MinMemory = 5

// Platform is a star network: implicit master plus workers.
type Platform struct {
	Workers []Worker
}

// New builds a validated platform from worker descriptions, naming unnamed
// workers P1..Pp.
func New(workers ...Worker) (*Platform, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("platform: need at least one worker")
	}
	ws := make([]Worker, len(workers))
	copy(ws, workers)
	for i := range ws {
		if ws[i].Name == "" {
			ws[i].Name = fmt.Sprintf("P%d", i+1)
		}
		if err := ws[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &Platform{Workers: ws}, nil
}

// MustNew is New for static configurations that cannot fail.
func MustNew(workers ...Worker) *Platform {
	p, err := New(workers...)
	if err != nil {
		panic(err)
	}
	return p
}

// P returns the number of workers.
func (p *Platform) P() int { return len(p.Workers) }

// IsHomogeneous reports whether all workers share identical c, w and m.
func (p *Platform) IsHomogeneous() bool {
	w0 := p.Workers[0]
	for _, w := range p.Workers[1:] {
		if w.C != w0.C || w.W != w0.W || w.M != w0.M {
			return false
		}
	}
	return true
}

// Subset returns a new platform containing the workers at the given indices,
// in order. Indices must be valid and distinct.
func (p *Platform) Subset(idx []int) (*Platform, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("platform: empty subset")
	}
	seen := make(map[int]bool, len(idx))
	ws := make([]Worker, 0, len(idx))
	for _, i := range idx {
		if i < 0 || i >= len(p.Workers) {
			return nil, fmt.Errorf("platform: subset index %d out of range [0,%d)", i, len(p.Workers))
		}
		if seen[i] {
			return nil, fmt.Errorf("platform: duplicate subset index %d", i)
		}
		seen[i] = true
		ws = append(ws, p.Workers[i])
	}
	return &Platform{Workers: ws}, nil
}

// String renders a compact one-line-per-worker description.
func (p *Platform) String() string {
	var b strings.Builder
	for i, w := range p.Workers {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s(c=%g w=%g m=%d)", w.Name, w.C, w.W, w.M)
	}
	return b.String()
}

// MuMaxReuse returns the largest μ with 1 + μ + μ² ≤ m: one buffer for the
// current A block, μ for a row of B blocks, μ² for the C chunk (Section 3,
// single-worker maximum re-use algorithm).
func MuMaxReuse(m int) int {
	return largestMu(m, func(mu int) int { return 1 + mu + mu*mu })
}

// MuOverlap returns the largest μ with μ² + 4μ ≤ m: μ² C blocks plus two
// double-buffered input groups of μ A and μ B blocks each (Section 4), which
// lets workers overlap the reception of step k+1 with the compute of step k.
func MuOverlap(m int) int {
	return largestMu(m, func(mu int) int { return mu*mu + 4*mu })
}

// BetaToledo returns Toledo's split: the memory is divided into three equal
// parts, each holding a square β×β chunk of one matrix, so β = ⌊√(m/3)⌋.
func BetaToledo(m int) int {
	return int(math.Sqrt(float64(m) / 3))
}

func largestMu(m int, need func(int) int) int {
	if m < need(1) {
		return 0
	}
	// need is monotone; binary search the largest feasible μ.
	lo, hi := 1, int(math.Sqrt(float64(m)))+2
	for need(hi) <= m {
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if need(mid) <= m {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// HomSelection computes the resource-selection count of the homogeneous
// algorithm (Section 4): P is the smallest integer with 2μtc·P ≥ μ²tw, i.e.
// P = ⌈μw/(2c)⌉, the number of workers that saturates the master's
// communication capacity while sustaining the corresponding computations;
// capped by the available worker count p.
func HomSelection(p int, mu int, w, c float64) int {
	if mu <= 0 {
		return 0
	}
	need := int(math.Ceil(float64(mu) * w / (2 * c)))
	if need < 1 {
		need = 1
	}
	if need > p {
		need = p
	}
	return need
}
