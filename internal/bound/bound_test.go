package bound

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestBoundOrdering(t *testing.T) {
	// For every m: old bound < new bound ≤ max-reuse CCR (the algorithm can
	// not beat the lower bound), and max-reuse beats BMM.
	for _, m := range []int{21, 57, 100, 1000, 10000} {
		old := CCRIronyToledoTiskin(m)
		opt := CCROpt(m)
		alg := CCRMaxReuseAsymptotic(m)
		bmm := CCRBMM(m, 1<<20)
		if old >= opt {
			t.Errorf("m=%d: old bound %g should be below improved bound %g", m, old, opt)
		}
		if alg < opt-1e-12 {
			t.Errorf("m=%d: algorithm CCR %g beats the lower bound %g", m, alg, opt)
		}
		if alg >= bmm {
			t.Errorf("m=%d: max-reuse CCR %g should beat BMM %g", m, alg, bmm)
		}
	}
}

func TestImprovementFactor(t *testing.T) {
	// CCROpt/CCRIronyToledoTiskin = √27 exactly.
	for _, m := range []int{10, 100, 5000} {
		ratio := CCROpt(m) / CCRIronyToledoTiskin(m)
		if math.Abs(ratio-math.Sqrt(27)) > 1e-12 {
			t.Errorf("m=%d: improvement factor %g, want √27", m, ratio)
		}
	}
}

func TestMaxReuseWithinNinePercentOfBound(t *testing.T) {
	// Paper: CCR∞ = 2/√m = √(32/(8m)), within √(32/27) of the bound. With
	// integer μ the gap is slightly larger; it must still stay below 15% for
	// large m.
	for _, m := range []int{1000, 10000, 100000} {
		gap := CCRMaxReuseAsymptotic(m) / CCROpt(m)
		if gap < 1 || gap > 1.15 {
			t.Errorf("m=%d: max-reuse/bound = %g, want within [1, 1.15]", m, gap)
		}
	}
}

func TestBMMSqrt3Factor(t *testing.T) {
	// Asymptotically CCR_BMM/CCR_maxreuse → √3 (integer effects allowed).
	m := 3_000_000
	ratio := CCRBMM(m, 1<<20) / CCRMaxReuseAsymptotic(m)
	if math.Abs(ratio-math.Sqrt(3)) > 0.02 {
		t.Errorf("BMM/max-reuse CCR ratio = %g, want ≈ √3", ratio)
	}
}

func TestCCRMaxReuseFormula(t *testing.T) {
	// m = 21 → μ = 4; CCR = 2/t + 1/2.
	got := CCRMaxReuse(21, 100)
	want := 2.0/100 + 2.0/4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CCRMaxReuse(21, 100) = %g, want %g", got, want)
	}
	if !math.IsInf(CCRMaxReuse(2, 100), 1) {
		t.Error("m too small should give infinite CCR")
	}
	if !math.IsInf(CCRMaxReuse(21, 0), 1) {
		t.Error("t=0 should give infinite CCR")
	}
}

func TestLoomisWhitney(t *testing.T) {
	if got := LoomisWhitney(4, 9, 16); got != 24 {
		t.Errorf("LoomisWhitney(4,9,16) = %g, want 24", got)
	}
	if got := LoomisWhitney(0, 9, 16); got != 0 {
		t.Errorf("no A blocks should allow no updates, got %g", got)
	}
}

func TestMaxUpdatesPerWindow(t *testing.T) {
	// m = 6: (2·6/3)^{3/2} = 4^{1.5} = 8.
	if got := MaxUpdatesPerWindow(6); math.Abs(got-8) > 1e-12 {
		t.Errorf("MaxUpdatesPerWindow(6) = %g, want 8", got)
	}
}

func TestMaxReuseStreamMatchesCCRFormula(t *testing.T) {
	m, tt, chunks := 21, 50, 3
	stream := MaxReuseStream(m, tt, chunks)
	mu := platform.MuMaxReuse(m)
	wantComms := chunks * (2*mu*mu + tt*2*mu)
	wantUpdates := int64(chunks) * int64(mu*mu) * int64(tt)
	if got := CommSteps(stream); got != wantComms {
		t.Errorf("comm steps = %d, want %d", got, wantComms)
	}
	if got := TotalUpdates(stream); got != wantUpdates {
		t.Errorf("updates = %d, want %d", got, wantUpdates)
	}
	res := Audit(stream, m)
	if math.Abs(res.CCR-CCRMaxReuse(m, tt)) > 1e-12 {
		t.Errorf("stream CCR = %g, formula = %g", res.CCR, CCRMaxReuse(m, tt))
	}
}

func TestAuditAcceptsMaxReuse(t *testing.T) {
	// The maximum re-use algorithm must satisfy the Loomis–Whitney window
	// bound — it is a valid schedule.
	for _, m := range []int{21, 57, 111} {
		stream := MaxReuseStream(m, 40, 2)
		res := Audit(stream, m)
		if res.Violated {
			t.Errorf("m=%d: valid max-reuse schedule flagged as violating (worst ratio %g)", m, res.WorstRatio)
		}
		if res.WorstRatio <= 0 {
			t.Errorf("m=%d: expected a positive worst ratio", m)
		}
	}
}

func TestAuditRejectsImpossibleSchedule(t *testing.T) {
	// A schedule claiming 10× the possible updates per window must be caught.
	m := 21
	impossible := []Step{}
	for i := 0; i < m; i++ {
		impossible = append(impossible, Step{Comm: true})
	}
	impossible = append(impossible, Step{Updates: int64(10 * MaxUpdatesPerWindow(m))})
	impossible = append(impossible, Step{Comm: true}) // close the window
	for i := 0; i < m; i++ {
		impossible = append(impossible, Step{Comm: true})
	}
	res := Audit(impossible, m)
	if !res.Violated {
		t.Errorf("impossible schedule passed the audit (worst ratio %g)", res.WorstRatio)
	}
}

func TestAuditEmptyAndCommFree(t *testing.T) {
	res := Audit(nil, 10)
	if res.Violated {
		t.Error("empty stream flagged")
	}
	res = Audit([]Step{{Updates: 100}}, 10)
	if res.Violated || res.CCR != 0 {
		t.Errorf("comm-free stream should have CCR 0 and pass: %+v", res)
	}
	res = Audit([]Step{{Comm: true}}, 10)
	if res.Violated || !math.IsInf(res.CCR, 1) {
		t.Errorf("update-free stream should have infinite CCR and pass: %+v", res)
	}
}

// Property: for any chunk count/t/m, the max-reuse stream never violates the
// window bound, and its CCR decreases (weakly) in m.
func TestMaxReuseAuditProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := 7 + int(abs64(seed)%200)
		tt := 1 + int(abs64(seed/7)%60)
		stream := MaxReuseStream(m, tt, 1+int(abs64(seed/13)%3))
		return !Audit(stream, m).Violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCCRMonotoneInMemory(t *testing.T) {
	prev := math.Inf(1)
	for m := 10; m <= 100000; m *= 3 {
		ccr := CCRMaxReuseAsymptotic(m)
		if ccr > prev {
			t.Fatalf("CCR increased with memory at m=%d: %g > %g", m, ccr, prev)
		}
		prev = ccr
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
