package bound

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptimalSplitIsEqualThirds(t *testing.T) {
	for _, m := range []int{21, 100, 1021} {
		a, b, g, v := OptimalSplit(m)
		want := 2 * float64(m) / 3
		if math.Abs(a-want) > 0.01*want || math.Abs(b-want) > 0.01*want || math.Abs(g-want) > 0.01*want {
			t.Errorf("m=%d: optimal split (%.2f, %.2f, %.2f), want thirds of %g", m, a, b, g, 2*float64(m))
		}
		if math.Abs(v-MaxUpdatesPerWindow(m)) > 0.01*v {
			t.Errorf("m=%d: optimal value %g, closed form %g", m, v, MaxUpdatesPerWindow(m))
		}
	}
}

func TestWindowUpdates(t *testing.T) {
	if WindowUpdates(4, 9, 16) != 24 {
		t.Errorf("WindowUpdates(4,9,16) = %g", WindowUpdates(4, 9, 16))
	}
	if WindowUpdates(-1, 1, 1) != 0 {
		t.Error("negative split should give 0")
	}
}

// Property: no random split beats the closed-form optimum.
func TestNoSplitBeatsClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		m := 10 + int(seed%1000+1000)%1000
		bound := MaxUpdatesPerWindow(m)
		total := 2 * float64(m)
		// Deterministic pseudo-random split from the seed.
		x := float64((seed*2654435761)%1000) / 1000
		y := float64((seed*40503)%1000) / 1000
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		a := total * x * 0.999
		b := (total - a) * y * 0.999
		g := total - a - b
		return WindowUpdates(a, b, g) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCCRElements(t *testing.T) {
	if got := CCRElements(0.08, 80); math.Abs(got-0.001) > 1e-15 {
		t.Errorf("CCRElements = %g, want 0.001", got)
	}
}
