// Package bound implements the communication-volume theory of Section 3: the
// paper's improved lower bound on the communication-to-computation ratio
// under an m-buffer memory, the earlier Ironya–Toledo–Tiskin bound it
// tightens, the closed-form CCR of the maximum re-use algorithm and of
// Toledo's block algorithm, and a Loomis–Whitney auditor that checks executed
// schedules against the theory.
//
// Units: one communication is one q×q block moved between master and worker;
// one computation is one block update C_ij += A_ik·B_kj. (In terms of matrix
// elements both ratios shrink by a factor q, since a block carries q²
// elements while an update performs q³ multiply-adds.)
package bound

import (
	"math"

	"repro/internal/platform"
)

// CCROpt is the paper's lower bound: any standard matrix-multiplication
// schedule on a worker with m buffers has CCR ≥ √(27/(8m)). Derived by
// maximizing the Loomis–Whitney volume over a window of m communications
// (Section 3).
func CCROpt(m int) float64 { return math.Sqrt(27 / (8 * float64(m))) }

// CCRIronyToledoTiskin is the previous best-known bound √(1/(8m)) that
// Section 3 improves by a factor √27.
func CCRIronyToledoTiskin(m int) float64 { return math.Sqrt(1 / (8 * float64(m))) }

// MaxUpdatesPerWindow bounds the block updates achievable during any m
// consecutive communication steps: the memory holds at most m blocks before
// the window and receives at most m more, and Loomis–Whitney gives
// K ≤ √(N_A·N_B·N_C), maximized when each matrix gets 2m/3 blocks:
// K ≤ (2m/3)^{3/2}.
func MaxUpdatesPerWindow(m int) float64 { return math.Pow(2*float64(m)/3, 1.5) }

// LoomisWhitney returns the maximum number of standard-algorithm block
// updates possible when na blocks of A, nb of B and nc of C are accessible:
// √(na·nb·nc).
func LoomisWhitney(na, nb, nc int) float64 {
	return math.Sqrt(float64(na) * float64(nb) * float64(nc))
}

// CCRMaxReuse is the exact communication-to-computation ratio of the maximum
// re-use algorithm with m buffers over t block-column steps:
// (2μ² + 2μt)/(μ²t) = 2/t + 2/μ, with μ the largest integer such that
// 1 + μ + μ² ≤ m.
func CCRMaxReuse(m, t int) float64 {
	mu := platform.MuMaxReuse(m)
	if mu == 0 || t == 0 {
		return math.Inf(1)
	}
	return 2/float64(t) + 2/float64(mu)
}

// CCRMaxReuseAsymptotic is the t→∞ limit 2/μ ≈ 2/√m = √(32/(8m)), within a
// factor √(32/27) ≈ 1.09 of the lower bound CCROpt.
func CCRMaxReuseAsymptotic(m int) float64 {
	mu := platform.MuMaxReuse(m)
	if mu == 0 {
		return math.Inf(1)
	}
	return 2 / float64(mu)
}

// CCRBMM is the ratio of Toledo's blocked algorithm, which splits the memory
// into three equal square buffers of edge β = ⌊√(m/3)⌋: 2/t + 2/β,
// asymptotically 2√3/√m — a factor √3 above the maximum re-use algorithm.
func CCRBMM(m, t int) float64 {
	beta := platform.BetaToledo(m)
	if beta == 0 || t == 0 {
		return math.Inf(1)
	}
	return 2/float64(t) + 2/float64(beta)
}

// Step is one element of a worker-side access stream: either one block
// communicated (Comm = true) or a batch of Updates block updates performed
// between communications.
type Step struct {
	Comm    bool
	Updates int64
}

// CommSteps counts the communication steps in a stream.
func CommSteps(stream []Step) int {
	n := 0
	for _, s := range stream {
		if s.Comm {
			n++
		}
	}
	return n
}

// TotalUpdates sums the update steps in a stream.
func TotalUpdates(stream []Step) int64 {
	var n int64
	for _, s := range stream {
		if !s.Comm {
			n += s.Updates
		}
	}
	return n
}

// AuditResult reports how close a schedule came to the Loomis–Whitney window
// bound. Violated is true when some window of m communications performed more
// updates than MaxUpdatesPerWindow(m) allows — i.e. the schedule claims
// physically impossible data re-use.
type AuditResult struct {
	Violated   bool
	WorstRatio float64 // max over windows of updates/bound; ≤ 1 for any valid schedule
	CCR        float64 // total communications / total updates
}

// Audit slides a window of m consecutive communications over the stream and
// verifies the Section 3 counting argument. Update steps between the
// window's communications are attributed to the window.
func Audit(stream []Step, m int) AuditResult {
	res := AuditResult{}
	bound := MaxUpdatesPerWindow(m)
	// Prefix sums over the stream, windows delimited by communication steps.
	var commPos []int
	for idx, s := range stream {
		if s.Comm {
			commPos = append(commPos, idx)
		}
	}
	prefix := make([]int64, len(stream)+1)
	for i, s := range stream {
		prefix[i+1] = prefix[i]
		if !s.Comm {
			prefix[i+1] += s.Updates
		}
	}
	total := prefix[len(stream)]
	comms := int64(len(commPos))
	if total > 0 {
		res.CCR = float64(comms) / float64(total)
	} else {
		res.CCR = math.Inf(1)
	}
	if len(commPos) == 0 {
		return res
	}
	for w := 0; w+m <= len(commPos); w++ {
		// Window spans from just after comm w-1 to the end of comm w+m-1's
		// following compute run (exclusive of the next communication).
		start := 0
		if w > 0 {
			start = commPos[w-1] + 1
		}
		end := len(stream)
		if w+m < len(commPos) {
			end = commPos[w+m]
		}
		updates := prefix[end] - prefix[start]
		ratio := float64(updates) / bound
		if ratio > res.WorstRatio {
			res.WorstRatio = ratio
		}
	}
	res.Violated = res.WorstRatio > 1+1e-9
	return res
}

// MaxReuseStream generates the worker-side access stream of the maximum
// re-use algorithm for an m-buffer worker processing nChunks μ×μ chunks over
// t steps each — used to validate the algorithm against Audit and the CCR
// formulas.
func MaxReuseStream(m, t, nChunks int) []Step {
	mu := platform.MuMaxReuse(m)
	if mu == 0 {
		return nil
	}
	var stream []Step
	for n := 0; n < nChunks; n++ {
		for i := 0; i < mu*mu; i++ { // receive C chunk
			stream = append(stream, Step{Comm: true})
		}
		for k := 0; k < t; k++ {
			for j := 0; j < mu; j++ { // row of B
				stream = append(stream, Step{Comm: true})
			}
			for i := 0; i < mu; i++ { // column of A, each updating μ C blocks
				stream = append(stream, Step{Comm: true})
				stream = append(stream, Step{Updates: int64(mu)})
			}
		}
		for i := 0; i < mu*mu; i++ { // return C chunk
			stream = append(stream, Step{Comm: true})
		}
	}
	return stream
}
