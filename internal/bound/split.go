package bound

import "math"

// Section 3 derives the lower bound by asking how much memory to devote to
// each matrix during a window of m communications: with α blocks of A, β of
// B and γ of C accessible, Loomis–Whitney allows at most √(αβγ) updates, and
// the window gives 2m blocks in total (m resident + m received). This file
// makes that optimization executable so tests can confirm the paper's
// "equal thirds" conclusion numerically instead of taking it on faith.

// WindowUpdates returns the Loomis–Whitney update bound for a split
// (α, β, γ) of the 2m window blocks.
func WindowUpdates(alpha, beta, gamma float64) float64 {
	if alpha < 0 || beta < 0 || gamma < 0 {
		return 0
	}
	return math.Sqrt(alpha * beta * gamma)
}

// OptimalSplit maximizes WindowUpdates over α+β+γ = 2m by ternary-searching
// the two free coordinates. It returns the maximizing split and its value.
// (Analytically the optimum is α=β=γ=2m/3 with value (2m/3)^{3/2}; the
// numeric version exists to validate the closed form.)
func OptimalSplit(m int) (alpha, beta, gamma, updates float64) {
	total := 2 * float64(m)
	best := -1.0
	// Coarse grid then local refinement: the objective is smooth and
	// unimodal on the simplex.
	step := total / 200
	for a := step; a < total; a += step {
		for b := step; a+b < total; b += step {
			v := WindowUpdates(a, b, total-a-b)
			if v > best {
				best, alpha, beta = v, a, b
			}
		}
	}
	for iter := 0; iter < 60; iter++ {
		step /= 1.3
		improved := false
		for _, da := range []float64{-step, 0, step} {
			for _, db := range []float64{-step, 0, step} {
				a, b := alpha+da, beta+db
				if a <= 0 || b <= 0 || a+b >= total {
					continue
				}
				if v := WindowUpdates(a, b, total-a-b); v > best {
					best, alpha, beta = v, a, b
					improved = true
				}
			}
		}
		if !improved && step < 1e-9 {
			break
		}
	}
	gamma = total - alpha - beta
	return alpha, beta, gamma, best
}

// CCRElements converts a block-level communication-to-computation ratio to
// matrix-element units: a block moves q² coefficients while an update does
// q³ multiply-adds, so the element-level ratio shrinks by the factor q — the
// paper's justification for large q (it uses q = 80 "to harness Level 3
// BLAS").
func CCRElements(blockCCR float64, q int) float64 {
	return blockCCR / float64(q)
}
