package sched

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/sim"
)

// HetWithEstimates plans the heterogeneous algorithm using *estimated*
// platform parameters — the paper's deployments measure c_i and w_i with a
// short benchmark whose median can be off — and then executes the chosen
// plan on the true platform. The variant is picked by the makespan simulated
// under the estimates (all the master knows at decision time). Memories must
// match: μ_i derives from m_i and a mis-sized chunk would violate real
// buffers, whereas the paper's benchmark step reads memory exactly.
func HetWithEstimates(truePl, estPl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if truePl.P() != estPl.P() {
		return nil, fmt.Errorf("sched: platforms have %d vs %d workers", truePl.P(), estPl.P())
	}
	for i := range truePl.Workers {
		if truePl.Workers[i].M != estPl.Workers[i].M {
			return nil, fmt.Errorf("sched: estimated memory differs on %s", truePl.Workers[i].Name)
		}
	}
	var bestQueues [][]sim.Job
	bestSpan := math.Inf(1)
	bestVariant := ""
	for _, v := range Variants() {
		queues, err := selectChunks(estPl, inst, v)
		if err != nil {
			return nil, err
		}
		est, err := sim.Run(sim.Config{
			Platform: estPl,
			Source:   sim.NewStatic(queues),
			Policy:   &sim.Priority{Label: "het-est"},
			Name:     "het-estimate",
		})
		if err != nil {
			return nil, err
		}
		if est.Makespan < bestSpan {
			bestSpan = est.Makespan
			bestVariant = v.String()
			// Re-plan: queues were consumed by the estimate run's Static
			// source positions? NewStatic tracks positions internally; the
			// job slices themselves are untouched, so reuse is safe.
			bestQueues = queues
		}
	}
	res, err := sim.Run(sim.Config{
		Platform: truePl,
		Source:   sim.NewStatic(bestQueues),
		Policy:   &sim.Priority{Label: "het-real"},
		Name:     "Het[estimated]",
	})
	if err != nil {
		return nil, err
	}
	return finish("Het[estimated]", res, inst, "planned as "+bestVariant)
}

// Perturb returns a copy of the platform with every link and compute cost
// multiplied by an independent factor in [1/(1+eps), 1+eps] — the
// measurement noise model for the robustness experiment. Memories are
// unchanged. The seed makes experiments reproducible.
func Perturb(pl *platform.Platform, eps float64, seed int64) *platform.Platform {
	rng := rand.New(rand.NewSource(seed))
	ws := make([]platform.Worker, pl.P())
	factor := func() float64 {
		f := 1 + eps*rng.Float64()
		if rng.Intn(2) == 0 {
			return 1 / f
		}
		return f
	}
	for i, w := range pl.Workers {
		ws[i] = platform.Worker{Name: w.Name, C: w.C * factor(), W: w.W * factor(), M: w.M}
	}
	return platform.MustNew(ws...)
}
