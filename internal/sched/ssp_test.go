package sched

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/steady"
)

func TestSSPCompletesAndConserves(t *testing.T) {
	pl := testPlatform()
	res, err := SSP{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Updates != testInstance.Updates() {
		t.Errorf("updates = %d, want %d", res.Stats.Updates, testInstance.Updates())
	}
}

func TestSSPEnrollsOnlySteadyStateWorkers(t *testing.T) {
	// A worker with a dreadful link is excluded by the bandwidth-centric
	// greedy once the master saturates; SSP must not enroll it.
	pl := platform.MustNew(
		platform.Worker{C: 0.5, W: 1, M: 100},
		platform.Worker{C: 0.5, W: 1, M: 100},
		platform.Worker{C: 50, W: 1, M: 100},
	)
	alloc := steady.BandwidthCentric(pl)
	res, err := SSP{}.Schedule(pl, Instance{R: 16, S: 48, T: 12})
	if err != nil {
		t.Fatal(err)
	}
	enrolled := map[int]bool{}
	for _, w := range res.Enrolled {
		enrolled[w] = true
	}
	allowed := map[int]bool{}
	for _, w := range alloc.Enrolled {
		allowed[w] = true
	}
	for w := range enrolled {
		if !allowed[w] {
			t.Errorf("SSP enrolled P%d which the steady state excludes", w+1)
		}
	}
}

func TestSSPRespectsSteadyBound(t *testing.T) {
	pl := testPlatform()
	res, err := SSP{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	lb := steady.MakespanLowerBound(pl, testInstance.R, testInstance.S, testInstance.T)
	if res.Stats.Makespan < lb-1e-9 {
		t.Errorf("SSP makespan %v beats the steady-state bound %v", res.Stats.Makespan, lb)
	}
}

func TestSSPSharesFollowRates(t *testing.T) {
	// Two workers, one twice as fast: its share of updates should be roughly
	// twice the other's (up to chunk granularity).
	pl := platform.MustNew(
		platform.Worker{C: 0.2, W: 1, M: 100},
		platform.Worker{C: 0.2, W: 2, M: 100},
	)
	res, err := SSP{}.Schedule(pl, Instance{R: 24, S: 96, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	var u [2]int64
	for _, c := range res.Trace.Computes {
		u[c.Worker] += c.Updates
	}
	ratio := float64(u[0]) / float64(u[1])
	if ratio < 1.5 || ratio > 2.7 {
		t.Errorf("update ratio fast/slow = %.2f, want ≈ 2", ratio)
	}
}
