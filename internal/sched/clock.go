package sched

import (
	"math"
	"sort"

	"repro/internal/platform"
)

// serveClock is the fast analytical model used at selection time by OMMOML
// and by Het's phase-1 resource selection. It schedules chunk deliveries on
// the master's one-port timeline installment by installment, with each
// installment gated by the receiving worker's double-buffered layout
// (installment k cannot start arriving before installment k-2 has finished
// computing — the paper's "ready times": a busy worker cannot receive data
// too much in advance, as its memory is limited).
//
// Unlike a naive serial model, the master does not block during those gated
// waits: the free intervals it leaves behind remain available to later
// assignments targeting other workers, exactly as the phase-2 execution
// interleaves installments of concurrently active chunks. The timeline is a
// list of free gaps, each placement consuming first-fit space.
type serveClock struct {
	pl          *platform.Platform
	gaps        []gap // ascending free intervals; the last extends to +Inf
	lastCommEnd float64
	computeEnd  []float64 // per-worker compute chain end
	ce1, ce2    []float64 // per-worker compute ends of the last two installments
	lastArrive  []float64 // per-worker end of the last delivered installment
	sentC       []bool    // per-worker: has it ever received a C chunk
	feasible    []bool    // per-worker: can hold the layout (μ > 0)
	work        float64   // total updates assigned so far
	busy        float64   // total master port occupancy committed so far
}

type gap struct{ start, end float64 }

func newServeClock(pl *platform.Platform) *serveClock {
	p := pl.P()
	sc := &serveClock{
		pl:         pl,
		gaps:       []gap{{0, math.Inf(1)}},
		computeEnd: make([]float64, p),
		ce1:        make([]float64, p),
		ce2:        make([]float64, p),
		lastArrive: make([]float64, p),
		sentC:      make([]bool, p),
		feasible:   make([]bool, p),
	}
	for i, w := range pl.Workers {
		sc.feasible[i] = platform.MuOverlap(w.M) > 0
	}
	return sc
}

func (sc *serveClock) clone() *serveClock {
	c := *sc
	c.gaps = append([]gap(nil), sc.gaps...)
	c.computeEnd = append([]float64(nil), sc.computeEnd...)
	c.ce1 = append([]float64(nil), sc.ce1...)
	c.ce2 = append([]float64(nil), sc.ce2...)
	c.lastArrive = append([]float64(nil), sc.lastArrive...)
	c.sentC = append([]bool(nil), sc.sentC...)
	return &c
}

// horizon is the time the master has "spent" so far in the §5 sense — "either
// sending data to workers or staying idle waiting for the workers to finish
// their current computations": the latest of the port's total occupancy, the
// last scheduled communication's completion and the busiest worker's compute
// completion. No schedule of the work assigned so far can finish earlier, so
// the greedy ratio work/horizon steers toward the allocation minimizing the
// binding resource — the master's port when communication dominates (enroll
// the large-memory, fast-link workers: fewer input blocks per update), the
// compute pool when it does not (balance compute ends).
func (sc *serveClock) horizon() float64 {
	h := sc.lastCommEnd
	if sc.busy > h {
		h = sc.busy
	}
	for i, ce := range sc.computeEnd {
		if sc.feasible[i] && ce > h {
			h = ce
		}
	}
	return h
}

// place books the earliest interval of length dur starting at or after ready
// on the master timeline and returns its start. Gaps are disjoint and sorted,
// so both starts and ends are ascending: binary search skips every gap that
// closes before ready, which keeps selection quasi-linear even when busy
// workers leave thousands of waiting gaps behind.
func (sc *serveClock) place(ready, dur float64) float64 {
	lo := sort.Search(len(sc.gaps), func(i int) bool { return sc.gaps[i].end > ready })
	for i := lo; i < len(sc.gaps); i++ {
		g := sc.gaps[i]
		start := g.start
		if ready > start {
			start = ready
		}
		if start+dur > g.end {
			continue
		}
		// Consume [start, start+dur) out of g.
		tail := gap{start + dur, g.end}
		if start > g.start {
			sc.gaps[i] = gap{g.start, start}
			if tail.end-tail.start > 1e-12 {
				sc.gaps = append(sc.gaps, gap{})
				copy(sc.gaps[i+2:], sc.gaps[i+1:])
				sc.gaps[i+1] = tail
			}
		} else if tail.end-tail.start > 1e-12 {
			sc.gaps[i] = tail
		} else {
			sc.gaps = append(sc.gaps[:i], sc.gaps[i+1:]...)
		}
		return start
	}
	// Unreachable: the final gap is infinite.
	panic("sched: serveClock found no gap")
}

// assign schedules one h×w chunk of t installments for worker i as early as
// the one-port timeline and the worker's buffers allow. countC additionally
// books the initial C-chunk transfer the first time worker i ever receives
// data (the paper's optional variant). It returns the end of the chunk's
// last communication and the chunk's compute completion, and updates the
// clock (call on a clone to evaluate a hypothesis).
func (sc *serveClock) assign(i, h, w, t int, countC bool) (lastComm, computeDone float64) {
	wk := sc.pl.Workers[i]
	if countC && !sc.sentC[i] {
		dur := float64(h*w) * wk.C
		end := sc.place(sc.lastArrive[i], dur) + dur
		sc.lastArrive[i] = end
		sc.busy += dur
		sc.lastCommEnd = math.Max(sc.lastCommEnd, end)
	}
	sc.sentC[i] = true
	blocks := float64(h+w) * wk.C
	updates := float64(h*w) * wk.W
	sc.busy += blocks * float64(t)
	for k := 0; k < t; k++ {
		// In-order delivery per worker, gated by the double buffer.
		ready := math.Max(sc.ce2[i], sc.lastArrive[i])
		arrive := sc.place(ready, blocks) + blocks
		sc.lastArrive[i] = arrive
		ce := math.Max(arrive, sc.computeEnd[i]) + updates
		sc.ce2[i], sc.ce1[i] = sc.ce1[i], ce
		sc.computeEnd[i] = ce
		if k == t-1 {
			lastComm = arrive
		}
	}
	sc.work += float64(h*w) * float64(t)
	sc.lastCommEnd = math.Max(sc.lastCommEnd, lastComm)
	sc.prune()
	return lastComm, sc.computeEnd[i]
}

// maxGaps caps the free-interval list. Candidate probes clone the clock, so
// an unbounded list makes selection quadratic in the schedule length; old
// gaps are the least likely to be usable (every active worker's ready time
// only grows), so the oldest are dropped first. Dropping a gap is
// conservative: a placement that would have used it lands later instead.
const maxGaps = 512

// prune drops gaps that no worker can use anymore — those closing before
// every worker's earliest possible next ready time — then enforces maxGaps.
func (sc *serveClock) prune() {
	watermark := math.Inf(1)
	for i := range sc.computeEnd {
		if !sc.feasible[i] {
			continue
		}
		ready := math.Max(sc.ce2[i], sc.lastArrive[i])
		if ready < watermark {
			watermark = ready
		}
	}
	cut := 0
	for cut < len(sc.gaps)-1 && sc.gaps[cut].end <= watermark {
		cut++
	}
	if over := len(sc.gaps) - cut - maxGaps; over > 0 {
		cut += over
	}
	if cut > 0 {
		sc.gaps = sc.gaps[cut:]
	}
}
