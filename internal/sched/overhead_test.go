package sched

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/trace"
)

// TestStartupOverheadBound validates the Section 4 analysis: sequentializing
// the C-chunk I/O with each worker's compute loses at most ~2cP time units
// per t·w of work, a fraction the paper bounds by (μ/t + 2c/(t·w)) per round
// and illustrates at ≤ 4% for c=2, w=4.5, μ=4, t=100 with P=5 workers.
func TestStartupOverheadBound(t *testing.T) {
	c, w := 2.0, 4.5
	mu, tt := 4, 100
	// m with μ_overlap = 4: 4²+16 = 32.
	pl := platform.Homogeneous(8, c, w, 32)
	// The paper assumes r divisible by μ and s by P·μ (P = 5 here): 15
	// column groups make 3 full batches per row stripe, r = 3μ.
	inst := Instance{R: 3 * mu, S: 15 * mu, T: tt}
	res, err := Hom{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	p := len(res.Enrolled)
	if p != 5 {
		t.Fatalf("enrolled %d workers, paper's example expects 5", p)
	}
	// P is chosen to saturate the master, so the makespan is master-bound:
	// the §4 claim is that the sequentialized C I/O adds only a small slice
	// to the master's load and the port stays busy. Check both: (a) C
	// traffic is a small fraction of the port time, (b) the master idles
	// little beyond it.
	var cTime, inputTime float64
	for _, tr := range res.Trace.Transfers {
		d := tr.End - tr.Start
		if tr.Kind == trace.SendAB {
			inputTime += d
		} else {
			cTime += d
		}
	}
	if share := cTime / (cTime + inputTime); share > 0.06 {
		t.Errorf("C I/O share of port time = %.1f%%, want ≤ 6%% (≈ 2μ/(2μ+... ) = 4%% here)", 100*share)
	}
	if idle := res.Stats.Makespan/res.Stats.MasterBusy - 1; idle > 0.10 {
		t.Errorf("master idle fraction = %.1f%%, want ≤ 10%% (fill/drain only)", 100*idle)
	}
}

// TestPlanCoversCExactly: every scheduler's emitted plan must send each C
// block exactly once and receive it exactly once — the conservation law at
// the data-coordinate level (finish() checks update counts; this checks
// geometry).
func TestPlanCoversCExactly(t *testing.T) {
	pl := testPlatform()
	inst := Instance{R: 11, S: 29, T: 7}
	for _, s := range allSchedulers() {
		res, err := s.Schedule(pl, inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var sent, recv []matrix.Chunk
		for _, op := range res.Plan() {
			switch op.Kind {
			case trace.SendC:
				sent = append(sent, op.Chunk)
			case trace.RecvC:
				recv = append(recv, op.Chunk)
			}
		}
		if !matrix.CoverExactly(sent, inst.R, inst.S) {
			t.Errorf("%s: SendC chunks do not tile C exactly", s.Name())
		}
		if !matrix.CoverExactly(recv, inst.R, inst.S) {
			t.Errorf("%s: RecvC chunks do not tile C exactly", s.Name())
		}
	}
}

// TestPlanPanelsCoverT: within each chunk, the SendAB panels must cover the
// inner dimension [0, t) exactly once.
func TestPlanPanelsCoverT(t *testing.T) {
	pl := testPlatform()
	inst := Instance{R: 9, S: 17, T: 8}
	for _, s := range allSchedulers() {
		res, err := s.Schedule(pl, inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		type key struct{ r, c int }
		covered := map[key][]bool{}
		for _, op := range res.Plan() {
			if op.Kind != trace.SendAB {
				continue
			}
			k := key{op.Chunk.Row0, op.Chunk.Col0}
			if covered[k] == nil {
				covered[k] = make([]bool, inst.T)
			}
			for kk := op.K0; kk < op.K1; kk++ {
				if covered[k][kk] {
					t.Fatalf("%s: chunk %v panel %d delivered twice", s.Name(), op.Chunk, kk)
				}
				covered[k][kk] = true
			}
		}
		for k, slots := range covered {
			for kk, ok := range slots {
				if !ok {
					t.Fatalf("%s: chunk at (%d,%d) missing panel %d", s.Name(), k.r, k.c, kk)
				}
			}
		}
	}
}

// TestDoubleBufferingHelps: the ablation must show the 4μ spare buffers of
// the overlapped layout reduce the makespan against a single-buffered run on
// a balanced platform.
func TestDoubleBufferingHelps(t *testing.T) {
	pl := platform.Homogeneous(3, 2, 1, 320)
	inst := Instance{R: 32, S: 96, T: 32}
	single, err := AblateSingleBuffer(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ODDOML{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Makespan >= single {
		t.Errorf("double-buffered %v should beat single-buffered %v", res.Stats.Makespan, single)
	}
}

// TestMultiPortAblationNeverWorse: removing the one-port constraint can only
// help.
func TestMultiPortAblationNeverWorse(t *testing.T) {
	pl := platform.HeteroComm()
	inst := Instance{R: 15, S: 60, T: 15}
	multi, err := AblateMultiPort(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ODDOML{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	if multi > res.Stats.Makespan+1e-9 {
		t.Errorf("multi-port %v worse than one-port %v", multi, res.Stats.Makespan)
	}
}
