// Package sched implements every scheduling algorithm of the paper's
// experimental section (§6) plus the single-worker maximum re-use algorithm
// of §3:
//
//   - MaxReuse — the §3 memory layout on one worker (1 + μ + μ² buffers)
//   - Hom / HomI — the homogeneous algorithm (§4) run on the best virtual
//     homogeneous platform extracted from a heterogeneous one
//   - Het — the heterogeneous algorithm (§5): incremental resource selection
//     in eight variants, then execution following the selection order
//   - ORROML — overlapped round-robin with the optimized memory layout
//   - OMMOML — overlapped min-min (minimum completion time) assignment
//   - ODDOML — overlapped demand-driven dispatch
//   - BMM — Toledo's block matrix multiply baseline (equal-thirds layout)
//
// All schedulers produce a one-port trace via internal/sim and report the
// paper's measurements (makespan, enrolled workers, communication volume).
package sched

import (
	"fmt"
	"sort"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Instance is one matrix-product problem: C (r×s blocks) += A (r×t)·B (t×s).
type Instance struct {
	R, S, T int
}

// Validate rejects degenerate problems.
func (in Instance) Validate() error {
	if in.R <= 0 || in.S <= 0 || in.T <= 0 {
		return fmt.Errorf("sched: invalid instance %+v", in)
	}
	return nil
}

// Updates is the total number of block updates of the instance.
func (in Instance) Updates() int64 { return int64(in.R) * int64(in.S) * int64(in.T) }

// Result is one scheduled-and-executed run.
type Result struct {
	Algorithm string
	Trace     *trace.Trace
	Stats     trace.Stats
	Enrolled  []int  // worker indices that received work
	Note      string // algorithm-specific detail (chosen variant, virtual platform, …)
	plan      []sim.PlanOp
}

// Plan returns the executed master program with full data coordinates, ready
// for replay by the real execution engines. For schedulers that run on a
// subset platform (Hom, HomI) the worker indices are remapped to the original
// platform.
func (r *Result) Plan() []sim.PlanOp { return r.plan }

// Scheduler plans and executes an instance on a platform.
type Scheduler interface {
	Name() string
	Schedule(pl *platform.Platform, inst Instance) (*Result, error)
}

// mus returns per-worker chunk edges under the overlapped layout, 0 meaning
// the worker cannot participate.
func mus(pl *platform.Platform) []int {
	out := make([]int, pl.P())
	for i, w := range pl.Workers {
		out[i] = platform.MuOverlap(w.M)
	}
	return out
}

// finish turns a finished simulation into a Result, validating the trace and
// checking the conservation law: every C block updated exactly T times.
func finish(name string, res *sim.Result, inst Instance, note string) (*Result, error) {
	if err := res.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	st := res.Trace.Stats()
	if st.Updates != inst.Updates() {
		return nil, fmt.Errorf("%s: executed %d block updates, want %d — scheduler lost or duplicated work",
			name, st.Updates, inst.Updates())
	}
	enrolled := map[int]bool{}
	for _, tr := range res.Trace.Transfers {
		enrolled[tr.Worker] = true
	}
	idx := make([]int, 0, len(enrolled))
	for w := range enrolled {
		idx = append(idx, w)
	}
	sort.Ints(idx)
	return &Result{Algorithm: name, Trace: res.Trace, Stats: st, Enrolled: idx, Note: note, plan: res.Plan}, nil
}

// feasibleWorkers returns the indices with a usable layout (μ > 0).
func feasibleWorkers(m []int) []int {
	var out []int
	for i, mu := range m {
		if mu > 0 {
			out = append(out, i)
		}
	}
	return out
}
