package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// homProgram builds the per-worker job queues and the rigid master program of
// Algorithm 1 for P enrolled workers with common chunk edge mu: column
// groups are dealt P at a time; within a batch the master sends the C chunks
// of the current row stripe to each worker in turn, interleaves the t input
// installments worker by worker, then collects the P finished chunks.
// Program slots 0..p-1 index the enrolled workers.
func homProgram(inst Instance, mu, p int) ([][]sim.Job, []sim.OpRef) {
	queues := make([][]sim.Job, p)
	var ops []sim.OpRef
	groups := make([]int, 0)
	for c0 := 0; c0 < inst.S; c0 += mu {
		groups = append(groups, c0)
	}
	seq := 0
	for g0 := 0; g0 < len(groups); g0 += p {
		batch := groups[g0:min(g0+p, len(groups))]
		for r0 := 0; r0 < inst.R; r0 += mu {
			h := min(mu, inst.R-r0)
			seqs := make([]int, len(batch))
			for slot, c0 := range batch {
				ch := matrix.Chunk{Row0: r0, Col0: c0, H: h, W: min(mu, inst.S-c0)}
				queues[slot] = append(queues[slot], sim.MakeStandardJob(ch, inst.T, seq))
				seqs[slot] = seq
				ops = append(ops, sim.OpRef{Worker: slot, Kind: trace.SendC, JobSeq: seq})
				seq++
			}
			for k := 0; k < inst.T; k++ {
				for slot := range batch {
					ops = append(ops, sim.OpRef{Worker: slot, Kind: trace.SendAB, JobSeq: seqs[slot], K: k})
				}
			}
			for slot := range batch {
				ops = append(ops, sim.OpRef{Worker: slot, Kind: trace.RecvC, JobSeq: seqs[slot]})
			}
		}
	}
	return queues, ops
}

// runHomogeneous executes Algorithm 1 on the given workers of pl treating
// them as identical with chunk edge mu.
func runHomogeneous(name string, pl *platform.Platform, inst Instance, mu int, workerIdx []int) (*Result, error) {
	sub, err := pl.Subset(workerIdx)
	if err != nil {
		return nil, err
	}
	queues, ops := homProgram(inst, mu, len(workerIdx))
	res, err := sim.Run(sim.Config{
		Platform: sub,
		Source:   sim.NewStatic(queues),
		Policy:   sim.NewFixedOrder(name, ops),
		Name:     name,
	})
	if err != nil {
		return nil, err
	}
	out, err := finish(name, res, inst, "")
	if err != nil {
		return nil, err
	}
	// Report enrollment and plan in original platform indices.
	enrolled := make([]int, len(out.Enrolled))
	for i, slot := range out.Enrolled {
		enrolled[i] = workerIdx[slot]
	}
	sort.Ints(enrolled)
	out.Enrolled = enrolled
	for i := range out.plan {
		out.plan[i].Worker = workerIdx[out.plan[i].Worker]
	}
	return out, nil
}

// estimateHomogeneous simulates Algorithm 1 on a virtual platform of enroll
// identical (c, w, m)-workers and returns the makespan estimate.
func estimateHomogeneous(inst Instance, c, w float64, m, avail int) (mu, enroll int, makespan float64) {
	mu = platform.MuOverlap(m)
	if mu == 0 || avail == 0 {
		return 0, 0, math.Inf(1)
	}
	enroll = platform.HomSelection(avail, mu, w, c)
	virtual := platform.Homogeneous(enroll, c, w, m)
	queues, ops := homProgram(inst, mu, enroll)
	res, err := sim.Run(sim.Config{
		Platform: virtual,
		Source:   sim.NewStatic(queues),
		Policy:   sim.NewFixedOrder("estimate", ops),
		Name:     "estimate",
	})
	if err != nil {
		return 0, 0, math.Inf(1)
	}
	return mu, enroll, res.Makespan
}

// Hom is the paper's homogeneous algorithm applied to a heterogeneous
// platform: for every distinct memory size M present, consider the virtual
// homogeneous platform of all workers with m_i ≥ M, with apparent link and
// compute costs the worst among them; estimate Algorithm 1's makespan on
// each virtual platform and run on the one minimizing the estimate.
type Hom struct{}

// Name implements Scheduler.
func (Hom) Name() string { return "Hom" }

// Schedule implements Scheduler.
func (Hom) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	memSizes := map[int]bool{}
	for _, w := range pl.Workers {
		memSizes[w.M] = true
	}
	bestSpan := math.Inf(1)
	var bestMu int
	var bestIdx []int
	var bestNote string
	for m := range memSizes {
		var idx []int
		cMax, wMax := 0.0, 0.0
		for i, w := range pl.Workers {
			if w.M >= m {
				idx = append(idx, i)
				cMax = math.Max(cMax, w.C)
				wMax = math.Max(wMax, w.W)
			}
		}
		mu, enroll, span := estimateHomogeneous(inst, cMax, wMax, m, len(idx))
		if span < bestSpan {
			bestSpan = span
			bestMu = mu
			bestIdx = idx[:enroll] // platform index order: Hom is oblivious to speeds
			bestNote = fmt.Sprintf("virtual m=%d c=%.3g w=%.3g P=%d", m, cMax, wMax, enroll)
		}
	}
	if bestIdx == nil {
		return nil, fmt.Errorf("Hom: no feasible virtual platform")
	}
	out, err := runHomogeneous("Hom", pl, inst, bestMu, bestIdx)
	if err != nil {
		return nil, err
	}
	out.Note = bestNote
	return out, nil
}

// HomI is the improved homogeneous algorithm: virtual platforms are built for
// every (memory, link, speed) combination present, qualifying the workers at
// least that good on all three axes, and the best estimated one is used. The
// actual enrollment picks the fastest qualifying workers.
type HomI struct{}

// Name implements Scheduler.
func (HomI) Name() string { return "HomI" }

// Schedule implements Scheduler.
func (HomI) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	memSizes := map[int]bool{}
	cVals := map[float64]bool{}
	wVals := map[float64]bool{}
	for _, w := range pl.Workers {
		memSizes[w.M] = true
		cVals[w.C] = true
		wVals[w.W] = true
	}
	bestSpan := math.Inf(1)
	var bestMu int
	var bestIdx []int
	var bestNote string
	for m := range memSizes {
		for c := range cVals {
			for wv := range wVals {
				var idx []int
				for i, w := range pl.Workers {
					if w.M >= m && w.C <= c && w.W <= wv {
						idx = append(idx, i)
					}
				}
				if len(idx) == 0 {
					continue
				}
				mu, enroll, span := estimateHomogeneous(inst, c, wv, m, len(idx))
				if span < bestSpan {
					// Enroll the best qualifying workers: fastest compute,
					// then fastest link.
					sort.Slice(idx, func(a, b int) bool {
						wa, wb := pl.Workers[idx[a]], pl.Workers[idx[b]]
						if wa.W != wb.W {
							return wa.W < wb.W
						}
						if wa.C != wb.C {
							return wa.C < wb.C
						}
						return idx[a] < idx[b]
					})
					bestSpan = span
					bestMu = mu
					bestIdx = append([]int(nil), idx[:enroll]...)
					bestNote = fmt.Sprintf("virtual m=%d c=%.3g w=%.3g P=%d", m, c, wv, enroll)
				}
			}
		}
	}
	if bestIdx == nil {
		return nil, fmt.Errorf("HomI: no feasible virtual platform")
	}
	out, err := runHomogeneous("HomI", pl, inst, bestMu, bestIdx)
	if err != nil {
		return nil, err
	}
	out.Note = bestNote
	return out, nil
}
