package sched

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestPlaceSequentialAtFrontier(t *testing.T) {
	sc := newServeClock(platform.Homogeneous(1, 1, 1, 100))
	if got := sc.place(0, 5); got != 0 {
		t.Errorf("first placement at %v, want 0", got)
	}
	if got := sc.place(0, 3); got != 5 {
		t.Errorf("second placement at %v, want 5 (frontier)", got)
	}
}

func TestPlaceFillsGap(t *testing.T) {
	sc := newServeClock(platform.Homogeneous(1, 1, 1, 100))
	sc.place(0, 5)   // [0,5)
	sc.place(20, 10) // [20,30), leaving gap [5,20)
	if got := sc.place(0, 15); got != 5 {
		t.Errorf("gap fill at %v, want 5", got)
	}
	// Gap now fully consumed: next placement goes to the frontier.
	if got := sc.place(0, 1); got != 30 {
		t.Errorf("post-fill placement at %v, want 30", got)
	}
}

func TestPlaceSplitsGap(t *testing.T) {
	sc := newServeClock(platform.Homogeneous(1, 1, 1, 100))
	sc.place(0, 2)   // [0,2)
	sc.place(50, 10) // [50,60), gap [2,50)
	if got := sc.place(10, 5); got != 10 {
		t.Errorf("mid-gap placement at %v, want 10", got)
	}
	// Left fragment [2,10) and right fragment [15,50) must both survive.
	if got := sc.place(0, 8); got != 2 {
		t.Errorf("left fragment placement at %v, want 2", got)
	}
	if got := sc.place(0, 35); got != 15 {
		t.Errorf("right fragment placement at %v, want 15", got)
	}
}

// Property: any sequence of placements yields pairwise-disjoint intervals,
// each starting at or after its ready time.
func TestPlaceDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := newServeClock(platform.Homogeneous(1, 1, 1, 100))
		type iv struct{ s, e float64 }
		var placed []iv
		for i := 0; i < 60; i++ {
			ready := rng.Float64() * 100
			dur := 0.5 + rng.Float64()*10
			start := sc.place(ready, dur)
			if start < ready-1e-12 {
				return false
			}
			placed = append(placed, iv{start, start + dur})
		}
		sort.Slice(placed, func(a, b int) bool { return placed[a].s < placed[b].s })
		for i := 1; i < len(placed); i++ {
			if placed[i].s < placed[i-1].e-1e-9 {
				return false
			}
		}
		// Internal gap list must stay sorted and disjoint with ascending ends.
		for i := 1; i < len(sc.gaps); i++ {
			if sc.gaps[i].start < sc.gaps[i-1].end-1e-12 {
				return false
			}
		}
		return math.IsInf(sc.gaps[len(sc.gaps)-1].end, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAssignRespectsBufferGating(t *testing.T) {
	// One worker, c=1, w=10 (compute-bound): installment k+2 cannot finish
	// arriving before installment k's compute ends, so the master timeline
	// stretches at the compute pace while leaving gaps.
	pl := platform.Homogeneous(1, 1, 10, 1000)
	sc := newServeClock(pl)
	last, done := sc.assign(0, 2, 2, 5, false)
	// Installment: 4 blocks (4 time), compute 4 updates × 10 = 40.
	// inst0 arrives 4, computes 4→44; inst1 arrives 8, computes 44→84;
	// inst2 start ≥ ce(inst0)=44, arrives 48, computes 84→124;
	// inst3 start ≥ 84, arrives 88 → 124→164; inst4 ≥ 124 → 128, 164→204.
	if math.Abs(last-128) > 1e-9 {
		t.Errorf("last communication = %v, want 128", last)
	}
	if math.Abs(done-204) > 1e-9 {
		t.Errorf("compute done = %v, want 204", done)
	}
}

func TestAssignInterleavesAcrossWorkers(t *testing.T) {
	// Two compute-bound workers: the second worker's installments must fill
	// the gaps the first leaves, so the total last-comm time is far below
	// serial service.
	pl := platform.Homogeneous(2, 1, 10, 1000)
	sc := newServeClock(pl)
	sc.assign(0, 2, 2, 5, false)
	last2, _ := sc.assign(1, 2, 2, 5, false)
	if last2 > 140 {
		t.Errorf("second worker's chunk finished arriving at %v; gaps were not reused", last2)
	}
}

func TestAssignCountCFirstTimeOnly(t *testing.T) {
	pl := platform.Homogeneous(1, 1, 1, 1000)
	a := newServeClock(pl)
	la1, _ := a.assign(0, 3, 3, 4, true)
	b := newServeClock(pl)
	lb1, _ := b.assign(0, 3, 3, 4, false)
	if la1 <= lb1 {
		t.Errorf("countC first assignment (%v) should be later than without (%v)", la1, lb1)
	}
	// Second assignment: the C charge must not repeat.
	la2, _ := a.assign(0, 3, 3, 4, true)
	lb2, _ := b.assign(0, 3, 3, 4, false)
	if math.Abs((la2-la1)-(lb2-lb1)) > 1e-9 {
		t.Errorf("countC charged again on the second chunk: deltas %v vs %v", la2-la1, lb2-lb1)
	}
}

func TestCloneIsolation(t *testing.T) {
	pl := platform.Homogeneous(2, 1, 1, 1000)
	sc := newServeClock(pl)
	sc.assign(0, 2, 2, 3, false)
	snapshotWork := sc.work
	snapshotLast := sc.lastCommEnd
	probe := sc.clone()
	probe.assign(1, 2, 2, 3, false)
	if sc.work != snapshotWork || sc.lastCommEnd != snapshotLast {
		t.Error("probe assignment mutated the original clock")
	}
	if len(probe.gaps) == len(sc.gaps) && probe.lastCommEnd == sc.lastCommEnd {
		t.Error("probe assignment had no effect on the clone")
	}
}
