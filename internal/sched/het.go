package sched

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Variant identifies one of the eight incremental resource-selection
// heuristics of §5: {global, local} criterion × {with, without} one-step
// look-ahead × {counting, ignoring} the initial C-chunk cost.
type Variant struct {
	Local     bool // local criterion (per-communication ratio) instead of global
	LookAhead bool // evaluate candidate pairs, commit the first
	CountC    bool // charge the C-chunk transfer on a worker's first selection
}

// String names the variant as in the paper's discussion, e.g. "global+la+C".
func (v Variant) String() string {
	s := "global"
	if v.Local {
		s = "local"
	}
	if v.LookAhead {
		s += "+la"
	}
	if v.CountC {
		s += "+C"
	}
	return s
}

// Variants enumerates all eight selection heuristics.
func Variants() []Variant {
	var out []Variant
	for _, local := range []bool{false, true} {
		for _, la := range []bool{false, true} {
			for _, cc := range []bool{false, true} {
				out = append(out, Variant{Local: local, LookAhead: la, CountC: cc})
			}
		}
	}
	return out
}

// HetVariant runs the heterogeneous algorithm with one fixed selection
// variant: phase 1 allocates chunks to workers with the incremental
// heuristic, phase 2 executes that allocation, the master serving ready
// operations in selection order.
type HetVariant struct {
	V Variant
}

// Name implements Scheduler.
func (h HetVariant) Name() string { return "Het[" + h.V.String() + "]" }

// Schedule implements Scheduler.
func (h HetVariant) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	queues, err := selectChunks(pl, inst, h.V)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		Platform: pl,
		Source:   sim.NewStatic(queues),
		Policy:   &sim.Priority{Label: "het"},
		Name:     h.Name(),
	})
	if err != nil {
		return nil, err
	}
	return finish(h.Name(), res, inst, h.V.String())
}

// selectChunks is phase 1: simulate the master's deliveries with the serve
// clock, repeatedly choosing the worker that optimizes the variant's
// criterion, carving chunks column-band-wise until the whole C matrix is
// allocated. Returns per-worker job queues with Seq = selection order.
func selectChunks(pl *platform.Platform, inst Instance, v Variant) ([][]sim.Job, error) {
	m := mus(pl)
	if len(feasibleWorkers(m)) == 0 {
		return nil, fmt.Errorf("Het: no worker can hold the layout")
	}
	mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
	carver := sim.NewCarver(inst.R, inst.S, inst.T, m, m, mk)
	clock := newServeClock(pl)
	queues := make([][]sim.Job, pl.P())
	seq := 0
	for {
		best := pickWorker(pl, carver, clock, inst.T, v)
		if best < 0 {
			break
		}
		job, ok := carver.Next(best)
		if !ok {
			return nil, fmt.Errorf("Het: carver refused a peeked chunk for P%d", best+1)
		}
		job.Seq = seq
		seq++
		clock.assign(best, job.Chunk.H, job.Chunk.W, inst.T, v.CountC)
		queues[best] = append(queues[best], job)
	}
	return queues, nil
}

// score evaluates assigning the peeked chunk of worker i on a cloned clock
// and returns the variant's base criterion (higher is better) plus the clone
// for look-ahead chaining.
func score(pl *platform.Platform, clock *serveClock, i, h, w, t int, v Variant) (float64, *serveClock) {
	probe := clock.clone()
	before := probe.horizon()
	workBefore := probe.work
	probe.assign(i, h, w, t, v.CountC)
	after := probe.horizon()
	if v.Local {
		// Work enabled by this communication over the time it extends the
		// master's horizon. A chunk that slots entirely into earlier idle
		// gaps and compute slack is free: score it by work alone
		// (effectively infinite ratio, ties broken by the larger chunk).
		if after-before <= 1e-12 {
			return 1e18 * (probe.work - workBefore), probe
		}
		return (probe.work - workBefore) / (after - before), probe
	}
	// Total work assigned so far over "the time spent by the master so far,
	// either sending data to workers or staying idle waiting for the workers
	// to finish their current computations" (§5): the later of the last
	// communication's completion and the workers' compute horizon.
	return probe.work / after, probe
}

// pickWorker returns the worker index optimizing the variant's criterion for
// the next selection, or -1 when no work remains.
func pickWorker(pl *platform.Platform, carver *sim.Carver, clock *serveClock, t int, v Variant) int {
	best, bestScore := -1, math.Inf(-1)
	for i := range pl.Workers {
		ch, ok := carver.Peek(i)
		if !ok {
			continue
		}
		s, probe := score(pl, clock, i, ch.H, ch.W, t, v)
		if v.LookAhead {
			// One-step look-ahead: chase the best follow-up assignment and
			// score the pair; commit only the first element.
			carver2 := carver.Clone()
			carver2.Next(i) // apply i's carve so follow-up peeks are exact
			bestSecond := math.Inf(-1)
			for j := range pl.Workers {
				ch2, ok2 := carver2.Peek(j)
				if !ok2 {
					continue
				}
				s2, _ := score(pl, probe, j, ch2.H, ch2.W, t, v)
				if s2 > bestSecond {
					bestSecond = s2
				}
			}
			if !math.IsInf(bestSecond, -1) {
				s = bestSecond
			}
		}
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Het is the meta-algorithm the paper benchmarks: it simulates all eight
// selection variants and runs the one with the best simulated makespan
// (§6.2: "in a first step we simulate the eight versions, and then we pick
// and run the best one").
type Het struct{}

// Name implements Scheduler.
func (Het) Name() string { return "Het" }

// Schedule implements Scheduler.
func (Het) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	var best *Result
	var errs []error
	for _, v := range Variants() {
		r, err := (HetVariant{V: v}).Schedule(pl, inst)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if best == nil || r.Stats.Makespan < best.Stats.Makespan {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("Het: all variants failed: %v", errs)
	}
	best.Algorithm = "Het"
	best.Note = "winner: " + best.Note
	return best, nil
}
