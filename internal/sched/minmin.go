package sched

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
)

// OMMOML — Overlapped Min-Min, Optimized Memory Layout: the static
// minimum-completion-time heuristic of §6 ("sends the next block to the
// first worker that will finish it. As it is looking for potential workers in
// a given order, this algorithm performs some resource selection too").
//
// Following the classic min-min formulation of Maheswaran et al., the ETA of
// a chunk on a worker is estimated with a serial model — the master sends the
// C chunk and all inputs, then the worker computes — with no credit for
// overlap. Chunk completion favours small chunks, so on memory-heterogeneous
// platforms the heuristic gravitates to the small-memory workers; this is the
// behaviour the paper observes (thrifty but with a poor makespan). Ties go to
// the first worker in platform order.
type OMMOML struct{}

// Name implements Scheduler.
func (OMMOML) Name() string { return "OMMOML" }

// Schedule implements Scheduler.
func (OMMOML) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	m := mus(pl)
	if len(feasibleWorkers(m)) == 0 {
		return nil, fmt.Errorf("OMMOML: no worker can hold the layout")
	}
	mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
	carver := sim.NewCarver(inst.R, inst.S, inst.T, m, m, mk)
	queues := make([][]sim.Job, pl.P())
	master := 0.0
	workerFree := make([]float64, pl.P())
	seq := 0
	for {
		best, bestETA := -1, math.Inf(1)
		for i, wk := range pl.Workers {
			ch, ok := carver.Peek(i)
			if !ok {
				continue
			}
			// Serial estimate: wait for the port and the worker, ship the C
			// chunk and every input installment, compute, return the chunk.
			start := math.Max(master, workerFree[i])
			comm := float64(ch.Blocks())*wk.C + float64(inst.T)*float64(ch.H+ch.W)*wk.C
			compute := float64(inst.T) * float64(ch.Blocks()) * wk.W
			eta := start + comm + compute + float64(ch.Blocks())*wk.C
			if eta < bestETA {
				best, bestETA = i, eta
			}
		}
		if best < 0 {
			break
		}
		job, ok := carver.Next(best)
		if !ok {
			return nil, fmt.Errorf("OMMOML: carver refused a peeked chunk for P%d", best+1)
		}
		job.Seq = seq
		seq++
		wk := pl.Workers[best]
		ch := job.Chunk
		start := math.Max(master, workerFree[best])
		comm := float64(ch.Blocks())*wk.C + float64(inst.T)*float64(ch.H+ch.W)*wk.C
		master = start + comm
		workerFree[best] = bestETA
		queues[best] = append(queues[best], job)
	}
	res, err := sim.Run(sim.Config{
		Platform: pl,
		Source:   sim.NewStatic(queues),
		Policy:   &sim.Priority{Label: "ommoml"},
		Name:     "OMMOML",
	})
	if err != nil {
		return nil, err
	}
	return finish("OMMOML", res, inst, "")
}
