package sched

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
)

// MaxReuse is the single-worker maximum re-use algorithm of Section 3: the
// worker's m buffers are split as 1 for the current A block, μ for a row of B
// blocks and μ² for the C chunk, with μ the largest integer such that
// 1 + μ + μ² ≤ m. Blocks of A arrive one at a time, each updating a row of μ
// C blocks; there is no double buffering, so communication does not overlap
// the compute it feeds.
//
// Its communication-to-computation ratio, 2/t + 2/μ, is the quantity Section
// 3 compares against the √(27/(8m)) lower bound.
type MaxReuse struct{}

// Name implements Scheduler.
func (MaxReuse) Name() string { return "MaxReuse" }

// MakeMaxReuseJob builds the fine-grained job of the §3 algorithm for a C
// chunk: per inner step, a row of W B blocks arrives (enabling nothing by
// itself), then H single A blocks, each enabling W updates.
func MakeMaxReuseJob(ch matrix.Chunk, t, seq int) sim.Job {
	insts := make([]sim.Installment, 0, t*(1+ch.H))
	for k := 0; k < t; k++ {
		insts = append(insts, sim.Installment{Blocks: ch.W, Updates: 0, K0: k, K1: k + 1})
		for i := 0; i < ch.H; i++ {
			insts = append(insts, sim.Installment{Blocks: 1, Updates: int64(ch.W), K0: k, K1: k + 1})
		}
	}
	return sim.Job{Chunk: ch, Installments: insts, Seq: seq}
}

// Schedule implements Scheduler on the first worker of the platform (the §3
// setting is explicitly single-worker: any algorithm can be simulated on one
// worker when only communication volume matters).
func (MaxReuse) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	w := pl.Workers[0]
	mu := platform.MuMaxReuse(w.M)
	if mu == 0 {
		return nil, fmt.Errorf("MaxReuse: worker memory %d cannot hold the 1+μ+μ² layout", w.M)
	}
	single, err := pl.Subset([]int{0})
	if err != nil {
		return nil, err
	}
	var jobs []sim.Job
	for _, ch := range matrix.SquareChunks(inst.R, inst.S, mu) {
		jobs = append(jobs, MakeMaxReuseJob(ch, inst.T, len(jobs)))
	}
	res, err := sim.Run(sim.Config{
		Platform:    single,
		Source:      sim.NewStatic([][]sim.Job{jobs}),
		Policy:      &sim.Priority{Label: "maxreuse"},
		MaxBuffered: 1,
		Name:        "MaxReuse",
	})
	if err != nil {
		return nil, err
	}
	return finish("MaxReuse", res, inst, fmt.Sprintf("mu=%d", mu))
}
