package sched

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/steady"
)

// SSP — Steady-State Periodic — executes the bandwidth-centric optimum of §5
// as an actual schedule: only the workers the Table 1 program enrolls
// receive work, in column bands interleaved proportionally to their optimal
// rates x_i. The paper uses the steady-state solution purely as an upper
// bound because realizing it can need unbounded buffers (Table 2); SSP is
// the buffer-respecting approximation, so its makespan shows how much of the
// bound survives contact with finite memory and C-block traffic.
type SSP struct{}

// Name implements Scheduler.
func (SSP) Name() string { return "SSP" }

// Schedule implements Scheduler.
func (SSP) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	alloc := steady.BandwidthCentric(pl)
	if len(alloc.Enrolled) == 0 {
		return nil, fmt.Errorf("SSP: steady state enrolls no worker")
	}
	m := mus(pl)
	mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
	carver := sim.NewCarver(inst.R, inst.S, inst.T, m, m, mk)
	queues := make([][]sim.Job, pl.P())

	// Weighted round-robin: always hand the next chunk to the enrolled
	// worker whose assigned work is furthest below its steady-state share.
	assigned := make([]float64, pl.P())
	seq := 0
	for {
		best := -1
		bestLag := 0.0
		for _, i := range alloc.Enrolled {
			if _, ok := carver.Peek(i); !ok {
				continue
			}
			lag := assigned[i] / alloc.X[i]
			if best < 0 || lag < bestLag {
				best, bestLag = i, lag
			}
		}
		if best < 0 {
			break
		}
		job, ok := carver.Next(best)
		if !ok {
			return nil, fmt.Errorf("SSP: carver refused a peeked chunk for P%d", best+1)
		}
		job.Seq = seq
		seq++
		assigned[best] += float64(job.TotalUpdates())
		queues[best] = append(queues[best], job)
	}
	res, err := sim.Run(sim.Config{
		Platform: pl,
		Source:   sim.NewStatic(queues),
		Policy:   &sim.Priority{Label: "ssp"},
		Name:     "SSP",
	})
	if err != nil {
		return nil, err
	}
	out, err := finish("SSP", res, inst, fmt.Sprintf("steady throughput %.4f", alloc.Throughput))
	if err != nil {
		return nil, err
	}
	return out, nil
}
