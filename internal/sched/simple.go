package sched

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
)

// ORROML — Overlapped Round-Robin, Optimized Memory Layout: column bands are
// dealt to all feasible workers in round-robin order with no resource
// selection; execution uses the paper's double-buffered layout, the master
// serving operations in assignment order whenever they are ready.
type ORROML struct{}

// Name implements Scheduler.
func (ORROML) Name() string { return "ORROML" }

// Schedule implements Scheduler.
func (ORROML) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	m := mus(pl)
	feasible := feasibleWorkers(m)
	if len(feasible) == 0 {
		return nil, fmt.Errorf("ORROML: no worker can hold the layout")
	}
	queues := make([][]sim.Job, pl.P())
	col0 := 0
	seq := 0
	for i := 0; col0 < inst.S; i++ {
		w := feasible[i%len(feasible)]
		width := min(m[w], inst.S-col0)
		for r0 := 0; r0 < inst.R; r0 += m[w] {
			ch := matrix.Chunk{Row0: r0, Col0: col0, H: min(m[w], inst.R-r0), W: width}
			queues[w] = append(queues[w], sim.MakeStandardJob(ch, inst.T, seq))
			seq++
		}
		col0 += width
	}
	res, err := sim.Run(sim.Config{
		Platform: pl,
		Source:   sim.NewStatic(queues),
		Policy:   &sim.Priority{Label: "orroml"},
		Name:     "ORROML",
	})
	if err != nil {
		return nil, err
	}
	return finish("ORROML", res, inst, "")
}

// ODDOML — Overlapped Demand-Driven, Optimized Memory Layout: the dynamic
// heuristic of §6. Work is carved on demand (a worker that runs dry claims
// the next column band sized to its own μ) and the master always serves the
// first worker able to receive, exploiting the layout's two spare input
// buffer groups. No resource selection: every feasible worker participates.
type ODDOML struct{}

// Name implements Scheduler.
func (ODDOML) Name() string { return "ODDOML" }

// Schedule implements Scheduler.
func (ODDOML) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	m := mus(pl)
	if len(feasibleWorkers(m)) == 0 {
		return nil, fmt.Errorf("ODDOML: no worker can hold the layout")
	}
	mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
	res, err := sim.Run(sim.Config{
		Platform: pl,
		Source:   sim.NewCarver(inst.R, inst.S, inst.T, m, m, mk),
		Policy:   &sim.DemandDriven{Label: "oddoml"},
		Name:     "ODDOML",
	})
	if err != nil {
		return nil, err
	}
	return finish("ODDOML", res, inst, "")
}

// BMM — Toledo's Block Matrix Multiply baseline: each worker splits its
// memory into three equal square buffers of edge β = ⌊√(m/3)⌋ (one per
// matrix), receives a C chunk, then panel pairs of A and B of depth β until
// the chunk is complete. There is no spare buffer, so a worker's
// communications never overlap its own compute (MaxBuffered = 1), and blocks
// are served demand-driven with no resource selection.
type BMM struct{}

// Name implements Scheduler.
func (BMM) Name() string { return "BMM" }

// Schedule implements Scheduler.
func (BMM) Schedule(pl *platform.Platform, inst Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	betas := make([]int, pl.P())
	for i, w := range pl.Workers {
		betas[i] = platform.BetaToledo(w.M)
	}
	if len(feasibleWorkers(betas)) == 0 {
		return nil, fmt.Errorf("BMM: no worker can hold the three-panel layout")
	}
	mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job {
		return sim.MakeBMMJob(ch, t, betas[worker], seq)
	}
	res, err := sim.Run(sim.Config{
		Platform:    pl,
		Source:      sim.NewCarver(inst.R, inst.S, inst.T, betas, betas, mk),
		Policy:      &sim.DemandDriven{Label: "bmm"},
		MaxBuffered: 1,
		Name:        "BMM",
	})
	if err != nil {
		return nil, err
	}
	return finish("BMM", res, inst, "")
}
