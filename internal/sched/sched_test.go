package sched

import (
	"math"
	"testing"

	"repro/internal/bound"
	"repro/internal/platform"
	"repro/internal/steady"
	"repro/internal/trace"
)

// testInstance is small enough for fast tests but has uneven edges (r, s not
// multiples of typical μ) to exercise partial chunks.
var testInstance = Instance{R: 13, S: 45, T: 9}

func testPlatform() *platform.Platform {
	return platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 100},   // μ = 8
		platform.Worker{C: 2, W: 1.5, M: 60},  // μ = 6
		platform.Worker{C: 1.2, W: 2, M: 140}, // μ = 9
		platform.Worker{C: 4, W: 1, M: 45},    // μ = 5
	)
}

func allSchedulers() []Scheduler {
	return []Scheduler{Hom{}, HomI{}, Het{}, ORROML{}, OMMOML{}, ODDOML{}, BMM{}}
}

func TestAllSchedulersCompleteAndConserve(t *testing.T) {
	pl := testPlatform()
	for _, s := range allSchedulers() {
		res, err := s.Schedule(pl, testInstance)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// finish() already verified update conservation and the one-port
		// invariant; check the reported stats are coherent.
		if res.Stats.Makespan <= 0 {
			t.Errorf("%s: non-positive makespan", s.Name())
		}
		if len(res.Enrolled) == 0 {
			t.Errorf("%s: enrolled nobody", s.Name())
		}
		if res.Stats.Updates != testInstance.Updates() {
			t.Errorf("%s: updates %d, want %d", s.Name(), res.Stats.Updates, testInstance.Updates())
		}
	}
}

func TestAllSchedulersRejectBadInstance(t *testing.T) {
	pl := testPlatform()
	for _, s := range allSchedulers() {
		if _, err := s.Schedule(pl, Instance{R: 0, S: 1, T: 1}); err == nil {
			t.Errorf("%s accepted empty instance", s.Name())
		}
	}
}

func TestMakespanAboveSteadyStateBound(t *testing.T) {
	// The steady-state throughput bound ignores C traffic and memory limits;
	// no real schedule may beat it.
	pl := testPlatform()
	lb := steady.MakespanLowerBound(pl, testInstance.R, testInstance.S, testInstance.T)
	for _, s := range allSchedulers() {
		res, err := s.Schedule(pl, testInstance)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Stats.Makespan < lb-1e-9 {
			t.Errorf("%s: makespan %.4g beats the steady-state bound %.4g", s.Name(), res.Stats.Makespan, lb)
		}
	}
}

func TestMaxReuseCCRMatchesFormula(t *testing.T) {
	// Single worker, m = 21 → μ = 4. The executed communication volume per
	// update must equal 2/t + 2/μ exactly when μ divides r and s.
	pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: 21})
	inst := Instance{R: 8, S: 12, T: 25}
	res, err := MaxReuse{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	gotCCR := float64(res.Stats.CommBlocks) / float64(res.Stats.Updates)
	want := bound.CCRMaxReuse(21, inst.T)
	if math.Abs(gotCCR-want) > 1e-12 {
		t.Errorf("executed CCR = %v, formula = %v", gotCCR, want)
	}
	if res.Stats.Updates != inst.Updates() {
		t.Errorf("updates = %d, want %d", res.Stats.Updates, inst.Updates())
	}
}

func TestMaxReuseRespectsLowerBound(t *testing.T) {
	pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: 57})
	inst := Instance{R: 14, S: 21, T: 40}
	res, err := MaxReuse{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	ccr := float64(res.Stats.CommBlocks) / float64(res.Stats.Updates)
	if ccr < bound.CCROpt(57) {
		t.Errorf("CCR %v beats the theoretical lower bound %v", ccr, bound.CCROpt(57))
	}
}

func TestMaxReuseInfeasibleMemory(t *testing.T) {
	pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: platform.MinMemory})
	// m = 5 < 7 cannot hold 1+μ+μ² for μ = 2, only μ = 1; still feasible.
	if _, err := (MaxReuse{}).Schedule(pl, Instance{R: 2, S: 2, T: 2}); err != nil {
		t.Fatalf("μ=1 should be feasible: %v", err)
	}
}

func TestHomOnHomogeneousPlatformEnrollment(t *testing.T) {
	// c = 2, w = 4.5, m = 21+4·... choose m so μ=4: μ²+4μ = 32 ≤ m < 45.
	// Paper §4: P = ceil(μ·w/(2c)) = ceil(4·4.5/4) = 5.
	pl := platform.Homogeneous(8, 2, 4.5, 33)
	res, err := Hom{}.Schedule(pl, Instance{R: 8, S: 40, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Enrolled) != 5 {
		t.Errorf("enrolled %d workers, want 5 (paper's example)", len(res.Enrolled))
	}
}

func TestHomINeverEnrollsSlowWhenFastSuffice(t *testing.T) {
	// Two fast workers and six very slow ones, ample memory. HomI's best
	// virtual platform should use only fast workers.
	ws := make([]platform.Worker, 8)
	for i := range ws {
		ws[i] = platform.Worker{C: 1, W: 20, M: 100}
	}
	ws[0].W = 1
	ws[1].W = 1
	pl := platform.MustNew(ws...)
	res, err := HomI{}.Schedule(pl, Instance{R: 8, S: 40, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Enrolled {
		if pl.Workers[w].W > 1 {
			t.Errorf("HomI enrolled slow worker P%d: %v", w+1, res.Enrolled)
		}
	}
}

func TestHetAllVariantsRun(t *testing.T) {
	pl := testPlatform()
	if got := len(Variants()); got != 8 {
		t.Fatalf("Variants() = %d, want 8", got)
	}
	seen := map[string]bool{}
	for _, v := range Variants() {
		if seen[v.String()] {
			t.Fatalf("duplicate variant name %s", v)
		}
		seen[v.String()] = true
		res, err := (HetVariant{V: v}).Schedule(pl, testInstance)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if res.Stats.Updates != testInstance.Updates() {
			t.Errorf("%s: lost work", v)
		}
	}
}

func TestHetPicksBestVariant(t *testing.T) {
	pl := testPlatform()
	meta, err := Het{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants() {
		res, err := (HetVariant{V: v}).Schedule(pl, testInstance)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Makespan < meta.Stats.Makespan-1e-9 {
			t.Errorf("variant %s (%.4g) beats the meta-chosen one (%.4g)", v, res.Stats.Makespan, meta.Stats.Makespan)
		}
	}
}

func TestHetSelectionSkipsHopelessWorker(t *testing.T) {
	// One worker with a link 100× slower: Het should give it little or
	// nothing, and certainly less than an equal share.
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 100},
		platform.Worker{C: 1, W: 1, M: 100},
		platform.Worker{C: 100, W: 1, M: 100},
	)
	res, err := Het{}.Schedule(pl, Instance{R: 16, S: 48, T: 12})
	if err != nil {
		t.Fatal(err)
	}
	perWorker := make([]int64, 3)
	for _, c := range res.Trace.Computes {
		perWorker[c.Worker] += c.Updates
	}
	if perWorker[2] >= perWorker[0]/2 {
		t.Errorf("hopeless worker got %d updates vs %d for a good one", perWorker[2], perWorker[0])
	}
}

func TestBMMUsesThreePanelLayout(t *testing.T) {
	// m = 147 → β = 7; every transfer must respect the panel geometry:
	// C chunks ≤ β², installments ≤ 2β².
	pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: 147})
	res, err := BMM{}.Schedule(pl, Instance{R: 10, S: 20, T: 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trace.Transfers {
		switch tr.Kind {
		case trace.SendC, trace.RecvC:
			if tr.Blocks > 49 {
				t.Errorf("C transfer of %d blocks exceeds β²", tr.Blocks)
			}
		case trace.SendAB:
			if tr.Blocks > 2*49 {
				t.Errorf("input transfer of %d blocks exceeds 2β²", tr.Blocks)
			}
		}
	}
}

func TestORROMLUsesAllFeasibleWorkers(t *testing.T) {
	pl := testPlatform()
	res, err := ORROML{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Enrolled) != pl.P() {
		t.Errorf("ORROML enrolled %d of %d workers; it must not select resources", len(res.Enrolled), pl.P())
	}
}

func TestODDOMLUsesAllFeasibleWorkers(t *testing.T) {
	pl := testPlatform()
	res, err := ODDOML{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Enrolled) != pl.P() {
		t.Errorf("ODDOML enrolled %d of %d workers; it must not select resources", len(res.Enrolled), pl.P())
	}
}

func TestSchedulersOnRandomPlatformsProperty(t *testing.T) {
	inst := Instance{R: 9, S: 22, T: 6}
	for seed := int64(1); seed <= 6; seed++ {
		pl := platform.Random(2+int(seed)%4, 4, seed)
		for _, s := range allSchedulers() {
			res, err := s.Schedule(pl, inst)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, s.Name(), err)
			}
			if res.Stats.Updates != inst.Updates() {
				t.Errorf("seed %d, %s: work not conserved", seed, s.Name())
			}
		}
	}
}

func TestHetBeatsBMMOnCommHeterogeneity(t *testing.T) {
	// The paper's headline (Fig. 5): with heterogeneous links, Het's
	// makespan is clearly better than BMM's.
	pl := platform.HeteroComm()
	inst := Instance{R: 20, S: 100, T: 20}
	het, err := Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	bmm, err := BMM{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	if het.Stats.Makespan >= bmm.Stats.Makespan {
		t.Errorf("Het (%.4g) should beat BMM (%.4g) on heterogeneous links", het.Stats.Makespan, bmm.Stats.Makespan)
	}
}

func TestHetDeterministic(t *testing.T) {
	pl := testPlatform()
	a, err := Het{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Het{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Makespan != b.Stats.Makespan || a.Note != b.Note {
		t.Errorf("Het not deterministic: %v/%q vs %v/%q", a.Stats.Makespan, a.Note, b.Stats.Makespan, b.Note)
	}
}
