package sched

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
)

// AblateMultiPort runs the demand-driven scheduler with the one-port
// constraint removed (an idealized master with an independent port per
// link), returning the makespan. Comparing it against ODDOML isolates how
// much of the makespan is due to the master's port serialization — the
// modelling assumption the whole paper is built on.
func AblateMultiPort(pl *platform.Platform, inst Instance) (float64, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	m := mus(pl)
	if len(feasibleWorkers(m)) == 0 {
		return 0, fmt.Errorf("AblateMultiPort: no worker can hold the layout")
	}
	mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
	res, err := sim.Run(sim.Config{
		Platform:  pl,
		Source:    sim.NewCarver(inst.R, inst.S, inst.T, m, m, mk),
		Policy:    &sim.DemandDriven{Label: "multiport"},
		MultiPort: true,
		Name:      "MultiPort",
	})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// AblateSingleBuffer runs the demand-driven scheduler with MaxBuffered = 1
// (no input double-buffering), isolating the contribution of the 4μ spare
// buffers in the μ²+4μ layout. Chunk edges shrink to the single-buffer
// layout 1+μ+μ² ≥ μ²+2μ so jobs still fit.
func AblateSingleBuffer(pl *platform.Platform, inst Instance) (float64, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	m := make([]int, pl.P())
	feasible := false
	for i, w := range pl.Workers {
		// μ² + 1·2μ ≤ m: one chunk plus a single in-flight installment.
		m[i] = largestSingleBufferMu(w.M)
		if m[i] > 0 {
			feasible = true
		}
	}
	if !feasible {
		return 0, fmt.Errorf("AblateSingleBuffer: no worker can hold the layout")
	}
	mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
	res, err := sim.Run(sim.Config{
		Platform:    pl,
		Source:      sim.NewCarver(inst.R, inst.S, inst.T, m, m, mk),
		Policy:      &sim.DemandDriven{Label: "singlebuf"},
		MaxBuffered: 1,
		Name:        "SingleBuffer",
	})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

func largestSingleBufferMu(m int) int {
	mu := 0
	for (mu+1)*(mu+1)+2*(mu+1) <= m {
		mu++
	}
	return mu
}
