package sched

import (
	"testing"

	"repro/internal/platform"
)

func TestPerturbBoundsAndReproducibility(t *testing.T) {
	pl := testPlatform()
	a := Perturb(pl, 0.5, 7)
	b := Perturb(pl, 0.5, 7)
	c := Perturb(pl, 0.5, 8)
	if a.String() != b.String() {
		t.Error("same seed produced different perturbations")
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical perturbations")
	}
	for i, w := range a.Workers {
		orig := pl.Workers[i]
		if w.M != orig.M {
			t.Errorf("perturbation changed memory of %s", w.Name)
		}
		if w.C < orig.C/1.5-1e-9 || w.C > orig.C*1.5+1e-9 {
			t.Errorf("c perturbed outside bounds: %v vs %v", w.C, orig.C)
		}
	}
}

func TestPerturbZeroEpsilonIsIdentity(t *testing.T) {
	pl := testPlatform()
	p := Perturb(pl, 0, 1)
	for i, w := range p.Workers {
		if w.C != pl.Workers[i].C || w.W != pl.Workers[i].W {
			t.Errorf("ε=0 changed worker %d", i)
		}
	}
}

func TestHetWithEstimatesExactEstimatesMatchHet(t *testing.T) {
	pl := testPlatform()
	exact, err := HetWithEstimates(pl, pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	het, err := Het{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.Makespan != het.Stats.Makespan {
		t.Errorf("exact estimates give %v, Het gives %v", exact.Stats.Makespan, het.Stats.Makespan)
	}
}

func TestHetWithEstimatesNoisyStillCompletes(t *testing.T) {
	pl := testPlatform()
	est := Perturb(pl, 0.4, 3)
	res, err := HetWithEstimates(pl, est, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Updates != testInstance.Updates() {
		t.Error("work not conserved under misestimation")
	}
	het, err := Het{}.Schedule(pl, testInstance)
	if err != nil {
		t.Fatal(err)
	}
	// Het is a heuristic, so a lucky perturbation may plan marginally better;
	// anything clearly better would mean the informed meta-selection is
	// broken.
	if res.Stats.Makespan < 0.9*het.Stats.Makespan {
		t.Errorf("misinformed plan (%v) clearly beats the informed one (%v): meta-selection bug?",
			res.Stats.Makespan, het.Stats.Makespan)
	}
}

func TestHetWithEstimatesRejectsMismatch(t *testing.T) {
	pl := testPlatform()
	if _, err := HetWithEstimates(pl, platform.Homogeneous(2, 1, 1, 60), testInstance); err == nil {
		t.Error("worker-count mismatch accepted")
	}
	ws := append([]platform.Worker(nil), pl.Workers...)
	ws[0].M += 10
	if _, err := HetWithEstimates(pl, platform.MustNew(ws...), testInstance); err == nil {
		t.Error("memory mismatch accepted")
	}
}
