// Package steady implements the steady-state analysis of Section 5: the
// bandwidth-centric resource-selection linear program of Table 1, its
// closed-form greedy solution, the resulting throughput upper bound on any
// schedule, and the buffer-demand analysis behind the Table 2 counterexample
// (the steady-state optimum can require unboundedly many buffers, which is
// why the paper falls back to incremental resource selection).
package steady

import (
	"fmt"
	"sort"

	"repro/internal/lp"
	"repro/internal/platform"
)

// Allocation is a steady-state operating point: per time unit, worker i
// computes X[i] C-block updates and receives Y[i] input (A or B) blocks.
type Allocation struct {
	X          []float64
	Y          []float64
	Throughput float64 // Σ X[i], block updates per time unit
	Enrolled   []int   // workers with X[i] > 0, in enrollment order
}

// Mu returns the per-worker chunk edges μ_i under the overlapped memory
// layout μ² + 4μ ≤ m used by all the heterogeneous algorithms.
func Mu(pl *platform.Platform) []int {
	mus := make([]int, pl.P())
	for i, w := range pl.Workers {
		mus[i] = platform.MuOverlap(w.M)
	}
	return mus
}

// BandwidthCentric computes the optimal solution of the Table 1 program in
// closed form. At the optimum y_i = 2x_i/μ_i (a worker receives exactly the
// inputs its updates consume), so the program collapses to a fractional
// knapsack on the master's unit bandwidth: worker i consumes 2c_i/μ_i of
// master time per unit of x_i, capped at x_i ≤ 1/w_i. The greedy therefore
// sorts workers by non-decreasing 2c_i/μ_i and enrolls them while
// Σ 2c_i/(μ_i w_i) ≤ 1, giving the last worker the leftover fraction.
func BandwidthCentric(pl *platform.Platform) *Allocation {
	p := pl.P()
	mus := Mu(pl)
	a := &Allocation{X: make([]float64, p), Y: make([]float64, p)}
	order := make([]int, 0, p)
	for i := 0; i < p; i++ {
		if mus[i] > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(u, v int) bool {
		i, j := order[u], order[v]
		return 2*pl.Workers[i].C/float64(mus[i]) < 2*pl.Workers[j].C/float64(mus[j])
	})
	bandwidth := 1.0
	for _, i := range order {
		if bandwidth <= 0 {
			break
		}
		w := pl.Workers[i]
		costPerX := 2 * w.C / float64(mus[i]) // master time per unit x_i
		full := costPerX / w.W                // master time to sustain x_i = 1/w_i
		if full <= bandwidth {
			a.X[i] = 1 / w.W
			bandwidth -= full
		} else {
			a.X[i] = bandwidth / costPerX
			bandwidth = 0
		}
		a.Y[i] = 2 * a.X[i] / float64(mus[i])
		a.Throughput += a.X[i]
		a.Enrolled = append(a.Enrolled, i)
	}
	return a
}

// SolveLP solves the Table 1 program with the simplex solver, as a
// cross-check of the greedy. Variables are ordered x_1..x_p, y_1..y_p.
//
//	maximize Σ x_i
//	s.t.     Σ c_i y_i         ≤ 1        (master bandwidth)
//	         w_i x_i           ≤ 1  ∀i    (worker compute)
//	         (2/μ_i) x_i - y_i ≤ 0  ∀i    (inputs cover updates)
func SolveLP(pl *platform.Platform) (*Allocation, error) {
	p := pl.P()
	mus := Mu(pl)
	for i, mu := range mus {
		if mu == 0 {
			return nil, fmt.Errorf("steady: worker %s has no feasible layout (m=%d)", pl.Workers[i].Name, pl.Workers[i].M)
		}
	}
	n := 2 * p
	obj := make([]float64, n)
	var rows [][]float64
	var rhs []float64
	bw := make([]float64, n)
	for i := 0; i < p; i++ {
		obj[i] = 1
		bw[p+i] = pl.Workers[i].C
	}
	rows = append(rows, bw)
	rhs = append(rhs, 1)
	for i := 0; i < p; i++ {
		comp := make([]float64, n)
		comp[i] = pl.Workers[i].W
		rows = append(rows, comp)
		rhs = append(rhs, 1)

		cover := make([]float64, n)
		cover[i] = 2 / float64(mus[i])
		cover[p+i] = -1
		rows = append(rows, cover)
		rhs = append(rhs, 0)
	}
	sol, err := lp.Maximize(obj, rows, rhs)
	if err != nil {
		return nil, fmt.Errorf("steady: %w", err)
	}
	a := &Allocation{X: sol.X[:p], Y: sol.X[p:], Throughput: sol.Obj}
	for i := 0; i < p; i++ {
		if a.X[i] > 1e-9 {
			a.Enrolled = append(a.Enrolled, i)
		}
	}
	return a, nil
}

// MakespanLowerBound returns the steady-state bound on the makespan of any
// schedule for an r×s×t block product: total updates divided by the optimal
// throughput. The paper uses it as the (optimistic) yardstick for Het: the
// bound ignores C-block traffic and memory limits, and was on average 2.29×
// the throughput Het achieved.
func MakespanLowerBound(pl *platform.Platform, r, s, t int) float64 {
	a := BandwidthCentric(pl)
	if a.Throughput == 0 {
		return 0
	}
	return float64(int64(r)*int64(s)*int64(t)) / a.Throughput
}

// InputBufferDemand estimates how many input (A and B) buffers worker i must
// hold to sustain its steady-state compute rate while the master serves every
// other enrolled worker one installment (2μ_j blocks) each — the quantity
// that blows up in the Table 2 counterexample. An installment of 2μ_i blocks
// enables μ_i² updates, so each update consumes 2/μ_i input blocks.
func InputBufferDemand(pl *platform.Platform, a *Allocation, i int) float64 {
	mus := Mu(pl)
	gap := 0.0
	for _, j := range a.Enrolled {
		if j != i {
			gap += 2 * float64(mus[j]) * pl.Workers[j].C
		}
	}
	updatesDuringGap := a.X[i] * gap
	return updatesDuringGap * 2 / float64(mus[i])
}

// Feasible reports whether the steady-state allocation fits every enrolled
// worker's memory: the C chunk (μ_i²), the working input group (2μ_i), and
// the buffered inputs demanded by the master's service pattern must fit in
// m_i. For Table 2 platforms this fails once x grows past the memory budget,
// reproducing the paper's observation that "the bandwidth-centric solution
// cannot always be realized in practice".
func Feasible(pl *platform.Platform, a *Allocation) bool {
	mus := Mu(pl)
	for _, i := range a.Enrolled {
		need := float64(mus[i]*mus[i]+2*mus[i]) + InputBufferDemand(pl, a, i)
		if need > float64(pl.Workers[i].M)+1e-9 {
			return false
		}
	}
	return true
}
