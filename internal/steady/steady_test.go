package steady

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestBandwidthCentricSingleWorker(t *testing.T) {
	pl := platform.Homogeneous(1, 1, 2, 60) // μ = 6
	a := BandwidthCentric(pl)
	// 2c/(μw) = 2/(6·2) = 1/6 ≤ 1 → fully enrolled at x = 1/w = 0.5.
	if !almost(a.X[0], 0.5) || !almost(a.Throughput, 0.5) {
		t.Errorf("x = %v, throughput = %v, want 0.5", a.X[0], a.Throughput)
	}
	if !almost(a.Y[0], 2*0.5/6) {
		t.Errorf("y = %v, want %v", a.Y[0], 2*0.5/6)
	}
}

func TestBandwidthCentricSaturation(t *testing.T) {
	// Expensive links: each fully-enrolled worker eats 2c/(μw) = 2·3/(2·1) = 3
	// of the unit bandwidth, so only a third of one worker is sustainable.
	pl := platform.Homogeneous(4, 3, 1, 12) // μ = 2
	a := BandwidthCentric(pl)
	if len(a.Enrolled) != 1 {
		t.Fatalf("enrolled %d workers, want 1 (bandwidth saturated)", len(a.Enrolled))
	}
	if !almost(a.Throughput, 1.0/3) {
		t.Errorf("throughput = %v, want 1/3", a.Throughput)
	}
}

func TestBandwidthCentricOrdering(t *testing.T) {
	// Worker 2 has a better (smaller) 2c/μ and must be enrolled first.
	pl := platform.MustNew(
		platform.Worker{C: 4, W: 1, M: 60},  // 2c/μ = 8/6
		platform.Worker{C: 1, W: 1, M: 60},  // 2c/μ = 2/6
		platform.Worker{C: 10, W: 1, M: 60}, // 2c/μ = 20/6
	)
	a := BandwidthCentric(pl)
	if len(a.Enrolled) == 0 || a.Enrolled[0] != 1 {
		t.Errorf("enrollment order %v, want worker 1 first", a.Enrolled)
	}
}

func TestTable2SteadyState(t *testing.T) {
	// Table 2 with x = 1 reduces to the paper's numbers: both workers have
	// 2c_i/(μ_i w_i) = 1/2, so both are fully enrolled and the master link is
	// exactly saturated.
	pl := platform.Table2(1)
	a := BandwidthCentric(pl)
	if len(a.Enrolled) != 2 {
		t.Fatalf("enrolled %v, want both", a.Enrolled)
	}
	if !almost(a.X[0], 0.5) || !almost(a.X[1], 0.5) {
		t.Errorf("x = %v, want [0.5 0.5]", a.X)
	}
	used := 0.0
	for i, w := range pl.Workers {
		used += a.Y[i] * w.C
	}
	if !almost(used, 1) {
		t.Errorf("master bandwidth used = %v, want 1 (saturated)", used)
	}
}

func TestTable2InfeasibleForLargeX(t *testing.T) {
	// The paper's point: as x grows, P1 must buffer ~2x input blocks to ride
	// out the master's long service of P2, exceeding any fixed memory.
	if !Feasible(platform.Table2(1), BandwidthCentric(platform.Table2(1))) {
		t.Error("Table 2 with x=1 should be feasible")
	}
	feasibleSmall := false
	infeasibleLarge := false
	for _, x := range []float64{0.5, 1, 2, 8, 32, 128} {
		pl := platform.Table2(x)
		a := BandwidthCentric(pl)
		if Feasible(pl, a) {
			feasibleSmall = true
		} else if x >= 8 {
			infeasibleLarge = true
		}
	}
	if !feasibleSmall {
		t.Error("no small-x Table 2 instance was feasible")
	}
	if !infeasibleLarge {
		t.Error("large-x Table 2 instances should be infeasible (buffer demand grows with x)")
	}
}

func TestInputBufferDemandGrowsWithX(t *testing.T) {
	prev := -1.0
	for _, x := range []float64{1, 2, 4, 8, 16} {
		pl := platform.Table2(x)
		a := BandwidthCentric(pl)
		d := InputBufferDemand(pl, a, 0)
		if d <= prev {
			t.Fatalf("buffer demand not increasing: %v at x=%v after %v", d, x, prev)
		}
		prev = d
	}
}

func TestSolveLPMatchesGreedy(t *testing.T) {
	platforms := []*platform.Platform{
		platform.HeteroMemory(),
		platform.HeteroComm(),
		platform.HeteroComp(),
		platform.FullyHetero(2),
		platform.FullyHetero(4),
		platform.Table2(1),
		platform.Table2(5),
		platform.Homogeneous(4, 3, 1, 12),
	}
	for pi, pl := range platforms {
		greedy := BandwidthCentric(pl)
		exact, err := SolveLP(pl)
		if err != nil {
			t.Fatalf("platform %d: %v", pi, err)
		}
		if math.Abs(greedy.Throughput-exact.Throughput) > 1e-6*(1+exact.Throughput) {
			t.Errorf("platform %d: greedy throughput %v != LP %v", pi, greedy.Throughput, exact.Throughput)
		}
	}
}

func TestSolveLPMatchesGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		pl := platform.Random(2+int(abs64(seed))%6, 4, seed)
		greedy := BandwidthCentric(pl)
		exact, err := SolveLP(pl)
		if err != nil {
			return false
		}
		return math.Abs(greedy.Throughput-exact.Throughput) <= 1e-6*(1+exact.Throughput)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	pl := platform.Homogeneous(2, 0.1, 1, 60) // compute bound, ρ = 2
	lb := MakespanLowerBound(pl, 10, 10, 10)
	if !almost(lb, 500) { // 1000 updates / 2 per unit
		t.Errorf("lower bound = %v, want 500", lb)
	}
}

func TestMakespanLowerBoundScalesWithWork(t *testing.T) {
	pl := platform.HeteroMemory()
	lb1 := MakespanLowerBound(pl, 100, 800, 100)
	lb2 := MakespanLowerBound(pl, 100, 1600, 100)
	if !almost(lb2/lb1, 2) {
		t.Errorf("doubling s should double the bound: %v vs %v", lb1, lb2)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
