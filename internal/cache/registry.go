package cache

import "sync"

// Registry is the master-side per-worker resident-set tracker: which panel
// digests each fleet worker was last known to hold, and how many bytes they
// amount to. Resource selection scores candidates with Fraction, biasing a
// job toward the subset already holding its operands.
//
// The registry is advisory by construction. Transfer skipping is decided by
// the per-job have/need handshake against the worker itself, so the registry
// being stale — a worker quietly evicted a panel, or crashed and came back
// with an empty cache — can misprice affinity for one scheduling pass but
// can never corrupt a result. Invalidate keeps it honest on the one
// transition the fleet actually observes: a worker going down (its re-dialed
// successor is a fresh session whose cache contents must be re-discovered by
// the next job's handshake).
type Registry struct {
	mu  sync.Mutex
	res map[int]map[Digest]int64 // fleet worker → digest → payload bytes
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{res: make(map[int]map[Digest]int64)}
}

// Absorb folds one finished job's exact knowledge about worker w into the
// registry: every digest in have (digest → payload bytes) is now resident
// there, and every digest in queried but not in have is known absent (the
// handshake asked and the worker said no, or the master never promoted it) —
// those are removed so an evicted panel stops attracting jobs.
func (r *Registry) Absorb(w int, have map[Digest]int64, queried []Digest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.res[w]
	if set == nil {
		set = make(map[Digest]int64, len(have))
		r.res[w] = set
	}
	for _, d := range queried {
		if b, ok := have[d]; ok {
			set[d] = b
		} else {
			delete(set, d)
		}
	}
}

// Invalidate forgets everything about worker w. Call it when the worker
// leaves the fleet's live set: a crashed worker's re-dialed session is a new
// process with an empty cache, and even a survivor recycled after a failed
// job is cheaper to re-discover than to trust.
func (r *Registry) Invalidate(w int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.res, w)
}

// Fraction scores worker w's affinity for a job: the fraction of the job's
// distinct panel bytes already resident on w, in [0, 1]. Zero when nothing
// is known (or jp is nil), one when every panel is already there.
func (r *Registry) Fraction(w int, jp *JobPanels) float64 {
	if jp == nil {
		return 0
	}
	ds := jp.Digests()
	if len(ds) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.res[w]
	if len(set) == 0 {
		return 0
	}
	have := 0
	for _, d := range ds {
		if _, ok := set[d]; ok {
			have++
		}
	}
	return float64(have) / float64(len(ds))
}

// Resident reports how many panels (and payload bytes) worker w is believed
// to hold.
func (r *Registry) Resident(w int) (panels int, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.res[w] {
		panels++
		bytes += b
	}
	return panels, bytes
}
