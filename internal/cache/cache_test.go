package cache

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

func randMatrix(rows, cols, q int, seed int64) *matrix.BlockMatrix {
	m := matrix.NewBlockMatrix(rows, cols, q)
	m.FillRandom(rand.New(rand.NewSource(seed)))
	return m
}

func TestPanelDigests(t *testing.T) {
	a := randMatrix(3, 4, 4, 1)
	b := randMatrix(3, 4, 4, 1) // identical content, distinct object

	if RowPanelDigest(a, 0) != RowPanelDigest(b, 0) {
		t.Fatal("identical row panels hash differently")
	}
	if RowPanelDigest(a, 0) == RowPanelDigest(a, 1) {
		t.Fatal("distinct row panels collide")
	}
	if ColPanelDigest(a, 1) != ColPanelDigest(b, 1) {
		t.Fatal("identical column panels hash differently")
	}

	// A single bit flip must change the digest.
	before := RowPanelDigest(a, 2)
	blk := a.Block(2, 3)
	blk.Set(1, 1, blk.At(1, 1)+1e-9)
	if RowPanelDigest(a, 2) == before {
		t.Fatal("digest ignored an element change")
	}

	// Implicit zero blocks hash like materialized zero blocks, without being
	// materialized.
	z1 := matrix.NewBlockMatrix(2, 3, 4)
	z2 := matrix.NewBlockMatrix(2, 3, 4)
	z2.Block(0, 1).Zero() // materialize one explicitly
	if RowPanelDigest(z1, 0) != RowPanelDigest(z2, 0) {
		t.Fatal("implicit and explicit zero blocks hash differently")
	}
	if z1.PeekBlock(0, 1) != nil {
		t.Fatal("digesting materialized an implicit zero block")
	}
}

func TestJobPanels(t *testing.T) {
	a := randMatrix(3, 2, 4, 7)
	b := randMatrix(2, 4, 4, 8)
	jp := PanelsForJob(a, b)
	if jp.T != 2 || jp.Q != 4 || len(jp.ARows) != 3 || len(jp.BCols) != 4 {
		t.Fatalf("unexpected shape: %+v", jp)
	}
	if got, want := jp.PanelBytes(), PanelDataBytes(4, 2); got != want {
		t.Fatalf("panel bytes %d, want %d", got, want)
	}
	if n := len(jp.Digests()); n != 7 {
		t.Fatalf("expected 7 distinct digests, got %d", n)
	}

	// A duplicated row panel dedupes in the handshake query set.
	for k := 0; k < a.Cols; k++ {
		a.SetBlock(1, k, a.Block(0, k).Clone())
	}
	jp = PanelsForJob(a, b)
	if n := len(jp.Digests()); n != 6 {
		t.Fatalf("expected 6 distinct digests after duplicating a row, got %d", n)
	}
}

func panelBlocks(q, t int, seed int64) []*matrix.Block {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*matrix.Block, t)
	for i := range out {
		out[i] = matrix.NewBlock(q)
		out[i].FillRandom(rng)
	}
	return out
}

func dig(seed int64) Digest {
	var d Digest
	rand.New(rand.NewSource(seed)).Read(d[:])
	return d
}

func TestPanelCacheLRUEviction(t *testing.T) {
	q, depth := 4, 2
	panelBytes := PanelDataBytes(q, depth) // 256 bytes
	c := NewPanelCache(3 * panelBytes)

	ds := []Digest{dig(1), dig(2), dig(3), dig(4)}
	for i, d := range ds[:3] {
		if !c.Install(d, panelBlocks(q, depth, int64(i))) {
			t.Fatalf("install %d not absorbed", i)
		}
	}
	c.UnpinAll()
	if st := c.Snapshot(); st.Panels != 3 || st.Bytes != 3*panelBytes {
		t.Fatalf("expected 3 resident panels, got %+v", st)
	}

	// Touch ds[0] so ds[1] is the LRU victim, then overflow by one panel.
	if c.Get(ds[0]) == nil {
		t.Fatal("ds[0] should be resident")
	}
	c.Install(ds[3], panelBlocks(q, depth, 9))
	c.UnpinAll()
	if c.Get(ds[1]) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	for _, d := range []Digest{ds[0], ds[2], ds[3]} {
		if c.Get(d) == nil {
			t.Fatalf("panel %v unexpectedly evicted", d)
		}
	}
	if st := c.Snapshot(); st.Evictions != 1 || st.Bytes != 3*panelBytes {
		t.Fatalf("expected exactly one eviction, got %+v", st)
	}
}

func TestPanelCachePinningBlocksEviction(t *testing.T) {
	q, depth := 4, 2
	panelBytes := PanelDataBytes(q, depth)
	c := NewPanelCache(2 * panelBytes)
	d1, d2 := dig(1), dig(2)
	c.Install(d1, panelBlocks(q, depth, 1))
	c.Install(d2, panelBlocks(q, depth, 2))
	c.UnpinAll()

	// BeginJob pins both; installing two more panels overshoots the budget
	// because nothing evictable remains.
	have := c.BeginJob([]Digest{d1, d2, dig(3)})
	if !have[0] || !have[1] || have[2] {
		t.Fatalf("unexpected handshake answer %v", have)
	}
	c.Install(dig(4), panelBlocks(q, depth, 4))
	c.Install(dig(5), panelBlocks(q, depth, 5))
	if st := c.Snapshot(); st.Bytes != 4*panelBytes || st.Evictions != 0 {
		t.Fatalf("pinned entries must not evict mid-job: %+v", st)
	}
	if c.Get(d1) == nil || c.Get(d2) == nil {
		t.Fatal("pinned panel evicted mid-job")
	}

	// The epoch ends: the cache trims back under budget.
	c.UnpinAll()
	if st := c.Snapshot(); st.Bytes > 2*panelBytes {
		t.Fatalf("cache still over budget after UnpinAll: %+v", st)
	}

	// A fresh BeginJob drops the previous epoch's pins by itself.
	c.BeginJob(nil)
	c.Install(dig(6), panelBlocks(q, depth, 6))
	c.Install(dig(7), panelBlocks(q, depth, 7))
	c.Install(dig(8), panelBlocks(q, depth, 8))
	c.UnpinAll()
	if st := c.Snapshot(); st.Bytes > 2*panelBytes {
		t.Fatalf("cache over budget after epoch turnover: %+v", st)
	}
}

func TestPanelCacheInstallDuplicate(t *testing.T) {
	c := NewPanelCache(0)
	d := dig(42)
	first := panelBlocks(4, 2, 1)
	if !c.Install(d, first) {
		t.Fatal("first install should absorb")
	}
	if c.Install(d, panelBlocks(4, 2, 2)) {
		t.Fatal("duplicate install must not absorb")
	}
	got := c.Get(d)
	if len(got) != 2 || got[0] != first[0] {
		t.Fatal("duplicate install replaced the resident blocks")
	}
}

func TestPanelCacheConcurrent(t *testing.T) {
	// Hammer the cache from several goroutines under a tiny budget so
	// installs, handshakes and evictions interleave; the race detector is the
	// assertion.
	c := NewPanelCache(4 * PanelDataBytes(4, 2))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := dig(int64(g*1000 + i%13))
				if c.Get(d) == nil {
					c.Install(d, panelBlocks(4, 2, int64(i)))
				}
				if i%10 == 0 {
					c.BeginJob([]Digest{d, dig(int64(i))})
				}
				c.UnpinAll()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Snapshot(); st.Bytes > 4*PanelDataBytes(4, 2) {
		t.Fatalf("cache over budget after concurrent churn: %+v", st)
	}
}

func TestRegistry(t *testing.T) {
	a := randMatrix(2, 3, 4, 1)
	b := randMatrix(3, 2, 4, 2)
	jp := PanelsForJob(a, b)
	ds := jp.Digests()
	pb := jp.PanelBytes()

	r := NewRegistry()
	if f := r.Fraction(0, jp); f != 0 {
		t.Fatalf("empty registry fraction %v", f)
	}

	// Worker 0 holds half the job's panels.
	have := map[Digest]int64{ds[0]: pb, ds[1]: pb}
	r.Absorb(0, have, ds)
	if f := r.Fraction(0, jp); f != 0.5 {
		t.Fatalf("fraction %v, want 0.5", f)
	}
	if p, by := r.Resident(0); p != 2 || by != 2*pb {
		t.Fatalf("resident (%d, %d), want (2, %d)", p, by, 2*pb)
	}

	// A later job learns the worker no longer holds ds[1]: queried-but-absent
	// entries are dropped.
	r.Absorb(0, map[Digest]int64{ds[0]: pb}, ds)
	if f := r.Fraction(0, jp); f != 0.25 {
		t.Fatalf("fraction after partial absorb %v, want 0.25", f)
	}

	// Absorbing for one worker never touches another.
	r.Absorb(1, have, ds)
	r.Invalidate(0)
	if p, _ := r.Resident(0); p != 0 {
		t.Fatal("invalidate left residency behind")
	}
	if f := r.Fraction(1, jp); f != 0.5 {
		t.Fatalf("unrelated worker lost residency: %v", f)
	}
}
