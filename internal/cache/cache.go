// Package cache is the operand-panel caching layer of the serve runtime: it
// content-addresses the A row-panels and B column-panels a job installs on
// its workers, so a worker that already holds a panel from an earlier job
// never receives it again.
//
// Three pieces cooperate across the process boundary:
//
//   - Digest / JobPanels: content hashes of whole panels (an A row-panel or a
//     B column-panel is t blocks of q×q float64s — the unit a chunk's
//     installments stream in full), computed once per operand and carried
//     through the wire protocols.
//   - PanelCache: the worker-side bounded LRU, keyed by digest, holding
//     installed panels across leases. Entries touched by the current job are
//     pinned — the have/need handshake promises them to the master for the
//     job's duration, so eviction may only take unpinned entries (the cache
//     can transiently exceed its budget rather than break that promise).
//   - Registry: the master-side advisory resident-set tracker the scheduler
//     scores affinity with. It is deliberately *not* trusted for transfer
//     skipping — the per-job have/need handshake is the only authority on
//     what a worker holds, so a stale registry entry (worker evicted, worker
//     crashed and re-dialed) can cost a transfer but never corrupt C.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
	"sync"

	"repro/internal/matrix"
)

// DigestLen is the wire size of a panel digest.
const DigestLen = 16

// Digest identifies a panel by content: the first 16 bytes of a SHA-256 over
// the panel's shape and float64 bit patterns. Two operands sharing a row (or
// column) of identical blocks share the digest, whatever matrix object they
// came from — that is what lets a re-submitted weight matrix hit the cache.
type Digest [DigestLen]byte

// String renders a short hex form for logs.
func (d Digest) String() string { return hex.EncodeToString(d[:6]) }

// hashBlock folds one q×q block (nil = implicit zero block) into h.
func hashBlock(h io.Writer, b *matrix.Block, q int, scratch []byte) []byte {
	n := 8 * q
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if b == nil {
		for i := range scratch {
			scratch[i] = 0
		}
		for r := 0; r < q; r++ {
			h.Write(scratch)
		}
		return scratch
	}
	for r := 0; r < q; r++ {
		row := b.Data[r*q : (r+1)*q]
		for i, v := range row {
			binary.LittleEndian.PutUint64(scratch[i*8:], math.Float64bits(v))
		}
		h.Write(scratch)
	}
	return scratch
}

// panelDigest hashes t blocks (fetched by index) under a (q, t) shape header.
func panelDigest(q, t int, block func(k int) *matrix.Block) Digest {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(q))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(t))
	h.Write(hdr[:])
	var scratch []byte
	for k := 0; k < t; k++ {
		scratch = hashBlock(h, block(k), q, scratch)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// RowPanelDigest hashes row panel i of m: blocks (i, 0..Cols) in k order.
// Implicit zero blocks hash as zero blocks without being materialized.
func RowPanelDigest(m *matrix.BlockMatrix, i int) Digest {
	return panelDigest(m.Q, m.Cols, func(k int) *matrix.Block { return m.PeekBlock(i, k) })
}

// ColPanelDigest hashes column panel j of m: blocks (0..Rows, j) in k order.
func ColPanelDigest(m *matrix.BlockMatrix, j int) Digest {
	return panelDigest(m.Q, m.Rows, func(k int) *matrix.Block { return m.PeekBlock(k, j) })
}

// PanelDataBytes is the payload size of one panel: t blocks of q×q float64s.
// Every panel of one job — A row-panels and B column-panels alike — shares
// it, since both run the full inner dimension t.
func PanelDataBytes(q, t int) int64 { return 8 * int64(q) * int64(q) * int64(t) }

// JobPanels is one job's complete panel identity: the digest of every A
// row-panel and B column-panel, in matrix order. It is computed once per
// submission (or memoized on a matmul Operand) and travels master→worker in
// the have/need handshake and client→daemon in the submit frame.
type JobPanels struct {
	T, Q  int
	ARows []Digest // ARows[i] = digest of A's row panel i (len R)
	BCols []Digest // BCols[j] = digest of B's column panel j (len S)
}

// PanelsForJob hashes every panel of the product's operands. A is r×t
// blocks, B is t×s blocks; both panel families have depth t.
func PanelsForJob(a, b *matrix.BlockMatrix) *JobPanels {
	jp := &JobPanels{T: a.Cols, Q: a.Q}
	jp.ARows = make([]Digest, a.Rows)
	for i := 0; i < a.Rows; i++ {
		jp.ARows[i] = RowPanelDigest(a, i)
	}
	jp.BCols = make([]Digest, b.Cols)
	for j := 0; j < b.Cols; j++ {
		jp.BCols[j] = ColPanelDigest(b, j)
	}
	return jp
}

// PanelBytes is the payload size shared by every panel of this job.
func (jp *JobPanels) PanelBytes() int64 { return PanelDataBytes(jp.Q, jp.T) }

// Digests lists the job's distinct panel digests, A rows first, in stable
// first-appearance order — the query set of the have/need handshake.
func (jp *JobPanels) Digests() []Digest {
	seen := make(map[Digest]struct{}, len(jp.ARows)+len(jp.BCols))
	out := make([]Digest, 0, len(jp.ARows)+len(jp.BCols))
	for _, fam := range [2][]Digest{jp.ARows, jp.BCols} {
		for _, d := range fam {
			if _, ok := seen[d]; ok {
				continue
			}
			seen[d] = struct{}{}
			out = append(out, d)
		}
	}
	return out
}

// entry is one cached panel. blocks are owned by the cache: they were
// absorbed off the wire (never returned to any block pool) and eviction
// simply drops them to the garbage collector.
type entry struct {
	d      Digest
	blocks []*matrix.Block
	bytes  int64
	pinned bool
	elem   *list.Element
}

// Stats is a cache snapshot.
type Stats struct {
	Panels    int   // resident panels
	Bytes     int64 // resident payload bytes
	Budget    int64
	Hits      int64 // BeginJob queries answered from residency
	Misses    int64 // BeginJob queries the master had to ship
	Evictions int64
}

// PanelCache is the worker-side panel store: a byte-budgeted LRU keyed by
// digest, shared by every session a worker daemon serves (the whole point —
// panels survive lease boundaries). All methods are safe for concurrent use,
// though the worker protocol drives it from one consumer goroutine.
//
// Pinning is the correctness contract with the master: BeginJob pins every
// queried panel that is present (the have/need answer promises them for the
// job) and Install pins what the job promotes (the master marks them
// resident the moment the chunk's result lands). Eviction never takes a
// pinned entry — a cache whose pinned set exceeds the budget runs over
// budget until UnpinAll, rather than break a promise mid-job.
type PanelCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[Digest]*entry

	hits, misses, evictions int64
}

// NewPanelCache returns a cache bounded to budget payload bytes (≤0: an
// unbounded cache — useful in tests, unwise on a real worker).
func NewPanelCache(budget int64) *PanelCache {
	return &PanelCache{budget: budget, ll: list.New(), entries: make(map[Digest]*entry)}
}

// BeginJob starts a job's pin epoch: previous pins are dropped, then each
// queried digest is answered — have[i] reports whether ds[i] is resident —
// and resident ones are pinned and refreshed in the LRU. This is the
// worker-side half of the have/need handshake.
func (c *PanelCache) BeginJob(ds []Digest) (have []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unpinAllLocked()
	have = make([]bool, len(ds))
	for i, d := range ds {
		e, ok := c.entries[d]
		if !ok {
			c.misses++
			continue
		}
		c.hits++
		e.pinned = true
		c.ll.MoveToFront(e.elem)
		have[i] = true
	}
	c.evictLocked()
	return have
}

// Get returns the resident panel's blocks (nil when absent). The blocks
// remain cache-owned: callers may read them as kernel inputs but must never
// mutate them or hand them to a block pool.
func (c *PanelCache) Get(d Digest) []*matrix.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[d]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(e.elem)
	return e.blocks
}

// Install stores a freshly streamed panel and pins it for the rest of the
// job (the master promotes it to resident when the chunk's result returns,
// so it must survive until the pin epoch ends). Ownership of blocks moves to
// the cache; if the digest is already resident the existing entry wins and
// the caller keeps ownership of its blocks (reported by absorbed=false).
func (c *PanelCache) Install(d Digest, blocks []*matrix.Block) (absorbed bool) {
	var bytes int64
	for _, b := range blocks {
		if b != nil {
			bytes += 8 * int64(b.Q) * int64(b.Q)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[d]; ok {
		e.pinned = true
		c.ll.MoveToFront(e.elem)
		return false
	}
	e := &entry{d: d, blocks: blocks, bytes: bytes, pinned: true}
	e.elem = c.ll.PushFront(e)
	c.entries[d] = e
	c.bytes += bytes
	c.evictLocked()
	return true
}

// UnpinAll ends the pin epoch (session end, or a new job's BeginJob) and
// trims the cache back under budget.
func (c *PanelCache) UnpinAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unpinAllLocked()
	c.evictLocked()
}

func (c *PanelCache) unpinAllLocked() {
	for e := c.ll.Front(); e != nil; e = e.Next() {
		e.Value.(*entry).pinned = false
	}
}

// evictLocked drops least-recently-used unpinned entries until the cache
// fits its budget. Evicted blocks are simply unreferenced — they were never
// pool-owned, so the garbage collector reclaims them.
func (c *PanelCache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for e := c.ll.Back(); e != nil && c.bytes > c.budget; {
		ent := e.Value.(*entry)
		prev := e.Prev()
		if !ent.pinned {
			c.ll.Remove(e)
			delete(c.entries, ent.d)
			c.bytes -= ent.bytes
			c.evictions++
		}
		e = prev
	}
}

// Snapshot reports the cache's current occupancy and lifetime counters.
func (c *PanelCache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Panels: len(c.entries), Bytes: c.bytes, Budget: c.budget,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
