package trace

import (
	"math"
	"strings"
	"testing"
)

func denseTrace() *Trace {
	// Master busy 95 of 100 → master-bound.
	tr := &Trace{Workers: 2}
	at := 0.0
	for i := 0; i < 19; i++ {
		tr.Transfers = append(tr.Transfers, Transfer{Worker: i % 2, Kind: SendAB, Blocks: 5, Start: at, End: at + 5})
		at += 5
	}
	tr.Transfers = append(tr.Transfers, Transfer{Worker: 0, Kind: RecvC, Blocks: 1, Start: 99, End: 100})
	tr.Computes = append(tr.Computes, Compute{Worker: 0, Updates: 10, Start: 5, End: 30})
	tr.Computes = append(tr.Computes, Compute{Worker: 1, Updates: 10, Start: 10, End: 35})
	return tr
}

func TestAnalyzeMasterBound(t *testing.T) {
	a := denseTrace().Analyze()
	if a.Classification != MasterBound {
		t.Errorf("classification = %v, want master-bound (util %.2f)", a.Classification, a.MasterUtil)
	}
	if a.EnrolledWorkers != 2 {
		t.Errorf("enrolled = %d", a.EnrolledWorkers)
	}
	if math.Abs(a.MasterUtil-0.96) > 1e-9 {
		t.Errorf("master util = %v, want 0.96", a.MasterUtil)
	}
}

func TestAnalyzeComputeBound(t *testing.T) {
	tr := &Trace{
		Workers:   1,
		Transfers: []Transfer{{Worker: 0, Kind: SendC, Blocks: 1, Start: 0, End: 1}},
		Computes:  []Compute{{Worker: 0, Updates: 100, Start: 1, End: 100}},
	}
	a := tr.Analyze()
	if a.Classification != ComputeBound {
		t.Errorf("classification = %v, want compute-bound", a.Classification)
	}
	if a.PeakWorkerUtil < 0.98 {
		t.Errorf("peak worker util = %v", a.PeakWorkerUtil)
	}
}

func TestAnalyzeMixed(t *testing.T) {
	tr := &Trace{
		Workers:   1,
		Transfers: []Transfer{{Worker: 0, Kind: SendC, Blocks: 1, Start: 0, End: 10}},
		Computes:  []Compute{{Worker: 0, Updates: 5, Start: 10, End: 20}},
	}
	// Makespan 20, master 50%, worker 50%.
	a := tr.Analyze()
	if a.Classification != Mixed {
		t.Errorf("classification = %v, want mixed", a.Classification)
	}
}

func TestAnalyzeCIOShare(t *testing.T) {
	tr := &Trace{
		Workers: 1,
		Transfers: []Transfer{
			{Worker: 0, Kind: SendC, Blocks: 4, Start: 0, End: 4},
			{Worker: 0, Kind: SendAB, Blocks: 12, Start: 4, End: 16},
			{Worker: 0, Kind: RecvC, Blocks: 4, Start: 16, End: 20},
		},
	}
	a := tr.Analyze()
	if math.Abs(a.CIOShare-0.4) > 1e-9 {
		t.Errorf("C I/O share = %v, want 0.4", a.CIOShare)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := (&Trace{}).Analyze()
	if a.Makespan != 0 || a.EnrolledWorkers != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}

func TestReportRenders(t *testing.T) {
	rep := denseTrace().Analyze().Report()
	for _, want := range []string{"master-bound", "P1", "P2", "updates"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestBottleneckString(t *testing.T) {
	if MasterBound.String() != "master-bound" || ComputeBound.String() != "compute-bound" || Mixed.String() != "mixed" {
		t.Error("bottleneck names wrong")
	}
}
