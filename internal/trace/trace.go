// Package trace records what a simulated (or real) execution did: every
// master transfer, every worker compute interval, and summary statistics —
// makespan, enrolled workers, communication volume, master utilization. The
// experiment harness consumes these to build the paper's relative-cost and
// relative-work figures, and the bound package audits the per-worker access
// streams they induce.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind labels a transfer direction/content.
type Kind uint8

const (
	SendC  Kind = iota // master → worker: C chunk
	SendAB             // master → worker: one installment of A and B blocks
	RecvC              // worker → master: finished C chunk
)

func (k Kind) String() string {
	switch k {
	case SendC:
		return "sendC"
	case SendAB:
		return "sendAB"
	case RecvC:
		return "recvC"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Transfer is one master-port occupation.
type Transfer struct {
	Worker     int
	Kind       Kind
	Blocks     int
	Start, End float64
}

// Compute is one worker compute interval (one installment's updates).
type Compute struct {
	Worker     int
	Updates    int64
	Start, End float64
}

// Trace is the full record of one execution.
type Trace struct {
	Algorithm string
	Workers   int
	Transfers []Transfer
	Computes  []Compute
}

// Stats are the summary measurements the experiments report.
type Stats struct {
	Makespan      float64
	Enrolled      int     // workers that received at least one block
	CommBlocks    int64   // total blocks through the master port
	Updates       int64   // total block updates performed
	MasterBusy    float64 // time the master port was occupied
	ComputeVolume float64 // Σ worker compute time
}

// Work is the relative-work numerator of the paper: makespan × enrolled.
func (s Stats) Work() float64 { return s.Makespan * float64(s.Enrolled) }

// Stats computes summary statistics from the raw record.
func (t *Trace) Stats() Stats {
	var s Stats
	enrolled := make(map[int]bool)
	for _, tr := range t.Transfers {
		if tr.End > s.Makespan {
			s.Makespan = tr.End
		}
		s.CommBlocks += int64(tr.Blocks)
		s.MasterBusy += tr.End - tr.Start
		enrolled[tr.Worker] = true
	}
	for _, c := range t.Computes {
		if c.End > s.Makespan {
			s.Makespan = c.End
		}
		s.Updates += c.Updates
		s.ComputeVolume += c.End - c.Start
	}
	s.Enrolled = len(enrolled)
	return s
}

// Validate checks the structural invariants every one-port execution must
// satisfy: transfers do not overlap each other (one-port master), and no
// worker's compute intervals overlap (sequential compute). It returns the
// first violation found.
func (t *Trace) Validate() error {
	trs := append([]Transfer(nil), t.Transfers...)
	sort.Slice(trs, func(i, j int) bool { return trs[i].Start < trs[j].Start })
	const tol = 1e-9
	for i := 1; i < len(trs); i++ {
		if trs[i].Start < trs[i-1].End-tol {
			return fmt.Errorf("trace: one-port violation: transfer %d (%s→P%d, starts %.6g) overlaps previous (ends %.6g)",
				i, trs[i].Kind, trs[i].Worker+1, trs[i].Start, trs[i-1].End)
		}
	}
	byWorker := map[int][]Compute{}
	for _, c := range t.Computes {
		byWorker[c.Worker] = append(byWorker[c.Worker], c)
	}
	for w, cs := range byWorker {
		sort.Slice(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
		for i := 1; i < len(cs); i++ {
			if cs[i].Start < cs[i-1].End-tol {
				return fmt.Errorf("trace: worker P%d computes overlap at %.6g", w+1, cs[i].Start)
			}
		}
	}
	for _, tr := range t.Transfers {
		if tr.End < tr.Start || tr.Blocks <= 0 {
			return fmt.Errorf("trace: malformed transfer %+v", tr)
		}
	}
	return nil
}

// WriteCSV emits the transfers and computes as CSV rows for external
// plotting: type,worker,kind,blocks/updates,start,end.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "type,worker,kind,amount,start,end"); err != nil {
		return err
	}
	for _, tr := range t.Transfers {
		if _, err := fmt.Fprintf(w, "transfer,%d,%s,%d,%g,%g\n", tr.Worker, tr.Kind, tr.Blocks, tr.Start, tr.End); err != nil {
			return err
		}
	}
	for _, c := range t.Computes {
		if _, err := fmt.Fprintf(w, "compute,%d,update,%d,%g,%g\n", c.Worker, c.Updates, c.Start, c.End); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders a coarse text Gantt chart (one row per worker plus the
// master) with the given number of character columns. Intended for CLI
// inspection of small runs.
func (t *Trace) Gantt(cols int) string {
	s := t.Stats()
	if s.Makespan == 0 || cols <= 0 {
		return ""
	}
	scale := float64(cols) / s.Makespan
	paint := func(row []byte, start, end float64, ch byte) {
		a, b := int(start*scale), int(end*scale)
		if b >= len(row) {
			b = len(row) - 1
		}
		for i := a; i <= b; i++ {
			row[i] = ch
		}
	}
	master := blankRow(cols)
	rows := make([][]byte, t.Workers)
	for i := range rows {
		rows[i] = blankRow(cols)
	}
	for _, tr := range t.Transfers {
		ch := byte('c')
		switch tr.Kind {
		case SendAB:
			ch = 's'
		case RecvC:
			ch = 'r'
		}
		paint(master, tr.Start, tr.End, ch)
	}
	for _, c := range t.Computes {
		paint(rows[c.Worker], c.Start, c.End, '#')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s|%s|\n", "master", master)
	for i, row := range rows {
		fmt.Fprintf(&b, "%-8s|%s|\n", fmt.Sprintf("P%d", i+1), row)
	}
	return b.String()
}

func blankRow(cols int) []byte {
	row := make([]byte, cols)
	for i := range row {
		row[i] = ' '
	}
	return row
}
