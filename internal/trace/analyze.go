package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Bottleneck classifies what limited a run's makespan.
type Bottleneck int

const (
	// MasterBound: the master port is busy most of the makespan — adding
	// workers cannot help; ordering and volume reduction can.
	MasterBound Bottleneck = iota
	// ComputeBound: some worker computes most of the makespan while the port
	// has slack — enrollment or balance is the lever.
	ComputeBound
	// Mixed: neither resource dominates; fill/drain and dependency stalls
	// account for the rest.
	Mixed
)

func (b Bottleneck) String() string {
	switch b {
	case MasterBound:
		return "master-bound"
	case ComputeBound:
		return "compute-bound"
	default:
		return "mixed"
	}
}

// WorkerLoad describes one worker's share of an execution.
type WorkerLoad struct {
	Worker      int
	ComputeBusy float64 // total compute time
	CommBusy    float64 // total time its link was in use
	Updates     int64
	Utilization float64 // ComputeBusy / makespan
}

// Analysis is the utilization breakdown of a trace.
type Analysis struct {
	Makespan        float64
	MasterBusy      float64
	MasterUtil      float64
	CIOShare        float64 // fraction of port time spent on C chunks
	Workers         []WorkerLoad
	PeakWorkerUtil  float64
	Classification  Bottleneck
	ImbalanceRatio  float64 // max/mean compute busy over enrolled workers
	EnrolledWorkers int
	TotalUpdates    int64
	TotalCommBlocks int64
	CommPerUpdate   float64
}

// Analyze computes the utilization breakdown. Thresholds: a resource above
// 90% of the makespan is considered the bottleneck.
func (t *Trace) Analyze() Analysis {
	s := t.Stats()
	a := Analysis{
		Makespan:        s.Makespan,
		MasterBusy:      s.MasterBusy,
		TotalUpdates:    s.Updates,
		TotalCommBlocks: s.CommBlocks,
	}
	if s.Makespan <= 0 {
		return a
	}
	a.MasterUtil = s.MasterBusy / s.Makespan
	var cio float64
	commBusy := map[int]float64{}
	for _, tr := range t.Transfers {
		d := tr.End - tr.Start
		if tr.Kind != SendAB {
			cio += d
		}
		commBusy[tr.Worker] += d
	}
	if s.MasterBusy > 0 {
		a.CIOShare = cio / s.MasterBusy
	}
	compute := map[int]float64{}
	updates := map[int]int64{}
	for _, c := range t.Computes {
		compute[c.Worker] += c.End - c.Start
		updates[c.Worker] += c.Updates
	}
	workers := make([]int, 0, len(commBusy))
	for w := range commBusy {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	var sumBusy float64
	for _, w := range workers {
		load := WorkerLoad{
			Worker:      w,
			ComputeBusy: compute[w],
			CommBusy:    commBusy[w],
			Updates:     updates[w],
			Utilization: compute[w] / s.Makespan,
		}
		a.Workers = append(a.Workers, load)
		if load.Utilization > a.PeakWorkerUtil {
			a.PeakWorkerUtil = load.Utilization
		}
		sumBusy += compute[w]
	}
	a.EnrolledWorkers = len(workers)
	if len(workers) > 0 && sumBusy > 0 {
		mean := sumBusy / float64(len(workers))
		var peak float64
		for _, w := range a.Workers {
			if w.ComputeBusy > peak {
				peak = w.ComputeBusy
			}
		}
		a.ImbalanceRatio = peak / mean
	}
	if s.Updates > 0 {
		a.CommPerUpdate = float64(s.CommBlocks) / float64(s.Updates)
	}
	switch {
	case a.MasterUtil >= 0.9:
		a.Classification = MasterBound
	case a.PeakWorkerUtil >= 0.9:
		a.Classification = ComputeBound
	default:
		a.Classification = Mixed
	}
	return a
}

// Report renders the analysis as a human-readable block.
func (a Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.1f — %s (master %.1f%% busy, C I/O %.1f%% of port; peak worker %.1f%%)\n",
		a.Makespan, a.Classification, 100*a.MasterUtil, 100*a.CIOShare, 100*a.PeakWorkerUtil)
	fmt.Fprintf(&b, "%d workers enrolled, imbalance %.2f, %.4f comm blocks per update\n",
		a.EnrolledWorkers, a.ImbalanceRatio, a.CommPerUpdate)
	for _, w := range a.Workers {
		fmt.Fprintf(&b, "  P%-3d compute %6.1f%%  link %6.1f%%  updates %d\n",
			w.Worker+1, 100*w.Utilization, 100*w.CommBusy/a.Makespan, w.Updates)
	}
	return b.String()
}
