package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorder records spans from several goroutines and checks the
// snapshot: relative-seconds timeline, worker count, and isolation of the
// returned copy from later recording.
func TestRecorder(t *testing.T) {
	r := NewRecorder("Het")
	base := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.Transfer(w, SendC, 4, base, base.Add(time.Millisecond))
			r.Transfer(w, RecvC, 4, base.Add(2*time.Millisecond), base.Add(3*time.Millisecond))
			r.Compute(w, 8, base.Add(time.Millisecond), base.Add(2*time.Millisecond))
		}(w)
	}
	wg.Wait()

	tr := r.Trace()
	if tr.Algorithm != "Het" || tr.Workers != 3 {
		t.Errorf("algorithm=%q workers=%d", tr.Algorithm, tr.Workers)
	}
	if len(tr.Transfers) != 6 || len(tr.Computes) != 3 {
		t.Fatalf("recorded %d transfers, %d computes", len(tr.Transfers), len(tr.Computes))
	}
	for _, x := range tr.Transfers {
		if x.End < x.Start || x.Start < 0 {
			t.Errorf("transfer span [%g, %g] not ordered on the relative timeline", x.Start, x.End)
		}
	}
	// The snapshot is a copy: recording more must not grow it.
	r.Transfer(0, SendAB, 1, base, base)
	if len(tr.Transfers) != 6 {
		t.Error("snapshot aliases the recorder's live slice")
	}
}

func TestRecorderContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("FromContext on a bare context should be nil")
	}
	r := NewRecorder("BMM")
	if got := FromContext(NewContext(context.Background(), r)); got != r {
		t.Error("recorder did not round-trip through the context")
	}
}

// TestWriteChromeTrace checks the export is valid trace-event JSON with one
// metadata event per process and worker and one complete ("X") event per
// recorded span, timestamps scaled to microseconds.
func TestWriteChromeTrace(t *testing.T) {
	tr := &Trace{
		Algorithm: "Het",
		Workers:   2,
		Transfers: []Transfer{
			{Worker: 0, Kind: SendC, Blocks: 4, Start: 0, End: 0.001},
			{Worker: 1, Kind: SendAB, Blocks: 2, Start: 0.001, End: 0.003},
			{Worker: 0, Kind: RecvC, Blocks: 4, Start: 0.004, End: 0.005},
		},
		Computes: []Compute{{Worker: 1, Updates: 16, Start: 0.003, End: 0.004}},
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Ph+":"+e.Name]++
	}
	want := map[string]int{
		"M:process_name": 1, "M:thread_name": 2,
		"X:sendC": 1, "X:sendAB": 1, "X:recvC": 1, "X:compute": 1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s events = %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Pid != 1 || e.Tid < 1 || e.Tid > 2 {
			t.Errorf("event %s pid=%d tid=%d", e.Name, e.Pid, e.Tid)
		}
		if e.Name == "sendAB" && (e.Ts != 1000 || e.Dur != 2000) {
			t.Errorf("sendAB ts=%g dur=%g, want µs-scaled 1000/2000", e.Ts, e.Dur)
		}
	}
}
