package trace

import (
	"context"
	"sync"
	"time"
)

// Recorder accumulates a Trace from a real execution. The executors emit
// one event per protocol step — SendC, each SendAB installment, RecvC — at
// the same points where they already time transfers for adapt.Tracker, so a
// recorded job carries exactly 2 + len(Panels) transfers per chunk.
// Timestamps are wall-clock, stored as seconds since the recorder was
// created (the same float timeline simulated traces use, so Stats, Gantt,
// Analyze and the Chrome export all work on recorded runs unchanged).
//
// All methods are safe for concurrent use; executors running one goroutine
// per worker share a single Recorder.
type Recorder struct {
	mu    sync.Mutex
	start time.Time
	t     Trace
}

// NewRecorder starts an empty recording; algorithm labels the trace.
func NewRecorder(algorithm string) *Recorder {
	return &Recorder{start: time.Now(), t: Trace{Algorithm: algorithm}}
}

// Transfer records one master↔worker transfer of the given kind spanning
// [start, end].
func (r *Recorder) Transfer(w int, kind Kind, blocks int, start, end time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.t.Transfers = append(r.t.Transfers, Transfer{
		Worker: w, Kind: kind, Blocks: blocks,
		Start: start.Sub(r.start).Seconds(), End: end.Sub(r.start).Seconds(),
	})
	if w+1 > r.t.Workers {
		r.t.Workers = w + 1
	}
}

// Compute records a block-update span on worker w.
func (r *Recorder) Compute(w int, updates int64, start, end time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.t.Computes = append(r.t.Computes, Compute{
		Worker: w, Updates: updates,
		Start: start.Sub(r.start).Seconds(), End: end.Sub(r.start).Seconds(),
	})
	if w+1 > r.t.Workers {
		r.t.Workers = w + 1
	}
}

// Trace returns a snapshot of everything recorded so far.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := Trace{
		Algorithm: r.t.Algorithm,
		Workers:   r.t.Workers,
		Transfers: append([]Transfer(nil), r.t.Transfers...),
		Computes:  append([]Compute(nil), r.t.Computes...),
	}
	return &t
}

type ctxKey struct{}

// NewContext returns ctx carrying the recorder; the executors pick it up
// with FromContext, so recording needs no API change anywhere between the
// facade and the transfer loop.
func NewContext(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder carried by ctx, or nil when the run is
// not being recorded (the executors' hot paths check the nil once per
// worker goroutine, not per transfer).
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
