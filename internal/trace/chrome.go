package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, Perfetto). "X" complete events carry ts+dur; "M"
// metadata events name processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each worker becomes a
// thread (tid = worker index + 1); transfers and computes become complete
// ("X") events with microsecond timestamps on the trace's float timeline,
// so one-port serialization on the master is visible as non-overlapping
// transfer slices across the worker rows.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, 1+t.Workers+len(t.Transfers)+len(t.Computes))
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "matmul " + t.Algorithm},
	})
	for i := 0; i < t.Workers; i++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": fmt.Sprintf("P%d", i+1)},
		})
	}
	for _, tr := range t.Transfers {
		evs = append(evs, chromeEvent{
			Name: tr.Kind.String(), Ph: "X", Pid: 1, Tid: tr.Worker + 1,
			Ts: tr.Start * 1e6, Dur: (tr.End - tr.Start) * 1e6,
			Args: map[string]any{"blocks": tr.Blocks},
		})
	}
	for _, c := range t.Computes {
		evs = append(evs, chromeEvent{
			Name: "compute", Ph: "X", Pid: 1, Tid: c.Worker + 1,
			Ts: c.Start * 1e6, Dur: (c.End - c.Start) * 1e6,
			Args: map[string]any{"updates": c.Updates},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{evs, "ms"})
}
