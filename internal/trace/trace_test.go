package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Trace {
	return &Trace{
		Algorithm: "test",
		Workers:   2,
		Transfers: []Transfer{
			{Worker: 0, Kind: SendC, Blocks: 4, Start: 0, End: 4},
			{Worker: 0, Kind: SendAB, Blocks: 2, Start: 4, End: 6},
			{Worker: 1, Kind: SendC, Blocks: 4, Start: 6, End: 10},
			{Worker: 0, Kind: RecvC, Blocks: 4, Start: 10, End: 14},
		},
		Computes: []Compute{
			{Worker: 0, Updates: 4, Start: 6, End: 10},
		},
	}
}

func TestStats(t *testing.T) {
	s := sample().Stats()
	if s.Makespan != 14 {
		t.Errorf("makespan = %g, want 14", s.Makespan)
	}
	if s.CommBlocks != 14 {
		t.Errorf("comm blocks = %d, want 14", s.CommBlocks)
	}
	if s.Enrolled != 2 {
		t.Errorf("enrolled = %d, want 2", s.Enrolled)
	}
	if s.Updates != 4 {
		t.Errorf("updates = %d, want 4", s.Updates)
	}
	if s.MasterBusy != 14 { // 4 + 2 + 4 + 4
		t.Errorf("master busy = %g, want 14", s.MasterBusy)
	}
	if s.Work() != 28 {
		t.Errorf("work = %g, want 28", s.Work())
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesOnePortViolation(t *testing.T) {
	tr := sample()
	tr.Transfers = append(tr.Transfers, Transfer{Worker: 1, Kind: SendAB, Blocks: 1, Start: 5, End: 7})
	if tr.Validate() == nil {
		t.Fatal("overlapping transfers not detected")
	}
}

func TestValidateCatchesComputeOverlap(t *testing.T) {
	tr := sample()
	tr.Computes = append(tr.Computes, Compute{Worker: 0, Updates: 1, Start: 8, End: 9})
	if tr.Validate() == nil {
		t.Fatal("overlapping computes on one worker not detected")
	}
}

func TestValidateCatchesMalformedTransfer(t *testing.T) {
	tr := &Trace{Workers: 1, Transfers: []Transfer{{Worker: 0, Kind: SendC, Blocks: 0, Start: 0, End: 1}}}
	if tr.Validate() == nil {
		t.Fatal("zero-block transfer not detected")
	}
}

func TestValidateAllowsDifferentWorkerComputeOverlap(t *testing.T) {
	tr := sample()
	tr.Computes = append(tr.Computes, Compute{Worker: 1, Updates: 1, Start: 8, End: 9})
	if err := tr.Validate(); err != nil {
		t.Fatalf("computes on different workers may overlap: %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4+1 {
		t.Fatalf("CSV has %d lines, want 6:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "transfer,0,sendC,4,0,4") {
		t.Errorf("unexpected first row %q", lines[1])
	}
}

func TestGantt(t *testing.T) {
	g := sample().Gantt(40)
	if !strings.Contains(g, "master") || !strings.Contains(g, "P2") {
		t.Errorf("Gantt missing rows:\n%s", g)
	}
	if !strings.Contains(g, "#") {
		t.Errorf("Gantt missing compute marks:\n%s", g)
	}
	if (&Trace{}).Gantt(10) != "" {
		t.Error("empty trace should render empty Gantt")
	}
}

func TestKindString(t *testing.T) {
	if SendC.String() != "sendC" || SendAB.String() != "sendAB" || RecvC.String() != "recvC" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind formatting wrong")
	}
}
