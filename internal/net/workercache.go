package net

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/matrix"
)

// pendingPanel is a panel mid-stream: a job's digest-addressed installments
// each contribute one k-range of blocks, and the chunk's flush promotes the
// panel into the cache once every position is covered. covered counts filled
// positions, so duplicate contributions (the same digest appearing as two
// rows of one chunk) are detected without rescanning.
type pendingPanel struct {
	blocks  []*matrix.Block
	covered int
}

// compact returns the non-nil blocks for recycling when the panel is
// discarded instead of promoted.
func (p *pendingPanel) compact() []*matrix.Block {
	out := p.blocks[:0]
	for _, b := range p.blocks {
		if b != nil {
			out = append(out, b)
		}
	}
	return out
}

// assembleInstallD reconstructs a digest-addressed installment's full A/B
// panel lists: resident panels come from the cache, the rest from the
// frame's payload — whose block order is MsgInstall's order minus the
// omissions (included A rows row-major, then B blocks k-major with resident
// columns skipped per k). Wire blocks are absorbed into pending as they
// pass; the returned extras are the ones pending had no vacancy for
// (duplicate-digest contributions), which the caller recycles after the
// installment is applied.
func assembleInstallD(msg *Msg, cur matrix.Chunk, pc *cache.PanelCache, pending map[cache.Digest]*pendingPanel) (am, bm, extras []*matrix.Block, err error) {
	d := msg.K1 - msg.K0
	if d <= 0 || msg.K0 < 0 || msg.K1 > msg.T || msg.T > maxPanelRefs {
		return nil, nil, nil, fmt.Errorf("install-digest range [%d,%d) of depth %d", msg.K0, msg.K1, msg.T)
	}
	if len(msg.ARefs) != cur.H || len(msg.BRefs) != cur.W {
		return nil, nil, nil, fmt.Errorf("install-digest refs %d×%d for chunk %v", len(msg.ARefs), len(msg.BRefs), cur)
	}
	wired := 0
	for _, r := range msg.ARefs {
		if !r.Resident {
			wired += d
		}
	}
	for _, r := range msg.BRefs {
		if !r.Resident {
			wired += d
		}
	}
	if len(msg.Blocks) != wired {
		return nil, nil, nil, fmt.Errorf("install-digest payload %d blocks, expected %d", len(msg.Blocks), wired)
	}

	resident := func(dg cache.Digest) ([]*matrix.Block, error) {
		if pc == nil {
			return nil, fmt.Errorf("install-digest references resident panel %v but caching is off", dg)
		}
		pb := pc.Get(dg)
		if len(pb) != msg.T {
			// The handshake (or a promoted chunk) promised this panel and
			// promised panels are pinned, so absence is a protocol breach,
			// not an eviction race. Failing the session is the safe answer:
			// the master fails over and replays the chunk elsewhere.
			return nil, fmt.Errorf("install-digest references panel %v: not resident", dg)
		}
		return pb, nil
	}
	absorb := func(dg cache.Digest, pos int, b *matrix.Block) {
		if pc == nil {
			extras = append(extras, b)
			return
		}
		ent := pending[dg]
		if ent == nil {
			ent = &pendingPanel{blocks: make([]*matrix.Block, msg.T)}
			pending[dg] = ent
		}
		if len(ent.blocks) != msg.T || ent.blocks[pos] != nil {
			extras = append(extras, b)
			return
		}
		ent.blocks[pos] = b
		ent.covered++
	}

	am = make([]*matrix.Block, cur.H*d)
	bm = make([]*matrix.Block, d*cur.W)
	p := 0
	for i, r := range msg.ARefs {
		if r.Resident {
			pb, err := resident(r.D)
			if err != nil {
				return nil, nil, nil, err
			}
			copy(am[i*d:(i+1)*d], pb[msg.K0:msg.K1])
			continue
		}
		wire := msg.Blocks[p : p+d]
		p += d
		copy(am[i*d:(i+1)*d], wire)
		for k, b := range wire {
			absorb(r.D, msg.K0+k, b)
		}
	}
	colPanels := make([][]*matrix.Block, cur.W)
	for j, r := range msg.BRefs {
		if r.Resident {
			pb, err := resident(r.D)
			if err != nil {
				return nil, nil, nil, err
			}
			colPanels[j] = pb
		}
	}
	for k := 0; k < d; k++ {
		for j := 0; j < cur.W; j++ {
			if cp := colPanels[j]; cp != nil {
				bm[k*cur.W+j] = cp[msg.K0+k]
				continue
			}
			b := msg.Blocks[p]
			p++
			bm[k*cur.W+j] = b
			absorb(msg.BRefs[j].D, msg.K0+k, b)
		}
	}
	return am, bm, extras, nil
}
