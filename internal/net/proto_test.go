package net

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/matrix"
)

func digest(seed int64) cache.Digest {
	var d cache.Digest
	rand.New(rand.NewSource(seed)).Read(d[:])
	return d
}

func slicesEqual[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randBlocks(t *testing.T, n, q int, seed int64) []*matrix.Block {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*matrix.Block, n)
	for i := range out {
		out[i] = matrix.NewBlock(q)
		out[i].FillRandom(rng)
	}
	return out
}

func roundTrip(t *testing.T, m *Msg) *Msg {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMsg(&buf, m); err != nil {
		t.Fatalf("write %s: %v", m.Kind, err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatalf("read %s: %v", m.Kind, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%s: %d bytes left after read", m.Kind, buf.Len())
	}
	return got
}

// TestProtoRoundTripEveryKind encodes and decodes one message of every
// protocol kind and checks all fields survive bit-for-bit.
func TestProtoRoundTripEveryKind(t *testing.T) {
	ch := matrix.Chunk{Row0: 3, Col0: 7, H: 2, W: 4}
	msgs := []*Msg{
		{Kind: MsgHello, Name: "node-17", Heartbeat: 250 * time.Millisecond},
		{Kind: MsgChunk, Chunk: ch, Blocks: randBlocks(t, ch.Blocks(), 5, 1)},
		{Kind: MsgInstall, Chunk: ch, K0: 2, K1: 5, Blocks: randBlocks(t, 3*(ch.H+ch.W), 5, 2)},
		{Kind: MsgFlush, Chunk: ch},
		{Kind: MsgCancel, Chunk: ch},
		{Kind: MsgResult, Chunk: ch, Blocks: randBlocks(t, ch.Blocks(), 5, 3)},
		{Kind: MsgHeartbeat},
		{Kind: MsgShutdown},
		{Kind: MsgRelease},
		{Kind: MsgHave, Digests: []cache.Digest{digest(1), digest(2), digest(3)}},
		{Kind: MsgHaveAck, CacheOn: true, HaveBits: []bool{true, false, true}},
		{Kind: MsgHaveAck, HaveBits: []bool{false, false}},
		{Kind: MsgInstallD, Chunk: ch, K0: 2, K1: 5, T: 9,
			ARefs: []PanelRef{{D: digest(4)}, {D: digest(5), Resident: true}},
			BRefs: []PanelRef{{D: digest(6), Resident: true}, {D: digest(7)}, {D: digest(6), Resident: true}, {D: digest(8)}},
			// 1 non-resident A row and 2 non-resident B columns at depth 3.
			Blocks: randBlocks(t, 3+2*3, 5, 7)},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if got.Kind != m.Kind || got.Name != m.Name || got.Heartbeat != m.Heartbeat ||
			got.Chunk != m.Chunk || got.K0 != m.K0 || got.K1 != m.K1 || got.T != m.T ||
			got.CacheOn != m.CacheOn {
			t.Errorf("%s: fields mangled: sent %+v got %+v", m.Kind, m, got)
		}
		if !slicesEqual(got.Digests, m.Digests) || !slicesEqual(got.HaveBits, m.HaveBits) ||
			!slicesEqual(got.ARefs, m.ARefs) || !slicesEqual(got.BRefs, m.BRefs) {
			t.Errorf("%s: lists mangled: sent %+v got %+v", m.Kind, m, got)
		}
		if len(got.Blocks) != len(m.Blocks) {
			t.Fatalf("%s: %d blocks back, sent %d", m.Kind, len(got.Blocks), len(m.Blocks))
		}
		for i := range m.Blocks {
			if got.Blocks[i].MaxAbsDiff(m.Blocks[i]) != 0 {
				t.Errorf("%s: block %d not bitwise identical", m.Kind, i)
			}
		}
	}
}

// TestProtoStreamOfMessages checks framing survives back-to-back messages on
// one stream, as the socket carries them.
func TestProtoStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	ch := matrix.Chunk{H: 1, W: 1}
	sent := []*Msg{
		{Kind: MsgChunk, Chunk: ch, Blocks: randBlocks(t, 1, 3, 4)},
		{Kind: MsgHeartbeat},
		{Kind: MsgInstall, Chunk: ch, K0: 0, K1: 1, Blocks: randBlocks(t, 2, 3, 5)},
		{Kind: MsgFlush, Chunk: ch},
	}
	for _, m := range sent {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sent {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Kind != want.Kind {
			t.Fatalf("message %d: kind %s, want %s", i, got.Kind, want.Kind)
		}
	}
}

func TestProtoRejectsGarbage(t *testing.T) {
	if _, err := ReadMsg(bytes.NewReader([]byte("this is not a frame, not even close"))); err == nil {
		t.Error("garbage magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &Msg{Kind: MsgChunk, Chunk: matrix.Chunk{H: 1, W: 1}, Blocks: randBlocks(t, 1, 4, 6)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); err == nil {
		t.Error("truncated frame accepted")
	}
	if err := WriteMsg(&buf, &Msg{Kind: MsgKind(99)}); err == nil {
		t.Error("unknown kind encoded")
	}
}
