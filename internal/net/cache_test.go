package net

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
)

// cachePlatform is a small heterogeneous testbed shared by the cache tests.
func cachePlatform() *platform.Platform {
	return platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 2, W: 1.5, M: 24},
		platform.Worker{C: 1.5, W: 2, M: 60},
	)
}

// TestCacheLoopbackBitwiseAndSkips drives two jobs with identical operands
// over pooled worker sessions holding panel caches: the first job streams
// everything and seeds the caches, the second must skip every panel transfer
// — and both must produce C bitwise-identical to the in-process engine,
// cached inputs and streamed inputs being the same bits.
func TestCacheLoopbackBitwiseAndSkips(t *testing.T) {
	pl := cachePlatform()
	inst := sched.Instance{R: 7, S: 11, T: 5}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 4

	a, b, cNet, _ := testMatrices(t, inst, q, 31)
	_, _, cEng, _ := testMatrices(t, inst, q, 31)
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng); err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, pl.P(), func(i int) WorkerOptions {
		return WorkerOptions{Heartbeat: 50 * time.Millisecond, Cache: cache.NewPanelCache(0)}
	})
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	jp := cache.PanelsForJob(a, b)
	run := func(c *matrix.BlockMatrix) []WorkerCacheStats {
		t.Helper()
		m.BeginJob(jp)
		if err := m.RunPipelined(inst.T, plan, a, b, c); err != nil {
			t.Fatal(err)
		}
		st := m.CacheStats()
		m.EndJob()
		return st
	}

	st1 := run(cNet)
	if d := cNet.MaxAbsDiff(cEng); d != 0 {
		t.Errorf("first (cold) cached run differs from in-process C by %g (want bitwise equal)", d)
	}
	var sent1 int64
	for _, s := range st1 {
		if !s.CacheOn {
			t.Errorf("worker %s answered cache-off", s.Name)
		}
		if s.PanelHits != 0 {
			t.Errorf("worker %s: %d hits on a cold cache", s.Name, s.PanelHits)
		}
		sent1 += s.ASentBytes + s.BSentBytes
	}
	if sent1 == 0 {
		t.Fatal("cold run shipped no panel bytes")
	}

	// Same operands again: every panel is resident, so the whole job must
	// move zero A/B payload bytes.
	_, _, cNet2, _ := testMatrices(t, inst, q, 31)
	_, _, cEng2, _ := testMatrices(t, inst, q, 31)
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng2); err != nil {
		t.Fatal(err)
	}
	st2 := run(cNet2)
	if d := cNet2.MaxAbsDiff(cEng2); d != 0 {
		t.Errorf("warm cached run differs from in-process C by %g (want bitwise equal)", d)
	}
	// Counters are cumulative over the lease, so the warm job's traffic is
	// the delta. The plan is deterministic, so every chunk lands on the
	// worker that already holds its panels: zero bytes move.
	for i, s := range st2 {
		if sent := s.ASentBytes + s.BSentBytes - st1[i].ASentBytes - st1[i].BSentBytes; sent != 0 {
			t.Errorf("worker %s shipped %d panel bytes on a warm cache", s.Name, sent)
		}
		if hits := s.PanelHits - st1[i].PanelHits; hits == 0 {
			t.Errorf("worker %s: no handshake hits on a warm cache", s.Name)
		}
	}
}

// TestCacheOffWorkerFallsBack pairs a caching master epoch with cacheless
// workers: the handshake answers cache-off, the master stays on the legacy
// full-transfer protocol, and the result is still bitwise-correct — a mixed
// fleet cannot corrupt C.
func TestCacheOffWorkerFallsBack(t *testing.T) {
	pl := cachePlatform()
	inst := sched.Instance{R: 4, S: 6, T: 3}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 4

	a, b, cNet, _ := testMatrices(t, inst, q, 33)
	_, _, cEng, _ := testMatrices(t, inst, q, 33)
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng); err != nil {
		t.Fatal(err)
	}

	// Worker 1 runs a cache; the others do not.
	addrs := startWorkers(t, pl.P(), func(i int) WorkerOptions {
		o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 1 {
			o.Cache = cache.NewPanelCache(0)
		}
		return o
	})
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	m.BeginJob(cache.PanelsForJob(a, b))
	if err := m.RunPipelined(inst.T, plan, a, b, cNet); err != nil {
		t.Fatal(err)
	}
	st := m.CacheStats()
	m.EndJob()
	if d := cNet.MaxAbsDiff(cEng); d != 0 {
		t.Errorf("mixed-fleet C differs from in-process C by %g (want bitwise equal)", d)
	}
	for i, s := range st {
		if want := i == 1; s.CacheOn != want {
			t.Errorf("worker %d: CacheOn=%v, want %v", i, s.CacheOn, want)
		}
		if !s.CacheOn && s.ASavedBytes+s.BSavedBytes != 0 {
			t.Errorf("worker %d: skipped bytes on a cacheless worker", i)
		}
	}
}

// TestCacheTinyBudgetEvictionMidLease runs successive jobs against workers
// whose caches hold barely one panel, so installs and evictions churn while
// leases are active; under -race this doubles as the eviction-vs-lease race
// test, and every job's C must stay bitwise-correct since pinned (promised)
// panels cannot be evicted mid-job.
func TestCacheTinyBudgetEvictionMidLease(t *testing.T) {
	pl := cachePlatform()
	inst := sched.Instance{R: 5, S: 7, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 4

	a, _, _, _ := testMatrices(t, inst, q, 40)
	budget := cache.PanelDataBytes(q, inst.T) * 3 / 2 // fits one panel, not two
	addrs := startWorkers(t, pl.P(), func(i int) WorkerOptions {
		return WorkerOptions{Heartbeat: 50 * time.Millisecond, Cache: cache.NewPanelCache(budget)}
	})
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	for job := 0; job < 3; job++ {
		_, b, cNet, _ := testMatrices(t, inst, q, int64(50+job))
		_, _, cEng, _ := testMatrices(t, inst, q, int64(50+job))
		if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng); err != nil {
			t.Fatal(err)
		}
		m.BeginJob(cache.PanelsForJob(a, b))
		if err := m.RunPipelined(inst.T, plan, a, b, cNet); err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		m.EndJob()
		if d := cNet.MaxAbsDiff(cEng); d != 0 {
			t.Errorf("job %d: C differs from in-process C by %g under eviction pressure", job, d)
		}
	}
}

// TestCacheCrashFailoverStaysCorrect crashes one caching worker mid-job: the
// survivors replay its chunks through the same digest-addressed protocol and
// C must come out bitwise-identical — promotions for the dead worker's
// chunks must not leak into any survivor's residency.
func TestCacheCrashFailoverStaysCorrect(t *testing.T) {
	pl := cachePlatform()
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 4

	a, b, cNet, _ := testMatrices(t, inst, q, 60)
	_, _, cEng, _ := testMatrices(t, inst, q, 60)
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng); err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, pl.P(), func(i int) WorkerOptions {
		o := WorkerOptions{Heartbeat: 50 * time.Millisecond, Cache: cache.NewPanelCache(0)}
		if i == 1 {
			o.CrashAfterInstalls = 2
		}
		return o
	})
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	m.BeginJob(cache.PanelsForJob(a, b))
	if err := m.RunPipelined(inst.T, plan, a, b, cNet); err != nil {
		t.Fatal(err)
	}
	m.EndJob()
	if d := cNet.MaxAbsDiff(cEng); d != 0 {
		t.Errorf("failover C differs from in-process C by %g (want bitwise equal)", d)
	}
}
