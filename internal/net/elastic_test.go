package net

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sched"
)

// TestElasticJoinAndDepartOverTCP is the acceptance scenario of the elastic
// runtime at the wire level: a job starts on two real TCP workers, one
// crashes mid-job (injected), a third joins mid-job via Master.AddWorker,
// and the job must finish with C bitwise-identical to the in-process
// engine's — the re-planned chunks write the same disjoint C regions through
// the same kernel order, whoever ends up computing them.
func TestElasticJoinAndDepartOverTCP(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 60},
		platform.Worker{C: 1.2, W: 1.1, M: 60},
	)
	inst := sched.Instance{R: 8, S: 12, T: 5}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 4

	a, b, cNet, want := testMatrices(t, inst, q, 33)
	_, _, cEng, _ := testMatrices(t, inst, q, 33)
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng); err != nil {
		t.Fatal(err)
	}

	// Worker 1 crashes after two installments; workers 0 and 2 are healthy.
	// Worker 2 exists from the start but is dialed (and joined) only after
	// the departure is observed.
	addrs := startWorkers(t, 3, func(i int) WorkerOptions {
		o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 1 {
			o.CrashAfterInstalls = 2
		}
		return o
	})
	m, err := Dial(addrs[:2], &MasterOptions{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	tr := adapt.NewTracker(pl.Workers, time.Microsecond, 0)
	join := make(chan int, 1)
	departed := make(chan struct{})
	var once sync.Once
	el := &engine.Elastic{
		Tracker: tr,
		Join:    join,
		OnReplan: func(reason string, _ int) {
			if reason == "depart" {
				once.Do(func() { close(departed) })
			}
		},
	}
	joinErr := make(chan error, 1)
	go func() {
		select {
		case <-departed:
		case <-time.After(30 * time.Second):
			joinErr <- context.DeadlineExceeded
			return
		}
		wc, err := DialWorker(addrs[2], &MasterOptions{IOTimeout: 10 * time.Second})
		if err != nil {
			joinErr <- err
			return
		}
		w, err := m.AddWorker(wc)
		if err != nil {
			joinErr <- err
			return
		}
		tr.Grow(platform.Worker{C: 1, W: 1, M: 60}, time.Microsecond)
		join <- w
		joinErr <- nil
	}()

	if err := m.RunElasticContext(context.Background(), inst.T, plan, a, b, cNet, el); err != nil {
		t.Fatalf("elastic run: %v", err)
	}
	if err := <-joinErr; err != nil {
		t.Fatalf("mid-job join: %v", err)
	}
	if d := cNet.MaxAbsDiff(cEng); d != 0 {
		t.Fatalf("elastic distributed C differs from in-process C by %g (want bitwise equal)", d)
	}
	if d := cNet.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("elastic distributed C differs from serial reference by %g", d)
	}
	// The estimates must reflect real observations on the surviving workers.
	if e := tr.Estimate(0); e.Transfers == 0 {
		t.Fatal("no transfer observations recorded for worker 0")
	}
}

// TestAddWorkerAfterDetach: a spent master must reject joins — the fleet
// will have pooled its connections already.
func TestAddWorkerAfterDetach(t *testing.T) {
	addrs := startWorkers(t, 2, nil)
	m, err := Dial(addrs[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	conns := m.Detach()
	defer func() {
		for _, wc := range conns {
			if wc != nil {
				wc.Close()
			}
		}
	}()
	wc, err := DialWorker(addrs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if _, err := m.AddWorker(wc); err == nil {
		t.Fatal("AddWorker succeeded on a detached master")
	}
}

// TestElasticCancelReachesJoinedWorker: a connection joined mid-run must be
// slammed by a cancellation exactly like the original lease — a worker that
// joined after the run bound its context cannot be allowed to ride out a
// full IO timeout.
func TestElasticCancelReachesJoinedWorker(t *testing.T) {
	pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: 60})
	inst := sched.Instance{R: 4, S: 6, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	q := 3
	a, b, c, _ := testMatrices(t, inst, q, 9)

	// Both workers stall long before the IO timeout would fire; only the
	// cancellation interrupt can end the run quickly.
	addrs := startWorkers(t, 2, func(i int) WorkerOptions {
		return WorkerOptions{
			Heartbeat:          50 * time.Millisecond,
			StallAfterInstalls: 1,
			StallFor:           time.Minute,
		}
	})
	m, err := Dial(addrs[:1], &MasterOptions{IOTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	tr := adapt.NewTracker(pl.Workers, time.Microsecond, 0)
	join := make(chan int, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- m.RunElasticContext(ctx, inst.T, res.Plan(), a, b, c, &engine.Elastic{Tracker: tr, Join: join})
	}()
	// Join the second worker while the first is stalled mid-job, then cancel:
	// the whole run — joined connection included — must unwind promptly.
	wc, err := DialWorker(addrs[1], &MasterOptions{IOTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.AddWorker(wc)
	if err != nil {
		t.Fatal(err)
	}
	tr.Ensure(w)
	join <- w // the executor re-plans onto the joined (equally stalled) worker
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled elastic run reported success")
		}
		if waited := time.Since(start); waited > 10*time.Second {
			t.Fatalf("cancellation took %v; the interrupt did not reach the run", waited)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled elastic run did not return")
	}
}
