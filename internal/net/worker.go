package net

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// WorkerOptions tunes a worker endpoint.
type WorkerOptions struct {
	// Heartbeat is the interval at which the worker beats while serving a
	// master, announced in its registration. Default 500ms.
	Heartbeat time.Duration
	// IdleTimeout ends a session whose socket stays silent this long, so one
	// stalled or mute client cannot wedge the (sequential) serve loop
	// forever. Default 2 minutes; negative disables.
	IdleTimeout time.Duration
	// CrashAfterInstalls is a chaos hook for failover tests: after applying
	// this many installments the worker abruptly closes its connection, as a
	// killed process would. Zero disables.
	CrashAfterInstalls int
	// StallAfterInstalls is a chaos hook for cancellation tests: after
	// applying this many installments the worker stops consuming frames for
	// StallFor (heartbeats keep beating, so the master sees a live-but-slow
	// worker, not a dead one — the case only cancellation can end early).
	// Zero disables.
	StallAfterInstalls int
	// StallFor is how long the StallAfterInstalls stall lasts. Default 30s.
	StallFor time.Duration
	// Procs bounds the goroutines spent on each installment's block updates
	// (the chunk's C blocks are split across them; per-block arithmetic
	// order — and therefore the result — is unchanged). ≤1 computes
	// sequentially; a dedicated worker machine wants runtime.NumCPU().
	Procs int
	// Cache, when non-nil, keeps installed A/B panels across sessions: the
	// worker answers masters' have/need handshakes from it and serves
	// digest-addressed installments' resident panels locally instead of off
	// the wire. Share one cache across every session the daemon serves —
	// surviving lease boundaries is the point. Nil disables caching (the
	// worker answers every handshake "cache off" and masters fall back to
	// full transfers).
	Cache *cache.PanelCache
	// Logf, when non-nil, receives serve-loop events (registrations,
	// session ends) rendered as plain text. Superseded by Logger when both
	// are set.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives serve-loop events as structured
	// records (worker name, remote address, error attrs). Takes precedence
	// over Logf.
	Logger *slog.Logger
}

func (o WorkerOptions) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return 500 * time.Millisecond
}

func (o WorkerOptions) idleTimeout() time.Duration {
	if o.IdleTimeout != 0 {
		return o.IdleTimeout
	}
	return 2 * time.Minute
}

// logger resolves the session logger: explicit Logger first, then the
// legacy printf callback bridged through obs.LogfLogger, then discard.
func (o WorkerOptions) logger(name string) *slog.Logger {
	switch {
	case o.Logger != nil:
		return o.Logger.With("worker", name)
	case o.Logf != nil:
		return obs.LogfLogger(o.Logf).With("worker", name)
	}
	return obs.NopLogger()
}

// ErrCrashInjected reports a session ended by the CrashAfterInstalls hook.
var ErrCrashInjected = errors.New("net: worker crash injected")

// ListenAndServe listens on addr and serves master sessions sequentially,
// forever (one master drives the worker at a time, as one MPI rank would).
// It returns only on a listener error.
func ListenAndServe(addr, name string, opts WorkerOptions) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("net: worker listen %s: %w", addr, err)
	}
	defer ln.Close()
	return Serve(ln, name, opts)
}

// Serve accepts master sessions on ln sequentially, forever. Session errors
// are logged (a master vanishing must not kill the worker daemon); accept
// errors back off briefly (an fd-exhausted process must not spin); closing
// the listener ends the loop.
func Serve(ln net.Listener, name string, opts WorkerOptions) error {
	log := opts.logger(name)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return fmt.Errorf("net: worker accept: %w", err)
			}
			log.Warn("accept failed", "err", err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		log.Info("master connected", "remote", conn.RemoteAddr().String())
		if err := ServeConn(conn, name, opts); err != nil {
			log.Warn("session ended", "err", err)
		}
	}
}

// ServeOne accepts and serves exactly one master session.
func ServeOne(ln net.Listener, name string, opts WorkerOptions) error {
	log := opts.logger(name)
	conn, err := ln.Accept()
	if err != nil {
		return fmt.Errorf("net: worker accept: %w", err)
	}
	log.Info("master connected", "remote", conn.RemoteAddr().String())
	err = ServeConn(conn, name, opts)
	log.Info("session ended", "err", err)
	return err
}

// ServeConn runs one master session over conn: register, then hold a chunk,
// apply installments with the shared engine kernel, answer flushes, and beat
// the heartbeat until shutdown or release. It closes conn before returning
// and returns nil on a clean shutdown or release — after a release the serve
// loop simply accepts the next master and registers afresh.
//
// Frames are drained by a dedicated reader goroutine and processed from an
// in-memory queue, so the socket keeps emptying while an installment
// computes — the master's sends never block behind this worker's compute,
// exactly the buffered-installment overlap of the paper's memory layout.
func ServeConn(conn net.Conn, name string, opts WorkerOptions) error {
	conn = obs.CountConn(conn, wSent, wRecv)
	defer conn.Close()

	// Results and heartbeats share the connection, so writes go through one
	// mutex-guarded, immediately-flushed path with a session-lived codec
	// (one reused staging buffer for all outbound block payloads).
	var wmu sync.Mutex
	wr := bufio.NewWriterSize(conn, 1<<16)
	var enc matrix.BlockCodec
	write := func(m *Msg) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := WriteMsgCodec(wr, m, &enc); err != nil {
			return err
		}
		return wr.Flush()
	}

	hb := opts.heartbeat()
	if err := write(&Msg{Kind: MsgHello, Name: name, Kernel: kernel.Name(), Heartbeat: hb}); err != nil {
		return fmt.Errorf("net: worker %s: register: %w", name, err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// Skip a beat rather than queue behind a write in progress
				// (or one stalled on full buffers): heartbeats are liveness,
				// not data, and must never delay a result frame.
				if !wmu.TryLock() {
					continue
				}
				err := WriteMsg(wr, &Msg{Kind: MsgHeartbeat})
				if err == nil {
					err = wr.Flush()
				}
				wmu.Unlock()
				if err != nil {
					return // master is gone; the read loop will see it too
				}
			}
		}
	}()

	type frame struct {
		msg *Msg
		err error
	}
	// The idle deadline guards against clients that connect and go mute
	// before or between jobs. While a chunk is held the session is mid-job —
	// a one-port master legitimately goes silent here while it serves other
	// workers — so the deadline is disarmed; a master that dies mid-job
	// surfaces as a read error via its closing socket or, on a silent
	// partition, the kernel's TCP keepalive probes. busy flags that state to
	// the reader; a timeout that races the flag is simply retried, and the
	// consumer re-arms the deadline directly when a job completes (the
	// reader may already be blocked in a deadline-less read by then).
	var busy atomic.Bool
	idle := opts.idleTimeout()
	// Queue depth bounds how many frames a master can run ahead; one job is
	// at most a chunk, one frame per installment, and a flush, so this
	// accommodates t up to several thousand panels without ever letting the
	// reader stall the socket.
	frames := make(chan frame, 4096)
	// pool recycles every block this session receives: the consumer loop
	// puts installment panels back once applied and chunk blocks back once
	// their result frame is on the wire, so the reader's decodes stop
	// allocating once the first job has warmed the pool (sync.Pool is safe
	// for this cross-goroutine Get/Put traffic).
	var pool matrix.BlockPool
	go func() {
		rd := bufio.NewReaderSize(conn, 1<<16)
		dec := matrix.BlockCodec{Pool: &pool}
		for {
			if idle > 0 && !busy.Load() {
				conn.SetReadDeadline(time.Now().Add(idle))
			} else {
				conn.SetReadDeadline(time.Time{})
			}
			msg, err := ReadMsgCodec(rd, &dec)
			if err != nil && busy.Load() {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue // deadline armed just before the job started
				}
			}
			select {
			case frames <- frame{msg: msg, err: err}:
			case <-stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	// A pin epoch opened by a master's have/need handshake must not outlive
	// the session that promised it.
	if opts.Cache != nil {
		defer opts.Cache.UnpinAll()
	}

	var cur matrix.Chunk
	var blocks []*matrix.Block // nil ⇔ no chunk held
	// pending accumulates the current chunk's freshly-streamed panels, keyed
	// by digest: each digest-addressed installment contributes its k-range,
	// and the chunk's flush promotes every fully-covered panel into the
	// cache. Pending blocks change owner — absorbed off the wire, they are
	// never returned to the pool (the cache, or the GC on discard, reclaims
	// them).
	pending := make(map[cache.Digest]*pendingPanel)
	// discardPending recycles what it can of an abandoned pending set (a new
	// handshake arriving mid-accumulation; a session error path does not
	// bother).
	discardPending := func() {
		for dg, ent := range pending {
			pool.PutAll(ent.compact())
			delete(pending, dg)
		}
	}
	installs := 0
	for {
		f := <-frames
		if f.err != nil {
			return fmt.Errorf("net: worker %s: read: %w", name, f.err)
		}
		msg := f.msg
		switch msg.Kind {
		case MsgChunk:
			if blocks != nil {
				return fmt.Errorf("net: worker %s: received chunk %v while holding %v", name, msg.Chunk, cur)
			}
			if msg.Chunk.Blocks() != len(msg.Blocks) {
				return fmt.Errorf("net: worker %s: chunk %v carries %d blocks", name, msg.Chunk, len(msg.Blocks))
			}
			cur, blocks = msg.Chunk, msg.Blocks
			busy.Store(true)
		case MsgInstall:
			if blocks == nil {
				return fmt.Errorf("net: worker %s: received inputs with no chunk", name)
			}
			if msg.Chunk != cur {
				return fmt.Errorf("net: worker %s: inputs for %v while holding %v", name, msg.Chunk, cur)
			}
			d := msg.K1 - msg.K0
			if d <= 0 || len(msg.Blocks) != d*(cur.H+cur.W) {
				return fmt.Errorf("net: worker %s: install payload %d blocks for %v depth %d", name, len(msg.Blocks), cur, d)
			}
			am, bm := msg.Blocks[:cur.H*d], msg.Blocks[cur.H*d:]
			if err := engine.ApplyInstallmentParallel(cur, blocks, am, bm, d, opts.Procs); err != nil {
				return fmt.Errorf("net: worker %s: %w", name, err)
			}
			// The panels are consumed; recycle them for the next decode.
			pool.PutAll(msg.Blocks)
			installs++
			if opts.CrashAfterInstalls > 0 && installs >= opts.CrashAfterInstalls {
				conn.Close() // simulate a killed process: vanish mid-protocol
				return ErrCrashInjected
			}
			if opts.StallAfterInstalls > 0 && installs == opts.StallAfterInstalls {
				// Simulate a live-but-glacial worker: stop consuming for a
				// while (the heartbeat goroutine keeps beating, and the
				// reader goroutine keeps draining the socket into the frame
				// queue), then resume as if nothing happened — unless the
				// master hung up in the meantime, which the next frame read
				// reports.
				stall := opts.StallFor
				if stall <= 0 {
					stall = 30 * time.Second
				}
				time.Sleep(stall)
			}
		case MsgFlush:
			if blocks == nil {
				return fmt.Errorf("net: worker %s: flush with no chunk", name)
			}
			if msg.Chunk != cur {
				return fmt.Errorf("net: worker %s: flush for %v while holding %v", name, msg.Chunk, cur)
			}
			// Promote the chunk's fully-streamed panels before the result
			// frame leaves: the master marks them resident the moment the
			// result arrives, and its view must never run ahead of ours.
			for dg, ent := range pending {
				delete(pending, dg)
				if ent.covered != len(ent.blocks) || opts.Cache == nil {
					// A partially-covered panel at flush means the master
					// skipped installments for it mid-chunk — it never does —
					// but recycle rather than cache a hole.
					pool.PutAll(ent.compact())
					continue
				}
				if !opts.Cache.Install(dg, ent.blocks) {
					pool.PutAll(ent.blocks) // already resident; ours are spares
				}
			}
			if err := write(&Msg{Kind: MsgResult, Chunk: cur, Blocks: blocks}); err != nil {
				return fmt.Errorf("net: worker %s: send result: %w", name, err)
			}
			// The result frame is staged on the wire; the chunk blocks (also
			// pool-born, via the chunk decode) are free for reuse.
			pool.PutAll(blocks)
			blocks = nil
			busy.Store(false)
			if idle > 0 {
				// The reader may be mid-read with no deadline armed;
				// SetReadDeadline applies to blocked reads too.
				conn.SetReadDeadline(time.Now().Add(idle))
			}
		case MsgCancel:
			// The master abandoned the chunk (a k-of-n gate already got this
			// result elsewhere). If we still hold it, drop it and ack with the
			// same frame so the master knows the session is at a clean
			// boundary and can reuse it. A cancel for a chunk we no longer
			// hold is stale — the result frame is already on the wire and the
			// master will take it as a duplicate — so it is ignored, ackless
			// (an ack after the result would desync the master's next unit).
			if blocks != nil && msg.Chunk == cur {
				discardPending()
				pool.PutAll(blocks)
				blocks = nil
				busy.Store(false)
				if err := write(&Msg{Kind: MsgCancel, Chunk: msg.Chunk}); err != nil {
					return fmt.Errorf("net: worker %s: send cancel ack: %w", name, err)
				}
				if idle > 0 {
					conn.SetReadDeadline(time.Now().Add(idle))
				}
			}
		case MsgHave:
			// A master opens a panel-cache epoch: answer which of the job's
			// panels are resident, pinning them for the job's duration. A
			// cacheless worker answers all-absent with CacheOn=false so the
			// master stays on the full-transfer protocol.
			discardPending()
			ack := &Msg{Kind: MsgHaveAck}
			if opts.Cache != nil {
				ack.CacheOn = true
				ack.HaveBits = opts.Cache.BeginJob(msg.Digests)
			} else {
				ack.HaveBits = make([]bool, len(msg.Digests))
			}
			if err := write(ack); err != nil {
				return fmt.Errorf("net: worker %s: send have-ack: %w", name, err)
			}
		case MsgInstallD:
			if blocks == nil {
				return fmt.Errorf("net: worker %s: received inputs with no chunk", name)
			}
			if msg.Chunk != cur {
				return fmt.Errorf("net: worker %s: inputs for %v while holding %v", name, msg.Chunk, cur)
			}
			am, bm, extras, err := assembleInstallD(msg, cur, opts.Cache, pending)
			if err != nil {
				return fmt.Errorf("net: worker %s: %w", name, err)
			}
			if err := engine.ApplyInstallmentParallel(cur, blocks, am, bm, msg.K1-msg.K0, opts.Procs); err != nil {
				return fmt.Errorf("net: worker %s: %w", name, err)
			}
			// Only the wire blocks pending did not absorb are recyclable:
			// absorbed ones are promised to the cache, resident ones belong
			// to it already.
			pool.PutAll(extras)
			installs++
			if opts.CrashAfterInstalls > 0 && installs >= opts.CrashAfterInstalls {
				conn.Close() // simulate a killed process: vanish mid-protocol
				return ErrCrashInjected
			}
			if opts.StallAfterInstalls > 0 && installs == opts.StallAfterInstalls {
				stall := opts.StallFor
				if stall <= 0 {
					stall = 30 * time.Second
				}
				time.Sleep(stall)
			}
		case MsgHeartbeat:
			// Master keepalive for a pooled idle session (a fleet pinging
			// between jobs); the read itself already re-armed the idle
			// deadline, so there is nothing else to do.
		case MsgShutdown:
			return nil
		case MsgRelease:
			// End of a leased session: back to the accept loop, where the
			// next master's dial gets a fresh registration.
			opts.logger(name).Info("released by master")
			return nil
		default:
			return fmt.Errorf("net: worker %s: unexpected %s message", name, msg.Kind)
		}
	}
}
