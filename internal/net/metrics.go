package net

import "repro/internal/obs"

// Wire-level byte accounting. The master labels per worker address (it
// talks to a known, bounded fleet); the worker daemon keeps unlabeled
// totals (one process is one worker — labeling by ephemeral master ports
// would only explode cardinality). Counting happens in a net.Conn wrapper
// beneath the bufio layers, so every framed byte — payloads, heartbeats,
// handshakes — is seen exactly once.
var (
	mSentTo = obs.NewCounterVec("mm_net_sent_bytes_total",
		"Bytes the master sent to each worker over its link.", "worker")
	mRecvFrom = obs.NewCounterVec("mm_net_recv_bytes_total",
		"Bytes the master received from each worker over its link.", "worker")
	wSent = obs.NewCounter("mm_worker_sent_bytes_total",
		"Bytes this worker daemon sent to masters.")
	wRecv = obs.NewCounter("mm_worker_recv_bytes_total",
		"Bytes this worker daemon received from masters.")
)
