package net

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/matrix"
)

// This file is the master's half of the panel-cache protocol. A job that
// wants transfer skipping calls BeginJob with its panel digests before Run;
// the master then runs a have/need handshake with every cacheable worker,
// ships installments as digest-addressed MsgInstallD frames with resident
// panels omitted, and promotes a chunk's panels to resident when the chunk's
// result lands (the worker, symmetrically, promotes at the flush that
// produced that result — so the master's residency view never runs ahead of
// the worker's). EndJob closes the epoch.
//
// The correctness invariant: every skip decision traces to this job's own
// handshake answer or to a result frame this job already received — never to
// carried-over state from an earlier lease, which is only ever used as
// scheduling advice (cache.Registry).

// linkStats is one lease's cache-effect counters for one worker link. All
// fields are atomics: dispatch goroutines bump them mid-run while stats
// readers (a session polling CacheStats) load them concurrently.
type linkStats struct {
	cacheOn        atomic.Bool
	hits, misses   atomic.Int64 // handshake answers: resident / must-ship
	aSent, aSaved  atomic.Int64 // A-panel wire bytes shipped / skipped
	bSent, bSaved  atomic.Int64 // B-panel wire bytes shipped / skipped
	residentPanels atomic.Int64
	residentBytes  atomic.Int64
}

// WorkerCacheStats is one worker's cache effectiveness over this master's
// lease (a fleet accumulates these across leases).
type WorkerCacheStats struct {
	Name           string
	CacheOn        bool  // worker runs a panel cache
	PanelHits      int64 // handshake queries answered "resident"
	PanelMisses    int64 // handshake queries answered "absent"
	ASentBytes     int64 // A-panel payload bytes put on the wire
	ASavedBytes    int64 // A-panel payload bytes skipped as resident
	BSentBytes     int64
	BSavedBytes    int64
	ResidentPanels int64 // job panels resident at last accounting
	ResidentBytes  int64
}

// BeginJob opens a panel-cache epoch: jp names every A row-panel and B
// column-panel of the job about to run, and each live worker is asked which
// of them it already holds. Until EndJob, SendAB ships digest-addressed
// installments that omit resident panels. A nil jp (or not calling BeginJob
// at all) keeps the legacy full-transfer protocol.
//
// Call it before Run/RunPipelined/RunElastic, never during: the handshake
// uses the links' codecs, which the run's dispatch goroutines own. A worker
// that fails the handshake is retired exactly as a failed send would retire
// it; the executor's failover re-plans around it.
func (m *Master) BeginJob(jp *cache.JobPanels) {
	m.mu.Lock()
	m.jp = jp
	links := append([]*link(nil), m.links...)
	stats := append([]*linkStats(nil), m.stats...)
	m.mu.Unlock()
	for w, l := range links {
		l.have, l.cacheable = nil, false
		if jp == nil || l.conn == nil {
			continue
		}
		if err := handshakeLink(l, m.opts, stats[w], jp); err != nil {
			m.down(w, "cache handshake", err)
		}
	}
}

// EndJob closes the epoch opened by BeginJob and reverts SendAB to the
// legacy protocol. Residency bookkeeping on the links survives until the
// next BeginJob so ResidentSnapshot can read it; it is never consulted for
// skipping outside an epoch.
func (m *Master) EndJob() {
	m.mu.Lock()
	m.jp = nil
	m.mu.Unlock()
}

// jobPanels reads the current epoch's panel set (nil outside an epoch).
func (m *Master) jobPanels() *cache.JobPanels {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.jp
}

// stat returns worker w's counter block (never nil for a table index).
func (m *Master) stat(w int) *linkStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if w < 0 || w >= len(m.stats) {
		return &linkStats{}
	}
	return m.stats[w]
}

// handshakeLink runs the have/need exchange on one link the caller owns
// exclusively (pre-run, or a mid-run joiner not yet in the table): send the
// job's digest set, read the worker's per-digest answer — tolerating the
// heartbeats a pooled session has been beating — and seed the link's
// residency map from it.
func handshakeLink(l *link, opts MasterOptions, st *linkStats, jp *cache.JobPanels) error {
	ds := jp.Digests()
	l.conn.SetWriteDeadline(time.Now().Add(opts.IOTimeout))
	if err := WriteMsgCodec(l.wr, &Msg{Kind: MsgHave, Digests: ds}, &l.enc); err != nil {
		return err
	}
	if err := l.wr.Flush(); err != nil {
		return err
	}
	wait := opts.IOTimeout
	if hb := 3 * l.heartbeat; hb > wait {
		wait = hb
	}
	for {
		l.conn.SetReadDeadline(time.Now().Add(wait))
		msg, err := ReadMsgCodec(l.rd, &l.dec)
		if err != nil {
			return err
		}
		switch msg.Kind {
		case MsgHeartbeat:
			continue
		case MsgHaveAck:
			if len(msg.HaveBits) != len(ds) {
				return fmt.Errorf("have-ack answers %d digests, queried %d", len(msg.HaveBits), len(ds))
			}
			st.cacheOn.Store(msg.CacheOn)
			if !msg.CacheOn {
				return nil // cacheless worker: stay on the legacy protocol
			}
			l.cacheable = true
			l.have = make(map[cache.Digest]bool, len(ds))
			pb := jp.PanelBytes()
			for i, have := range msg.HaveBits {
				if have {
					l.have[ds[i]] = true
					st.hits.Add(1)
					st.residentPanels.Add(1)
					st.residentBytes.Add(pb)
				} else {
					st.misses.Add(1)
				}
			}
			return nil
		default:
			return fmt.Errorf("worker sent %s during cache handshake", msg.Kind)
		}
	}
}

// sendInstallD is SendAB's epoch path: frame the installment digest-addressed,
// with the blocks of resident panels omitted. Wire block order is MsgInstall's
// order minus the omissions — included A rows row-major, then B blocks k-major
// with resident columns skipped per k — so the worker reconstructs the full
// panel lists with one linear walk.
func (m *Master) sendInstallD(w int, l *link, jp *cache.JobPanels, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	st := m.stat(w)
	d := k1 - k0
	ws := int64(d) * int64(matrix.BlockWireSize(jp.Q))
	msg := &Msg{Kind: MsgInstallD, Chunk: ch, K0: k0, K1: k1, T: jp.T}
	msg.ARefs = make([]PanelRef, ch.H)
	msg.BRefs = make([]PanelRef, ch.W)
	blocks := l.abBuf[:0]
	for i := 0; i < ch.H; i++ {
		dg := jp.ARows[ch.Row0+i]
		if l.have[dg] {
			msg.ARefs[i] = PanelRef{D: dg, Resident: true}
			st.aSaved.Add(ws)
			continue
		}
		msg.ARefs[i] = PanelRef{D: dg}
		blocks = append(blocks, a[i*d:(i+1)*d]...)
		st.aSent.Add(ws)
	}
	for j := 0; j < ch.W; j++ {
		dg := jp.BCols[ch.Col0+j]
		if l.have[dg] {
			msg.BRefs[j] = PanelRef{D: dg, Resident: true}
			st.bSaved.Add(ws)
		} else {
			msg.BRefs[j] = PanelRef{D: dg}
			st.bSent.Add(ws)
		}
	}
	for k := 0; k < d; k++ {
		for j := 0; j < ch.W; j++ {
			if !msg.BRefs[j].Resident {
				blocks = append(blocks, b[k*ch.W+j])
			}
		}
	}
	l.abBuf = blocks
	msg.Blocks = blocks
	return m.send(w, "send install", msg)
}

// promote marks a completed chunk's panels resident on worker w. Called only
// after the chunk's result frame arrived: by then the worker has flushed, and
// its flush promoted every fully-streamed pending panel into its cache — the
// two sides promote the same set in the same causal order. Promotion is never
// partial: an installment's delivery alone proves nothing (a panel spans all
// the chunk's installments), so nothing is marked at SendAB time.
func (m *Master) promote(w int, l *link, ch matrix.Chunk) {
	jp := m.jobPanels()
	if jp == nil || !l.cacheable {
		return
	}
	st := m.stat(w)
	pb := jp.PanelBytes()
	mark := func(dg cache.Digest) {
		if !l.have[dg] {
			l.have[dg] = true
			st.residentPanels.Add(1)
			st.residentBytes.Add(pb)
		}
	}
	for i := 0; i < ch.H; i++ {
		mark(jp.ARows[ch.Row0+i])
	}
	for j := 0; j < ch.W; j++ {
		mark(jp.BCols[ch.Col0+j])
	}
}

// CacheStats reports per-worker cache effectiveness for this master's lease.
// Safe at any time — counters are atomics — including mid-run.
func (m *Master) CacheStats() []WorkerCacheStats {
	m.mu.RLock()
	links := append([]*link(nil), m.links...)
	stats := append([]*linkStats(nil), m.stats...)
	m.mu.RUnlock()
	out := make([]WorkerCacheStats, len(links))
	for i, l := range links {
		st := stats[i]
		out[i] = WorkerCacheStats{
			Name:           l.name,
			CacheOn:        st.cacheOn.Load(),
			PanelHits:      st.hits.Load(),
			PanelMisses:    st.misses.Load(),
			ASentBytes:     st.aSent.Load(),
			ASavedBytes:    st.aSaved.Load(),
			BSentBytes:     st.bSent.Load(),
			BSavedBytes:    st.bSaved.Load(),
			ResidentPanels: st.residentPanels.Load(),
			ResidentBytes:  st.residentBytes.Load(),
		}
	}
	return out
}

// ResidentSnapshot reports, per worker index, the job panels known resident
// there (digest → payload bytes) — what a fleet folds into its scheduling
// registry after a job. Entry i is nil for a worker that died during the run
// (its session's residency died with it) and empty for a live cacheless
// worker (known to hold nothing). Call it after the run joins and before the
// next BeginJob; the links' residency maps belong to dispatch goroutines
// while a run is in flight.
func (m *Master) ResidentSnapshot() []map[cache.Digest]int64 {
	m.mu.RLock()
	links := append([]*link(nil), m.links...)
	jp := m.jp
	m.mu.RUnlock()
	pb := int64(0)
	if jp != nil {
		pb = jp.PanelBytes()
	}
	out := make([]map[cache.Digest]int64, len(links))
	for i, l := range links {
		if l.conn == nil {
			continue
		}
		res := make(map[cache.Digest]int64, len(l.have))
		if l.cacheable {
			for dg, ok := range l.have {
				if ok {
					res[dg] = pb
				}
			}
		}
		out[i] = res
	}
	return out
}
