package net

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// MasterOptions tunes the master's link handling.
type MasterOptions struct {
	// DialTimeout bounds each worker connection attempt. Default 10s.
	DialTimeout time.Duration
	// IOTimeout bounds every send and, together with the worker's announced
	// heartbeat interval, every receive: a worker that neither beats nor
	// answers within max(IOTimeout, 3×heartbeat) is declared down. Default 30s.
	IOTimeout time.Duration
	// OnePort serializes outbound frames across workers when RunPipelined
	// drives the links concurrently, approximating the paper's one-port
	// master on the send side (return transfers ride the kernel's receive
	// path and are not gated). Faithful to the model, the port stays busy
	// for a send's full duration — including a stalled worker's, so a dead
	// link can head-of-line-block every send for up to IOTimeout before
	// failover kicks in. Leave false (the default) for throughput or fast
	// failover: real worker links have their own capacity anyway.
	OnePort bool
}

func (o *MasterOptions) withDefaults() MasterOptions {
	out := MasterOptions{DialTimeout: 10 * time.Second, IOTimeout: 30 * time.Second}
	if o != nil {
		if o.DialTimeout > 0 {
			out.DialTimeout = o.DialTimeout
		}
		if o.IOTimeout > 0 {
			out.IOTimeout = o.IOTimeout
		}
		out.OnePort = o.OnePort
	}
	return out
}

// link is one worker connection; a nil conn marks a retired worker. Each
// link carries its own block codecs (one per direction) so the pipelined
// executor's per-worker goroutines encode and decode without shared state,
// and steady-state frames reuse the codecs' scratch buffers.
type link struct {
	conn      net.Conn
	rd        *bufio.Reader
	wr        *bufio.Writer
	name      string
	kernel    string // block-update kernel the worker announced at registration
	heartbeat time.Duration
	enc, dec  matrix.BlockCodec
	abBuf     []*matrix.Block // SendAB concatenation scratch, reused per send

	// cancel asks the dispatch goroutine that owns this link to abandon its
	// in-flight unit (set by CancelUnit from the k-of-n gate's goroutine, the
	// one cross-goroutine signal a link carries). The owner notices it in the
	// receive loop — workers heartbeat, so a live link wakes within one
	// interval — performs the cancel handshake itself, and clears the flag.
	cancel atomic.Bool

	// Panel-cache epoch state (see mastercache.go). Reset by every BeginJob,
	// so nothing here ever outlives the handshake that established it: have
	// holds the digests known resident on the worker — handshake answers plus
	// promotions from this job's own completed chunks — and cacheable records
	// whether the worker answered the handshake with a live cache at all.
	// Owned by whoever owns the link: the pre-run handshake, then the one
	// dispatch goroutine driving the link, then post-run snapshotting.
	have      map[cache.Digest]bool
	cacheable bool
}

// WorkerConn is one registered, open worker connection, detached from any
// master. It is the unit a long-lived service pools: dial once, lease the
// connection to a Master for a job (NewMaster), recover it afterwards
// (Master.Detach), and reuse it for the next job — the worker session
// survives end-of-job, so no re-dial, re-registration, or codec warm-up is
// paid between jobs. A WorkerConn is not safe for concurrent use; hand it to
// one master (or one keepalive loop) at a time.
type WorkerConn struct {
	l    *link
	opts MasterOptions
}

// DialWorker connects to one worker and collects its registration.
func DialWorker(addr string, opts *MasterOptions) (*WorkerConn, error) {
	return DialWorkerContext(context.Background(), addr, opts)
}

// DialWorkerContext is DialWorker bounded by ctx: both the TCP connect and
// the registration read finish by the earlier of ctx's deadline and the
// configured DialTimeout, and a cancelled ctx aborts either phase in flight
// — the connect through the dialer, the registration read through an
// immediately-expired deadline.
func DialWorkerContext(ctx context.Context, addr string, opts *MasterOptions) (*WorkerConn, error) {
	o := opts.withDefaults()
	d := net.Dialer{Timeout: o.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("net: dial worker %s: %w", addr, err)
	}
	conn = obs.CountConn(conn, mSentTo.With(addr), mRecvFrom.With(addr))
	l := &link{conn: conn, rd: bufio.NewReaderSize(conn, 1<<16), wr: bufio.NewWriterSize(conn, 1<<16)}
	conn.SetReadDeadline(deadlineWithin(ctx, o.DialTimeout))
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	hello, err := ReadMsg(l.rd)
	stop()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("net: bad registration from %s: %v", addr, err)
	}
	if hello.Kind != MsgHello {
		conn.Close()
		return nil, fmt.Errorf("net: bad registration from %s: got %s frame, want hello", addr, hello.Kind)
	}
	// Clear both directions: a cancellation that raced a successful
	// registration may have left an expired write deadline behind.
	conn.SetDeadline(time.Time{})
	l.name, l.kernel, l.heartbeat = hello.Name, hello.Kernel, hello.Heartbeat
	return &WorkerConn{l: l, opts: o}, nil
}

// deadlineWithin returns now+d, clipped to ctx's deadline when that is
// sooner: the caller's context budget wins over a configured default.
func deadlineWithin(ctx context.Context, d time.Duration) time.Time {
	dl := time.Now().Add(d)
	if cd, ok := ctx.Deadline(); ok && cd.Before(dl) {
		dl = cd
	}
	return dl
}

// Name returns the name the worker announced at registration.
func (wc *WorkerConn) Name() string { return wc.l.name }

// Kernel returns the block-update kernel the worker announced at
// registration; empty for workers predating the kernel field.
func (wc *WorkerConn) Kernel() string { return wc.l.kernel }

// Alive reports whether the connection has not been closed or retired.
func (wc *WorkerConn) Alive() bool { return wc.l.conn != nil }

// Ping sends a master→worker heartbeat, keeping an idle pooled session from
// tripping the worker's idle timeout. An error means the link is dead; the
// caller should Close and re-dial.
func (wc *WorkerConn) Ping() error {
	l := wc.l
	if l.conn == nil {
		return fmt.Errorf("net: ping worker %s: link retired", l.name)
	}
	l.conn.SetWriteDeadline(time.Now().Add(wc.opts.IOTimeout))
	err := WriteMsg(l.wr, &Msg{Kind: MsgHeartbeat})
	if err == nil {
		err = l.wr.Flush()
	}
	if err != nil {
		return fmt.Errorf("net: ping worker %s: %w", l.name, err)
	}
	return nil
}

// DrainBacklog consumes the worker heartbeats an idle pooled connection
// accumulates (workers beat for the whole session, masters only read during
// jobs), so the socket buffer never fills while the connection waits between
// leases. It never blocks: frames are consumed only when complete, a partial
// frame stays buffered for the next drain, and the stream remains at a frame
// boundary. A non-heartbeat frame or a dead socket is an error; the caller
// should Close and re-dial.
func (wc *WorkerConn) DrainBacklog() error {
	l := wc.l
	if l.conn == nil {
		return fmt.Errorf("net: drain worker %s: link retired", l.name)
	}
	defer l.conn.SetReadDeadline(time.Time{})
	for {
		l.conn.SetReadDeadline(time.Now().Add(time.Millisecond))
		hdr, err := l.rd.Peek(FrameHeaderLen)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return nil // drained (a partial frame may stay buffered)
			}
			return fmt.Errorf("net: drain worker %s: %w", l.name, err)
		}
		kind, n, err := parseFrameHeader(hdr)
		if err != nil {
			return fmt.Errorf("net: drain worker %s: %w", l.name, err)
		}
		if kind != MsgHeartbeat || n != 0 {
			return fmt.Errorf("net: worker %s sent %s frame while idle", l.name, kind)
		}
		l.rd.Discard(FrameHeaderLen)
	}
}

// releaseDrain bounds the read-to-EOF that follows a release frame: the
// worker closes the session as soon as it processes the release, so the
// drain normally ends in milliseconds; the bound only caps a wedged peer.
const releaseDrain = time.Second

// drainToEOF consumes whatever the worker still has in flight (buffered
// heartbeats, the EOF of its closing socket) after a release frame was sent.
// Closing with unread received data would RST the connection and could
// destroy the in-flight release frame before the worker reads it; reading to
// EOF first makes the handshake clean.
func drainToEOF(l *link) {
	l.conn.SetReadDeadline(time.Now().Add(releaseDrain))
	for {
		if _, err := ReadMsgCodec(l.rd, &l.dec); err != nil {
			return
		}
	}
}

// Release ends the worker's session without killing the daemon: the worker
// returns to its accept loop and re-registers with the next master that
// dials. The connection is closed either way.
func (wc *WorkerConn) Release() error {
	l := wc.l
	if l.conn == nil {
		return nil
	}
	l.conn.SetWriteDeadline(time.Now().Add(wc.opts.IOTimeout))
	err := WriteMsg(l.wr, &Msg{Kind: MsgRelease})
	if err == nil {
		err = l.wr.Flush()
	}
	if err == nil {
		drainToEOF(l)
	}
	wc.Close()
	if err != nil {
		return fmt.Errorf("net: release worker %s: %w", l.name, err)
	}
	return nil
}

// Close drops the connection without any handshake.
func (wc *WorkerConn) Close() {
	if wc.l.conn != nil {
		wc.l.conn.Close()
		wc.l.conn = nil
	}
}

// Master drives remote workers over TCP. It implements engine.Backend, so
// Run executes plans through exactly the same code path as the in-process
// engine; only the block transport differs.
//
// A Master is reusable: successive Run/RunPipelined calls replay successive
// plans over the same worker sessions (each job leaves every worker idle
// again), and Detach recovers the still-open connections for pooling.
//
// A Master is also *growable*: AddWorker joins a registered connection while
// a run is in flight, which is how the elastic executor
// (RunElasticContext) re-plans mid-job onto workers that arrive after the
// job started.
type Master struct {
	opts MasterOptions
	gate *engine.TransferGate // non-nil when opts.OnePort: serializes sends

	// mu guards the link table (AddWorker appends while dispatch goroutines
	// index it) and the lifecycle flags. Individual links stay single-owner:
	// at most one dispatch goroutine drives a given link at a time.
	mu       sync.RWMutex
	links    []*link
	stats    []*linkStats // parallel to links: per-lease cache counters
	jp       *cache.JobPanels
	detached bool
	run      *runBinding // non-nil while a run is in flight
	// runCtx is the context of the run in flight (nil between runs). It is
	// set single-threaded before the executor spawns its dispatch goroutines
	// and cleared after they join, so the concurrent reads in send/RecvC are
	// ordered by the goroutine create/join edges.
	runCtx context.Context
}

var _ engine.Backend = (*Master)(nil)
var _ engine.CopyingBackend = (*Master)(nil)

// CopiesBlocks implements engine.CopyingBackend: SendC and SendAB stage
// every block onto the wire (through the connection's buffered writer)
// before returning, so the executor may recycle its staging blocks the
// moment a send completes.
func (m *Master) CopiesBlocks() bool { return true }

// Dial connects to every worker address and collects their registrations.
// Worker i of any plan maps to addrs[i].
func Dial(addrs []string, opts *MasterOptions) (*Master, error) {
	return DialContext(context.Background(), addrs, opts)
}

// DialContext is Dial bounded by ctx: each per-worker connect and
// registration finishes within the earlier of ctx's deadline and
// DialTimeout, and cancelling ctx aborts the whole dial sequence.
func DialContext(ctx context.Context, addrs []string, opts *MasterOptions) (*Master, error) {
	conns := make([]*WorkerConn, 0, len(addrs))
	for _, addr := range addrs {
		wc, err := DialWorkerContext(ctx, addr, opts)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		conns = append(conns, wc)
	}
	return NewMaster(conns, opts)
}

// NewMaster leases already-dialed worker connections to a fresh master:
// worker i of any plan maps to conns[i]. The master owns the connections
// until Detach, Release, Shutdown, or Close; the conns must not be used
// directly in the meantime.
func NewMaster(conns []*WorkerConn, opts *MasterOptions) (*Master, error) {
	m := &Master{opts: opts.withDefaults()}
	if m.opts.OnePort {
		m.gate = &engine.TransferGate{}
	}
	for i, wc := range conns {
		if wc == nil || wc.l.conn == nil {
			return nil, fmt.Errorf("net: worker conn %d is closed", i)
		}
		wc.l.have, wc.l.cacheable = nil, false
		wc.l.cancel.Store(false)
		m.links = append(m.links, wc.l)
		m.stats = append(m.stats, &linkStats{})
	}
	return m, nil
}

// AddWorker joins an already-registered worker connection to this master:
// the link is appended and becomes addressable as the next plan worker
// index, which AddWorker returns. It is safe while a run is in flight — the
// elastic executor (RunElasticContext) is told the index through
// Elastic.Join and re-plans un-dispatched chunks onto the newcomer; a
// cancellation arriving meanwhile reaches the new connection too. The
// master owns the connection from here on, exactly as if it had been part
// of NewMaster's lease. Fails once the master has been detached or spent.
func (m *Master) AddWorker(wc *WorkerConn) (int, error) {
	if wc == nil || wc.l.conn == nil {
		return 0, fmt.Errorf("net: add worker: connection is closed")
	}
	// If a panel-cache epoch is open, handshake the newcomer before it enters
	// the table: until the append below, this call owns the link exclusively,
	// so the raw codec I/O cannot race a dispatch goroutine. A failed
	// handshake just leaves the worker cacheless for this job.
	st := &linkStats{}
	wc.l.have, wc.l.cacheable = nil, false
	wc.l.cancel.Store(false)
	if jp := m.jobPanels(); jp != nil {
		if err := handshakeLink(wc.l, m.opts, st, jp); err != nil {
			return 0, fmt.Errorf("net: add worker %s: cache handshake: %w", wc.l.name, err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.detached {
		return 0, fmt.Errorf("net: add worker %s: master already detached", wc.l.name)
	}
	m.links = append(m.links, wc.l)
	m.stats = append(m.stats, st)
	if m.run != nil {
		m.run.add(wc.l.conn)
	}
	return len(m.links) - 1, nil
}

// link returns worker w's link (nil when out of range). The pointer is
// stable; only the table itself needs the lock.
func (m *Master) link(w int) *link {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if w < 0 || w >= len(m.links) {
		return nil
	}
	return m.links[w]
}

// linkSnapshot copies the current link table for lock-free iteration.
func (m *Master) linkSnapshot() []*link {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*link(nil), m.links...)
}

// Detach releases the master's hold on its connections and returns them,
// still open and registered, for reuse by a later NewMaster: position i holds
// conns[i] of the original lease — AddWorker-joined connections included, in
// join order — nil where that worker died during the job. The master is
// spent afterwards (no links remain, AddWorker fails).
func (m *Master) Detach() []*WorkerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*WorkerConn, len(m.links))
	for i, l := range m.links {
		if l.conn != nil {
			out[i] = &WorkerConn{l: l, opts: m.opts}
		}
	}
	m.links = nil
	m.detached = true
	return out
}

// WorkerNames returns the registered worker names in plan-index order.
func (m *Master) WorkerNames() []string {
	links := m.linkSnapshot()
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.name
	}
	return names
}

// WorkerKernels returns the block-update kernel each registered worker
// announced, in plan-index order ("" for workers predating the field).
func (m *Master) WorkerKernels() []string {
	links := m.linkSnapshot()
	kernels := make([]string, len(links))
	for i, l := range links {
		kernels[i] = l.kernel
	}
	return kernels
}

// Workers implements engine.Backend.
func (m *Master) Workers() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.links)
}

// down retires a worker's link and wraps the cause as engine.ErrWorkerDown so
// Execute re-queues its jobs. The conn field is nilled under the table lock
// so CancelUnit's concurrent snapshot never races the retirement.
func (m *Master) down(w int, op string, cause error) error {
	l := m.link(w)
	name := l.name
	m.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	m.mu.Unlock()
	return fmt.Errorf("net: %s to worker %d (%s): %v: %w", op, w, name, cause, engine.ErrWorkerDown)
}

// cancelWait bounds how long a cancel handshake waits for the worker's ack
// (or its already-in-flight result): long enough for a live worker's next
// heartbeat to prove the consumer is reading, short enough that a stalled one
// costs far less than a heartbeat timeout.
func cancelWait(l *link) time.Duration {
	wait := 3 * l.heartbeat
	if wait < 300*time.Millisecond {
		wait = 300 * time.Millisecond
	}
	if wait > 3*time.Second {
		wait = 3 * time.Second
	}
	return wait
}

// CancelUnit implements engine.UnitCanceler: ask worker w's dispatch
// goroutine to abandon the unit it has in flight. Only the flag is set here —
// the owning goroutine performs the wire handshake itself, so this never
// writes on a link another goroutine may be mid-frame on. The read deadline
// is shortened so an owner parked in a long result wait on a heartbeat-dead
// link wakes promptly instead of serving out IOTimeout.
func (m *Master) CancelUnit(w int, ch matrix.Chunk) {
	m.mu.RLock()
	var l *link
	var conn net.Conn
	if w >= 0 && w < len(m.links) {
		l = m.links[w]
		conn = l.conn
	}
	m.mu.RUnlock()
	if l == nil || conn == nil {
		return
	}
	l.cancel.Store(true)
	conn.SetReadDeadline(time.Now().Add(cancelWait(l)))
}

// ioDeadline is now+base clipped to the running context's deadline, so a
// ctx with a budget shorter than IOTimeout bounds every blocking send and
// receive; a cancelled (not merely deadlined) ctx is handled separately by
// the interrupt installed in runContext.
func (m *Master) ioDeadline(base time.Duration) time.Time {
	if m.runCtx != nil {
		return deadlineWithin(m.runCtx, base)
	}
	return time.Now().Add(base)
}

// send frames one message to worker w with the write deadline applied. With
// OnePort, the frame occupies the master's single send port (the gate) for
// the duration of the write — the pipelined executor's concurrent dispatch
// goroutines then ship at most one outbound transfer at a time, while their
// workers keep computing.
func (m *Master) send(w int, op string, msg *Msg) error {
	l := m.link(w)
	if l == nil {
		return fmt.Errorf("net: %s to unknown worker %d: %w", op, w, engine.ErrWorkerDown)
	}
	if l.conn == nil {
		return fmt.Errorf("net: %s to worker %d (%s): link retired: %w", op, w, l.name, engine.ErrWorkerDown)
	}
	m.gate.Lock()
	defer m.gate.Unlock()
	l.conn.SetWriteDeadline(m.ioDeadline(m.opts.IOTimeout))
	if err := WriteMsgCodec(l.wr, msg, &l.enc); err != nil {
		return m.down(w, op, err)
	}
	if err := l.wr.Flush(); err != nil {
		return m.down(w, op, err)
	}
	return nil
}

// SendC implements engine.Backend.
func (m *Master) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	return m.send(w, "send chunk", &Msg{Kind: MsgChunk, Chunk: ch, Blocks: blocks})
}

// SendAB implements engine.Backend. The A/B pointer lists are concatenated
// into the link's scratch slice — safe to reuse per send because the frame
// is fully staged on the wire before send returns, and each link is driven
// by at most one dispatch goroutine at a time.
func (m *Master) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	l := m.link(w)
	if l == nil {
		return fmt.Errorf("net: send install to unknown worker %d: %w", w, engine.ErrWorkerDown)
	}
	if jp := m.jobPanels(); jp != nil && l.cacheable {
		return m.sendInstallD(w, l, jp, ch, k0, k1, a, b)
	}
	st := m.stat(w)
	q := 0
	if len(a) > 0 {
		q = a[0].Q
	} else if len(b) > 0 {
		q = b[0].Q
	}
	ws := int64(k1-k0) * int64(matrix.BlockWireSize(q))
	st.aSent.Add(int64(ch.H) * ws)
	st.bSent.Add(int64(ch.W) * ws)
	l.abBuf = append(append(l.abBuf[:0], a...), b...)
	return m.send(w, "send install", &Msg{Kind: MsgInstall, Chunk: ch, K0: k0, K1: k1, Blocks: l.abBuf})
}

// SendABRaw implements engine.RawSender: ship the installment as a plain
// streamed frame even when a panel-cache epoch is open. Parity units carry
// pre-encoded payloads under borrowed chunk coordinates; addressing them by
// the job's panel digests would install encoded bytes under the real panels'
// identities on both sides of the link.
func (m *Master) SendABRaw(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	l := m.link(w)
	if l == nil {
		return fmt.Errorf("net: send install to unknown worker %d: %w", w, engine.ErrWorkerDown)
	}
	st := m.stat(w)
	q := 0
	if len(a) > 0 {
		q = a[0].Q
	} else if len(b) > 0 {
		q = b[0].Q
	}
	ws := int64(k1-k0) * int64(matrix.BlockWireSize(q))
	st.aSent.Add(int64(ch.H) * ws)
	st.bSent.Add(int64(ch.W) * ws)
	l.abBuf = append(append(l.abBuf[:0], a...), b...)
	return m.send(w, "send install", &Msg{Kind: MsgInstall, Chunk: ch, K0: k0, K1: k1, Blocks: l.abBuf})
}

// RecvC implements engine.Backend: flush the worker and wait for its result,
// treating heartbeats as liveness that extends the wait.
func (m *Master) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	return m.recvC(w, ch, true)
}

// RecvCRaw implements engine.RawSender: RecvC without the panel-cache
// promotion — a parity unit's chunk coordinates are borrowed, so marking its
// panels resident would poison the master's residency view.
func (m *Master) RecvCRaw(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	return m.recvC(w, ch, false)
}

func (m *Master) recvC(w int, ch matrix.Chunk, promote bool) ([]*matrix.Block, error) {
	if err := m.send(w, "flush", &Msg{Kind: MsgFlush, Chunk: ch}); err != nil {
		return nil, err
	}
	l := m.link(w)
	wait := m.opts.IOTimeout
	if hb := 3 * l.heartbeat; hb > wait {
		wait = hb
	}
	// Once CancelUnit flags this unit, the owner (us) writes the cancel frame
	// — no other goroutine may touch the link's write side — then waits a
	// short grace for the worker's answer. A responsive worker either acks
	// (it dropped the chunk; the link stays at a frame boundary and survives)
	// or its result was already in flight (returned as a duplicate); a
	// stalled one answers nothing and the link is retired, which is how a
	// straggler is absorbed without serving out its heartbeat timeout.
	sentCancel := false
	var cancelBy time.Time
	for {
		if l.cancel.Load() && !sentCancel {
			if err := m.send(w, "cancel unit", &Msg{Kind: MsgCancel, Chunk: ch}); err != nil {
				l.cancel.Store(false)
				return nil, fmt.Errorf("%w; %w", engine.ErrUnitCanceled, err)
			}
			sentCancel = true
			// The grace is absolute: heartbeats come from the worker's beat
			// goroutine and prove the process lives, not that its consumer is
			// reading — they must not extend the handshake, or a stalled
			// worker's heartbeats would make the gate serve out the stall.
			cancelBy = time.Now().Add(cancelWait(l))
		}
		if sentCancel {
			l.conn.SetReadDeadline(cancelBy)
		} else {
			l.conn.SetReadDeadline(m.ioDeadline(wait))
		}
		msg, err := ReadMsgCodec(l.rd, &l.dec)
		if err != nil {
			if sentCancel || l.cancel.Load() {
				// The worker never answered the cancel (or the shortened
				// deadline fired mid-frame): the stream cannot be trusted at a
				// boundary, so retire the link and surface the cancel.
				l.cancel.Store(false)
				return nil, fmt.Errorf("%w; %w", engine.ErrUnitCanceled, m.down(w, "cancel unit", err))
			}
			return nil, m.down(w, "receive result", err)
		}
		switch msg.Kind {
		case MsgHeartbeat:
			continue // still alive, keep waiting
		case MsgResult:
			if msg.Chunk != ch {
				return nil, fmt.Errorf("net: worker %d (%s) returned chunk %v, expected %v", w, l.name, msg.Chunk, ch)
			}
			// A result that raced the cancel frame is still a valid result;
			// the worker will ignore the stale cancel and the gate counts the
			// blocks as a duplicate win.
			l.cancel.Store(false)
			if promote {
				m.promote(w, l, ch)
			}
			return msg.Blocks, nil
		case MsgCancel:
			if !sentCancel {
				return nil, fmt.Errorf("net: worker %d (%s) sent unsolicited cancel ack", w, l.name)
			}
			l.cancel.Store(false)
			return nil, fmt.Errorf("net: unit %v on worker %d (%s) canceled: %w", ch, w, l.name, engine.ErrUnitCanceled)
		default:
			return nil, fmt.Errorf("net: worker %d (%s) sent %s while a result was due", w, l.name, msg.Kind)
		}
	}
}

// Run executes plan against the connected workers: C ← C + A·B. It is the
// networked twin of engine.Run — same executor, same failover, different
// transport. Workers that die mid-run have their outstanding chunks replayed
// on the survivors.
//
// Run cannot be interrupted; library callers should prefer RunContext (or
// the matmul facade).
func (m *Master) Run(t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	return m.RunContext(context.Background(), t, plan, a, b, c)
}

// RunContext is Run under a context: every blocking send and receive
// finishes by the earlier of ctx's deadline and IOTimeout, and cancelling
// ctx interrupts in-flight socket I/O immediately (the links are slammed
// with an already-expired deadline), failing the run with an error wrapping
// ctx.Err(). After an aborted run the worker sessions are tainted — discard
// them (Close / a failed-lease Return), do not pool them.
func (m *Master) RunContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	defer m.runContext(ctx)()
	return engine.ExecuteContext(ctx, t, plan, a, b, c, m)
}

// RunPipelined executes plan with the concurrent executor: one dispatch
// goroutine per worker link, so every worker's socket stays fed while other
// workers compute or return results. C is bitwise-identical to Run's. With
// MasterOptions.OnePort the outbound frames are still serialized through the
// master's single send port.
//
// RunPipelined cannot be interrupted; library callers should prefer
// RunPipelinedContext (or the matmul facade).
func (m *Master) RunPipelined(t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	return m.RunPipelinedContext(context.Background(), t, plan, a, b, c)
}

// RunPipelinedContext is RunPipelined under a context, with RunContext's
// cancellation semantics.
func (m *Master) RunPipelinedContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	defer m.runContext(ctx)()
	return engine.ExecutePipelinedContext(ctx, t, plan, a, b, c, m)
}

// RunRedundantContext executes plan with the k-of-n redundancy gate (see
// engine.ExecuteRedundantContext): each chunk may be dispatched to several
// workers, the first result wins, laggard units are wire-cancelled through
// CancelUnit's handshake, and parity units (red's coded mode) let decode
// stand in for a straggler's missing results. C is bitwise-identical to
// Run's whenever the systematic results complete. Cancellation semantics
// match RunContext.
func (m *Master) RunRedundantContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, red *engine.Redundancy) error {
	defer m.runContext(ctx)()
	return engine.ExecuteRedundantContext(ctx, t, plan, a, b, c, m, red)
}

// RunElasticContext executes plan with the adaptive executor (see
// engine.ExecuteElasticContext): transfers and computes feed el.Tracker's
// live estimates, dead workers' chunks are re-planned onto the survivors,
// drift past el.DriftThreshold rebalances the un-dispatched remainder, and
// workers joined mid-run with AddWorker (their indices delivered on
// el.Join) are folded into the running job. C is bitwise-identical to Run's
// under every membership change. Cancellation semantics match RunContext —
// connections joined mid-run are interrupted too.
func (m *Master) RunElasticContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, el *engine.Elastic) error {
	defer m.runContext(ctx)()
	return engine.ExecuteElasticContext(ctx, t, plan, a, b, c, m, el)
}

// runBinding is one in-flight run's cancellation fan-out set: the
// connections to slam with an expired deadline when the run's context dies.
// AddWorker extends it mid-run; a connection added after the context already
// fired is slammed immediately, so a late joiner cannot outlive the abort.
type runBinding struct {
	mu    sync.Mutex
	conns []net.Conn
	fired bool
}

func (b *runBinding) add(c net.Conn) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fired {
		c.SetDeadline(time.Now())
		return
	}
	b.conns = append(b.conns, c)
}

func (b *runBinding) fire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fired = true
	for _, c := range b.conns {
		c.SetDeadline(time.Now())
	}
}

// runContext binds one run to ctx and returns the unbind function. While
// bound, ioDeadline clips blocking I/O to ctx's deadline, and a cancellation
// slams an already-expired deadline onto every connection live at bind time
// — a dispatch goroutine parked in a 30s RecvC wait wakes within
// milliseconds instead of timing out. The conn set is snapshotted before the
// executor spawns goroutines and extended under the binding's lock by
// AddWorker, so the interrupt never races the links' conn fields (a conn
// retired by down in the meantime just absorbs a harmless SetDeadline on a
// closed socket).
func (m *Master) runContext(ctx context.Context) (unbind func()) {
	b := &runBinding{}
	m.mu.Lock()
	m.runCtx = ctx
	m.run = b
	for _, l := range m.links {
		if l.conn != nil {
			b.conns = append(b.conns, l.conn)
		}
	}
	m.mu.Unlock()
	stop := context.AfterFunc(ctx, b.fire)
	return func() {
		stop()
		m.mu.Lock()
		m.runCtx = nil
		m.run = nil
		m.mu.Unlock()
	}
}

// Shutdown tells every live worker to end its session and closes all
// connections. It is idempotent: a second call (or one after Release, Close,
// or Detach) finds no links and returns nil.
func (m *Master) Shutdown() error {
	var first error
	for w, l := range m.linkSnapshot() {
		if l.conn == nil {
			continue
		}
		if err := m.send(w, "shutdown", &Msg{Kind: MsgShutdown}); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		drainToEOF(l)
	}
	m.Close()
	return first
}

// Release returns every live worker to its accept loop without killing the
// daemon: each gets a release frame and its connection is closed; the worker
// re-registers with the next master that dials. Idempotent, like Shutdown.
func (m *Master) Release() error {
	var first error
	for w, l := range m.linkSnapshot() {
		if l.conn == nil {
			continue
		}
		if err := m.send(w, "release", &Msg{Kind: MsgRelease}); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		drainToEOF(l)
	}
	m.Close()
	return first
}

// Close drops all connections without the shutdown handshake. The links stay
// with the master (marked retired), so Close after Detach touches nothing.
func (m *Master) Close() {
	for _, l := range m.linkSnapshot() {
		if l.conn != nil {
			l.conn.Close()
			l.conn = nil
		}
	}
}
