package net

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// MasterOptions tunes the master's link handling.
type MasterOptions struct {
	// DialTimeout bounds each worker connection attempt. Default 10s.
	DialTimeout time.Duration
	// IOTimeout bounds every send and, together with the worker's announced
	// heartbeat interval, every receive: a worker that neither beats nor
	// answers within max(IOTimeout, 3×heartbeat) is declared down. Default 30s.
	IOTimeout time.Duration
}

func (o *MasterOptions) withDefaults() MasterOptions {
	out := MasterOptions{DialTimeout: 10 * time.Second, IOTimeout: 30 * time.Second}
	if o != nil {
		if o.DialTimeout > 0 {
			out.DialTimeout = o.DialTimeout
		}
		if o.IOTimeout > 0 {
			out.IOTimeout = o.IOTimeout
		}
	}
	return out
}

// link is one worker connection; a nil conn marks a retired worker.
type link struct {
	conn      net.Conn
	rd        *bufio.Reader
	wr        *bufio.Writer
	name      string
	heartbeat time.Duration
}

// Master drives remote workers over TCP. It implements engine.Backend, so
// Run executes plans through exactly the same code path as the in-process
// engine; only the block transport differs.
type Master struct {
	links []*link
	opts  MasterOptions
}

var _ engine.Backend = (*Master)(nil)

// Dial connects to every worker address and collects their registrations.
// Worker i of any plan maps to addrs[i].
func Dial(addrs []string, opts *MasterOptions) (*Master, error) {
	m := &Master{opts: opts.withDefaults()}
	for _, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, m.opts.DialTimeout)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("net: dial worker %s: %w", addr, err)
		}
		l := &link{conn: conn, rd: bufio.NewReaderSize(conn, 1<<16), wr: bufio.NewWriterSize(conn, 1<<16)}
		conn.SetReadDeadline(time.Now().Add(m.opts.DialTimeout))
		hello, err := ReadMsg(l.rd)
		if err != nil {
			conn.Close()
			m.Close()
			return nil, fmt.Errorf("net: bad registration from %s: %v", addr, err)
		}
		if hello.Kind != MsgHello {
			conn.Close()
			m.Close()
			return nil, fmt.Errorf("net: bad registration from %s: got %s frame, want hello", addr, hello.Kind)
		}
		conn.SetReadDeadline(time.Time{})
		l.name, l.heartbeat = hello.Name, hello.Heartbeat
		m.links = append(m.links, l)
	}
	return m, nil
}

// WorkerNames returns the registered worker names in plan-index order.
func (m *Master) WorkerNames() []string {
	names := make([]string, len(m.links))
	for i, l := range m.links {
		names[i] = l.name
	}
	return names
}

// Workers implements engine.Backend.
func (m *Master) Workers() int { return len(m.links) }

// down retires a worker's link and wraps the cause as engine.ErrWorkerDown so
// Execute re-queues its jobs.
func (m *Master) down(w int, op string, cause error) error {
	l := m.links[w]
	name := l.name
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	return fmt.Errorf("net: %s to worker %d (%s): %v: %w", op, w, name, cause, engine.ErrWorkerDown)
}

// send frames one message to worker w with the write deadline applied.
func (m *Master) send(w int, op string, msg *Msg) error {
	l := m.links[w]
	if l.conn == nil {
		return fmt.Errorf("net: %s to worker %d (%s): link retired: %w", op, w, l.name, engine.ErrWorkerDown)
	}
	l.conn.SetWriteDeadline(time.Now().Add(m.opts.IOTimeout))
	if err := WriteMsg(l.wr, msg); err != nil {
		return m.down(w, op, err)
	}
	if err := l.wr.Flush(); err != nil {
		return m.down(w, op, err)
	}
	return nil
}

// SendC implements engine.Backend.
func (m *Master) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	return m.send(w, "send chunk", &Msg{Kind: MsgChunk, Chunk: ch, Blocks: blocks})
}

// SendAB implements engine.Backend.
func (m *Master) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	blocks := make([]*matrix.Block, 0, len(a)+len(b))
	blocks = append(blocks, a...)
	blocks = append(blocks, b...)
	return m.send(w, "send install", &Msg{Kind: MsgInstall, Chunk: ch, K0: k0, K1: k1, Blocks: blocks})
}

// RecvC implements engine.Backend: flush the worker and wait for its result,
// treating heartbeats as liveness that extends the wait.
func (m *Master) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	if err := m.send(w, "flush", &Msg{Kind: MsgFlush, Chunk: ch}); err != nil {
		return nil, err
	}
	l := m.links[w]
	wait := m.opts.IOTimeout
	if hb := 3 * l.heartbeat; hb > wait {
		wait = hb
	}
	for {
		l.conn.SetReadDeadline(time.Now().Add(wait))
		msg, err := ReadMsg(l.rd)
		if err != nil {
			return nil, m.down(w, "receive result", err)
		}
		switch msg.Kind {
		case MsgHeartbeat:
			continue // still alive, keep waiting
		case MsgResult:
			if msg.Chunk != ch {
				return nil, fmt.Errorf("net: worker %d (%s) returned chunk %v, expected %v", w, l.name, msg.Chunk, ch)
			}
			return msg.Blocks, nil
		default:
			return nil, fmt.Errorf("net: worker %d (%s) sent %s while a result was due", w, l.name, msg.Kind)
		}
	}
}

// Run executes plan against the connected workers: C ← C + A·B. It is the
// networked twin of engine.Run — same executor, same failover, different
// transport. Workers that die mid-run have their outstanding chunks replayed
// on the survivors.
func (m *Master) Run(t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	return engine.Execute(t, plan, a, b, c, m)
}

// Shutdown tells every live worker to exit and closes all connections.
func (m *Master) Shutdown() error {
	var first error
	for w, l := range m.links {
		if l.conn == nil {
			continue
		}
		if err := m.send(w, "shutdown", &Msg{Kind: MsgShutdown}); err != nil && first == nil {
			first = err
		}
	}
	m.Close()
	return first
}

// Close drops all connections without the shutdown handshake.
func (m *Master) Close() {
	for _, l := range m.links {
		if l.conn != nil {
			l.conn.Close()
			l.conn = nil
		}
	}
}
