package net

import (
	"context"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestRedundantLoopbackAbsorbsStalledWorker is the wire-level straggler
// drill: one TCP worker goes glacial after its first installment (heartbeats
// keep beating, so neither IOTimeout nor crash failover would ever fire),
// every job carries a planned replica, and the k-of-n gate must finish the
// product through the replicas — wire-cancelling the straggler's unit rather
// than serving out its stall or its heartbeat timeout. Every committed result
// is systematic, so C must stay bitwise-identical to the in-process engine.
func TestRedundantLoopbackAbsorbsStalledWorker(t *testing.T) {
	const stallFor = 30 * time.Second
	addrs := startWorkers(t, 3, func(i int) WorkerOptions {
		o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 0 {
			o.StallAfterInstalls = 1
			o.StallFor = stallFor
		}
		return o
	})
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 2, W: 1.5, M: 24},
		platform.Worker{C: 1.5, W: 2, M: 60},
	)
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	jobs, _, err := sim.JobsFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	a, b, c, want := testMatrices(t, inst, 4, 91)
	_, _, base, _ := testMatrices(t, inst, 4, 91)
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T, Pipelined: true}, plan, a, b, base); err != nil {
		t.Fatal(err)
	}

	red := &engine.Redundancy{Mode: "replicated"}
	for ji, j := range jobs {
		red.Units = append(red.Units, engine.RedundantUnit{Worker: (j.Worker + 1) % pl.P(), Job: ji})
	}

	m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	start := time.Now()
	if err := m.RunRedundantContext(context.Background(), inst.T, plan, a, b, c, red); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > stallFor/2 {
		t.Fatalf("run took %v; the straggler was waited out instead of absorbed", elapsed)
	}
	if d := c.MaxAbsDiff(base); d != 0 {
		t.Fatalf("C differs from in-process engine by %g (want bitwise equal)", d)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("C differs from serial reference by %g", d)
	}
	st := red.Stats()
	if st.Absorbed == 0 {
		t.Errorf("straggler never recorded as absorbed (stats %+v)", st)
	}
	if st.Units == 0 {
		t.Errorf("no redundant units dispatched (stats %+v)", st)
	}
}

// TestRedundantLoopbackCancelKeepsHealthyLink: a laggard that wakes within
// the cancel grace must ack the cancel and survive — the same master then
// runs a second product over the same links, which only works if the ack
// handshake left every stream at a clean frame boundary. This pins the
// clean-cancel path (ack or raced result) as non-destructive.
func TestRedundantLoopbackCancelKeepsHealthyLink(t *testing.T) {
	addrs := startWorkers(t, 3, func(i int) WorkerOptions {
		o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 0 {
			// Briefly slow, not stalled: shorter than the ~300ms cancel grace,
			// so any cancel sent mid-nap is answered by the ack, never by the
			// link being retired.
			o.StallAfterInstalls = 1
			o.StallFor = 100 * time.Millisecond
		}
		return o
	})
	pl := platform.Homogeneous(3, 1, 1, 60)
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Hom{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	jobs, _, err := sim.JobsFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for round, seed := range []int64{92, 93} {
		a, b, c, want := testMatrices(t, inst, 4, seed)
		red := &engine.Redundancy{Mode: "replicated"}
		for ji, j := range jobs {
			red.Units = append(red.Units, engine.RedundantUnit{Worker: (j.Worker + 1) % pl.P(), Job: ji})
		}
		if err := m.RunRedundantContext(context.Background(), inst.T, plan, a, b, c, red); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("round %d: C wrong by %g", round, d)
		}
	}
	if got := m.Workers(); got != 3 {
		t.Errorf("after duplicate races: %d live workers, want 3 (healthy links must survive cancels)", got)
	}
}
