package net

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
)

// startWorkers launches n loopback worker endpoints and returns their
// addresses. Each serves master sessions until the test ends.
func startWorkers(t *testing.T, n int, opts func(i int) WorkerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if opts != nil {
			o = opts(i)
		}
		go Serve(ln, addrs[i], o)
	}
	return addrs
}

// testMatrices builds random A, B, C plus the serial reference product.
func testMatrices(t *testing.T, inst sched.Instance, q int, seed int64) (a, b, c, want *matrix.BlockMatrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a = matrix.NewBlockMatrix(inst.R, inst.T, q)
	b = matrix.NewBlockMatrix(inst.T, inst.S, q)
	c = matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want = c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		t.Fatal(err)
	}
	return a, b, c, want
}

// TestLoopbackMatchesEngineBitwise runs the same plan through the in-process
// engine and through TCP loopback workers and demands bitwise-identical C:
// both backends funnel through engine.Execute and engine.ApplyInstallment,
// so every floating-point operation happens in the same order.
func TestLoopbackMatchesEngineBitwise(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 2, W: 1.5, M: 24},
		platform.Worker{C: 1.5, W: 2, M: 60},
	)
	inst := sched.Instance{R: 7, S: 11, T: 5}
	for _, s := range []sched.Scheduler{sched.Het{}, sched.ODDOML{}, sched.BMM{}} {
		res, err := s.Schedule(pl, inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		plan := res.Plan()
		q := 4

		a, b, cNet, want := testMatrices(t, inst, q, 21)
		_, _, cEng, _ := testMatrices(t, inst, q, 21)

		if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng); err != nil {
			t.Fatalf("%s: engine: %v", s.Name(), err)
		}

		addrs := startWorkers(t, pl.P(), nil)
		m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("%s: dial: %v", s.Name(), err)
		}
		if err := m.Run(inst.T, plan, a, b, cNet); err != nil {
			t.Fatalf("%s: distributed run: %v", s.Name(), err)
		}
		if err := m.Shutdown(); err != nil {
			t.Errorf("%s: shutdown: %v", s.Name(), err)
		}

		if d := cNet.MaxAbsDiff(cEng); d != 0 {
			t.Errorf("%s: distributed C differs from in-process C by %g (want bitwise equal)", s.Name(), d)
		}
		if d := cNet.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("%s: distributed C differs from serial reference by %g", s.Name(), d)
		}
	}
}

// TestPipelinedLoopbackMatchesEngineBitwise runs the same plan through the
// sequential in-process engine and through the concurrent executor over TCP
// loopback (with the one-port send gate on, for good measure) and demands
// bitwise-identical C: per-worker dispatch goroutines change only when
// transfers happen, never the per-chunk arithmetic order.
func TestPipelinedLoopbackMatchesEngineBitwise(t *testing.T) {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 2, W: 1.5, M: 24},
		platform.Worker{C: 1.5, W: 2, M: 60},
	)
	inst := sched.Instance{R: 7, S: 11, T: 5}
	for _, s := range []sched.Scheduler{sched.Het{}, sched.ODDOML{}} {
		res, err := s.Schedule(pl, inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		plan := res.Plan()
		q := 4

		a, b, cNet, want := testMatrices(t, inst, q, 63)
		_, _, cEng, _ := testMatrices(t, inst, q, 63)

		if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, plan, a, b, cEng); err != nil {
			t.Fatalf("%s: engine: %v", s.Name(), err)
		}

		// Worker-side multicore kernels must not change results either.
		addrs := startWorkers(t, pl.P(), func(i int) WorkerOptions {
			return WorkerOptions{Heartbeat: 50 * time.Millisecond, Procs: 2}
		})
		m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second, OnePort: true})
		if err != nil {
			t.Fatalf("%s: dial: %v", s.Name(), err)
		}
		if err := m.RunPipelined(inst.T, plan, a, b, cNet); err != nil {
			t.Fatalf("%s: pipelined distributed run: %v", s.Name(), err)
		}
		if err := m.Shutdown(); err != nil {
			t.Errorf("%s: shutdown: %v", s.Name(), err)
		}

		if d := cNet.MaxAbsDiff(cEng); d != 0 {
			t.Errorf("%s: pipelined distributed C differs from in-process C by %g (want bitwise equal)", s.Name(), d)
		}
		if d := cNet.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("%s: pipelined distributed C differs from serial reference by %g", s.Name(), d)
		}
	}
}

// TestPipelinedWorkerCrashFailover kills a loopback TCP worker mid-pipeline
// (abrupt connection close after a few installments, while the other
// dispatch goroutines are in full flight) and checks the concurrent
// executor's parallel replay waves still produce the serial product. CI runs
// this under -race, which is the real point: worker death exercises the
// retire/orphan/replay paths concurrently with healthy dispatch goroutines.
func TestPipelinedWorkerCrashFailover(t *testing.T) {
	pl := platform.Homogeneous(3, 1, 1, 40)
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}

	for victim := 0; victim < pl.P(); victim++ {
		a, b, c, want := testMatrices(t, inst, 3, int64(71+victim))
		addrs := startWorkers(t, pl.P(), func(i int) WorkerOptions {
			o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
			if i == victim {
				o.CrashAfterInstalls = 2
			}
			return o
		})
		m, err := Dial(addrs, &MasterOptions{IOTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("victim %d: dial: %v", victim, err)
		}
		if err := m.RunPipelined(inst.T, res.Plan(), a, b, c); err != nil {
			t.Fatalf("victim %d: pipelined run did not survive the crash: %v", victim, err)
		}
		if err := m.Shutdown(); err != nil {
			t.Logf("victim %d: shutdown: %v (expected: one link is dead)", victim, err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("victim %d: C wrong by %g after pipelined failover", victim, d)
		}
	}
}

// TestWorkerCrashFailover kills one worker mid-run (abrupt connection close
// after a few installments) and checks the survivors complete the product
// correctly via the executor's job replay.
func TestWorkerCrashFailover(t *testing.T) {
	pl := platform.Homogeneous(3, 1, 1, 40)
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}

	for victim := 0; victim < pl.P(); victim++ {
		a, b, c, want := testMatrices(t, inst, 3, int64(31+victim))
		addrs := startWorkers(t, pl.P(), func(i int) WorkerOptions {
			o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
			if i == victim {
				o.CrashAfterInstalls = 2
			}
			return o
		})
		m, err := Dial(addrs, &MasterOptions{IOTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("victim %d: dial: %v", victim, err)
		}
		if err := m.Run(inst.T, res.Plan(), a, b, c); err != nil {
			t.Fatalf("victim %d: run did not survive the crash: %v", victim, err)
		}
		if err := m.Shutdown(); err != nil {
			t.Logf("victim %d: shutdown: %v (expected: one link is dead)", victim, err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("victim %d: C wrong by %g after failover", victim, d)
		}
	}
}

// TestWorkerKillMidRunViaConnDrop drops a worker by closing its listener and
// live connection from outside — the closest a test gets to kill -9 — and
// checks the run still completes.
func TestWorkerKillMidRunViaConnDrop(t *testing.T) {
	pl := platform.Homogeneous(2, 1, 1, 40)
	inst := sched.Instance{R: 4, S: 6, T: 3}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, want := testMatrices(t, inst, 3, 47)

	// Worker 0 is normal; worker 1 crashes after its first installment.
	addrs := startWorkers(t, 2, func(i int) WorkerOptions {
		o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 1 {
			o.CrashAfterInstalls = 1
		}
		return o
	})
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(inst.T, res.Plan(), a, b, c); err != nil {
		t.Fatalf("run: %v", err)
	}
	m.Shutdown()
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("C wrong by %g", d)
	}
}

// TestIdleClientCannotWedgeWorker connects a mute client to a worker and
// checks the idle timeout frees the (sequential) serve loop for a real
// master afterwards.
func TestIdleClientCannotWedgeWorker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, "wedgeable", WorkerOptions{Heartbeat: 50 * time.Millisecond, IdleTimeout: 200 * time.Millisecond})

	mute, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	time.Sleep(100 * time.Millisecond) // let the worker accept the mute session

	m, err := Dial([]string{ln.Addr().String()}, &MasterOptions{DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("real master starved behind a mute client: %v", err)
	}
	defer m.Close()

	pl := platform.Homogeneous(1, 1, 1, 40)
	inst := sched.Instance{R: 2, S: 2, T: 2}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, want := testMatrices(t, inst, 2, 53)
	if err := m.Run(inst.T, res.Plan(), a, b, c); err != nil {
		t.Fatalf("run after mute client: %v", err)
	}
	m.Shutdown()
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("C wrong by %g", d)
	}
}

// TestDialRejectsSilentPeer ensures a listener that never registers is
// reported instead of hanging the master forever.
func TestDialRejectsSilentPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(2 * time.Second) // never send hello
		}
	}()
	if _, err := Dial([]string{ln.Addr().String()}, &MasterOptions{DialTimeout: 300 * time.Millisecond}); err == nil {
		t.Fatal("silent peer accepted as a worker")
	}
}

// TestMasterReleaseWorkerReregisters releases a worker (session over, daemon
// alive) and immediately dials it again: the serve loop must hand the next
// master a fresh registration, and the re-registered worker must run a job.
func TestMasterReleaseWorkerReregisters(t *testing.T) {
	addrs := startWorkers(t, 1, nil)
	pl := platform.Homogeneous(1, 1, 1, 40)
	inst := sched.Instance{R: 2, S: 3, T: 2}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		m, err := Dial(addrs, &MasterOptions{DialTimeout: 5 * time.Second, IOTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("round %d: dial after release: %v", round, err)
		}
		a, b, c, want := testMatrices(t, inst, 3, int64(90+round))
		if err := m.RunPipelined(inst.T, res.Plan(), a, b, c); err != nil {
			t.Fatalf("round %d: run: %v", round, err)
		}
		if err := m.Release(); err != nil {
			t.Fatalf("round %d: release: %v", round, err)
		}
		if err := m.Release(); err != nil {
			t.Fatalf("round %d: second release not idempotent: %v", round, err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("round %d: C wrong by %g", round, d)
		}
	}
}

// TestShutdownIdempotent calls Shutdown repeatedly and after Close/Detach:
// every call past the first must find no links and return nil.
func TestShutdownIdempotent(t *testing.T) {
	addrs := startWorkers(t, 2, nil)
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := m.Shutdown(); err != nil {
		t.Fatalf("second shutdown not idempotent: %v", err)
	}

	m2, err := Dial(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	conns := m2.Detach()
	if err := m2.Shutdown(); err != nil {
		t.Fatalf("shutdown after detach must be a no-op: %v", err)
	}
	for _, wc := range conns {
		if wc == nil || !wc.Alive() {
			t.Fatal("detach returned a dead conn from a healthy master")
		}
		wc.Close()
	}
}

// TestMasterReuseAcrossJobs runs two different products back to back over one
// master without re-dialing: the reusable-backend contract — a successful
// execution leaves every worker session idle — is what a job-queue service
// leases against, so it is asserted here at the net level.
func TestMasterReuseAcrossJobs(t *testing.T) {
	pl := platform.Homogeneous(2, 1, 1, 40)
	addrs := startWorkers(t, 2, nil)
	m, err := Dial(addrs, &MasterOptions{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i, inst := range []sched.Instance{{R: 4, S: 6, T: 3}, {R: 3, S: 5, T: 4}} {
		res, err := sched.Het{}.Schedule(pl, inst)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c, want := testMatrices(t, inst, 3, int64(101+i))
		if err := m.RunPipelined(inst.T, res.Plan(), a, b, c); err != nil {
			t.Fatalf("job %d on reused master: %v", i, err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("job %d: C wrong by %g", i, d)
		}
	}
	if err := m.Shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestDetachedConnSurvivesIdleAndReruns parks a detached conn past the
// worker's idle timeout, keeping it alive with Ping and draining the worker's
// accumulated heartbeats, then leases it to a new master and runs a job — the
// pooled-connection lifecycle of a long-lived service, minus the service.
func TestDetachedConnSurvivesIdleAndReruns(t *testing.T) {
	addrs := startWorkers(t, 1, func(i int) WorkerOptions {
		return WorkerOptions{Heartbeat: 20 * time.Millisecond, IdleTimeout: 250 * time.Millisecond}
	})
	wc, err := DialWorker(addrs[0], &MasterOptions{IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// Idle for 2× the worker's idle timeout, pinging under it.
	for i := 0; i < 5; i++ {
		time.Sleep(100 * time.Millisecond)
		if err := wc.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		if err := wc.DrainBacklog(); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}

	m, err := NewMaster([]*WorkerConn{wc}, &MasterOptions{IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.Homogeneous(1, 1, 1, 40)
	inst := sched.Instance{R: 2, S: 3, T: 2}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, want := testMatrices(t, inst, 3, 113)
	if err := m.RunPipelined(inst.T, res.Plan(), a, b, c); err != nil {
		t.Fatalf("run on kept-alive conn: %v", err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("C wrong by %g", d)
	}
	conns := m.Detach()
	if len(conns) != 1 || conns[0] == nil {
		t.Fatal("healthy conn lost at detach")
	}
	if err := conns[0].Release(); err != nil {
		t.Errorf("release: %v", err)
	}
}

// TestRunContextCancelPromptOnStalledWorker: a worker that stalls mid-job
// (heartbeats flowing, no result — the case neither IOTimeout nor the crash
// failover ends early) blocks RecvC for the whole stall. Cancelling the run
// context must interrupt the parked socket read immediately, for both
// executors, and surface context.Canceled.
func TestRunContextCancelPromptOnStalledWorker(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		addrs := startWorkers(t, 2, func(i int) WorkerOptions {
			o := WorkerOptions{Heartbeat: 50 * time.Millisecond}
			if i == 0 {
				o.StallAfterInstalls = 1
				o.StallFor = 30 * time.Second
			}
			return o
		})
		pl := platform.Homogeneous(2, 1, 1, 60)
		inst := sched.Instance{R: 4, S: 8, T: 3}
		res, err := sched.Het{}.Schedule(pl, inst)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c, _ := testMatrices(t, inst, 4, 33)

		m, err := Dial(addrs, &MasterOptions{IOTimeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(300 * time.Millisecond) // let the stalled worker reach its stall
			cancel()
		}()
		start := time.Now()
		if pipelined {
			err = m.RunPipelinedContext(ctx, inst.T, res.Plan(), a, b, c)
		} else {
			err = m.RunContext(ctx, inst.T, res.Plan(), a, b, c)
		}
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("pipelined=%v: cancelled distributed run returned nil", pipelined)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pipelined=%v: cancelled run returned %v, want context.Canceled in the chain", pipelined, err)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("pipelined=%v: cancelled run took %v, want prompt return", pipelined, elapsed)
		}
	}
}

// TestDialContextHonorsDeadline: a dial budgeted well below DialTimeout must
// give up within the context budget, not the configured 10s default.
func TestDialContextHonorsDeadline(t *testing.T) {
	// A listener that accepts but never sends a hello: the registration read
	// is what must be bounded by the context deadline.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialContext(ctx, []string{ln.Addr().String()}, nil)
	if err == nil {
		t.Fatal("dial of a mute peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial took %v, want it bounded by the 200ms context budget", elapsed)
	}
}
