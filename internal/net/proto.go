// Package net is the distributed master-worker runtime: a master process
// drives worker processes (possibly on other machines) over TCP, replaying
// the same sim.Plan the in-process engine executes. It plays the role MPI
// plays in the paper's experiments, with the one-port model arising
// naturally: the master issues one blocking transfer at a time, while each
// worker computes in its own process and the socket buffers provide the
// input double-buffering of the optimized memory layout.
//
// Plan execution — buffer accounting, operation ordering, C-accumulation,
// failover — lives in internal/engine (Execute); this package only supplies
// the engine.Backend that moves blocks over sockets and the worker loop that
// applies them, so the loopback path is a strict correctness oracle:
// distributed C is bitwise-equal to in-process C.
//
// The wire format is length-prefixed binary frames whose block payloads
// reuse the framed float64 codec of internal/matrix (gob costs ~3× on large
// numeric slices, and the runtime moves thousands of 51 KB blocks).
package net

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/matrix"
)

// MsgKind labels protocol frames.
type MsgKind uint8

const (
	MsgHello     MsgKind = iota + 1 // worker → master: registration
	MsgChunk                        // master → worker: C chunk
	MsgInstall                      // master → worker: A/B panels
	MsgFlush                        // master → worker: return the chunk
	MsgResult                       // worker → master: finished chunk
	MsgHeartbeat                    // bidirectional: liveness beacon / fleet keepalive
	MsgShutdown                     // master → worker: exit
	MsgRelease                      // master → worker: end the session, keep serving
	MsgHave                         // master → worker: job panel digests — which are resident?
	MsgHaveAck                      // worker → master: per-digest presence answer
	MsgInstallD                     // master → worker: digest-addressed A/B panels, resident ones omitted
	MsgCancel                       // master → worker: abandon the held chunk; worker → master: dropped-it ack
)

func (k MsgKind) String() string {
	switch k {
	case MsgHello:
		return "hello"
	case MsgChunk:
		return "chunk"
	case MsgInstall:
		return "install"
	case MsgFlush:
		return "flush"
	case MsgResult:
		return "result"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgShutdown:
		return "shutdown"
	case MsgRelease:
		return "release"
	case MsgHave:
		return "have"
	case MsgHaveAck:
		return "have-ack"
	case MsgInstallD:
		return "install-digest"
	case MsgCancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// PanelRef names one panel of an InstallD frame: the digest of the full A
// row-panel (or B column-panel) the installment's blocks belong to, and
// whether the worker must serve those blocks from its cache (Resident) or
// from the frame's payload.
type PanelRef struct {
	D        cache.Digest
	Resident bool
}

// Msg is the single protocol envelope; fields irrelevant to a Kind stay at
// their zero values and are not encoded.
type Msg struct {
	Kind      MsgKind
	Name      string        // Hello: worker name
	Kernel    string        // Hello: worker's selected block-update kernel
	Heartbeat time.Duration // Hello: interval at which the worker will beat
	Chunk     matrix.Chunk  // Chunk / Install / InstallD / Flush / Result
	K0, K1    int           // Install / InstallD: inner panel range [K0, K1)
	T         int           // InstallD: full inner dimension (panel depth)
	Blocks    []*matrix.Block
	Digests   []cache.Digest // Have: the job's distinct panel digests
	HaveBits  []bool         // HaveAck: per-queried-digest presence
	CacheOn   bool           // HaveAck: worker runs a panel cache at all
	ARefs     []PanelRef     // InstallD: one per chunk row, in row order
	BRefs     []PanelRef     // InstallD: one per chunk column, in column order
}

const (
	frameMagic      = 0x4d4d5031 // "MMP1"
	maxFramePayload = 1 << 30    // 1 GiB: far above any real installment
	maxNameLen      = 1 << 10

	// FrameHeaderLen is the fixed size of every frame's magic+kind+length
	// prefix. Peek-based consumers (WorkerConn.DrainBacklog) read whole
	// header-only frames by this length without consuming partial ones.
	FrameHeaderLen = 9
)

// PutFrameHeader encodes the magic+kind+u32-length frame prefix every
// protocol in this codebase shares (the worker protocol here, the client
// protocol of internal/serve) — the single owner of the header layout.
func PutFrameHeader(hdr []byte, magic uint32, kind uint8, payloadLen int) {
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(payloadLen))
}

// ParseFrameHeader decodes the shared frame prefix, rejecting a foreign or
// corrupt magic.
func ParseFrameHeader(hdr []byte, magic uint32) (kind uint8, payloadLen uint32, err error) {
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != magic {
		return 0, 0, fmt.Errorf("net: bad frame magic %#x", m)
	}
	return hdr[4], binary.LittleEndian.Uint32(hdr[5:9]), nil
}

// putFrameHeader / parseFrameHeader bind the shared layout to this package's
// magic and message kinds; the stream reader and the idle-connection drain
// both go through parseFrameHeader.
func putFrameHeader(hdr []byte, kind MsgKind, payloadLen int) {
	PutFrameHeader(hdr, frameMagic, uint8(kind), payloadLen)
}

func parseFrameHeader(hdr []byte) (MsgKind, uint32, error) {
	kind, n, err := ParseFrameHeader(hdr, frameMagic)
	return MsgKind(kind), n, err
}

// payloadLen computes a frame's exact payload size from its fields, so
// WriteMsg can emit the length prefix first and then stream the payload —
// block data is written once, never staged in an intermediate buffer.
func payloadLen(m *Msg) (int, error) {
	blocksLen := func() int {
		n := 4 // count prefix
		for _, b := range m.Blocks {
			n += matrix.BlockWireSize(b.Q)
		}
		return n
	}
	switch m.Kind {
	case MsgHello:
		if len(m.Name) > maxNameLen {
			return 0, fmt.Errorf("net: worker name %d bytes long", len(m.Name))
		}
		if len(m.Kernel) > maxNameLen {
			return 0, fmt.Errorf("net: kernel name %d bytes long", len(m.Kernel))
		}
		return 6 + len(m.Name) + 2 + len(m.Kernel), nil
	case MsgChunk, MsgResult:
		return 16 + blocksLen(), nil
	case MsgInstall:
		return 16 + 8 + blocksLen(), nil
	case MsgFlush, MsgCancel:
		return 16, nil
	case MsgHeartbeat, MsgShutdown, MsgRelease:
		return 0, nil
	case MsgHave:
		if len(m.Digests) > maxPanelRefs {
			return 0, fmt.Errorf("net: have frame with %d digests", len(m.Digests))
		}
		return 4 + cache.DigestLen*len(m.Digests), nil
	case MsgHaveAck:
		if len(m.HaveBits) > maxPanelRefs {
			return 0, fmt.Errorf("net: have-ack frame with %d answers", len(m.HaveBits))
		}
		return 1 + 4 + len(m.HaveBits), nil
	case MsgInstallD:
		if len(m.ARefs)+len(m.BRefs) > maxPanelRefs {
			return 0, fmt.Errorf("net: install-digest frame with %d refs", len(m.ARefs)+len(m.BRefs))
		}
		return 16 + 8 + 4 + 4 + panelRefLen*len(m.ARefs) + 4 + panelRefLen*len(m.BRefs) + blocksLen(), nil
	default:
		return 0, fmt.Errorf("net: cannot encode message kind %d", m.Kind)
	}
}

// panelRefLen is the wire size of one PanelRef: digest + resident flag.
const panelRefLen = cache.DigestLen + 1

// maxPanelRefs bounds digest lists and panel-ref lists, far above any real
// job (a ref per block matrix row/column).
const maxPanelRefs = 1 << 22

// putPanelRefs writes a count-prefixed PanelRef list.
func putPanelRefs(w io.Writer, refs []PanelRef) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(refs)))
	if _, err := w.Write(cnt[:]); err != nil {
		return fmt.Errorf("net: write panel refs: %w", err)
	}
	var buf [panelRefLen]byte
	for _, r := range refs {
		copy(buf[:cache.DigestLen], r.D[:])
		buf[cache.DigestLen] = 0
		if r.Resident {
			buf[cache.DigestLen] = 1
		}
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("net: write panel refs: %w", err)
		}
	}
	return nil
}

// getPanelRefs reads a count-prefixed PanelRef list.
func getPanelRefs(r io.Reader) ([]PanelRef, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	if n > maxPanelRefs {
		return nil, fmt.Errorf("net: panel ref list of %d entries", n)
	}
	refs := make([]PanelRef, n)
	var buf [panelRefLen]byte
	for i := range refs {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		copy(refs[i].D[:], buf[:cache.DigestLen])
		refs[i].Resident = buf[cache.DigestLen] != 0
	}
	return refs, nil
}

// WriteMsg writes one length-prefixed frame to w with a one-shot codec.
// Long-lived connections should hold a matrix.BlockCodec and use
// WriteMsgCodec so block payloads are staged through one reused buffer.
func WriteMsg(w io.Writer, m *Msg) error {
	return WriteMsgCodec(w, m, nil)
}

// WriteMsgCodec writes one length-prefixed frame to w, staging block
// payloads through bc (nil falls back to a one-shot codec).
func WriteMsgCodec(w io.Writer, m *Msg, bc *matrix.BlockCodec) error {
	if bc == nil {
		bc = &matrix.BlockCodec{}
	}
	n, err := payloadLen(m)
	if err != nil {
		return err
	}
	var hdr [FrameHeaderLen]byte
	putFrameHeader(hdr[:], m.Kind, n)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("net: write frame header: %w", err)
	}
	switch m.Kind {
	case MsgHello:
		var hello [6]byte
		binary.LittleEndian.PutUint32(hello[0:4], uint32(m.Heartbeat/time.Millisecond))
		binary.LittleEndian.PutUint16(hello[4:6], uint16(len(m.Name)))
		if _, err := w.Write(hello[:]); err != nil {
			return fmt.Errorf("net: write hello: %w", err)
		}
		if _, err := io.WriteString(w, m.Name); err != nil {
			return fmt.Errorf("net: write hello name: %w", err)
		}
		var kl [2]byte
		binary.LittleEndian.PutUint16(kl[:], uint16(len(m.Kernel)))
		if _, err := w.Write(kl[:]); err != nil {
			return fmt.Errorf("net: write hello kernel: %w", err)
		}
		if _, err := io.WriteString(w, m.Kernel); err != nil {
			return fmt.Errorf("net: write hello kernel: %w", err)
		}
	case MsgChunk, MsgResult:
		if err := putChunk(w, m.Chunk); err != nil {
			return err
		}
		if err := bc.WriteBlocks(w, m.Blocks); err != nil {
			return err
		}
	case MsgInstall:
		if err := putChunk(w, m.Chunk); err != nil {
			return err
		}
		var kr [8]byte
		binary.LittleEndian.PutUint32(kr[0:4], uint32(m.K0))
		binary.LittleEndian.PutUint32(kr[4:8], uint32(m.K1))
		if _, err := w.Write(kr[:]); err != nil {
			return fmt.Errorf("net: write panel range: %w", err)
		}
		if err := bc.WriteBlocks(w, m.Blocks); err != nil {
			return err
		}
	case MsgFlush, MsgCancel:
		if err := putChunk(w, m.Chunk); err != nil {
			return err
		}
	case MsgHeartbeat, MsgShutdown, MsgRelease:
		// empty payload
	case MsgHave:
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(m.Digests)))
		if _, err := w.Write(cnt[:]); err != nil {
			return fmt.Errorf("net: write have: %w", err)
		}
		for _, d := range m.Digests {
			if _, err := w.Write(d[:]); err != nil {
				return fmt.Errorf("net: write have: %w", err)
			}
		}
	case MsgHaveAck:
		ack := make([]byte, 1+4+len(m.HaveBits))
		if m.CacheOn {
			ack[0] = 1
		}
		binary.LittleEndian.PutUint32(ack[1:5], uint32(len(m.HaveBits)))
		for i, h := range m.HaveBits {
			if h {
				ack[5+i] = 1
			}
		}
		if _, err := w.Write(ack); err != nil {
			return fmt.Errorf("net: write have-ack: %w", err)
		}
	case MsgInstallD:
		if err := putChunk(w, m.Chunk); err != nil {
			return err
		}
		var kr [12]byte
		binary.LittleEndian.PutUint32(kr[0:4], uint32(m.K0))
		binary.LittleEndian.PutUint32(kr[4:8], uint32(m.K1))
		binary.LittleEndian.PutUint32(kr[8:12], uint32(m.T))
		if _, err := w.Write(kr[:]); err != nil {
			return fmt.Errorf("net: write panel range: %w", err)
		}
		if err := putPanelRefs(w, m.ARefs); err != nil {
			return err
		}
		if err := putPanelRefs(w, m.BRefs); err != nil {
			return err
		}
		if err := bc.WriteBlocks(w, m.Blocks); err != nil {
			return err
		}
	}
	return nil
}

// ReadMsg reads one frame from r. The payload is decoded straight off the
// stream through an io.LimitedReader rather than staged in a frame-sized
// buffer: allocation tracks bytes that actually arrive, so a hostile 9-byte
// header cannot reserve a gigabyte, and large block frames cost one copy,
// mirroring the write side.
func ReadMsg(r io.Reader) (*Msg, error) {
	return ReadMsgCodec(r, nil)
}

// ReadMsgCodec reads one frame from r, decoding block payloads through bc —
// with a pooled codec, a connection's receive loop stops allocating once
// warm (nil falls back to a one-shot codec).
func ReadMsgCodec(r io.Reader, bc *matrix.BlockCodec) (*Msg, error) {
	if bc == nil {
		bc = &matrix.BlockCodec{}
	}
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("net: read frame header: %w", err)
	}
	kind, n, err := parseFrameHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("net: implausible frame payload %d bytes", n)
	}
	buf := &io.LimitedReader{R: r, N: int64(n)}

	m := &Msg{Kind: kind}
	switch kind {
	case MsgHello:
		var hdr [6]byte
		if _, err = io.ReadFull(buf, hdr[:]); err != nil {
			break
		}
		m.Heartbeat = time.Duration(binary.LittleEndian.Uint32(hdr[0:4])) * time.Millisecond
		nameLen := int(binary.LittleEndian.Uint16(hdr[4:6]))
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("net: hello name %d bytes long", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err = io.ReadFull(buf, name); err != nil {
			break
		}
		m.Name = string(name)
		// The kernel field is a later addition: a hello that ends here came
		// from a pre-kernel worker, so leave Kernel empty rather than erroring.
		if buf.N > 0 {
			var kl [2]byte
			if _, err = io.ReadFull(buf, kl[:]); err != nil {
				break
			}
			kernelLen := int(binary.LittleEndian.Uint16(kl[:]))
			if kernelLen > maxNameLen {
				return nil, fmt.Errorf("net: hello kernel name %d bytes long", kernelLen)
			}
			kn := make([]byte, kernelLen)
			if _, err = io.ReadFull(buf, kn); err != nil {
				break
			}
			m.Kernel = string(kn)
		}
	case MsgChunk, MsgResult:
		if m.Chunk, err = getChunk(buf); err != nil {
			break
		}
		m.Blocks, err = bc.ReadBlocks(buf)
	case MsgInstall:
		if m.Chunk, err = getChunk(buf); err != nil {
			break
		}
		var kr [8]byte
		if _, err = io.ReadFull(buf, kr[:]); err != nil {
			break
		}
		m.K0 = int(int32(binary.LittleEndian.Uint32(kr[0:4])))
		m.K1 = int(int32(binary.LittleEndian.Uint32(kr[4:8])))
		m.Blocks, err = bc.ReadBlocks(buf)
	case MsgFlush, MsgCancel:
		m.Chunk, err = getChunk(buf)
	case MsgHeartbeat, MsgShutdown, MsgRelease:
		// empty payload
	case MsgHave:
		var cnt [4]byte
		if _, err = io.ReadFull(buf, cnt[:]); err != nil {
			break
		}
		nd := int(binary.LittleEndian.Uint32(cnt[:]))
		if nd > maxPanelRefs {
			return nil, fmt.Errorf("net: have frame with %d digests", nd)
		}
		m.Digests = make([]cache.Digest, nd)
		for i := range m.Digests {
			if _, err = io.ReadFull(buf, m.Digests[i][:]); err != nil {
				break
			}
		}
	case MsgHaveAck:
		var ah [5]byte
		if _, err = io.ReadFull(buf, ah[:]); err != nil {
			break
		}
		m.CacheOn = ah[0] != 0
		nb := int(binary.LittleEndian.Uint32(ah[1:5]))
		if nb > maxPanelRefs {
			return nil, fmt.Errorf("net: have-ack frame with %d answers", nb)
		}
		bits := make([]byte, nb)
		if _, err = io.ReadFull(buf, bits); err != nil {
			break
		}
		m.HaveBits = make([]bool, nb)
		for i, b := range bits {
			m.HaveBits[i] = b != 0
		}
	case MsgInstallD:
		if m.Chunk, err = getChunk(buf); err != nil {
			break
		}
		var kr [12]byte
		if _, err = io.ReadFull(buf, kr[:]); err != nil {
			break
		}
		m.K0 = int(int32(binary.LittleEndian.Uint32(kr[0:4])))
		m.K1 = int(int32(binary.LittleEndian.Uint32(kr[4:8])))
		m.T = int(int32(binary.LittleEndian.Uint32(kr[8:12])))
		if m.ARefs, err = getPanelRefs(buf); err != nil {
			break
		}
		if m.BRefs, err = getPanelRefs(buf); err != nil {
			break
		}
		m.Blocks, err = bc.ReadBlocks(buf)
	default:
		return nil, fmt.Errorf("net: unknown message kind %d", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("net: decode %s: %w", kind, err)
	}
	if buf.N != 0 {
		// Erroring without consuming the remainder is fine: framing is
		// unrecoverable at this point and the session ends.
		return nil, fmt.Errorf("net: %s frame has %d trailing bytes", kind, buf.N)
	}
	return m, nil
}

func putChunk(w io.Writer, ch matrix.Chunk) error {
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(ch.Row0))
	binary.LittleEndian.PutUint32(b[4:8], uint32(ch.Col0))
	binary.LittleEndian.PutUint32(b[8:12], uint32(ch.H))
	binary.LittleEndian.PutUint32(b[12:16], uint32(ch.W))
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("net: write chunk coords: %w", err)
	}
	return nil
}

func getChunk(r io.Reader) (matrix.Chunk, error) {
	var b [16]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return matrix.Chunk{}, err
	}
	return matrix.Chunk{
		Row0: int(int32(binary.LittleEndian.Uint32(b[0:4]))),
		Col0: int(int32(binary.LittleEndian.Uint32(b[4:8]))),
		H:    int(int32(binary.LittleEndian.Uint32(b[8:12]))),
		W:    int(int32(binary.LittleEndian.Uint32(b[12:16]))),
	}, nil
}
