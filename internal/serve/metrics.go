package serve

import "repro/internal/obs"

// Job-queue service metrics. The lifecycle counters and gauges move at
// exactly the transitions Status() counts, and the cache counters mirror
// the cacheCum accumulation in absorbCache — a /metrics scrape and a
// Status()/Session.Stats() snapshot taken around the same jobs agree.
var (
	mJobsSubmitted = obs.NewCounter("mm_serve_jobs_submitted_total",
		"Products admitted into the job queue.")
	mJobsFinished = obs.NewCounterVec("mm_serve_jobs_finished_total",
		"Jobs reaching a terminal state, by state (done, failed, canceled).", "state")
	gJobsQueued = obs.NewGauge("mm_serve_jobs_queued",
		"Jobs currently waiting in the queue.")
	gJobsRunning = obs.NewGauge("mm_serve_jobs_running",
		"Jobs currently running on a lease.")
	hJobSeconds = obs.NewHistogram("mm_serve_job_seconds",
		"Wall time of jobs that ran, lease start to terminal state.")
	mReplans = obs.NewCounter("mm_serve_replans_total",
		"Elastic lease re-plans across all jobs (join, depart, drift).")

	// Queue-policy family: per-class depth always equals Stats.QueuedByClass,
	// the wait histogram observes submit→lease for every job regardless of
	// policy, and the aging counter moves only when sjf/priority promoted the
	// oldest job past the policy order.
	gQueueDepth = obs.NewGaugeVec("mm_serve_queue_depth",
		"Jobs currently waiting in the queue, by SLO class.", "class")
	hQueueWait = obs.NewHistogram("mm_serve_queue_wait_seconds",
		"Queue wait per dispatched job, submission to lease start.")
	mQueueAged = obs.NewCounter("mm_serve_queue_aged_total",
		"Queued jobs dispatched by the starvation bound instead of the policy order.")
	mQueueRejected = obs.NewCounterVec("mm_serve_queue_admission_rejected_total",
		"Submissions shed by token-bucket admission control, by SLO class.", "class")

	mRedUnits = obs.NewCounter("mm_serve_redundant_units_total",
		"Redundant work units dispatched by redundant leases (replicas, parities, speculation).")
	mRedDuplicateWins = obs.NewCounter("mm_serve_redundant_duplicate_wins_total",
		"Late duplicate results discarded by the k-of-n gate across all leases.")
	mRedWastedBytes = obs.NewCounter("mm_serve_redundant_wasted_bytes_total",
		"Wire bytes of discarded duplicate results across all leases.")
	mRedDecodes = obs.NewCounter("mm_serve_redundant_decodes_total",
		"Chunk results reconstructed from parity across all leases.")
	mRedAbsorbed = obs.NewCounter("mm_serve_redundant_absorbed_total",
		"In-flight units wire-cancelled after their job completed elsewhere.")

	mCacheHits = obs.NewCounter("mm_serve_cache_panel_hits_total",
		"Operand-panel handshake probes answered from worker caches.")
	mCacheMisses = obs.NewCounter("mm_serve_cache_panel_misses_total",
		"Operand-panel handshake probes that required a transfer.")
	mCacheSentA = obs.NewCounter("mm_serve_cache_a_sent_bytes_total",
		"A-panel bytes that moved over the wire.")
	mCacheSavedA = obs.NewCounter("mm_serve_cache_a_saved_bytes_total",
		"A-panel bytes kept off the wire by worker residency.")
	mCacheSentB = obs.NewCounter("mm_serve_cache_b_sent_bytes_total",
		"B-panel bytes that moved over the wire.")
	mCacheSavedB = obs.NewCounter("mm_serve_cache_b_saved_bytes_total",
		"B-panel bytes kept off the wire by worker residency.")
)
