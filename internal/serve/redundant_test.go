package serve

import (
	"context"
	"net"
	"testing"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/sched"
)

// TestDaemonRedundancyStatsAndTrace drives a redundant daemon end to end over
// the client protocol: the product must stay correct, the daemon and job
// status must surface the k-of-n gate mode and outcome, and the job's trace
// must be fetchable over the wire once the lease ends.
func TestDaemonRedundancyStatsAndTrace(t *testing.T) {
	addrs := startWorkers(t, 3, nil)
	f, err := NewFleet(addrs, homSpecs(3), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{MaxWorkersPerJob: 3, Redundancy: "replicated", RedundancyFactor: 2, Logf: t.Logf})
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ListenAndServe(ln)
	daemon := ln.Addr().String()

	inst := sched.Instance{R: 5, S: 7, T: 3}
	a, b, c, want := testMatrices(t, inst, 8, 700)
	got, id, err := SubmitProduct(daemon, a, b, c, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Errorf("C differs from in-process engine by %g (want bitwise equal: replicated mode commits only systematic results)", d)
	}

	st, err := FetchStats(daemon, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redundancy != "replicated" {
		t.Errorf("daemon stats report redundancy %q, want replicated", st.Redundancy)
	}
	var found bool
	for _, js := range st.Jobs {
		if js.ID != id {
			continue
		}
		found = true
		if js.Redundancy == nil {
			t.Fatalf("job %d finished with no redundancy outcome", id)
		}
		if js.Redundancy.Mode != "replicated" {
			t.Errorf("job %d gate mode %q, want replicated", id, js.Redundancy.Mode)
		}
	}
	if !found {
		t.Fatalf("job %d missing from daemon stats", id)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tr, err := FetchTraceContext(ctx, daemon, id)
	if err != nil {
		t.Fatalf("trace fetch: %v", err)
	}
	if len(tr.Transfers) == 0 {
		t.Error("fetched trace has no transfers")
	}
	if _, err := FetchTraceContext(ctx, daemon, id+999); err == nil {
		t.Error("trace fetch for unknown job succeeded")
	}
}

// TestDaemonRedundancyAutoFactor: RedundancyFactor ≤ 0 lets the measured
// estimates suggest r; with no history the floor of 1 applies and the job
// must still run correctly under the gate.
func TestDaemonRedundancyAutoFactor(t *testing.T) {
	addrs := startWorkers(t, 3, nil)
	f, err := NewFleet(addrs, homSpecs(3), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{MaxWorkersPerJob: 3, Redundancy: "coded", Logf: t.Logf})
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ListenAndServe(ln)
	daemon := ln.Addr().String()

	inst := sched.Instance{R: 5, S: 7, T: 3}
	a, b, c, want := testMatrices(t, inst, 8, 701)
	got, id, err := SubmitProduct(daemon, a, b, c, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("C differs from reference by %g", d)
	}
	st, err := FetchStats(daemon, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range st.Jobs {
		if js.ID == id && js.Redundancy == nil {
			t.Errorf("job %d ran without a redundancy outcome despite daemon-wide coded mode", id)
		}
	}
}

// TestDaemonRedundancyAbsorbsStalledWorker is the daemon-level acceptance
// drill: one fleet worker goes glacial mid-job, and a redundant lease must
// complete correctly well before the stall (or any heartbeat timeout) runs
// out, recording the absorbed straggler in the job's gate outcome.
func TestDaemonRedundancyAbsorbsStalledWorker(t *testing.T) {
	const stallFor = 30 * time.Second
	addrs := startWorkers(t, 3, func(i int) mmnet.WorkerOptions {
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 0 {
			o.StallAfterInstalls = 1
			o.StallFor = stallFor
		}
		return o
	})
	f, err := NewFleet(addrs, homSpecs(3), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{MaxWorkersPerJob: 3, Redundancy: "replicated", RedundancyFactor: 3, Logf: t.Logf})
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ListenAndServe(ln)
	daemon := ln.Addr().String()

	inst := sched.Instance{R: 5, S: 7, T: 3}
	a, b, c, want := testMatrices(t, inst, 8, 702)
	start := time.Now()
	got, id, err := SubmitProduct(daemon, a, b, c, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > stallFor/2 {
		t.Fatalf("redundant lease took %v; the straggler was waited out instead of absorbed", elapsed)
	}
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Errorf("C differs from in-process engine by %g (want bitwise equal)", d)
	}
	st, err := FetchStats(daemon, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range st.Jobs {
		if js.ID == id && js.Redundancy != nil && js.Redundancy.Absorbed == 0 {
			t.Errorf("job %d gate outcome records no absorbed straggler: %+v", id, js.Redundancy)
		}
	}
}
