package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"repro/internal/cache"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/trace"
)

// The client protocol is a small length-prefixed binary framing, separate
// from the worker wire protocol of internal/net: clients speak matrices
// (whole A/B/C operands), workers speak chunks and installments. Block
// payloads reuse the framed float64 codec of internal/matrix.
//
// One submission is one connection: the client ships A, B and C, the server
// answers with an accept frame carrying the job id (admission — the job may
// still queue behind others), then, when the job completes, a result frame
// carrying the updated C (or an error frame). A status connection sends one
// status frame and gets the service snapshot as JSON.

// clientKind labels client-protocol frames.
type clientKind uint8

const (
	cSubmit    clientKind = iota + 1 // client → server: R,S,T,Q + A,B,C blocks
	cAccept                          // server → client: job id (admitted to the queue)
	cResult                          // server → client: job id + updated C blocks
	cError                           // server → client: job id (0 = rejected) + message
	cStatus                          // client → server: snapshot request
	cStats                           // server → client: Stats as JSON
	cCancel                          // client → server: job id — cancel the submitted job
	cJoin                            // client → server: worker addr + spec — register with the fleet
	cSubmitD                         // client → server: cSubmit + the operands' panel digests
	cTrace                           // client → server: job id — fetch the job's recorded timeline
	cTraceData                       // server → client: job id + the timeline as JSON
	cSubmitC                         // client → server: cSubmitD + the job's SLO class (digest lists may be empty)
)

func (k clientKind) String() string {
	switch k {
	case cSubmit:
		return "submit"
	case cAccept:
		return "accept"
	case cResult:
		return "result"
	case cError:
		return "error"
	case cStatus:
		return "status"
	case cStats:
		return "stats"
	case cCancel:
		return "cancel"
	case cJoin:
		return "join"
	case cSubmitD:
		return "submit-digest"
	case cTrace:
		return "trace"
	case cTraceData:
		return "trace-data"
	case cSubmitC:
		return "submit-class"
	default:
		return fmt.Sprintf("clientkind(%d)", uint8(k))
	}
}

const (
	clientMagic    = 0x4d4d5331 // "MMS1"
	maxClientFrame = 1 << 31    // 2 GiB: three operands of a large product
	maxErrLen      = 1 << 16
	maxStatsLen    = 1 << 24
)

// clientMsg is the single client-protocol envelope.
type clientMsg struct {
	Kind       clientKind
	R, S, T, Q int             // Submit
	ID         uint64          // Accept / Result / Error
	Blocks     []*matrix.Block // Submit: A then B then C; Result: C
	Err        string          // Error
	Stats      []byte          // Stats: JSON
	Addr       string          // Join: the worker's dialable address
	SpecC      float64         // Join: declared link cost c_i
	SpecW      float64         // Join: declared compute cost w_i
	SpecM      int             // Join: declared memory capacity m_i (blocks)
	Rows, Cols []cache.Digest  // SubmitD/SubmitC: A row-panel / B column-panel digests
	Class      JobClass        // SubmitC: the job's SLO class
}

// maxDigestList bounds one digest list of a submit-digest frame.
const maxDigestList = 1 << 22

// maxAddrLen bounds a join frame's address field.
const maxAddrLen = 1 << 10

func clientPayloadLen(m *clientMsg) (int, error) {
	blocksLen := func() int {
		n := 4
		for _, b := range m.Blocks {
			n += matrix.BlockWireSize(b.Q)
		}
		return n
	}
	switch m.Kind {
	case cSubmit:
		return 16 + blocksLen(), nil
	case cSubmitD, cSubmitC:
		if len(m.Rows) > maxDigestList || len(m.Cols) > maxDigestList {
			return 0, fmt.Errorf("serve: %s frame lists %d+%d digests", m.Kind, len(m.Rows), len(m.Cols))
		}
		n := 16 + 4 + cache.DigestLen*len(m.Rows) + 4 + cache.DigestLen*len(m.Cols) + blocksLen()
		if m.Kind == cSubmitC {
			n++ // the class byte between the dims and the digest lists
		}
		return n, nil
	case cAccept, cCancel, cTrace:
		return 8, nil
	case cTraceData:
		return 8 + 4 + len(m.Stats), nil
	case cResult:
		return 8 + blocksLen(), nil
	case cError:
		if len(m.Err) > maxErrLen {
			m.Err = m.Err[:maxErrLen]
		}
		return 8 + 4 + len(m.Err), nil
	case cStatus:
		return 0, nil
	case cStats:
		return 4 + len(m.Stats), nil
	case cJoin:
		if len(m.Addr) > maxAddrLen {
			return 0, fmt.Errorf("serve: join address %d bytes long", len(m.Addr))
		}
		return 4 + len(m.Addr) + 8 + 8 + 4, nil
	default:
		return 0, fmt.Errorf("serve: cannot encode client frame kind %d", m.Kind)
	}
}

// writeClientMsg writes one length-prefixed client frame, staging block
// payloads through bc (nil: one-shot codec).
func writeClientMsg(w io.Writer, m *clientMsg, bc *matrix.BlockCodec) error {
	if bc == nil {
		bc = &matrix.BlockCodec{}
	}
	n, err := clientPayloadLen(m)
	if err != nil {
		return err
	}
	if int64(n) > maxClientFrame {
		// Reject before writing anything: past this the uint32 length prefix
		// would wrap (or the reader would reject after a multi-GiB upload).
		return fmt.Errorf("serve: %s frame payload %d bytes exceeds the %d-byte frame limit", m.Kind, n, int64(maxClientFrame))
	}
	var hdr [mmnet.FrameHeaderLen]byte
	mmnet.PutFrameHeader(hdr[:], clientMagic, uint8(m.Kind), n)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("serve: write frame header: %w", err)
	}
	switch m.Kind {
	case cSubmit, cSubmitD, cSubmitC:
		var dims [16]byte
		binary.LittleEndian.PutUint32(dims[0:4], uint32(m.R))
		binary.LittleEndian.PutUint32(dims[4:8], uint32(m.S))
		binary.LittleEndian.PutUint32(dims[8:12], uint32(m.T))
		binary.LittleEndian.PutUint32(dims[12:16], uint32(m.Q))
		if _, err := w.Write(dims[:]); err != nil {
			return fmt.Errorf("serve: write submit dims: %w", err)
		}
		if m.Kind == cSubmitC {
			if _, err := w.Write([]byte{byte(m.Class)}); err != nil {
				return fmt.Errorf("serve: write submit class: %w", err)
			}
		}
		if m.Kind == cSubmitD || m.Kind == cSubmitC {
			for _, ds := range [][]cache.Digest{m.Rows, m.Cols} {
				var cnt [4]byte
				binary.LittleEndian.PutUint32(cnt[:], uint32(len(ds)))
				if _, err := w.Write(cnt[:]); err != nil {
					return err
				}
				for _, d := range ds {
					if _, err := w.Write(d[:]); err != nil {
						return err
					}
				}
			}
		}
		return bc.WriteBlocks(w, m.Blocks)
	case cAccept, cCancel, cTrace:
		var id [8]byte
		binary.LittleEndian.PutUint64(id[:], m.ID)
		_, err := w.Write(id[:])
		return err
	case cTraceData:
		var pre [12]byte
		binary.LittleEndian.PutUint64(pre[0:8], m.ID)
		binary.LittleEndian.PutUint32(pre[8:12], uint32(len(m.Stats)))
		if _, err := w.Write(pre[:]); err != nil {
			return err
		}
		_, err := w.Write(m.Stats)
		return err
	case cResult:
		var id [8]byte
		binary.LittleEndian.PutUint64(id[:], m.ID)
		if _, err := w.Write(id[:]); err != nil {
			return err
		}
		return bc.WriteBlocks(w, m.Blocks)
	case cError:
		var pre [12]byte
		binary.LittleEndian.PutUint64(pre[0:8], m.ID)
		binary.LittleEndian.PutUint32(pre[8:12], uint32(len(m.Err)))
		if _, err := w.Write(pre[:]); err != nil {
			return err
		}
		_, err := io.WriteString(w, m.Err)
		return err
	case cStatus:
		return nil
	case cStats:
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(m.Stats)))
		if _, err := w.Write(cnt[:]); err != nil {
			return err
		}
		_, err := w.Write(m.Stats)
		return err
	case cJoin:
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(m.Addr)))
		if _, err := w.Write(cnt[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, m.Addr); err != nil {
			return err
		}
		var spec [20]byte
		binary.LittleEndian.PutUint64(spec[0:8], math.Float64bits(m.SpecC))
		binary.LittleEndian.PutUint64(spec[8:16], math.Float64bits(m.SpecW))
		binary.LittleEndian.PutUint32(spec[16:20], uint32(m.SpecM))
		_, err := w.Write(spec[:])
		return err
	}
	return nil
}

// readClientMsg reads one client frame, decoding blocks through bc.
func readClientMsg(r io.Reader, bc *matrix.BlockCodec) (*clientMsg, error) {
	if bc == nil {
		bc = &matrix.BlockCodec{}
	}
	var hdr [mmnet.FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: read frame header: %w", err)
	}
	rawKind, rawLen, err := mmnet.ParseFrameHeader(hdr[:], clientMagic)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	kind := clientKind(rawKind)
	n := int64(rawLen)
	if n > maxClientFrame {
		return nil, fmt.Errorf("serve: implausible client frame payload %d bytes", n)
	}
	buf := &io.LimitedReader{R: r, N: n}

	m := &clientMsg{Kind: kind}
	switch kind {
	case cSubmit, cSubmitD, cSubmitC:
		var dims [16]byte
		if _, err = io.ReadFull(buf, dims[:]); err != nil {
			break
		}
		m.R = int(int32(binary.LittleEndian.Uint32(dims[0:4])))
		m.S = int(int32(binary.LittleEndian.Uint32(dims[4:8])))
		m.T = int(int32(binary.LittleEndian.Uint32(dims[8:12])))
		m.Q = int(int32(binary.LittleEndian.Uint32(dims[12:16])))
		if kind == cSubmitC {
			var cls [1]byte
			if _, err = io.ReadFull(buf, cls[:]); err != nil {
				break
			}
			m.Class = JobClass(cls[0])
		}
		if kind == cSubmitD || kind == cSubmitC {
			lists := [2]*[]cache.Digest{&m.Rows, &m.Cols}
			for _, dst := range lists {
				var cnt [4]byte
				if _, err = io.ReadFull(buf, cnt[:]); err != nil {
					break
				}
				n := int(binary.LittleEndian.Uint32(cnt[:]))
				if n > maxDigestList {
					return nil, fmt.Errorf("serve: submit-digest frame lists %d digests", n)
				}
				ds := make([]cache.Digest, n)
				for i := range ds {
					if _, err = io.ReadFull(buf, ds[i][:]); err != nil {
						break
					}
				}
				if err != nil {
					break
				}
				*dst = ds
			}
			if err != nil {
				break
			}
		}
		m.Blocks, err = bc.ReadBlocks(buf)
	case cAccept, cCancel, cTrace:
		var id [8]byte
		if _, err = io.ReadFull(buf, id[:]); err != nil {
			break
		}
		m.ID = binary.LittleEndian.Uint64(id[:])
	case cTraceData:
		var pre [12]byte
		if _, err = io.ReadFull(buf, pre[:]); err != nil {
			break
		}
		m.ID = binary.LittleEndian.Uint64(pre[0:8])
		traceLen := int(binary.LittleEndian.Uint32(pre[8:12]))
		if traceLen > maxStatsLen {
			return nil, fmt.Errorf("serve: trace payload %d bytes long", traceLen)
		}
		m.Stats = make([]byte, traceLen)
		_, err = io.ReadFull(buf, m.Stats)
	case cResult:
		var id [8]byte
		if _, err = io.ReadFull(buf, id[:]); err != nil {
			break
		}
		m.ID = binary.LittleEndian.Uint64(id[:])
		m.Blocks, err = bc.ReadBlocks(buf)
	case cError:
		var pre [12]byte
		if _, err = io.ReadFull(buf, pre[:]); err != nil {
			break
		}
		m.ID = binary.LittleEndian.Uint64(pre[0:8])
		msgLen := int(binary.LittleEndian.Uint32(pre[8:12]))
		if msgLen > maxErrLen {
			return nil, fmt.Errorf("serve: error message %d bytes long", msgLen)
		}
		text := make([]byte, msgLen)
		if _, err = io.ReadFull(buf, text); err != nil {
			break
		}
		m.Err = string(text)
	case cStatus:
		// empty payload
	case cStats:
		var cnt [4]byte
		if _, err = io.ReadFull(buf, cnt[:]); err != nil {
			break
		}
		statsLen := int(binary.LittleEndian.Uint32(cnt[:]))
		if statsLen > maxStatsLen {
			return nil, fmt.Errorf("serve: stats payload %d bytes long", statsLen)
		}
		m.Stats = make([]byte, statsLen)
		_, err = io.ReadFull(buf, m.Stats)
	case cJoin:
		var cnt [4]byte
		if _, err = io.ReadFull(buf, cnt[:]); err != nil {
			break
		}
		addrLen := int(binary.LittleEndian.Uint32(cnt[:]))
		if addrLen > maxAddrLen {
			return nil, fmt.Errorf("serve: join address %d bytes long", addrLen)
		}
		addr := make([]byte, addrLen)
		if _, err = io.ReadFull(buf, addr); err != nil {
			break
		}
		m.Addr = string(addr)
		var spec [20]byte
		if _, err = io.ReadFull(buf, spec[:]); err != nil {
			break
		}
		m.SpecC = math.Float64frombits(binary.LittleEndian.Uint64(spec[0:8]))
		m.SpecW = math.Float64frombits(binary.LittleEndian.Uint64(spec[8:16]))
		m.SpecM = int(int32(binary.LittleEndian.Uint32(spec[16:20])))
	default:
		return nil, fmt.Errorf("serve: unknown client frame kind %d", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: decode %s: %w", kind, err)
	}
	if buf.N != 0 {
		return nil, fmt.Errorf("serve: %s frame has %d trailing bytes", kind, buf.N)
	}
	return m, nil
}

// flattenMatrix lists a matrix's blocks in row-major order, materializing
// lazily-allocated zero blocks so counts stay exact on the wire.
func flattenMatrix(m *matrix.BlockMatrix) []*matrix.Block {
	out := make([]*matrix.Block, 0, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out = append(out, m.Block(i, j))
		}
	}
	return out
}

// matrixFromBlocks rebuilds an r×c blocked matrix from a row-major list.
func matrixFromBlocks(r, c, q int, blocks []*matrix.Block) (*matrix.BlockMatrix, error) {
	if len(blocks) != r*c {
		return nil, fmt.Errorf("serve: %d blocks for a %dx%d matrix", len(blocks), r, c)
	}
	m := matrix.NewBlockMatrix(r, c, q)
	for idx, b := range blocks {
		if b == nil || b.Q != q {
			return nil, fmt.Errorf("serve: block %d has edge mismatch", idx)
		}
		m.SetBlock(idx/c, idx%c, b)
	}
	return m, nil
}

// ListenAndServe accepts client connections until the listener closes: each
// submission is admitted to the queue and answered with its updated C when
// its turn has run; status requests get the JSON snapshot. One goroutine per
// client — concurrent submissions are exactly how the service gets
// concurrent jobs.
func (s *Server) ListenAndServe(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			s.log.Warn("client accept failed", "err", err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		go s.handleClient(conn)
	}
}

// handleClient runs one client connection to completion.
func (s *Server) handleClient(conn net.Conn) {
	defer conn.Close()
	rd := bufio.NewReaderSize(conn, 1<<16)
	wr := bufio.NewWriterSize(conn, 1<<16)
	var codec matrix.BlockCodec

	reply := func(m *clientMsg) error {
		if err := writeClientMsg(wr, m, &codec); err != nil {
			return err
		}
		return wr.Flush()
	}
	fail := func(id uint64, err error) {
		reply(&clientMsg{Kind: cError, ID: id, Err: err.Error()})
	}

	msg, err := readClientMsg(rd, &codec)
	if err != nil {
		s.log.Warn("client request failed", "client", conn.RemoteAddr().String(), "err", err)
		return
	}
	switch msg.Kind {
	case cStatus:
		body, err := json.Marshal(s.Status())
		if err != nil {
			fail(0, err)
			return
		}
		reply(&clientMsg{Kind: cStats, Stats: body})

	case cTrace:
		tr, err := s.JobTrace(msg.ID)
		if err != nil {
			fail(msg.ID, err)
			return
		}
		body, err := json.Marshal(tr)
		if err != nil {
			fail(msg.ID, err)
			return
		}
		reply(&clientMsg{Kind: cTraceData, ID: msg.ID, Stats: body})

	case cJoin:
		// A worker daemon (mmworker -join) announcing itself to the fleet
		// after startup: register, and answer with its fleet index. Queued
		// jobs can lease it immediately; an adaptive server may also attach
		// it to a lease already running.
		i, err := s.AddWorker(msg.Addr, platform.Worker{Name: msg.Addr, C: msg.SpecC, W: msg.SpecW, M: msg.SpecM})
		if err != nil {
			fail(0, err)
			return
		}
		reply(&clientMsg{Kind: cAccept, ID: uint64(i)})

	case cSubmit, cSubmitD, cSubmitC:
		nA, nB, nC := msg.R*msg.T, msg.T*msg.S, msg.R*msg.S
		if msg.R <= 0 || msg.S <= 0 || msg.T <= 0 || msg.Q <= 0 || len(msg.Blocks) != nA+nB+nC {
			fail(0, fmt.Errorf("serve: submit carries %d blocks for r=%d s=%d t=%d", len(msg.Blocks), msg.R, msg.S, msg.T))
			return
		}
		a, err := matrixFromBlocks(msg.R, msg.T, msg.Q, msg.Blocks[:nA])
		if err != nil {
			fail(0, err)
			return
		}
		b, err := matrixFromBlocks(msg.T, msg.S, msg.Q, msg.Blocks[nA:nA+nB])
		if err != nil {
			fail(0, err)
			return
		}
		c, err := matrixFromBlocks(msg.R, msg.S, msg.Q, msg.Blocks[nA+nB:])
		if err != nil {
			fail(0, err)
			return
		}
		// The client computed the operands' panel digests already (an
		// installed operand resubmitted): skip re-hashing server-side. A
		// submit-class frame carries the digest lists too, but empty lists
		// mean "none" (every real operand has ≥ 1 row and column panel).
		var jp *cache.JobPanels
		if msg.Kind == cSubmitD || (msg.Kind == cSubmitC && len(msg.Rows)+len(msg.Cols) > 0) {
			jp = &cache.JobPanels{T: msg.T, Q: msg.Q, ARows: msg.Rows, BCols: msg.Cols}
		}
		id, err := s.SubmitClass(a, b, c, jp, msg.Class)
		if err != nil {
			fail(0, err)
			return
		}
		if err := reply(&clientMsg{Kind: cAccept, ID: id}); err != nil {
			return // client gone; the job still runs
		}
		// While the job queues or runs, keep reading the connection for a
		// cancel frame (the submit goroutine wrote its last frame already, so
		// this reader owns rd). A cancel for the accepted job cancels it
		// server-side; a vanished client merely ends the reader — its job
		// keeps running, exactly as before the cancel frame existed.
		go func() {
			var rdCodec matrix.BlockCodec
			for {
				msg, err := readClientMsg(rd, &rdCodec)
				if err != nil {
					return
				}
				if msg.Kind == cCancel && msg.ID == id {
					s.Cancel(id)
				}
			}
		}()
		if err := s.Wait(id); err != nil {
			fail(id, err)
			return
		}
		reply(&clientMsg{Kind: cResult, ID: id, Blocks: flattenMatrix(c)})

	default:
		fail(0, fmt.Errorf("serve: unexpected %s frame from client", msg.Kind))
	}
}

// SubmitProduct is the client side of one submission: it ships A, B and C to
// the daemon at addr, waits for the job to run, and returns the updated C
// and the job id. timeout bounds the whole exchange — dial included (0: no
// deadline — the job may legitimately queue for a while).
//
// Deprecated: library clients should use SubmitProductContext (or the matmul
// facade's Remote runtime), which can also cancel the job mid-queue or
// mid-run instead of merely abandoning the wait.
func SubmitProduct(addr string, a, b, c *matrix.BlockMatrix, timeout time.Duration) (*matrix.BlockMatrix, uint64, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return SubmitProductContext(ctx, addr, a, b, c)
}

// cancelGrace bounds how long a cancelled submission waits for the daemon to
// acknowledge the cancel frame with an error frame before abandoning the
// connection.
const cancelGrace = 10 * time.Second

// SubmitProductContext is one submission under a context. The dial, the
// upload, and the wait for the result are all bounded by ctx's deadline —
// there is no hidden fixed dial budget that can outlive the caller's. If ctx
// is cancelled while the job queues or runs, a cancel frame is sent so the
// daemon dequeues or aborts the job (other jobs keep their leases), and the
// returned error wraps ctx's error.
func SubmitProductContext(ctx context.Context, addr string, a, b, c *matrix.BlockMatrix) (*matrix.BlockMatrix, uint64, error) {
	return submitProduct(ctx, addr, a, b, c, nil, ClassStandard)
}

// SubmitProductPanels is SubmitProductContext carrying the operands' panel
// digests alongside the blocks, so a caching daemon can route the job by
// operand affinity and skip worker transfers without re-hashing A and B. jp
// must describe exactly these operands (see cache.PanelsForJob; the matmul
// facade's Operand handles memoize it); nil degrades to a plain submission.
// A non-caching daemon ignores the digests.
func SubmitProductPanels(ctx context.Context, addr string, a, b, c *matrix.BlockMatrix, jp *cache.JobPanels) (*matrix.BlockMatrix, uint64, error) {
	return submitProduct(ctx, addr, a, b, c, jp, ClassStandard)
}

// SubmitProductClass is SubmitProductPanels with an explicit SLO class: the
// daemon's priority queue policy orders dispatch by it and admission control
// buckets by it (see Config.QueuePolicy). jp may be nil. A standard-class
// submission stays on the pre-class frames, so old daemons keep working;
// declaring another class needs a daemon that understands the class frame.
func SubmitProductClass(ctx context.Context, addr string, a, b, c *matrix.BlockMatrix, jp *cache.JobPanels, class JobClass) (*matrix.BlockMatrix, uint64, error) {
	return submitProduct(ctx, addr, a, b, c, jp, class)
}

func submitProduct(ctx context.Context, addr string, a, b, c *matrix.BlockMatrix, jp *cache.JobPanels, class JobClass) (*matrix.BlockMatrix, uint64, error) {
	if a == nil || b == nil || c == nil {
		return nil, 0, fmt.Errorf("serve: submit needs A, B and C")
	}
	conn, err := dialClient(ctx, addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	rd := bufio.NewReaderSize(conn, 1<<16)
	wr := bufio.NewWriterSize(conn, 1<<16)
	var codec matrix.BlockCodec

	// Until the daemon accepts the job there is nothing to cancel — a ctx
	// that dies during the upload or the ack wait just slams the connection,
	// so a deadline-less submission is still interruptible mid-upload.
	stopEarly := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })

	blocks := make([]*matrix.Block, 0, a.Rows*a.Cols+b.Rows*b.Cols+c.Rows*c.Cols)
	blocks = append(blocks, flattenMatrix(a)...)
	blocks = append(blocks, flattenMatrix(b)...)
	blocks = append(blocks, flattenMatrix(c)...)
	sub := &clientMsg{Kind: cSubmit, R: c.Rows, S: c.Cols, T: a.Cols, Q: a.Q, Blocks: blocks}
	if jp != nil {
		sub.Kind, sub.Rows, sub.Cols = cSubmitD, jp.ARows, jp.BCols
	}
	if class != ClassStandard {
		sub.Kind, sub.Class = cSubmitC, class
	}
	err = writeClientMsg(wr, sub, &codec)
	if err == nil {
		err = wr.Flush()
	}
	if err != nil {
		stopEarly()
		return nil, 0, clientErr(ctx, err)
	}

	ack, err := readClientMsg(rd, &codec)
	stopEarly()
	if err != nil {
		return nil, 0, clientErr(ctx, err)
	}
	if ack.Kind == cError {
		return nil, ack.ID, fmt.Errorf("serve: daemon rejected the job: %s", ack.Err)
	}
	if ack.Kind != cAccept {
		return nil, 0, fmt.Errorf("serve: got %s frame, want accept", ack.Kind)
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		// The early watcher may already have fired (poisoning the conn's
		// deadlines); re-check before arming the cancel path so the job is
		// cancelled daemon-side (best-effort) rather than silently abandoned.
		conn.SetWriteDeadline(time.Now().Add(cancelGrace))
		writeClientMsg(wr, &clientMsg{Kind: cCancel, ID: ack.ID}, nil)
		wr.Flush()
		return nil, ack.ID, fmt.Errorf("serve: submission ended: %w", ctxErr)
	}

	// Job accepted: arm the cancel path. The submit goroutine wrote its last
	// frame above, so the AfterFunc owns the writer; it asks the daemon to
	// cancel the job, then bounds the remaining read so a wedged daemon
	// cannot hold a cancelled caller hostage. An expired deadline grants no
	// grace: the caller's budget bounds the whole exchange, so the read is
	// failed immediately and only an explicit cancel waits for the daemon's
	// acknowledgement.
	var cancelCodec matrix.BlockCodec
	stop := context.AfterFunc(ctx, func() {
		conn.SetWriteDeadline(time.Now().Add(cancelGrace))
		if err := writeClientMsg(wr, &clientMsg{Kind: cCancel, ID: ack.ID}, &cancelCodec); err == nil {
			wr.Flush()
		}
		if errors.Is(ctx.Err(), context.Canceled) {
			conn.SetReadDeadline(time.Now().Add(cancelGrace))
		} else {
			conn.SetReadDeadline(time.Now())
		}
	})
	defer stop()

	res, err := readClientMsg(rd, &codec)
	if err != nil {
		return nil, ack.ID, clientErr(ctx, err)
	}
	switch res.Kind {
	case cResult:
		out, err := matrixFromBlocks(c.Rows, c.Cols, c.Q, res.Blocks)
		if err != nil {
			return nil, res.ID, err
		}
		return out, res.ID, nil
	case cError:
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, res.ID, fmt.Errorf("serve: job %d canceled: %w (daemon: %s)", res.ID, ctxErr, res.Err)
		}
		return nil, res.ID, fmt.Errorf("serve: job %d failed: %s", res.ID, res.Err)
	default:
		return nil, ack.ID, fmt.Errorf("serve: got %s frame, want result", res.Kind)
	}
}

// dialClient connects to the daemon with the dial bounded by ctx (falling
// back to a 10s cap for deadline-less contexts, so a dead address cannot
// hang an unbounded submission forever).
func dialClient(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	return conn, nil
}

// clientErr maps a connection error observed after ctx ended to the context
// error (the deadline slam or daemon hang-up it provoked is detail, not the
// story).
func clientErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("serve: submission ended: %w (connection: %v)", ctxErr, err)
	}
	return err
}

// FetchStats asks the daemon at addr for its service snapshot. timeout
// bounds the whole exchange, dial included.
func FetchStats(addr string, timeout time.Duration) (*Stats, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return FetchStatsContext(ctx, addr)
}

// FetchStatsContext is FetchStats under a context: cancelling ctx
// interrupts the exchange even when ctx carries no deadline.
func FetchStatsContext(ctx context.Context, addr string) (*Stats, error) {
	conn, err := dialClient(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	if err := writeClientMsg(conn, &clientMsg{Kind: cStatus}, nil); err != nil {
		return nil, clientErr(ctx, err)
	}
	msg, err := readClientMsg(bufio.NewReaderSize(conn, 1<<16), nil)
	if err != nil {
		return nil, clientErr(ctx, err)
	}
	if msg.Kind != cStats {
		return nil, fmt.Errorf("serve: got %s frame, want stats", msg.Kind)
	}
	var st Stats
	if err := json.Unmarshal(msg.Stats, &st); err != nil {
		return nil, fmt.Errorf("serve: decode stats: %w", err)
	}
	return &st, nil
}

// FetchTraceContext asks the daemon at addr for job id's recorded timeline —
// available once the job's lease has ended (the daemon records every lease;
// its -trace-dir flag only controls on-disk export). The matmul facade's
// Remote jobs resolve Trace() through this.
func FetchTraceContext(ctx context.Context, addr string, id uint64) (*trace.Trace, error) {
	conn, err := dialClient(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	if err := writeClientMsg(conn, &clientMsg{Kind: cTrace, ID: id}, nil); err != nil {
		return nil, clientErr(ctx, err)
	}
	msg, err := readClientMsg(bufio.NewReaderSize(conn, 1<<16), nil)
	if err != nil {
		return nil, clientErr(ctx, err)
	}
	switch msg.Kind {
	case cTraceData:
		var tr trace.Trace
		if err := json.Unmarshal(msg.Stats, &tr); err != nil {
			return nil, fmt.Errorf("serve: decode trace: %w", err)
		}
		return &tr, nil
	case cError:
		return nil, fmt.Errorf("serve: trace fetch rejected: %s", msg.Err)
	default:
		return nil, fmt.Errorf("serve: got %s frame, want trace-data", msg.Kind)
	}
}

// JoinFleet announces a worker daemon to the scheduling daemon at addr:
// workerAddr is registered with the fleet under the given declared spec and
// becomes leasable immediately (on an adaptive daemon, possibly attached to
// a job already running). Returns the worker's fleet index. This is the
// client side of mmworker -join — worker-initiated registration, the elastic
// complement of the fleet the daemon dialed at startup.
func JoinFleet(ctx context.Context, addr, workerAddr string, spec platform.Worker) (int, error) {
	conn, err := dialClient(ctx, addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	join := &clientMsg{Kind: cJoin, Addr: workerAddr, SpecC: spec.C, SpecW: spec.W, SpecM: spec.M}
	if err := writeClientMsg(conn, join, nil); err != nil {
		return 0, clientErr(ctx, err)
	}
	msg, err := readClientMsg(bufio.NewReaderSize(conn, 1<<16), nil)
	if err != nil {
		return 0, clientErr(ctx, err)
	}
	switch msg.Kind {
	case cAccept:
		return int(msg.ID), nil
	case cError:
		return 0, fmt.Errorf("serve: join rejected: %s", msg.Err)
	default:
		return 0, fmt.Errorf("serve: got %s frame, want accept", msg.Kind)
	}
}
