package serve

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/platform"
)

// WorkerState is a fleet worker's lease state.
type WorkerState uint8

const (
	// StateIdle: connected, registered, available for the next lease.
	StateIdle WorkerState = iota
	// StateLeased: its connection is owned by a running job's master.
	StateLeased
	// StateDown: unreachable; the fleet re-dials it before the next lease.
	StateDown
)

func (s WorkerState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateLeased:
		return "leased"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// FleetOptions tunes a worker fleet.
type FleetOptions struct {
	// Master carries the per-connection options every lease's master runs
	// with (timeouts, one-port gating).
	Master mmnet.MasterOptions
	// Keepalive is the interval at which idle pooled connections are pinged
	// (so the worker's idle timeout never fires between jobs) and their
	// heartbeat backlog drained (so the socket buffer never fills while a
	// session waits). Default 15s; negative disables.
	Keepalive time.Duration
	// Logf, when non-nil, receives fleet events (redials, downed workers)
	// rendered as plain text. Superseded by Logger when both are set.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives fleet events as structured records
	// carrying worker index and address attrs. Takes precedence over Logf.
	Logger *slog.Logger
}

func (o FleetOptions) keepalive() time.Duration {
	if o.Keepalive != 0 {
		return o.Keepalive
	}
	return 15 * time.Second
}

// logger resolves the fleet's logger: explicit Logger first, then the
// legacy printf callback bridged through obs.LogfLogger, then discard.
func (o FleetOptions) logger() *slog.Logger {
	switch {
	case o.Logger != nil:
		return o.Logger
	case o.Logf != nil:
		return obs.LogfLogger(o.Logf)
	}
	return obs.NopLogger()
}

// Fleet holds one persistent, registered connection per worker daemon and
// leases disjoint subsets of them to jobs. Workers that die (or were never
// reachable) are marked down and re-dialed before the next lease — the
// worker *process* is never restarted, only its session.
type Fleet struct {
	opts  FleetOptions
	log   *slog.Logger
	addrs []string
	specs []platform.Worker

	mu       sync.Mutex
	conns    []*mmnet.WorkerConn // non-nil iff state == StateIdle
	state    []WorkerState
	names    []string // last registered name per worker ("" before first contact)
	kernels  []string // last registered block-update kernel per worker
	jobs     []int    // completed leases per worker, for metrics
	dialing  []bool   // a re-dial is in flight outside the lock
	pinging  []bool   // borrowed by the keepalive loop, not by a job
	lastDial []time.Time
	dials    sync.WaitGroup // in-flight redial goroutines, awaited by Close
	closed   bool
	stop     chan struct{}
	done     chan struct{}
	// onDown, when set, observes every transition of a worker into StateDown
	// (session died mid-job, failed-job recycle, keepalive loss). The server
	// hooks it to invalidate the worker's panel-residency record: the re-dialed
	// successor may be a freshly restarted process with an empty cache, and
	// stale residency must not keep attracting jobs it can no longer serve
	// cheaply. Called with the fleet lock held; the hook must not call back
	// into the fleet.
	onDown func(i int)
}

// SetOnDown installs the down-transition observer. Call once, before jobs
// run (the server does, right after constructing the fleet's server).
func (f *Fleet) SetOnDown(fn func(i int)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.onDown = fn
}

// downLocked marks worker i down and notifies the observer. The fleet lock
// must be held.
func (f *Fleet) downLocked(i int) {
	f.conns[i], f.state[i] = nil, StateDown
	if f.onDown != nil {
		f.onDown(i)
	}
}

// WorkerMetric is one worker's row in the fleet metrics. The Est fields are
// filled by an adaptive Server (the fleet itself only knows connectivity):
// live measured costs in milliseconds, zero until the worker's first
// observed job.
type WorkerMetric struct {
	// ID is the worker's fleet index — the identifier leases, plans, and the
	// cache registry all key on, and the stable sort key for status output.
	ID   int    `json:"id"`
	Addr string `json:"addr"`
	Name string `json:"name,omitempty"`
	// Kernel is the block-update kernel the worker announced at registration
	// (generic, tiled, avx2, ...), empty before first contact.
	Kernel string          `json:"kernel,omitempty"`
	Spec   platform.Worker `json:"spec"`
	State  string          `json:"state"`
	Jobs   int             `json:"jobs"`
	// EstC/EstW are the measured per-block link cost and per-update compute
	// cost (ms), EWMA over observed jobs; Samples counts the observations.
	EstC    float64 `json:"est_c_ms,omitempty"`
	EstW    float64 `json:"est_w_ms,omitempty"`
	Samples int     `json:"samples,omitempty"`
	// Panel-cache effectiveness, filled by a caching Server: handshake
	// hit/miss counts and operand bytes sent/saved, cumulative over the
	// worker's completed leases; the Resident figures are the server's
	// current belief about the worker's cache content.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	SentBytes      int64 `json:"cache_sent_bytes,omitempty"`
	SavedBytes     int64 `json:"cache_saved_bytes,omitempty"`
	ResidentPanels int   `json:"resident_panels,omitempty"`
	ResidentBytes  int64 `json:"resident_bytes,omitempty"`
}

// NewFleet dials every worker address and keeps the sessions open. specs[i]
// is worker i's platform description (c_i, w_i, m_i), the input to per-job
// resource selection; it must match addrs in length. Workers that cannot be
// reached start down and are re-dialed on demand — the fleet comes up as
// long as at least one worker registers.
func NewFleet(addrs []string, specs []platform.Worker, opts FleetOptions) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("serve: fleet needs at least one worker address")
	}
	if len(specs) != len(addrs) {
		return nil, fmt.Errorf("serve: %d specs for %d workers", len(specs), len(addrs))
	}
	// Copy before defaulting names, so the caller's slice is never mutated.
	specs = append([]platform.Worker(nil), specs...)
	for i := range specs {
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("P%d", i+1)
		}
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	f := &Fleet{
		opts:     opts,
		log:      opts.logger(),
		addrs:    append([]string(nil), addrs...),
		specs:    specs,
		conns:    make([]*mmnet.WorkerConn, len(addrs)),
		state:    make([]WorkerState, len(addrs)),
		names:    make([]string, len(addrs)),
		kernels:  make([]string, len(addrs)),
		jobs:     make([]int, len(addrs)),
		dialing:  make([]bool, len(addrs)),
		pinging:  make([]bool, len(addrs)),
		lastDial: make([]time.Time, len(addrs)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	up := 0
	for i := range addrs {
		if f.redialLocked(i) {
			up++
		}
	}
	if up == 0 {
		return nil, fmt.Errorf("serve: no worker of %v reachable", addrs)
	}
	go f.keepaliveLoop()
	return f, nil
}

// redialLocked attempts to (re)connect worker i, updating its state. The
// fleet lock must be held (or the fleet not yet shared).
func (f *Fleet) redialLocked(i int) bool {
	f.lastDial[i] = time.Now()
	wc, err := mmnet.DialWorker(f.addrs[i], &f.opts.Master)
	if err != nil {
		f.downLocked(i)
		f.log.Warn("worker down", "worker", i, "addr", f.addrs[i], "err", err)
		return false
	}
	f.conns[i], f.state[i] = wc, StateIdle
	f.names[i], f.kernels[i] = wc.Name(), wc.Kernel()
	return true
}

// Size returns the fleet's worker count (reachable or not).
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.addrs)
}

// Specs returns a copy of the per-worker platform descriptions.
func (f *Fleet) Specs() []platform.Worker {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]platform.Worker(nil), f.specs...)
}

// Add registers a worker *after* startup — the elastic half of fleet
// membership: the address is dialed immediately and, when reachable, the new
// worker is idle and leasable the moment Add returns; when not, it starts
// down and the usual re-dial machinery keeps trying, so a daemon that
// announces itself before its listener is routable still joins eventually.
// Returns the new worker's fleet index.
func (f *Fleet) Add(addr string, spec platform.Worker) (int, error) {
	if addr == "" {
		return 0, fmt.Errorf("serve: add worker: empty address")
	}
	if spec.Name == "" {
		spec.Name = addr
	}
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	// Reject duplicates before dialing: the existing session holds the
	// worker's (sequential) serve loop, so a second dial would hang until
	// the dial timeout for nothing. Re-checked under the lock below in case
	// two Adds race.
	f.mu.Lock()
	for _, a := range f.addrs {
		if a == addr {
			f.mu.Unlock()
			return 0, fmt.Errorf("serve: worker %s already registered", addr)
		}
	}
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("serve: fleet is closed")
	}
	// Dial outside the lock: a slow or unroutable address must not block
	// Lease/Return/Idle while we wait on the connect.
	wc, err := mmnet.DialWorker(addr, &f.opts.Master)

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		if wc != nil {
			wc.Release()
		}
		return 0, fmt.Errorf("serve: fleet is closed")
	}
	for _, a := range f.addrs {
		if a == addr {
			f.mu.Unlock()
			if wc != nil {
				wc.Release()
			}
			return 0, fmt.Errorf("serve: worker %s already registered", addr)
		}
	}
	i := len(f.addrs)
	f.addrs = append(f.addrs, addr)
	f.specs = append(f.specs, spec)
	f.conns = append(f.conns, nil)
	f.state = append(f.state, StateDown)
	f.names = append(f.names, "")
	f.kernels = append(f.kernels, "")
	f.jobs = append(f.jobs, 0)
	f.dialing = append(f.dialing, false)
	f.pinging = append(f.pinging, false)
	f.lastDial = append(f.lastDial, time.Now())
	if wc != nil {
		f.conns[i], f.state[i] = wc, StateIdle
		f.names[i], f.kernels[i] = wc.Name(), wc.Kernel()
	}
	f.mu.Unlock()
	if err != nil {
		f.log.Warn("worker joined but is down", "worker", i, "addr", addr, "err", err)
	} else {
		f.log.Info("worker joined the fleet", "worker", i, "addr", addr)
	}
	return i, nil
}

// LeaseExtra moves one *idle* worker into an existing lease mid-job: its
// pooled connection is joined to the lease's master (Master.AddWorker) and
// the worker is leased until Return. Returns the plan worker index the
// master assigned — the index to deliver on the job's Elastic.Join channel.
// The caller must include i in the index slice it eventually passes to
// Return (join order matches Detach's connection order).
func (f *Fleet) LeaseExtra(i int, m *mmnet.Master) (int, error) {
	f.mu.Lock()
	switch {
	case f.closed:
		f.mu.Unlock()
		return 0, fmt.Errorf("serve: fleet is closed")
	case i < 0 || i >= len(f.addrs):
		f.mu.Unlock()
		return 0, fmt.Errorf("serve: lease-extra index %d out of range", i)
	case f.state[i] != StateIdle:
		f.mu.Unlock()
		return 0, fmt.Errorf("serve: worker %d (%s) is %s, not idle", i, f.addrs[i], f.state[i])
	}
	wc := f.conns[i]
	f.conns[i], f.state[i] = nil, StateLeased
	f.mu.Unlock()

	w, err := m.AddWorker(wc)
	if err != nil {
		// The master would not take it (detached, spent); hand the session
		// back to the pool untouched.
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			wc.Release()
		} else {
			f.conns[i], f.state[i] = wc, StateIdle
			f.mu.Unlock()
		}
		return 0, err
	}
	return w, nil
}

// redialBackoff rate-limits re-dial attempts per down worker, so a
// permanently dead address costs at most one (off-lock) dial per interval
// instead of one per scheduling pass.
const redialBackoff = time.Second

// Idle returns the indices currently available for a lease, kicking off
// re-dials of down workers (their daemons survive crashes of individual
// sessions, so a worker lost to one job serves the next). Dials run in
// their own goroutines — a slow or unroutable address never blocks the
// scheduling loop, Metrics, Lease or Return — each attempted at most once
// per redialBackoff; a re-registered worker shows up in a later Idle call
// (the server's retry timer polls while jobs wait).
func (f *Fleet) Idle() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	var idle []int
	for i := range f.addrs {
		if f.state[i] == StateDown && !f.dialing[i] && time.Since(f.lastDial[i]) >= redialBackoff {
			f.dialing[i] = true
			f.lastDial[i] = time.Now()
			f.dials.Add(1)
			go f.redial(i)
		}
		if f.state[i] == StateIdle {
			idle = append(idle, i)
		}
	}
	return idle
}

// redial attempts to reconnect one down worker and fold the session back
// into the pool. It owns worker i's dialing flag for the duration.
func (f *Fleet) redial(i int) {
	defer f.dials.Done()
	wc, err := mmnet.DialWorker(f.addrs[i], &f.opts.Master)
	f.mu.Lock()
	f.dialing[i] = false
	closed := f.closed
	switch {
	case err != nil:
		f.log.Warn("worker still down", "worker", i, "addr", f.addrs[i], "err", err)
	case closed || f.state[i] != StateDown:
		// The fleet closed (or the slot changed hands) while we dialed.
	default:
		f.conns[i], f.state[i] = wc, StateIdle
		f.names[i], f.kernels[i] = wc.Name(), wc.Kernel()
		f.log.Info("worker re-registered", "worker", i, "addr", f.addrs[i])
		wc = nil // pooled; do not release below
	}
	f.mu.Unlock()
	if err == nil && wc != nil {
		// Hand the unwanted session straight back to the daemon's accept loop.
		wc.Release()
	}
}

// Lease hands the connections of the given idle workers to a fresh master,
// in index order: plan worker j maps to fleet worker idx[j]. The workers
// stay leased until Return.
func (f *Fleet) Lease(idx []int) (*mmnet.Master, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("serve: fleet is closed")
	}
	conns := make([]*mmnet.WorkerConn, len(idx))
	for j, i := range idx {
		if i < 0 || i >= len(f.addrs) {
			return nil, fmt.Errorf("serve: lease index %d out of range", i)
		}
		if f.state[i] != StateIdle {
			return nil, fmt.Errorf("serve: worker %d (%s) is %s, not idle", i, f.addrs[i], f.state[i])
		}
		conns[j] = f.conns[i]
	}
	m, err := mmnet.NewMaster(conns, &f.opts.Master)
	if err != nil {
		return nil, err
	}
	for _, i := range idx {
		f.conns[i], f.state[i] = nil, StateLeased
	}
	return m, nil
}

// Return ends a lease: the master's surviving connections go back to the
// idle pool, dead ones mark their workers down for re-dial. idx must be the
// slice the lease was taken with. failed reports whether the job's execution
// errored — the reusable-backend contract only covers successful runs, so a
// failed run's survivors may still hold chunks and are never pooled: their
// sessions are released (the daemon's accept loop hands the next master a
// fresh one) and the workers marked down for re-dial. Session handshakes
// happen with the lock released.
func (f *Fleet) Return(idx []int, m *mmnet.Master, failed bool) {
	conns := m.Detach()
	var release []*mmnet.WorkerConn
	f.mu.Lock()
	for j, i := range idx {
		f.jobs[i]++
		alive := j < len(conns) && conns[j] != nil && conns[j].Alive()
		switch {
		case alive && !failed && !f.closed:
			f.conns[i], f.state[i] = conns[j], StateIdle
		case alive:
			if failed {
				f.log.Info("worker survived a failed job; recycling its session", "worker", i, "addr", f.addrs[i])
			}
			release = append(release, conns[j])
			f.downLocked(i)
		default:
			f.downLocked(i)
			f.log.Warn("worker died during a job; will re-dial", "worker", i, "addr", f.addrs[i])
		}
	}
	f.mu.Unlock()
	for _, wc := range release {
		wc.Release()
	}
}

// Metrics snapshots every worker's state.
func (f *Fleet) Metrics() []WorkerMetric {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerMetric, len(f.addrs))
	for i := range f.addrs {
		state := f.state[i]
		if state == StateLeased && f.pinging[i] {
			// Borrowed by the keepalive ping, not by a job: the worker is
			// idle as far as an operator is concerned.
			state = StateIdle
		}
		out[i] = WorkerMetric{
			ID: i, Addr: f.addrs[i], Name: f.names[i], Kernel: f.kernels[i],
			Spec: f.specs[i], State: state.String(), Jobs: f.jobs[i],
		}
	}
	return out
}

// Close stops the keepalive loop and releases every idle connection (the
// worker daemons keep serving; leased connections are left to their running
// jobs' masters, whose Return calls find the fleet closed and release them).
// Idempotent, like Master.Shutdown.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done // a concurrent first Close may still be stopping the loop
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.stop)
	<-f.done
	f.dials.Wait()
	f.mu.Lock()
	var release []*mmnet.WorkerConn
	for i, wc := range f.conns {
		if wc != nil {
			release = append(release, wc)
			f.conns[i], f.state[i] = nil, StateDown
		}
	}
	f.mu.Unlock()
	for _, wc := range release {
		if err := wc.Release(); err != nil {
			f.log.Warn("release on close failed", "err", err)
		}
	}
}

// keepaliveLoop pings idle pooled connections and drains their heartbeat
// backlog, so sessions parked between jobs neither trip the worker's idle
// timeout nor fill the master-side socket buffer. Each connection is
// borrowed out of the pool for the duration of its (off-lock) ping, so a
// partitioned worker stalling on a write deadline never blocks Lease,
// Return, Idle or Metrics.
func (f *Fleet) keepaliveLoop() {
	defer close(f.done)
	interval := f.opts.keepalive()
	if interval < 0 {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			type borrow struct {
				i  int
				wc *mmnet.WorkerConn
			}
			var borrowed []borrow
			f.mu.Lock()
			for i, wc := range f.conns {
				if wc != nil && f.state[i] == StateIdle {
					// Borrowed for the ping: leased as far as Lease is
					// concerned, still idle in the metrics (pinging flag).
					f.conns[i], f.state[i], f.pinging[i] = nil, StateLeased, true
					borrowed = append(borrowed, borrow{i, wc})
				}
			}
			f.mu.Unlock()
			for _, b := range borrowed {
				err := b.wc.DrainBacklog()
				if err == nil {
					err = b.wc.Ping()
				}
				f.mu.Lock()
				closed := f.closed
				f.pinging[b.i] = false
				switch {
				case closed || err != nil:
					f.downLocked(b.i)
				default:
					f.conns[b.i], f.state[b.i] = b.wc, StateIdle
				}
				f.mu.Unlock()
				if closed {
					b.wc.Release()
				} else if err != nil {
					f.log.Warn("keepalive lost worker", "worker", b.i, "addr", f.addrs[b.i], "err", err)
					b.wc.Close()
				}
			}
		}
	}
}
