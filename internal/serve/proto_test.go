package serve

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// TestClientProtoRoundTrip encodes and decodes one frame of every client
// protocol kind and checks all fields survive bit-for-bit.
func TestClientProtoRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	blocks := func(n, q int) []*matrix.Block {
		out := make([]*matrix.Block, n)
		for i := range out {
			out[i] = matrix.NewBlock(q)
			out[i].FillRandom(rng)
		}
		return out
	}
	msgs := []*clientMsg{
		{Kind: cSubmit, R: 2, S: 3, T: 2, Q: 4, Blocks: blocks(2*2+2*3+2*3, 4)},
		{Kind: cAccept, ID: 42},
		{Kind: cResult, ID: 42, Blocks: blocks(6, 4)},
		{Kind: cError, ID: 7, Err: "no workers left"},
		{Kind: cStatus},
		{Kind: cStats, Stats: []byte(`{"queued":0}`)},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := writeClientMsg(&buf, m, nil); err != nil {
			t.Fatalf("%s: write: %v", m.Kind, err)
		}
		got, err := readClientMsg(&buf, nil)
		if err != nil {
			t.Fatalf("%s: read: %v", m.Kind, err)
		}
		if got.Kind != m.Kind || got.R != m.R || got.S != m.S || got.T != m.T ||
			got.Q != m.Q || got.ID != m.ID || got.Err != m.Err || string(got.Stats) != string(m.Stats) {
			t.Errorf("%s: fields mangled: sent %+v got %+v", m.Kind, m, got)
		}
		if len(got.Blocks) != len(m.Blocks) {
			t.Fatalf("%s: %d blocks back, sent %d", m.Kind, len(got.Blocks), len(m.Blocks))
		}
		for i := range m.Blocks {
			if got.Blocks[i].MaxAbsDiff(m.Blocks[i]) != 0 {
				t.Errorf("%s: block %d not bitwise identical", m.Kind, i)
			}
		}
		if buf.Len() != 0 {
			t.Errorf("%s: %d trailing bytes after decode", m.Kind, buf.Len())
		}
	}
}

// TestClientProtoRejectsGarbage checks the decoder fails cleanly on junk.
func TestClientProtoRejectsGarbage(t *testing.T) {
	if _, err := readClientMsg(bytes.NewReader([]byte("not a frame at all")), nil); err == nil {
		t.Error("garbage accepted as a client frame")
	}
	var buf bytes.Buffer
	if err := writeClientMsg(&buf, &clientMsg{Kind: cAccept, ID: 1}, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 200 // unknown kind
	if _, err := readClientMsg(bytes.NewReader(raw), nil); err == nil {
		t.Error("unknown frame kind accepted")
	}
}

// TestMatrixFromBlocksValidates covers the reassembly guards.
func TestMatrixFromBlocksValidates(t *testing.T) {
	if _, err := matrixFromBlocks(2, 2, 4, make([]*matrix.Block, 3)); err == nil {
		t.Error("wrong block count accepted")
	}
	bad := []*matrix.Block{matrix.NewBlock(4), matrix.NewBlock(8)}
	if _, err := matrixFromBlocks(1, 2, 4, bad); err == nil {
		t.Error("block edge mismatch accepted")
	}
}
