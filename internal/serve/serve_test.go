package serve

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
)

// startWorkers launches n loopback worker daemons (the real serve loop of
// cmd/mmworker) and returns their addresses.
func startWorkers(t *testing.T, n int, opts func(i int) mmnet.WorkerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if opts != nil {
			o = opts(i)
		}
		go mmnet.Serve(ln, addrs[i], o)
	}
	return addrs
}

// testMatrices builds random A, B, C plus the in-process engine's C — the
// bitwise oracle. Every plan updates each C block through the same
// ascending-k MulAdd sequence, so any correct execution of the product is
// bitwise-identical to any other, whatever subset was selected.
func testMatrices(t *testing.T, inst sched.Instance, q int, seed int64) (a, b, c, want *matrix.BlockMatrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a = matrix.NewBlockMatrix(inst.R, inst.T, q)
	b = matrix.NewBlockMatrix(inst.T, inst.S, q)
	c = matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)

	pl := platform.Homogeneous(2, 1, 1, 40)
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	want = c.Clone()
	aa, bb := a.Clone(), b.Clone()
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, res.Plan(), aa, bb, want); err != nil {
		t.Fatal(err)
	}
	return a, b, c, want
}

func homSpecs(n int) []platform.Worker {
	ws := make([]platform.Worker, n)
	for i := range ws {
		ws[i] = platform.Worker{C: 1, W: 1, M: 40}
	}
	return ws
}

// TestSelectResources checks the selection invariants: the share cap is
// respected, the plan is compacted onto exactly the leased workers, and
// homogeneous fleets shortlist deterministically in index order.
func TestSelectResources(t *testing.T) {
	specs := homSpecs(4)
	inst := sched.Instance{R: 6, S: 9, T: 4}
	sel, err := SelectResources(specs, []int{0, 1, 2, 3}, 2, inst, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) > 2 {
		t.Fatalf("share 2 leased %v", sel.Workers)
	}
	for _, w := range sel.Workers {
		if w != 0 && w != 1 {
			t.Fatalf("homogeneous shortlist should take lowest indices, leased %v", sel.Workers)
		}
	}
	for i, op := range sel.Plan {
		if op.Worker < 0 || op.Worker >= len(sel.Workers) {
			t.Fatalf("plan op %d references worker %d outside lease of %d", i, op.Worker, len(sel.Workers))
		}
	}

	// A slower, better-connected worker mix: the shortlist must prefer the
	// lowest w+2c workers, not the lowest indices.
	specs = []platform.Worker{
		{Name: "slow", C: 3, W: 4, M: 40},
		{Name: "fast", C: 1, W: 1, M: 40},
		{Name: "mid", C: 1.5, W: 1.5, M: 40},
	}
	sel, err = SelectResources(specs, []int{0, 1, 2}, 1, inst, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 1 || sel.Workers[0] != 1 {
		t.Fatalf("share 1 should lease the fastest worker (1), got %v", sel.Workers)
	}
}

// TestFleetLeaseReturnReuse cycles lease → run → return twice over the same
// fleet and checks the connections are reused (the worker never re-registers
// between jobs, which the per-worker jobs metric and idle states witness).
func TestFleetLeaseReturnReuse(t *testing.T) {
	addrs := startWorkers(t, 3, nil)
	f, err := NewFleet(addrs, homSpecs(3), FleetOptions{Keepalive: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	inst := sched.Instance{R: 4, S: 6, T: 3}
	for round := 0; round < 2; round++ {
		idle := f.Idle()
		if len(idle) != 3 {
			t.Fatalf("round %d: idle %v, want all 3", round, idle)
		}
		sel, err := SelectResources(f.Specs(), idle, 2, inst, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Lease(sel.Workers)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c, want := testMatrices(t, inst, 4, int64(200+round))
		if err := m.RunPipelined(inst.T, sel.Plan, a, b, c); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		f.Return(sel.Workers, m, false)
		if d := c.MaxAbsDiff(want); d != 0 {
			t.Errorf("round %d: C differs from engine C by %g (want bitwise equal)", round, d)
		}
	}
	for _, wm := range f.Metrics() {
		if wm.State == StateDown.String() {
			t.Errorf("worker %s down after clean lease cycles", wm.Addr)
		}
	}
	// Close is idempotent, like Master.Shutdown: the explicit call here and
	// the deferred one must both return cleanly.
	f.Close()
	f.Close()
}

// TestReturnFailedRecyclesSessions checks the poisoned-session guard: after
// a failed execution the reusable-backend contract gives no idle-worker
// guarantee, so Return(failed=true) must not pool the surviving connections
// — it releases their sessions and the next lease gets freshly registered
// ones from the still-running daemons.
func TestReturnFailedRecyclesSessions(t *testing.T) {
	addrs := startWorkers(t, 2, nil)
	f, err := NewFleet(addrs, homSpecs(2), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	m, err := f.Lease([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Return([]int{0, 1}, m, true)
	for _, wm := range f.Metrics() {
		if wm.State != StateDown.String() {
			t.Fatalf("failed-run survivor pooled as %s; must be recycled", wm.State)
		}
	}

	// The daemons survived; the next lease runs on fresh sessions.
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Idle()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never re-registered after recycling: %+v", f.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
	inst := sched.Instance{R: 3, S: 4, T: 2}
	sel, err := SelectResources(f.Specs(), []int{0, 1}, 0, inst, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := f.Lease(sel.Workers)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, want := testMatrices(t, inst, 3, 601)
	if err := m2.RunPipelined(inst.T, sel.Plan, a, b, c); err != nil {
		t.Fatalf("run on recycled sessions: %v", err)
	}
	f.Return(sel.Workers, m2, false)
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Errorf("C differs by %g after session recycling", d)
	}
}

// TestServerConcurrentJobsDisjointLeases submits two products to a 4-worker
// fleet and checks they run concurrently on disjoint leased subsets, each C
// bitwise-equal to the in-process engine.
func TestServerConcurrentJobsDisjointLeases(t *testing.T) {
	addrs := startWorkers(t, 4, nil)
	f, err := NewFleet(addrs, homSpecs(4), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{MaxWorkersPerJob: 2, Logf: t.Logf})
	defer s.Close()

	// Big enough that both jobs are still running when we look.
	inst := sched.Instance{R: 6, S: 9, T: 4}
	q := 64
	a1, b1, c1, want1 := testMatrices(t, inst, q, 301)
	a2, b2, c2, want2 := testMatrices(t, inst, q, 302)

	id1, err := s.Submit(a1, b1, c1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(a2, b2, c2)
	if err != nil {
		t.Fatal(err)
	}

	sawBothRunning := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Status()
		if st.Running == 2 {
			sawBothRunning = true
			break
		}
		if st.Done+st.Failed == 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := s.Wait(id1); err != nil {
		t.Fatalf("job %d: %v", id1, err)
	}
	if err := s.Wait(id2); err != nil {
		t.Fatalf("job %d: %v", id2, err)
	}
	if !sawBothRunning {
		t.Error("jobs never ran concurrently")
	}

	st := s.Status()
	leases := map[uint64][]int{}
	for _, js := range st.Jobs {
		if js.State != JobDone.String() {
			t.Errorf("job %d state %s: %s", js.ID, js.State, js.Error)
		}
		leases[js.ID] = js.Workers
	}
	seen := map[int]bool{}
	for id, lease := range leases {
		if len(lease) == 0 {
			t.Fatalf("job %d has no lease", id)
		}
		for _, w := range lease {
			if seen[w] {
				t.Fatalf("worker %d appears in two leases %v", w, leases)
			}
			seen[w] = true
		}
	}

	if d := c1.MaxAbsDiff(want1); d != 0 {
		t.Errorf("job 1 C differs from in-process engine by %g (want bitwise equal)", d)
	}
	if d := c2.MaxAbsDiff(want2); d != 0 {
		t.Errorf("job 2 C differs from in-process engine by %g (want bitwise equal)", d)
	}
}

// TestConcurrentJobCrashIsolation is the isolation contract under failure:
// two jobs on disjoint leases, one worker crashes mid-job. The crashed job
// must fail over within its own lease and still produce the bitwise-correct
// C; the other job's C must be bitwise-identical too, its lease untouched by
// the crash, and its latency bounded far below any failover timeout — the
// crash of a foreign worker is invisible to it. Afterwards the fleet
// re-dials the crashed worker's daemon: no worker process restarts between
// jobs.
func TestConcurrentJobCrashIsolation(t *testing.T) {
	const crasher = 3
	addrs := startWorkers(t, 4, func(i int) mmnet.WorkerOptions {
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == crasher {
			o.CrashAfterInstalls = 2
		}
		return o
	})
	f, err := NewFleet(addrs, homSpecs(4), FleetOptions{Master: mmnet.MasterOptions{IOTimeout: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{MaxWorkersPerJob: 2, Logf: t.Logf})
	defer s.Close()

	inst := sched.Instance{R: 6, S: 9, T: 4}
	aA, bA, cA, wantA := testMatrices(t, inst, 8, 401) // healthy lease [0,1]
	aB, bB, cB, wantB := testMatrices(t, inst, 8, 402) // crashing lease [2,3]

	idA, err := s.Submit(aA, bA, cA)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Submit(aB, bB, cB)
	if err != nil {
		t.Fatal(err)
	}
	startedA := time.Now()
	if err := s.Wait(idA); err != nil {
		t.Fatalf("healthy job: %v", err)
	}
	healthyLatency := time.Since(startedA)
	if err := s.Wait(idB); err != nil {
		t.Fatalf("crashed job should fail over within its lease: %v", err)
	}

	st := s.Status()
	var leaseA, leaseB []int
	for _, js := range st.Jobs {
		switch js.ID {
		case idA:
			leaseA = js.Workers
		case idB:
			leaseB = js.Workers
		}
	}
	for _, w := range leaseA {
		if w == crasher {
			t.Fatalf("healthy job leased the crashing worker: %v", leaseA)
		}
	}
	found := false
	for _, w := range leaseB {
		if w == crasher {
			found = true
		}
	}
	if !found {
		t.Fatalf("test premise broken: crashing worker not in second lease %v (first %v)", leaseB, leaseA)
	}

	if d := cA.MaxAbsDiff(wantA); d != 0 {
		t.Errorf("healthy job's C perturbed by a foreign crash: differs by %g", d)
	}
	if d := cB.MaxAbsDiff(wantB); d != 0 {
		t.Errorf("crashed job's C wrong by %g after in-lease failover", d)
	}
	// The healthy job must never feel the foreign failover: its latency stays
	// far below the 10s IOTimeout a shared-fate design would expose it to.
	if healthyLatency > 5*time.Second {
		t.Errorf("healthy job took %v; the foreign crash leaked into its latency", healthyLatency)
	}

	// The daemon behind the crashed session is still alive: the fleet's
	// re-dial must bring the worker back without any process restart.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if idle := f.Idle(); len(idle) == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crashed worker never re-registered: metrics %+v", f.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientProtocolLoopback exercises the full daemon path over TCP: two
// concurrent client submissions (the wire protocol, not in-process Submit)
// plus a stats query, each returned C bitwise-equal to the in-process
// engine.
func TestClientProtocolLoopback(t *testing.T) {
	addrs := startWorkers(t, 4, nil)
	f, err := NewFleet(addrs, homSpecs(4), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{MaxWorkersPerJob: 2, Logf: t.Logf})
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ListenAndServe(ln)
	daemon := ln.Addr().String()

	inst := sched.Instance{R: 5, S: 7, T: 3}
	type result struct {
		c    *matrix.BlockMatrix
		want *matrix.BlockMatrix
		err  error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		a, b, c, want := testMatrices(t, inst, 8, int64(500+i))
		go func() {
			got, _, err := SubmitProduct(daemon, a, b, c, 30*time.Second)
			results <- result{c: got, want: want, err: err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("submit %d: %v", i, r.err)
		}
		if d := r.c.MaxAbsDiff(r.want); d != 0 {
			t.Errorf("submit %d: C differs from in-process engine by %g (want bitwise equal)", i, d)
		}
	}

	st, err := FetchStats(daemon, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 || len(st.Workers) != 4 {
		t.Errorf("stats: done=%d workers=%d, want 2 and 4", st.Done, len(st.Workers))
	}
	for _, js := range st.Jobs {
		if js.Algorithm == "" {
			t.Errorf("job %d reported no algorithm", js.ID)
		}
	}
}

// TestSubmitRejectsBadShapes covers admission validation.
func TestSubmitRejectsBadShapes(t *testing.T) {
	addrs := startWorkers(t, 1, nil)
	f, err := NewFleet(addrs, homSpecs(1), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{})
	defer s.Close()

	a := matrix.NewBlockMatrix(2, 3, 4)
	b := matrix.NewBlockMatrix(4, 2, 4) // b.Rows != a.Cols
	c := matrix.NewBlockMatrix(2, 2, 4)
	if _, err := s.Submit(a, b, c); err == nil {
		t.Error("mismatched shapes admitted")
	}
	b2 := matrix.NewBlockMatrix(3, 2, 8) // wrong q
	if _, err := s.Submit(a, b2, c); err == nil {
		t.Error("mismatched block edge admitted")
	}
}

// stalledWorkerOpts rigs worker i (for i < n) to stall mid-job: heartbeats
// keep flowing but no result comes for stallFor — the live-but-wedged case
// that only cancellation can end early.
func stalledWorkerOpts(stallSet map[int]bool, stallFor time.Duration) func(i int) mmnet.WorkerOptions {
	return func(i int) mmnet.WorkerOptions {
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if stallSet[i] {
			o.StallAfterInstalls = 1
			o.StallFor = stallFor
		}
		return o
	}
}

// TestCancelQueuedJobNeverLeases: cancelling a job that is still waiting in
// the admission queue dequeues it immediately — no lease is ever taken, the
// waiter gets an error wrapping context.Canceled, and the status records the
// canceled state with no workers.
func TestCancelQueuedJobNeverLeases(t *testing.T) {
	addrs := startWorkers(t, 2, stalledWorkerOpts(map[int]bool{0: true, 1: true}, 10*time.Second))
	f, err := NewFleet(addrs, homSpecs(2), FleetOptions{Master: mmnet.MasterOptions{IOTimeout: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{Logf: t.Logf})
	defer s.Close()

	inst := sched.Instance{R: 4, S: 6, T: 3}
	a1, b1, c1, _ := testMatrices(t, inst, 4, 501)
	a2, b2, c2, _ := testMatrices(t, inst, 4, 502)

	id1, err := s.Submit(a1, b1, c1) // leases the whole (stalled) fleet
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, id1, "running")
	id2, err := s.Submit(a2, b2, c2) // must queue: no idle workers remain
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = s.Wait(id2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-cancel wait returned %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("queued-cancel wait took %v, want immediate", elapsed)
	}
	for _, js := range s.Status().Jobs {
		if js.ID == id2 {
			if js.State != "canceled" {
				t.Errorf("queued-cancelled job state %q, want canceled", js.State)
			}
			if len(js.Workers) != 0 {
				t.Errorf("queued-cancelled job leased workers %v, want none", js.Workers)
			}
		}
	}
	// Unwedge the fleet so Close does not ride out the stall.
	if err := s.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id1); !errors.Is(err, context.Canceled) {
		t.Fatalf("running-cancel wait returned %v, want context.Canceled in the chain", err)
	}
}

// waitForState polls the server until job id reaches the given state.
func waitForState(t *testing.T, s *Server, id uint64, state string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, js := range s.Status().Jobs {
			if js.ID == id && js.State == state {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d never reached state %q: %+v", id, state, s.Status().Jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelRunningJobLeaseIsolation is the cancellation twin of the crash
// isolation test: cancelling a mid-run job under a stalled lease returns its
// workers to the fleet while the concurrent job on the disjoint lease runs
// to completion with a bitwise-identical C and undisturbed latency.
func TestCancelRunningJobLeaseIsolation(t *testing.T) {
	addrs := startWorkers(t, 4, stalledWorkerOpts(map[int]bool{0: true, 1: true}, 10*time.Second))
	f, err := NewFleet(addrs, homSpecs(4), FleetOptions{Master: mmnet.MasterOptions{IOTimeout: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{MaxWorkersPerJob: 2, Logf: t.Logf})
	defer s.Close()

	inst := sched.Instance{R: 6, S: 9, T: 4}
	aS, bS, cS, _ := testMatrices(t, inst, 8, 601)     // stalled lease [0,1]
	aH, bH, cH, wantH := testMatrices(t, inst, 8, 602) // healthy lease [2,3]

	idS, err := s.Submit(aS, bS, cS)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, idS, "running")
	idH, err := s.Submit(aH, bH, cH)
	if err != nil {
		t.Fatal(err)
	}

	// Let the stalled lease reach its stall, then cancel it mid-run.
	time.Sleep(200 * time.Millisecond)
	if err := s.Cancel(idS); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = s.Wait(idS)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v to come back, want prompt abort", elapsed)
	}

	healthyStart := time.Now()
	if err := s.Wait(idH); err != nil {
		t.Fatalf("healthy concurrent job: %v", err)
	}
	if latency := time.Since(healthyStart); latency > 5*time.Second {
		t.Errorf("healthy job took %v after the foreign cancel; leases are not isolated", latency)
	}
	if d := cH.MaxAbsDiff(wantH); d != 0 {
		t.Errorf("healthy job's C perturbed by a foreign cancel: differs by %g (want bitwise equal)", d)
	}

	st := s.Status()
	for _, js := range st.Jobs {
		if js.ID == idS {
			if js.State != "canceled" {
				t.Errorf("cancelled job state %q, want canceled", js.State)
			}
			for _, w := range js.Workers {
				if w != 0 && w != 1 {
					t.Fatalf("test premise broken: stalled job leased %v, want subset of [0 1]", js.Workers)
				}
			}
		}
		if js.ID == idH {
			for _, w := range js.Workers {
				if w != 2 && w != 3 {
					t.Fatalf("test premise broken: healthy job leased %v, want subset of [2 3]", js.Workers)
				}
			}
		}
	}
	if st.Canceled != 1 {
		t.Errorf("stats count %d canceled jobs, want 1", st.Canceled)
	}
}

// TestCloseFailsQueuedJobsPromptly is the shutdown regression: a job parked
// in the queue behind a busy fleet must have its done channel failed by
// Close (with an error wrapping context.Canceled) the moment admission
// stops — not left for Wait to hang on until the running job drains.
func TestCloseFailsQueuedJobsPromptly(t *testing.T) {
	addrs := startWorkers(t, 1, stalledWorkerOpts(map[int]bool{0: true}, 3*time.Second))
	f, err := NewFleet(addrs, homSpecs(1), FleetOptions{Master: mmnet.MasterOptions{IOTimeout: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{Logf: t.Logf})

	inst := sched.Instance{R: 4, S: 6, T: 3}
	a1, b1, c1, _ := testMatrices(t, inst, 4, 701)
	a2, b2, c2, _ := testMatrices(t, inst, 4, 702)
	id1, err := s.Submit(a1, b1, c1) // occupies the 1-worker fleet, stalled
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, s, id1, "running")
	id2, err := s.Submit(a2, b2, c2) // queued behind it
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		s.Close() // blocks until the running job drains; queued jobs must not
		close(closed)
	}()

	start := time.Now()
	err = s.Wait(id2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job's Wait after Close returned %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("queued job's Wait returned %v after Close, want immediate failure", elapsed)
	}
	// The running job is not cancelled by Close; it rides out its stall (or
	// fails when its worker's session ends) and Close returns afterwards.
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
}

// TestWaitContext: an abandoned wait returns the waiter's context error
// without touching the job.
func TestWaitContext(t *testing.T) {
	addrs := startWorkers(t, 1, stalledWorkerOpts(map[int]bool{0: true}, 2*time.Second))
	f, err := NewFleet(addrs, homSpecs(1), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{Logf: t.Logf})
	defer s.Close()

	inst := sched.Instance{R: 4, S: 6, T: 3}
	a, b, c, want := testMatrices(t, inst, 4, 801)
	id, err := s.Submit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.WaitContext(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned wait returned %v, want context.DeadlineExceeded", err)
	}
	// The job itself was not cancelled: it completes and verifies.
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Errorf("C differs by %g after an abandoned wait", d)
	}
}

// TestClientCancelFrameAbortsJob drives the cancel path over the wire: a
// SubmitProductContext whose context dies while the job is wedged mid-run
// must send the cancel frame, the daemon must abort the job's lease, and the
// client must come back promptly with the context error — while the daemon's
// stats record the cancel.
func TestClientCancelFrameAbortsJob(t *testing.T) {
	addrs := startWorkers(t, 2, stalledWorkerOpts(map[int]bool{0: true, 1: true}, 10*time.Second))
	f, err := NewFleet(addrs, homSpecs(2), FleetOptions{Master: mmnet.MasterOptions{IOTimeout: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{Logf: t.Logf})
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ListenAndServe(ln)
	daemon := ln.Addr().String()

	inst := sched.Instance{R: 4, S: 6, T: 3}
	a, b, c, _ := testMatrices(t, inst, 8, 901)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond) // submit, lease, reach the stall
		cancel()
	}()
	start := time.Now()
	_, _, err = SubmitProductContext(ctx, daemon, a, b, c)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submission returned %v, want context.Canceled in the chain", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled submission took %v, want prompt return", elapsed)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Status()
		if st.Canceled == 1 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never recorded the cancel: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitCancelBeforeAccept: a deadline-less submission whose context is
// cancelled while the daemon is still mute (operands uploaded, no accept
// frame yet) must return promptly — the pre-accept watcher slams the
// connection; there is no job to cancel yet.
func TestSubmitCancelBeforeAccept(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the upload, never answer: a wedged daemon.
			go func() {
				buf := make([]byte, 1<<16)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()

	inst := sched.Instance{R: 4, S: 6, T: 3}
	a, b, c, _ := testMatrices(t, inst, 4, 1001)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = SubmitProductContext(ctx, ln.Addr().String(), a, b, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-accept cancel returned %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-accept cancel took %v, want prompt return", elapsed)
	}
}
