package serve

import (
	"fmt"
	"sort"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Selection is one job's resource-selection outcome: the fleet workers to
// lease (lease order = plan worker order) and the plan remapped onto them.
type Selection struct {
	Workers   []int        // fleet indices, disjoint from every other live lease
	Plan      []sim.PlanOp // worker j refers to Workers[j]
	Algorithm string
	Makespan  float64 // simulated makespan on the selected subset, model units
}

// SelectResources performs per-job resource selection: from the available
// fleet workers it shortlists at most share candidates by a throughput proxy,
// lets the scheduler plan the product on that candidate sub-platform — the
// paper's selection heuristics then enroll the subset that actually pays for
// itself — and returns the enrolled workers plus the plan compacted onto
// them. share is the fleet-sharing knob: a service that wants k jobs running
// concurrently offers each about 1/k of the idle fleet; share ≤ 0 offers
// everything.
//
// The proxy orders workers by w_i + 2·c_i, a worker's modeled time to be fed
// one A and one B block and perform the update — the per-unit cost the
// paper's steady-state analysis charges a worker — with index order breaking
// ties so homogeneous fleets shortlist deterministically.
//
// aff, when non-nil, is indexed by fleet worker and holds each candidate's
// operand affinity in [0, 1]: the fraction of the job's panel bytes already
// resident in the worker's cache. Affinity discounts only the communication
// term of the proxy — w_i + 2·c_i·(1−aff_i) — because residency saves
// exactly transfers, never compute. The discount biases the shortlist toward
// workers that already hold the operands but cannot override measured load: a
// worker with aff 1 still pays its full w_i, so a fast empty-cache worker
// outranks a slow warm one whenever compute dominates.
func SelectResources(specs []platform.Worker, avail []int, share int, inst sched.Instance, s sched.Scheduler, aff []float64) (*Selection, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if len(avail) == 0 {
		return nil, fmt.Errorf("serve: no workers available")
	}
	if s == nil {
		s = sched.Het{}
	}
	affOf := func(i int) float64 {
		if aff == nil || i >= len(aff) {
			return 0
		}
		if a := aff[i]; a > 0 {
			if a > 1 {
				return 1
			}
			return a
		}
		return 0
	}
	cand := append([]int(nil), avail...)
	sort.SliceStable(cand, func(a, b int) bool {
		sa, sb := specs[cand[a]], specs[cand[b]]
		return sa.W+2*sa.C*(1-affOf(cand[a])) < sb.W+2*sb.C*(1-affOf(cand[b]))
	})
	if share > 0 && share < len(cand) {
		cand = cand[:share]
	}

	ws := make([]platform.Worker, len(cand))
	for j, i := range cand {
		ws[j] = specs[i]
	}
	sub, err := platform.New(ws...)
	if err != nil {
		return nil, err
	}
	res, err := s.Schedule(sub, inst)
	if err != nil {
		return nil, fmt.Errorf("serve: schedule on candidate subset: %w", err)
	}
	if len(res.Enrolled) == 0 {
		return nil, fmt.Errorf("serve: %s enrolled no workers", res.Algorithm)
	}

	// Compact the plan onto the enrolled workers only, so the lease holds
	// exactly the sessions the job will drive.
	remap := make(map[int]int, len(res.Enrolled))
	workers := make([]int, len(res.Enrolled))
	for j, e := range res.Enrolled {
		remap[e] = j
		workers[j] = cand[e]
	}
	src := res.Plan()
	plan := make([]sim.PlanOp, len(src))
	for i, op := range src {
		lj, ok := remap[op.Worker]
		if !ok {
			return nil, fmt.Errorf("serve: plan references worker %d not in enrolled set %v", op.Worker, res.Enrolled)
		}
		op.Worker = lj
		plan[i] = op
	}
	return &Selection{Workers: workers, Plan: plan, Algorithm: res.Algorithm, Makespan: res.Stats.Makespan}, nil
}
