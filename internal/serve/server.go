package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/cache"
	"repro/internal/coded"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// JobState is a submitted product's lifecycle state.
type JobState uint8

const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobFailed
	// JobCanceled: ended by Cancel (or server shutdown) before completing —
	// dequeued if it had not leased yet, its lease aborted if it had.
	JobCanceled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config tunes the job-queue server.
type Config struct {
	// Scheduler plans each job on its selected worker subset. Default: the
	// paper's Het meta-algorithm (best of the eight selection variants).
	Scheduler sched.Scheduler
	// MaxWorkersPerJob caps any one lease. 0 means no fixed cap; the server
	// still splits the idle fleet evenly across the jobs waiting in the
	// queue, so two concurrent submissions to a 4-worker fleet get disjoint
	// 2-worker leases rather than running one after the other.
	MaxWorkersPerJob int
	// Adaptive turns on the elastic runtime: the server keeps online
	// per-worker throughput estimates (EWMA over observed transfers and
	// computes, seeded from the declared specs), resource selection
	// shortlists by *measured* speed instead of declared speed, each lease
	// runs through the adaptive executor (mid-job re-planning on departures
	// and estimate drift), and idle workers — including ones registered
	// after startup via Fleet.Add — are attached to running jobs whenever no
	// queued job is waiting for them.
	Adaptive bool
	// DriftThreshold is the relative estimate movement that re-plans a
	// running lease (see engine.Elastic). 0: engine default; negative:
	// drift re-planning off. Only meaningful with Adaptive.
	DriftThreshold float64
	// Redundancy turns on proactive straggler mitigation: every lease runs
	// under the engine's k-of-n completion gate with the named coded mode
	// ("replicated" or "coded"; empty or "off" keeps it off). Redundant
	// leases use the gate executor instead of the elastic one — the gate's
	// speculation subsumes failover, and adapt estimates still price the
	// redundancy placement — so mid-run estimate re-planning is traded for
	// tail-latency cover.
	Redundancy string
	// RedundancyFactor is the redundancy factor r handed to the planner
	// (replicas fleet-wide, parities per group). ≤ 0 asks the adapt estimates
	// to suggest one (at least 1, so crashes stay covered). Only meaningful
	// with Redundancy set.
	RedundancyFactor int
	// QueuePolicy picks which queued job each freed lease goes to:
	// PolicyFIFO (default — strict submission order), PolicySJF (least
	// predicted work first, starvation-bounded by AgingBound), or
	// PolicyPriority (SLO class order interactive → standard → batch, FIFO
	// within a class, aging-bounded across classes). Unknown names log a
	// warning and fall back to FIFO. Policies reorder lease admission only;
	// execution — and C — is identical under every policy.
	QueuePolicy string
	// AgingBound caps how long sjf/priority may bypass the queue's oldest
	// job; past it the oldest job is dispatched next regardless of size or
	// class. 0 means the 15s default; it is the knob that turns "SJF can
	// starve large jobs" into a bounded extra wait.
	AgingBound time.Duration
	// AdmissionRate, when > 0, turns on token-bucket admission control:
	// each SLO class refills its own bucket at this rate (jobs/second), and
	// a submission finding its class's bucket empty is rejected at Submit
	// (the client sees the error immediately and can back off) instead of
	// joining an unbounded queue. 0 keeps admission unbounded.
	AdmissionRate float64
	// AdmissionBurst is each class bucket's capacity — the burst length
	// admitted at full speed before rejections start. ≤ 0 defaults to one
	// second of refill (at least 1). Only meaningful with AdmissionRate.
	AdmissionBurst int
	// NoCache disables operand-panel caching: jobs are submitted without
	// panel digests, leases skip the have/need handshake, and resource
	// selection ignores operand affinity. The zero value keeps caching on —
	// a worker daemon without a cache degrades per-link via the handshake,
	// so a caching server is always safe.
	NoCache bool
	// Logf, when non-nil, receives job lifecycle events rendered as plain
	// text ("msg key=value ..."). Superseded by Logger when both are set.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives job lifecycle events as structured
	// records carrying job, worker, and lease attrs. Takes precedence over
	// Logf.
	Logger *slog.Logger
	// TraceDir, when non-empty, records every lease's transfers and writes
	// one Chrome trace-event JSON file per completed job
	// (job-<id>.trace.json) into the directory — loadable in Perfetto
	// (ui.perfetto.dev) or chrome://tracing. Write failures are logged,
	// never fail the job.
	TraceDir string
}

// logger resolves the server's logger: explicit Logger first, then the
// legacy printf callback bridged through obs.LogfLogger, then discard.
func (c Config) logger() *slog.Logger {
	switch {
	case c.Logger != nil:
		return c.Logger
	case c.Logf != nil:
		return obs.LogfLogger(c.Logf)
	}
	return obs.NopLogger()
}

// job is one admitted product. The a/b/c matrices are owned by the server
// from Submit until the job leaves JobRunning; c is updated in place.
type job struct {
	id      uint64
	inst    sched.Instance
	q       int
	a, b, c *matrix.BlockMatrix
	// panels carries the job's operand-panel digests on a caching server
	// (nil when caching is off): the input to affinity-aware selection and
	// to each lease's install-by-digest epoch.
	panels *cache.JobPanels
	// class is the job's SLO class: the priority policy's ordering key and
	// the admission/metrics partition. Zero (standard) for classless frames.
	class JobClass

	state     JobState
	sel       *Selection
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{} // closed when the job reaches a terminal state
	// ctx governs the job's execution; cancel fires on Cancel (and on every
	// terminal transition, releasing the context's resources). A running
	// lease executes under ctx, so cancelling aborts its master's in-flight
	// I/O without touching any other lease.
	ctx    context.Context
	cancel context.CancelFunc

	// Elastic-lease state (Adaptive servers only). lease is the fleet
	// indices currently held — sel.Workers plus any worker attached mid-job
	// — guarded by the server mutex; leaseMu serializes a mid-job attach
	// against the lease's end-of-run detach, so a worker is never joined to
	// a master whose connections were already handed back. replans counts
	// the lease's executor re-plans.
	m             *mmnet.Master
	lease         []int
	join          chan int
	view          *adapt.View
	leaseMu       sync.Mutex
	leaseDetached bool
	replans       atomic.Int32

	// redStats is the k-of-n gate's outcome, harvested when a redundant
	// lease ends (nil otherwise). trace is the lease's recorded timeline,
	// retained at job end so clients can fetch it after completion.
	redStats *RedundancyStats
	trace    *trace.Trace
}

// RedundancyStats is one redundant job's k-of-n gate outcome.
type RedundancyStats struct {
	Mode          string `json:"mode"`
	Units         int64  `json:"units"`                    // redundant units dispatched
	DuplicateWins int64  `json:"duplicate_wins,omitempty"` // late copies discarded
	WastedBytes   int64  `json:"wasted_bytes,omitempty"`   // wire bytes of those copies
	Decodes       int64  `json:"decodes,omitempty"`        // results reconstructed from parity
	Absorbed      int64  `json:"absorbed,omitempty"`       // in-flight units wire-cancelled
	Speculative   int64  `json:"speculative,omitempty"`    // of Units, idle-worker speculation
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID        uint64         `json:"id"`
	State     string         `json:"state"`
	Class     string         `json:"class,omitempty"`
	Instance  sched.Instance `json:"instance"`
	Q         int            `json:"q"`
	Algorithm string         `json:"algorithm,omitempty"`
	Workers   []int          `json:"workers,omitempty"` // fleet indices of the lease, mid-job joins included
	Replans   int            `json:"replans,omitempty"` // elastic re-plans (join/depart/drift) of the lease
	// Redundancy is the k-of-n gate outcome of a redundant lease (nil when
	// the server runs without redundancy or the job has not finished).
	Redundancy *RedundancyStats `json:"redundancy,omitempty"`
	Error      string           `json:"error,omitempty"`
	ElapsedMS  float64          `json:"elapsed_ms"` // run time (so far) once started
}

// Stats is the service snapshot reported to clients.
type Stats struct {
	// Kernel is the block-update kernel the daemon process itself selected
	// (workers report their own in their WorkerMetric rows — a heterogeneous
	// fleet legitimately mixes kernels, results stay bitwise-identical).
	Kernel     string         `json:"kernel,omitempty"`
	Workers    []WorkerMetric `json:"workers"`
	Adaptive   bool           `json:"adaptive,omitempty"`   // measured-speed selection + elastic leases on
	Redundancy string         `json:"redundancy,omitempty"` // k-of-n gate mode when proactive mitigation is on
	Cache      *CacheTotals   `json:"cache,omitempty"`      // panel-cache effectiveness; nil when caching is off
	// QueuePolicy is the active dispatch policy (fifo, sjf, priority).
	QueuePolicy string `json:"queue_policy,omitempty"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	Done        int    `json:"done"`
	Failed      int    `json:"failed"`
	Canceled    int    `json:"canceled"`
	// QueuedByClass splits Queued by SLO class (class names with zero queued
	// jobs are omitted); it always sums to Queued and always agrees with the
	// mm_serve_queue_depth gauge family.
	QueuedByClass map[string]int `json:"queued_by_class,omitempty"`
	// AdmissionRejected counts submissions shed by token-bucket admission,
	// by class; nil when admission is unbounded.
	AdmissionRejected map[string]int64 `json:"admission_rejected,omitempty"`
	Jobs              []JobStatus      `json:"jobs"` // submission order; terminal jobs pruned past maxJobHistory
}

// CacheTotals aggregates panel-cache effectiveness across all completed
// leases of a caching server: how many handshake probes hit, and how many
// operand bytes residency kept off the wire versus how many still moved.
type CacheTotals struct {
	PanelHits     int64 `json:"panel_hits"`
	PanelMisses   int64 `json:"panel_misses"`
	ASentBytes    int64 `json:"a_sent_bytes"`
	ASavedBytes   int64 `json:"a_saved_bytes"`
	BSentBytes    int64 `json:"b_sent_bytes"`
	BSavedBytes   int64 `json:"b_saved_bytes"`
	ResidentBytes int64 `json:"resident_bytes"` // panel bytes believed resident fleet-wide right now
}

// cacheCum is one worker's cumulative cache counters across its leases,
// accumulated at job end from each lease's per-link stats.
type cacheCum struct {
	hits, misses                 int64
	aSent, aSaved, bSent, bSaved int64
}

// maxJobHistory bounds the completed-job records the daemon retains for
// Status: the oldest terminal jobs are pruned past this, so a long-lived
// service neither grows without bound nor overflows a stats reply. Operand
// matrices are released the moment a job completes either way (submitters
// hold their own references; C is updated in place).
const maxJobHistory = 4096

// Server admits products into a queue and runs them on disjoint leased
// subsets of a persistent fleet, concurrently. It is the paper's
// master-process role stretched across many products: resource selection per
// job, execution through the shared pipelined executor, failover within each
// lease.
type Server struct {
	fleet *Fleet
	cfg   Config
	log   *slog.Logger
	// policy is the validated queue policy (cfg.QueuePolicy with unknown
	// names already demoted to fifo); adm is token-bucket admission, nil
	// when unbounded.
	policy string
	adm    *admission
	// tracker holds the fleet-indexed live throughput estimates of an
	// Adaptive server (nil otherwise). Each lease observes through a
	// remapping view, so every job's measurements land here.
	tracker *adapt.Tracker
	// addMu serializes fleet growth so fleet indices and tracker indices
	// cannot interleave differently.
	addMu sync.Mutex

	// registry tracks which operand panels each fleet worker is believed to
	// hold (nil when caching is off). It is advisory — correctness comes
	// from each lease's own handshake — feeding only affinity-aware
	// selection, and is invalidated whenever a worker goes down. cacheCum
	// accumulates per-worker cache counters as leases complete; both are
	// guarded by cacheMu (the registry locks itself, the map does not).
	registry *cache.Registry
	cacheMu  sync.Mutex
	cacheCum map[int]*cacheCum

	mu      sync.Mutex
	queue   []*job
	jobs    map[uint64]*job
	order   []uint64
	nextID  uint64
	running int
	closed  bool
	wake    chan struct{}
	loop    sync.WaitGroup
}

// trackerUnit is the nominal wall-clock length of one declared model time
// unit when seeding the estimate tracker: declared c_i/w_i become
// milliseconds. Only the declared *ratios* matter — the first observed jobs
// pull every used worker onto the measured scale — and the same unit
// converts estimates back into the model-unit platform the schedulers see.
const trackerUnit = time.Millisecond

// NewServer starts the scheduling loop over an existing fleet. The fleet
// stays caller-owned: Close the server first, then the fleet.
func NewServer(fleet *Fleet, cfg Config) *Server {
	s := &Server{
		fleet: fleet,
		cfg:   cfg,
		log:   cfg.logger(),
		jobs:  make(map[uint64]*job),
		wake:  make(chan struct{}, 1),
	}
	if cfg.Adaptive {
		s.tracker = adapt.NewTracker(fleet.Specs(), trackerUnit, 0)
	}
	policy, err := ParseQueuePolicy(cfg.QueuePolicy)
	if err != nil {
		s.log.Warn("unknown queue policy; using fifo", "policy", cfg.QueuePolicy, "err", err)
	}
	s.policy = policy
	s.adm = newAdmission(cfg.AdmissionRate, cfg.AdmissionBurst)
	if _, err := coded.ParseMode(cfg.Redundancy); err != nil {
		s.log.Warn("invalid redundancy mode; proactive mitigation stays off",
			"mode", cfg.Redundancy, "err", err)
	}
	if !cfg.NoCache {
		s.registry = cache.NewRegistry()
		s.cacheCum = make(map[int]*cacheCum)
		// A worker that goes down for any reason — crash, keepalive loss,
		// failed recycle — re-dials into a fresh session whose cache content
		// is unknown; drop its residency so affinity never chases ghosts.
		fleet.SetOnDown(func(i int) { s.registry.Invalidate(i) })
	}
	s.loop.Add(1)
	go s.schedule()
	return s
}

// AddWorker registers a worker with the fleet after startup (see Fleet.Add)
// and, on an adaptive server, starts tracking its throughput. The scheduler
// is kicked so a queued job can lease the newcomer immediately; if the queue
// is empty and a lease is running, the next scheduling pass attaches it to a
// running job instead. Returns the fleet index.
func (s *Server) AddWorker(addr string, spec platform.Worker) (int, error) {
	s.addMu.Lock()
	defer s.addMu.Unlock()
	i, err := s.fleet.Add(addr, spec)
	if err != nil {
		return 0, err
	}
	if s.tracker != nil {
		if spec.Name == "" {
			spec.Name = addr
		}
		if g := s.tracker.Grow(spec, trackerUnit); g != i {
			// Cannot happen while addMu serializes growth; fail loudly if it
			// ever does rather than corrupt every later estimate lookup.
			s.log.Error("tracker index diverged from fleet index", "tracker", g, "worker", i)
		}
	}
	s.log.Info("worker joined the fleet", "addr", addr, "worker", i)
	s.kick()
	return i, nil
}

// selectionSpecs returns the per-worker specs resource selection should plan
// with: declared specs on a static server, measured estimates (converted
// back to model units) wherever observations exist on an adaptive one.
func (s *Server) selectionSpecs() []platform.Worker {
	specs := s.fleet.Specs()
	if s.tracker == nil {
		return specs
	}
	for i, e := range s.tracker.Snapshot() {
		if i >= len(specs) {
			break
		}
		if e.Transfers > 0 && e.C > 0 {
			specs[i].C = e.C / trackerUnit.Seconds()
		}
		if e.Computes > 0 && e.W > 0 {
			specs[i].W = e.W / trackerUnit.Seconds()
		}
	}
	return specs
}

// Submit admits C += A·B (all matrices blocked with edge q) and returns the
// job id. The matrices are owned by the server until the job completes; C is
// updated in place. Submit never blocks on fleet capacity — admission is a
// queue, execution happens as leases free up. On a caching server the
// operand panels are digested here, once per submission.
func (s *Server) Submit(a, b, c *matrix.BlockMatrix) (uint64, error) {
	return s.submit(a, b, c, nil, ClassStandard)
}

// SubmitPanels is Submit with caller-computed operand-panel digests, for
// clients that already hold them (an operand installed once and resubmitted
// many times): the server trusts jp instead of re-hashing A and B. jp must
// describe exactly these operands — digests are content addresses, and a
// stale set makes workers reuse the wrong panels. On a non-caching server jp
// is ignored; a nil jp degrades to Submit.
func (s *Server) SubmitPanels(a, b, c *matrix.BlockMatrix, jp *cache.JobPanels) (uint64, error) {
	return s.SubmitClass(a, b, c, jp, ClassStandard)
}

// SubmitClass is SubmitPanels with an explicit SLO class: the priority
// policy's ordering key and the admission-control partition. jp may be nil
// (digested server-side on a caching server, exactly like Submit).
func (s *Server) SubmitClass(a, b, c *matrix.BlockMatrix, jp *cache.JobPanels, class JobClass) (uint64, error) {
	if jp != nil && (a == nil || b == nil ||
		jp.T != a.Cols || jp.Q != a.Q || len(jp.ARows) != a.Rows || len(jp.BCols) != b.Cols) {
		return 0, fmt.Errorf("serve: panel digests do not match the submitted operands")
	}
	return s.submit(a, b, c, jp, class)
}

// ErrAdmission marks submissions shed by token-bucket admission control;
// clients can errors.Is for it and back off.
var ErrAdmission = errors.New("admission rejected")

func (s *Server) submit(a, b, c *matrix.BlockMatrix, jp *cache.JobPanels, class JobClass) (uint64, error) {
	if a == nil || b == nil || c == nil {
		return 0, fmt.Errorf("serve: submit needs A, B and C")
	}
	if a.Q != b.Q || a.Q != c.Q {
		return 0, fmt.Errorf("serve: block edges differ: A q=%d, B q=%d, C q=%d", a.Q, b.Q, c.Q)
	}
	inst := sched.Instance{R: c.Rows, S: c.Cols, T: a.Cols}
	if a.Rows != c.Rows || b.Cols != c.Cols || b.Rows != a.Cols {
		return 0, fmt.Errorf("serve: shape mismatch A %dx%d, B %dx%d, C %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	if !s.adm.take(class) {
		mQueueRejected.With(class.String()).Inc()
		s.log.Info("job rejected by admission control", "class", class.String(),
			"rate", s.cfg.AdmissionRate)
		return 0, fmt.Errorf("serve: %w: class %s exceeded %.3g jobs/s", ErrAdmission, class, s.cfg.AdmissionRate)
	}
	if s.registry != nil && jp == nil {
		jp = cache.PanelsForJob(a, b)
	} else if s.registry == nil {
		jp = nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("serve: server is closed")
	}
	s.nextID++
	jctx, jcancel := context.WithCancel(context.Background())
	j := &job{
		id: s.nextID, inst: inst, q: a.Q, a: a, b: b, c: c, panels: jp, class: class,
		state: JobQueued, submitted: time.Now(), done: make(chan struct{}),
		ctx: jctx, cancel: jcancel,
	}
	s.queue = append(s.queue, j)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	mJobsSubmitted.Inc()
	gJobsQueued.Add(1)
	gQueueDepth.With(class.String()).Add(1)
	s.log.Info("job queued",
		"job", j.id, "class", class.String(), "r", inst.R, "s", inst.S, "t", inst.T, "q", a.Q)
	s.kick()
	return j.id, nil
}

// Wait blocks until job id completes and returns its terminal error (nil for
// a successful run; the submitted C has been updated in place).
func (s *Server) Wait(id uint64) error {
	return s.WaitContext(context.Background(), id)
}

// WaitContext is Wait under a context: it returns ctx.Err() if ctx ends
// first. The job itself keeps running — abandoning a wait is not a cancel;
// use Cancel for that.
func (s *Server) WaitContext(ctx context.Context, id uint64) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown job %d", id)
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel ends job id: a queued job is dequeued without ever leasing workers;
// a running job's lease is aborted (its master's in-flight I/O interrupted,
// its workers handed back to the fleet for re-dial) while every other
// concurrent lease keeps running untouched. Cancelling a terminal job is a
// no-op. The job's waiters observe an error wrapping context.Canceled.
func (s *Server) Cancel(id uint64) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: unknown job %d", id)
	}
	switch j.state {
	case JobQueued:
		s.dequeueLocked(j)
		s.finishLocked(j, JobCanceled, fmt.Errorf("serve: job %d canceled while queued: %w", id, context.Canceled))
		s.mu.Unlock()
		s.log.Info("job canceled while queued", "job", id)
		s.kick()
	case JobRunning:
		cancel := j.cancel
		s.mu.Unlock()
		s.log.Info("job cancel requested; aborting its lease", "job", id)
		cancel() // the run goroutine observes the abort and finishes the job
	default:
		s.mu.Unlock() // already terminal
	}
	return nil
}

// Status snapshots the fleet and every job. On an adaptive server the
// worker rows carry the live measured estimates (ms per block moved, ms per
// update) next to the declared specs.
func (s *Server) Status() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Kernel: kernel.Name(), Workers: s.fleet.Metrics(), Adaptive: s.tracker != nil,
		QueuePolicy: s.policy, AdmissionRejected: s.adm.rejectedByClass(),
	}
	if len(s.queue) > 0 {
		st.QueuedByClass = make(map[string]int)
		for _, j := range s.queue {
			st.QueuedByClass[j.class.String()]++
		}
	}
	if mode, err := coded.ParseMode(s.cfg.Redundancy); err == nil && mode != coded.ModeOff {
		st.Redundancy = string(mode)
	}
	if s.registry != nil {
		tot := &CacheTotals{}
		s.cacheMu.Lock()
		for i := range st.Workers {
			if cum := s.cacheCum[i]; cum != nil {
				w := &st.Workers[i]
				w.CacheHits, w.CacheMisses = cum.hits, cum.misses
				w.SentBytes = cum.aSent + cum.bSent
				w.SavedBytes = cum.aSaved + cum.bSaved
				tot.PanelHits += cum.hits
				tot.PanelMisses += cum.misses
				tot.ASentBytes += cum.aSent
				tot.ASavedBytes += cum.aSaved
				tot.BSentBytes += cum.bSent
				tot.BSavedBytes += cum.bSaved
			}
			panels, bytes := s.registry.Resident(i)
			st.Workers[i].ResidentPanels = panels
			st.Workers[i].ResidentBytes = bytes
			tot.ResidentBytes += bytes
		}
		s.cacheMu.Unlock()
		st.Cache = tot
	}
	if s.tracker != nil {
		for i, e := range s.tracker.Snapshot() {
			if i >= len(st.Workers) {
				break
			}
			if e.Transfers+e.Computes > 0 {
				st.Workers[i].EstC = e.C * 1e3
				st.Workers[i].EstW = e.W * 1e3
				st.Workers[i].Samples = e.Transfers + e.Computes
			}
		}
	}
	for _, id := range s.order {
		j := s.jobs[id]
		js := JobStatus{
			ID: j.id, State: j.state.String(), Class: j.class.String(),
			Instance: j.inst, Q: j.q,
			Replans: int(j.replans.Load()), Redundancy: j.redStats,
		}
		if j.sel != nil {
			js.Algorithm = j.sel.Algorithm
			js.Workers = append([]int(nil), j.sel.Workers...)
		}
		if len(j.lease) > 0 {
			js.Workers = append([]int(nil), j.lease...)
		}
		if j.err != nil {
			js.Error = j.err.Error()
		}
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
			js.ElapsedMS = float64(time.Since(j.started)) / float64(time.Millisecond)
		case JobDone:
			st.Done++
			js.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		case JobFailed, JobCanceled:
			if j.state == JobFailed {
				st.Failed++
			} else {
				st.Canceled++
			}
			if !j.started.IsZero() {
				js.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
			}
		}
		st.Jobs = append(st.Jobs, js)
	}
	return st
}

// Close stops admission, cancels every still-queued job (each done channel
// is failed with an error wrapping context.Canceled — no Wait is ever left
// hanging on a job that will not run), waits for running jobs and the
// scheduling loop to finish, and returns. The fleet is untouched.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.loop.Wait()
		return
	}
	s.closed = true
	for _, j := range s.queue {
		s.finishLocked(j, JobCanceled, fmt.Errorf("serve: server closed before the job ran: %w", context.Canceled))
	}
	s.queue = nil
	s.mu.Unlock()
	s.kick()
	s.loop.Wait()
}

// terminal reports whether state is a job's final state.
func terminal(state JobState) bool {
	return state == JobDone || state == JobFailed || state == JobCanceled
}

// finishLocked marks j terminal, releases its operand matrices (submitters
// hold their own references; a successful job's C has been updated in
// place) and its context, wakes its waiters, and prunes the oldest terminal
// records past maxJobHistory. The caller holds s.mu.
func (s *Server) finishLocked(j *job, state JobState, err error) {
	switch j.state {
	case JobQueued:
		gJobsQueued.Add(-1)
		gQueueDepth.With(j.class.String()).Add(-1)
	case JobRunning:
		gJobsRunning.Add(-1)
	}
	mJobsFinished.With(state.String()).Inc()
	j.state, j.err, j.finished = state, err, time.Now()
	if !j.started.IsZero() {
		hJobSeconds.Observe(j.finished.Sub(j.started))
	}
	j.a, j.b, j.c = nil, nil, nil
	j.cancel()
	close(j.done)
	for len(s.order) > maxJobHistory {
		old := s.jobs[s.order[0]]
		if !terminal(old.state) {
			break
		}
		delete(s.jobs, old.id)
		s.order = s.order[1:]
	}
}

// kick nudges the scheduling loop without blocking.
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// schedRetry is how often the admission loop re-tries a non-empty queue that
// found no lease: workers may be down (a re-dial or its backoff has to
// elapse) or all leased, and neither condition produces a kick by itself.
const schedRetry = 250 * time.Millisecond

// schedule is the admission loop: whenever kicked (submit, job completion),
// it leases disjoint worker subsets to as many queued jobs as the idle fleet
// can host, FIFO. A queue that cannot be served right now is re-tried on a
// timer, so jobs stranded by a fully-down fleet start as soon as a worker
// daemon comes back. The loop exits once the server is closed and the last
// running job has returned its lease.
func (s *Server) schedule() {
	defer s.loop.Done()
	for {
		for s.dispatchOne() {
		}
		// With the queue drained, any still-idle worker (a post-startup join,
		// a re-registered crash survivor) is offered to a running lease.
		s.offerIdleToRunning()
		s.mu.Lock()
		finished := s.closed && s.running == 0
		waiting := len(s.queue) > 0
		s.mu.Unlock()
		if finished {
			return
		}
		if waiting {
			select {
			case <-s.wake:
			case <-time.After(schedRetry):
			}
		} else {
			<-s.wake
		}
	}
}

// dispatchOne tries to start the job the queue policy picks next (the head
// under fifo — see pickLocked); it reports whether the loop should
// immediately try again (a job was started or dropped).
func (s *Server) dispatchOne() bool {
	s.mu.Lock()
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return false
	}
	j := s.pickLocked(time.Now())
	pending := len(s.queue) - 1
	s.mu.Unlock()

	// Everything slow — Idle (which kicks off re-dials of down workers) and
	// the scheduling simulations — runs without the server lock, so neither
	// a dead address nor a large instance's selection stalls Submit, Wait
	// or Status. The queue is re-checked before committing.
	avail := s.fleet.Idle()
	if len(avail) == 0 {
		return false
	}

	// Fleet sharing: the head job is offered its even share of the idle
	// workers, rounded up, so jobs queued behind it can lease the rest and
	// run concurrently. MaxWorkersPerJob caps the share further.
	share := len(avail)
	if pending > 0 {
		share = (len(avail) + pending) / (pending + 1)
	}
	if s.cfg.MaxWorkersPerJob > 0 && s.cfg.MaxWorkersPerJob < share {
		share = s.cfg.MaxWorkersPerJob
	}

	// On an adaptive server the specs below carry *measured* costs wherever a
	// worker has been observed — selection shortlists by live throughput, not
	// by what the operator declared at startup.
	specs := s.selectionSpecs()
	// On a caching server, workers already holding the job's operand panels
	// get their communication term discounted in the shortlist — affinity
	// biases selection toward warm caches without overriding measured load.
	var aff []float64
	if s.registry != nil && j.panels != nil {
		aff = make([]float64, len(specs))
		for _, i := range avail {
			if i < len(aff) {
				aff[i] = s.registry.Fraction(i, j.panels)
			}
		}
	}
	sel, err := SelectResources(specs, avail, share, j.inst, s.cfg.Scheduler, aff)
	permanent := false
	if err != nil {
		// The share-capped shortlist could not host the job: try everything
		// currently available before deciding anything — bending the
		// sharing cap beats stalling the queue.
		full, fullErr := SelectResources(specs, avail, 0, j.inst, s.cfg.Scheduler, aff)
		switch {
		case fullErr == nil:
			s.log.Warn("selection failed at share cap; using all available workers",
				"job", j.id, "share", share, "available", len(avail), "err", err)
			sel, err = full, nil
		case len(avail) < s.fleet.Size():
			// Even the available workers cannot host the job, but the
			// leased or down remainder might; retried by the scheduling
			// loop's timer.
			s.log.Info("job waiting: selection on partial fleet",
				"job", j.id, "available", len(avail), "fleet", s.fleet.Size(), "err", err)
			return false
		default:
			// The whole fleet cannot host the job; the uncapped attempt's
			// error is the real diagnosis, not the shortlist's.
			permanent, err = true, fullErr
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != JobQueued {
		return true // canceled (or the server closed) while we planned; re-examine
	}
	if permanent {
		s.dequeueLocked(j)
		s.finishLocked(j, JobFailed, err)
		s.log.Warn("job failed selection", "job", j.id, "err", err)
		return true
	}
	m, lerr := s.fleet.Lease(sel.Workers)
	if lerr != nil {
		// Transient (a keepalive just downed a worker between Idle and
		// Lease); retry on the next kick.
		s.log.Warn("lease failed", "job", j.id, "workers", fmt.Sprint(sel.Workers), "err", lerr)
		s.kick()
		return false
	}
	s.dequeueLocked(j)
	j.state, j.sel, j.started = JobRunning, sel, time.Now()
	hQueueWait.Observe(j.started.Sub(j.submitted))
	gJobsQueued.Add(-1)
	gQueueDepth.With(j.class.String()).Add(-1)
	gJobsRunning.Add(1)
	j.m = m
	j.lease = append([]int(nil), sel.Workers...)
	if s.tracker != nil {
		j.view = s.tracker.View(sel.Workers)
		j.join = make(chan int, 8)
	}
	s.running++
	s.log.Info("job running",
		"job", j.id, "lease", fmt.Sprint(sel.Workers),
		"algorithm", sel.Algorithm, "makespan", sel.Makespan)
	go s.run(j, m)
	return true
}

// offerIdleToRunning attaches idle workers to running adaptive leases when
// no queued job is waiting for them: a worker that registered after startup
// (or came back from a crash) starts contributing to a job already in
// flight instead of idling until the next submission. Each idle worker goes
// to the running job with the smallest current lease, respecting
// MaxWorkersPerJob.
func (s *Server) offerIdleToRunning() {
	if s.tracker == nil {
		return
	}
	s.mu.Lock()
	if s.closed || len(s.queue) > 0 || s.running == 0 {
		s.mu.Unlock()
		return
	}
	var running []*job
	for _, id := range s.order {
		if j := s.jobs[id]; j.state == JobRunning && j.join != nil {
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	if len(running) == 0 {
		return
	}
	for _, i := range s.fleet.Idle() {
		s.mu.Lock()
		var best *job
		bestSize := 0
		for _, j := range running {
			if j.state != JobRunning {
				continue
			}
			size := len(j.lease)
			if s.cfg.MaxWorkersPerJob > 0 && size >= s.cfg.MaxWorkersPerJob {
				continue
			}
			held := false
			for _, w := range j.lease {
				if w == i {
					held = true
					break
				}
			}
			if held {
				continue
			}
			if best == nil || size < bestSize {
				best, bestSize = j, size
			}
		}
		s.mu.Unlock()
		if best == nil {
			return
		}
		s.attach(best, i)
	}
}

// attach joins idle fleet worker i to running job j's lease mid-job: the
// pooled connection moves into the lease's master, the job's estimator view
// grows, and the executor is told the new plan index so its next re-plan
// spreads un-dispatched chunks onto the newcomer.
func (s *Server) attach(j *job, i int) {
	j.leaseMu.Lock()
	defer j.leaseMu.Unlock()
	if j.leaseDetached {
		return // the run just completed; the worker stays idle for the queue
	}
	w, err := s.fleet.LeaseExtra(i, j.m)
	if err != nil {
		s.log.Warn("attach failed", "job", j.id, "worker", i, "err", err)
		return
	}
	s.mu.Lock()
	j.lease = append(j.lease, i)
	s.mu.Unlock()
	if vi := j.view.Append(i); vi != w {
		// Cannot happen while leaseMu pairs the two appends; fail loudly
		// rather than let estimates land on the wrong worker.
		s.log.Error("view index diverged from plan index", "job", j.id, "view", vi, "plan", w, "worker", i)
	}
	select {
	case j.join <- w:
		s.log.Info("worker joined the lease", "job", j.id, "worker", i, "plan", w)
	default:
		// The executor stopped listening (run completing); the connection
		// rides back to the pool through Return like any lease member.
	}
}

// run executes one leased job and returns the lease. Worker deaths inside
// the lease are the executor's failover problem (replay on lease survivors);
// only a lease with no survivors fails the job. The job's context governs
// the execution: Cancel aborts the lease's in-flight I/O, the lease is
// returned as failed (its sessions recycled, workers re-dialed — never
// pooled holding half a job), and no other lease feels a thing.
func (s *Server) run(j *job, m *mmnet.Master) {
	var err error
	if j.panels != nil {
		// Open the lease's cache epoch: handshake every link for the job's
		// panel digests so transfers for resident panels are skipped. A
		// handshake failure downs the link exactly like any other I/O error —
		// the executor's failover handles it.
		m.BeginJob(j.panels)
	}
	// With a trace directory configured, the job runs under a recorder: the
	// executors emit one event per transfer at the hooks they already time
	// for the estimate tracker, and the timeline is exported below the
	// moment the lease ends.
	// Every lease records its timeline — the recorder is cheap and clients
	// can fetch a completed job's trace over the wire; TraceDir only decides
	// whether the Chrome-trace file is also exported below.
	ctx := j.ctx
	rec := trace.NewRecorder(j.sel.Algorithm)
	ctx = trace.NewContext(ctx, rec)
	mode, _ := coded.ParseMode(s.cfg.Redundancy)
	switch {
	case mode != coded.ModeOff:
		// Redundant lease: the k-of-n gate arbitrates completion. Placement is
		// priced by the live estimates when the server is adaptive; the gate's
		// speculation and wire-cancel replace elastic re-planning.
		var red *engine.Redundancy
		red, err = s.planRedundancy(j, m, mode)
		if err == nil {
			err = m.RunRedundantContext(ctx, j.inst.T, j.sel.Plan, j.a, j.b, j.c, red)
		}
		if red != nil {
			st := red.Stats()
			j.redStats = &RedundancyStats{
				Mode: string(mode), Units: st.Units, DuplicateWins: st.DuplicateWins,
				WastedBytes: st.WastedBytes, Decodes: st.Decodes,
				Absorbed: st.Absorbed, Speculative: st.Speculative,
			}
			mRedUnits.Add(st.Units)
			mRedDuplicateWins.Add(st.DuplicateWins)
			mRedWastedBytes.Add(st.WastedBytes)
			mRedDecodes.Add(st.Decodes)
			mRedAbsorbed.Add(st.Absorbed)
		}
	case j.view != nil:
		el := &engine.Elastic{
			Tracker:        j.view,
			Join:           j.join,
			DriftThreshold: s.cfg.DriftThreshold,
			OnReplan: func(reason string, pending int) {
				j.replans.Add(1)
				mReplans.Inc()
				s.log.Info("job re-planned", "job", j.id, "reason", reason, "redistributed", pending)
			},
		}
		err = m.RunElasticContext(ctx, j.inst.T, j.sel.Plan, j.a, j.b, j.c, el)
	default:
		err = m.RunPipelinedContext(ctx, j.inst.T, j.sel.Plan, j.a, j.b, j.c)
	}
	j.trace = rec.Trace()
	if s.cfg.TraceDir != "" {
		// Export before the terminal transition below closes j.done, so a
		// submitter returning from Wait always finds the file on disk.
		s.writeTrace(j.id, rec)
	}

	// End the lease: flag it detached first (under leaseMu) so no concurrent
	// attach can join a worker to a master whose connections are about to be
	// handed back, then return every held worker — mid-job joins included.
	j.leaseMu.Lock()
	j.leaseDetached = true
	j.leaseMu.Unlock()
	s.mu.Lock()
	lease := append([]int(nil), j.lease...)
	s.mu.Unlock()
	if j.panels != nil {
		// Harvest the lease's cache outcome *before* the workers go back to
		// the fleet: Return downs dead workers, and the OnDown invalidation
		// must win over anything absorbed here for a worker that did not
		// survive the job.
		s.absorbCache(j, m, lease)
	}
	s.fleet.Return(lease, m, err != nil)

	canceled := errors.Is(err, context.Canceled) || j.ctx.Err() != nil

	s.mu.Lock()
	switch {
	case err == nil:
		s.finishLocked(j, JobDone, nil)
	case canceled:
		if !errors.Is(err, context.Canceled) {
			err = fmt.Errorf("serve: job %d canceled mid-run: %w (abort surfaced as: %v)", j.id, context.Canceled, err)
		}
		s.finishLocked(j, JobCanceled, err)
	default:
		s.finishLocked(j, JobFailed, err)
	}
	elapsed := j.finished.Sub(j.started)
	s.running--
	s.mu.Unlock()

	switch {
	case err == nil:
		s.log.Info("job done", "job", j.id, "elapsed", elapsed)
	case canceled:
		s.log.Info("job canceled; lease returned", "job", j.id, "elapsed", elapsed)
	default:
		s.log.Warn("job failed", "job", j.id, "err", err)
	}
	s.kick()
}

// planRedundancy builds the k-of-n gate input for one lease: mode and factor
// from the server config, placement priced by the job's estimator view when
// the server is adaptive. A factor ≤ 0 asks the estimates to suggest one —
// one unit per predicted straggler, floored at 1 so crashes stay covered.
func (s *Server) planRedundancy(j *job, m *mmnet.Master, mode coded.Mode) (*engine.Redundancy, error) {
	opts := coded.Options{Mode: mode, R: s.cfg.RedundancyFactor}
	if j.view != nil {
		opts.Estimator = j.view
	}
	if opts.R <= 0 {
		opts.R = 1
		if jobs, _, err := sim.JobsFromPlan(j.sel.Plan); err == nil && len(jobs) > 0 {
			ch := jobs[0].Chunk
			blocks := 2 * ch.Blocks()
			var updates int64
			for _, p := range jobs[0].Panels {
				blocks += (p[1] - p[0]) * (ch.H + ch.W)
				updates += int64(p[1]-p[0]) * int64(ch.H) * int64(ch.W)
			}
			workers := make([]int, m.Workers())
			for i := range workers {
				workers[i] = i
			}
			if r := adapt.SuggestRedundancy(workers, blocks, updates, opts.Estimator); r > opts.R {
				opts.R = r
			}
		}
	}
	return coded.Plan(j.inst.T, j.sel.Plan, j.a, j.c, m.Workers(), opts)
}

// JobTrace returns job id's recorded timeline, available once its lease has
// ended (every lease records; TraceDir only controls the on-disk export). An
// unknown id or a job that has not finished running errors.
func (s *Server) JobTrace(id uint64) (*trace.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %d", id)
	}
	if j.trace == nil {
		return nil, fmt.Errorf("serve: job %d has no trace (state %s)", id, j.state)
	}
	return j.trace, nil
}

// writeTrace exports one completed job's recorded timeline as Chrome
// trace-event JSON under cfg.TraceDir. Best-effort: failures are logged and
// the job's outcome is untouched.
func (s *Server) writeTrace(id uint64, rec *trace.Recorder) {
	path := filepath.Join(s.cfg.TraceDir, fmt.Sprintf("job-%d.trace.json", id))
	f, err := os.Create(path)
	if err != nil {
		s.log.Warn("trace export failed", "job", id, "err", err)
		return
	}
	err = rec.Trace().WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.log.Warn("trace export failed", "job", id, "path", path, "err", err)
		return
	}
	s.log.Info("trace exported", "job", id, "path", path)
}

// absorbCache folds one completed lease's cache outcome into the server:
// each surviving worker's resident panels land in the affinity registry
// (positive and negative knowledge — the handshake queried every job panel),
// and the per-link transfer counters accumulate into the per-worker
// lifetime totals. lease maps the master's plan indices to fleet indices,
// mid-job joins included. Closes the lease's cache epoch.
func (s *Server) absorbCache(j *job, m *mmnet.Master, lease []int) {
	stats := m.CacheStats()
	snap := m.ResidentSnapshot()
	queried := j.panels.Digests()
	m.EndJob()
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	for k, w := range lease {
		if k >= len(snap) || k >= len(stats) {
			break
		}
		if snap[k] != nil {
			// nil means the link died mid-job — leave the registry to the
			// fleet's OnDown invalidation rather than guess.
			s.registry.Absorb(w, snap[k], queried)
		}
		st := stats[k]
		cum := s.cacheCum[w]
		if cum == nil {
			cum = &cacheCum{}
			s.cacheCum[w] = cum
		}
		cum.hits += st.PanelHits
		cum.misses += st.PanelMisses
		cum.aSent += st.ASentBytes
		cum.aSaved += st.ASavedBytes
		cum.bSent += st.BSentBytes
		cum.bSaved += st.BSavedBytes
		// Mirror into the process metrics with the same values, so /metrics
		// deltas always equal Status()/Session.Stats() deltas.
		mCacheHits.Add(st.PanelHits)
		mCacheMisses.Add(st.PanelMisses)
		mCacheSentA.Add(st.ASentBytes)
		mCacheSavedA.Add(st.ASavedBytes)
		mCacheSentB.Add(st.BSentBytes)
		mCacheSavedB.Add(st.BSavedBytes)
	}
}
