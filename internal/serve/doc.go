// Package serve is the multi-job scheduling service over a persistent worker
// fleet: the layer that turns the one-shot master-worker runtime into a
// long-lived daemon.
//
// A Fleet dials every worker once and keeps the registered sessions open
// across jobs (internal/net's WorkerConn/Detach lease handshake); a Server
// admits submitted products into a queue, picks a throughput-best *subset* of
// the idle fleet per job — the paper's resource selection, applied per
// product instead of per process — and runs the leased jobs concurrently
// through the backend-agnostic pipelined executor. Disjoint leases mean
// concurrent jobs never share a worker session, so one job's failover (a
// worker dying mid-job is replayed within its own lease) cannot touch another
// job's arithmetic or its latency.
//
// # Queue policies and admission
//
// Which queued job the next free lease goes to is decided by
// Config.QueuePolicy; each policy was measured against seeded synthetic
// traffic before shipping, and the checked-in hypotheses/ reports
// (cmd/mmlab's output) carry the numbers:
//
//   - PolicyFIFO (the default) dispatches in submission order.
//   - PolicySJF dispatches the least predicted work (r·s·t·q³ block updates)
//     first — hypotheses/fifo-vs-sjf measured ~3.6× lower small-job p99 on a
//     bimodal mix — with starvation bounded by Config.AgingBound: a job
//     queued past the bound is dispatched next regardless of policy order.
//   - PolicyPriority dispatches by SLO class (interactive → standard →
//     batch; FIFO within a class, aging-bounded across classes).
//
// A job's JobClass arrives through SubmitClass, the client protocol's submit
// frame (matmul.WithClass end to end), or defaults to ClassStandard.
// Config.AdmissionRate/AdmissionBurst add per-class token-bucket admission
// control: a submission finding its class's bucket empty fails immediately
// with ErrAdmission instead of joining an unbounded backlog
// (hypotheses/admission-vs-unbounded). Policies reorder admission into
// leases only — execution under a lease is identical under every policy, so
// the computed C stays bitwise-identical.
//
// Queue state is observable three ways, and they agree: Stats
// (Queued/QueuedByClass/AdmissionRejected, per-job JobStatus.Class), the
// mm_serve_queue_* metric family on the debug mux, and mmserve -status.
package serve
