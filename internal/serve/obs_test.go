package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sched"
)

// TestTraceExportAndMetricsAgree runs one job on a TraceDir-configured
// server and checks the two observability surfaces against each other: the
// exported file is Chrome trace-event JSON whose span counts obey the
// chunk/installment invariant, and the process-wide /metrics counters moved
// by exactly what Status() reports for the job.
func TestTraceExportAndMetricsAgree(t *testing.T) {
	addrs := startWorkers(t, 2, nil)
	f, err := NewFleet(addrs, homSpecs(2), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dir := t.TempDir()
	s := NewServer(f, Config{Logf: t.Logf, TraceDir: dir})
	defer s.Close()

	// The obs registry is process-global, so compare before/after deltas:
	// this server is the only one running jobs while the test executes.
	sub0 := mJobsSubmitted.Value()
	done0 := mJobsFinished.With("done").Value()
	hits0, miss0 := mCacheHits.Value(), mCacheMisses.Value()

	inst := sched.Instance{R: 4, S: 6, T: 3}
	a, b, c, want := testMatrices(t, inst, 3, 901)
	id, err := s.Submit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Errorf("C differs from the engine oracle by %g", d)
	}

	st := s.Status()
	if st.Done != 1 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("status = %d done, %d queued, %d running", st.Done, st.Queued, st.Running)
	}
	if got := mJobsSubmitted.Value() - sub0; got != 1 {
		t.Errorf("mm_serve_jobs_submitted_total moved %d, want 1", got)
	}
	if got := mJobsFinished.With("done").Value() - done0; got != 1 {
		t.Errorf(`mm_serve_jobs_finished_total{state="done"} moved %d, want 1`, got)
	}
	if gJobsQueued.Value() != 0 || gJobsRunning.Value() != 0 {
		t.Errorf("gauges queued=%d running=%d after the fleet drained",
			gJobsQueued.Value(), gJobsRunning.Value())
	}
	if ct := st.Cache; ct != nil {
		if got := mCacheHits.Value() - hits0; got != ct.PanelHits {
			t.Errorf("mm_serve_cache_panel_hits_total moved %d, Status reports %d", got, ct.PanelHits)
		}
		if got := mCacheMisses.Value() - miss0; got != ct.PanelMisses {
			t.Errorf("mm_serve_cache_panel_misses_total moved %d, Status reports %d", got, ct.PanelMisses)
		}
	}

	// The exported per-job trace: valid Chrome JSON, spans per kind obeying
	// one sendC + one recvC per chunk and the 2·chunks+installments total.
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("job-%d.trace.json", id)))
	if err != nil {
		t.Fatalf("trace file missing after Wait: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			counts[e.Name]++
		}
	}
	chunks, installments := counts["sendC"], counts["sendAB"]
	if chunks == 0 || installments == 0 {
		t.Fatalf("no spans recorded: %v", counts)
	}
	if counts["recvC"] != chunks {
		t.Errorf("recvC spans = %d, sendC spans = %d; every chunk must round-trip", counts["recvC"], chunks)
	}
	if total := counts["sendC"] + counts["sendAB"] + counts["recvC"]; total != 2*chunks+installments {
		t.Errorf("transfer spans = %d, want 2·chunks+installments = %d", total, 2*chunks+installments)
	}
}
