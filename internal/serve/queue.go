package serve

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// This file is the queue-policy layer the scheduling lab shipped (see
// hypotheses/): job SLO classes, the pick rule that decides which queued job
// the next free lease goes to, and token-bucket admission control. The
// policies only reorder *admission into leases* — once a job holds a lease,
// execution is identical under every policy, so C stays bitwise-identical.

// JobClass is a submitted product's SLO class. It rides the client protocol
// (matmul.WithClass → submit frame → daemon), orders dispatch under the
// priority queue policy, and partitions admission control and the
// mm_serve_queue_* metrics. The zero value is ClassStandard, so every
// pre-class client and frame keeps its old behavior.
type JobClass uint8

const (
	// ClassStandard is the default for submissions that do not declare a class.
	ClassStandard JobClass = iota
	// ClassInteractive marks latency-sensitive jobs; the priority policy
	// dispatches them first.
	ClassInteractive
	// ClassBatch marks throughput jobs that tolerate queueing; the priority
	// policy dispatches them last (aging still bounds their wait).
	ClassBatch

	numClasses = 3
)

func (c JobClass) String() string {
	switch c {
	case ClassStandard:
		return "standard"
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass maps a class name ("interactive", "standard", "batch"; empty
// means standard) to its JobClass.
func ParseClass(name string) (JobClass, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "standard":
		return ClassStandard, nil
	case "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	default:
		return ClassStandard, fmt.Errorf("serve: unknown job class %q (want interactive, standard or batch)", name)
	}
}

// rank orders classes for the priority policy: lower dispatches first.
func (c JobClass) rank() int {
	switch c {
	case ClassInteractive:
		return 0
	case ClassStandard:
		return 1
	default:
		return 2
	}
}

// Queue policies. See Config.QueuePolicy.
const (
	// PolicyFIFO dispatches strictly in submission order (the pre-lab
	// behavior and the default).
	PolicyFIFO = "fifo"
	// PolicySJF dispatches the queued job with the least predicted work
	// (r·s·t·q³ block updates) first. hypotheses/fifo-vs-sjf measured ~3.6×
	// lower small-job p99 on bimodal mixes; the starvation risk for large
	// jobs is bounded by Config.AgingBound.
	PolicySJF = "sjf"
	// PolicyPriority dispatches by SLO class (interactive → standard →
	// batch), FIFO within a class, aging-bounded across classes, and applies
	// admission control per class so one class's burst cannot drain another
	// class's tokens.
	PolicyPriority = "priority"
)

// ParseQueuePolicy normalizes a policy name; empty means PolicyFIFO.
func ParseQueuePolicy(name string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", PolicyFIFO:
		return PolicyFIFO, nil
	case PolicySJF:
		return PolicySJF, nil
	case PolicyPriority:
		return PolicyPriority, nil
	default:
		return PolicyFIFO, fmt.Errorf("serve: unknown queue policy %q (want fifo, sjf or priority)", name)
	}
}

// defaultAgingBound caps how long sjf/priority may bypass a queued job: once
// the queue's oldest job has waited this long it is dispatched next
// regardless of size or class. The bound trades a little small-job latency
// for a hard no-starvation guarantee (tested in queue_test.go).
const defaultAgingBound = 15 * time.Second

// agingBound resolves the configured starvation bound.
func (s *Server) agingBound() time.Duration {
	if s.cfg.AgingBound > 0 {
		return s.cfg.AgingBound
	}
	return defaultAgingBound
}

// cost is the job's predicted work in block updates — r·s·t·q³ — the SJF
// ordering key. Block counts, not measured speed: the prediction must exist
// before the job has ever run, and relative size is all the ordering needs.
func (j *job) cost() float64 {
	return float64(j.inst.R) * float64(j.inst.S) * float64(j.inst.T) *
		float64(j.q) * float64(j.q) * float64(j.q)
}

// pickLocked returns the queued job the next lease should go to, per the
// server's queue policy. The queue itself stays in submission order — FIFO
// picks index 0, sjf/priority scan — so the aging check is O(1): the oldest
// queued job is always s.queue[0]. Caller holds s.mu and has checked the
// queue is non-empty.
func (s *Server) pickLocked(now time.Time) *job {
	switch s.policy {
	case PolicySJF:
		if now.Sub(s.queue[0].submitted) > s.agingBound() {
			s.agedLocked(s.queue[0])
			return s.queue[0]
		}
		best := s.queue[0]
		for _, j := range s.queue[1:] {
			if j.cost() < best.cost() {
				best = j
			}
		}
		return best
	case PolicyPriority:
		if now.Sub(s.queue[0].submitted) > s.agingBound() {
			s.agedLocked(s.queue[0])
			return s.queue[0]
		}
		best := s.queue[0]
		for _, j := range s.queue[1:] {
			if j.class.rank() < best.class.rank() {
				best = j
			}
		}
		return best
	default: // PolicyFIFO
		return s.queue[0]
	}
}

// agedLocked records one aging promotion: the oldest queued job bypassed the
// policy order because it exceeded the starvation bound. Counted only when
// the policy would have picked someone else.
func (s *Server) agedLocked(oldest *job) {
	if len(s.queue) > 1 {
		mQueueAged.Inc()
		s.log.Info("queued job promoted by aging", "job", oldest.id,
			"waited", time.Since(oldest.submitted), "bound", s.agingBound())
	}
}

// dequeueLocked removes j from the queue if it is still there, reporting
// whether it was. A job can leave the queue between pick and commit (Cancel,
// Close), so dispatch re-checks under the lock.
func (s *Server) dequeueLocked(j *job) bool {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return true
		}
	}
	return false
}

// admission is per-class token-bucket admission control. Each class refills
// at the same configured rate into its own bucket, so a burst of batch
// submissions empties only the batch bucket — interactive admission is
// untouched. hypotheses/admission-vs-unbounded measured the effect: under a
// Gamma burst the bucket sheds the excess at submit time (clients get an
// immediate error and can back off) instead of growing an unbounded queue
// whose every job pays the backlog's latency.
type admission struct {
	rate  float64 // tokens (jobs) per second, per class
	burst float64 // bucket capacity
	now   func() time.Time

	mu       sync.Mutex
	tokens   [numClasses]float64
	last     [numClasses]time.Time
	rejected [numClasses]int64
}

// newAdmission builds the bucket set; rate ≤ 0 disables admission (nil).
func newAdmission(rate float64, burst int) *admission {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		// Default capacity: one second of refill, at least one job, so a
		// paced client is never rejected and a burst is clipped to ~rate.
		b = math.Max(1, math.Ceil(rate))
	}
	return &admission{rate: rate, burst: b, now: time.Now}
}

// take spends one token from class c's bucket, reporting whether the job is
// admitted. Buckets start full.
func (a *admission) take(c JobClass) bool {
	if a == nil {
		return true
	}
	if c >= numClasses {
		c = ClassStandard
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.last[c].IsZero() {
		a.tokens[c] = a.burst
	} else {
		a.tokens[c] = math.Min(a.burst, a.tokens[c]+now.Sub(a.last[c]).Seconds()*a.rate)
	}
	a.last[c] = now
	if a.tokens[c] < 1 {
		a.rejected[c]++
		return false
	}
	a.tokens[c]--
	return true
}

// rejectedByClass snapshots the per-class rejection counts (nil admission:
// nil map).
func (a *admission) rejectedByClass() map[string]int64 {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int64, numClasses)
	for c := JobClass(0); c < numClasses; c++ {
		out[c.String()] = a.rejected[c]
	}
	return out
}
