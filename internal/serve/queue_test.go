package serve

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/sched"
)

func TestParseClassAndPolicy(t *testing.T) {
	for name, want := range map[string]JobClass{
		"": ClassStandard, "standard": ClassStandard, "Interactive": ClassInteractive,
		" batch ": ClassBatch,
	} {
		got, err := ParseClass(name)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	for name, want := range map[string]string{
		"": PolicyFIFO, "FIFO": PolicyFIFO, "sjf": PolicySJF, " priority ": PolicyPriority,
	} {
		got, err := ParseQueuePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseQueuePolicy(%q) = %q, %v; want %q", name, got, err, want)
		}
	}
	if _, err := ParseQueuePolicy("lifo"); err == nil {
		t.Error("ParseQueuePolicy accepted an unknown policy")
	}
}

// queueOf builds a bare server (no fleet, no loop) holding the given queued
// jobs — pickLocked only reads policy, cfg, log and the queue.
func queueOf(policy string, jobs ...*job) *Server {
	return &Server{policy: policy, log: slog.New(slog.DiscardHandler), queue: jobs}
}

// TestPickLockedPolicies pins the pick rule per policy on a hand-built
// queue: fifo takes the head, sjf the cheapest, priority the best class, and
// a head job past the aging bound preempts both scans.
func TestPickLockedPolicies(t *testing.T) {
	now := time.Now()
	mk := func(id uint64, edge, q int, class JobClass, age time.Duration) *job {
		return &job{
			id: id, inst: sched.Instance{R: edge, S: edge, T: edge}, q: q,
			class: class, submitted: now.Add(-age), state: JobQueued,
		}
	}
	big := mk(1, 8, 16, ClassStandard, 3*time.Second)
	small := mk(2, 2, 8, ClassStandard, 2*time.Second)
	tiny := mk(3, 2, 4, ClassBatch, time.Second)
	urgent := mk(4, 8, 16, ClassInteractive, 0)

	if got := queueOf(PolicyFIFO, big, small, tiny, urgent).pickLocked(now); got != big {
		t.Errorf("fifo picked job %d, want head %d", got.id, big.id)
	}
	if got := queueOf(PolicySJF, big, small, tiny, urgent).pickLocked(now); got != tiny {
		t.Errorf("sjf picked job %d, want cheapest %d", got.id, tiny.id)
	}
	if got := queueOf(PolicyPriority, big, small, tiny, urgent).pickLocked(now); got != urgent {
		t.Errorf("priority picked job %d, want interactive %d", got.id, urgent.id)
	}

	// Aging: once the head has waited past the bound, sjf and priority both
	// fall back to it, and the promotion is counted.
	stale := mk(5, 8, 16, ClassBatch, defaultAgingBound+time.Second)
	for _, policy := range []string{PolicySJF, PolicyPriority} {
		aged0 := mQueueAged.Value()
		if got := queueOf(policy, stale, tiny, urgent).pickLocked(now); got != stale {
			t.Errorf("%s picked job %d over the aged head %d", policy, got.id, stale.id)
		}
		if mQueueAged.Value() != aged0+1 {
			t.Errorf("%s: mm_serve_queue_aged_total did not move on promotion", policy)
		}
	}

	// The aging counter stays put when the aged head is the only queued job:
	// the policy would have picked it anyway.
	aged0 := mQueueAged.Value()
	if got := queueOf(PolicySJF, stale).pickLocked(now); got != stale {
		t.Errorf("single-job queue picked %d", got.id)
	}
	if mQueueAged.Value() != aged0 {
		t.Error("aging counted a promotion with nothing to bypass")
	}
}

// oneWorkerServer builds a 1-worker fleet so dispatch is strictly serial:
// completion order equals pick order, making policy ordering observable
// without races.
func oneWorkerServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	return oneWorkerStalledServer(t, cfg, 0)
}

// oneWorkerStalledServer is oneWorkerServer with the worker rigged to stall
// for stallFor after its first installment (0 disables). The stall pins down
// how long a blocker job holds the worker, so "submitted while the blocker
// runs" is a guarantee rather than a race against loopback compute speed.
func oneWorkerStalledServer(t *testing.T, cfg Config, stallFor time.Duration) *Server {
	t.Helper()
	var opts func(i int) mmnet.WorkerOptions
	if stallFor > 0 {
		opts = stalledWorkerOpts(map[int]bool{0: true}, stallFor)
	}
	addrs := startWorkers(t, 1, opts)
	f, err := NewFleet(addrs, homSpecs(1), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	cfg.Logf = t.Logf
	s := NewServer(f, cfg)
	t.Cleanup(s.Close)
	return s
}

// blockerInst is the shape every blocker product uses. It is deliberately
// small: the stalled worker (oneWorkerStalledServer), not compute time, is
// what guarantees the blocker holds the fleet while probes queue behind it.
var blockerInst = sched.Instance{R: 4, S: 4, T: 4}

const blockerQ = 16

// submitBlocker submits the blocker product and blocks until the server has
// leased it — only then is a subsequent submission guaranteed to queue
// behind it rather than race it for the worker.
func submitBlocker(t *testing.T, s *Server, seed int64) uint64 {
	t.Helper()
	a, b, c, _ := testMatrices(t, blockerInst, blockerQ, seed)
	id, err := s.Submit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, js := range s.Status().Jobs {
			if js.ID == id {
				switch js.State {
				case "running":
					return id
				case "queued":
				default:
					t.Fatalf("blocker reached state %s before any probe was submitted", js.State)
				}
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("blocker never started running")
	return 0
}

// waitOrder waits for every job and returns their ids in completion order.
func waitOrder(t *testing.T, s *Server, ids []uint64) []uint64 {
	t.Helper()
	type fin struct {
		id uint64
		at time.Time
	}
	var mu sync.Mutex
	var fins []fin
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Wait(id); err != nil {
				t.Errorf("job %d: %v", id, err)
				return
			}
			mu.Lock()
			fins = append(fins, fin{id, time.Now()})
			mu.Unlock()
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(fins); i++ {
		if fins[i].at.Before(fins[i-1].at) {
			fins[i], fins[i-1] = fins[i-1], fins[i]
		}
	}
	out := make([]uint64, len(fins))
	for i, f := range fins {
		out[i] = f.id
	}
	return out
}

// TestQueuePolicyDispatchOrder drives each policy end to end on a serial
// (1-worker) fleet: a blocker occupies the worker while two probes queue,
// and the probes' completion order exposes which one the policy dispatched
// first. Every C is still checked bitwise — policies reorder admission,
// never arithmetic.
func TestQueuePolicyDispatchOrder(t *testing.T) {
	bigInst, smallInst := sched.Instance{R: 6, S: 6, T: 6}, sched.Instance{R: 2, S: 2, T: 2}
	cases := []struct {
		policy    string
		classA    JobClass // first probe submitted (the big one under fifo/sjf)
		classB    JobClass
		wantFirst int // index (0 = probe A, 1 = probe B) expected to finish first
		sameSize  bool
	}{
		{policy: PolicyFIFO, wantFirst: 0}, // submission order
		{policy: PolicySJF, wantFirst: 1},  // small jumps big
		{policy: PolicyPriority, classA: ClassBatch, classB: ClassInteractive, wantFirst: 1, sameSize: true}, // class order
	}
	for _, tc := range cases {
		t.Run(tc.policy, func(t *testing.T) {
			s := oneWorkerStalledServer(t, Config{QueuePolicy: tc.policy, NoCache: true}, 50*time.Millisecond)
			blocker := submitBlocker(t, s, 41)

			instA := bigInst
			if tc.sameSize {
				instA = smallInst
			}
			aa, ab, ac, awant := testMatrices(t, instA, 8, 42)
			sa, sb, sc, swant := testMatrices(t, smallInst, 8, 43)
			idA, err := s.SubmitClass(aa, ab, ac, nil, tc.classA)
			if err != nil {
				t.Fatal(err)
			}
			idB, err := s.SubmitClass(sa, sb, sc, nil, tc.classB)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Wait(blocker); err != nil {
				t.Fatal(err)
			}
			order := waitOrder(t, s, []uint64{idA, idB})
			if t.Failed() {
				return
			}
			want := []uint64{idA, idB}[tc.wantFirst]
			if order[0] != want {
				t.Errorf("%s dispatched job %d first, want %d", tc.policy, order[0], want)
			}
			for _, chk := range []struct{ c, want *matrix.BlockMatrix }{{ac, awant}, {sc, swant}} {
				if d := chk.c.MaxAbsDiff(chk.want); d != 0 {
					t.Errorf("C differs from the engine oracle by %g", d)
				}
			}
		})
	}
}

// TestAgingBoundsStarvation pins the no-starvation guarantee end to end:
// under sjf with a tiny aging bound, a big job at the head of the queue is
// dispatched before a cheaper later arrival, because it aged past the bound
// while the blocker held the fleet.
func TestAgingBoundsStarvation(t *testing.T) {
	s := oneWorkerStalledServer(t, Config{QueuePolicy: PolicySJF, AgingBound: time.Millisecond, NoCache: true}, 75*time.Millisecond)
	// The aged counter must be read before any pick this test causes can
	// bump it — the blocker's completion (and the aging pick behind it) can
	// land at any point after the probes are queued.
	aged0 := mQueueAged.Value()
	blocker := submitBlocker(t, s, 51)

	bigA, bigB, bigC, _ := testMatrices(t, sched.Instance{R: 6, S: 6, T: 6}, 16, 52)
	big, err := s.Submit(bigA, bigB, bigC)
	if err != nil {
		t.Fatal(err)
	}
	smallA, smallB, smallC, _ := testMatrices(t, sched.Instance{R: 2, S: 2, T: 2}, 8, 53)
	small, err := s.Submit(smallA, smallB, smallC)
	if err != nil {
		t.Fatal(err)
	}
	// The stalled worker holds the blocker for 75ms, so by the time the next
	// pick happens the big head job has aged far past the 1ms bound.
	if err := s.Wait(blocker); err != nil {
		t.Fatal(err)
	}
	order := waitOrder(t, s, []uint64{big, small})
	if t.Failed() {
		return
	}
	if order[0] != big {
		t.Errorf("sjf with a 1ms aging bound dispatched job %d first, want the aged big job %d", order[0], big)
	}
	if mQueueAged.Value() == aged0 {
		t.Error("aging promotion was not counted")
	}
}

// TestCancelWhileQueuedEveryPolicy cancels a still-queued job under each
// policy and checks it never runs, errors with context.Canceled, and leaves
// no residue in the per-class queue stats or depth gauge.
func TestCancelWhileQueuedEveryPolicy(t *testing.T) {
	for _, policy := range []string{PolicyFIFO, PolicySJF, PolicyPriority} {
		t.Run(policy, func(t *testing.T) {
			s := oneWorkerStalledServer(t, Config{QueuePolicy: policy, NoCache: true}, 50*time.Millisecond)
			blocker := submitBlocker(t, s, 61)

			a, b, c, _ := testMatrices(t, sched.Instance{R: 2, S: 2, T: 2}, 8, 62)
			depth0 := gQueueDepth.With("interactive").Value()
			id, err := s.SubmitClass(a, b, c, nil, ClassInteractive)
			if err != nil {
				t.Fatal(err)
			}
			if got := gQueueDepth.With("interactive").Value(); got != depth0+1 {
				t.Errorf("queue depth gauge = %d after enqueue, want %d", got, depth0+1)
			}
			if got := s.Status().QueuedByClass["interactive"]; got != 1 {
				t.Errorf("QueuedByClass[interactive] = %d, want 1", got)
			}
			if err := s.Cancel(id); err != nil {
				t.Fatal(err)
			}
			if err := s.Wait(id); !errors.Is(err, context.Canceled) {
				t.Errorf("canceled queued job's Wait = %v, want context.Canceled", err)
			}
			if got := gQueueDepth.With("interactive").Value(); got != depth0 {
				t.Errorf("queue depth gauge = %d after cancel, want %d", got, depth0)
			}
			st := s.Status()
			if st.QueuedByClass["interactive"] != 0 {
				t.Errorf("QueuedByClass[interactive] = %d after cancel", st.QueuedByClass["interactive"])
			}
			if err := s.Wait(blocker); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStatsMetricsAgreePerClass holds a backlog of classed jobs and checks
// the three accounting surfaces against each other: Stats.QueuedByClass, the
// mm_serve_queue_depth gauge per class, and each job's Status class string.
func TestStatsMetricsAgreePerClass(t *testing.T) {
	s := oneWorkerStalledServer(t, Config{QueuePolicy: PolicyPriority, NoCache: true}, 50*time.Millisecond)

	depth := func(class string) int64 { return gQueueDepth.With(class).Value() }
	base := map[string]int64{}
	for _, c := range []string{"interactive", "standard", "batch"} {
		base[c] = depth(c)
	}

	wait0 := hQueueWait.Count()
	blocker := submitBlocker(t, s, 71)
	var ids []uint64
	for _, class := range []JobClass{ClassInteractive, ClassBatch, ClassBatch} {
		a, b, c, _ := testMatrices(t, sched.Instance{R: 2, S: 2, T: 2}, 8, 72)
		id, err := s.SubmitClass(a, b, c, nil, class)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	st := s.Status()
	want := map[string]int{"interactive": 1, "batch": 2}
	for class, n := range want {
		if st.QueuedByClass[class] != n {
			t.Errorf("QueuedByClass[%s] = %d, want %d", class, st.QueuedByClass[class], n)
		}
		if got := depth(class) - base[class]; got != int64(n) {
			t.Errorf("mm_serve_queue_depth{class=%q} moved %d, want %d", class, got, n)
		}
	}
	sum := 0
	for _, n := range st.QueuedByClass {
		sum += n
	}
	if sum != st.Queued {
		t.Errorf("QueuedByClass sums to %d, Queued = %d", sum, st.Queued)
	}
	classOf := map[uint64]string{ids[0]: "interactive", ids[1]: "batch", ids[2]: "batch"}
	for _, js := range st.Jobs {
		if wantClass, ok := classOf[js.ID]; ok && js.Class != wantClass {
			t.Errorf("job %d reports class %q, want %q", js.ID, js.Class, wantClass)
		}
	}

	if err := s.Wait(blocker); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	st = s.Status()
	if st.Queued != 0 || len(st.QueuedByClass) != 0 {
		t.Errorf("after drain: Queued=%d QueuedByClass=%v", st.Queued, st.QueuedByClass)
	}
	for _, class := range []string{"interactive", "standard", "batch"} {
		if got := depth(class); got != base[class] {
			t.Errorf("mm_serve_queue_depth{class=%q} = %d after drain, want %d", class, got, base[class])
		}
	}
	// Every dispatched job (blocker + 3 probes) observed its queue wait.
	if got := hQueueWait.Count() - wait0; got != 4 {
		t.Errorf("mm_serve_queue_wait_seconds observed %d jobs, want 4", got)
	}
}

// TestAdmissionTokenBucket drives the per-class buckets on a fake clock:
// burst admitted, overflow rejected, refill at the configured rate, and one
// class's exhaustion never touching another class's tokens.
func TestAdmissionTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	a := newAdmission(2, 2) // 2 jobs/s, burst 2
	a.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !a.take(ClassBatch) {
			t.Fatalf("take %d rejected within burst", i)
		}
	}
	if a.take(ClassBatch) {
		t.Fatal("take admitted past the burst with no time elapsed")
	}
	// Batch is drained; interactive's bucket must still be full.
	if !a.take(ClassInteractive) {
		t.Fatal("interactive rejected after a batch flood")
	}
	// Half a second at 2 jobs/s refills one batch token.
	now = now.Add(500 * time.Millisecond)
	if !a.take(ClassBatch) {
		t.Fatal("take rejected after refill")
	}
	if a.take(ClassBatch) {
		t.Fatal("take admitted a second job after a one-token refill")
	}
	rej := a.rejectedByClass()
	if rej["batch"] != 2 || rej["interactive"] != 0 {
		t.Errorf("rejectedByClass = %v, want batch=2 interactive=0", rej)
	}

	// Default burst: one second of refill, at least 1.
	if b := newAdmission(0.25, 0); b.burst != 1 {
		t.Errorf("newAdmission(0.25, 0).burst = %g, want 1", b.burst)
	}
	if b := newAdmission(3.5, 0); b.burst != 4 {
		t.Errorf("newAdmission(3.5, 0).burst = %g, want 4", b.burst)
	}
	if newAdmission(0, 5) != nil {
		t.Error("newAdmission(0, …) should disable admission")
	}
}

// TestAdmissionRejectsAtSubmit checks the server-level behavior: with a
// one-job bucket, the second immediate submission fails with ErrAdmission,
// the rejection is visible in Stats and the rejection counter, and the
// admitted job is untouched.
func TestAdmissionRejectsAtSubmit(t *testing.T) {
	s := oneWorkerServer(t, Config{AdmissionRate: 0.001, AdmissionBurst: 1, NoCache: true})

	rej0 := mQueueRejected.With("standard").Value()
	a, b, c, want := testMatrices(t, sched.Instance{R: 2, S: 2, T: 2}, 8, 81)
	id, err := s.Submit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, c2, _ := testMatrices(t, sched.Instance{R: 2, S: 2, T: 2}, 8, 82)
	if _, err := s.Submit(a2, b2, c2); !errors.Is(err, ErrAdmission) {
		t.Fatalf("second submit = %v, want ErrAdmission", err)
	}
	if got := mQueueRejected.With("standard").Value() - rej0; got != 1 {
		t.Errorf("mm_serve_queue_admission_rejected_total moved %d, want 1", got)
	}
	if got := s.Status().AdmissionRejected["standard"]; got != 1 {
		t.Errorf("Stats.AdmissionRejected[standard] = %d, want 1", got)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Errorf("admitted job's C differs from the oracle by %g", d)
	}
}

// TestSubmitClassFrameRoundTrip pins the cSubmitC wire format: dims, class
// byte, optional digest lists and blocks all survive encode/decode, with
// empty digest lists meaning "no digests" unambiguously.
func TestSubmitClassFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	blocks := func(n, q int) []*matrix.Block {
		out := make([]*matrix.Block, n)
		for i := range out {
			out[i] = matrix.NewBlock(q)
			out[i].FillRandom(rng)
		}
		return out
	}
	msg := &clientMsg{Kind: cSubmitC, R: 2, S: 3, T: 2, Q: 4, Class: ClassInteractive,
		Blocks: blocks(2*2+2*3+2*3, 4)}
	var buf bytes.Buffer
	if err := writeClientMsg(&buf, msg, nil); err != nil {
		t.Fatal(err)
	}
	got, err := readClientMsg(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != cSubmitC || got.Class != ClassInteractive ||
		got.R != 2 || got.S != 3 || got.T != 2 || got.Q != 4 {
		t.Errorf("fields mangled: %+v", got)
	}
	if len(got.Rows) != 0 || len(got.Cols) != 0 {
		t.Errorf("classed frame without digests decoded %d/%d digest rows", len(got.Rows), len(got.Cols))
	}
	if len(got.Blocks) != len(msg.Blocks) {
		t.Fatalf("%d blocks back, sent %d", len(got.Blocks), len(msg.Blocks))
	}
	for i := range msg.Blocks {
		if got.Blocks[i].MaxAbsDiff(msg.Blocks[i]) != 0 {
			t.Errorf("block %d not bitwise identical", i)
		}
	}
}

// TestSubmitProductClassEndToEnd submits a classed product over the real
// client protocol and checks the class is visible daemon-side and the result
// is bitwise-correct; a standard-class submission through the same API stays
// on the legacy frame (wire compat with pre-class daemons).
func TestSubmitProductClassEndToEnd(t *testing.T) {
	s := oneWorkerServer(t, Config{QueuePolicy: PolicyPriority, NoCache: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ListenAndServe(ln)
	daemon := ln.Addr().String()

	inst := sched.Instance{R: 4, S: 6, T: 3}
	a, b, c, want := testMatrices(t, inst, 8, 91)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, id, err := SubmitProductClass(ctx, daemon, a, b, c, nil, ClassBatch)
	if err != nil {
		t.Fatal(err)
	}
	if d := out.MaxAbsDiff(want); d != 0 {
		t.Errorf("C differs from the oracle by %g", d)
	}
	found := false
	for _, js := range s.Status().Jobs {
		if js.ID == id {
			found = true
			if js.Class != "batch" {
				t.Errorf("daemon reports class %q, want batch", js.Class)
			}
		}
	}
	if !found {
		t.Errorf("job %d missing from daemon status", id)
	}

	a2, b2, c2, want2 := testMatrices(t, inst, 8, 92)
	out2, _, err := SubmitProductContext(ctx, daemon, a2, b2, c2)
	if err != nil {
		t.Fatal(err)
	}
	if d := out2.MaxAbsDiff(want2); d != 0 {
		t.Errorf("legacy-frame C differs from the oracle by %g", d)
	}
}
