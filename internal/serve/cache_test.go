package serve

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
)

// oracleC runs the in-process engine over clones and returns the bitwise
// reference C for C += A·B.
func oracleC(t *testing.T, a, b, c *matrix.BlockMatrix) *matrix.BlockMatrix {
	t.Helper()
	inst := sched.Instance{R: c.Rows, S: c.Cols, T: a.Cols}
	pl := platform.Homogeneous(2, 1, 1, 40)
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Clone()
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, res.Plan(), a.Clone(), b.Clone(), want); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestSelectResourcesAffinityBias pins down the selection contract: affinity
// breaks ties between equal workers, wins when communication dominates, and
// never overrides a decisive compute-speed gap — it discounts only the comm
// term of the w+2c proxy.
func TestSelectResourcesAffinityBias(t *testing.T) {
	inst := sched.Instance{R: 4, S: 4, T: 3}

	// Identical twins: the warm cache breaks the tie...
	twins := []platform.Worker{{C: 1, W: 1, M: 40}, {C: 1, W: 1, M: 40}}
	sel, err := SelectResources(twins, []int{0, 1}, 1, inst, nil, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 1 || sel.Workers[0] != 1 {
		t.Errorf("tie with warm worker 1: leased %v, want [1]", sel.Workers)
	}
	// ...while no affinity keeps the deterministic index order.
	sel, err = SelectResources(twins, []int{0, 1}, 1, inst, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 1 || sel.Workers[0] != 0 {
		t.Errorf("tie without affinity: leased %v, want [0]", sel.Workers)
	}

	// A bias, not an override: a fully warm but much slower worker loses to
	// a cold fast one (w=6 beats w=1+2c=3 even with the comm term zeroed).
	slowWarm := []platform.Worker{{C: 1, W: 1, M: 40}, {C: 1, W: 6, M: 40}}
	sel, err = SelectResources(slowWarm, []int{0, 1}, 1, inst, nil, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 1 || sel.Workers[0] != 0 {
		t.Errorf("slow warm worker outranked fast cold one: leased %v, want [0]", sel.Workers)
	}

	// Communication-dominated: residency erases a slow link, so the warm
	// worker with C=4 (proxy 1+0) beats the cold one with C=1 (proxy 1+2).
	slowLink := []platform.Worker{{C: 4, W: 1, M: 40}, {C: 1, W: 1, M: 40}}
	sel, err = SelectResources(slowLink, []int{0, 1}, 1, inst, nil, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Workers) != 1 || sel.Workers[0] != 0 {
		t.Errorf("warm slow-link worker not preferred: leased %v, want [0]", sel.Workers)
	}
}

// TestServerCacheAffinitySavesBytes drives a repeated-operand workload (one
// shared A, fresh B per job) through a caching server: after the seeding
// job, residency must save A bytes on every later lease, the service
// snapshot must surface the savings, and every C stays bitwise-equal to the
// in-process engine.
func TestServerCacheAffinitySavesBytes(t *testing.T) {
	addrs := startWorkers(t, 4, func(i int) mmnet.WorkerOptions {
		return mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond, Cache: cache.NewPanelCache(0)}
	})
	f, err := NewFleet(addrs, homSpecs(4), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{Logf: t.Logf})
	defer s.Close()

	inst := sched.Instance{R: 6, S: 8, T: 4}
	q := 4
	rng := rand.New(rand.NewSource(700))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	a.FillRandom(rng)

	for job := 0; job < 4; job++ {
		b := matrix.NewBlockMatrix(inst.T, inst.S, q)
		c := matrix.NewBlockMatrix(inst.R, inst.S, q)
		b.FillRandom(rng)
		c.FillRandom(rng)
		want := oracleC(t, a, b, c)
		id, err := s.Submit(a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Wait(id); err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if d := c.MaxAbsDiff(want); d != 0 {
			t.Errorf("job %d: C differs from engine C by %g (want bitwise equal)", job, d)
		}
	}

	st := s.Status()
	if st.Cache == nil {
		t.Fatal("caching server reported no cache totals")
	}
	if st.Cache.ASavedBytes == 0 {
		t.Errorf("no A bytes saved across %+v", st.Cache)
	}
	if st.Cache.ResidentBytes == 0 {
		t.Error("no resident panel bytes after four identical-A jobs")
	}
	someResident := false
	for _, w := range st.Workers {
		if w.ResidentBytes > 0 {
			someResident = true
		}
	}
	if !someResident {
		t.Error("no worker row reports resident panels")
	}
}

// TestServerRedialInvalidatesResidency checks the crash-consistency fix: a
// worker whose session is recycled (the path every crash and keepalive loss
// funnels through) must lose its registry residency, because its re-dialed
// session starts with whatever cache the daemon kept — unknown to us.
func TestServerRedialInvalidatesResidency(t *testing.T) {
	addrs := startWorkers(t, 2, func(i int) mmnet.WorkerOptions {
		return mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond, Cache: cache.NewPanelCache(0)}
	})
	f, err := NewFleet(addrs, homSpecs(2), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewServer(f, Config{Logf: t.Logf})
	defer s.Close()

	a, b, c, want := testMatrices(t, sched.Instance{R: 4, S: 6, T: 3}, 4, 710)
	id, err := s.Submit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Errorf("C differs from engine C by %g", d)
	}

	victim := -1
	for i := 0; i < 2; i++ {
		if _, bytes := s.registry.Resident(i); bytes > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no worker gained residency from the seeding job")
	}

	// Recycle the victim's session the way a failed run would: Return with
	// failed=true downs the worker, which must fire the invalidation hook.
	m, err := f.Lease([]int{victim})
	if err != nil {
		t.Fatal(err)
	}
	f.Return([]int{victim}, m, true)
	if panels, bytes := s.registry.Resident(victim); panels != 0 || bytes != 0 {
		t.Errorf("worker %d still holds %d panels / %d bytes after its session was recycled", victim, panels, bytes)
	}
}
