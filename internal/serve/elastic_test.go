package serve

import (
	"context"
	"net"
	"testing"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
)

// startClientListener serves the client protocol for one test server.
func startClientListener(t *testing.T, s *Server) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.ListenAndServe(ln)
	return ln
}

// TestAdaptiveServerTracksEstimates: an adaptive server's jobs feed the
// estimate tracker, and the status snapshot reports live measured costs for
// every worker that participated.
func TestAdaptiveServerTracksEstimates(t *testing.T) {
	addrs := startWorkers(t, 2, nil)
	fleet, err := NewFleet(addrs, homSpecs(2), FleetOptions{Keepalive: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	srv := NewServer(fleet, Config{Adaptive: true})
	defer srv.Close()

	inst := sched.Instance{R: 6, S: 9, T: 4}
	a, b, c, want := testMatrices(t, inst, 4, 71)
	id, err := srv.Submit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(id); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Fatalf("adaptive C differs from in-process C by %g (want bitwise equal)", d)
	}

	st := srv.Status()
	if !st.Adaptive {
		t.Fatal("status does not report the adaptive mode")
	}
	sampled := 0
	for _, w := range st.Workers {
		if w.Samples > 0 {
			if w.EstC <= 0 || w.EstW < 0 {
				t.Fatalf("worker %s has samples but degenerate estimates: %+v", w.Addr, w)
			}
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("no worker carries measured estimates after a completed job")
	}
}

// TestFleetAddAfterStartup: a worker registered after the fleet came up is
// leasable — a job submitted to a one-worker fleet that has just grown to
// two can select (and use) the newcomer.
func TestFleetAddAfterStartup(t *testing.T) {
	addrs := startWorkers(t, 2, nil)
	fleet, err := NewFleet(addrs[:1], homSpecs(1), FleetOptions{Keepalive: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if got := fleet.Size(); got != 1 {
		t.Fatalf("fleet size %d, want 1", got)
	}
	i, err := fleet.Add(addrs[1], platform.Worker{C: 1, W: 1, M: 40})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 || fleet.Size() != 2 {
		t.Fatalf("Add returned %d, size %d", i, fleet.Size())
	}
	// Duplicate registration is rejected.
	if _, err := fleet.Add(addrs[1], platform.Worker{C: 1, W: 1, M: 40}); err == nil {
		t.Fatal("duplicate Add succeeded")
	}

	// The joined worker is immediately idle and leasable.
	idle := fleet.Idle()
	if len(idle) != 2 {
		t.Fatalf("idle = %v, want both workers", idle)
	}
	m, err := fleet.Lease([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Return([]int{1}, m, false)
}

// TestJoinFleetOverWire: the cJoin client frame registers a worker with a
// running daemon (the wire path behind mmworker -join) and a subsequent
// submission can run on the grown fleet.
func TestJoinFleetOverWire(t *testing.T) {
	addrs := startWorkers(t, 3, nil)
	fleet, err := NewFleet(addrs[:2], homSpecs(2), FleetOptions{Keepalive: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	srv := NewServer(fleet, Config{Adaptive: true})
	defer srv.Close()
	ln := startClientListener(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	i, err := JoinFleet(ctx, ln.Addr().String(), addrs[2], platform.Worker{C: 1, W: 1, M: 40})
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Fatalf("joined as index %d, want 2", i)
	}
	// A rejected duplicate surfaces as an error frame.
	if _, err := JoinFleet(ctx, ln.Addr().String(), addrs[2], platform.Worker{C: 1, W: 1, M: 40}); err == nil {
		t.Fatal("duplicate wire join succeeded")
	}

	inst := sched.Instance{R: 6, S: 9, T: 4}
	a, b, c, want := testMatrices(t, inst, 4, 72)
	out, _, err := SubmitProductContext(ctx, ln.Addr().String(), a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if d := out.MaxAbsDiff(want); d != 0 {
		t.Fatalf("C differs from in-process C by %g (want bitwise equal)", d)
	}
	if got := srv.Status(); len(got.Workers) != 3 {
		t.Fatalf("status shows %d workers after wire join, want 3", len(got.Workers))
	}
}

// TestAttachIdleWorkerToRunningJob: a worker that joins while a lease is
// running — and no job is queued — is attached to that lease mid-job, and
// the job still completes bitwise-identical.
func TestAttachIdleWorkerToRunningJob(t *testing.T) {
	// Worker 0 serves normally; worker 1 joins after the job started. The
	// job runs long enough to observe the attach because worker 0 stalls
	// briefly mid-job (live, heartbeating, just slow).
	addrs := startWorkers(t, 2, func(i int) mmnet.WorkerOptions {
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 0 {
			o.StallAfterInstalls, o.StallFor = 2, 2*time.Second
		}
		return o
	})
	fleet, err := NewFleet(addrs[:1], homSpecs(1), FleetOptions{Keepalive: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	srv := NewServer(fleet, Config{Adaptive: true})
	defer srv.Close()

	inst := sched.Instance{R: 8, S: 12, T: 4}
	a, b, c, want := testMatrices(t, inst, 4, 73)
	id, err := srv.Submit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, srv, id, "running")
	if _, err := srv.AddWorker(addrs[1], platform.Worker{C: 1, W: 1, M: 40}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(id); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Fatalf("C differs from in-process C by %g (want bitwise equal)", d)
	}
	// The worker joined the fleet; whether it reached this job's lease in
	// time is a race the runtime may legitimately lose, but the fleet must
	// know it either way and the job must have seen at most sane re-plans.
	st := srv.Status()
	if len(st.Workers) != 2 {
		t.Fatalf("status shows %d workers, want 2", len(st.Workers))
	}
	for _, js := range st.Jobs {
		if js.ID == id && len(js.Workers) > 1 {
			t.Logf("mid-job attach landed: lease %v, %d replans", js.Workers, js.Replans)
		}
	}
}
