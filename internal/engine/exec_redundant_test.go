package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/sim"
)

// stallBackend is a concurrency-safe in-process compute backend for the
// k-of-n gate tests: every worker computes installments for real (so results
// are bitwise-comparable against the plain executors), and a pluggable stall
// predicate freezes chosen units at their RecvC until the gate wire-cancels
// them through CancelUnit — the in-process stand-in for a live-but-stalled
// TCP worker.
type stallBackend struct {
	nw    int
	stall func(w int, ch matrix.Chunk) bool

	mu      sync.Mutex
	held    []map[matrix.Chunk][]*matrix.Block
	cancels []map[matrix.Chunk]chan struct{}
}

func newStallBackend(nw int, stall func(w int, ch matrix.Chunk) bool) *stallBackend {
	be := &stallBackend{nw: nw, stall: stall}
	be.held = make([]map[matrix.Chunk][]*matrix.Block, nw)
	be.cancels = make([]map[matrix.Chunk]chan struct{}, nw)
	for w := 0; w < nw; w++ {
		be.held[w] = make(map[matrix.Chunk][]*matrix.Block)
		be.cancels[w] = make(map[matrix.Chunk]chan struct{})
	}
	return be
}

func (be *stallBackend) Workers() int { return be.nw }

func (be *stallBackend) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	be.mu.Lock()
	defer be.mu.Unlock()
	if _, dup := be.held[w][ch]; dup {
		return fmt.Errorf("worker %d already holds chunk %v", w, ch)
	}
	be.held[w][ch] = blocks
	return nil
}

func (be *stallBackend) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	be.mu.Lock()
	blocks, ok := be.held[w][ch]
	be.mu.Unlock()
	if !ok {
		return fmt.Errorf("worker %d got inputs for %v it does not hold", w, ch)
	}
	return ApplyInstallment(ch, blocks, a, b, k1-k0)
}

func (be *stallBackend) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	be.mu.Lock()
	blocks, ok := be.held[w][ch]
	if !ok {
		be.mu.Unlock()
		return nil, fmt.Errorf("worker %d asked to flush %v it does not hold", w, ch)
	}
	if be.stall != nil && be.stall(w, ch) {
		cancel := make(chan struct{})
		be.cancels[w][ch] = cancel
		be.mu.Unlock()
		select {
		case <-cancel:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("worker %d stalled on %v and was never canceled", w, ch)
		}
		be.mu.Lock()
		delete(be.cancels[w], ch)
		delete(be.held[w], ch)
		be.mu.Unlock()
		return nil, fmt.Errorf("stalled unit dropped: %w", ErrUnitCanceled)
	}
	delete(be.held[w], ch)
	be.mu.Unlock()
	return blocks, nil
}

func (be *stallBackend) CancelUnit(w int, ch matrix.Chunk) {
	be.mu.Lock()
	defer be.mu.Unlock()
	if cancel, ok := be.cancels[w][ch]; ok {
		close(cancel)
	}
}

// planAndMatrices schedules inst with s and builds the operands plus a plain
// pipelined-run baseline C for bitwise comparison.
func planAndMatrices(t *testing.T, s sched.Scheduler, inst sched.Instance, q int, seed int64) (plan []sim.PlanOp, a, b, c, base *matrix.BlockMatrix) {
	t.Helper()
	res, err := s.Schedule(smallPlatform(), inst)
	if err != nil {
		t.Fatal(err)
	}
	plan = res.Plan()
	a, b, c, _ = buildMatrices(t, inst, q, seed)
	_, _, base, _ = buildMatrices(t, inst, q, seed)
	cfg := Config{Workers: smallPlatform().P(), T: inst.T, Pipelined: true}
	if err := RunContext(context.Background(), cfg, plan, a, b, base); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return plan, a, b, c, base
}

// TestRedundantNilRedMatchesPlainBitwise: a nil Redundancy must be exactly
// today's pipelined executor, byte for byte.
func TestRedundantNilRedMatchesPlainBitwise(t *testing.T) {
	inst := sched.Instance{R: 6, S: 9, T: 4}
	plan, a, b, c, base := planAndMatrices(t, sched.Het{}, inst, 3, 11)
	cfg := Config{Workers: smallPlatform().P(), T: inst.T, Pipelined: true}
	if err := RunRedundantContext(context.Background(), cfg, plan, a, b, c, nil); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(base); d != 0 {
		t.Fatalf("nil-red C differs from plain pipelined C by %g (want bitwise equal)", d)
	}
}

// TestRedundantEmptyUnitsMatchesPlainBitwise: the gate with no planned units
// (speculation armed but never needed on a healthy run) commits only
// systematic results, so C stays bitwise-identical.
func TestRedundantEmptyUnitsMatchesPlainBitwise(t *testing.T) {
	inst := sched.Instance{R: 6, S: 9, T: 4}
	plan, a, b, c, base := planAndMatrices(t, sched.Het{}, inst, 3, 12)
	cfg := Config{Workers: smallPlatform().P(), T: inst.T, Pipelined: true}
	red := &Redundancy{Mode: "replicated"}
	if err := RunRedundantContext(context.Background(), cfg, plan, a, b, c, red); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(base); d != 0 {
		t.Fatalf("gated C differs from plain pipelined C by %g (want bitwise equal)", d)
	}
}

// TestRedundantReplicasBitwiseAndArbitrated replicates every plan job onto
// another worker, so nearly every job produces a duplicate result the gate
// must arbitrate (first commit wins, laggard discarded). Run under -race this
// is the duplicate-result arbitration test; the result must stay bitwise
// equal to the plain run because every copy replays the identical snapshot
// and installment sequence.
func TestRedundantReplicasBitwiseAndArbitrated(t *testing.T) {
	inst := sched.Instance{R: 8, S: 12, T: 5}
	for _, s := range []sched.Scheduler{sched.Het{}, sched.Hom{}} {
		plan, a, b, c, base := planAndMatrices(t, s, inst, 3, 13)
		jobs, _, err := sim.JobsFromPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		nw := smallPlatform().P()
		red := &Redundancy{Mode: "replicated"}
		for ji, j := range jobs {
			red.Units = append(red.Units, RedundantUnit{Worker: (j.Worker + 1) % nw, Job: ji})
		}
		cfg := Config{Workers: nw, T: inst.T, Pipelined: true}
		if err := RunRedundantContext(context.Background(), cfg, plan, a, b, c, red); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if d := c.MaxAbsDiff(base); d != 0 {
			t.Fatalf("%s: replicated C differs from plain C by %g (want bitwise equal)", s.Name(), d)
		}
		st := red.Stats()
		if st.Units == 0 {
			t.Errorf("%s: no redundant units dispatched (stats %+v)", s.Name(), st)
		}
		if st.DuplicateWins > 0 && st.WastedBytes == 0 {
			t.Errorf("%s: duplicate wins recorded without wasted bytes (stats %+v)", s.Name(), st)
		}
	}
}

// TestRedundantAbsorbsStalledUnit freezes the first copy of one chosen job
// to reach its result — whichever worker carries it — for 30s ≫ the test
// budget, and expects the gate to commit that job through another copy
// (replica or speculation) and wire-cancel the stalled one: the straggler is
// absorbed with zero timeout waiting, and C stays bitwise-identical because
// every committed result is systematic.
func TestRedundantAbsorbsStalledUnit(t *testing.T) {
	inst := sched.Instance{R: 8, S: 12, T: 5}
	plan, a, b, c, base := planAndMatrices(t, sched.Het{}, inst, 3, 14)
	jobs, _, err := sim.JobsFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	nw := smallPlatform().P()
	red := &Redundancy{Mode: "replicated"}
	for ji, j := range jobs {
		red.Units = append(red.Units, RedundantUnit{Worker: (j.Worker + 1) % nw, Job: ji})
	}
	victim := jobs[0].Chunk
	var mu sync.Mutex
	engaged := false
	be := newStallBackend(nw, func(w int, ch matrix.Chunk) bool {
		mu.Lock()
		defer mu.Unlock()
		if ch == victim && !engaged {
			engaged = true
			return true
		}
		return false
	})
	start := time.Now()
	if err := ExecuteRedundantContext(context.Background(), inst.T, plan, a, b, c, be, red); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("run took %v; the stalled unit was waited out instead of absorbed", elapsed)
	}
	if d := c.MaxAbsDiff(base); d != 0 {
		t.Fatalf("C differs from plain run by %g (want bitwise equal: every commit is systematic)", d)
	}
	st := red.Stats()
	if st.Absorbed == 0 {
		t.Errorf("stalled unit was never recorded as absorbed (stats %+v)", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if !engaged {
		t.Fatal("stall never engaged; the test exercised nothing")
	}
}

// TestRedundantValidationRejectsBadUnits: malformed redundancy must fail
// before any dispatch.
func TestRedundantValidationRejectsBadUnits(t *testing.T) {
	inst := sched.Instance{R: 6, S: 9, T: 4}
	plan, a, b, c, _ := planAndMatrices(t, sched.Het{}, inst, 3, 15)
	cfg := Config{Workers: smallPlatform().P(), T: inst.T, Pipelined: true}
	for name, units := range map[string][]RedundantUnit{
		"worker out of range": {{Worker: 99, Job: 0}},
		"job out of range":    {{Worker: 0, Job: 9999}},
		"negative worker":     {{Worker: -1, Job: 0}},
	} {
		red := &Redundancy{Mode: "replicated", Units: units}
		if err := RunRedundantContext(context.Background(), cfg, plan, a, b, c, red); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
