package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrUnitCanceled marks a dispatched unit abandoned on purpose by the k-of-n
// gate: the job's result already landed from another copy (or a parity
// decode), so the unit's worker was told to drop it. The redundant executor
// treats it as absorbed straggler time, not as a failure. A backend may
// additionally wrap ErrWorkerDown when the cancel handshake had to retire the
// link (a stalled worker never answers the cancel).
var ErrUnitCanceled = errors.New("unit canceled")

// UnitCanceler is optionally implemented by Backends that can ask a worker to
// abandon the unit it has in flight (internal/net's Master, via the
// wire-level cancel handshake). Without it the gate still arbitrates
// duplicate results; laggard units simply run to completion and are
// discarded.
type UnitCanceler interface {
	// CancelUnit requests that worker w abandon chunk ch. Best-effort and
	// non-blocking: the outcome surfaces on the unit's own dispatch path as
	// ErrUnitCanceled (possibly also wrapping ErrWorkerDown), as a duplicate
	// result, or not at all.
	CancelUnit(w int, ch matrix.Chunk)
}

// RawSender is optionally implemented by Backends that address installments
// by content digest (internal/net's Master during a panel-cache epoch).
// Parity units carry pre-encoded payloads under borrowed chunk coordinates,
// so their sends must bypass digest addressing and their results must not
// promote panel residency.
type RawSender interface {
	SendABRaw(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error
	RecvCRaw(w int, ch matrix.Chunk) ([]*matrix.Block, error)
}

// ReconstructFunc solves one parity group for its missing members. members
// holds the group's committed chunk results by slot (nil where missing; the
// blocks are read-only views into C). Each received parity contributes one
// coefficient row (its per-member encoding coefficients, slot order) and its
// result blocks. It returns freshly allocated blocks per recovered slot, or
// ok=false when the system is still underdetermined. internal/coded installs
// the MDS solver here; the engine stays free of coding theory.
type ReconstructFunc func(members [][]*matrix.Block, coeffs [][]float64, parities [][]*matrix.Block) (map[int][]*matrix.Block, bool)

// RedundantUnit is one planned unit of extra work beyond the plan's own jobs.
// Job ≥ 0 replicates that plan job verbatim on Worker. Job < 0 is a parity
// unit: the worker runs an ordinary chunk job whose C seed and A panels were
// pre-encoded (at plan time, from the initial C) as the coefficient-weighted
// sum of the group members' payloads, under the borrowed chunk coordinates of
// the first member — B panels are shared by construction, so the returned
// "chunk" equals the same weighted sum of the members' true results.
type RedundantUnit struct {
	Worker int
	Job    int // ≥ 0: replica of that plan job; < 0: parity unit

	// Parity-only fields.
	Group   int               // parity group id; all units of a group share Members
	Members []int             // plan job indices the parity spans
	Coeffs  []float64         // per-member encoding coefficients, Members order
	Chunk   matrix.Chunk      // borrowed geometry (the first member's chunk)
	Panels  [][2]int          // installment schedule, identical to the members'
	CSeed   []*matrix.Block   // pre-encoded C payload, row-major over Chunk
	ASeeds  [][]*matrix.Block // pre-encoded A panels per installment
}

// RedundancyStats counts what the k-of-n gate did during a run.
type RedundancyStats struct {
	Units         int64 // redundant units dispatched (replicas, parities, speculative copies)
	DuplicateWins int64 // results discarded because the job had already committed
	WastedBytes   int64 // wire-size bytes of those discarded results
	Decodes       int64 // chunk results reconstructed from parity
	Absorbed      int64 // in-flight units wire-cancelled after their job completed elsewhere
	Speculative   int64 // of Units, copies claimed dynamically by idle workers
}

// Redundancy configures ExecuteRedundantContext and collects its stats.
// Units carries the planned redundancy (internal/coded builds it from adapt
// estimates); an empty Units still enables the gate's dynamic speculation,
// which is what absorbs a straggler no placement predicted.
type Redundancy struct {
	Mode  string // "replicated" or "coded"; informational
	Units []RedundantUnit
	// Reconstruct decodes parity groups; required for parity units to be
	// usable (internal/coded always sets it).
	Reconstruct ReconstructFunc
	// SpeculationLimit caps the concurrent copies of one job claimed through
	// the gate (planned replicas and the dynamic idle-worker speculation;
	// the primary dispatch is exempt). ≤ 0 means 2: a primary plus one
	// backup, the classic speculative-execution bound.
	SpeculationLimit int

	mu sync.Mutex
	st RedundancyStats
}

// Stats returns a snapshot of the run's redundancy counters; valid during
// and after execution.
func (r *Redundancy) Stats() RedundancyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

func (r *Redundancy) bump(f func(*RedundancyStats)) {
	r.mu.Lock()
	f(&r.st)
	r.mu.Unlock()
}

func (r *Redundancy) limit() int {
	if r.SpeculationLimit > 0 {
		return r.SpeculationLimit
	}
	return 2
}

// parityRes is one received parity result, held until its group decodes.
type parityRes struct {
	coeffs []float64
	blocks []*matrix.Block
}

// groupState tracks one parity group's membership and received parities.
type groupState struct {
	members []int
	results []parityRes
}

// flight is one in-flight dispatch (primary, replica, parity, or speculative
// copy), tracked so commits can wire-cancel the laggard copies.
type flight struct {
	w        int
	job      int // < 0 for parity
	ch       matrix.Chunk
	t0       time.Time
	canceled bool
}

// kofnGate is the redundant executor's shared state: which jobs have
// committed, what is in flight, and the parity results waiting to decode.
// One mutex orders every C access (snapshot staging, result commit, decode
// reads), which is what lets several copies of one job coexist safely.
type kofnGate struct {
	mu   sync.Mutex
	cond *sync.Cond

	jobs      []sim.PlanJob
	committed []bool
	pending   int
	copies    []int // concurrent gate-claimed copies per job (primaries exempt)
	flights   map[int]*flight
	nextID    int
	groups    map[int]*groupState
	jobGroups map[int][]int // job index → groups containing it
	alive     []bool

	firstErr error
	aborted  bool

	c   *matrix.BlockMatrix
	red *Redundancy
	uc  UnitCanceler
}

func (g *kofnGate) fail(err error) {
	g.mu.Lock()
	if g.firstErr == nil {
		g.firstErr = err
	}
	g.aborted = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *kofnGate) getErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// open registers a dispatch and returns its flight handle. Caller holds g.mu.
func (g *kofnGate) openLocked(w, job int, ch matrix.Chunk) (int, *flight) {
	id := g.nextID
	g.nextID++
	fl := &flight{w: w, job: job, ch: ch, t0: time.Now()}
	g.flights[id] = fl
	return id, fl
}

// close unregisters a dispatch. Caller holds g.mu; broadcast follows because
// parked speculators key off the in-flight set.
func (g *kofnGate) closeLocked(id int, countedCopy bool) {
	fl := g.flights[id]
	delete(g.flights, id)
	if countedCopy && fl != nil && fl.job >= 0 {
		g.copies[fl.job]--
	}
	g.cond.Broadcast()
}

// cancelLosersLocked wire-cancels every in-flight copy whose outcome can no
// longer matter: copies of committed jobs, and parity units whose group is
// fully committed. Caller holds g.mu.
func (g *kofnGate) cancelLosersLocked() {
	for _, fl := range g.flights {
		if fl.canceled {
			continue
		}
		// Replicas lose when their job commits; parity flights only once
		// everything committed (a parity that lands while other groups are
		// still open is at worst a duplicate win).
		var lost bool
		if fl.job >= 0 {
			lost = g.committed[fl.job]
		} else {
			lost = g.pending == 0
		}
		if lost {
			fl.canceled = true
			if g.uc != nil {
				g.uc.CancelUnit(fl.w, fl.ch)
			}
		}
	}
}

// commitJobLocked lands one job result: first copy wins and is written into
// C, later copies are counted as duplicate wins and dropped. Caller holds
// g.mu. Returns a fatal error only on a malformed result.
func (g *kofnGate) commitJobLocked(ji int, blocks []*matrix.Block) error {
	if g.committed[ji] {
		g.red.bump(func(st *RedundancyStats) {
			st.DuplicateWins++
			st.WastedBytes += wireBytes(blocks)
		})
		mDuplicateWins.Inc()
		mWastedBytes.Add(wireBytes(blocks))
		return nil
	}
	if err := writeChunk(g.c, g.jobs[ji].Chunk, blocks); err != nil {
		return err
	}
	g.committed[ji] = true
	g.pending--
	g.cancelLosersLocked()
	g.tryDecodeJobGroupsLocked(ji)
	g.cond.Broadcast()
	return nil
}

// commitParityLocked stores one parity result and attempts its group decode.
// Caller holds g.mu.
func (g *kofnGate) commitParityLocked(ru *RedundantUnit, blocks []*matrix.Block) error {
	gs := g.groups[ru.Group]
	missing := g.missingLocked(gs)
	if len(missing) == 0 {
		g.red.bump(func(st *RedundancyStats) {
			st.DuplicateWins++
			st.WastedBytes += wireBytes(blocks)
		})
		mDuplicateWins.Inc()
		mWastedBytes.Add(wireBytes(blocks))
		return nil
	}
	gs.results = append(gs.results, parityRes{coeffs: ru.Coeffs, blocks: blocks})
	return g.tryDecodeLocked(ru.Group)
}

func (g *kofnGate) missingLocked(gs *groupState) []int {
	var out []int
	for s, ji := range gs.members {
		if !g.committed[ji] {
			out = append(out, s)
		}
	}
	return out
}

// tryDecodeAllLocked sweeps every parity group; the per-group saturation
// guard in tryDecodeLocked keeps this cheap and conservative. Caller holds
// g.mu.
func (g *kofnGate) tryDecodeAllLocked() {
	for gid := range g.groups {
		if err := g.tryDecodeLocked(gid); err != nil && g.firstErr == nil {
			g.firstErr = err
			g.aborted = true
		}
	}
}

func (g *kofnGate) tryDecodeJobGroupsLocked(ji int) {
	for _, gid := range g.jobGroups[ji] {
		if err := g.tryDecodeLocked(gid); err != nil && g.firstErr == nil {
			g.firstErr = err
			g.aborted = true
		}
	}
}

// tryDecodeLocked reconstructs a group's uncommitted members once enough
// parity results have arrived, committing each recovery exactly as a job
// result. Caller holds g.mu.
func (g *kofnGate) tryDecodeLocked(gid int) error {
	if g.red.Reconstruct == nil {
		return nil
	}
	gs := g.groups[gid]
	missing := g.missingLocked(gs)
	if len(missing) == 0 || len(gs.results) < len(missing) {
		return nil
	}
	// Decode is strictly a last resort: only reconstruct members whose
	// systematic avenue is exhausted — the speculative copy cap reached by
	// copies that are still in flight (stalled stragglers hold their slots).
	// A member that can still be claimed keeps its chance to land verbatim,
	// which is what keeps straggler-free runs bitwise-identical.
	for _, s := range missing {
		if g.copies[gs.members[s]] < g.red.limit() {
			return nil
		}
	}
	members := make([][]*matrix.Block, len(gs.members))
	for s, ji := range gs.members {
		if g.committed[ji] {
			members[s] = chunkView(g.c, g.jobs[ji].Chunk)
		}
	}
	coeffs := make([][]float64, len(gs.results))
	parities := make([][]*matrix.Block, len(gs.results))
	for i, res := range gs.results {
		coeffs[i] = res.coeffs
		parities[i] = res.blocks
	}
	recovered, ok := g.red.Reconstruct(members, coeffs, parities)
	if !ok {
		return nil
	}
	for slot, blocks := range recovered {
		if slot < 0 || slot >= len(gs.members) {
			return fmt.Errorf("engine: parity decode of group %d produced slot %d of %d", gid, slot, len(gs.members))
		}
		ji := gs.members[slot]
		if g.committed[ji] {
			continue
		}
		if err := writeChunk(g.c, g.jobs[ji].Chunk, blocks); err != nil {
			return err
		}
		g.committed[ji] = true
		g.pending--
		g.red.bump(func(st *RedundancyStats) { st.Decodes++ })
		mDecodes.Inc()
	}
	g.cancelLosersLocked()
	g.cond.Broadcast()
	return nil
}

// chunkView collects read-only pointers to chunk ch's blocks in C, row-major.
func chunkView(c *matrix.BlockMatrix, ch matrix.Chunk) []*matrix.Block {
	out := make([]*matrix.Block, 0, ch.Blocks())
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			out = append(out, c.Block(i, j))
		}
	}
	return out
}

func wireBytes(blocks []*matrix.Block) int64 {
	if len(blocks) == 0 {
		return 0
	}
	return int64(len(blocks)) * int64(matrix.BlockWireSize(blocks[0].Q))
}

// cloneBlocks deep-copies a block list (retaining backends mutate the chunk
// payload they are handed, and pre-encoded seeds must survive re-dispatch).
func cloneBlocks(blocks []*matrix.Block) []*matrix.Block {
	out := make([]*matrix.Block, len(blocks))
	for i, blk := range blocks {
		out[i] = blk.Clone()
	}
	return out
}

// ExecuteRedundantContext executes plan through be under a k-of-n completion
// gate: beyond the plan's own (systematic) jobs it dispatches red.Units —
// replicas and MDS parity units placed at plan time — and lets idle workers
// claim speculative copies of whatever is still pending, so the run completes
// as soon as *any* k of the n dispatched units land (parity decode standing
// in for missing members). The first result of a job wins; laggard copies are
// wire-cancelled when the backend supports it and their late results are
// discarded as duplicate wins. C is bitwise-identical to Execute's whenever
// every committed result came from a systematic unit (replicas replay the
// identical snapshot and installment sequence), which is every straggler-free
// run and every replicated-mode recovery; only a parity decode substitutes
// reconstructed floating-point values, within solver tolerance.
//
// A nil red (or one with no units and speculation disabled by a 1 limit with
// no redundancy to place) still runs correctly — with red == nil this is
// exactly ExecutePipelinedContext.
func ExecuteRedundantContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend, red *Redundancy) error {
	if red == nil {
		return ExecutePipelinedContext(ctx, t, plan, a, b, c, be)
	}
	jobs, _, err := validatePlan(t, plan, a, b, c, be)
	if err != nil {
		return err
	}
	if err := checkChunksDisjoint(jobs, c.Rows, c.Cols); err != nil {
		return err
	}
	nw := be.Workers()
	if err := validateRedundancy(red, jobs, nw, t, c); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return abortErr(ctx, nil)
	}

	// Materialize every A/B block any unit touches before dispatch goroutines
	// gather them concurrently (as the pipelined executor does), parity units'
	// B panels included.
	for _, j := range jobs {
		materializePanels(a, b, j.Chunk, j.Panels)
	}
	for i := range red.Units {
		ru := &red.Units[i]
		if ru.Job < 0 {
			materializePanels(nil, b, ru.Chunk, ru.Panels)
		}
	}

	g := &kofnGate{
		jobs:      jobs,
		committed: make([]bool, len(jobs)),
		pending:   len(jobs),
		copies:    make([]int, len(jobs)),
		flights:   make(map[int]*flight),
		groups:    make(map[int]*groupState),
		jobGroups: make(map[int][]int),
		alive:     make([]bool, nw),
		c:         c,
		red:       red,
	}
	g.cond = sync.NewCond(&g.mu)
	g.uc, _ = be.(UnitCanceler)
	raw, _ := be.(RawSender)
	for w := range g.alive {
		g.alive[w] = true
	}
	for i := range red.Units {
		ru := &red.Units[i]
		if ru.Job >= 0 {
			continue
		}
		gs := g.groups[ru.Group]
		if gs == nil {
			gs = &groupState{members: ru.Members}
			g.groups[ru.Group] = gs
			for _, ji := range ru.Members {
				g.jobGroups[ji] = append(g.jobGroups[ji], ru.Group)
			}
		}
	}

	stopWatch := context.AfterFunc(ctx, func() { g.fail(ctx.Err()) })
	defer stopWatch()
	rec := trace.FromContext(ctx)

	// Static queues: each worker's plan jobs in plan order (the systematic
	// path runs first), then its planned redundant units.
	type unit struct {
		job int
		ru  *RedundantUnit
	}
	queues := make([][]unit, nw)
	for ji, j := range jobs {
		queues[j.Worker] = append(queues[j.Worker], unit{job: ji})
	}
	for i := range red.Units {
		ru := &red.Units[i]
		queues[ru.Worker] = append(queues[ru.Worker], unit{job: ru.Job, ru: ru})
	}

	// dispatch runs one unit end to end and commits its result through the
	// gate. It returns false when this worker's link is gone and the goroutine
	// must stop.
	dispatch := func(w int, u unit, st *stager) bool {
		// Stage the C payload under the gate lock: a snapshot must never
		// observe a half-committed chunk region, and the skip decision must be
		// atomic with the commits it reads.
		g.mu.Lock()
		if g.aborted || g.pending == 0 {
			g.mu.Unlock()
			return false
		}
		var cBlocks []*matrix.Block
		countedCopy := false
		switch {
		case u.ru == nil: // primary: always runs, exempt from the copy cap
			if g.committed[u.job] {
				g.mu.Unlock()
				return true
			}
			cBlocks = st.stageChunk(c, jobs[u.job].Chunk)
		case u.ru.Job >= 0: // planned replica
			if g.committed[u.job] || g.copies[u.job]+1 >= g.red.limit()+1 {
				g.mu.Unlock()
				return true
			}
			g.copies[u.job]++
			countedCopy = true
			g.red.bump(func(st *RedundancyStats) { st.Units++ })
			mRedundantUnits.Inc()
			cBlocks = st.stageChunk(c, jobs[u.job].Chunk)
		default: // parity
			if len(g.missingLocked(g.groups[u.ru.Group])) == 0 {
				g.mu.Unlock()
				return true
			}
			g.red.bump(func(st *RedundancyStats) { st.Units++ })
			mRedundantUnits.Inc()
			cBlocks = u.ru.CSeed
			if !st.copies {
				cBlocks = cloneBlocks(cBlocks)
			}
		}
		var ch matrix.Chunk
		if u.ru != nil && u.ru.Job < 0 {
			ch = u.ru.Chunk
		} else {
			ch = jobs[u.job].Chunk
		}
		id, fl := g.openLocked(w, u.job, ch)
		g.mu.Unlock()

		var blocks []*matrix.Block
		var runErr error
		if u.ru != nil && u.ru.Job < 0 {
			blocks, runErr = runParityUnit(be, raw, w, u.ru, b, st, cBlocks)
		} else {
			blocks, runErr = runUnitJob(be, w, jobs[u.job], a, b, st, cBlocks)
		}

		g.mu.Lock()
		canceled := fl.canceled
		g.closeLocked(id, countedCopy)
		if runErr != nil {
			g.mu.Unlock()
			if canceled || errors.Is(runErr, ErrUnitCanceled) {
				// Absorbed straggler (or laggard): record how long the unit
				// had been in flight when the gate gave up on it.
				d := time.Since(fl.t0)
				g.red.bump(func(st *RedundancyStats) { st.Absorbed++ })
				hStragglerAbsorbed.Observe(d)
				if errors.Is(runErr, ErrWorkerDown) {
					g.mu.Lock()
					g.alive[w] = false
					g.mu.Unlock()
					g.cond.Broadcast()
					return false
				}
				return true // clean cancel handshake: the link survived
			}
			if errors.Is(runErr, ErrWorkerDown) && ctx.Err() == nil {
				mFailovers.Inc()
				g.mu.Lock()
				g.alive[w] = false
				g.mu.Unlock()
				g.cond.Broadcast()
				return false
			}
			g.fail(runErr)
			return false
		}
		var commitErr error
		if u.ru != nil && u.ru.Job < 0 {
			commitErr = g.commitParityLocked(u.ru, blocks)
		} else {
			commitErr = g.commitJobLocked(u.job, blocks)
		}
		if commitErr != nil && g.firstErr == nil {
			g.firstErr = commitErr
			g.aborted = true
			g.cond.Broadcast()
		}
		g.mu.Unlock()
		return commitErr == nil
	}

	// claim picks the next speculative copy for an idle worker: the pending
	// job with the fewest live copies (lowest index on ties, for determinism),
	// subject to the copy cap. It parks on the gate's cond until something is
	// claimable or the run is over, and returns -1 when this worker is done.
	claim := func(w int) int {
		g.mu.Lock()
		defer g.mu.Unlock()
		for {
			if g.aborted || g.pending == 0 || !g.alive[w] {
				return -1
			}
			best, bestCopies := -1, 0
			for ji := range jobs {
				if g.committed[ji] || g.copies[ji]+1 > g.red.limit() {
					continue
				}
				if best == -1 || g.copies[ji] < bestCopies {
					best, bestCopies = ji, g.copies[ji]
				}
			}
			if best >= 0 {
				g.copies[best]++
				g.red.bump(func(st *RedundancyStats) { st.Units++; st.Speculative++ })
				mRedundantUnits.Inc()
				if g.copies[best] >= g.red.limit() {
					// This claim saturated the job's copy cap: if every copy
					// stalls, no future claim will rescue it, so this is the
					// moment parity decode becomes eligible.
					g.tryDecodeAllLocked()
				}
				return best
			}
			// Nothing claimable means every pending job is at its copy cap:
			// decode is now the only way forward for whatever a parity can
			// cover. Only park if that made no progress.
			before := g.pending
			g.tryDecodeAllLocked()
			if g.pending != before || g.aborted {
				continue
			}
			if len(g.flights) == 0 {
				return -1 // nothing running, nothing claimable: wave is over
			}
			g.cond.Wait()
		}
	}

	runWave := func(qs [][]unit) {
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			g.mu.Lock()
			liveW := g.alive[w]
			g.mu.Unlock()
			if !liveW {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := newStager(be)
				st.rec = rec
				for _, u := range qs[w] {
					if !dispatch(w, u, st) {
						return
					}
				}
				// Speculative phase: keep claiming copies of pending jobs
				// until everything committed. The claim is opened (copy
				// counted) inside claim; dispatch recognizes the pre-counted
				// claim through a synthetic replica unit.
				for {
					ji := claim(w)
					if ji < 0 {
						return
					}
					ok := func() bool {
						g.mu.Lock()
						if g.aborted || g.committed[ji] {
							g.copies[ji]--
							g.mu.Unlock()
							g.cond.Broadcast()
							return !g.aborted
						}
						cBlocks := st.stageChunk(c, jobs[ji].Chunk)
						id, fl := g.openLocked(w, ji, jobs[ji].Chunk)
						g.mu.Unlock()
						blocks, runErr := runUnitJob(be, w, jobs[ji], a, b, st, cBlocks)
						g.mu.Lock()
						canceled := fl.canceled
						g.closeLocked(id, true)
						if runErr != nil {
							g.mu.Unlock()
							if canceled || errors.Is(runErr, ErrUnitCanceled) {
								d := time.Since(fl.t0)
								g.red.bump(func(st *RedundancyStats) { st.Absorbed++ })
								hStragglerAbsorbed.Observe(d)
								if errors.Is(runErr, ErrWorkerDown) {
									g.mu.Lock()
									g.alive[w] = false
									g.mu.Unlock()
									g.cond.Broadcast()
									return false
								}
								return true
							}
							if errors.Is(runErr, ErrWorkerDown) && ctx.Err() == nil {
								mFailovers.Inc()
								g.mu.Lock()
								g.alive[w] = false
								g.mu.Unlock()
								g.cond.Broadcast()
								return false
							}
							g.fail(runErr)
							return false
						}
						if err := g.commitJobLocked(ji, blocks); err != nil && g.firstErr == nil {
							g.firstErr = err
							g.aborted = true
							g.cond.Broadcast()
						}
						live := g.firstErr == nil
						g.mu.Unlock()
						return live
					}()
					if !ok {
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	runWave(queues)

	// Replay loop: speculation means the first wave normally drains
	// everything, so this only fires when workers died faster than copies
	// could land. Reassign the uncommitted jobs round-robin over survivors
	// (as plain primaries — the gate keeps arbitrating) until done or empty.
	for g.getErr() == nil {
		g.mu.Lock()
		pending := g.pending
		var survivors []int
		for w := 0; w < nw; w++ {
			if g.alive[w] {
				survivors = append(survivors, w)
			}
		}
		var left []int
		for ji := range jobs {
			if !g.committed[ji] {
				left = append(left, ji)
			}
		}
		g.mu.Unlock()
		if pending == 0 {
			break
		}
		if len(survivors) == 0 {
			return abortErr(ctx, fmt.Errorf("engine: no workers left to replay chunk %v: %w", jobs[left[0]].Chunk, ErrWorkerDown))
		}
		assign := make([][]unit, nw)
		for i, ji := range left {
			w := survivors[i%len(survivors)]
			assign[w] = append(assign[w], unit{job: ji})
		}
		mReplays.Add(int64(len(left)))
		runWave(assign)
	}
	return abortErr(ctx, g.getErr())
}

// runUnitJob is runJob with the chunk snapshot staged by the caller (under
// the gate lock) and the result returned instead of written — commits go
// through the gate.
func runUnitJob(be Backend, w int, j sim.PlanJob, a, b *matrix.BlockMatrix, st *stager, cBlocks []*matrix.Block) ([]*matrix.Block, error) {
	mChunks.Inc()
	t0 := time.Now()
	err := be.SendC(w, j.Chunk, cBlocks)
	if err == nil {
		st.observe(w, trace.SendC, j.Chunk.Blocks(), t0, time.Now())
	}
	st.releaseChunk(cBlocks)
	if err != nil {
		return nil, err
	}
	for _, p := range j.Panels {
		am, bm := st.stagePanels(a, b, j.Chunk, p[0], p[1])
		t0 = time.Now()
		if err := be.SendAB(w, j.Chunk, p[0], p[1], am, bm); err != nil {
			return nil, err
		}
		st.observe(w, trace.SendAB, len(am)+len(bm), t0, time.Now())
	}
	t0 = time.Now()
	result, err := be.RecvC(w, j.Chunk)
	if err != nil {
		return nil, err
	}
	st.observe(w, trace.RecvC, j.Chunk.Blocks(), t0, time.Now())
	return result, nil
}

// runParityUnit runs a parity unit's chunk job: the pre-encoded C seed
// (already cloned for retaining backends), the pre-encoded A panels, and the
// group's shared B panels, all under the unit's borrowed chunk coordinates.
// Digest-addressed transports are bypassed through raw when available.
func runParityUnit(be Backend, raw RawSender, w int, ru *RedundantUnit, b *matrix.BlockMatrix, st *stager, cBlocks []*matrix.Block) ([]*matrix.Block, error) {
	mChunks.Inc()
	ch := ru.Chunk
	t0 := time.Now()
	err := be.SendC(w, ch, cBlocks)
	if err == nil {
		st.observe(w, trace.SendC, ch.Blocks(), t0, time.Now())
	}
	if err != nil {
		return nil, err
	}
	for pi, p := range ru.Panels {
		am := ru.ASeeds[pi]
		bm := gatherBPanels(b, ch, p[0], p[1])
		t0 = time.Now()
		if raw != nil {
			err = raw.SendABRaw(w, ch, p[0], p[1], am, bm)
		} else {
			err = be.SendAB(w, ch, p[0], p[1], am, bm)
		}
		if err != nil {
			return nil, err
		}
		st.observe(w, trace.SendAB, len(am)+len(bm), t0, time.Now())
	}
	t0 = time.Now()
	var result []*matrix.Block
	if raw != nil {
		result, err = raw.RecvCRaw(w, ch)
	} else {
		result, err = be.RecvC(w, ch)
	}
	if err != nil {
		return nil, err
	}
	st.observe(w, trace.RecvC, ch.Blocks(), t0, time.Now())
	return result, nil
}

// gatherBPanels collects the B panels of installment [k0, k1) for chunk ch
// ((k1-k0)×ch.W, row-major) — the A side of a parity unit is pre-encoded.
func gatherBPanels(b *matrix.BlockMatrix, ch matrix.Chunk, k0, k1 int) []*matrix.Block {
	out := make([]*matrix.Block, 0, (k1-k0)*ch.W)
	for k := k0; k < k1; k++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			out = append(out, b.Block(k, j))
		}
	}
	return out
}

// materializePanels forces allocation of the A/B blocks chunk ch's
// installments touch (either matrix may be nil to skip its side).
func materializePanels(a, b *matrix.BlockMatrix, ch matrix.Chunk, panels [][2]int) {
	for _, p := range panels {
		if a != nil {
			for i := ch.Row0; i < ch.Row0+ch.H; i++ {
				for k := p[0]; k < p[1]; k++ {
					a.Block(i, k)
				}
			}
		}
		if b != nil {
			for k := p[0]; k < p[1]; k++ {
				for j := ch.Col0; j < ch.Col0+ch.W; j++ {
					b.Block(k, j)
				}
			}
		}
	}
}

// validateRedundancy checks red.Units against the validated plan: worker and
// job ranges, and for parity units the full payload geometry — group
// consistency, member compatibility (same chunk shape, B columns, and
// installment schedule, which is what makes the weighted-sum algebra hold),
// and pre-encoded seed shapes.
func validateRedundancy(red *Redundancy, jobs []sim.PlanJob, nw, t int, c *matrix.BlockMatrix) error {
	groupMembers := make(map[int][]int)
	for i := range red.Units {
		ru := &red.Units[i]
		if ru.Worker < 0 || ru.Worker >= nw {
			return fmt.Errorf("engine: redundant unit %d references worker %d of %d", i, ru.Worker, nw)
		}
		if ru.Job >= 0 {
			if ru.Job >= len(jobs) {
				return fmt.Errorf("engine: redundant unit %d replicates job %d of %d", i, ru.Job, len(jobs))
			}
			continue
		}
		if len(ru.Members) == 0 || len(ru.Coeffs) != len(ru.Members) {
			return fmt.Errorf("engine: parity unit %d has %d members, %d coefficients", i, len(ru.Members), len(ru.Coeffs))
		}
		if prev, ok := groupMembers[ru.Group]; ok {
			if len(prev) != len(ru.Members) {
				return fmt.Errorf("engine: parity group %d has inconsistent member sets", ru.Group)
			}
			for s := range prev {
				if prev[s] != ru.Members[s] {
					return fmt.Errorf("engine: parity group %d has inconsistent member sets", ru.Group)
				}
			}
		} else {
			groupMembers[ru.Group] = ru.Members
		}
		if !ru.Chunk.Valid(c.Rows, c.Cols) {
			return fmt.Errorf("engine: parity unit %d chunk %v outside C (%dx%d)", i, ru.Chunk, c.Rows, c.Cols)
		}
		if len(ru.CSeed) != ru.Chunk.Blocks() {
			return fmt.Errorf("engine: parity unit %d seeds %d blocks for chunk %v", i, len(ru.CSeed), ru.Chunk)
		}
		if len(ru.ASeeds) != len(ru.Panels) {
			return fmt.Errorf("engine: parity unit %d has %d A seeds for %d installments", i, len(ru.ASeeds), len(ru.Panels))
		}
		for pi, p := range ru.Panels {
			if p[0] < 0 || p[1] > t || p[0] >= p[1] {
				return fmt.Errorf("engine: parity unit %d installment panels [%d,%d) outside t=%d", i, p[0], p[1], t)
			}
			if len(ru.ASeeds[pi]) != ru.Chunk.H*(p[1]-p[0]) {
				return fmt.Errorf("engine: parity unit %d installment %d seeds %d A blocks, want %d", i, pi, len(ru.ASeeds[pi]), ru.Chunk.H*(p[1]-p[0]))
			}
		}
		for s, ji := range ru.Members {
			if ji < 0 || ji >= len(jobs) {
				return fmt.Errorf("engine: parity unit %d member %d references job %d of %d", i, s, ji, len(jobs))
			}
			mc := jobs[ji].Chunk
			if mc.H != ru.Chunk.H || mc.W != ru.Chunk.W || mc.Col0 != ru.Chunk.Col0 {
				return fmt.Errorf("engine: parity unit %d member job %d chunk %v incompatible with parity chunk %v", i, ji, mc, ru.Chunk)
			}
			if len(jobs[ji].Panels) != len(ru.Panels) {
				return fmt.Errorf("engine: parity unit %d member job %d installment schedule differs", i, ji)
			}
			for pi, p := range jobs[ji].Panels {
				if p != ru.Panels[pi] {
					return fmt.Errorf("engine: parity unit %d member job %d installment schedule differs", i, ji)
				}
			}
		}
	}
	return nil
}
