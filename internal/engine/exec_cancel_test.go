package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sched"
)

// TestRunContextCancelBoundedUnderPacing is the facade's promptness
// guarantee at the engine layer: with transfers paced slowly enough that the
// full plan would take many seconds of modeled wall-clock time, cancelling
// the context must return well before the plan could have finished — the
// paced sleep in flight is interrupted, not waited out.
func TestRunContextCancelBoundedUnderPacing(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		inst := sched.Instance{R: 8, S: 16, T: 6}
		pl := platform.Homogeneous(4, 1, 1, 60)
		res, err := sched.Het{}.Schedule(pl, inst)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c, _ := buildMatrices(t, inst, 8, 5)

		// ~1ms per block×unit: the Het plan moves hundreds of block-units,
		// so an uncancelled run would pace for well over a second.
		cfg := Config{
			Workers: pl.P(), T: inst.T, Platform: pl, TimePerUnit: time.Millisecond,
			Pipelined: pipelined, OnePort: pipelined,
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		err = RunContext(ctx, cfg, res.Plan(), a, b, c)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("pipelined=%v: cancelled run returned nil", pipelined)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pipelined=%v: cancelled run returned %v, want context.Canceled in the chain", pipelined, err)
		}
		// Bounded by one in-flight paced slot per dispatch path plus
		// scheduling noise — far below the seconds a full run paces for.
		if elapsed > 2*time.Second {
			t.Fatalf("pipelined=%v: cancelled run took %v, want prompt return", pipelined, elapsed)
		}
	}
}

// TestRunContextBackgroundUnchanged pins the compatibility contract of the
// shims: Run (background context) still completes and verifies.
func TestRunContextBackgroundUnchanged(t *testing.T) {
	inst := sched.Instance{R: 4, S: 6, T: 3}
	pl := smallPlatform()
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, want := buildMatrices(t, inst, 4, 9)
	if err := Run(Config{Workers: pl.P(), T: inst.T, Pipelined: true}, res.Plan(), a, b, c); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("C deviates from reference by %g", d)
	}
}

// TestExecuteContextPreCancelled: a context cancelled before the first
// operation fails both executors immediately with the context error and
// issues no work.
func TestExecuteContextPreCancelled(t *testing.T) {
	inst := sched.Instance{R: 4, S: 6, T: 3}
	pl := smallPlatform()
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, _ := buildMatrices(t, inst, 4, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, pipelined := range []bool{false, true} {
		err := RunContext(ctx, Config{Workers: pl.P(), T: inst.T, Pipelined: pipelined}, res.Plan(), a, b, c)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pipelined=%v: pre-cancelled run returned %v, want context.Canceled", pipelined, err)
		}
	}
}
