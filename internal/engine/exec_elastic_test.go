package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// elasticMock is a growable, thread-safe in-memory Backend for elastic
// executor tests: workers compute with the real kernel, chosen workers die
// after a scripted number of operations, and RecvC can be gated on a channel
// so tests control exactly when jobs complete relative to membership events.
type elasticMock struct {
	mu        sync.Mutex
	nw        int
	opsSeen   map[int]int
	deadAfter map[int]int // worker → ops served before every later op fails
	recvDone  map[int]int // completed jobs per worker
	held      map[int]mockHeld
	// recvGate, when non-nil, parks every RecvC until the channel closes, so
	// tests can wedge the whole fleet mid-job while membership changes land.
	recvGate chan struct{}
	// allWedged, when non-nil, is closed once wedgeTarget RecvC calls have
	// arrived (before they park on recvGate): the moment every dispatched job
	// is wedged and the queues are provably in the state the test wants.
	allWedged    chan struct{}
	wedgeTarget  int
	recvArrivals int
	// startBarrier, when non-nil, parks every SendC until barrierTarget
	// SendC calls have arrived: every worker is then provably mid-job before
	// any operation (an injected death included) proceeds. Without it, an
	// instant mock lets fast workers finish everything and collapse their
	// estimates before slow-seeded workers ever start — at which point a
	// re-plan legitimately starves the unstarted (apparently slow) workers,
	// and a death scripted on one of them is never observed.
	startBarrier    chan struct{}
	barrierTarget   int
	barrierArrivals int
}

type mockHeld struct {
	ch     matrix.Chunk
	blocks []*matrix.Block
}

func newElasticMock(nw int) *elasticMock {
	return &elasticMock{
		nw:        nw,
		opsSeen:   make(map[int]int),
		deadAfter: make(map[int]int),
		recvDone:  make(map[int]int),
		held:      make(map[int]mockHeld),
	}
}

func (m *elasticMock) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nw
}

// grow adds one addressable worker and returns its index.
func (m *elasticMock) grow() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nw++
	return m.nw - 1
}

// op charges one backend operation to w and reports whether w is dead.
func (m *elasticMock) op(w int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if limit, scripted := m.deadAfter[w]; scripted && m.opsSeen[w] >= limit {
		return true
	}
	m.opsSeen[w]++
	return false
}

func (m *elasticMock) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	m.mu.Lock()
	bar := m.startBarrier
	if bar != nil {
		m.barrierArrivals++
		if m.barrierArrivals == m.barrierTarget {
			close(bar)
		}
	}
	m.mu.Unlock()
	if bar != nil {
		<-bar
	}
	if m.op(w) {
		return fmt.Errorf("mock: injected death of %d: %w", w, ErrWorkerDown)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held[w].blocks != nil {
		return fmt.Errorf("mock: worker %d already holds a chunk", w)
	}
	cp := make([]*matrix.Block, len(blocks))
	for i, b := range blocks {
		cp[i] = b.Clone()
	}
	m.held[w] = mockHeld{ch: ch, blocks: cp}
	return nil
}

func (m *elasticMock) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	if m.op(w) {
		return fmt.Errorf("mock: injected death of %d: %w", w, ErrWorkerDown)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.held[w]
	if h.blocks == nil || h.ch != ch {
		return fmt.Errorf("mock: worker %d got inputs for %v it does not hold", w, ch)
	}
	return ApplyInstallment(ch, h.blocks, a, b, k1-k0)
}

func (m *elasticMock) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	m.mu.Lock()
	gate := m.recvGate
	m.recvArrivals++
	if m.allWedged != nil && m.recvArrivals == m.wedgeTarget {
		close(m.allWedged)
	}
	m.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if m.op(w) {
		return nil, fmt.Errorf("mock: injected death of %d: %w", w, ErrWorkerDown)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.held[w]
	if h.blocks == nil || h.ch != ch {
		return nil, fmt.Errorf("mock: worker %d asked to flush %v it does not hold", w, ch)
	}
	delete(m.held, w)
	m.recvDone[w]++
	return h.blocks, nil
}

func (m *elasticMock) jobs(w int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recvDone[w]
}

// rowPlan hand-builds a fully deterministic plan: C is (nw·perWorker)×s
// blocks, each job is one 1×s row chunk fed in single-panel installments
// over t, and worker w owns rows w, w+nw, … — exactly perWorker jobs per
// worker, so tests control job placement without a scheduler in the loop.
func rowPlan(nw, perWorker, s, t int) []sim.PlanOp {
	var plan []sim.PlanOp
	for round := 0; round < perWorker; round++ {
		for w := 0; w < nw; w++ {
			ch := matrix.Chunk{Row0: round*nw + w, Col0: 0, H: 1, W: s}
			plan = append(plan, sim.PlanOp{Worker: w, Kind: trace.SendC, Chunk: ch})
			for k := 0; k < t; k++ {
				plan = append(plan, sim.PlanOp{Worker: w, Kind: trace.SendAB, Chunk: ch, K0: k, K1: k + 1})
			}
			plan = append(plan, sim.PlanOp{Worker: w, Kind: trace.RecvC, Chunk: ch})
		}
	}
	return plan
}

// elasticFixture holds one run's operands plus the bitwise oracle C computed
// by the sequential executor over a faultless backend.
type elasticFixture struct {
	t       *testing.T
	tdim    int
	plan    []sim.PlanOp
	a, b, c *matrix.BlockMatrix
	want    *matrix.BlockMatrix
}

func newElasticFixture(t *testing.T, plan []sim.PlanOp, nw, r, s, tdim, q int) *elasticFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	a := matrix.NewBlockMatrix(r, tdim, q)
	b := matrix.NewBlockMatrix(tdim, s, q)
	c := matrix.NewBlockMatrix(r, s, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := Execute(tdim, plan, a, b, want, newElasticMock(nw)); err != nil {
		t.Fatal(err)
	}
	return &elasticFixture{t: t, tdim: tdim, plan: plan, a: a, b: b, c: c, want: want}
}

func (f *elasticFixture) assertBitwise() {
	f.t.Helper()
	if !f.c.Equal(f.want, 0) {
		f.t.Fatal("elastic C is not bitwise-identical to the sequential executor's")
	}
}

func elasticPlatform(n int) *platform.Platform {
	ws := make([]platform.Worker, n)
	for i := range ws {
		ws[i] = platform.Worker{C: 1 + 0.2*float64(i), W: 1 + 0.1*float64(i), M: 60}
	}
	return platform.MustNew(ws...)
}

func testTracker(n int) *adapt.Tracker {
	return adapt.NewTracker(elasticPlatform(n).Workers, time.Microsecond, 0)
}

// TestElasticMatchesSequentialBitwise: with no membership events and no
// drift, the adaptive executor is just the pipelined executor — C must be
// bitwise-identical to the strictly sequential run, for a scheduler-built
// plan too.
func TestElasticMatchesSequentialBitwise(t *testing.T) {
	pl := elasticPlatform(3)
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	f := newElasticFixture(t, res.Plan(), 3, inst.R, inst.S, inst.T, 3)
	el := &Elastic{Tracker: testTracker(3), DriftThreshold: -1}
	if err := ExecuteElasticContext(context.Background(), f.tdim, f.plan, f.a, f.b, f.c, newElasticMock(3), el); err != nil {
		t.Fatal(err)
	}
	f.assertBitwise()
}

// TestElasticJoinWhileQueueEmpty: every worker has exactly one job, all of
// them dispatched and wedged in RecvC — the queues are empty. A worker that
// joins now must trigger a re-plan that finds zero pending jobs, get no
// work, and leave completion and the result undisturbed.
func TestElasticJoinWhileQueueEmpty(t *testing.T) {
	const nw, s, tdim = 3, 4, 3
	plan := rowPlan(nw, 1, s, tdim)
	f := newElasticFixture(t, plan, nw, nw, s, tdim, 3)

	be := newElasticMock(nw)
	be.recvGate = make(chan struct{})
	join := make(chan int, 1)
	joined := make(chan struct{})
	var mu sync.Mutex
	type replan struct {
		reason  string
		pending int
	}
	var replans []replan
	el := &Elastic{
		Tracker:        testTracker(nw),
		Join:           join,
		DriftThreshold: -1,
		OnReplan: func(reason string, pending int) {
			mu.Lock()
			replans = append(replans, replan{reason, pending})
			mu.Unlock()
			if reason == "join" {
				close(joined)
			}
		},
	}
	be.wedgeTarget, be.allWedged = nw, make(chan struct{})
	go func() {
		<-be.allWedged // every job is in flight; the queues are empty
		join <- be.grow()
		<-joined
		close(be.recvGate)
	}()
	if err := ExecuteElasticContext(context.Background(), f.tdim, f.plan, f.a, f.b, f.c, be, el); err != nil {
		t.Fatal(err)
	}
	f.assertBitwise()
	if got := be.jobs(nw); got != 0 {
		t.Fatalf("joined worker ran %d jobs of an already-dispatched plan", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(replans) != 1 || replans[0].reason != "join" {
		t.Fatalf("replans = %v, want exactly one join", replans)
	}
	// The join may race the final dispatches, but with every job wedged in
	// RecvC before the gate closes there can be nothing left to move by the
	// time the join re-plan runs.
	if replans[0].pending != 0 {
		t.Fatalf("join re-plan moved %d jobs from supposedly empty queues", replans[0].pending)
	}
}

// TestElasticJoinMidReplay: a worker dies early, its jobs are re-planned
// onto the survivors (which are wedged in RecvC, so the recovered jobs stay
// queued), and a new worker joins mid-replay — it must drain recovered work
// and the result must stay bitwise-identical.
func TestElasticJoinMidReplay(t *testing.T) {
	const nw, per, s, tdim = 3, 3, 4, 3
	plan := rowPlan(nw, per, s, tdim)
	f := newElasticFixture(t, plan, nw, nw*per, s, tdim, 3)

	be := newElasticMock(nw)
	be.recvGate = make(chan struct{})
	be.deadAfter[1] = 1 // dies on its second op: mid-first-job
	join := make(chan int, 1)
	departed := make(chan struct{})
	joined := make(chan struct{})
	var mu sync.Mutex
	counts := map[string]int{}
	el := &Elastic{
		Tracker:        testTracker(nw),
		Join:           join,
		DriftThreshold: -1,
		OnReplan: func(reason string, pending int) {
			mu.Lock()
			counts[reason]++
			n := counts[reason]
			mu.Unlock()
			switch {
			case reason == "depart" && n == 1:
				close(departed)
			case reason == "join" && n == 1:
				close(joined)
			}
		},
	}
	go func() {
		<-departed // recovered jobs queued; survivors wedged in RecvC
		join <- be.grow()
		<-joined
		close(be.recvGate)
	}()
	if err := ExecuteElasticContext(context.Background(), f.tdim, f.plan, f.a, f.b, f.c, be, el); err != nil {
		t.Fatal(err)
	}
	f.assertBitwise()
	if got := be.jobs(nw); got == 0 {
		t.Fatal("joined worker drained none of the recovered jobs")
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["depart"] != 1 || counts["join"] != 1 {
		t.Fatalf("replans = %v, want one depart and one join", counts)
	}
}

// TestElasticTwoDepartures: two workers die in the same installment window,
// at several points of the run; the survivors replay everything and the
// result stays bitwise-identical.
func TestElasticTwoDepartures(t *testing.T) {
	const nw, per, s, tdim = 4, 2, 4, 3
	plan := rowPlan(nw, per, s, tdim)
	// Every death point sits inside the victims' first job (5 ops), so both
	// departures are guaranteed to be *observed*: a later death could be
	// masked by a re-plan starving the victim of further operations.
	for _, deathAt := range []int{0, 1, 3, 4} {
		f := newElasticFixture(t, plan, nw, nw*per, s, tdim, 3)
		be := newElasticMock(nw)
		be.deadAfter[1] = deathAt
		be.deadAfter[2] = deathAt
		// Hold every first job at its SendC until all four are in flight:
		// both victims are then mid-job when they die, so both departures
		// are observed even when the healthy workers are instant.
		be.startBarrier, be.barrierTarget = make(chan struct{}), nw
		var mu sync.Mutex
		departs := 0
		el := &Elastic{
			Tracker:        testTracker(nw),
			DriftThreshold: -1,
			OnReplan: func(reason string, _ int) {
				if reason == "depart" {
					mu.Lock()
					departs++
					mu.Unlock()
				}
			},
		}
		if err := ExecuteElasticContext(context.Background(), f.tdim, f.plan, f.a, f.b, f.c, be, el); err != nil {
			t.Fatalf("death-at %d: %v", deathAt, err)
		}
		f.assertBitwise()
		mu.Lock()
		if departs != 2 {
			t.Fatalf("death-at %d: %d depart re-plans, want 2", deathAt, departs)
		}
		mu.Unlock()
		if be.jobs(1)+be.jobs(2) > 2*deathAt {
			t.Fatalf("death-at %d: dead workers completed more jobs than their op budget allows", deathAt)
		}
	}
}

// TestElasticAllWorkersDead: with every worker scripted to die, the executor
// must report failure — not hang, not drop chunks silently.
func TestElasticAllWorkersDead(t *testing.T) {
	const nw = 3
	plan := rowPlan(nw, 1, 4, 3)
	f := newElasticFixture(t, plan, nw, nw, 4, 3, 3)
	be := newElasticMock(nw)
	be.deadAfter[0], be.deadAfter[1], be.deadAfter[2] = 0, 0, 0
	el := &Elastic{Tracker: testTracker(nw), DriftThreshold: -1}
	if err := ExecuteElasticContext(context.Background(), f.tdim, f.plan, f.a, f.b, f.c, be, el); err == nil {
		t.Fatal("executor claimed success with every worker dead")
	}
}

// scriptedEstimator reports a fixed large drift until the executor consumes
// it with a re-plan (the second Rebase: the first is the executor adopting
// the initial plan), then zero forever — a deterministic stand-in for "one
// genuine speed change, then a stable platform".
type scriptedEstimator struct {
	*adapt.Tracker
	mu      sync.Mutex
	rebases int
}

func (s *scriptedEstimator) Rebase() {
	s.mu.Lock()
	s.rebases++
	s.mu.Unlock()
	s.Tracker.Rebase()
}

func (s *scriptedEstimator) Drift() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rebases <= 1 {
		return 10
	}
	return 0
}

// TestElasticDriftReplansExactlyOnce: a drifted estimate triggers one
// re-plan; once the re-plan has consumed the drift the executor must not
// re-plan again (no thrash), and the result stays bitwise-identical.
func TestElasticDriftReplansExactlyOnce(t *testing.T) {
	const nw, per, s, tdim = 2, 6, 4, 3
	plan := rowPlan(nw, per, s, tdim)
	f := newElasticFixture(t, plan, nw, nw*per, s, tdim, 3)
	be := newElasticMock(nw)
	var mu sync.Mutex
	counts := map[string]int{}
	el := &Elastic{
		Tracker:        &scriptedEstimator{Tracker: testTracker(nw)},
		DriftThreshold: 0.5,
		OnReplan: func(reason string, pending int) {
			mu.Lock()
			counts[reason]++
			mu.Unlock()
		},
	}
	if err := ExecuteElasticContext(context.Background(), f.tdim, f.plan, f.a, f.b, f.c, be, el); err != nil {
		t.Fatal(err)
	}
	f.assertBitwise()
	mu.Lock()
	defer mu.Unlock()
	if counts["drift"] != 1 {
		t.Fatalf("drift replans = %d, want exactly 1 (counts %v)", counts["drift"], counts)
	}
}

// TestElasticCancel: cancelling the context aborts an elastic run promptly
// with a non-nil error even while the whole fleet is wedged mid-job.
func TestElasticCancel(t *testing.T) {
	const nw = 3
	plan := rowPlan(nw, 2, 4, 3)
	f := newElasticFixture(t, plan, nw, nw*2, 4, 3, 3)
	be := newElasticMock(nw)
	be.recvGate = make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		el := &Elastic{Tracker: testTracker(nw), DriftThreshold: -1}
		errc <- ExecuteElasticContext(ctx, f.tdim, f.plan, f.a, f.b, f.c, be, el)
	}()
	cancel()
	close(be.recvGate) // wake the wedged RecvCs; the abort must win
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled elastic run reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled elastic run did not return")
	}
}

// TestRunElasticContext drives the adaptive executor over the real
// in-process goroutine backend end to end and checks observations landed.
func TestRunElasticContext(t *testing.T) {
	pl := elasticPlatform(3)
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 4
	rng := rand.New(rand.NewSource(5))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	cfg := Config{Workers: pl.P(), T: inst.T, Platform: pl}
	if err := Run(cfg, plan, a, b, want); err != nil {
		t.Fatal(err)
	}
	tr := adapt.NewTracker(pl.Workers, time.Microsecond, 0)
	if err := RunElasticContext(context.Background(), cfg, plan, a, b, c, &Elastic{Tracker: tr}); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want, 0) {
		t.Fatal("elastic in-process C differs bitwise from the static run")
	}
	var samples int
	for _, e := range tr.Snapshot() {
		samples += e.Transfers + e.Computes
	}
	if samples == 0 {
		t.Fatal("elastic run recorded no observations")
	}
}
