package engine

import (
	"errors"
	"fmt"

	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Backend abstracts where a plan's workers actually live: goroutines behind
// channels (this package's Run) or remote processes behind TCP connections
// (internal/net). Execute drives any Backend with identical buffer
// accounting, operation ordering, and C-accumulation, so the in-process and
// networked runtimes cannot drift apart.
type Backend interface {
	// Workers is the number of addressable workers; plans may only reference
	// workers in [0, Workers).
	Workers() int
	// SendC delivers the current contents of chunk ch (cloned from C) to
	// worker w.
	SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error
	// SendAB delivers one installment: A panels a (ch.H×(k1-k0), row-major)
	// and B panels b ((k1-k0)×ch.W, row-major) for inner range [k0, k1).
	SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error
	// RecvC asks worker w to return its finished chunk, which must be ch, and
	// yields the ch.Blocks() updated C blocks in row-major order.
	RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error)
}

// ErrWorkerDown marks a backend operation that failed because the worker is
// gone (connection lost, heartbeat timeout). Execute reacts by re-queueing
// the worker's outstanding jobs onto survivors; any other backend error
// aborts the run.
var ErrWorkerDown = errors.New("worker down")

// Execute replays plan against real matrices through be: C ← C + A·B
// restricted to the chunks the plan covers. A is r×t, B t×s, C r×s blocks.
// The plan is validated up front (protocol, worker range, chunk geometry,
// panel ranges), then ops are issued in plan order. Workers that fail with
// ErrWorkerDown are retired and their incomplete jobs replayed on surviving
// workers; Execute fails only when a non-failover error occurs or no workers
// remain.
func Execute(t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend) error {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows || a.Cols != t {
		return fmt.Errorf("engine: shape mismatch A %dx%d, B %dx%d, C %dx%d, t=%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols, t)
	}
	jobs, opJob, err := sim.JobsFromPlan(plan)
	if err != nil {
		return err
	}
	nw := be.Workers()
	for _, j := range jobs {
		if j.Worker >= nw {
			return fmt.Errorf("engine: plan references worker %d of %d", j.Worker, nw)
		}
		if !j.Chunk.Valid(c.Rows, c.Cols) {
			return fmt.Errorf("engine: plan chunk %v outside C (%dx%d)", j.Chunk, c.Rows, c.Cols)
		}
		for _, p := range j.Panels {
			if p[0] < 0 || p[1] > t || p[0] >= p[1] {
				return fmt.Errorf("engine: plan installment panels [%d,%d) outside t=%d", p[0], p[1], t)
			}
		}
	}

	alive := make([]bool, nw)
	for i := range alive {
		alive[i] = true
	}
	done := make([]bool, len(jobs))
	var orphans []int // jobs whose worker died before their RecvC landed
	retire := func(w int) {
		if !alive[w] {
			return
		}
		alive[w] = false
		for ji, j := range jobs {
			if j.Worker == w && !done[ji] {
				orphans = append(orphans, ji)
			}
		}
	}

	for i, op := range plan {
		w := op.Worker
		if !alive[w] {
			continue // ops of a retired worker; its jobs are queued for replay
		}
		var opErr error
		switch op.Kind {
		case trace.SendC:
			opErr = be.SendC(w, op.Chunk, cloneChunk(c, op.Chunk))
		case trace.SendAB:
			am, bm := gatherPanels(a, b, op.Chunk, op.K0, op.K1)
			opErr = be.SendAB(w, op.Chunk, op.K0, op.K1, am, bm)
		case trace.RecvC:
			var blocks []*matrix.Block
			blocks, opErr = be.RecvC(w, op.Chunk)
			if opErr == nil {
				if opErr = writeChunk(c, op.Chunk, blocks); opErr == nil {
					done[opJob[i]] = true
				}
			}
		}
		if opErr != nil {
			if errors.Is(opErr, ErrWorkerDown) {
				retire(w)
				continue
			}
			return opErr
		}
	}

	// Replay orphaned jobs round-robin over the survivors. A job's chunk
	// region of C is untouched until its RecvC lands, so replaying from the
	// master's copy repeats no update and loses none.
	next := 0
	for len(orphans) > 0 {
		ji := orphans[0]
		orphans = orphans[1:]
		w, ok := nextAlive(alive, &next)
		if !ok {
			return fmt.Errorf("engine: no workers left to replay chunk %v: %w", jobs[ji].Chunk, ErrWorkerDown)
		}
		if err := replayJob(be, w, jobs[ji], a, b, c); err != nil {
			if errors.Is(err, ErrWorkerDown) {
				retire(w)
				orphans = append(orphans, ji)
				continue
			}
			return err
		}
		done[ji] = true
	}
	return nil
}

// replayJob runs one complete job synchronously on worker w.
func replayJob(be Backend, w int, j sim.PlanJob, a, b, c *matrix.BlockMatrix) error {
	if err := be.SendC(w, j.Chunk, cloneChunk(c, j.Chunk)); err != nil {
		return err
	}
	for _, p := range j.Panels {
		am, bm := gatherPanels(a, b, j.Chunk, p[0], p[1])
		if err := be.SendAB(w, j.Chunk, p[0], p[1], am, bm); err != nil {
			return err
		}
	}
	blocks, err := be.RecvC(w, j.Chunk)
	if err != nil {
		return err
	}
	return writeChunk(c, j.Chunk, blocks)
}

func nextAlive(alive []bool, cursor *int) (int, bool) {
	for range alive {
		w := *cursor % len(alive)
		*cursor++
		if alive[w] {
			return w, true
		}
	}
	return 0, false
}

// cloneChunk snapshots chunk ch of c in row-major order.
func cloneChunk(c *matrix.BlockMatrix, ch matrix.Chunk) []*matrix.Block {
	blocks := make([]*matrix.Block, 0, ch.Blocks())
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			blocks = append(blocks, c.Block(i, j).Clone())
		}
	}
	return blocks
}

// gatherPanels collects the A panels (ch.H×d, row-major) and B panels
// (d×ch.W, row-major) of installment [k0, k1) for chunk ch.
func gatherPanels(a, b *matrix.BlockMatrix, ch matrix.Chunk, k0, k1 int) (am, bm []*matrix.Block) {
	d := k1 - k0
	am = make([]*matrix.Block, 0, ch.H*d)
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for k := k0; k < k1; k++ {
			am = append(am, a.Block(i, k))
		}
	}
	bm = make([]*matrix.Block, 0, d*ch.W)
	for k := k0; k < k1; k++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			bm = append(bm, b.Block(k, j))
		}
	}
	return am, bm
}

// writeChunk stores a returned chunk's blocks back into c.
func writeChunk(c *matrix.BlockMatrix, ch matrix.Chunk, blocks []*matrix.Block) error {
	if len(blocks) != ch.Blocks() {
		return fmt.Errorf("engine: result for %v has %d blocks, want %d", ch, len(blocks), ch.Blocks())
	}
	for _, blk := range blocks {
		if blk == nil || blk.Q != c.Q {
			return fmt.Errorf("engine: result for %v carries a block with edge mismatch", ch)
		}
	}
	idx := 0
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			c.SetBlock(i, j, blocks[idx])
			idx++
		}
	}
	return nil
}

// ApplyInstallment performs the block updates one installment enables on a
// held chunk: cb (ch.H×ch.W, row-major) accumulates ab·bb where ab is
// ch.H×d and bb d×ch.W, d = k1-k0 panels deep. Both the goroutine worker and
// the networked worker apply installments through this one function, so every
// backend performs bitwise-identical arithmetic.
func ApplyInstallment(ch matrix.Chunk, cb, ab, bb []*matrix.Block, d int) error {
	if d <= 0 || len(cb) != ch.H*ch.W || len(ab) != ch.H*d || len(bb) != d*ch.W {
		return fmt.Errorf("engine: installment shape mismatch: chunk %v, d=%d, |c|=%d |a|=%d |b|=%d",
			ch, d, len(cb), len(ab), len(bb))
	}
	for i := 0; i < ch.H; i++ {
		for dk := 0; dk < d; dk++ {
			a := ab[i*d+dk]
			for j := 0; j < ch.W; j++ {
				matrix.MulAdd(cb[i*ch.W+j], a, bb[dk*ch.W+j])
			}
		}
	}
	return nil
}
