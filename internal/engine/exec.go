package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Backend abstracts where a plan's workers actually live: goroutines behind
// channels (this package's Run) or remote processes behind TCP connections
// (internal/net). Execute drives any Backend with identical buffer
// accounting, operation ordering, and C-accumulation, so the in-process and
// networked runtimes cannot drift apart.
//
// Reusable-backend contract: a successful Execute/ExecutePipelined leaves
// every worker idle (each SendC is balanced by a RecvC, so no worker holds a
// chunk afterwards), and the executors keep no state of their own between
// calls. A Backend whose workers outlive a plan — internal/net's Master over
// persistent worker sessions — may therefore be handed to any number of
// consecutive executions; internal/serve leases such backends across jobs
// without re-establishing the fleet. After a failed execution no such
// guarantee holds (workers may hold chunks, C may be partially updated):
// discard the backend's sessions, not just the error.
type Backend interface {
	// Workers is the number of addressable workers; plans may only reference
	// workers in [0, Workers).
	Workers() int
	// SendC delivers the current contents of chunk ch (cloned from C) to
	// worker w.
	SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error
	// SendAB delivers one installment: A panels a (ch.H×(k1-k0), row-major)
	// and B panels b ((k1-k0)×ch.W, row-major) for inner range [k0, k1).
	SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error
	// RecvC asks worker w to return its finished chunk, which must be ch, and
	// yields the ch.Blocks() updated C blocks in row-major order.
	RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error)
}

// CopyingBackend is optionally implemented by Backends whose SendC/SendAB
// copy their block payloads before returning (serializing transports like
// internal/net, which stage blocks onto the wire). For such backends the
// executor recycles its staging blocks and panel slices through a pool the
// moment a send returns, keeping the steady-state send path allocation-free.
// Backends that retain the pointers (the channel backend hands them straight
// to worker goroutines) must not implement this, or must report false.
type CopyingBackend interface {
	CopiesBlocks() bool
}

// ErrWorkerDown marks a backend operation that failed because the worker is
// gone (connection lost, heartbeat timeout). Execute reacts by re-queueing
// the worker's outstanding jobs onto survivors; any other backend error
// aborts the run.
var ErrWorkerDown = errors.New("worker down")

// stagePool recycles the staging blocks of all executions against copying
// backends. Package-level so consecutive runs (and concurrent dispatch
// goroutines) share one warm pool.
var stagePool matrix.BlockPool

// stager owns one dispatch path's staging state: scratch slices for panel
// gathering and chunk cloning, reused across operations when (and only when)
// the backend copies payloads before returning. One stager per goroutine —
// it is deliberately not synchronized. rec, when non-nil, receives one trace
// event per backend operation (the Recorder itself is concurrency-safe).
type stager struct {
	copies       bool
	cBuf, am, bm []*matrix.Block
	rec          *trace.Recorder
}

func newStager(be Backend) *stager {
	cp, ok := be.(CopyingBackend)
	return &stager{copies: ok && cp.CopiesBlocks()}
}

// stageChunk snapshots chunk ch of c. Against a copying backend the snapshot
// lives in pooled blocks and a reused slice; otherwise it is freshly
// allocated, because the backend will hold it for the whole job.
func (st *stager) stageChunk(c *matrix.BlockMatrix, ch matrix.Chunk) []*matrix.Block {
	if !st.copies {
		return cloneChunk(c, ch, nil, nil)
	}
	st.cBuf = cloneChunk(c, ch, &stagePool, st.cBuf[:0])
	return st.cBuf
}

// releaseChunk recycles a stageChunk snapshot once the backend is done with
// it (no-op for retaining backends).
func (st *stager) releaseChunk(blocks []*matrix.Block) {
	if st.copies {
		stagePool.PutAll(blocks)
	}
}

// stagePanels gathers the A/B panels of installment [k0, k1), reusing the
// stager's slices against copying backends.
func (st *stager) stagePanels(a, b *matrix.BlockMatrix, ch matrix.Chunk, k0, k1 int) (am, bm []*matrix.Block) {
	if !st.copies {
		return gatherPanels(a, b, ch, k0, k1, nil, nil)
	}
	st.am, st.bm = gatherPanels(a, b, ch, k0, k1, st.am[:0], st.bm[:0])
	return st.am, st.bm
}

// Execute replays plan against real matrices through be: C ← C + A·B
// restricted to the chunks the plan covers. A is r×t, B t×s, C r×s blocks.
// The plan is validated up front (protocol, worker range, chunk geometry,
// panel ranges), then ops are issued in plan order. Workers that fail with
// ErrWorkerDown are retired and their incomplete jobs replayed on surviving
// workers; Execute fails only when a non-failover error occurs or no workers
// remain.
func Execute(t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend) error {
	return ExecuteContext(context.Background(), t, plan, a, b, c, be)
}

// abortErr folds a run's outcome with its context: once ctx is done, the
// caller's cancellation is the result — whatever secondary error the abort
// provoked on the way down (retired links, half-delivered installments) is
// kept as detail, and errors.Is(err, ctx.Err()) holds either way.
func abortErr(ctx context.Context, err error) error {
	ctxErr := ctx.Err()
	if ctxErr == nil {
		return err
	}
	if err == nil || errors.Is(err, ctxErr) {
		return fmt.Errorf("engine: run aborted: %w", ctxErr)
	}
	return fmt.Errorf("engine: run aborted: %w (abort surfaced as: %v)", ctxErr, err)
}

// ExecuteContext is Execute under a context: cancellation stops dispatch at
// the next operation boundary and fails the run with an error wrapping
// ctx.Err(). C may be left partially updated; see the Backend docs — after
// any failed execution the backend's workers must be considered tainted.
func ExecuteContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend) error {
	jobs, opJob, err := validatePlan(t, plan, a, b, c, be)
	if err != nil {
		return err
	}
	nw := be.Workers()
	st := newStager(be)
	st.rec = trace.FromContext(ctx)

	alive := make([]bool, nw)
	for i := range alive {
		alive[i] = true
	}
	done := make([]bool, len(jobs))
	var orphans []int // jobs whose worker died before their RecvC landed
	retire := func(w int) {
		if !alive[w] {
			return
		}
		alive[w] = false
		mFailovers.Inc()
		replayed := int64(0)
		for ji, j := range jobs {
			if j.Worker == w && !done[ji] {
				orphans = append(orphans, ji)
				replayed++
			}
		}
		mReplays.Add(replayed)
	}

	for i, op := range plan {
		if ctx.Err() != nil {
			return abortErr(ctx, nil)
		}
		w := op.Worker
		if !alive[w] {
			continue // ops of a retired worker; its jobs are queued for replay
		}
		var opErr error
		switch op.Kind {
		case trace.SendC:
			mChunks.Inc()
			blocks := st.stageChunk(c, op.Chunk)
			t0 := time.Now()
			opErr = be.SendC(w, op.Chunk, blocks)
			if opErr == nil {
				st.observe(w, trace.SendC, op.Chunk.Blocks(), t0, time.Now())
			}
			st.releaseChunk(blocks)
		case trace.SendAB:
			am, bm := st.stagePanels(a, b, op.Chunk, op.K0, op.K1)
			t0 := time.Now()
			opErr = be.SendAB(w, op.Chunk, op.K0, op.K1, am, bm)
			if opErr == nil {
				st.observe(w, trace.SendAB, len(am)+len(bm), t0, time.Now())
			}
		case trace.RecvC:
			var blocks []*matrix.Block
			t0 := time.Now()
			blocks, opErr = be.RecvC(w, op.Chunk)
			if opErr == nil {
				st.observe(w, trace.RecvC, op.Chunk.Blocks(), t0, time.Now())
				if opErr = writeChunk(c, op.Chunk, blocks); opErr == nil {
					done[opJob[i]] = true
				}
			}
		}
		if opErr != nil {
			if errors.Is(opErr, ErrWorkerDown) && ctx.Err() == nil {
				retire(w)
				continue
			}
			return abortErr(ctx, opErr)
		}
	}

	// Replay orphaned jobs round-robin over the survivors. A job's chunk
	// region of C is untouched until its RecvC lands, so replaying from the
	// master's copy repeats no update and loses none.
	next := 0
	for len(orphans) > 0 {
		if ctx.Err() != nil {
			return abortErr(ctx, nil)
		}
		ji := orphans[0]
		orphans = orphans[1:]
		w, ok := nextAlive(alive, &next)
		if !ok {
			return fmt.Errorf("engine: no workers left to replay chunk %v: %w", jobs[ji].Chunk, ErrWorkerDown)
		}
		if err := runJob(be, w, jobs[ji], a, b, c, st); err != nil {
			if errors.Is(err, ErrWorkerDown) && ctx.Err() == nil {
				retire(w)
				orphans = append(orphans, ji)
				continue
			}
			return abortErr(ctx, err)
		}
		done[ji] = true
	}
	return nil
}

// validatePlan performs the shape, protocol, worker-range, chunk-geometry,
// and panel-range checks shared by both executors, returning the plan's jobs
// and the op→job mapping.
func validatePlan(t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend) (jobs []sim.PlanJob, opJob []int, err error) {
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows || a.Cols != t {
		return nil, nil, fmt.Errorf("engine: shape mismatch A %dx%d, B %dx%d, C %dx%d, t=%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols, t)
	}
	jobs, opJob, err = sim.JobsFromPlan(plan)
	if err != nil {
		return nil, nil, err
	}
	nw := be.Workers()
	for _, j := range jobs {
		if j.Worker >= nw {
			return nil, nil, fmt.Errorf("engine: plan references worker %d of %d", j.Worker, nw)
		}
		if !j.Chunk.Valid(c.Rows, c.Cols) {
			return nil, nil, fmt.Errorf("engine: plan chunk %v outside C (%dx%d)", j.Chunk, c.Rows, c.Cols)
		}
		for _, p := range j.Panels {
			if p[0] < 0 || p[1] > t || p[0] >= p[1] {
				return nil, nil, fmt.Errorf("engine: plan installment panels [%d,%d) outside t=%d", p[0], p[1], t)
			}
		}
	}
	return jobs, opJob, nil
}

// runJob runs one complete job synchronously on worker w: chunk delivery,
// every installment in order, retrieval, and the write-back into C. It is
// the replay unit of both executors' failover and the per-job dispatch unit
// of the pipelined executor.
func runJob(be Backend, w int, j sim.PlanJob, a, b, c *matrix.BlockMatrix, st *stager) error {
	mChunks.Inc()
	blocks := st.stageChunk(c, j.Chunk)
	t0 := time.Now()
	err := be.SendC(w, j.Chunk, blocks)
	if err == nil {
		st.observe(w, trace.SendC, j.Chunk.Blocks(), t0, time.Now())
	}
	st.releaseChunk(blocks)
	if err != nil {
		return err
	}
	for _, p := range j.Panels {
		am, bm := st.stagePanels(a, b, j.Chunk, p[0], p[1])
		t0 = time.Now()
		if err := be.SendAB(w, j.Chunk, p[0], p[1], am, bm); err != nil {
			return err
		}
		st.observe(w, trace.SendAB, len(am)+len(bm), t0, time.Now())
	}
	t0 = time.Now()
	result, err := be.RecvC(w, j.Chunk)
	if err != nil {
		return err
	}
	st.observe(w, trace.RecvC, j.Chunk.Blocks(), t0, time.Now())
	return writeChunk(c, j.Chunk, result)
}

func nextAlive(alive []bool, cursor *int) (int, bool) {
	for range alive {
		w := *cursor % len(alive)
		*cursor++
		if alive[w] {
			return w, true
		}
	}
	return 0, false
}

// cloneChunk snapshots chunk ch of c in row-major order into dst (grown as
// needed; pass nil for a fresh slice). With a pool, the snapshot blocks are
// recycled ones — the caller owns them and decides when to Put them back.
func cloneChunk(c *matrix.BlockMatrix, ch matrix.Chunk, pool *matrix.BlockPool, dst []*matrix.Block) []*matrix.Block {
	if dst == nil {
		dst = make([]*matrix.Block, 0, ch.Blocks())
	}
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			src := c.Block(i, j)
			if pool == nil {
				dst = append(dst, src.Clone())
				continue
			}
			blk := pool.Get(c.Q)
			copy(blk.Data, src.Data)
			dst = append(dst, blk)
		}
	}
	return dst
}

// gatherPanels collects the A panels (ch.H×d, row-major) and B panels
// (d×ch.W, row-major) of installment [k0, k1) for chunk ch, appending to
// amDst and bmDst (pass nil for fresh slices). The returned entries alias
// the input matrices' blocks; only the slice headers are staged.
func gatherPanels(a, b *matrix.BlockMatrix, ch matrix.Chunk, k0, k1 int, amDst, bmDst []*matrix.Block) (am, bm []*matrix.Block) {
	d := k1 - k0
	if amDst == nil {
		amDst = make([]*matrix.Block, 0, ch.H*d)
	}
	if bmDst == nil {
		bmDst = make([]*matrix.Block, 0, d*ch.W)
	}
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for k := k0; k < k1; k++ {
			amDst = append(amDst, a.Block(i, k))
		}
	}
	for k := k0; k < k1; k++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			bmDst = append(bmDst, b.Block(k, j))
		}
	}
	return amDst, bmDst
}

// writeChunk stores a returned chunk's blocks back into c.
func writeChunk(c *matrix.BlockMatrix, ch matrix.Chunk, blocks []*matrix.Block) error {
	if len(blocks) != ch.Blocks() {
		return fmt.Errorf("engine: result for %v has %d blocks, want %d", ch, len(blocks), ch.Blocks())
	}
	for _, blk := range blocks {
		if blk == nil || blk.Q != c.Q {
			return fmt.Errorf("engine: result for %v carries a block with edge mismatch", ch)
		}
	}
	idx := 0
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			c.SetBlock(i, j, blocks[idx])
			idx++
		}
	}
	return nil
}

// ApplyInstallment performs the block updates one installment enables on a
// held chunk: cb (ch.H×ch.W, row-major) accumulates ab·bb where ab is
// ch.H×d and bb d×ch.W, d = k1-k0 panels deep. Both the goroutine worker and
// the networked worker apply installments through this one function, so every
// backend performs bitwise-identical arithmetic.
func ApplyInstallment(ch matrix.Chunk, cb, ab, bb []*matrix.Block, d int) error {
	return ApplyInstallmentParallel(ch, cb, ab, bb, d, 1)
}

// ApplyInstallmentParallel is ApplyInstallment across up to procs goroutines.
// Each C block (i,j) of the chunk is owned by exactly one goroutine, which
// applies that block's d panel updates in ascending-k order — no two
// goroutines touch the same block and the per-block floating-point order is
// exactly the sequential one, so the result is bitwise-identical for every
// procs value. procs ≤ 1 runs inline; procs ≤ 0 is treated as 1.
func ApplyInstallmentParallel(ch matrix.Chunk, cb, ab, bb []*matrix.Block, d, procs int) error {
	if d <= 0 || len(cb) != ch.H*ch.W || len(ab) != ch.H*d || len(bb) != d*ch.W {
		return fmt.Errorf("engine: installment shape mismatch: chunk %v, d=%d, |c|=%d |a|=%d |b|=%d",
			ch, d, len(cb), len(ab), len(bb))
	}
	blocks := ch.H * ch.W
	if procs > blocks {
		procs = blocks
	}
	if procs <= 1 {
		applyBlockRange(ch, cb, ab, bb, d, 0, blocks, 1)
		return nil
	}
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			applyBlockRange(ch, cb, ab, bb, d, g, blocks, procs)
		}(g)
	}
	wg.Wait()
	return nil
}

// applyBlockRange updates C blocks start, start+stride, … of the chunk, each
// through its full ascending-k panel sequence.
func applyBlockRange(ch matrix.Chunk, cb, ab, bb []*matrix.Block, d, start, blocks, stride int) {
	for idx := start; idx < blocks; idx += stride {
		i, j := idx/ch.W, idx%ch.W
		cij := cb[idx]
		for dk := 0; dk < d; dk++ {
			matrix.MulAdd(cij, ab[i*d+dk], bb[dk*ch.W+j])
		}
	}
}
