package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestRecorderEventCounts checks the invariant the per-job trace export
// relies on: a recorded run carries exactly one sendC and one recvC span per
// chunk and one sendAB span per installment — the same op counts as the
// plan — whichever executor ran it, and the computed C is still correct.
func TestRecorderEventCounts(t *testing.T) {
	pl := smallPlatform()
	inst := sched.Instance{R: 7, S: 11, T: 5}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	want := map[trace.Kind]int{}
	for _, op := range plan {
		want[op.Kind]++
	}
	if want[trace.SendC] == 0 || want[trace.SendAB] == 0 || want[trace.SendC] != want[trace.RecvC] {
		t.Fatalf("degenerate plan: op counts %v", want)
	}

	for name, pipelined := range map[string]bool{"sequential": false, "pipelined": true} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			q := 3
			a := matrix.NewBlockMatrix(inst.R, inst.T, q)
			b := matrix.NewBlockMatrix(inst.T, inst.S, q)
			c := matrix.NewBlockMatrix(inst.R, inst.S, q)
			a.FillRandom(rng)
			b.FillRandom(rng)
			c.FillRandom(rng)
			wantC := c.Clone()
			if err := matrix.Multiply(wantC, a, b); err != nil {
				t.Fatal(err)
			}

			rec := trace.NewRecorder("Het")
			ctx := trace.NewContext(context.Background(), rec)
			cfg := Config{Workers: pl.P(), T: inst.T, Pipelined: pipelined}
			if err := RunContext(ctx, cfg, plan, a, b, c); err != nil {
				t.Fatal(err)
			}
			if d := c.MaxAbsDiff(wantC); d > 1e-9 {
				t.Errorf("recorded run deviates from reference by %g", d)
			}

			tr := rec.Trace()
			got := map[trace.Kind]int{}
			for _, x := range tr.Transfers {
				if x.Worker < 0 || x.Worker >= pl.P() {
					t.Errorf("span on worker %d outside the platform", x.Worker)
				}
				got[x.Kind]++
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("%v spans = %d, plan has %d ops", k, got[k], n)
				}
			}
			// 2·chunks + installments: the uniform per-job total the serve
			// layer's exported traces are checked against.
			if total, exp := len(tr.Transfers), 2*want[trace.SendC]+want[trace.SendAB]; total != exp {
				t.Errorf("total spans = %d, want 2·chunks+installments = %d", total, exp)
			}
		})
	}
}
