package engine

import (
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Process-wide executor metrics. Every executor (sequential, pipelined,
// elastic) funnels through runJob/elasticRunJob or the sequential op loop,
// so these four counters plus the three per-op latency histograms cover all
// real executions — in-process, distributed, and every serve lease.
var (
	mChunks = obs.NewCounter("mm_engine_chunks_total",
		"Chunk jobs dispatched to workers, replays included.")
	mReplays = obs.NewCounter("mm_engine_chunk_replays_total",
		"Chunk jobs re-queued onto survivors after a worker failure or departure.")
	mFailovers = obs.NewCounter("mm_engine_worker_failures_total",
		"Workers retired mid-run (connection loss, heartbeat timeout, elastic departure).")
	mReplans = obs.NewCounter("mm_engine_replans_total",
		"Elastic executor re-plans (worker join, departure, or estimate drift).")

	mRedundantUnits = obs.NewCounter("mm_engine_redundant_units_total",
		"Redundant work units dispatched by the k-of-n gate (replicas, parities, speculative copies).")
	mDuplicateWins = obs.NewCounter("mm_engine_duplicate_wins_total",
		"Results discarded because another copy of the job had already committed.")
	mWastedBytes = obs.NewCounter("mm_engine_wasted_bytes_total",
		"Wire-size bytes of discarded duplicate results.")
	mDecodes = obs.NewCounter("mm_engine_decodes_total",
		"Chunk results reconstructed from MDS parity instead of a systematic unit.")

	hSendC = obs.NewHistogram("mm_engine_sendc_seconds",
		"Latency of delivering a C chunk to a worker.")
	hSendAB = obs.NewHistogram("mm_engine_sendab_seconds",
		"Latency of delivering one A/B installment to a worker.")
	hRecvC = obs.NewHistogram("mm_engine_recvc_seconds",
		"Latency of retrieving a finished chunk (includes the worker's residual compute).")
	hStragglerAbsorbed = obs.NewHistogram("mm_engine_straggler_absorbed_seconds",
		"In-flight time of units abandoned because their job completed elsewhere first.")
)

// observe feeds one completed backend operation into the latency histograms
// and, when the run is recorded, the per-job trace. Two time.Now() calls
// and a few atomic adds per operation — negligible next to the network or
// channel transfer it measures, and allocation-free unless recording.
func (st *stager) observe(w int, kind trace.Kind, blocks int, start, end time.Time) {
	switch kind {
	case trace.SendC:
		hSendC.Observe(end.Sub(start))
	case trace.SendAB:
		hSendAB.Observe(end.Sub(start))
	case trace.RecvC:
		hRecvC.Observe(end.Sub(start))
	}
	if st.rec != nil {
		st.rec.Transfer(w, kind, blocks, start, end)
	}
}
