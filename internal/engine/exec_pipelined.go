package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExecutePipelined replays plan against real matrices through be with one
// dispatch goroutine per worker: C ← C + A·B restricted to the chunks the
// plan covers, exactly as Execute, but concurrently.
//
// Each worker's jobs are issued in that worker's plan order by its own
// goroutine, so a blocking RecvC on one worker never stalls sends to the
// others — the paper's one-port model only ever serializes transfers, never
// transfer-vs-compute overlap, and the sequential executor's single op loop
// was stricter than the model for no fidelity gain. Chunk results land
// asynchronously in C as each RecvC completes; the plan's chunks are
// required to be pairwise disjoint (any correct plan covers C at most once),
// which makes those writes race-free without locking. Workers that fail with
// ErrWorkerDown are retired and their incomplete jobs replayed on the
// survivors, a whole replay wave in parallel.
//
// C is bitwise-identical to Execute's: a chunk's result depends only on the
// master's snapshot of that chunk (taken before any update to it, since jobs
// are disjoint) and on its own installment sequence, which one goroutine
// applies in plan order. When transfers are paced, pass a one-port gate to
// the backend (Config.OnePort, MasterOptions.OnePort) to keep modeled
// transfer slots serialized while still overlapping them with compute.
func ExecutePipelined(t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend) error {
	return ExecutePipelinedContext(context.Background(), t, plan, a, b, c, be)
}

// ExecutePipelinedContext is ExecutePipelined under a context: cancellation
// aborts every dispatch goroutine at its next job boundary (and, through a
// context-aware backend, interrupts in-flight transfers and waits), then
// fails the run with an error wrapping ctx.Err(). Cancellation latency is
// bounded by one backend operation, not by the remaining plan.
func ExecutePipelinedContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend) error {
	jobs, _, err := validatePlan(t, plan, a, b, c, be)
	if err != nil {
		return err
	}
	if err := checkChunksDisjoint(jobs, c.Rows, c.Cols); err != nil {
		return err
	}
	if ctx.Err() != nil {
		// Fail an already-dead context before any dispatch: no worker is
		// left holding a half-delivered job by a run that never had a chance.
		return abortErr(ctx, nil)
	}
	// Materialize the A and B blocks the plan references, up front: dispatch
	// goroutines gather overlapping panels concurrently, and lazy
	// materialization inside the shared input grids would race. Walking the
	// jobs (rather than the whole grids) keeps partial plans over large
	// lazily-allocated matrices from paying for blocks no job touches.
	for _, j := range jobs {
		ch := j.Chunk
		for _, p := range j.Panels {
			for i := ch.Row0; i < ch.Row0+ch.H; i++ {
				for k := p[0]; k < p[1]; k++ {
					a.Block(i, k)
				}
			}
			for k := p[0]; k < p[1]; k++ {
				for jj := ch.Col0; jj < ch.Col0+ch.W; jj++ {
					b.Block(k, jj)
				}
			}
		}
	}

	nw := be.Workers()
	byWorker := make([][]int, nw)
	for ji, j := range jobs {
		byWorker[j.Worker] = append(byWorker[j.Worker], ji)
	}

	var (
		mu       sync.Mutex
		firstErr error
		aborted  atomic.Bool
		orphans  []int // jobs whose worker died before their RecvC landed
	)
	alive := make([]bool, nw)
	for w := range alive {
		alive[w] = true
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		aborted.Store(true)
	}
	getErr := func() error {
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
	// Cancellation trips the same abort flag a fatal backend error does, so
	// every dispatch goroutine stops at its next job boundary; the watcher
	// runs concurrently with them, hence getErr/fail over bare reads.
	stopWatch := context.AfterFunc(ctx, func() { fail(ctx.Err()) })
	defer stopWatch()

	// One recorder lookup for the whole run; each wave goroutine carries it
	// in its stager (the Recorder is concurrency-safe).
	rec := trace.FromContext(ctx)

	// runWave dispatches each worker's assigned jobs from a dedicated
	// goroutine. A worker that dies is retired and its unfinished share
	// (current job included) queued for the next wave; any other error
	// aborts every goroutine at its next job boundary.
	runWave := func(assign [][]int) {
		var wg sync.WaitGroup
		for w, list := range assign {
			if len(list) == 0 {
				continue
			}
			wg.Add(1)
			go func(w int, list []int) {
				defer wg.Done()
				st := newStager(be)
				st.rec = rec
				for idx, ji := range list {
					if aborted.Load() {
						return
					}
					if err := runJob(be, w, jobs[ji], a, b, c, st); err != nil {
						if errors.Is(err, ErrWorkerDown) && ctx.Err() == nil {
							mFailovers.Inc()
							mReplays.Add(int64(len(list[idx:])))
							mu.Lock()
							alive[w] = false
							orphans = append(orphans, list[idx:]...)
							mu.Unlock()
							return
						}
						fail(err)
						return
					}
				}
			}(w, list)
		}
		wg.Wait()
	}

	runWave(byWorker)

	// Replay waves: orphans are spread round-robin over the survivors, each
	// survivor again working through its share concurrently with the rest.
	// Every wave either finishes jobs or retires workers, so this
	// terminates; it fails only when replayable jobs remain with no worker
	// left to take them.
	for getErr() == nil && len(orphans) > 0 {
		var survivors []int
		for w := 0; w < nw; w++ {
			if alive[w] {
				survivors = append(survivors, w)
			}
		}
		if len(survivors) == 0 {
			return abortErr(ctx, fmt.Errorf("engine: no workers left to replay chunk %v: %w", jobs[orphans[0]].Chunk, ErrWorkerDown))
		}
		assign := make([][]int, nw)
		for i, ji := range orphans {
			w := survivors[i%len(survivors)]
			assign[w] = append(assign[w], ji)
		}
		orphans = orphans[:0]
		runWave(assign)
	}
	return abortErr(ctx, getErr())
}

// checkChunksDisjoint verifies no two jobs' chunks share a C block, marking
// covered cells on the r×s grid. Disjointness is what lets completed chunks
// be written back to C concurrently without synchronization (and it is
// implied by any plan that computes the product correctly, since a block
// covered twice would accumulate its initial C contribution twice).
func checkChunksDisjoint(jobs []sim.PlanJob, r, s int) error {
	covered := make([]bool, r*s)
	for _, j := range jobs {
		ch := j.Chunk
		for i := ch.Row0; i < ch.Row0+ch.H; i++ {
			for k := ch.Col0; k < ch.Col0+ch.W; k++ {
				if covered[i*s+k] {
					return fmt.Errorf("engine: plan chunks overlap at C block (%d,%d); the pipelined executor requires disjoint chunks", i, k)
				}
				covered[i*s+k] = true
			}
		}
	}
	return nil
}
