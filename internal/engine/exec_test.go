package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sched"
)

// faultyBackend wraps an in-process execution and injects ErrWorkerDown:
// worker `victim` dies on its opsBeforeDeath-th backend operation. Surviving
// workers compute for real, so the executor's failover must still produce a
// correct product.
type faultyBackend struct {
	nw             int
	victim         int
	opsBeforeDeath int
	opsSeen        int
	held           []struct {
		ch     matrix.Chunk
		blocks []*matrix.Block
	}
}

func newFaultyBackend(nw, victim, opsBeforeDeath int) *faultyBackend {
	return &faultyBackend{
		nw: nw, victim: victim, opsBeforeDeath: opsBeforeDeath,
		held: make([]struct {
			ch     matrix.Chunk
			blocks []*matrix.Block
		}, nw),
	}
}

func (f *faultyBackend) Workers() int { return f.nw }

func (f *faultyBackend) dead(w int) bool {
	if w != f.victim {
		return false
	}
	f.opsSeen++
	return f.opsSeen > f.opsBeforeDeath
}

func (f *faultyBackend) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	if f.dead(w) {
		return fmt.Errorf("injected: %w", ErrWorkerDown)
	}
	if f.held[w].blocks != nil {
		return fmt.Errorf("worker %d already holds a chunk", w)
	}
	f.held[w].ch, f.held[w].blocks = ch, blocks
	return nil
}

func (f *faultyBackend) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	if f.dead(w) {
		return fmt.Errorf("injected: %w", ErrWorkerDown)
	}
	if f.held[w].blocks == nil || f.held[w].ch != ch {
		return fmt.Errorf("worker %d got inputs for %v it does not hold", w, ch)
	}
	return ApplyInstallment(ch, f.held[w].blocks, a, b, k1-k0)
}

func (f *faultyBackend) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	if f.dead(w) {
		return nil, fmt.Errorf("injected: %w", ErrWorkerDown)
	}
	if f.held[w].blocks == nil || f.held[w].ch != ch {
		return nil, fmt.Errorf("worker %d asked to flush %v it does not hold", w, ch)
	}
	blocks := f.held[w].blocks
	f.held[w].blocks = nil
	return blocks, nil
}

// TestExecuteFailsOverDeadWorker kills each worker in turn at several points
// of the plan and checks the survivors still complete a correct product.
func TestExecuteFailsOverDeadWorker(t *testing.T) {
	inst := sched.Instance{R: 6, S: 9, T: 4}
	pl := smallPlatform()
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 3
	for victim := 0; victim < pl.P(); victim++ {
		for _, deathAt := range []int{0, 1, 3, 7} {
			rng := rand.New(rand.NewSource(11))
			a := matrix.NewBlockMatrix(inst.R, inst.T, q)
			b := matrix.NewBlockMatrix(inst.T, inst.S, q)
			c := matrix.NewBlockMatrix(inst.R, inst.S, q)
			a.FillRandom(rng)
			b.FillRandom(rng)
			c.FillRandom(rng)
			want := c.Clone()
			if err := matrix.Multiply(want, a, b); err != nil {
				t.Fatal(err)
			}
			be := newFaultyBackend(pl.P(), victim, deathAt)
			if err := Execute(inst.T, plan, a, b, c, be); err != nil {
				t.Fatalf("victim %d death-at %d: %v", victim, deathAt, err)
			}
			if d := c.MaxAbsDiff(want); d > 1e-9 {
				t.Errorf("victim %d death-at %d: C wrong by %g", victim, deathAt, d)
			}
		}
	}
}

// TestExecuteAllWorkersDead checks the executor reports failure rather than
// silently dropping chunks when no survivor remains.
func TestExecuteAllWorkersDead(t *testing.T) {
	inst := sched.Instance{R: 2, S: 2, T: 2}
	res, err := sched.Hom{}.Schedule(smallPlatform(), inst)
	if err != nil {
		t.Fatal(err)
	}
	q := 2
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	// Every worker dies immediately: victim catches one, and the replay
	// backend below kills the rest.
	be := &allDead{nw: smallPlatform().P()}
	if err := Execute(inst.T, res.Plan(), a, b, c, be); err == nil {
		t.Fatal("executor claimed success with every worker dead")
	}
}

type allDead struct{ nw int }

func (d *allDead) Workers() int { return d.nw }
func (d *allDead) SendC(int, matrix.Chunk, []*matrix.Block) error {
	return ErrWorkerDown
}
func (d *allDead) SendAB(int, matrix.Chunk, int, int, []*matrix.Block, []*matrix.Block) error {
	return ErrWorkerDown
}
func (d *allDead) RecvC(int, matrix.Chunk) ([]*matrix.Block, error) {
	return nil, ErrWorkerDown
}
