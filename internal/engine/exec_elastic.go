package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Elastic configures the adaptive executor: live cost estimates, mid-job
// fleet membership, and the re-plan policy. See ExecuteElasticContext.
type Elastic struct {
	// Tracker receives every observed transfer and compute and prices jobs
	// for re-planning. Required; use adapt.NewTracker seeded from the
	// declared platform (or a Tracker.View for lease-local indices).
	Tracker adapt.Estimator
	// Join delivers the indices of workers that become addressable mid-run
	// (the backend must already route to them — e.g. after Master.AddWorker).
	// Each join triggers a re-plan of the un-dispatched jobs onto the grown
	// fleet. Indices already alive, out of the backend's range, or arriving
	// after the run completes are ignored. Optional.
	Join <-chan int
	// DriftThreshold is the relative estimate movement (since the estimates
	// the current assignment was planned with) that triggers a re-plan.
	// 0 selects DefaultDriftThreshold; negative disables drift re-planning.
	DriftThreshold float64
	// OnReplan, when non-nil, observes every re-plan: reason is "join",
	// "depart" or "drift", and pending is the number of un-dispatched jobs
	// that were redistributed. Called with executor-internal locks held — it
	// must be fast, must not block, and must not call back into the executor.
	OnReplan func(reason string, pending int)
}

// DefaultDriftThreshold re-plans when some worker's estimated cost moved 50%
// from the value the current assignment was computed with — far past EWMA
// sample noise, well within "a co-tenant started competing for the node".
const DefaultDriftThreshold = 0.5

// ExecuteElasticContext replays plan against real matrices through be like
// ExecutePipelinedContext — one dispatch path per worker, disjoint chunks
// written back concurrently, bitwise-identical C — but with an *adaptive*
// assignment. The plan's own worker assignment is only the starting point;
// the executor then:
//
//   - times every transfer and every job's residual compute and feeds the
//     Elastic.Tracker, maintaining live per-worker throughput estimates
//     (EWMA, seeded from the declared platform);
//   - accepts workers joining mid-run (Elastic.Join) and retires workers
//     that fail with ErrWorkerDown, exactly like failover — a departure is
//     just the most extreme estimate update;
//   - on a join, a departure, or estimate drift past Elastic.DriftThreshold,
//     re-plans every un-dispatched job onto the currently-alive workers by
//     greedy earliest-finish over the live estimates (adapt.Balance).
//
// Only *which worker runs a job* ever changes: a job's chunk geometry and
// installment sequence are fixed by the plan, all chunks are pairwise
// disjoint, and every worker applies the same ascending-k kernel order — so
// C is bitwise-identical to Execute's under every join, departure and
// re-plan, which is what makes rebalancing safe to do mid-flight.
//
// The run fails only on a non-failover error, on ctx cancellation, or when
// un-dispatched jobs remain and every worker is gone.
func ExecuteElasticContext(ctx context.Context, t int, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, be Backend, el *Elastic) error {
	if el == nil || el.Tracker == nil {
		return fmt.Errorf("engine: elastic execution needs an estimate tracker (use ExecutePipelinedContext for a static run)")
	}
	jobs, _, err := validatePlan(t, plan, a, b, c, be)
	if err != nil {
		return err
	}
	if err := checkChunksDisjoint(jobs, c.Rows, c.Cols); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return abortErr(ctx, nil)
	}
	// Materialize referenced input blocks up front: concurrent dispatch
	// goroutines must never lazily allocate inside the shared grids (same
	// reasoning as the pipelined executor).
	for _, j := range jobs {
		ch := j.Chunk
		for _, p := range j.Panels {
			for i := ch.Row0; i < ch.Row0+ch.H; i++ {
				for k := p[0]; k < p[1]; k++ {
					a.Block(i, k)
				}
			}
			for k := p[0]; k < p[1]; k++ {
				for jj := ch.Col0; jj < ch.Col0+ch.W; jj++ {
					b.Block(k, jj)
				}
			}
		}
	}

	// Per-job cost primitives: blocks moved over the job's whole life (chunk
	// down, installments, chunk back) and block updates performed. These are
	// what the estimator prices a job with at re-plan time.
	items := make([]adapt.Item, len(jobs))
	for ji, j := range jobs {
		it := adapt.Item{ID: ji, Blocks: 2 * j.Chunk.Blocks()}
		for _, p := range j.Panels {
			it.Blocks += (p[1] - p[0]) * (j.Chunk.H + j.Chunk.W)
			it.Updates += int64(p[1]-p[0]) * int64(j.Chunk.H) * int64(j.Chunk.W)
		}
		items[ji] = it
	}

	threshold := el.DriftThreshold
	if threshold == 0 {
		threshold = DefaultDriftThreshold
	}

	nw := be.Workers()
	el.Tracker.Ensure(nw - 1)
	es := &elasticState{
		el:       el,
		items:    items,
		queues:   make(map[int][]int, nw),
		alive:    make(map[int]bool, nw),
		inflight: make(map[int]int, nw),
		pending:  len(jobs),
	}
	es.cond = sync.NewCond(&es.mu)
	for w := 0; w < nw; w++ {
		es.alive[w] = true
		es.queues[w] = nil
	}
	for ji, j := range jobs {
		es.queues[j.Worker] = append(es.queues[j.Worker], ji)
	}
	// The initial assignment is the plan's own; estimates are rebased to it
	// so drift measures movement since *this* assignment was chosen.
	el.Tracker.Rebase()

	// Cancellation trips the abort flag like a fatal error; every dispatch
	// goroutine stops at its next job boundary.
	stopWatch := context.AfterFunc(ctx, func() {
		es.mu.Lock()
		es.failLocked(ctx.Err())
		es.mu.Unlock()
	})
	defer stopWatch()

	var wg sync.WaitGroup
	spawn := func(w int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			es.workerLoop(ctx, be, w, jobs, a, b, c, threshold)
		}()
	}
	for w := 0; w < nw; w++ {
		spawn(w)
	}

	// The join handler folds arriving workers in until the run settles. It
	// owns no state: membership changes happen under es.mu like everything
	// else, so a join racing the final job completion is either folded in
	// (and finds no pending work) or ignored.
	runDone := make(chan struct{})
	var joinWG sync.WaitGroup
	if el.Join != nil {
		joinWG.Add(1)
		go func() {
			defer joinWG.Done()
			for {
				select {
				case w, ok := <-el.Join:
					if !ok {
						return
					}
					if w < 0 || w >= be.Workers() {
						continue
					}
					el.Tracker.Ensure(w)
					es.mu.Lock()
					if es.alive[w] || es.retired(w) || es.finished || es.aborted {
						es.mu.Unlock()
						continue
					}
					es.alive[w] = true
					es.queues[w] = nil
					es.replanLocked("join", nil)
					spawn(w)
					es.cond.Broadcast()
					es.mu.Unlock()
				case <-runDone:
					return
				}
			}
		}()
	}

	// Wait for completion: all jobs done, an abort, or no workers left with
	// jobs still pending.
	es.mu.Lock()
	for es.pending > 0 && !es.aborted {
		if len(es.alive) == 0 {
			es.failLocked(fmt.Errorf("engine: no workers left to run %d pending chunks: %w", es.pending, ErrWorkerDown))
			break
		}
		es.cond.Wait()
	}
	es.finished = true
	firstErr := es.firstErr
	es.cond.Broadcast()
	es.mu.Unlock()

	close(runDone)
	joinWG.Wait()
	wg.Wait()
	return abortErr(ctx, firstErr)
}

// elasticState is the executor's shared membership-and-queue state: one
// mutex, one condition variable, per-worker job queues that a re-plan may
// rewrite wholesale.
type elasticState struct {
	el    *Elastic
	items []adapt.Item

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[int][]int // queued (un-dispatched) job indices per alive worker
	alive    map[int]bool
	dead     []int       // retired workers, so a stale join cannot resurrect one
	inflight map[int]int // worker → job index currently running on it
	pending  int         // jobs not yet completed
	finished bool
	aborted  bool
	firstErr error
	// sinceReplan counts job completions since the last re-plan; drift
	// re-plans wait for at least one completion per alive worker, so a slow
	// EWMA convergence cannot re-plan after every single job (no thrash).
	sinceReplan int
}

func (es *elasticState) retired(w int) bool {
	for _, d := range es.dead {
		if d == w {
			return true
		}
	}
	return false
}

func (es *elasticState) failLocked(err error) {
	if es.firstErr == nil {
		es.firstErr = err
	}
	es.aborted = true
	es.cond.Broadcast()
}

// replanLocked redistributes every queued (not in-flight) job over the
// currently-alive workers by greedy earliest-finish on the live estimates,
// with extra (jobs recovered from a departing worker) folded in. In-flight
// jobs stay where they are and count as load. The caller holds es.mu.
func (es *elasticState) replanLocked(reason string, extra []int) {
	pending := append([]int(nil), extra...)
	workers := make([]int, 0, len(es.alive))
	for w := range es.alive {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		pending = append(pending, es.queues[w]...)
		es.queues[w] = nil
	}
	if len(workers) == 0 {
		if len(pending) > 0 || len(es.inflight) > 0 {
			es.failLocked(fmt.Errorf("engine: no workers left to replay %d chunks: %w", len(pending), ErrWorkerDown))
		}
		return
	}
	its := make([]adapt.Item, len(pending))
	for i, ji := range pending {
		its[i] = es.items[ji]
	}
	load := make(map[int]float64, len(es.inflight))
	for w, ji := range es.inflight {
		load[w] = es.el.Tracker.JobCost(w, es.items[ji].Blocks, es.items[ji].Updates)
	}
	assign := adapt.Balance(its, workers, es.el.Tracker, load)
	for w, list := range assign {
		es.queues[w] = list
	}
	es.sinceReplan = 0
	mReplans.Inc()
	// Rebase so drift is measured against the estimates this assignment was
	// computed with — the re-plan consumed the drift it reacted to.
	es.el.Tracker.Rebase()
	if es.el.OnReplan != nil {
		es.el.OnReplan(reason, len(pending))
	}
}

// workerLoop dispatches worker w's queue until the run settles or w is
// retired. One goroutine per alive worker; a worker whose queue is empty
// parks on the condition variable — a later re-plan may hand it work.
func (es *elasticState) workerLoop(ctx context.Context, be Backend, w int, jobs []sim.PlanJob, a, b, c *matrix.BlockMatrix, threshold float64) {
	st := newStager(be)
	st.rec = trace.FromContext(ctx)
	for {
		es.mu.Lock()
		for len(es.queues[w]) == 0 && es.alive[w] && es.pending > 0 && !es.aborted && !es.finished {
			es.cond.Wait()
		}
		if !es.alive[w] || es.pending == 0 || es.aborted || es.finished {
			es.mu.Unlock()
			return
		}
		ji := es.queues[w][0]
		es.queues[w] = es.queues[w][1:]
		es.inflight[w] = ji
		es.mu.Unlock()

		err := elasticRunJob(be, w, jobs[ji], a, b, c, st, es.el.Tracker, es.items[ji].Updates)

		es.mu.Lock()
		delete(es.inflight, w)
		if err != nil {
			if errors.Is(err, ErrWorkerDown) && ctx.Err() == nil {
				// Departure: retire w, fold its unfinished share (current job
				// included) back into the pending pool, and re-plan onto the
				// survivors — failover is just the extreme end of adaptation.
				delete(es.alive, w)
				es.dead = append(es.dead, w)
				recovered := append([]int{ji}, es.queues[w]...)
				mFailovers.Inc()
				mReplays.Add(int64(len(recovered)))
				delete(es.queues, w)
				es.replanLocked("depart", recovered)
				es.cond.Broadcast()
				es.mu.Unlock()
				return
			}
			es.failLocked(err)
			es.mu.Unlock()
			return
		}
		es.pending--
		es.sinceReplan++
		if es.pending > 0 && threshold > 0 && es.sinceReplan >= len(es.alive) && es.el.Tracker.Drift() > threshold {
			es.replanLocked("drift", nil)
		}
		es.cond.Broadcast()
		es.mu.Unlock()
	}
}

// elasticRunJob is runJob with observation: each send is timed as a transfer
// of its block count, and the job's residual wall time (total minus observed
// transfer time) is attributed to compute. The split is approximate — a
// backend may absorb compute backpressure inside a send — but the *sum*
// tracks the job's true wall cost, which is what re-planning compares
// workers by, and the EWMA smooths the attribution noise.
func elasticRunJob(be Backend, w int, j sim.PlanJob, a, b, c *matrix.BlockMatrix, st *stager, tr adapt.Estimator, updates int64) error {
	mChunks.Inc()
	start := time.Now()
	var transfer time.Duration

	blocks := st.stageChunk(c, j.Chunk)
	t0 := time.Now()
	err := be.SendC(w, j.Chunk, blocks)
	d := time.Since(t0)
	st.releaseChunk(blocks)
	if err != nil {
		return err
	}
	transfer += d
	tr.ObserveTransfer(w, j.Chunk.Blocks(), d)
	st.observe(w, trace.SendC, j.Chunk.Blocks(), t0, t0.Add(d))

	for _, p := range j.Panels {
		am, bm := st.stagePanels(a, b, j.Chunk, p[0], p[1])
		t0 = time.Now()
		if err := be.SendAB(w, j.Chunk, p[0], p[1], am, bm); err != nil {
			return err
		}
		d = time.Since(t0)
		transfer += d
		tr.ObserveTransfer(w, (p[1]-p[0])*(j.Chunk.H+j.Chunk.W), d)
		st.observe(w, trace.SendAB, len(am)+len(bm), t0, t0.Add(d))
	}

	// The return transfer rides inside the RecvC wait; it is charged to the
	// compute share below rather than invented out of thin air.
	t0 = time.Now()
	result, err := be.RecvC(w, j.Chunk)
	if err != nil {
		return err
	}
	st.observe(w, trace.RecvC, j.Chunk.Blocks(), t0, time.Now())
	if err := writeChunk(c, j.Chunk, result); err != nil {
		return err
	}
	if compute := time.Since(start) - transfer; compute > 0 {
		tr.ObserveCompute(w, updates, compute)
	}
	return nil
}
