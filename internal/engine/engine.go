// Package engine executes a scheduled plan for real: master and workers
// exchange actual matrix blocks, workers perform genuine floating-point block
// updates, and the master replays the exact operation order a scheduler
// produced (the Plan recorded by internal/sim).
//
// The package splits into two layers. The backend-agnostic plan executors —
// validation, operation ordering, C-accumulation, and failover of dead
// workers' jobs — are shared by every real runtime: Execute issues ops
// strictly in plan order from one goroutine, while ExecutePipelined drives
// each worker from a dedicated dispatch goroutine so transfers to distinct
// workers and all computes overlap (bitwise-identical C either way). Run
// wires either executor, chosen by Config.Pipelined, to the in-process
// backend: workers are goroutines behind channels, and each worker's input
// channel provides one buffered slot so communication to a worker overlaps
// that worker's computation, exactly the double-buffering of the μ²+4μ
// layout. Optionally each transfer is paced at the platform's c_i per block
// so heterogeneous links are felt in wall-clock time; under the pipelined
// executor, Config.OnePort serializes those paced slots through a
// TransferGate, recovering the paper's one-port master. internal/net wires
// the same executors to remote workers over TCP.
//
// Its purpose is verification: after Run, C must equal the reference product,
// proving the scheduler moved every block where it claimed and no update was
// lost — something the pure simulator cannot establish.
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Config controls a real execution.
type Config struct {
	Workers int // number of workers referenced by the plan
	T       int // inner block dimension of the product
	// Platform, when non-nil together with TimePerUnit, paces transfers:
	// sending X blocks to worker i sleeps X·c_i·TimePerUnit. Leave
	// TimePerUnit zero for full-speed verification runs.
	Platform    *platform.Platform
	TimePerUnit time.Duration
	// Pipelined selects the concurrent executor: each worker's jobs are
	// dispatched by a dedicated goroutine, so transfers to distinct workers
	// and all computes overlap. C is bitwise-identical either way.
	Pipelined bool
	// OnePort, with Pipelined and pacing, serializes the paced transfer
	// slots across workers through a TransferGate, restoring the paper's
	// one-port master: overlap of transfer and compute, but never of two
	// transfers. Without pacing the gate is idle and costs nothing.
	OnePort bool
	// Procs bounds the goroutines each in-process worker spends on one
	// installment (its C blocks are split across them; per-block arithmetic
	// order is unchanged). ≤1 means sequential — the right default when
	// several goroutine workers already share the process.
	Procs int
}

// message types exchanged between master and workers.
type chunkMsg struct {
	chunk  matrix.Chunk
	blocks []*matrix.Block // row-major H×W
}

type installMsg struct {
	k0, k1 int
	a      []*matrix.Block // H×(k1-k0), row-major
	b      []*matrix.Block // (k1-k0)×W, row-major
}

type workerMsg struct {
	chunk   *chunkMsg
	install *installMsg
	flush   bool // return the current chunk
}

// TransferGate serializes the transfer slots of a one-port master: pipelined
// dispatch goroutines hold it only while a (paced) transfer occupies the
// link, never while waiting on a worker's compute. A nil gate is an
// unconstrained (multi-port) master.
type TransferGate struct{ mu sync.Mutex }

// Lock acquires the port; nil-safe.
func (g *TransferGate) Lock() {
	if g != nil {
		g.mu.Lock()
	}
}

// Unlock releases the port; nil-safe.
func (g *TransferGate) Unlock() {
	if g != nil {
		g.mu.Unlock()
	}
}

// chanBackend is the in-process Backend: one goroutine per worker, channels
// as links. Its sends only fail when the run's context is cancelled, so
// Execute's failover path is inert here.
type chanBackend struct {
	cfg  Config
	ctx  context.Context // the run's context; aborts paced transfers and waits
	gate *TransferGate   // non-nil: serialize paced transfer slots (one-port)
	in   []chan workerMsg
	out  []chan chunkMsg
}

func (cb *chanBackend) Workers() int { return len(cb.in) }

// CopiesBlocks implements CopyingBackend: it reports false because the
// channel transport hands the executor's block pointers straight to the
// worker goroutine, which holds them across the whole job — staging blocks
// must not be recycled behind its back.
func (cb *chanBackend) CopiesBlocks() bool { return false }

// pace charges one transfer slot: it occupies the master's port (the gate,
// when one-port) for the blocks' modeled link time. A cancelled run context
// aborts the slot mid-sleep, so cancellation latency is bounded by one
// select, not by the remaining modeled transfer time.
func (cb *chanBackend) pace(w, blocks int) error {
	if cb.cfg.Platform == nil || cb.cfg.TimePerUnit <= 0 {
		return cb.ctx.Err()
	}
	cb.gate.Lock()
	defer cb.gate.Unlock()
	d := time.Duration(float64(blocks) * cb.cfg.Platform.Workers[w].C * float64(cb.cfg.TimePerUnit))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-cb.ctx.Done():
		return fmt.Errorf("engine: transfer to worker P%d aborted: %w", w+1, cb.ctx.Err())
	}
}

// deliver hands one message to worker w, giving up when the run's context is
// cancelled (the worker may be stalled on a full input slot it will never
// drain in time).
func (cb *chanBackend) deliver(w int, msg workerMsg) error {
	select {
	case cb.in[w] <- msg:
		return nil
	case <-cb.ctx.Done():
		return fmt.Errorf("engine: send to worker P%d aborted: %w", w+1, cb.ctx.Err())
	}
}

func (cb *chanBackend) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	if err := cb.pace(w, ch.Blocks()); err != nil {
		return err
	}
	return cb.deliver(w, workerMsg{chunk: &chunkMsg{chunk: ch, blocks: blocks}})
}

func (cb *chanBackend) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	if err := cb.pace(w, (k1-k0)*(ch.H+ch.W)); err != nil {
		return err
	}
	return cb.deliver(w, workerMsg{install: &installMsg{k0: k0, k1: k1, a: a, b: b}})
}

func (cb *chanBackend) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	if err := cb.deliver(w, workerMsg{flush: true}); err != nil {
		return nil, err
	}
	var done chunkMsg
	select {
	case done = <-cb.out[w]:
	case <-cb.ctx.Done():
		// The worker's answer lands in its buffered out slot instead; the
		// worker never blocks on an abandoned flush.
		return nil, fmt.Errorf("engine: result from worker P%d abandoned: %w", w+1, cb.ctx.Err())
	}
	if done.chunk != ch {
		return nil, fmt.Errorf("engine: worker P%d returned chunk %v, expected %v", w+1, done.chunk, ch)
	}
	// The return transfer is charged after the worker's answer is validated
	// and before the chunk is handed back: the link is busy between the
	// worker finishing and the master owning the data, and under a one-port
	// gate that slot — not the wait for compute — is what serializes against
	// other workers' transfers.
	if err := cb.pace(w, ch.Blocks()); err != nil {
		return nil, err
	}
	return done.blocks, nil
}

// Run replays plan against real matrices on the in-process backend:
// C ← C + A·B restricted to the chunks the plan covers (a correct plan
// covers all of C exactly once). A is r×t, B t×s, C r×s blocks.
//
// Run cannot be interrupted; library callers should prefer RunContext (or
// the matmul facade, which plumbs a context through every runtime).
func Run(cfg Config, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	return RunContext(context.Background(), cfg, plan, a, b, c)
}

// RunContext is Run under a context: cancelling ctx aborts dispatch at the
// next operation boundary, interrupts in-flight paced transfers, drains the
// worker goroutines, and returns an error wrapping ctx's error. A run that
// is aborted leaves C partially updated; the input matrices are untouched.
func RunContext(ctx context.Context, cfg Config, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	return runOnChanBackend(ctx, cfg, func(cb *chanBackend) error {
		if cfg.Pipelined {
			return ExecutePipelinedContext(ctx, cfg.T, plan, a, b, c, cb)
		}
		return ExecuteContext(ctx, cfg.T, plan, a, b, c, cb)
	})
}

// RunElasticContext is RunContext through the adaptive executor: the same
// in-process goroutine workers, but dispatch re-plans un-started chunks onto
// the live throughput estimates (see ExecuteElasticContext). The in-process
// fleet is fixed for the run — goroutine workers neither crash nor join — so
// elasticity here means estimate tracking and drift-triggered rebalancing;
// join and departure handling are exercised by the networked runtimes.
func RunElasticContext(ctx context.Context, cfg Config, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, el *Elastic) error {
	return runOnChanBackend(ctx, cfg, func(cb *chanBackend) error {
		return ExecuteElasticContext(ctx, cfg.T, plan, a, b, c, cb, el)
	})
}

// RunRedundantContext is RunContext under the k-of-n completion gate: the
// plan's jobs plus red's replicas/parity units race, first result per job
// wins. In-process goroutine workers never straggle, so this mainly exists to
// keep the redundant path testable against the oracle backend; red == nil
// degenerates to the pipelined executor.
func RunRedundantContext(ctx context.Context, cfg Config, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix, red *Redundancy) error {
	return runOnChanBackend(ctx, cfg, func(cb *chanBackend) error {
		return ExecuteRedundantContext(ctx, cfg.T, plan, a, b, c, cb, red)
	})
}

// runOnChanBackend validates cfg, brings up the in-process goroutine
// workers, runs exec against them, and drains the workers' error reports.
func runOnChanBackend(ctx context.Context, cfg Config, exec func(*chanBackend) error) error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("engine: need a positive worker count")
	}
	if cfg.Platform != nil && cfg.Platform.P() < cfg.Workers {
		return fmt.Errorf("engine: plan references %d workers but platform has %d", cfg.Workers, cfg.Platform.P())
	}

	cb := &chanBackend{
		cfg: cfg,
		ctx: ctx,
		in:  make([]chan workerMsg, cfg.Workers),
		out: make([]chan chunkMsg, cfg.Workers),
	}
	if cfg.Pipelined && cfg.OnePort {
		cb.gate = &TransferGate{}
	}
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		// Capacity 1 gives each worker one buffered installment slot: the
		// master's send of step k+1 completes while step k computes. The out
		// slot is buffered too, so a worker answering a flush the master
		// abandoned (context cancelled mid-RecvC) never blocks and still
		// drains cleanly when its input channel closes.
		cb.in[w] = make(chan workerMsg, 1)
		cb.out[w] = make(chan chunkMsg, 1)
		go worker(cb.in[w], cb.out[w], errs, cfg.Procs)
	}

	runErr := exec(cb)

	for w := 0; w < cfg.Workers; w++ {
		close(cb.in[w])
	}
	for w := 0; w < cfg.Workers; w++ {
		if err := <-errs; err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}

// worker consumes chunk/installment/flush messages until its channel closes.
// It owns at most one chunk at a time and applies each installment's panels
// with the real block kernel. On a protocol violation it keeps answering
// flushes (with an empty chunk the master will reject) so the master never
// blocks forever, and reports the first error when the channel closes.
func worker(in <-chan workerMsg, out chan<- chunkMsg, errs chan<- error, procs int) {
	var cur *chunkMsg
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
	}
	for msg := range in {
		switch {
		case msg.chunk != nil:
			if cur != nil {
				fail("engine: worker received a chunk while holding one")
				continue
			}
			cur = msg.chunk
		case msg.install != nil:
			if cur == nil || firstErr != nil {
				fail("engine: worker received inputs with no chunk")
				continue
			}
			inst := msg.install
			if err := ApplyInstallmentParallel(cur.chunk, cur.blocks, inst.a, inst.b, inst.k1-inst.k0, procs); err != nil {
				fail("%v", err)
			}
		case msg.flush:
			if cur == nil {
				fail("engine: flush with no chunk")
				out <- chunkMsg{}
				continue
			}
			out <- *cur
			cur = nil
		}
	}
	errs <- firstErr
}
