// Package engine executes a scheduled plan for real: master and workers are
// goroutines exchanging actual matrix blocks over channels, workers perform
// genuine floating-point block updates, and the master replays the exact
// operation order a scheduler produced (the Plan recorded by internal/sim).
//
// It is the in-process stand-in for the paper's MPI runtime: the master
// performs its transfers strictly one at a time (the one-port model — the
// master goroutine is the port), while each worker's input channel provides
// one buffered slot so communication to a worker overlaps that worker's
// computation, exactly the double-buffering of the μ²+4μ layout. Optionally
// each transfer is paced at the platform's c_i per block so heterogeneous
// links are felt in wall-clock time.
//
// Its purpose is verification: after Run, C must equal the reference product,
// proving the scheduler moved every block where it claimed and no update was
// lost — something the pure simulator cannot establish.
package engine

import (
	"fmt"
	"time"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config controls a real execution.
type Config struct {
	Workers int // number of workers referenced by the plan
	T       int // inner block dimension of the product
	// Platform, when non-nil together with TimePerUnit, paces transfers:
	// sending X blocks to worker i sleeps X·c_i·TimePerUnit. Leave
	// TimePerUnit zero for full-speed verification runs.
	Platform    *platform.Platform
	TimePerUnit time.Duration
}

// message types exchanged between master and workers.
type chunkMsg struct {
	chunk  matrix.Chunk
	blocks []*matrix.Block // row-major H×W
}

type installMsg struct {
	k0, k1 int
	a      []*matrix.Block // H×(k1-k0), row-major
	b      []*matrix.Block // (k1-k0)×W, row-major
}

type workerMsg struct {
	chunk   *chunkMsg
	install *installMsg
	flush   bool // return the current chunk
}

// Run replays plan against real matrices: C ← C + A·B restricted to the
// chunks the plan covers (a correct plan covers all of C exactly once).
// A is r×t, B t×s, C r×s blocks.
func Run(cfg Config, plan []sim.PlanOp, a, b, c *matrix.BlockMatrix) error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("engine: need a positive worker count")
	}
	if a.Rows != c.Rows || b.Cols != c.Cols || a.Cols != b.Rows || a.Cols != cfg.T {
		return fmt.Errorf("engine: shape mismatch A %dx%d, B %dx%d, C %dx%d, t=%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols, cfg.T)
	}
	if cfg.Platform != nil && cfg.Platform.P() < cfg.Workers {
		return fmt.Errorf("engine: plan references %d workers but platform has %d", cfg.Workers, cfg.Platform.P())
	}

	in := make([]chan workerMsg, cfg.Workers)
	out := make([]chan chunkMsg, cfg.Workers)
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		// Capacity 1 gives each worker one buffered installment slot: the
		// master's send of step k+1 completes while step k computes.
		in[w] = make(chan workerMsg, 1)
		out[w] = make(chan chunkMsg)
		go worker(in[w], out[w], errs)
	}

	pace := func(w, blocks int) {
		if cfg.Platform == nil || cfg.TimePerUnit <= 0 {
			return
		}
		time.Sleep(time.Duration(float64(blocks) * cfg.Platform.Workers[w].C * float64(cfg.TimePerUnit)))
	}

	var runErr error
	for _, op := range plan {
		if op.Worker < 0 || op.Worker >= cfg.Workers {
			runErr = fmt.Errorf("engine: plan references worker %d of %d", op.Worker, cfg.Workers)
			break
		}
		ch := op.Chunk
		switch op.Kind {
		case trace.SendC:
			if !ch.Valid(c.Rows, c.Cols) {
				runErr = fmt.Errorf("engine: plan chunk %v outside C (%dx%d)", ch, c.Rows, c.Cols)
			} else {
				blocks := make([]*matrix.Block, 0, ch.Blocks())
				for i := ch.Row0; i < ch.Row0+ch.H; i++ {
					for j := ch.Col0; j < ch.Col0+ch.W; j++ {
						blocks = append(blocks, c.Block(i, j).Clone())
					}
				}
				pace(op.Worker, ch.Blocks())
				in[op.Worker] <- workerMsg{chunk: &chunkMsg{chunk: ch, blocks: blocks}}
			}
		case trace.SendAB:
			if op.K0 < 0 || op.K1 > cfg.T || op.K0 >= op.K1 {
				runErr = fmt.Errorf("engine: plan installment panels [%d,%d) outside t=%d", op.K0, op.K1, cfg.T)
			} else {
				d := op.K1 - op.K0
				am := make([]*matrix.Block, 0, ch.H*d)
				for i := ch.Row0; i < ch.Row0+ch.H; i++ {
					for k := op.K0; k < op.K1; k++ {
						am = append(am, a.Block(i, k))
					}
				}
				bm := make([]*matrix.Block, 0, d*ch.W)
				for k := op.K0; k < op.K1; k++ {
					for j := ch.Col0; j < ch.Col0+ch.W; j++ {
						bm = append(bm, b.Block(k, j))
					}
				}
				pace(op.Worker, d*(ch.H+ch.W))
				in[op.Worker] <- workerMsg{install: &installMsg{k0: op.K0, k1: op.K1, a: am, b: bm}}
			}
		case trace.RecvC:
			in[op.Worker] <- workerMsg{flush: true}
			done := <-out[op.Worker]
			pace(op.Worker, ch.Blocks())
			if done.chunk != ch {
				runErr = fmt.Errorf("engine: worker P%d returned chunk %v, expected %v", op.Worker+1, done.chunk, ch)
			} else {
				idx := 0
				for i := ch.Row0; i < ch.Row0+ch.H; i++ {
					for j := ch.Col0; j < ch.Col0+ch.W; j++ {
						c.SetBlock(i, j, done.blocks[idx])
						idx++
					}
				}
			}
		}
		if runErr != nil {
			break
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		close(in[w])
	}
	for w := 0; w < cfg.Workers; w++ {
		if err := <-errs; err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}

// worker consumes chunk/installment/flush messages until its channel closes.
// It owns at most one chunk at a time and applies each installment's panels
// with the real block kernel. On a protocol violation it keeps answering
// flushes (with an empty chunk the master will reject) so the master never
// blocks forever, and reports the first error when the channel closes.
func worker(in <-chan workerMsg, out chan<- chunkMsg, errs chan<- error) {
	var cur *chunkMsg
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
	}
	for msg := range in {
		switch {
		case msg.chunk != nil:
			if cur != nil {
				fail("engine: worker received a chunk while holding one")
				continue
			}
			cur = msg.chunk
		case msg.install != nil:
			if cur == nil || firstErr != nil {
				fail("engine: worker received inputs with no chunk")
				continue
			}
			inst := msg.install
			d := inst.k1 - inst.k0
			h, w := cur.chunk.H, cur.chunk.W
			for i := 0; i < h; i++ {
				for dk := 0; dk < d; dk++ {
					ab := inst.a[i*d+dk]
					for j := 0; j < w; j++ {
						matrix.MulAdd(cur.blocks[i*w+j], ab, inst.b[dk*w+j])
					}
				}
			}
		case msg.flush:
			if cur == nil {
				fail("engine: flush with no chunk")
				out <- chunkMsg{}
				continue
			}
			out <- *cur
			cur = nil
		}
	}
	errs <- firstErr
}
