package engine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// buildMatrices returns random A, B, C and the serial reference C + A·B.
func buildMatrices(t *testing.T, inst sched.Instance, q int, seed int64) (a, b, c, want *matrix.BlockMatrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a = matrix.NewBlockMatrix(inst.R, inst.T, q)
	b = matrix.NewBlockMatrix(inst.T, inst.S, q)
	c = matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want = c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		t.Fatal(err)
	}
	return a, b, c, want
}

// TestPipelinedMatchesSequentialBitwise is the core guarantee of the
// concurrent executor: for every scheduler, the pipelined run's C is
// bitwise-identical to the sequential executor's (same chunk snapshots, same
// per-chunk installment order, same kernel), which in turn tracks the serial
// reference within floating-point reordering tolerance.
func TestPipelinedMatchesSequentialBitwise(t *testing.T) {
	inst := sched.Instance{R: 7, S: 11, T: 5}
	pl := smallPlatform()
	for _, s := range []sched.Scheduler{sched.Het{}, sched.ODDOML{}, sched.BMM{}, sched.Hom{}} {
		res, err := s.Schedule(pl, inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		plan := res.Plan()
		q := 4
		a, b, cSeq, want := buildMatrices(t, inst, q, 17)
		_, _, cPipe, _ := buildMatrices(t, inst, q, 17)

		if err := Run(Config{Workers: pl.P(), T: inst.T}, plan, a, b, cSeq); err != nil {
			t.Fatalf("%s: sequential: %v", s.Name(), err)
		}
		if err := Run(Config{Workers: pl.P(), T: inst.T, Pipelined: true}, plan, a, b, cPipe); err != nil {
			t.Fatalf("%s: pipelined: %v", s.Name(), err)
		}
		if d := cPipe.MaxAbsDiff(cSeq); d != 0 {
			t.Errorf("%s: pipelined C deviates from sequential C by %g (want bitwise equality)", s.Name(), d)
		}
		if d := cPipe.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("%s: pipelined C deviates from serial reference by %g", s.Name(), d)
		}
	}
}

// TestPipelinedFailsOverDeadWorker kills each worker in turn at several
// points and checks the parallel replay waves still complete a correct
// product. The faulty backend needs no extra locking: the executor
// serializes all operations on one worker within one goroutine, and wave
// boundaries give happens-before edges between waves.
func TestPipelinedFailsOverDeadWorker(t *testing.T) {
	inst := sched.Instance{R: 6, S: 9, T: 4}
	pl := smallPlatform()
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 3
	for victim := 0; victim < pl.P(); victim++ {
		for _, deathAt := range []int{0, 1, 3, 7} {
			a, b, c, want := buildMatrices(t, inst, q, 11)
			be := newFaultyBackend(pl.P(), victim, deathAt)
			if err := ExecutePipelined(inst.T, plan, a, b, c, be); err != nil {
				t.Fatalf("victim %d death-at %d: %v", victim, deathAt, err)
			}
			if d := c.MaxAbsDiff(want); d > 1e-9 {
				t.Errorf("victim %d death-at %d: C wrong by %g", victim, deathAt, d)
			}
		}
	}
}

// TestPipelinedAllWorkersDead checks the concurrent executor reports failure
// rather than silently dropping chunks when no survivor remains.
func TestPipelinedAllWorkersDead(t *testing.T) {
	inst := sched.Instance{R: 2, S: 2, T: 2}
	res, err := sched.Hom{}.Schedule(smallPlatform(), inst)
	if err != nil {
		t.Fatal(err)
	}
	q := 2
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	be := &allDead{nw: smallPlatform().P()}
	if err := ExecutePipelined(inst.T, res.Plan(), a, b, c, be); err == nil {
		t.Fatal("pipelined executor claimed success with every worker dead")
	}
}

// TestPipelinedRejectsOverlappingChunks: concurrent write-back relies on
// disjoint chunks, so a plan covering a C block twice must be refused up
// front rather than raced on.
func TestPipelinedRejectsOverlappingChunks(t *testing.T) {
	q := 2
	a := matrix.NewBlockMatrix(2, 2, q)
	b := matrix.NewBlockMatrix(2, 2, q)
	c := matrix.NewBlockMatrix(2, 2, q)
	ch := matrix.Chunk{Row0: 0, Col0: 0, H: 1, W: 1}
	plan := []sim.PlanOp{
		{Worker: 0, Kind: trace.SendC, Chunk: ch},
		{Worker: 0, Kind: trace.SendAB, Chunk: ch, K0: 0, K1: 2},
		{Worker: 0, Kind: trace.RecvC, Chunk: ch},
		{Worker: 1, Kind: trace.SendC, Chunk: ch},
		{Worker: 1, Kind: trace.SendAB, Chunk: ch, K0: 0, K1: 2},
		{Worker: 1, Kind: trace.RecvC, Chunk: ch},
	}
	be := newFaultyBackend(2, 0, 1<<30)
	if err := ExecutePipelined(2, plan, a, b, c, be); err == nil {
		t.Fatal("overlapping chunks accepted by the pipelined executor")
	}
}

// TestPipelinedPacedOnePort runs the pipelined executor with paced links and
// the one-port gate: the gate must serialize modeled transfer slots (so the
// run takes at least the summed transfer time) without breaking correctness.
func TestPipelinedPacedOnePort(t *testing.T) {
	inst := sched.Instance{R: 4, S: 6, T: 3}
	pl := smallPlatform()
	res, err := sched.ODDOML{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	q := 2
	a, b, c, want := buildMatrices(t, inst, q, 23)
	start := time.Now()
	cfg := Config{Workers: pl.P(), T: inst.T, Platform: pl, TimePerUnit: 20 * time.Microsecond, Pipelined: true, OnePort: true}
	if err := Run(cfg, res.Plan(), a, b, c); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("paced one-port run finished suspiciously fast (%v); pacing not applied", elapsed)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("paced one-port run wrong by %g", d)
	}
}

// TestApplyInstallmentParallelBitwise checks the multicore worker kernel is
// bitwise-identical to the sequential one for every procs value: block
// ownership never splits a block's ascending-k update order.
func TestApplyInstallmentParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ch := matrix.Chunk{Row0: 0, Col0: 0, H: 3, W: 5}
	d, q := 4, 6
	mkBlocks := func(n int) []*matrix.Block {
		out := make([]*matrix.Block, n)
		for i := range out {
			out[i] = matrix.NewBlock(q)
			out[i].FillRandom(rng)
		}
		return out
	}
	ab := mkBlocks(ch.H * d)
	bb := mkBlocks(d * ch.W)
	base := mkBlocks(ch.H * ch.W)
	seq := make([]*matrix.Block, len(base))
	for i := range base {
		seq[i] = base[i].Clone()
	}
	if err := ApplyInstallment(ch, seq, ab, bb, d); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{0, 2, 4, 16, 64} {
		par := make([]*matrix.Block, len(base))
		for i := range base {
			par[i] = base[i].Clone()
		}
		if err := ApplyInstallmentParallel(ch, par, ab, bb, d, procs); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for i := range par {
			if d := par[i].MaxAbsDiff(seq[i]); d != 0 {
				t.Errorf("procs=%d: block %d deviates by %g (want bitwise equality)", procs, i, d)
			}
		}
	}
}

// TestRunPipelinedWithProcs drives the whole in-process stack with
// multi-goroutine workers and checks the result still matches bitwise.
func TestRunPipelinedWithProcs(t *testing.T) {
	inst := sched.Instance{R: 6, S: 8, T: 4}
	pl := smallPlatform()
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	q := 4
	a, b, cSeq, want := buildMatrices(t, inst, q, 29)
	_, _, cPar, _ := buildMatrices(t, inst, q, 29)
	if err := Run(Config{Workers: pl.P(), T: inst.T}, res.Plan(), a, b, cSeq); err != nil {
		t.Fatal(err)
	}
	if err := Run(Config{Workers: pl.P(), T: inst.T, Pipelined: true, Procs: 3}, res.Plan(), a, b, cPar); err != nil {
		t.Fatal(err)
	}
	if d := cPar.MaxAbsDiff(cSeq); d != 0 {
		t.Errorf("procs=3 pipelined C deviates from sequential C by %g", d)
	}
	if d := cPar.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("procs=3 pipelined C deviates from reference by %g", d)
	}
}
