package engine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runScheduler plans an instance with the given scheduler and executes the
// plan for real, returning the computed C and the reference product.
func runScheduler(t *testing.T, s sched.Scheduler, pl *platform.Platform, inst sched.Instance, q int) (*matrix.BlockMatrix, *matrix.BlockMatrix) {
	t.Helper()
	res, err := s.Schedule(pl, inst)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	plan := res.Plan()
	if len(plan) == 0 {
		t.Fatalf("%s produced an empty plan", s.Name())
	}
	rng := rand.New(rand.NewSource(7))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		t.Fatal(err)
	}
	if err := Run(Config{Workers: pl.P(), T: inst.T}, plan, a, b, c); err != nil {
		t.Fatalf("%s: engine: %v", s.Name(), err)
	}
	return c, want
}

func smallPlatform() *platform.Platform {
	return platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 2, W: 1.5, M: 24},
		platform.Worker{C: 1.5, W: 2, M: 60},
	)
}

func TestEngineComputesCorrectProduct(t *testing.T) {
	inst := sched.Instance{R: 7, S: 11, T: 5}
	pl := smallPlatform()
	for _, s := range []sched.Scheduler{sched.ODDOML{}, sched.BMM{}, sched.Het{}, sched.ORROML{}, sched.OMMOML{}, sched.Hom{}, sched.HomI{}} {
		got, want := runScheduler(t, s, pl, inst, 4)
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("%s: result deviates from reference by %g", s.Name(), d)
		}
	}
}

func TestEngineWithPacedLinks(t *testing.T) {
	inst := sched.Instance{R: 4, S: 6, T: 3}
	pl := smallPlatform()
	res, err := sched.ODDOML{}.Schedule(pl, inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	q := 2
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = Run(Config{Workers: pl.P(), T: inst.T, Platform: pl, TimePerUnit: 20 * time.Microsecond}, res.Plan(), a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("paced run finished suspiciously fast (%v); pacing not applied", elapsed)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Errorf("paced run wrong by %g", d)
	}
}

func TestEngineRejectsBadPlans(t *testing.T) {
	q := 2
	a := matrix.NewBlockMatrix(2, 2, q)
	b := matrix.NewBlockMatrix(2, 2, q)
	c := matrix.NewBlockMatrix(2, 2, q)
	if err := Run(Config{Workers: 0, T: 2}, nil, a, b, c); err == nil {
		t.Error("zero workers accepted")
	}
	if err := Run(Config{Workers: 1, T: 3}, nil, a, b, c); err == nil {
		t.Error("shape mismatch accepted")
	}
	badChunk := []sim.PlanOp{{Worker: 0, Kind: trace.SendC, Chunk: matrix.Chunk{Row0: 0, Col0: 0, H: 5, W: 5}}}
	if err := Run(Config{Workers: 1, T: 2}, badChunk, a, b, c); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	badWorker := []sim.PlanOp{{Worker: 3, Kind: trace.SendC, Chunk: matrix.Chunk{H: 1, W: 1}}}
	if err := Run(Config{Workers: 1, T: 2}, badWorker, a, b, c); err == nil {
		t.Error("out-of-range worker accepted")
	}
	badPanel := []sim.PlanOp{
		{Worker: 0, Kind: trace.SendC, Chunk: matrix.Chunk{H: 1, W: 1}},
		{Worker: 0, Kind: trace.SendAB, Chunk: matrix.Chunk{H: 1, W: 1}, K0: 0, K1: 9},
	}
	if err := Run(Config{Workers: 1, T: 2}, badPanel, a, b, c); err == nil {
		t.Error("out-of-range panel accepted")
	}
}

func TestEngineHandlesProtocolViolation(t *testing.T) {
	q := 2
	a := matrix.NewBlockMatrix(2, 2, q)
	b := matrix.NewBlockMatrix(2, 2, q)
	c := matrix.NewBlockMatrix(2, 2, q)
	// Installment before any chunk: the worker must flag it without
	// deadlocking the master.
	plan := []sim.PlanOp{
		{Worker: 0, Kind: trace.SendAB, Chunk: matrix.Chunk{H: 1, W: 1}, K0: 0, K1: 1},
		{Worker: 0, Kind: trace.SendC, Chunk: matrix.Chunk{H: 1, W: 1}},
		{Worker: 0, Kind: trace.RecvC, Chunk: matrix.Chunk{H: 1, W: 1}},
	}
	if err := Run(Config{Workers: 1, T: 2}, plan, a, b, c); err == nil {
		t.Error("protocol violation not reported")
	}
}
