// Package adapt maintains online per-worker performance estimates for the
// elastic runtime: exponentially-weighted moving averages of each worker's
// observed link cost (time to move one block) and compute cost (time per
// block update), seeded from the declared platform description.
//
// The paper's schedulers plan against *declared* c_i and w_i; real
// heterogeneous platforms drift (shared nodes, thermal throttling, congested
// links), and the companion layer-based-partition work shows that
// measured-throughput partitioning beats declared-speed partitioning on real
// hardware. A Tracker closes that loop: the elastic executor feeds it every
// observed transfer and compute, re-plans against its live estimates, and
// services expose its snapshots (mmserve -status, matmul.Session.Stats).
//
// Estimates are absolute wall-clock costs (seconds per block, seconds per
// update). Seeds translate the declared model units through a nominal unit
// duration; because re-planning only ever compares workers against each
// other, the absolute seed scale washes out as soon as observations arrive —
// the EWMA pulls every sampled worker onto the measured scale.
package adapt

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/platform"
)

// DefaultAlpha is the EWMA weight of a new observation. High enough that a
// genuine speed change shows within a few installments, low enough that one
// noisy sample cannot trigger a re-plan by itself.
const DefaultAlpha = 0.4

// Estimate is one worker's live cost estimate.
type Estimate struct {
	C float64 // seconds to move one block to or from the worker
	W float64 // seconds per block update
	// Transfers and Computes count the observations folded into C and W; a
	// worker with zero samples still carries its seed (declared) estimate.
	Transfers int
	Computes  int
}

// Estimator is the observation-and-replan surface the elastic executor
// drives. *Tracker implements it over absolute worker indices; *View
// implements it over the remapped indices of one lease.
type Estimator interface {
	// ObserveTransfer folds one observed transfer of blocks blocks taking d.
	ObserveTransfer(w, blocks int, d time.Duration)
	// ObserveCompute folds one observed compute of updates block updates
	// taking d.
	ObserveCompute(w int, updates int64, d time.Duration)
	// JobCost is the estimated wall-clock cost of moving blocks blocks and
	// performing updates updates on worker w, in seconds.
	JobCost(w, blocks int, updates int64) float64
	// Drift is the largest relative deviation of any worker's estimate from
	// its value at the last Rebase.
	Drift() float64
	// Rebase makes the current estimates the drift baseline — called by the
	// executor whenever it (re-)plans, so drift measures movement since the
	// estimates the current assignment was computed with.
	Rebase()
	// Ensure grows the tracked set so index w is valid, seeding any new
	// workers from the mean of the existing estimates (a joining worker we
	// know nothing about is assumed fleet-average until observed).
	Ensure(w int)
}

// Tracker holds the per-worker estimates. Safe for concurrent use.
type Tracker struct {
	mu    sync.Mutex
	alpha float64
	est   []Estimate
	base  []Estimate // estimates at the last Rebase (drift reference)
}

var _ Estimator = (*Tracker)(nil)

// NewTracker seeds one estimate slot per declared worker: C = c_i·unit,
// W = w_i·unit. unit is the nominal wall-clock length of one model time
// unit — engine.Config.TimePerUnit for paced in-process runs, any nominal
// duration (e.g. a millisecond) for real platforms where only the declared
// *ratios* are meaningful. alpha ≤ 0 selects DefaultAlpha.
func NewTracker(specs []platform.Worker, unit time.Duration, alpha float64) *Tracker {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	if unit <= 0 {
		unit = time.Millisecond
	}
	t := &Tracker{alpha: alpha}
	for _, s := range specs {
		t.est = append(t.est, Estimate{C: s.C * unit.Seconds(), W: s.W * unit.Seconds()})
	}
	t.base = append([]Estimate(nil), t.est...)
	return t
}

// Workers is the number of tracked workers.
func (t *Tracker) Workers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.est)
}

// Grow appends a slot for a newly joined worker, seeded from its declared
// spec, and returns its index.
func (t *Tracker) Grow(spec platform.Worker, unit time.Duration) int {
	if unit <= 0 {
		unit = time.Millisecond
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Estimate{C: spec.C * unit.Seconds(), W: spec.W * unit.Seconds()}
	t.est = append(t.est, e)
	t.base = append(t.base, e)
	return len(t.est) - 1
}

// Ensure implements Estimator: indices ≤ w become valid, new slots seeded
// with the mean of the existing estimates.
func (t *Tracker) Ensure(w int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.est) <= w {
		e := t.meanLocked()
		t.est = append(t.est, e)
		t.base = append(t.base, e)
	}
}

// meanLocked is the average estimate across tracked workers — the seed for a
// worker that joins with no declared spec.
func (t *Tracker) meanLocked() Estimate {
	if len(t.est) == 0 {
		return Estimate{C: 1e-3, W: 1e-3}
	}
	var e Estimate
	for _, x := range t.est {
		e.C += x.C
		e.W += x.W
	}
	e.C /= float64(len(t.est))
	e.W /= float64(len(t.est))
	return e
}

// minCost floors an observation-derived per-unit cost, so a zero-duration
// sample (sub-resolution clock, loopback transfer) cannot zero an estimate
// and poison every later JobCost comparison.
const minCost = 1e-12

// ObserveTransfer implements Estimator.
func (t *Tracker) ObserveTransfer(w, blocks int, d time.Duration) {
	if blocks <= 0 || d < 0 {
		return
	}
	per := d.Seconds() / float64(blocks)
	if per < minCost {
		per = minCost
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w < 0 || w >= len(t.est) {
		return
	}
	e := &t.est[w]
	e.C += t.alpha * (per - e.C)
	e.Transfers++
}

// ObserveCompute implements Estimator.
func (t *Tracker) ObserveCompute(w int, updates int64, d time.Duration) {
	if updates <= 0 || d < 0 {
		return
	}
	per := d.Seconds() / float64(updates)
	if per < minCost {
		per = minCost
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w < 0 || w >= len(t.est) {
		return
	}
	e := &t.est[w]
	e.W += t.alpha * (per - e.W)
	e.Computes++
}

// JobCost implements Estimator.
func (t *Tracker) JobCost(w, blocks int, updates int64) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w < 0 || w >= len(t.est) {
		return 0
	}
	e := t.est[w]
	return e.C*float64(blocks) + e.W*float64(updates)
}

// Estimate returns worker w's current estimate.
func (t *Tracker) Estimate(w int) Estimate {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w < 0 || w >= len(t.est) {
		return Estimate{}
	}
	return t.est[w]
}

// Snapshot copies every worker's current estimate.
func (t *Tracker) Snapshot() []Estimate {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Estimate(nil), t.est...)
}

// Rebase implements Estimator.
func (t *Tracker) Rebase() { t.rebaseOf(nil) }

// Drift implements Estimator. Estimates only move on observation, so an
// unsampled worker contributes zero drift by construction.
func (t *Tracker) Drift() float64 { return t.driftOf(nil) }

// rebaseOf resets the drift baseline of the given workers (nil: all) —
// the single writer both the fleet-wide Rebase and a lease-local
// View.Rebase go through.
func (t *Tracker) rebaseOf(idx []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx == nil {
		t.base = append(t.base[:0], t.est...)
		return
	}
	for _, i := range idx {
		if i >= 0 && i < len(t.est) {
			t.base[i] = t.est[i]
		}
	}
}

// driftOf computes the drift metric over the given workers (nil: all) —
// the single implementation behind Tracker.Drift and View.Drift, so the
// fleet-wide and lease-local numbers cannot diverge.
func (t *Tracker) driftOf(idx []int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var max float64
	measure := func(i int) {
		if i < 0 || i >= len(t.est) {
			return
		}
		if d := relDelta(t.est[i].C, t.base[i].C); d > max {
			max = d
		}
		if d := relDelta(t.est[i].W, t.base[i].W); d > max {
			max = d
		}
	}
	if idx == nil {
		for i := range t.est {
			measure(i)
		}
	} else {
		for _, i := range idx {
			measure(i)
		}
	}
	return max
}

func relDelta(now, base float64) float64 {
	if base <= 0 {
		if now <= 0 {
			return 0
		}
		return 1
	}
	d := (now - base) / base
	if d < 0 {
		d = -d
	}
	return d
}

// View exposes a Tracker under remapped indices: view index j observes and
// costs tracker worker idx[j]. A multi-job service keeps one fleet-indexed
// Tracker and hands each lease a View over its leased subset, so every job's
// observations land in the shared estimates without index translation in the
// executor. Append extends the mapping when a worker joins the lease
// mid-job. Safe for concurrent use.
type View struct {
	t   *Tracker
	mu  sync.Mutex
	idx []int
}

var _ Estimator = (*View)(nil)

// View builds a remapping view over the given tracker indices.
func (t *Tracker) View(idx []int) *View {
	return &View{t: t, idx: append([]int(nil), idx...)}
}

// Append extends the view with tracker worker fleetIdx and returns its view
// index.
func (v *View) Append(fleetIdx int) int {
	v.t.Ensure(fleetIdx)
	v.mu.Lock()
	defer v.mu.Unlock()
	v.idx = append(v.idx, fleetIdx)
	return len(v.idx) - 1
}

// resolve maps a view index to a tracker index (-1: unknown).
func (v *View) resolve(w int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if w < 0 || w >= len(v.idx) {
		return -1
	}
	return v.idx[w]
}

// ObserveTransfer implements Estimator.
func (v *View) ObserveTransfer(w, blocks int, d time.Duration) {
	if i := v.resolve(w); i >= 0 {
		v.t.ObserveTransfer(i, blocks, d)
	}
}

// ObserveCompute implements Estimator.
func (v *View) ObserveCompute(w int, updates int64, d time.Duration) {
	if i := v.resolve(w); i >= 0 {
		v.t.ObserveCompute(i, updates, d)
	}
}

// JobCost implements Estimator.
func (v *View) JobCost(w, blocks int, updates int64) float64 {
	if i := v.resolve(w); i >= 0 {
		return v.t.JobCost(i, blocks, updates)
	}
	return 0
}

// Drift implements Estimator over the viewed subset only: drift elsewhere in
// the fleet is some other lease's business.
func (v *View) Drift() float64 {
	v.mu.Lock()
	idx := append([]int(nil), v.idx...)
	v.mu.Unlock()
	if idx == nil {
		return 0 // an empty view sees no workers, not the whole fleet
	}
	return v.t.driftOf(idx)
}

// Rebase implements Estimator: only the viewed workers are rebased, so one
// lease re-planning does not silently absorb drift another lease has yet to
// react to.
func (v *View) Rebase() {
	v.mu.Lock()
	idx := append([]int(nil), v.idx...)
	v.mu.Unlock()
	if idx != nil {
		v.t.rebaseOf(idx)
	}
}

// Ensure implements Estimator: view indices are created by Append; Ensure
// grows the view with fleet-average workers only as a defensive fallback for
// executors handed an index the service never Appended.
func (v *View) Ensure(w int) {
	v.mu.Lock()
	missing := w - (len(v.idx) - 1)
	v.mu.Unlock()
	for ; missing > 0; missing-- {
		v.t.mu.Lock()
		n := len(v.t.est)
		v.t.mu.Unlock()
		v.t.Ensure(n) // append one fleet-average slot
		v.Append(n)
	}
}

// Item is one schedulable unit for Balance: an opaque id plus the cost
// primitives the estimator prices it with.
type Item struct {
	ID      int
	Blocks  int   // blocks moved to and from the worker over the item's life
	Updates int64 // block updates the item performs
}

// Balance assigns items onto workers by greedy earliest-finish (the
// heterogeneous generalization of LPT): items are taken in descending
// fleet-average cost order, each placed on the worker whose accumulated
// finish time (pre-existing load plus everything assigned so far) is
// smallest. est prices an item on a worker; load carries each worker's
// in-flight cost (seconds) at plan time. The returned map has one entry per
// worker in workers (possibly empty). Deterministic: ties break by item
// order, then worker order.
func Balance(items []Item, workers []int, est Estimator, load map[int]float64) map[int][]int {
	out := make(map[int][]int, len(workers))
	for _, w := range workers {
		out[w] = nil
	}
	if len(workers) == 0 || len(items) == 0 {
		return out
	}

	// Order items by mean cost across the candidate workers, biggest first —
	// the classic LPT ordering, priced with live estimates.
	type costed struct {
		it   Item
		mean float64
	}
	cs := make([]costed, len(items))
	for i, it := range items {
		var sum float64
		for _, w := range workers {
			sum += est.JobCost(w, it.Blocks, it.Updates)
		}
		cs[i] = costed{it: it, mean: sum / float64(len(workers))}
	}
	sort.SliceStable(cs, func(a, b int) bool { return cs[a].mean > cs[b].mean })

	finish := make(map[int]float64, len(workers))
	for _, w := range workers {
		finish[w] = load[w]
	}
	for _, c := range cs {
		best, bestEnd := workers[0], 0.0
		for j, w := range workers {
			end := finish[w] + est.JobCost(w, c.it.Blocks, c.it.Updates)
			if j == 0 || end < bestEnd {
				best, bestEnd = w, end
			}
		}
		finish[best] = bestEnd
		out[best] = append(out[best], c.it.ID)
	}
	return out
}

// RankByCost orders workers by the estimated cost of one job of the given
// cost primitives, cheapest first. est == nil means no measurements: the
// input order is kept (the caller's worker numbering is the only signal).
// Deterministic: cost ties break by worker index.
func RankByCost(workers []int, blocks int, updates int64, est Estimator) []int {
	out := append([]int(nil), workers...)
	if est == nil {
		return out
	}
	sort.SliceStable(out, func(a, b int) bool {
		ca, cb := est.JobCost(out[a], blocks, updates), est.JobCost(out[b], blocks, updates)
		if ca != cb {
			return ca < cb
		}
		return out[a] < out[b]
	})
	return out
}

// SuggestRedundancy picks a redundancy factor r from the estimate spread: one
// redundant unit per worker whose estimated cost for a representative job
// exceeds 1.5× the fleet median — the workers the estimates say will
// straggle — capped at half the fleet (beyond that, replication costs more
// than the tail it trims). Returns at least 1 when any worker qualifies and
// 0 when the fleet looks uniform or est is nil (no evidence of stragglers,
// but callers may still force r ≥ 1 for crash cover).
func SuggestRedundancy(workers []int, blocks int, updates int64, est Estimator) int {
	if est == nil || len(workers) < 2 {
		return 0
	}
	costs := make([]float64, len(workers))
	for i, w := range workers {
		costs[i] = est.JobCost(w, blocks, updates)
	}
	sorted := append([]float64(nil), costs...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return 0
	}
	r := 0
	for _, c := range costs {
		if c > 1.5*median {
			r++
		}
	}
	if max := len(workers) / 2; r > max {
		r = max
	}
	return r
}

// String renders an estimate compactly for logs and status lines.
func (e Estimate) String() string {
	return fmt.Sprintf("c=%s/blk w=%s/upd (%d+%d samples)",
		time.Duration(e.C*float64(time.Second)), time.Duration(e.W*float64(time.Second)), e.Transfers, e.Computes)
}
