package adapt

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
)

func testSpecs() []platform.Worker {
	return []platform.Worker{
		{Name: "P1", C: 1, W: 1, M: 60},
		{Name: "P2", C: 2, W: 4, M: 60},
	}
}

func TestTrackerSeedsFromDeclaredSpecs(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Millisecond, 0)
	e0, e1 := tr.Estimate(0), tr.Estimate(1)
	if e0.C != 0.001 || e0.W != 0.001 {
		t.Fatalf("worker 0 seed = %+v, want 1ms/1ms", e0)
	}
	if e1.C != 0.002 || e1.W != 0.004 {
		t.Fatalf("worker 1 seed = %+v, want 2ms/4ms", e1)
	}
	if e0.Transfers != 0 || e0.Computes != 0 {
		t.Fatalf("seeded estimate claims samples: %+v", e0)
	}
}

func TestTrackerEWMAConvergesToObservations(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Millisecond, 0.5)
	// Worker 0 repeatedly measured at 10ms per block: the estimate must
	// converge there from its 1ms seed.
	for i := 0; i < 20; i++ {
		tr.ObserveTransfer(0, 10, 100*time.Millisecond)
	}
	e := tr.Estimate(0)
	if math.Abs(e.C-0.010) > 1e-6 {
		t.Fatalf("C estimate %g after 20 samples of 10ms/blk, want ≈0.010", e.C)
	}
	if e.Transfers != 20 {
		t.Fatalf("transfer samples = %d, want 20", e.Transfers)
	}
	// Worker 1's compute measured at 2ms per update.
	for i := 0; i < 20; i++ {
		tr.ObserveCompute(1, 50, 100*time.Millisecond)
	}
	if e := tr.Estimate(1); math.Abs(e.W-0.002) > 1e-6 {
		t.Fatalf("W estimate %g, want ≈0.002", e.W)
	}
}

func TestTrackerIgnoresDegenerateObservations(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Millisecond, 0.5)
	before := tr.Estimate(0)
	tr.ObserveTransfer(0, 0, time.Second)  // no blocks
	tr.ObserveCompute(0, -1, time.Second)  // negative updates
	tr.ObserveTransfer(0, 1, -time.Second) // negative duration
	tr.ObserveTransfer(99, 1, time.Second) // out of range
	tr.ObserveCompute(-1, 10, time.Second) // out of range
	if got := tr.Estimate(0); got != before {
		t.Fatalf("degenerate observations moved the estimate: %+v -> %+v", before, got)
	}
	// A zero-duration sample must floor, not zero, the estimate.
	for i := 0; i < 100; i++ {
		tr.ObserveTransfer(0, 10, 0)
	}
	if e := tr.Estimate(0); e.C <= 0 {
		t.Fatalf("zero-duration samples drove C to %g", e.C)
	}
}

func TestDriftAndRebase(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Millisecond, 1) // alpha 1: estimate = last sample
	if d := tr.Drift(); d != 0 {
		t.Fatalf("fresh tracker drift = %g, want 0", d)
	}
	// Worker 0's compute doubles: drift must report ~1.0 (100%).
	tr.ObserveCompute(0, 1000, 2*time.Second) // 2ms/upd vs 1ms seed
	if d := tr.Drift(); math.Abs(d-1.0) > 1e-9 {
		t.Fatalf("drift = %g after a 2x compute change, want 1.0", d)
	}
	tr.Rebase()
	if d := tr.Drift(); d != 0 {
		t.Fatalf("drift = %g after Rebase, want 0", d)
	}
}

func TestJobCostCombinesEstimates(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Second, 0) // seeds: P1 c=1s w=1s, P2 c=2s w=4s
	if got := tr.JobCost(0, 3, 5); math.Abs(got-8) > 1e-9 {
		t.Fatalf("JobCost(0,3,5) = %g, want 8", got)
	}
	if got := tr.JobCost(1, 3, 5); math.Abs(got-26) > 1e-9 {
		t.Fatalf("JobCost(1,3,5) = %g, want 26", got)
	}
}

func TestGrowAndEnsure(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Millisecond, 0)
	i := tr.Grow(platform.Worker{C: 3, W: 3, M: 60}, time.Millisecond)
	if i != 2 || tr.Workers() != 3 {
		t.Fatalf("Grow returned %d, workers %d", i, tr.Workers())
	}
	tr.Ensure(4) // grows 2 more, fleet-average seeded
	if tr.Workers() != 5 {
		t.Fatalf("Ensure(4) left %d workers", tr.Workers())
	}
	if e := tr.Estimate(4); e.C <= 0 || e.W <= 0 {
		t.Fatalf("Ensure seeded a non-positive estimate: %+v", e)
	}
	// Growth must not register as drift (a join re-plans explicitly).
	if d := tr.Drift(); d != 0 {
		t.Fatalf("drift %g after growth, want 0", d)
	}
}

func TestViewRemapsIndices(t *testing.T) {
	tr := NewTracker([]platform.Worker{
		{C: 1, W: 1, M: 60}, {C: 1, W: 1, M: 60}, {C: 1, W: 1, M: 60},
	}, time.Millisecond, 1)
	v := tr.View([]int{2, 0}) // lease worker 0 = fleet 2, lease 1 = fleet 0
	v.ObserveCompute(0, 1000, time.Second)
	if tr.Estimate(2).Computes != 1 {
		t.Fatalf("view observation did not land on fleet worker 2: %+v", tr.Estimate(2))
	}
	if tr.Estimate(0).Computes != 0 {
		t.Fatalf("view observation leaked onto fleet worker 0")
	}
	if got, want := v.JobCost(0, 0, 1000), tr.JobCost(2, 0, 1000); got != want {
		t.Fatalf("view JobCost %g != tracker %g", got, want)
	}
	// Append joins a fleet worker mid-lease.
	if j := v.Append(1); j != 2 {
		t.Fatalf("Append returned view index %d, want 2", j)
	}
	v.ObserveTransfer(2, 10, time.Second)
	if tr.Estimate(1).Transfers != 1 {
		t.Fatalf("appended view index did not observe fleet worker 1")
	}
}

func TestViewDriftAndRebaseScopedToLease(t *testing.T) {
	tr := NewTracker([]platform.Worker{
		{C: 1, W: 1, M: 60}, {C: 1, W: 1, M: 60},
	}, time.Millisecond, 1)
	v := tr.View([]int{0})
	// Fleet worker 1 (outside the view) drifts wildly; the view must not see it.
	tr.ObserveCompute(1, 10, time.Second)
	if d := v.Drift(); d != 0 {
		t.Fatalf("view drift %g reflects a worker outside the lease", d)
	}
	tr.ObserveCompute(0, 10, time.Second)
	if d := v.Drift(); d == 0 {
		t.Fatal("view blind to its own worker's drift")
	}
	v.Rebase()
	if d := v.Drift(); d != 0 {
		t.Fatalf("view drift %g after view Rebase", d)
	}
	// The tracker still remembers worker 1's un-rebased drift.
	if d := tr.Drift(); d == 0 {
		t.Fatal("view Rebase absorbed drift outside the lease")
	}
}

func TestBalanceSpreadsBySpeed(t *testing.T) {
	// Worker 0 is 4x faster than worker 1: of 10 equal items it should take
	// about 8.
	tr := NewTracker([]platform.Worker{
		{C: 1, W: 1, M: 60}, {C: 4, W: 4, M: 60},
	}, time.Millisecond, 0)
	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{ID: i, Blocks: 10, Updates: 100}
	}
	got := Balance(items, []int{0, 1}, tr, nil)
	if n0, n1 := len(got[0]), len(got[1]); n0+n1 != 10 || n0 < 7 {
		t.Fatalf("balance put %d/%d items on the 4x-faster worker", n0, n1)
	}
}

func TestBalanceRespectsExistingLoad(t *testing.T) {
	tr := NewTracker([]platform.Worker{
		{C: 1, W: 1, M: 60}, {C: 1, W: 1, M: 60},
	}, time.Second, 0)
	items := []Item{{ID: 0, Blocks: 0, Updates: 1}}
	// Worker 0 carries a huge in-flight job: the single item must land on 1.
	got := Balance(items, []int{0, 1}, tr, map[int]float64{0: 1e6})
	if len(got[1]) != 1 {
		t.Fatalf("balance ignored existing load: %v", got)
	}
}

func TestBalanceEmptyInputs(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Millisecond, 0)
	if got := Balance(nil, []int{0}, tr, nil); len(got[0]) != 0 {
		t.Fatalf("balance of no items: %v", got)
	}
	if got := Balance([]Item{{ID: 1}}, nil, tr, nil); len(got) != 0 {
		t.Fatalf("balance over no workers: %v", got)
	}
}

func TestTrackerConcurrentUse(t *testing.T) {
	tr := NewTracker(testSpecs(), time.Millisecond, 0)
	v := tr.View([]int{0, 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0:
					tr.ObserveTransfer(i%2, 5, time.Millisecond)
				case 1:
					v.ObserveCompute(i%2, 10, time.Millisecond)
				case 2:
					_ = tr.Drift()
					_ = v.JobCost(i%2, 3, 9)
				case 3:
					tr.Rebase()
					_ = tr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
}

// costTable is a fixed-cost Estimator for placement tests.
type costTable map[int]float64

func (ct costTable) ObserveTransfer(int, int, time.Duration)  {}
func (ct costTable) ObserveCompute(int, int64, time.Duration) {}
func (ct costTable) JobCost(w, _ int, _ int64) float64        { return ct[w] }
func (ct costTable) Drift() float64                           { return 0 }
func (ct costTable) Rebase()                                  {}
func (ct costTable) Ensure(int)                               {}

func TestRankByCostOrdersAndTiebreaks(t *testing.T) {
	est := costTable{0: 3.0, 1: 1.0, 2: 2.0, 3: 1.0}
	got := RankByCost([]int{0, 1, 2, 3}, 4, 100, est)
	want := []int{1, 3, 2, 0} // cheapest first; equal costs keep index order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
	// The input slice must not be mutated.
	in := []int{2, 0, 1}
	_ = RankByCost(in, 4, 100, est)
	if in[0] != 2 || in[1] != 0 || in[2] != 1 {
		t.Errorf("RankByCost mutated its input: %v", in)
	}
	// Nil estimator: order preserved verbatim.
	got = RankByCost([]int{2, 0, 1}, 4, 100, nil)
	if got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Errorf("nil-estimator rank = %v, want input order", got)
	}
}

func TestSuggestRedundancyFlagsStragglers(t *testing.T) {
	// One worker at 4× the median: one redundant unit suggested.
	if r := SuggestRedundancy([]int{0, 1, 2}, 4, 100, costTable{0: 1, 1: 1, 2: 4}); r != 1 {
		t.Errorf("one straggler: r = %d, want 1", r)
	}
	// Uniform fleet: no evidence, no redundancy.
	if r := SuggestRedundancy([]int{0, 1, 2}, 4, 100, costTable{0: 1, 1: 1, 2: 1}); r != 0 {
		t.Errorf("uniform fleet: r = %d, want 0", r)
	}
	// Nil estimator or a lone worker: nothing to compare against.
	if r := SuggestRedundancy([]int{0, 1, 2}, 4, 100, nil); r != 0 {
		t.Errorf("nil estimator: r = %d, want 0", r)
	}
	if r := SuggestRedundancy([]int{0}, 4, 100, costTable{0: 9}); r != 0 {
		t.Errorf("single worker: r = %d, want 0", r)
	}
	// Two stragglers of five: one unit each, which is also the len/2 cap.
	ct := costTable{0: 1, 1: 1, 2: 1, 3: 10, 4: 10}
	if r := SuggestRedundancy([]int{0, 1, 2, 3, 4}, 4, 100, ct); r != 2 {
		t.Errorf("two stragglers of five: r = %d, want 2", r)
	}
	// A slow majority drags the median up with it: no worker stands out
	// against the median, so no redundancy is suggested.
	ct = costTable{0: 1, 1: 1, 2: 10, 3: 10, 4: 10}
	if r := SuggestRedundancy([]int{0, 1, 2, 3, 4}, 4, 100, ct); r != 0 {
		t.Errorf("slow majority: r = %d, want 0", r)
	}
	// Dead estimates (zero median) must not divide by zero or suggest waste.
	if r := SuggestRedundancy([]int{0, 1}, 4, 100, costTable{0: 0, 1: 0}); r != 0 {
		t.Errorf("zero costs: r = %d, want 0", r)
	}
}
