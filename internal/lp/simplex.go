// Package lp implements a small dense simplex solver for linear programs in
// the canonical form
//
//	maximize    c·x
//	subject to  A·x ≤ b,  x ≥ 0,  b ≥ 0
//
// It exists to solve the steady-state resource-selection program of the paper
// (Table 1) exactly, so the closed-form bandwidth-centric greedy can be
// cross-checked against a genuine optimizer. The solver uses Bland's pivoting
// rule, which guarantees termination (no cycling) at the cost of speed —
// irrelevant at the sizes used here (tens of variables).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnbounded is returned when the objective can grow without bound.
var ErrUnbounded = errors.New("lp: unbounded objective")

// ErrInfeasible is returned when a negative b entry is supplied (the only
// infeasibility possible in this canonical form, since x = 0 is otherwise
// always feasible).
var ErrInfeasible = errors.New("lp: negative right-hand side (canonical form requires b ≥ 0)")

// Problem is a canonical-form linear program.
type Problem struct {
	C [][]float64 // unused placeholder to prevent accidental literal misuse
}

// Solution holds an optimal point and its objective value.
type Solution struct {
	X   []float64
	Obj float64
}

const eps = 1e-9

// Maximize solves max c·x s.t. A·x ≤ b, x ≥ 0. A is m×n (rows are
// constraints), b has length m, c length n.
func Maximize(c []float64, a [][]float64, b []float64) (*Solution, error) {
	m, n := len(a), len(c)
	if len(b) != m {
		return nil, fmt.Errorf("lp: %d constraint rows but %d right-hand sides", m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("lp: constraint row %d has %d coefficients, want %d", i, len(row), n)
		}
		if b[i] < -eps {
			return nil, fmt.Errorf("%w: b[%d] = %g", ErrInfeasible, i, b[i])
		}
	}

	// Tableau: m rows × (n + m + 1) columns. Columns 0..n-1 are structural
	// variables, n..n+m-1 slacks, last column the right-hand side. The
	// objective row stores reduced costs of -c (we maximize).
	cols := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, cols)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][cols-1] = math.Max(b[i], 0)
	}
	obj := make([]float64, cols)
	for j := 0; j < n; j++ {
		obj[j] = -c[j]
	}
	tab[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	for iter := 0; ; iter++ {
		if iter > 10000*(m+n+1) {
			return nil, errors.New("lp: iteration limit exceeded (numerical trouble)")
		}
		// Bland's rule: entering variable = lowest-index column with a
		// negative reduced cost.
		pivotCol := -1
		for j := 0; j < n+m; j++ {
			if tab[m][j] < -eps {
				pivotCol = j
				break
			}
		}
		if pivotCol < 0 {
			break // optimal
		}
		// Ratio test; ties broken by lowest basis index (Bland).
		pivotRow := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][pivotCol] > eps {
				ratio := tab[i][cols-1] / tab[i][pivotCol]
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && (pivotRow < 0 || basis[i] < basis[pivotRow])) {
					bestRatio = ratio
					pivotRow = i
				}
			}
		}
		if pivotRow < 0 {
			return nil, ErrUnbounded
		}
		pivot(tab, pivotRow, pivotCol)
		basis[pivotRow] = pivotCol
	}

	x := make([]float64, n)
	for i, v := range basis {
		if v < n {
			x[v] = tab[i][cols-1]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += c[j] * x[j]
	}
	return &Solution{X: x, Obj: objVal}, nil
}

func pivot(tab [][]float64, pr, pc int) {
	cols := len(tab[0])
	pv := tab[pr][pc]
	for j := 0; j < cols; j++ {
		tab[pr][j] /= pv
	}
	for i := range tab {
		if i == pr {
			continue
		}
		f := tab[i][pc]
		if f == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			tab[i][j] -= f * tab[pr][j]
		}
	}
}

// Feasible reports whether x satisfies A·x ≤ b (+tol) and x ≥ -tol.
// Exposed for property tests.
func Feasible(x []float64, a [][]float64, b []float64, tol float64) bool {
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for i, row := range a {
		s := 0.0
		for j, aij := range row {
			s += aij * x[j]
		}
		if s > b[i]+tol {
			return false
		}
	}
	return true
}
