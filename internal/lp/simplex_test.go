package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaximizeTextbook(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	sol, err := Maximize(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, 36, 1e-9) || !approx(sol.X[0], 2, 1e-9) || !approx(sol.X[1], 6, 1e-9) {
		t.Errorf("got x=%v obj=%v, want x=[2 6] obj=36", sol.X, sol.Obj)
	}
}

func TestMaximizeSingleVariable(t *testing.T) {
	sol, err := Maximize([]float64{1}, [][]float64{{2}}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, 5, 1e-9) {
		t.Errorf("obj = %v, want 5", sol.Obj)
	}
}

func TestMaximizeDegenerate(t *testing.T) {
	// Degenerate vertex (redundant constraint through the optimum); Bland's
	// rule must still terminate.
	sol, err := Maximize(
		[]float64{1, 1},
		[][]float64{{1, 0}, {0, 1}, {1, 1}},
		[]float64{1, 1, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, 2, 1e-9) {
		t.Errorf("obj = %v, want 2", sol.Obj)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	_, err := Maximize([]float64{1, 0}, [][]float64{{0, 1}}, []float64{1})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestMaximizeNegativeRHS(t *testing.T) {
	_, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{-1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMaximizeShapeErrors(t *testing.T) {
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("b length mismatch accepted")
	}
	if _, err := Maximize([]float64{1, 2}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("row width mismatch accepted")
	}
}

func TestMaximizeZeroObjective(t *testing.T) {
	sol, err := Maximize([]float64{0, 0}, [][]float64{{1, 1}}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Obj != 0 {
		t.Errorf("obj = %v, want 0", sol.Obj)
	}
}

func TestKnapsackRelaxation(t *testing.T) {
	// max 4a + 3b + 5c s.t. 2a + b + 3c ≤ 7, a ≤ 2, b ≤ 2, c ≤ 2.
	// Best: a=2, b=2, c=(7-4-2)/3=1/3 → obj = 8 + 6 + 5/3.
	sol, err := Maximize(
		[]float64{4, 3, 5},
		[][]float64{{2, 1, 3}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		[]float64{7, 2, 2, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, 14+5.0/3, 1e-9) {
		t.Errorf("obj = %v, want %v", sol.Obj, 14+5.0/3)
	}
}

// Properties on random programs with box constraints (always bounded,
// feasible): the solution must be feasible, and no sampled feasible point may
// beat it.
func TestMaximizeOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64() * 5
		}
		a := make([][]float64, 0, m+n)
		b := make([]float64, 0, m+n)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 3
			}
			a = append(a, row)
			b = append(b, 1+rng.Float64()*5)
		}
		// Box constraints guarantee boundedness.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a = append(a, row)
			b = append(b, 1+rng.Float64()*3)
		}
		sol, err := Maximize(c, a, b)
		if err != nil {
			return false
		}
		if !Feasible(sol.X, a, b, 1e-7) {
			return false
		}
		// Random feasible sampling must not beat the reported optimum.
		x := make([]float64, n)
		for trial := 0; trial < 100; trial++ {
			for j := range x {
				x[j] = rng.Float64() * 4
			}
			if Feasible(x, a, b, 0) {
				v := 0.0
				for j := range x {
					v += c[j] * x[j]
				}
				if v > sol.Obj+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Weak duality check: for max c·x ≤ b·y over any sampled dual-feasible y
// (Aᵀy ≥ c, y ≥ 0), obj ≤ b·y.
func TestWeakDualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		m := n + rng.Intn(3) // enough rows that dual feasibility is findable
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = 0.2 + rng.Float64()
			}
			b[i] = 1 + rng.Float64()
		}
		sol, err := Maximize(c, a, b)
		if err != nil {
			return false
		}
		// y uniform large enough to be dual feasible: y_i = K.
		for _, k := range []float64{2, 5, 10} {
			dualFeasible := true
			for j := 0; j < n; j++ {
				col := 0.0
				for i := 0; i < m; i++ {
					col += a[i][j] * k
				}
				if col < c[j] {
					dualFeasible = false
				}
			}
			if dualFeasible {
				dualObj := 0.0
				for i := 0; i < m; i++ {
					dualObj += b[i] * k
				}
				if sol.Obj > dualObj+1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
