package coded

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestParseModeAndSpec(t *testing.T) {
	for in, want := range map[string]Mode{"": ModeOff, "off": ModeOff, "Replicated": ModeReplicated, " coded ": ModeCoded} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus")
	}
	for in, want := range map[string]struct {
		m Mode
		r int
	}{"off": {ModeOff, 0}, "replicated": {ModeReplicated, 1}, "coded:3": {ModeCoded, 3}, "replicated:0": {ModeReplicated, 0}} {
		m, r, err := ParseSpec(in)
		if err != nil || m != want.m || r != want.r {
			t.Errorf("ParseSpec(%q) = %v,%d,%v; want %v,%d", in, m, r, err, want.m, want.r)
		}
	}
	for _, in := range []string{"coded:-1", "coded:x", "bogus:1"} {
		if _, _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

// randomList builds n random q×q blocks; integer-valued when exact is set, so
// MDS encode/decode arithmetic is exact and bitwise-comparable.
func randomList(rng *rand.Rand, n, q int, exact bool) []*matrix.Block {
	out := make([]*matrix.Block, n)
	for i := range out {
		b := matrix.NewBlock(q)
		for j := range b.Data {
			if exact {
				b.Data[j] = float64(rng.Intn(64) - 32)
			} else {
				b.Data[j] = rng.Float64()*2 - 1
			}
		}
		out[i] = b
	}
	return out
}

// encode builds r parity rows over the member lists with the planner's
// generalized-Vandermonde coefficients (node p, coef_i = p^i).
func encode(membersTrue [][]*matrix.Block, r, q int) (coeffs [][]float64, parities [][]*matrix.Block) {
	n := len(membersTrue[0])
	for p := 1; p <= r; p++ {
		cs := make([]float64, len(membersTrue))
		pow := 1.0
		for i := range cs {
			cs[i] = pow
			pow *= float64(p)
		}
		par := zeroBlocks(n, q)
		for s, m := range membersTrue {
			axpyList(par, cs[s], m)
		}
		coeffs = append(coeffs, cs)
		parities = append(parities, par)
	}
	return coeffs, parities
}

// TestReconstructSingleMissingBitwise: with integer payloads and the p=1
// all-ones parity, recovering one missing member is pure integer add/subtract
// and must be bitwise-exact against the oracle.
func TestReconstructSingleMissingBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q, n := 3, 4
	truth := [][]*matrix.Block{randomList(rng, n, q, true), randomList(rng, n, q, true), randomList(rng, n, q, true)}
	coeffs, parities := encode(truth, 1, q)
	for miss := 0; miss < len(truth); miss++ {
		members := make([][]*matrix.Block, len(truth))
		for s := range truth {
			if s != miss {
				members[s] = truth[s]
			}
		}
		got, ok := Reconstruct(members, coeffs, parities)
		if !ok {
			t.Fatalf("miss=%d: not ok", miss)
		}
		for i, b := range got[miss] {
			if d := b.MaxAbsDiff(truth[miss][i]); d != 0 {
				t.Fatalf("miss=%d block %d: off by %g (want bitwise)", miss, i, d)
			}
		}
	}
}

// TestReconstructMultiMissingTolerance solves two missing members from two
// parity rows over float payloads; Gaussian elimination introduces rounding,
// so the oracle comparison is within tolerance.
func TestReconstructMultiMissingTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q, n := 3, 5
	truth := [][]*matrix.Block{
		randomList(rng, n, q, false), randomList(rng, n, q, false),
		randomList(rng, n, q, false), randomList(rng, n, q, false),
	}
	coeffs, parities := encode(truth, 2, q)
	members := [][]*matrix.Block{nil, truth[1], nil, truth[3]}
	got, ok := Reconstruct(members, coeffs, parities)
	if !ok {
		t.Fatal("not ok")
	}
	for _, miss := range []int{0, 2} {
		for i, b := range got[miss] {
			if d := b.MaxAbsDiff(truth[miss][i]); d > 1e-9 {
				t.Fatalf("miss=%d block %d: off by %g", miss, i, d)
			}
		}
	}
	// Inputs must not be mutated by the solve.
	_, reParities := encode(truth, 2, q)
	for j := range parities {
		for i := range parities[j] {
			if d := parities[j][i].MaxAbsDiff(reParities[j][i]); d != 0 {
				t.Fatalf("parity row %d block %d mutated by Reconstruct", j, i)
			}
		}
	}
}

func TestReconstructUnderdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, n := 2, 3
	truth := [][]*matrix.Block{randomList(rng, n, q, false), randomList(rng, n, q, false), randomList(rng, n, q, false)}
	coeffs, parities := encode(truth, 1, q)
	if _, ok := Reconstruct([][]*matrix.Block{nil, nil, truth[2]}, coeffs, parities); ok {
		t.Fatal("2 missing from 1 parity reported ok")
	}
	if out, ok := Reconstruct(truth, coeffs, parities); !ok || len(out) != 0 {
		t.Fatalf("nothing missing: got %v, %v", out, ok)
	}
}

func testbed() *platform.Platform {
	return platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 40},
		platform.Worker{C: 2, W: 1.5, M: 24},
		platform.Worker{C: 1.5, W: 2, M: 60},
	)
}

func buildMatrices(t *testing.T, inst sched.Instance, q int, seed int64) (a, b, c, want *matrix.BlockMatrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a = matrix.NewBlockMatrix(inst.R, inst.T, q)
	b = matrix.NewBlockMatrix(inst.T, inst.S, q)
	c = matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want = c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		t.Fatal(err)
	}
	return a, b, c, want
}

func TestPlanOffAndDegenerate(t *testing.T) {
	inst := sched.Instance{R: 6, S: 9, T: 4}
	res, err := sched.Het{}.Schedule(testbed(), inst)
	if err != nil {
		t.Fatal(err)
	}
	a, _, c, _ := buildMatrices(t, inst, 3, 5)
	red, err := Plan(inst.T, res.Plan(), a, c, 3, Options{Mode: ModeOff})
	if err != nil || red != nil {
		t.Fatalf("ModeOff: got %v, %v; want nil, nil", red, err)
	}
	red, err = Plan(inst.T, res.Plan(), a, c, 1, Options{Mode: ModeReplicated})
	if err != nil || red == nil || len(red.Units) != 0 {
		t.Fatalf("1 worker: got %+v, %v; want empty-units gate", red, err)
	}
}

// TestPlanPlacement checks the planner's structural invariants: replicas
// never land on their job's own worker, parity units carry consistent
// geometry, and parity placement prefers non-member workers.
func TestPlanPlacement(t *testing.T) {
	inst := sched.Instance{R: 8, S: 12, T: 5}
	res, err := sched.Het{}.Schedule(testbed(), inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	jobs, _, err := sim.JobsFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	a, _, c, _ := buildMatrices(t, inst, 3, 6)

	red, err := Plan(inst.T, plan, a, c, 3, Options{Mode: ModeReplicated, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Units) != 2 {
		t.Fatalf("replicated R=2: %d units", len(red.Units))
	}
	for _, u := range red.Units {
		if u.Job < 0 || u.Job >= len(jobs) {
			t.Fatalf("replica of job %d out of range", u.Job)
		}
		if u.Worker == jobs[u.Job].Worker {
			t.Errorf("replica of job %d placed on its own worker %d", u.Job, u.Worker)
		}
	}

	red, err = Plan(inst.T, plan, a, c, 3, Options{Mode: ModeCoded, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	if red.Reconstruct == nil {
		t.Fatal("coded plan without Reconstruct")
	}
	covered := make(map[int]bool)
	for _, u := range red.Units {
		if u.Job >= 0 {
			t.Fatalf("coded plan emitted a replica unit %+v", u)
		}
		if len(u.Coeffs) != len(u.Members) {
			t.Fatalf("group %d: %d coeffs for %d members", u.Group, len(u.Coeffs), len(u.Members))
		}
		if len(u.CSeed) != u.Chunk.Blocks() {
			t.Fatalf("group %d: CSeed %d blocks for chunk %v", u.Group, len(u.CSeed), u.Chunk)
		}
		if len(u.ASeeds) != len(u.Panels) {
			t.Fatalf("group %d: %d ASeeds for %d panels", u.Group, len(u.ASeeds), len(u.Panels))
		}
		for _, ji := range u.Members {
			covered[ji] = true
		}
	}
	for ji := range jobs {
		if !covered[ji] {
			t.Errorf("job %d not covered by any parity group", ji)
		}
	}
}

// csBackend is the coded tests' in-process compute backend: real installment
// arithmetic, plus a stall predicate that freezes matching units at RecvC
// until CancelUnit releases them (see the engine package's stallBackend).
type csBackend struct {
	nw    int
	stall func(w int, ch matrix.Chunk) bool

	mu      sync.Mutex
	held    []map[matrix.Chunk][]*matrix.Block
	cancels []map[matrix.Chunk]chan struct{}
}

func newCSBackend(nw int, stall func(w int, ch matrix.Chunk) bool) *csBackend {
	be := &csBackend{nw: nw, stall: stall}
	be.held = make([]map[matrix.Chunk][]*matrix.Block, nw)
	be.cancels = make([]map[matrix.Chunk]chan struct{}, nw)
	for w := 0; w < nw; w++ {
		be.held[w] = make(map[matrix.Chunk][]*matrix.Block)
		be.cancels[w] = make(map[matrix.Chunk]chan struct{})
	}
	return be
}

func (be *csBackend) Workers() int { return be.nw }

func (be *csBackend) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	be.mu.Lock()
	defer be.mu.Unlock()
	if _, dup := be.held[w][ch]; dup {
		return fmt.Errorf("worker %d already holds chunk %v", w, ch)
	}
	be.held[w][ch] = blocks
	return nil
}

func (be *csBackend) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, b []*matrix.Block) error {
	be.mu.Lock()
	blocks, ok := be.held[w][ch]
	be.mu.Unlock()
	if !ok {
		return fmt.Errorf("worker %d got inputs for %v it does not hold", w, ch)
	}
	return engine.ApplyInstallment(ch, blocks, a, b, k1-k0)
}

func (be *csBackend) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	be.mu.Lock()
	blocks, ok := be.held[w][ch]
	if !ok {
		be.mu.Unlock()
		return nil, fmt.Errorf("worker %d asked to flush %v it does not hold", w, ch)
	}
	if be.stall != nil && be.stall(w, ch) {
		cancel := make(chan struct{})
		be.cancels[w][ch] = cancel
		be.mu.Unlock()
		select {
		case <-cancel:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("worker %d stalled on %v and was never canceled", w, ch)
		}
		be.mu.Lock()
		delete(be.cancels[w], ch)
		delete(be.held[w], ch)
		be.mu.Unlock()
		return nil, fmt.Errorf("stalled unit dropped: %w", engine.ErrUnitCanceled)
	}
	delete(be.held[w], ch)
	be.mu.Unlock()
	return blocks, nil
}

func (be *csBackend) CancelUnit(w int, ch matrix.Chunk) {
	be.mu.Lock()
	defer be.mu.Unlock()
	if cancel, ok := be.cancels[w][ch]; ok {
		close(cancel)
	}
}

// TestPlannedRedundancyHealthyBitwise runs both modes through the engine on
// a healthy fleet and demands C bitwise-identical to the plain pipelined
// executor: replicas replay identical systematic work, and parity results
// are discarded unused when every member returns.
func TestPlannedRedundancyHealthyBitwise(t *testing.T) {
	inst := sched.Instance{R: 8, S: 12, T: 5}
	res, err := sched.Het{}.Schedule(testbed(), inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	q := 3
	for _, mode := range []Mode{ModeReplicated, ModeCoded} {
		a, b, c, _ := buildMatrices(t, inst, q, 7)
		_, _, base, _ := buildMatrices(t, inst, q, 7)
		cfg := engine.Config{Workers: testbed().P(), T: inst.T, Pipelined: true}
		if err := engine.RunContext(context.Background(), cfg, plan, a, b, base); err != nil {
			t.Fatal(err)
		}
		red, err := Plan(inst.T, plan, a, c, testbed().P(), Options{Mode: mode, R: 2})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := engine.RunRedundantContext(context.Background(), cfg, plan, a, b, c, red); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		d := c.MaxAbsDiff(base)
		if st := red.Stats(); st.Decodes == 0 {
			// No decode fired: every committed result was systematic and the
			// output must be bitwise-identical to the plain executor's.
			if d != 0 {
				t.Fatalf("%s: C differs from plain run by %g (want bitwise equal, stats %+v)", mode, d, st)
			}
		} else if d > 1e-9 {
			// An end-of-run race let a parity decode beat a healthy copy (the
			// copy cap was saturated, so the gate was within its rights);
			// reconstructed values are exact only to solver tolerance.
			t.Fatalf("%s: C differs from plain run by %g after %d decodes", mode, d, st.Decodes)
		}
	}
}

// TestCodedDecodeRecoversStalledJob forces the parity path end to end: every
// systematic copy of one group member stalls at its result (the chosen job is
// not its group's first member, so its chunk coordinates are distinct from
// the parity unit's borrowed ones), leaving the pre-encoded parity unit as
// the only way to complete the job. The gate must decode the missing member,
// wire-cancel the stalled copies, and produce a C that matches the serial
// oracle within solver tolerance.
func TestCodedDecodeRecoversStalledJob(t *testing.T) {
	inst := sched.Instance{R: 8, S: 12, T: 5}
	res, err := sched.Het{}.Schedule(testbed(), inst)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan()
	jobs, _, err := sim.JobsFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, want := buildMatrices(t, inst, 3, 8)
	red, err := Plan(inst.T, plan, a, c, testbed().P(), Options{Mode: ModeCoded, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stall every copy of one group member's chunk. The victim must not be
	// its group's first member (the parity unit borrows that member's chunk
	// coordinates, so stalling it would stall the parity too), and its primary
	// must not live on the parity's host worker (the stalled primary would
	// wedge the host's queue before the parity ever dispatched).
	victim := matrix.Chunk{}
	for _, u := range red.Units {
		for _, ji := range u.Members[1:] {
			if jobs[ji].Worker != u.Worker {
				victim = jobs[ji].Chunk
				break
			}
		}
		if victim != (matrix.Chunk{}) {
			break
		}
	}
	if victim == (matrix.Chunk{}) {
		t.Skip("no stallable multi-member parity group in this plan")
	}
	be := newCSBackend(testbed().P(), func(w int, ch matrix.Chunk) bool { return ch == victim })
	start := time.Now()
	if err := engine.ExecuteRedundantContext(context.Background(), inst.T, plan, a, b, c, be, red); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v; the stalled job was waited out instead of decoded around", elapsed)
	}
	if d := c.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("decoded C differs from serial oracle by %g", d)
	}
	st := red.Stats()
	if st.Decodes == 0 {
		t.Errorf("no decode recorded (stats %+v)", st)
	}
	if st.Absorbed == 0 {
		t.Errorf("stalled copies never recorded as absorbed (stats %+v)", st)
	}
}
