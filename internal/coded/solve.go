package coded

import "repro/internal/matrix"

// pivotEps rejects a pivot as numerically singular. The planner's coefficient
// matrices are tiny generalized Vandermonde systems over small integer nodes
// (group width ≤ GroupSize, nodes 1..R), so genuine pivots sit far above
// this; only a malformed system gets near it.
const pivotEps = 1e-12

// Reconstruct is the engine.ReconstructFunc the planner installs: it solves
// one parity group for its missing members. members holds the group's
// committed results by slot (nil where missing), each parity row contributes
// its coefficient vector and result blocks. All received results of one group
// share the system Σ_i coef_i·R_i = parity, element-wise over every block
// position, so one Gaussian elimination with partial pivoting — row
// operations applied to whole block lists — recovers every missing R_i at
// once. Returns ok=false while underdetermined (or on a singular system,
// which a well-formed plan never produces); inputs are never mutated.
func Reconstruct(members [][]*matrix.Block, coeffs [][]float64, parities [][]*matrix.Block) (map[int][]*matrix.Block, bool) {
	var missing []int
	for s, m := range members {
		if m == nil {
			missing = append(missing, s)
		}
	}
	if len(missing) == 0 {
		return map[int][]*matrix.Block{}, true
	}
	if len(parities) < len(missing) || len(coeffs) != len(parities) {
		return nil, false
	}

	// Move the known members to the right-hand side: rhs_j = parity_j −
	// Σ_{known i} coef_ji·member_i. Fresh clones — the parity blocks may be
	// retried with more rows later if this solve reports singular.
	n := len(parities)
	rhs := make([][]*matrix.Block, n)
	mat := make([][]float64, n)
	for j := 0; j < n; j++ {
		if len(coeffs[j]) != len(members) {
			return nil, false
		}
		rhs[j] = cloneList(parities[j])
		for s, m := range members {
			if m != nil {
				axpyList(rhs[j], -coeffs[j][s], m)
			}
		}
		mat[j] = make([]float64, len(missing))
		for u, s := range missing {
			mat[j][u] = coeffs[j][s]
		}
	}

	// Forward elimination with partial pivoting over all n rows.
	for u := range missing {
		p := u
		for r := u + 1; r < n; r++ {
			if abs(mat[r][u]) > abs(mat[p][u]) {
				p = r
			}
		}
		if abs(mat[p][u]) < pivotEps {
			return nil, false
		}
		mat[u], mat[p] = mat[p], mat[u]
		rhs[u], rhs[p] = rhs[p], rhs[u]
		for r := u + 1; r < n; r++ {
			f := mat[r][u] / mat[u][u]
			if f == 0 {
				continue
			}
			for v := u; v < len(missing); v++ {
				mat[r][v] -= f * mat[u][v]
			}
			axpyList(rhs[r], -f, rhs[u])
		}
	}

	// Back substitution; each solution reuses its rhs row's blocks.
	out := make(map[int][]*matrix.Block, len(missing))
	for u := len(missing) - 1; u >= 0; u-- {
		x := rhs[u]
		for v := u + 1; v < len(missing); v++ {
			axpyList(x, -mat[u][v], rhs[v])
		}
		scaleList(x, 1/mat[u][u])
		out[missing[u]] = x
	}
	return out, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func cloneList(blocks []*matrix.Block) []*matrix.Block {
	out := make([]*matrix.Block, len(blocks))
	for i, b := range blocks {
		out[i] = b.Clone()
	}
	return out
}

// axpyList accumulates dst += s·src blockwise (same shapes).
func axpyList(dst []*matrix.Block, s float64, src []*matrix.Block) {
	for i, b := range src {
		axpyBlock(dst[i], s, b)
	}
}

func scaleList(blocks []*matrix.Block, s float64) {
	if s == 1 {
		return
	}
	for _, b := range blocks {
		for i := range b.Data {
			b.Data[i] *= s
		}
	}
}
