// Package coded plans proactive redundancy over a chunk plan: the extra
// work units the engine's k-of-n completion gate races against the plan's
// own (systematic) jobs, so a straggler is absorbed the moment any k of the
// n dispatched units finish — no heartbeat timeout on the completion path.
//
// Two modes, after the rateless/coded matrix-multiplication lines related to
// the paper. replicated duplicates the hottest chunk jobs onto the fastest
// other workers; every committed result is a verbatim systematic result, so
// C is always bitwise-identical to the unredundant run. coded adds systematic
// MDS parity units: groups of up to GroupSize compatible jobs are covered by
// generalized-Vandermonde parity combinations of their payloads, and a decode
// reconstructs only the group members that never returned — the
// straggler-free path still commits systematic results verbatim.
package coded

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adapt"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// Mode selects the redundancy strategy.
type Mode string

const (
	ModeOff        Mode = "off"
	ModeReplicated Mode = "replicated"
	ModeCoded      Mode = "coded"
)

// ParseMode parses a mode name.
func ParseMode(s string) (Mode, error) {
	switch Mode(strings.ToLower(strings.TrimSpace(s))) {
	case ModeOff, "":
		return ModeOff, nil
	case ModeReplicated:
		return ModeReplicated, nil
	case ModeCoded:
		return ModeCoded, nil
	}
	return ModeOff, fmt.Errorf("coded: unknown redundancy mode %q (want off, replicated, or coded)", s)
}

// ParseSpec parses a command-line redundancy spec: "mode" or "mode:r",
// e.g. "replicated", "coded:2". r defaults to 1 for any enabled mode.
func ParseSpec(s string) (Mode, int, error) {
	name, rs, found := strings.Cut(s, ":")
	mode, err := ParseMode(name)
	if err != nil {
		return ModeOff, 0, err
	}
	r := 1
	if found {
		r, err = strconv.Atoi(strings.TrimSpace(rs))
		if err != nil || r < 0 {
			return ModeOff, 0, fmt.Errorf("coded: bad redundancy factor %q (want a non-negative integer)", rs)
		}
	}
	if mode == ModeOff {
		r = 0
	}
	return mode, r, nil
}

// Options configures Plan.
type Options struct {
	Mode Mode
	// R is the redundancy factor: replicated places R replicas fleet-wide per
	// wave (of the hottest jobs); coded emits up to R parity units per parity
	// group. ≤ 0 defaults to 1.
	R int
	// Estimator prices placement with live measurements; nil falls back to
	// uniform costs (placement by load alone).
	Estimator adapt.Estimator
	// GroupSize caps parity group width (k). Small groups keep the
	// generalized-Vandermonde decode well-conditioned; ≤ 0 defaults to 4.
	GroupSize int
	// SpeculationLimit is forwarded to the gate (see
	// engine.Redundancy.SpeculationLimit). 0 keeps the gate default.
	SpeculationLimit int
}

func (o *Options) r() int {
	if o.R <= 0 {
		return 1
	}
	return o.R
}

func (o *Options) groupSize() int {
	if o.GroupSize <= 0 {
		return 4
	}
	return o.GroupSize
}

// jobCost prices one chunk job on worker w with the elastic executor's cost
// primitives (blocks moved over the job's life, block updates performed).
// A nil estimator degrades to a uniform-speed model, which still orders jobs
// by size and workers by load.
func jobCost(est adapt.Estimator, w int, j sim.PlanJob) float64 {
	blocks := 2 * j.Chunk.Blocks()
	var updates int64
	for _, p := range j.Panels {
		blocks += (p[1] - p[0]) * (j.Chunk.H + j.Chunk.W)
		updates += int64(p[1]-p[0]) * int64(j.Chunk.H) * int64(j.Chunk.W)
	}
	if est == nil {
		return float64(blocks) + float64(updates)
	}
	return est.JobCost(w, blocks, updates)
}

// Plan builds the redundancy the engine's k-of-n gate executes alongside
// plan: replicas in ModeReplicated, systematic MDS parity units in ModeCoded.
// a and c are the live matrices — parity payloads are pre-encoded here, at
// plan time, from the initial C (group members may commit, mutating C, before
// a parity unit even dispatches). workers is the backend's worker count.
// ModeOff (or an empty plan) returns nil: callers pass the nil straight to
// the engine, which degenerates to the plain pipelined executor.
func Plan(t int, plan []sim.PlanOp, a, c *matrix.BlockMatrix, workers int, opts Options) (*engine.Redundancy, error) {
	if opts.Mode == ModeOff || opts.Mode == "" {
		return nil, nil
	}
	if opts.Mode != ModeReplicated && opts.Mode != ModeCoded {
		return nil, fmt.Errorf("coded: unknown redundancy mode %q", opts.Mode)
	}
	jobs, _, err := sim.JobsFromPlan(plan)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 || workers < 2 {
		// No jobs to protect, or nowhere to put a second copy: run with the
		// gate (for its arbitration and stats) but no planned units.
		return &engine.Redundancy{Mode: string(opts.Mode), SpeculationLimit: opts.SpeculationLimit}, nil
	}

	// Plan-time load model: each worker starts with the cost of its own
	// primary assignments, so redundant units land on the workers with slack.
	load := make([]float64, workers)
	for _, j := range jobs {
		if j.Worker >= 0 && j.Worker < workers {
			load[j.Worker] += jobCost(opts.Estimator, j.Worker, j)
		}
	}

	red := &engine.Redundancy{Mode: string(opts.Mode), SpeculationLimit: opts.SpeculationLimit}
	switch opts.Mode {
	case ModeReplicated:
		red.Units = planReplicas(jobs, workers, load, opts)
	case ModeCoded:
		red.Units, err = planParities(t, jobs, a, c, workers, load, opts)
		if err != nil {
			return nil, err
		}
		red.Reconstruct = Reconstruct
	}
	return red, nil
}

// planReplicas duplicates the R most expensive jobs (as priced on their own
// workers — the jobs whose straggling would hurt most) onto the cheapest
// other workers, greedily by plan-time load.
func planReplicas(jobs []sim.PlanJob, workers int, load []float64, opts Options) []engine.RedundantUnit {
	type hot struct {
		ji   int
		cost float64
	}
	hots := make([]hot, len(jobs))
	for ji, j := range jobs {
		hots[ji] = hot{ji: ji, cost: jobCost(opts.Estimator, j.Worker, j)}
	}
	// Descending cost, index order on ties — deterministic hotness ranking.
	for i := 1; i < len(hots); i++ {
		for k := i; k > 0 && hots[k].cost > hots[k-1].cost; k-- {
			hots[k], hots[k-1] = hots[k-1], hots[k]
		}
	}
	r := opts.r()
	if r > len(jobs) {
		r = len(jobs)
	}
	var units []engine.RedundantUnit
	for _, h := range hots[:r] {
		w := pickWorker(workers, load, func(w int) (float64, bool) {
			return jobCost(opts.Estimator, w, jobs[h.ji]), w != jobs[h.ji].Worker
		})
		if w < 0 {
			continue
		}
		load[w] += jobCost(opts.Estimator, w, jobs[h.ji])
		units = append(units, engine.RedundantUnit{Worker: w, Job: h.ji})
	}
	return units
}

// pickWorker returns the eligible worker minimizing load + cost (lowest index
// on ties), or -1 when none is eligible.
func pickWorker(workers int, load []float64, price func(w int) (cost float64, ok bool)) int {
	best, bestEnd := -1, 0.0
	for w := 0; w < workers; w++ {
		cost, ok := price(w)
		if !ok {
			continue
		}
		if end := load[w] + cost; best < 0 || end < bestEnd {
			best, bestEnd = w, end
		}
	}
	return best
}

// planParities groups compatible jobs (same chunk shape, same B columns, same
// installment schedule — the geometry that makes the weighted-sum algebra
// close) into parity groups of at most GroupSize members, and emits up to R
// pre-encoded parity units per group, placed on the least-loaded workers that
// host no member of the group.
func planParities(t int, jobs []sim.PlanJob, a, c *matrix.BlockMatrix, workers int, load []float64, opts Options) ([]engine.RedundantUnit, error) {
	sig := func(j sim.PlanJob) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%dx%d@c%d", j.Chunk.H, j.Chunk.W, j.Chunk.Col0)
		for _, p := range j.Panels {
			fmt.Fprintf(&sb, ":%d-%d", p[0], p[1])
		}
		return sb.String()
	}
	bySig := make(map[string][]int)
	var order []string
	for ji, j := range jobs {
		s := sig(j)
		if _, seen := bySig[s]; !seen {
			order = append(order, s)
		}
		bySig[s] = append(bySig[s], ji)
	}

	var units []engine.RedundantUnit
	gid := 0
	for _, s := range order {
		members := bySig[s]
		for g0 := 0; g0 < len(members); g0 += opts.groupSize() {
			g1 := g0 + opts.groupSize()
			if g1 > len(members) {
				g1 = len(members)
			}
			group := members[g0:g1]
			r := opts.r()
			if r > len(group) {
				r = len(group) // more parities than members can never decode more
			}
			hostsMember := make(map[int]bool, len(group))
			for _, ji := range group {
				hostsMember[jobs[ji].Worker] = true
			}
			for p := 1; p <= r; p++ {
				u, err := encodeParity(t, jobs, group, gid, p, a, c)
				if err != nil {
					return nil, err
				}
				w := pickWorker(workers, load, func(w int) (float64, bool) {
					return jobCost(opts.Estimator, w, jobs[group[0]]), !hostsMember[w]
				})
				if w < 0 {
					// Every worker hosts a member; fall back to any worker.
					w = pickWorker(workers, load, func(w int) (float64, bool) {
						return jobCost(opts.Estimator, w, jobs[group[0]]), true
					})
				}
				if w < 0 {
					continue
				}
				load[w] += jobCost(opts.Estimator, w, jobs[group[0]])
				u.Worker = w
				units = append(units, u)
			}
			gid++
		}
	}
	return units, nil
}

// encodeParity builds parity unit p (1-based) of one group: coefficients
// coef_i = p^i over member slots i, the C seed Σ coef_i·C_i pre-encoded from
// the current C, and the A seeds Σ coef_i·A_i per installment. Distinct
// evaluation nodes p make any square submatrix of the coefficient matrix
// nonsingular (generalized Vandermonde), so any #missing ≤ #parities decode
// is solvable.
func encodeParity(t int, jobs []sim.PlanJob, group []int, gid, p int, a, c *matrix.BlockMatrix) (engine.RedundantUnit, error) {
	first := jobs[group[0]]
	ch := first.Chunk
	coeffs := make([]float64, len(group))
	node := float64(p)
	pow := 1.0
	for i := range coeffs {
		coeffs[i] = pow
		pow *= node
	}

	cSeed := zeroBlocks(ch.Blocks(), c.Q)
	for s, ji := range group {
		axpyChunk(cSeed, coeffs[s], c, jobs[ji].Chunk)
	}

	aSeeds := make([][]*matrix.Block, len(first.Panels))
	for pi, pr := range first.Panels {
		d := pr[1] - pr[0]
		enc := zeroBlocks(ch.H*d, a.Q)
		for s, ji := range group {
			mch := jobs[ji].Chunk
			idx := 0
			for i := mch.Row0; i < mch.Row0+mch.H; i++ {
				for k := pr[0]; k < pr[1]; k++ {
					axpyBlock(enc[idx], coeffs[s], a.Block(i, k))
					idx++
				}
			}
		}
		aSeeds[pi] = enc
	}

	return engine.RedundantUnit{
		Job:     -1,
		Group:   gid,
		Members: append([]int(nil), group...),
		Coeffs:  coeffs,
		Chunk:   ch,
		Panels:  append([][2]int(nil), first.Panels...),
		CSeed:   cSeed,
		ASeeds:  aSeeds,
	}, nil
}

func zeroBlocks(n, q int) []*matrix.Block {
	out := make([]*matrix.Block, n)
	for i := range out {
		out[i] = matrix.NewBlock(q)
	}
	return out
}

// axpyBlock accumulates dst += s·src elementwise.
func axpyBlock(dst *matrix.Block, s float64, src *matrix.Block) {
	for i, v := range src.Data {
		dst.Data[i] += s * v
	}
}

// axpyChunk accumulates dst += s·(chunk ch of m), dst row-major over ch.
func axpyChunk(dst []*matrix.Block, s float64, m *matrix.BlockMatrix, ch matrix.Chunk) {
	idx := 0
	for i := ch.Row0; i < ch.Row0+ch.H; i++ {
		for j := ch.Col0; j < ch.Col0+ch.W; j++ {
			axpyBlock(dst[idx], s, m.Block(i, j))
			idx++
		}
	}
}
