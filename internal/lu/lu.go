// Package lu is the extension sketched in the paper's conclusion and
// developed in its companion research report: adapting the master-worker
// memory layout to LU factorization. The O(n³) part of a right-looking
// blocked LU is the trailing-submatrix update — a matrix product — so the
// same chunking discipline applies step by step: at elimination step k the
// master factors the panel, then farms the trailing update C_ij −= L_ik·U_kj
// out to workers in μ×μ chunks.
//
// The package provides a sequential blocked reference (Factor), a real
// parallel executor whose trailing updates run on a worker pool
// (FactorParallel), and a makespan simulator for the master-worker version
// on a heterogeneous star platform (SimulateMakespan). No pivoting is
// performed: inputs must be factorizable as-is (tests use diagonally
// dominant matrices), which is the standard simplification in this line of
// work since pivoting does not change the communication structure of the
// trailing updates.
package lu

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/matrix"
)

// BlockLU factors one q×q block in place without pivoting: on return the
// strict lower triangle holds L (unit diagonal implied) and the upper
// triangle (with diagonal) holds U. It fails on a (near-)zero pivot.
func BlockLU(a *matrix.Block) error {
	q := a.Q
	for k := 0; k < q; k++ {
		piv := a.At(k, k)
		if math.Abs(piv) < 1e-300 {
			return fmt.Errorf("lu: zero pivot at in-block position %d", k)
		}
		for i := k + 1; i < q; i++ {
			l := a.At(i, k) / piv
			a.Set(i, k, l)
			if l == 0 {
				continue
			}
			for j := k + 1; j < q; j++ {
				a.Set(i, j, a.At(i, j)-l*a.At(k, j))
			}
		}
	}
	return nil
}

// SolveLowerLeft overwrites x with L⁻¹·x, where lu holds a factored block
// (unit lower triangle): forward substitution applied to each column of x.
func SolveLowerLeft(lu, x *matrix.Block) {
	q := lu.Q
	for j := 0; j < q; j++ {
		for i := 0; i < q; i++ {
			s := x.At(i, j)
			for k := 0; k < i; k++ {
				s -= lu.At(i, k) * x.At(k, j)
			}
			x.Set(i, j, s) // unit diagonal: no division
		}
	}
}

// SolveUpperRight overwrites x with x·U⁻¹, where lu holds a factored block
// (upper triangle including diagonal): back substitution applied to each row
// of x.
func SolveUpperRight(lu, x *matrix.Block) {
	q := lu.Q
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			s := x.At(i, j)
			for k := 0; k < j; k++ {
				s -= x.At(i, k) * lu.At(k, j)
			}
			x.Set(i, j, s/lu.At(j, j))
		}
	}
}

// Factor performs the in-place blocked right-looking LU factorization of the
// n×n block matrix a: afterwards block (i,j) holds L_ij for i>j, U_ij for
// i<j, and the packed LU factors of the diagonal blocks.
func Factor(a *matrix.BlockMatrix) error {
	return factor(a, func(k int, tasks []trailingTask) error {
		for _, t := range tasks {
			matrix.MulSub(t.c, t.l, t.u)
		}
		return nil
	})
}

// FactorParallel is Factor with the trailing updates of each step executed by
// a pool of workers goroutines — the shared-memory analogue of the
// master-worker scheme (panel work stays on the "master").
func FactorParallel(a *matrix.BlockMatrix, workers int) error {
	if workers <= 0 {
		return fmt.Errorf("lu: need a positive worker count")
	}
	return factor(a, func(k int, tasks []trailingTask) error {
		var wg sync.WaitGroup
		ch := make(chan trailingTask, len(tasks))
		for _, t := range tasks {
			ch <- t
		}
		close(ch)
		n := min(workers, len(tasks))
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					matrix.MulSub(t.c, t.l, t.u)
				}
			}()
		}
		wg.Wait()
		return nil
	})
}

type trailingTask struct{ c, l, u *matrix.Block }

func factor(a *matrix.BlockMatrix, update func(k int, tasks []trailingTask) error) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("lu: matrix is %dx%d blocks, need square", a.Rows, a.Cols)
	}
	n := a.Rows
	for k := 0; k < n; k++ {
		akk := a.Block(k, k)
		if err := BlockLU(akk); err != nil {
			return fmt.Errorf("lu: step %d: %w", k, err)
		}
		for j := k + 1; j < n; j++ {
			SolveLowerLeft(akk, a.Block(k, j))
		}
		for i := k + 1; i < n; i++ {
			SolveUpperRight(akk, a.Block(i, k))
		}
		tasks := make([]trailingTask, 0, (n-k-1)*(n-k-1))
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				tasks = append(tasks, trailingTask{c: a.Block(i, j), l: a.Block(i, k), u: a.Block(k, j)})
			}
		}
		if len(tasks) > 0 {
			if err := update(k, tasks); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reconstruct multiplies the packed factors back into a full matrix, for
// verification: returns L·U where L is unit lower (block) triangular and U
// upper triangular, both extracted from the packed form.
func Reconstruct(f *matrix.BlockMatrix) (*matrix.BlockMatrix, error) {
	if f.Rows != f.Cols {
		return nil, fmt.Errorf("lu: packed factors are %dx%d blocks", f.Rows, f.Cols)
	}
	n, q := f.Rows, f.Q
	l := matrix.NewBlockMatrix(n, n, q)
	u := matrix.NewBlockMatrix(n, n, q)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src := f.PeekBlock(i, j)
			if src == nil {
				continue
			}
			switch {
			case i > j:
				l.SetBlock(i, j, src.Clone())
			case i < j:
				u.SetBlock(i, j, src.Clone())
			default:
				lb, ub := matrix.NewBlock(q), matrix.NewBlock(q)
				for r := 0; r < q; r++ {
					lb.Set(r, r, 1)
					for c := 0; c < q; c++ {
						if r > c {
							lb.Set(r, c, src.At(r, c))
						} else {
							ub.Set(r, c, src.At(r, c))
						}
					}
				}
				l.SetBlock(i, i, lb)
				u.SetBlock(i, i, ub)
			}
		}
	}
	out := matrix.NewBlockMatrix(n, n, q)
	if err := matrix.Multiply(out, l, u); err != nil {
		return nil, err
	}
	return out, nil
}

// NewDiagonallyDominant builds a random n×n block matrix (block edge q) that
// is strictly diagonally dominant, hence LU-factorizable without pivoting.
func NewDiagonallyDominant(n, q int, seed int64) *matrix.BlockMatrix {
	a := matrix.NewBlockMatrix(n, n, q)
	rng := newRand(seed)
	dim := n * q
	for ei := 0; ei < dim; ei++ {
		var rowSum float64
		for ej := 0; ej < dim; ej++ {
			if ei == ej {
				continue
			}
			v := 2*rng.Float64() - 1
			a.Set(ei, ej, v)
			rowSum += math.Abs(v)
		}
		a.Set(ei, ei, rowSum+1+rng.Float64())
	}
	return a
}
