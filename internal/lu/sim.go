package lu

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sim"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// StepStats summarizes one elimination step of the simulated master-worker
// LU.
type StepStats struct {
	Step     int
	Trailing int // trailing submatrix edge, in blocks
	Makespan float64
}

// SimulateMakespan models the master-worker LU of the companion report on a
// heterogeneous star platform: at step k the master factors the panel
// (charged panelW time units per panel block, serially — the master owns the
// panel) and then distributes the (n-k-1)² trailing updates in μ×μ chunks
// under the optimized memory layout, demand-driven. Each step's trailing
// update is an outer product (t = 1): a chunk needs one installment of H+W
// blocks (the L column and U row pieces) and performs H·W updates. The
// function returns the total makespan and the per-step breakdown.
func SimulateMakespan(pl *platform.Platform, n int, panelW float64) (float64, []StepStats, error) {
	if n <= 0 {
		return 0, nil, fmt.Errorf("lu: n must be positive")
	}
	mus := make([]int, pl.P())
	feasible := false
	for i, w := range pl.Workers {
		mus[i] = platform.MuOverlap(w.M)
		if mus[i] > 0 {
			feasible = true
		}
	}
	if !feasible {
		return 0, nil, fmt.Errorf("lu: no worker can hold the layout")
	}
	total := 0.0
	steps := make([]StepStats, 0, n)
	for k := 0; k < n; k++ {
		// Panel: factor the diagonal block and solve 2·(n-k-1) panel blocks.
		panelBlocks := 1 + 2*(n-k-1)
		total += float64(panelBlocks) * panelW
		edge := n - k - 1
		st := StepStats{Step: k, Trailing: edge}
		if edge > 0 {
			mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
			res, err := sim.Run(sim.Config{
				Platform: pl,
				Source:   sim.NewCarver(edge, edge, 1, mus, mus, mk),
				Policy:   &sim.DemandDriven{Label: "lu"},
				Name:     fmt.Sprintf("lu-step-%d", k),
			})
			if err != nil {
				return 0, nil, err
			}
			if err := res.Trace.Validate(); err != nil {
				return 0, nil, err
			}
			st.Makespan = res.Makespan
			total += res.Makespan
		}
		steps = append(steps, st)
	}
	return total, steps, nil
}

// CommVolume returns the total number of blocks the simulated master-worker
// LU moves through the master port, for comparing layouts analytically.
func CommVolume(pl *platform.Platform, n int) (int64, error) {
	mus := make([]int, pl.P())
	for i, w := range pl.Workers {
		mus[i] = platform.MuOverlap(w.M)
	}
	var vol int64
	for k := 0; k < n; k++ {
		edge := n - k - 1
		if edge == 0 {
			continue
		}
		mk := func(worker int, ch matrix.Chunk, t, seq int) sim.Job { return sim.MakeStandardJob(ch, t, seq) }
		res, err := sim.Run(sim.Config{
			Platform: pl,
			Source:   sim.NewCarver(edge, edge, 1, mus, mus, mk),
			Policy:   &sim.DemandDriven{Label: "lu"},
			Name:     "lu-vol",
		})
		if err != nil {
			return 0, err
		}
		vol += res.Trace.Stats().CommBlocks
	}
	return vol, nil
}
