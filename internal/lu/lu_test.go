package lu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/platform"
)

func TestBlockLUKnown(t *testing.T) {
	// [[4, 3], [6, 3]] = [[1,0],[1.5,1]]·[[4,3],[0,-1.5]]
	a := matrix.NewBlock(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 3)
	a.Set(1, 0, 6)
	a.Set(1, 1, 3)
	if err := BlockLU(a); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{4, 3}, {1.5, -1.5}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(a.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("packed[%d][%d] = %v, want %v", i, j, a.At(i, j), want[i][j])
			}
		}
	}
}

func TestBlockLUZeroPivot(t *testing.T) {
	a := matrix.NewBlock(2) // all zeros
	if err := BlockLU(a); err == nil {
		t.Fatal("zero pivot not detected")
	}
}

func TestSolveLowerLeft(t *testing.T) {
	// L = [[1,0],[2,1]] (packed with junk upper), x = L·y for a known y.
	lu := matrix.NewBlock(2)
	lu.Set(1, 0, 2)
	x := matrix.NewBlock(2)
	// y = [[1,3],[5,7]] → x = L·y = [[1,3],[7,13]]
	x.Set(0, 0, 1)
	x.Set(0, 1, 3)
	x.Set(1, 0, 7)
	x.Set(1, 1, 13)
	SolveLowerLeft(lu, x)
	want := [][]float64{{1, 3}, {5, 7}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(x.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("x[%d][%d] = %v, want %v", i, j, x.At(i, j), want[i][j])
			}
		}
	}
}

func TestSolveUpperRight(t *testing.T) {
	// U = [[2,1],[0,4]], x = y·U for y = [[1,2],[3,4]] → x = [[2,9],[6,19]]
	lu := matrix.NewBlock(2)
	lu.Set(0, 0, 2)
	lu.Set(0, 1, 1)
	lu.Set(1, 1, 4)
	x := matrix.NewBlock(2)
	x.Set(0, 0, 2)
	x.Set(0, 1, 9)
	x.Set(1, 0, 6)
	x.Set(1, 1, 19)
	SolveUpperRight(lu, x)
	want := [][]float64{{1, 2}, {3, 4}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(x.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("x[%d][%d] = %v, want %v", i, j, x.At(i, j), want[i][j])
			}
		}
	}
}

func TestFactorReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		a := NewDiagonallyDominant(n, 5, int64(n))
		orig := a.Clone()
		if err := Factor(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back, err := Reconstruct(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := back.MaxAbsDiff(orig); d > 1e-8 {
			t.Errorf("n=%d: L·U deviates from A by %g", n, d)
		}
	}
}

func TestFactorParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		a := NewDiagonallyDominant(4, 4, 99)
		b := a.Clone()
		if err := Factor(a); err != nil {
			t.Fatal(err)
		}
		if err := FactorParallel(b, workers); err != nil {
			t.Fatal(err)
		}
		if d := a.MaxAbsDiff(b); d > 1e-10 {
			t.Errorf("workers=%d: parallel factors deviate by %g", workers, d)
		}
	}
}

func TestFactorParallelValidation(t *testing.T) {
	if err := FactorParallel(matrix.NewBlockMatrix(2, 2, 2), 0); err == nil {
		t.Error("zero workers accepted")
	}
	if err := Factor(matrix.NewBlockMatrix(2, 3, 2)); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestFactorProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 1 + int(abs(seed))%3
		a := NewDiagonallyDominant(n, 3, seed)
		orig := a.Clone()
		if err := Factor(a); err != nil {
			return false
		}
		back, err := Reconstruct(a)
		if err != nil {
			return false
		}
		return back.MaxAbsDiff(orig) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSimulateMakespan(t *testing.T) {
	pl := platform.Homogeneous(4, 1, 1, 60)
	total, steps, err := SimulateMakespan(pl, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 || len(steps) != 10 {
		t.Fatalf("total=%v steps=%d", total, len(steps))
	}
	// Trailing updates shrink with k.
	for i := 1; i < len(steps); i++ {
		if steps[i].Trailing >= steps[i-1].Trailing {
			t.Errorf("trailing not shrinking at step %d", i)
		}
	}
	// The final step has no trailing work.
	if steps[len(steps)-1].Makespan != 0 {
		t.Errorf("last step should have no trailing update")
	}
}

func TestSimulateMakespanMoreWorkersHelp(t *testing.T) {
	one, _, err := SimulateMakespan(platform.Homogeneous(1, 0.1, 1, 60), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	four, _, err := SimulateMakespan(platform.Homogeneous(4, 0.1, 1, 60), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if four >= one {
		t.Errorf("4 workers (%v) should beat 1 (%v) on a compute-bound LU", four, one)
	}
}

func TestSimulateMakespanValidation(t *testing.T) {
	if _, _, err := SimulateMakespan(platform.Homogeneous(1, 1, 1, 60), 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestCommVolume(t *testing.T) {
	pl := platform.Homogeneous(2, 1, 1, 60)
	vol, err := CommVolume(pl, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: every trailing C block is sent and received once per step
	// it participates in: Σ_k 2(n-k-1)² plus inputs.
	var lower int64
	for k := 0; k < 6; k++ {
		e := int64(6 - k - 1)
		lower += 2 * e * e
	}
	if vol <= lower {
		t.Errorf("comm volume %d should exceed the C-only bound %d (inputs move too)", vol, lower)
	}
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
