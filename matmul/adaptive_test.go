package matmul

import (
	"context"
	"testing"
	"time"

	mmnet "repro/internal/net"
)

// TestAdaptiveInProcessBitwiseAndStats: an adaptive in-process session
// computes the same bits as a static one and exposes live estimates.
func TestAdaptiveInProcessBitwiseAndStats(t *testing.T) {
	const r, s, tt, q = 6, 9, 4, 4
	pl := []Worker{{C: 1, W: 1, M: 60}, {C: 1, W: 1, M: 60}}

	want := seededRun(t, r, s, tt, q, WithPlatform(pl...))
	got := seededRun(t, r, s, tt, q, WithPlatform(pl...), WithAdaptive(0))
	if !got.Equal(want, 0) {
		t.Fatal("adaptive in-process C differs bitwise from the static session's")
	}
}

// seededRun opens a session with opts, runs one seeded product, and returns
// C (checking Stats on the way out when the session reports them).
func seededRun(t *testing.T, r, s, tt, q int, opts ...Option) *Matrix {
	t.Helper()
	ctx := context.Background()
	sess, err := Open(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a, b, c := seeded(t, r, s, tt, q, 99)
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAdaptiveStatsReportObservations: after a job on an adaptive session,
// Stats must carry samples and positive measured costs for used workers.
func TestAdaptiveStatsReportObservations(t *testing.T) {
	ctx := context.Background()
	sess, err := Open(ctx, WithAdaptive(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Adaptive {
		t.Fatal("adaptive session reports Adaptive=false")
	}
	for _, w := range st.Workers {
		if w.Samples != 0 {
			t.Fatalf("fresh session already has samples: %+v", w)
		}
	}

	a, b, c := seeded(t, 6, 9, 4, 4, 5)
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st, err = sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	sampled := 0
	for _, w := range st.Workers {
		if w.Samples > 0 {
			if w.CPerBlock <= 0 {
				t.Fatalf("worker %s sampled but CPerBlock=%v", w.Name, w.CPerBlock)
			}
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("no worker sampled after an adaptive job")
	}
}

// TestAdaptiveRejectedOnRemote: elasticity is daemon-side on Remote.
func TestAdaptiveRejectedOnRemote(t *testing.T) {
	if _, err := Open(context.Background(), WithRuntime(Remote("127.0.0.1:1")), WithAdaptive(0)); err == nil {
		t.Fatal("Remote accepted WithAdaptive")
	}
}

// TestAddWorkerRejectedInProcess: the goroutine fleet is fixed at Open.
func TestAddWorkerRejectedInProcess(t *testing.T) {
	sess, err := Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.AddWorker(context.Background(), "127.0.0.1:1"); err == nil {
		t.Fatal("InProcess accepted AddWorker")
	}
}

// TestDistributedAddWorkerGrowsSession: a worker added after Open serves the
// session's subsequent jobs, the platform and stats reflect it, and the
// result stays bitwise-identical to the engine reference.
func TestDistributedAddWorkerGrowsSession(t *testing.T) {
	const r, s, tt, q = 6, 9, 4, 4
	addrs := startWorkers(t, 3, nil)
	ctx := context.Background()
	sess, err := Open(ctx, WithRuntime(Distributed(addrs[:2]...)), WithAdaptive(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	run := func(seed int64) *Matrix {
		a, b, c := seeded(t, r, s, tt, q, seed)
		job, err := sess.Submit(ctx, a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return c
	}
	before := run(7)

	w, err := sess.AddWorker(ctx, addrs[2], Worker{C: 1, W: 1, M: 60})
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("AddWorker returned index %d, want 2", w)
	}
	// Duplicate-free growth is the caller's business; a second add of the
	// same daemon is simply another session on it — but the platform must
	// have grown exactly once so far.
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 3 {
		t.Fatalf("stats show %d workers after AddWorker, want 3", len(st.Workers))
	}

	after := run(7)
	if !after.Equal(before, 0) {
		t.Fatal("C changed bitwise after the fleet grew")
	}
}

// TestAdaptiveDistributedSurvivesCrash: an adaptive distributed session
// fails a crashing worker over exactly like the static runtimes, and the
// session stays usable (elastic failover is not a broken-session event).
func TestAdaptiveDistributedSurvivesCrash(t *testing.T) {
	const r, s, tt, q = 8, 12, 4, 4
	addrs := startWorkers(t, 2, func(i int) mmnet.WorkerOptions {
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 1 {
			o.CrashAfterInstalls = 2
		}
		return o
	})
	ctx := context.Background()
	sess, err := Open(ctx,
		WithRuntime(Distributed(addrs...)),
		WithPlatform(Worker{C: 1, W: 1, M: 60}, Worker{C: 1, W: 1, M: 60}),
		WithAdaptive(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	a, b, c := seeded(t, r, s, tt, q, 13)
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("adaptive job did not survive the crash: %v", err)
	}

	// Reference: a static in-process session over the same platform.
	ref := seeded2(t, r, s, tt, q, 13)
	if !c.Equal(ref, 0) {
		t.Fatal("post-crash adaptive C differs bitwise from the in-process reference")
	}
}

// seeded2 computes the bitwise reference for seed via a static in-process
// session on the default-free two-worker platform.
func seeded2(t *testing.T, r, s, tt, q int, seed int64) *Matrix {
	t.Helper()
	ctx := context.Background()
	sess, err := Open(ctx, WithPlatform(Worker{C: 1, W: 1, M: 60}, Worker{C: 1, W: 1, M: 60}))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a, b, c := seeded(t, r, s, tt, q, seed)
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	return c
}
