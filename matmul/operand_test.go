package matmul

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	mmnet "repro/internal/net"
)

// cachingWorkers gives every loopback worker daemon an unbounded panel cache.
func cachingWorkers(i int) mmnet.WorkerOptions {
	return mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond, Cache: cache.NewPanelCache(0)}
}

// TestOperandSubmitAllRuntimesBitwise submits through operand handles — and
// through a mixed handle/matrix pair — on every runtime, against caching
// workers where there is a wire: C must stay bitwise-identical to the
// pre-redesign entry point, cached panels being the same bits as streamed
// ones.
func TestOperandSubmitAllRuntimesBitwise(t *testing.T) {
	const r, s, tt, q, seed = 6, 9, 4, 8, 91
	want := engineReference(t, r, s, tt, q, seed)

	for name, opts := range runtimes(t, cachingWorkers) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			sess, err := Open(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			a, b, c := seeded(t, r, s, tt, q, seed)
			ao, err := sess.Install(ctx, a)
			if err != nil {
				t.Fatal(err)
			}
			bo, err := sess.Install(ctx, b)
			if err != nil {
				t.Fatal(err)
			}
			defer ao.Release()
			defer bo.Release()

			// Twice with handles, once mixed: every combination must land on
			// the same bits.
			for round := 0; round < 2; round++ {
				job, err := sess.Submit(ctx, ao, bo, c)
				if err != nil {
					t.Fatal(err)
				}
				if err := job.Wait(ctx); err != nil {
					t.Fatal(err)
				}
				if d := c.MaxAbsDiff(want); d != 0 {
					t.Fatalf("round %d: C differs from engine C by %g (want bitwise equal)", round, d)
				}
				// C += A·B accumulated; rebuild C and the oracle for the next
				// round so each round checks a fresh product.
				_, _, c2 := seeded(t, r, s, tt, q, seed)
				c = c2
			}
			job, err := sess.Submit(ctx, ao, b, c) // mixed: handle + plain matrix
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			if d := c.MaxAbsDiff(want); d != 0 {
				t.Errorf("mixed submit: C differs from engine C by %g", d)
			}
		})
	}
}

// TestOperandReuseSavesTransfers resubmits the same installed operands over
// a Distributed session with caching workers: the session stats must show
// panel bytes saved and handshake hits once the caches are warm.
func TestOperandReuseSavesTransfers(t *testing.T) {
	const r, s, tt, q, seed = 6, 9, 4, 8, 92
	addrs := startWorkers(t, 2, cachingWorkers)
	ctx := context.Background()
	sess, err := Open(ctx, WithRuntime(Distributed(addrs...)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	a, b, _ := seeded(t, r, s, tt, q, seed)
	ao, err := sess.Install(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := sess.Install(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		_, _, c := seeded(t, r, s, tt, q, seed)
		job, err := sess.Submit(ctx, ao, bo, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	pc := st.PanelCache
	if pc == nil {
		t.Fatal("caching Distributed session reports no PanelCache stats")
	}
	if pc.ASavedBytes+pc.BSavedBytes == 0 {
		t.Errorf("no bytes saved across three identical submissions: %+v", pc)
	}
	if pc.PanelHits == 0 {
		t.Errorf("no handshake hits across three identical submissions: %+v", pc)
	}
	saved := false
	for _, w := range st.Workers {
		if w.CacheSavedBytes > 0 {
			saved = true
		}
	}
	if !saved {
		t.Error("no worker row reports saved bytes")
	}
}

// TestOperandLifecycle pins the handle contract: a released handle rejects
// new submissions, double release is an error, and a handle cannot cross
// sessions.
func TestOperandLifecycle(t *testing.T) {
	ctx := context.Background()
	sess, err := Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	other, err := Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()

	a, b, c := seeded(t, 4, 6, 3, 4, 93)
	ao, err := sess.Install(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	if ao.Matrix() != a {
		t.Error("handle does not expose its matrix")
	}

	// Cross-session use is rejected before anything runs.
	if _, err := other.Submit(ctx, ao, b, c); err == nil || !strings.Contains(err.Error(), "different session") {
		t.Errorf("cross-session submit: %v", err)
	}

	if err := ao.Release(); err != nil {
		t.Fatal(err)
	}
	if err := ao.Release(); err == nil {
		t.Error("double release not rejected")
	}
	if _, err := sess.Submit(ctx, ao, b, c); err == nil || !strings.Contains(err.Error(), "released") {
		t.Errorf("submit after release: %v", err)
	}

	// Plain matrices keep working, and junk types are rejected.
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit(ctx, 42, b, c); err == nil {
		t.Error("non-operand A accepted")
	}
}

// TestWithPanelCacheOptionValidation checks the option's runtime gating:
// InProcess rejects it, Distributed accepts both polarities.
func TestWithPanelCacheOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Open(ctx, WithPanelCache(true)); err == nil {
		t.Error("InProcess accepted WithPanelCache")
	}
	addrs := startWorkers(t, 1, nil)
	sess, err := Open(ctx, WithRuntime(Distributed(addrs...)), WithPanelCache(false))
	if err != nil {
		t.Fatalf("Distributed rejected WithPanelCache(false): %v", err)
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PanelCache != nil {
		t.Error("PanelCache stats reported with caching off")
	}
	sess.Close()
}
