package matmul

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
)

// Operand is an installed operand handle: a blocked matrix registered with a
// Session under content addresses (one digest per A row-panel and B
// column-panel, computed lazily and memoized). Submitting the same Operand
// to many jobs lets caching runtimes recognize the operand on the wire —
// worker daemons keep recently installed panels, so a resident panel is
// never re-transferred, and the mmserve daemon routes jobs toward workers
// already holding the bits.
//
// The handle borrows the matrix: the caller must not mutate it between
// Install and the last job using the handle, because the digests are content
// addresses — stale ones would make workers reuse the wrong panels. Handles
// are ref-counted: Install returns one reference, every running job holds
// another, and Release drops the caller's; a released handle rejects further
// Submits while in-flight jobs finish safely.
type Operand struct {
	sess *Session
	mat  *Matrix

	rowOnce, colOnce sync.Once
	rows, cols       []cache.Digest

	mu       sync.Mutex
	refs     int
	released bool // the caller's reference is gone; refs may still be >0 mid-job
}

// Install registers m with the session and returns its operand handle. The
// digests are computed on first use, so installing is cheap; the cost of
// hashing each role (A rows, B columns) is paid once per handle instead of
// once per Submit. Works on every runtime — a runtime without a panel cache
// simply never asks for the digests.
func (s *Session) Install(ctx context.Context, m *Matrix) (*Operand, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("matmul: install needs a matrix")
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("matmul: session is closed")
	}
	return &Operand{sess: s, mat: m, refs: 1}, nil
}

// Matrix returns the operand's underlying blocked matrix.
func (o *Operand) Matrix() *Matrix { return o.mat }

// Release drops the caller's reference. Jobs already submitted with the
// handle keep their own references and finish unaffected; new Submits with
// the handle fail. Releasing twice is an error.
func (o *Operand) Release() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.released {
		return fmt.Errorf("matmul: operand released twice")
	}
	o.released = true
	o.refs--
	return nil
}

// retain takes a job's reference for the duration of one run.
func (o *Operand) retain() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.released {
		return fmt.Errorf("matmul: operand was released")
	}
	o.refs++
	return nil
}

// unref drops a job's reference.
func (o *Operand) unref() {
	o.mu.Lock()
	o.refs--
	o.mu.Unlock()
}

// rowPanels returns the digest of each row-panel (the operand in A
// position), hashing on first use.
func (o *Operand) rowPanels() []cache.Digest {
	o.rowOnce.Do(func() {
		o.rows = make([]cache.Digest, o.mat.Rows)
		for i := range o.rows {
			o.rows[i] = cache.RowPanelDigest(o.mat, i)
		}
	})
	return o.rows
}

// colPanels returns the digest of each column-panel (the operand in B
// position), hashing on first use.
func (o *Operand) colPanels() []cache.Digest {
	o.colOnce.Do(func() {
		o.cols = make([]cache.Digest, o.mat.Cols)
		for j := range o.cols {
			o.cols[j] = cache.ColPanelDigest(o.mat, j)
		}
	})
	return o.cols
}

// jobPanels assembles one job's panel-digest set from its operand handles.
func jobPanels(a, b *Operand) *cache.JobPanels {
	return &cache.JobPanels{
		T: a.mat.Cols, Q: a.mat.Q,
		ARows: a.rowPanels(), BCols: b.colPanels(),
	}
}

// operandOf resolves one Submit argument: an installed handle is used as-is
// (verified against this session and retained for the job); a plain matrix
// is wrapped transparently in a transient handle, so callers that never
// Install still ride the same code path — and still benefit from worker-side
// caching, since equal content hashes to equal digests either way.
func (s *Session) operandOf(v any, role string) (*Operand, func(), error) {
	switch x := v.(type) {
	case *Operand:
		if x == nil {
			return nil, nil, fmt.Errorf("matmul: submit needs %s", role)
		}
		if x.sess != s {
			return nil, nil, fmt.Errorf("matmul: operand %s was installed on a different session", role)
		}
		if err := x.retain(); err != nil {
			return nil, nil, fmt.Errorf("matmul: operand %s: %w", role, err)
		}
		return x, x.unref, nil
	case *Matrix:
		if x == nil {
			return nil, nil, fmt.Errorf("matmul: submit needs %s", role)
		}
		return &Operand{sess: s, mat: x, refs: 1}, func() {}, nil
	case nil:
		return nil, nil, fmt.Errorf("matmul: submit needs %s", role)
	default:
		return nil, nil, fmt.Errorf("matmul: %s must be a *matmul.Matrix or an installed *matmul.Operand, not %T", role, v)
	}
}
