package matmul_test

import (
	"context"
	"fmt"
	"log"

	"repro/matmul"
)

// ExampleSession computes C ← C + A·B through the facade's in-process
// runtime and verifies it against the serial reference product. Swapping
// WithRuntime(matmul.Distributed(addrs...)) or matmul.Remote(daemonAddr)
// in runs the identical job — and produces the identical bits — on remote
// mmworker daemons or an mmserve scheduling service.
func ExampleSession() {
	ctx := context.Background()
	sess, err := matmul.Open(ctx, matmul.WithAlgorithm("Het"))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// C (2×3 blocks of 4×4 elements) += A (2×2) · B (2×3); A is the
	// identity here, so the product is easy to eyeball.
	const q = 4
	a := matmul.NewMatrix(2, 2, q)
	b := matmul.NewMatrix(2, 3, q)
	c := matmul.NewMatrix(2, 3, q)
	for i := 0; i < 2*q; i++ {
		a.Set(i, i, 1)
	}
	for i := 0; i < 2*q; i++ {
		for j := 0; j < 3*q; j++ {
			b.Set(i, j, float64(i+j))
		}
	}

	want := c.Clone()
	if err := matmul.Multiply(want, a, b); err != nil {
		log.Fatal(err)
	}

	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job state: %v\n", job.Status().State)
	fmt.Printf("C[3][5] = %.0f\n", c.At(3, 5))
	fmt.Printf("max |C - reference| = %.0f\n", c.MaxAbsDiff(want))
	// Output:
	// job state: done
	// C[3][5] = 8
	// max |C - reference| = 0
}

// ExampleSession_operands installs an operand once and reuses its handle
// across several products. The handle is content-addressed: on the
// Distributed and Remote runtimes, worker daemons cache the operand's
// panels after the first job, later jobs skip those transfers entirely, and
// the scheduling daemon routes work toward workers already holding the
// bits. The computed C is bitwise-identical to plain-matrix submissions
// either way — handles change what moves, never what is computed.
func ExampleSession_operands() {
	ctx := context.Background()
	sess, err := matmul.Open(ctx) // same pattern with Distributed/Remote runtimes
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	const q = 4
	a := matmul.NewMatrix(2, 2, q) // the operand shared by every job
	for i := 0; i < 2*q; i++ {
		a.Set(i, i, 2)
	}
	shared, err := sess.Install(ctx, a) // hashed once, reused per submit
	if err != nil {
		log.Fatal(err)
	}
	defer shared.Release()

	// Many products against the one installed A; B and C vary per job. An
	// *Operand and a *Matrix are interchangeable in the A and B positions.
	for i := 0; i < 3; i++ {
		b := matmul.NewMatrix(2, 3, q)
		c := matmul.NewMatrix(2, 3, q)
		for r := 0; r < 2*q; r++ {
			for col := 0; col < 3*q; col++ {
				b.Set(r, col, float64(i+1))
			}
		}
		job, err := sess.Submit(ctx, shared, b, c)
		if err != nil {
			log.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d: C[0][0] = %.0f\n", i, c.At(0, 0))
	}
	// Output:
	// job 0: C[0][0] = 2
	// job 1: C[0][0] = 4
	// job 2: C[0][0] = 6
}
